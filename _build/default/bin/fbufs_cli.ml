(* Command-line driver: regenerate any of the paper's tables and figures,
   run ablations, or dump the cost model. *)

open Cmdliner
module H = Fbufs_harness

let table1 zero =
  H.Exp_table1.print (H.Exp_table1.run ~zero_on_alloc:zero ())

let remap () = H.Exp_remap.print (H.Exp_remap.run ())
let fig3 () = H.Exp_fig3.print (H.Exp_fig3.run ())
let fig4 () = H.Exp_fig4.print (H.Exp_fig4.run ())
let fig5 () = H.Exp_fig5.print (H.Exp_fig5.run ~uncached:false ())
let fig6 () = H.Exp_fig5.print (H.Exp_fig5.run ~uncached:true ())

let ablations () = H.Ablation.run_all ()

let info_cmd () =
  Format.printf "DecStation 5000/200 cost model:@.%a@."
    Fbufs_sim.Cost_model.pp Fbufs_sim.Cost_model.decstation_5000_200

let all zero =
  table1 zero;
  remap ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ()

let zero_flag =
  let doc =
    "Enable security clearing (57us/page) of uncached allocations; the \
     paper's Table 1 excludes this cost."
  in
  Arg.(value & flag & info [ "zero-on-alloc" ] ~doc)

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let cmds =
  [
    cmd "table1" "Table 1: per-page transfer costs"
      Term.(const table1 $ zero_flag);
    cmd "remap" "Section 2.2.1: DASH-style remap measurements"
      Term.(const remap $ const ());
    cmd "fig3" "Figure 3: single-boundary throughput vs message size"
      Term.(const fig3 $ const ());
    cmd "fig4" "Figure 4: UDP/IP loopback throughput"
      Term.(const fig4 $ const ());
    cmd "fig5" "Figure 5: end-to-end throughput, cached/volatile fbufs"
      Term.(const fig5 $ const ());
    cmd "fig6" "Figure 6: end-to-end throughput, uncached fbufs"
      Term.(const fig6 $ const ());
    cmd "ablation" "Design-choice ablations (DESIGN.md section 6)"
      Term.(const ablations $ const ());
    cmd "info" "Print the calibrated cost model"
      Term.(const info_cmd $ const ());
    cmd "all" "Run every experiment" Term.(const all $ zero_flag);
  ]

let () =
  let doc = "fbufs (SOSP '93) reproduction: experiments and ablations" in
  exit (Cmd.eval (Cmd.group (Cmd.info "fbufs_cli" ~doc) cmds))
