(** Cross-domain proxy objects.

    When adjacent protocols live in different protection domains, the graph
    builder inserts a proxy pair: invoking the proxy forwards the message
    over {!Fbufs_ipc.Ipc} (charging control-transfer latency and moving the
    underlying fbufs with the configured transfer facility) and invokes the
    real protocol in its home domain. *)

val push_proxy :
  Fbufs.Region.t ->
  from_dom:Fbufs_vm.Pd.t ->
  target:Protocol.t ->
  ?mode:Fbufs_ipc.Ipc.mode ->
  ?free_after:bool ->
  unit ->
  Protocol.t
(** A protocol in [from_dom] whose [push] crosses into [target]'s domain
    and calls [target.push]. With [free_after] (default true), the sender's
    references on the message's buffers are released once the call
    returns, which is the normal hand-off discipline for a protocol that
    keeps no retransmission state. *)

val pop_proxy :
  Fbufs.Region.t ->
  from_dom:Fbufs_vm.Pd.t ->
  target:Protocol.t ->
  ?mode:Fbufs_ipc.Ipc.mode ->
  ?free_after:bool ->
  unit ->
  Protocol.t
(** Same for the receive direction: [pop] crosses domains upward. *)

val conn_of : Protocol.t -> Fbufs_ipc.Ipc.conn option
(** The connection behind a proxy created by this module (for tests). *)
