lib/xkernel/protocol.mli: Fbufs_msg Fbufs_sim Fbufs_vm
