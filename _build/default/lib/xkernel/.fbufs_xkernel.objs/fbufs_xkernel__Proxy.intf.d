lib/xkernel/proxy.mli: Fbufs Fbufs_ipc Fbufs_vm Protocol
