lib/xkernel/proxy.ml: Fbufs_ipc Fbufs_msg Fbufs_vm Hashtbl Pd Printf Protocol
