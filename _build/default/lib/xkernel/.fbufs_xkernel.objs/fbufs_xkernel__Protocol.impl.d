lib/xkernel/protocol.ml: Cost_model Fbufs_msg Fbufs_sim Fbufs_vm Machine Pd Printf Stats
