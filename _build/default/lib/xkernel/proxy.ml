open Fbufs_vm

(* Proxies are ordinary Protocol.t values; we remember their connections on
   the side so tests can inspect deallocation traffic. *)
let conns : (string, Fbufs_ipc.Ipc.conn) Hashtbl.t = Hashtbl.create 16

let conn_of (p : Protocol.t) = Hashtbl.find_opt conns p.Protocol.name

let make region ~from_dom ~(target : Protocol.t) ~mode ~free_after ~dir =
  let conn =
    Fbufs_ipc.Ipc.connect region ~src:from_dom ~dst:target.Protocol.dom ?mode
      ~auto_free_dst:true ()
  in
  let name =
    Printf.sprintf "%s-proxy:%s->%s:%s" dir from_dom.Pd.name
      target.Protocol.dom.Pd.name target.Protocol.name
  in
  let forward msg =
    let invoke =
      match dir with
      | "push" -> fun m -> target.Protocol.push m
      | _ -> fun m -> target.Protocol.pop m
    in
    Fbufs_ipc.Ipc.call conn msg ~handler:invoke;
    if free_after then Fbufs_msg.Msg.free_all msg ~dom:from_dom
  in
  let p =
    match dir with
    | "push" -> Protocol.create ~name ~dom:from_dom ~push:forward ()
    | _ -> Protocol.create ~name ~dom:from_dom ~pop:forward ()
  in
  Hashtbl.replace conns name conn;
  p

let push_proxy region ~from_dom ~target ?mode ?(free_after = true) () =
  make region ~from_dom ~target ~mode ~free_after ~dir:"push"

let pop_proxy region ~from_dom ~target ?mode ?(free_after = true) () =
  make region ~from_dom ~target ~mode ~free_after ~dir:"pop"
