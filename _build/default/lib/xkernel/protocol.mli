(** Protocol objects: the x-kernel composition model.

    A protocol is a named object living in one protection domain with two
    entry points: [push] carries a message down the graph (send side) and
    [pop] carries one up (receive side). Protocols are composed by the
    graph builder, which assigns each one its domain, its lower neighbour,
    and the allocators its headers come from.

    Every push/pop through a real protocol charges the machine's fixed
    per-PDU protocol-processing cost ([proto_op]) via {!charge_op};
    individual protocols add their own header-access and checksum costs
    through ordinary charged memory accesses. *)

type t = {
  name : string;
  dom : Fbufs_vm.Pd.t;
  mutable push : Fbufs_msg.Msg.t -> unit;
  mutable pop : Fbufs_msg.Msg.t -> unit;
}

val create :
  name:string ->
  dom:Fbufs_vm.Pd.t ->
  ?push:(Fbufs_msg.Msg.t -> unit) ->
  ?pop:(Fbufs_msg.Msg.t -> unit) ->
  unit ->
  t
(** Entry points default to raising [Failure] ("not wired"); builders
    assign them after the graph is assembled. *)

val charge_op : t -> unit
(** Charge one [proto_op] of processing in this protocol's machine. *)

val machine : t -> Fbufs_sim.Machine.t
