lib/ipc/ipc.mli: Fbufs Fbufs_msg Fbufs_vm
