lib/ipc/ipc.ml: Allocator Cost_model Fbuf Fbufs Fbufs_msg Fbufs_sim Fbufs_vm List Machine Option Path Pd Region Stats Transfer
