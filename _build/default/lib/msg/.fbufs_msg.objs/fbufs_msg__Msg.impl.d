lib/msg/msg.ml: Access Bytes Cost_model Fbuf Fbufs Fbufs_sim Fbufs_vm Format Hashtbl List Machine Pd Printf Stats String Transfer
