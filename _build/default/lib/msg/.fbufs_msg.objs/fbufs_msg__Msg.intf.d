lib/msg/msg.mli: Fbufs Fbufs_vm Format
