lib/msg/integrated.ml: Access Bytes Cost_model Fbuf Fbufs Fbufs_sim Fbufs_vm Hashtbl Int32 List Machine Msg Printf Region Stats
