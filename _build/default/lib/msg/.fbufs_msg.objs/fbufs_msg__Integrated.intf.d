lib/msg/integrated.mli: Fbufs Fbufs_vm Msg
