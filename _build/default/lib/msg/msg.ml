open Fbufs_sim
open Fbufs_vm
open Fbufs

type leaf = { fbuf : Fbuf.t; off : int; len : int }

type t = Empty | Leaf of leaf | Cat of { left : t; right : t; len : int }

let empty = Empty

let length = function Empty -> 0 | Leaf l -> l.len | Cat c -> c.len

let is_empty m = length m = 0

let of_fbuf fbuf ~off ~len =
  if off < 0 || len < 0 || off + len > Fbuf.size fbuf then
    invalid_arg
      (Printf.sprintf "Msg.of_fbuf: window [%d,%d) outside %d-byte fbuf" off
         (off + len) (Fbuf.size fbuf));
  if len = 0 then Empty else Leaf { fbuf; off; len }

let join a b =
  match (a, b) with
  | Empty, m | m, Empty -> m
  | _ -> Cat { left = a; right = b; len = length a + length b }

let rec split m k =
  if k < 0 || k > length m then
    invalid_arg
      (Printf.sprintf "Msg.split: %d outside [0, %d]" k (length m));
  if k = 0 then (Empty, m)
  else if k = length m then (m, Empty)
  else
    match m with
    | Empty -> (Empty, Empty)
    | Leaf l ->
        ( Leaf { l with len = k },
          Leaf { l with off = l.off + k; len = l.len - k } )
    | Cat c ->
        let ll = length c.left in
        if k <= ll then
          let a, b = split c.left k in
          (a, join b c.right)
        else
          let a, b = split c.right (k - ll) in
          (join c.left a, b)

let clip m k = snd (split m k)
let truncate m k = fst (split m k)

let leaves m =
  let rec go acc = function
    | Empty -> acc
    | Leaf l -> l :: acc
    | Cat c -> go (go acc c.right) c.left
  in
  go [] m

let fbufs m =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun l ->
      if Hashtbl.mem seen l.fbuf.Fbuf.id then None
      else begin
        Hashtbl.add seen l.fbuf.Fbuf.id ();
        Some l.fbuf
      end)
    (leaves m)

let rec depth = function
  | Empty | Leaf _ -> 1
  | Cat c -> 1 + max (depth c.left) (depth c.right)

let leaf_vaddr l = Fbuf.vaddr l.fbuf + l.off

let to_bytes m ~as_ =
  let out = Bytes.create (length m) in
  let pos = ref 0 in
  List.iter
    (fun l ->
      let b = Access.read_bytes as_ ~vaddr:(leaf_vaddr l) ~len:l.len in
      Bytes.blit b 0 out !pos l.len;
      pos := !pos + l.len)
    (leaves m);
  out

let to_string m ~as_ = Bytes.to_string (to_bytes m ~as_)

let sub_bytes m ~as_ ~off ~len = to_bytes (truncate (clip m off) len) ~as_

(* Ones'-complement sum over the message as one byte stream: a leaf ending
   on an odd byte offset shifts the pairing in the next leaf, which the
   composable Access state handles. Computed in place — no gather copy. *)
let checksum m ~as_ =
  let state =
    List.fold_left
      (fun state l ->
        Access.checksum_feed as_ ~vaddr:(leaf_vaddr l) ~len:l.len state)
      Access.checksum_start (leaves m)
  in
  Access.checksum_finish state

let iter_units m ~as_ ~unit_size f =
  if unit_size <= 0 then invalid_arg "Msg.iter_units: unit_size must be > 0";
  let total = length m in
  let machine = as_.Pd.m in
  let rec go m =
    if length m > 0 then begin
      let k = min unit_size (length m) in
      let unit, rest = split m k in
      (match leaves unit with
      | [ l ] -> f (Access.read_bytes as_ ~vaddr:(leaf_vaddr l) ~len:l.len)
      | _ ->
          (* Unit crosses a fragment boundary: gather copy. *)
          Stats.incr machine.Machine.stats "msg.unit_gather";
          f (to_bytes unit ~as_));
      go rest
    end
  in
  ignore total;
  go m

let touch_read m ~as_ =
  let ps = as_.Pd.m.Machine.cost.Cost_model.page_size in
  List.iter
    (fun l ->
      let first = leaf_vaddr l in
      let last = first + l.len - 1 in
      for page = first / ps to last / ps do
        (* One word per spanned page, at the start of the covered range;
           reading a trailing word within the same fbuf page is fine. *)
        let va = max first (page * ps) in
        let va = if va mod ps > ps - 4 then (page * ps) + ps - 4 else va in
        ignore (Access.read_word as_ ~vaddr:va)
      done)
    (leaves m)

let free_all m ~dom = List.iter (fun fb -> Transfer.free fb ~dom) (fbufs m)

let free_held m ~dom =
  List.iter
    (fun fb -> if Fbuf.ref_count fb dom > 0 then Transfer.free fb ~dom)
    (fbufs m)

let pp ppf m =
  let ls = leaves m in
  Format.fprintf ppf "msg[%dB:%s]" (length m)
    (String.concat "+"
       (List.map
          (fun l -> Printf.sprintf "#%d@%d+%d" l.fbuf.Fbuf.id l.off l.len)
          ls))
