(** Simulated time source.

    All simulated time in this code base is expressed in microseconds as a
    [float]. Each simulated host owns one clock; device models advance it via
    {!advance_to} when an event is delivered, CPU work advances it via
    {!advance}. *)

type t

val create : unit -> t
(** A clock starting at time 0. *)

val now : t -> float
(** Current simulated time, microseconds. *)

val advance : t -> float -> unit
(** [advance c us] moves the clock forward by [us] microseconds. Negative
    increments are a programming error and raise [Invalid_argument]. *)

val advance_to : t -> float -> unit
(** [advance_to c t] sets the clock to [max (now c) t]; used when an event
    with absolute timestamp [t] is delivered to a host whose CPU was idle. *)

val reset : t -> unit
(** Rewind to time 0 (used between experiment runs). *)
