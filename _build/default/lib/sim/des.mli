(** Discrete-event scheduler for multi-host experiments.

    The end-to-end experiments (Figures 5 and 6) involve two hosts whose
    CPUs run concurrently with the network link. Each host keeps its own
    {!Clock.t}; the scheduler orders events on a global virtual timeline and
    delivers them in timestamp order (FIFO among equal timestamps). A handler
    typically calls [Machine.elapse_to] to bring its host's clock up to the
    event time before doing charged work. *)

type t

val create : unit -> t

val now : t -> float
(** Timestamp of the most recently dispatched event (0 before any). *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule s time fn] enqueues [fn] for absolute [time]. Scheduling in
    the past (before {!now}) raises [Invalid_argument]. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** Relative form of {!schedule}. *)

val pending : t -> int

val run : ?limit:int -> t -> unit
(** Dispatch events in order until none remain. [limit] (default 10 million)
    bounds runaway simulations; exceeding it raises [Failure]. *)

val step : t -> bool
(** Dispatch one event; [false] when the queue is empty. *)
