(** A simulated host: clock, cost model, physical memory, TLB, statistics.

    Every other subsystem (VM, fbufs, IPC, protocols, drivers) operates on a
    [Machine.t] and accounts simulated time through {!charge} (CPU work) or
    {!elapse} (idle waiting, e.g. for the network), which keeps CPU-load
    accounting honest for the paper's section-4 load measurements. *)

type t = {
  name : string;
  clock : Clock.t;
  cost : Cost_model.t;
  pmem : Phys_mem.t;
  tlb : Tlb.t;
  stats : Stats.t;
  rng : Rng.t;
  mutable busy_us : float;
  mutable next_asid : int;
  mutable next_id : int;
}

val create :
  ?name:string ->
  ?cost:Cost_model.t ->
  ?nframes:int ->
  ?tlb_entries:int ->
  ?seed:int ->
  unit ->
  t
(** Defaults: DecStation 5000/200 cost model, 4096 frames (16 MB), 64 TLB
    entries, seed 42. *)

val charge : t -> float -> unit
(** Consume [us] microseconds of CPU time: advances the clock and the busy
    accumulator. *)

val charge_n : t -> int -> float -> unit
(** [charge_n m n us] charges [n] repetitions of a per-item cost. *)

val elapse_to : t -> float -> unit
(** Wait (idle) until an absolute simulated time; no busy time accrues. *)

val now : t -> float

val fresh_asid : t -> int
val fresh_id : t -> int

val cpu_load : t -> since:float -> float
(** Fraction of wall (simulated) time the CPU was busy since the given
    timestamp pair captured with {!checkpoint}. *)

val checkpoint : t -> float * float
(** [(now, busy)] snapshot, for differential load measurement with
    {!load_since}. *)

val load_since : t -> float * float -> float
(** CPU load between a {!checkpoint} and now, in [0, 1]. *)

val domain_crossing_tlb_pressure : ?entries:int -> t -> unit
(** Displace [entries] (default [ipc_tlb_footprint]) TLB entries with
    kernel-path translations, modelling the cache/TLB pollution of one IPC
    crossing. Costless in time (the control-transfer latency is charged
    separately by the IPC layer); its effect is the refill work later
    accesses must redo. *)

val reset_stats : t -> unit
