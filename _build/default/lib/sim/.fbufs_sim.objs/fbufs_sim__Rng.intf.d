lib/sim/rng.mli:
