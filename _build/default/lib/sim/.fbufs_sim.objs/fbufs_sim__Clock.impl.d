lib/sim/clock.ml:
