lib/sim/machine.mli: Clock Cost_model Phys_mem Rng Stats Tlb
