lib/sim/tlb.ml: Array Rng
