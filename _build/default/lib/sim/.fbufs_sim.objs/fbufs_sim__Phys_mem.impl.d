lib/sim/phys_mem.ml: Array Bytes List
