lib/sim/clock.mli:
