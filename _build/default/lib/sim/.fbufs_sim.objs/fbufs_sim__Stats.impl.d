lib/sim/stats.ml: Float Format Hashtbl List String
