lib/sim/des.mli:
