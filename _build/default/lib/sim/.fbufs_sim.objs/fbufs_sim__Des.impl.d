lib/sim/des.ml: Array Printf
