lib/sim/tlb.mli: Rng
