lib/sim/phys_mem.mli:
