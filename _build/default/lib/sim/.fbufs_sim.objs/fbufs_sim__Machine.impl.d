lib/sim/machine.ml: Clock Cost_model Float Phys_mem Rng Stats Tlb
