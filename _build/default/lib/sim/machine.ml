type t = {
  name : string;
  clock : Clock.t;
  cost : Cost_model.t;
  pmem : Phys_mem.t;
  tlb : Tlb.t;
  stats : Stats.t;
  rng : Rng.t;
  mutable busy_us : float;
  mutable next_asid : int;
  mutable next_id : int;
}

let create ?(name = "host") ?(cost = Cost_model.decstation_5000_200)
    ?(nframes = 4096) ?(tlb_entries = 64) ?(seed = 42) () =
  let rng = Rng.create seed in
  {
    name;
    clock = Clock.create ();
    cost;
    pmem = Phys_mem.create ~page_size:cost.Cost_model.page_size ~nframes;
    tlb = Tlb.create ~entries:tlb_entries (Rng.split rng);
    stats = Stats.create ();
    rng;
    busy_us = 0.0;
    next_asid = 1;
    next_id = 1;
  }

let charge m us =
  Clock.advance m.clock us;
  m.busy_us <- m.busy_us +. us

let charge_n m n us = charge m (float_of_int n *. us)

let elapse_to m t = Clock.advance_to m.clock t

let now m = Clock.now m.clock

let fresh_asid m =
  let a = m.next_asid in
  m.next_asid <- a + 1;
  a

let fresh_id m =
  let i = m.next_id in
  m.next_id <- i + 1;
  i

let cpu_load m ~since =
  let span = now m -. since in
  if span <= 0.0 then 0.0 else Float.min 1.0 (m.busy_us /. span)

let checkpoint m = (now m, m.busy_us)

let load_since m (t0, busy0) =
  let span = now m -. t0 in
  if span <= 0.0 then 0.0 else Float.min 1.0 ((m.busy_us -. busy0) /. span)

(* The kernel's IPC path occupies a distinguished address space (ASID 0)
   and touches a working set of code and data pages on every crossing. *)
let domain_crossing_tlb_pressure ?entries m =
  let n =
    match entries with
    | Some n -> n
    | None -> m.cost.Cost_model.ipc_tlb_footprint
  in
  for i = 0 to n - 1 do
    Tlb.insert m.tlb ~asid:0 ~vpn:(0x70000 + (i * 7) + Rng.int m.rng 5)
      ~writable:false
  done

let reset_stats m = Stats.reset m.stats
