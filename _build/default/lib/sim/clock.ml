type t = { mutable now : float }

let create () = { now = 0.0 }

let now c = c.now

let advance c us =
  if us < 0.0 then invalid_arg "Clock.advance: negative increment";
  c.now <- c.now +. us

let advance_to c t = if t > c.now then c.now <- t

let reset c = c.now <- 0.0
