type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.add (Int64.of_int seed) 0x2545F4914F6CDD1DL }

(* splitmix64: one 64-bit multiply-xor-shift chain per output. *)
let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Shift by 2 so the value fits OCaml's 63-bit int without wrapping. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let split t = { state = next t }
