type entry = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable writable : bool;
}

type t = { slots : entry array; rng : Rng.t }

type probe_result = Hit | Hit_readonly | Miss

let create ?(entries = 64) rng =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  let slots =
    Array.init entries (fun _ ->
        { valid = false; asid = 0; vpn = 0; writable = false })
  in
  { slots; rng }

let entries t = Array.length t.slots

let find t ~asid ~vpn =
  let n = Array.length t.slots in
  let rec loop i =
    if i >= n then None
    else
      let e = t.slots.(i) in
      if e.valid && e.asid = asid && e.vpn = vpn then Some e else loop (i + 1)
  in
  loop 0

let probe t ~asid ~vpn ~write =
  match find t ~asid ~vpn with
  | None -> Miss
  | Some e -> if write && not e.writable then Hit_readonly else Hit

let insert t ~asid ~vpn ~writable =
  let e =
    match find t ~asid ~vpn with
    | Some e -> e
    | None -> (
        (* Prefer an invalid slot; otherwise evict a random victim, as the
           R3000 'tlbwr' (write-random) refill idiom does. *)
        let n = Array.length t.slots in
        let rec invalid i =
          if i >= n then None
          else if not t.slots.(i).valid then Some t.slots.(i)
          else invalid (i + 1)
        in
        match invalid 0 with
        | Some e -> e
        | None -> t.slots.(Rng.int t.rng n))
  in
  e.valid <- true;
  e.asid <- asid;
  e.vpn <- vpn;
  e.writable <- writable

let invalidate t ~asid ~vpn =
  match find t ~asid ~vpn with None -> () | Some e -> e.valid <- false

let flush_asid t ~asid =
  Array.iter (fun e -> if e.valid && e.asid = asid then e.valid <- false) t.slots

let flush_all t = Array.iter (fun e -> e.valid <- false) t.slots

let valid_entries t =
  Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) 0 t.slots
