type event = { time : float; seq : int; fn : unit -> unit }

module Heap = struct
  (* Binary min-heap on (time, seq). *)
  type t = { mutable arr : event array; mutable size : int }

  let dummy = { time = 0.0; seq = 0; fn = ignore }

  let create () = { arr = Array.make 64 dummy; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.arr then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.arr 0 bigger 0 h.size;
      h.arr <- bigger
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.arr.(!i) <- e;
    (* sift up *)
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      h.arr.(0) <- h.arr.(h.size);
      h.arr.(h.size) <- dummy;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

type t = { heap : Heap.t; mutable now : float; mutable next_seq : int }

let create () = { heap = Heap.create (); now = 0.0; next_seq = 0 }

let now t = t.now

let schedule t time fn =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Des.schedule: time %.3f is before now %.3f" time t.now);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { time; seq; fn }

let schedule_after t delta fn = schedule t (t.now +. delta) fn

let pending t = t.heap.Heap.size

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some e ->
      t.now <- e.time;
      e.fn ();
      true

let run ?(limit = 10_000_000) t =
  let rec loop n =
    if n > limit then failwith "Des.run: event limit exceeded"
    else if step t then loop (n + 1)
  in
  loop 0
