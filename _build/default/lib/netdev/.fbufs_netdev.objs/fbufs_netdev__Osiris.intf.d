lib/netdev/osiris.mli: Fbufs Fbufs_msg Fbufs_sim Fbufs_vm
