lib/netdev/osiris.ml: Allocator Bytes Cost_model Des Fbuf Fbufs Fbufs_msg Fbufs_sim Fbufs_vm Float Hashtbl List Machine Path Pd Phys_mem Prot Region Rng Stats Vm_map
