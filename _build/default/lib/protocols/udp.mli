(** A simplified UDP with port demultiplexing.

    Header layout (big-endian, 12 bytes — the length field is widened to 32
    bits because, like the paper's, this UDP was "slightly modified to
    support messages larger than 64 KBytes"):
    {v
    0  u16 magic 0x5544 ("UD")
    2  u16 source port
    4  u16 destination port
    6  u32 payload length
    10 u16 ones'-complement checksum over the payload (0 = not computed)
    v}

    The checksum is optional (off by default, as in the paper's throughput
    tests); when enabled it touches every payload byte on both sides, which
    is what makes UDP a protocol that "accesses the message's body". *)

val header_size : int

type t

val create :
  dom:Fbufs_vm.Pd.t ->
  below:Fbufs_xkernel.Protocol.t ->
  header_alloc:Fbufs.Allocator.t ->
  ?src_port:int ->
  ?dst_port:int ->
  ?checksum:bool ->
  unit ->
  t

val proto : t -> Fbufs_xkernel.Protocol.t

val bind : t -> port:int -> Fbufs_xkernel.Protocol.t -> unit
(** Deliver payloads addressed to [port] to the given upper protocol. *)

val checksum_failures : t -> int
val delivered : t -> int
val no_port_drops : t -> int
