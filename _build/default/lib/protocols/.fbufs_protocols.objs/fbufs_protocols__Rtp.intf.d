lib/protocols/rtp.mli: Fbufs Fbufs_sim Fbufs_vm Fbufs_xkernel
