lib/protocols/ip.mli: Fbufs Fbufs_vm Fbufs_xkernel
