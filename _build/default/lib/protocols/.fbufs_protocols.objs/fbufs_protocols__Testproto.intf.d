lib/protocols/testproto.mli: Fbufs Fbufs_msg Fbufs_vm Fbufs_xkernel
