lib/protocols/udp.ml: Bytes Fbufs Fbufs_msg Fbufs_sim Fbufs_vm Fbufs_xkernel Hashtbl Header Machine Stats
