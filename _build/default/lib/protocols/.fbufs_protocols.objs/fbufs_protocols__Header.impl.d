lib/protocols/header.ml: Allocator Bytes Char Fbuf Fbuf_api Fbufs Fbufs_msg List Printf Transfer
