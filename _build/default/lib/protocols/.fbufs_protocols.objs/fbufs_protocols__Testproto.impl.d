lib/protocols/testproto.ml: Allocator Bytes Fbuf_api Fbufs Fbufs_msg Fbufs_sim Fbufs_xkernel Region String
