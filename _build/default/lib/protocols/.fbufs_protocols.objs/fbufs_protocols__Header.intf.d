lib/protocols/header.mli: Fbufs Fbufs_msg Fbufs_vm
