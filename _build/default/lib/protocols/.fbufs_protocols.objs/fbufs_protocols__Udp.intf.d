lib/protocols/udp.mli: Fbufs Fbufs_vm Fbufs_xkernel
