lib/protocols/loopback.ml: Fbufs_xkernel
