lib/protocols/ip.ml: Bytes Cost_model Fbufs Fbufs_msg Fbufs_sim Fbufs_vm Fbufs_xkernel Hashtbl Header List Machine Stats
