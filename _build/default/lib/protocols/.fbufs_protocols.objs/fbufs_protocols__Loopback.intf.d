lib/protocols/loopback.mli: Fbufs_vm Fbufs_xkernel
