lib/protocols/rtp.ml: Bytes Char Des Fbufs Fbufs_msg Fbufs_sim Fbufs_vm Fbufs_xkernel Hashtbl Header Machine Queue Stats
