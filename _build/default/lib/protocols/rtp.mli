(** A reliable transport protocol over lossy links.

    This protocol exists to exercise the fbuf property the paper derives in
    section 2.1.3: transfers have *copy* semantics precisely because "the
    passing layer may need to retain access to the buffer, for example,
    because it may need to retransmit it sometime in the future" — and with
    immutable buffers, retention is free (reference counting, no copying).

    The sender keeps its references on every in-flight message; a
    retransmission rebuilds only the header fbuf and pushes the same data
    buffers again. Acknowledgements are cumulative (go-back-N), so they
    tolerate loss of ack PDUs as well.

    Header (big-endian, 12 bytes):
    {v
    0  u16 magic 0x5254 ("RT")
    2  u8  kind: 1 = data, 2 = ack
    3  u8  reserved
    4  u32 sequence number (data) / cumulative ack (ack)
    8  u32 payload length
    v} *)

val header_size : int

type sender

val create_sender :
  dom:Fbufs_vm.Pd.t ->
  below:Fbufs_xkernel.Protocol.t ->
  header_alloc:Fbufs.Allocator.t ->
  des:Fbufs_sim.Des.t ->
  ?window:int ->
  ?timeout_us:float ->
  ?max_retries:int ->
  unit ->
  sender
(** [window] in messages (default 8); [timeout_us] retransmit timer
    (default 10000); [max_retries] per message before giving up
    (default 50). *)

val sender_proto : sender -> Fbufs_xkernel.Protocol.t
(** [push]: send a message reliably. The protocol takes over the caller's
    buffer references and releases them when the message is acknowledged —
    do not free after pushing. *)

val sender_ack_proto : sender -> Fbufs_xkernel.Protocol.t
(** Wire the receive path for acknowledgement PDUs to this [pop]. *)

val retransmissions : sender -> int
val acked : sender -> int
val in_flight : sender -> int
val failed : sender -> int
(** Messages abandoned after [max_retries]. *)

type receiver

val create_receiver :
  dom:Fbufs_vm.Pd.t ->
  ack_below:Fbufs_xkernel.Protocol.t ->
  header_alloc:Fbufs.Allocator.t ->
  unit ->
  receiver

val receiver_proto : receiver -> Fbufs_xkernel.Protocol.t
(** Wire the receive path for data PDUs to this [pop]. *)

val set_up : receiver -> Fbufs_xkernel.Protocol.t -> unit
(** In-order delivery of message payloads. *)

val duplicates_dropped : receiver -> int
val delivered : receiver -> int
