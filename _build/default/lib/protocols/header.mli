(** Header construction over immutable buffers.

    A protocol never modifies the message it is handed; it allocates a
    fresh (usually cached) fbuf from its own per-path allocator, writes the
    header there and logically concatenates it — the same buffer editing
    that joins PDUs into ADUs. *)

val prepend :
  alloc:Fbufs.Allocator.t ->
  as_:Fbufs_vm.Pd.t ->
  bytes ->
  Fbufs_msg.Msg.t ->
  Fbufs.Fbuf.t * Fbufs_msg.Msg.t
(** Allocate a one-page fbuf, write the header bytes, and join it in front
    of the message. Returns the header fbuf (so the protocol can release
    its own allocation reference with {!release_header} once the PDU has
    been consumed downstream) alongside the new message. *)

val release_header : dom:Fbufs_vm.Pd.t -> Fbufs.Fbuf.t -> unit
(** Drop [dom]'s reference on a header fbuf if one is still held: after a
    synchronous push returns, the receive side may already have stripped
    and freed a same-domain header (local loopback), so the release is
    reference-count guarded. *)

val peek : Fbufs_msg.Msg.t -> as_:Fbufs_vm.Pd.t -> len:int -> bytes
(** Read the first [len] bytes (the header) without consuming them. Raises
    [Invalid_argument] if the message is shorter. *)

val free_stripped :
  dom:Fbufs_vm.Pd.t -> pdu:Fbufs_msg.Msg.t -> payload:Fbufs_msg.Msg.t -> unit
(** After a protocol clips its header off a PDU, release this domain's
    references on buffers that belonged only to the header (locally
    allocated header fbufs). Buffers shared with the payload — e.g. a
    received PDU whose header and data live in one fbuf — are untouched. *)

(* Big-endian field codecs over a header byte buffer. *)

val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit
