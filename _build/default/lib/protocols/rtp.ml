open Fbufs_sim
module Msg = Fbufs_msg.Msg
module Protocol = Fbufs_xkernel.Protocol

let header_size = 12
let magic = 0x5254
let kind_data = 1
let kind_ack = 2

let make_header ~kind ~seq ~len =
  let b = Bytes.create header_size in
  Header.set_u16 b 0 magic;
  Bytes.set b 2 (Char.chr kind);
  Bytes.set b 3 '\000';
  Header.set_u32 b 4 seq;
  Header.set_u32 b 8 len;
  b

(* ------------------------------------------------------------------ *)
(* Sender                                                              *)
(* ------------------------------------------------------------------ *)

type sender = {
  dom : Fbufs_vm.Pd.t;
  below : Protocol.t;
  header_alloc : Fbufs.Allocator.t;
  des : Des.t;
  window : int;
  timeout_us : float;
  max_retries : int;
  proto : Protocol.t;
  ack_proto : Protocol.t;
  inflight : (int, Msg.t * int ref) Hashtbl.t; (* seq -> (msg, retries) *)
  pending : Msg.t Queue.t;
  mutable next_seq : int;
  mutable send_base : int; (* smallest unacked sequence *)
  mutable retransmissions : int;
  mutable acked : int;
  mutable failed : int;
}

let sender_proto s = s.proto
let sender_ack_proto s = s.ack_proto
let retransmissions s = s.retransmissions
let acked s = s.acked
let in_flight s = Hashtbl.length s.inflight
let failed s = s.failed

let transmit s ~seq msg =
  let hdr = make_header ~kind:kind_data ~seq ~len:(Msg.length msg) in
  let hdr_fb, pdu = Header.prepend ~alloc:s.header_alloc ~as_:s.dom hdr msg in
  s.below.Protocol.push pdu;
  Header.release_header ~dom:s.dom hdr_fb

let rec arm_timer s ~seq =
  Des.schedule_after s.des s.timeout_us (fun () ->
      match Hashtbl.find_opt s.inflight seq with
      | None -> () (* acknowledged in the meantime *)
      | Some (msg, retries) ->
          Machine.elapse_to s.dom.Fbufs_vm.Pd.m (Des.now s.des);
          if !retries >= s.max_retries then begin
            (* Give up: release the retained references. *)
            Hashtbl.remove s.inflight seq;
            s.failed <- s.failed + 1;
            Msg.free_held msg ~dom:s.dom
          end
          else begin
            incr retries;
            s.retransmissions <- s.retransmissions + 1;
            Stats.incr s.dom.Fbufs_vm.Pd.m.Machine.stats "rtp.retransmit";
            (* The data buffers were retained across the first push, so a
               retransmission needs only a fresh header. *)
            transmit s ~seq msg;
            arm_timer s ~seq
          end)

let pump s =
  while
    Hashtbl.length s.inflight < s.window && not (Queue.is_empty s.pending)
  do
    let msg = Queue.pop s.pending in
    let seq = s.next_seq in
    s.next_seq <- seq + 1;
    Hashtbl.add s.inflight seq (msg, ref 0);
    transmit s ~seq msg;
    arm_timer s ~seq
  done

let handle_ack s cum_seq =
  (* Cumulative: everything at or below cum_seq is delivered. *)
  let released = ref false in
  for seq = s.send_base to cum_seq do
    match Hashtbl.find_opt s.inflight seq with
    | None -> ()
    | Some (msg, _) ->
        Hashtbl.remove s.inflight seq;
        s.acked <- s.acked + 1;
        released := true;
        Msg.free_held msg ~dom:s.dom
  done;
  if cum_seq >= s.send_base then s.send_base <- cum_seq + 1;
  if !released then pump s

let sender_pop s pdu =
  Protocol.charge_op s.ack_proto;
  if Msg.length pdu >= header_size then begin
    let hdr = Header.peek pdu ~as_:s.dom ~len:header_size in
    if Header.get_u16 hdr 0 = magic && Char.code (Bytes.get hdr 2) = kind_ack
    then handle_ack s (Header.get_u32 hdr 4)
  end

let create_sender ~dom ~below ~header_alloc ~des ?(window = 8)
    ?(timeout_us = 10_000.0) ?(max_retries = 50) () =
  let proto = Protocol.create ~name:"rtp-send" ~dom () in
  let ack_proto = Protocol.create ~name:"rtp-ack" ~dom () in
  let s =
    {
      dom;
      below;
      header_alloc;
      des;
      window;
      timeout_us;
      max_retries;
      proto;
      ack_proto;
      inflight = Hashtbl.create 32;
      pending = Queue.create ();
      next_seq = 0;
      send_base = 0;
      retransmissions = 0;
      acked = 0;
      failed = 0;
    }
  in
  proto.Protocol.push <-
    (fun msg ->
      Protocol.charge_op proto;
      Queue.add msg s.pending;
      pump s);
  ack_proto.Protocol.pop <- sender_pop s;
  s

(* ------------------------------------------------------------------ *)
(* Receiver                                                            *)
(* ------------------------------------------------------------------ *)

type receiver = {
  rdom : Fbufs_vm.Pd.t;
  ack_below : Protocol.t;
  rheader_alloc : Fbufs.Allocator.t;
  rproto : Protocol.t;
  mutable up : Protocol.t option;
  mutable expected : int;
  mutable duplicates : int;
  mutable delivered : int;
}

let receiver_proto r = r.rproto
let set_up r p = r.up <- Some p
let duplicates_dropped r = r.duplicates
let delivered r = r.delivered

let send_ack r ~cum_seq =
  let hdr = make_header ~kind:kind_ack ~seq:cum_seq ~len:0 in
  let hdr_fb, pdu =
    Header.prepend ~alloc:r.rheader_alloc ~as_:r.rdom hdr Msg.empty
  in
  r.ack_below.Protocol.push pdu;
  Header.release_header ~dom:r.rdom hdr_fb

let receiver_pop r pdu =
  Protocol.charge_op r.rproto;
  if Msg.length pdu < header_size then ()
  else begin
    let hdr = Header.peek pdu ~as_:r.rdom ~len:header_size in
    if Header.get_u16 hdr 0 <> magic then ()
    else if Char.code (Bytes.get hdr 2) <> kind_data then ()
    else begin
      let seq = Header.get_u32 hdr 4 in
      let len = Header.get_u32 hdr 8 in
      let payload = Msg.truncate (Msg.clip pdu header_size) len in
      Header.free_stripped ~dom:r.rdom ~pdu ~payload;
      if seq = r.expected then begin
        r.expected <- r.expected + 1;
        r.delivered <- r.delivered + 1;
        (match r.up with
        | Some up -> up.Protocol.pop payload
        | None -> Msg.free_held payload ~dom:r.rdom);
        send_ack r ~cum_seq:(r.expected - 1)
      end
      else begin
        (* Out of order or duplicate: drop, re-assert cumulative state. *)
        r.duplicates <- r.duplicates + 1;
        Msg.free_held payload ~dom:r.rdom;
        if r.expected > 0 then send_ack r ~cum_seq:(r.expected - 1)
      end
    end
  end

let create_receiver ~dom ~ack_below ~header_alloc () =
  let rproto = Protocol.create ~name:"rtp-recv" ~dom () in
  let r =
    {
      rdom = dom;
      ack_below;
      rheader_alloc = header_alloc;
      rproto;
      up = None;
      expected = 0;
      duplicates = 0;
      delivered = 0;
    }
  in
  rproto.Protocol.pop <- receiver_pop r;
  r
