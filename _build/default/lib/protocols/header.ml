open Fbufs
module Msg = Fbufs_msg.Msg

let prepend ~alloc ~as_ hdr msg =
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write_bytes fb ~as_ ~off:0 hdr;
  (fb, Msg.join (Msg.of_fbuf fb ~off:0 ~len:(Bytes.length hdr)) msg)

let release_header ~dom fb =
  if Fbuf.ref_count fb dom > 0 then Transfer.free fb ~dom

let peek msg ~as_ ~len =
  if Msg.length msg < len then
    invalid_arg
      (Printf.sprintf "Header.peek: message of %d bytes, header needs %d"
         (Msg.length msg) len);
  Msg.sub_bytes msg ~as_ ~off:0 ~len

let free_stripped ~dom ~pdu ~payload =
  let kept = Msg.fbufs payload in
  List.iter
    (fun (fb : Fbuf.t) ->
      let shared =
        List.exists (fun (k : Fbuf.t) -> k.Fbuf.id = fb.Fbuf.id) kept
      in
      if (not shared) && Fbuf.ref_count fb dom > 0 then
        Transfer.free fb ~dom)
    (Msg.fbufs pdu)

let get_u16 b i = (Char.code (Bytes.get b i) lsl 8) lor Char.code (Bytes.get b (i + 1))

let set_u16 b i v =
  Bytes.set b i (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (i + 1) (Char.chr (v land 0xFF))

let get_u32 b i =
  (Char.code (Bytes.get b i) lsl 24)
  lor (Char.code (Bytes.get b (i + 1)) lsl 16)
  lor (Char.code (Bytes.get b (i + 2)) lsl 8)
  lor Char.code (Bytes.get b (i + 3))

let set_u32 b i v =
  Bytes.set b i (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (i + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (i + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (i + 3) (Char.chr (v land 0xFF))
