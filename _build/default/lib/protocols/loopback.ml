type t = {
  proto : Fbufs_xkernel.Protocol.t;
  mutable up : Fbufs_xkernel.Protocol.t option;
  mutable pdus : int;
}

let proto t = t.proto
let set_up t p = t.up <- Some p
let pdus t = t.pdus

let create ~dom () =
  let proto = Fbufs_xkernel.Protocol.create ~name:"loopback" ~dom () in
  let t = { proto; up = None; pdus = 0 } in
  proto.Fbufs_xkernel.Protocol.push <-
    (fun msg ->
      t.pdus <- t.pdus + 1;
      match t.up with
      | Some up -> up.Fbufs_xkernel.Protocol.pop msg
      | None -> failwith "Loopback: no upper protocol wired");
  t
