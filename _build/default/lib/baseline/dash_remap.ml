open Fbufs_sim
open Fbufs_vm

let ping_pong_per_page m ~npages ~rounds =
  let a = Pd.create m "pingpong-a" in
  let b = Pd.create m "pingpong-b" in
  let ps = m.Machine.cost.Cost_model.page_size in
  let vpn_a = Remap.alloc_pages a ~npages ~clear_fraction:0.0 in
  (* Pre-reserve the partner range once; the ping-pong never reallocates. *)
  let vpn_b = Vm_map.reserve_private b.Pd.map ~npages in
  Access.touch_write a ~vaddr:(vpn_a * ps) ~npages;
  (* Warm-up round in each direction. *)
  ignore (Remap.move ~src:a ~dst:b ~src_vpn:vpn_a ~npages ~dst_vpn:vpn_b ());
  ignore (Remap.move ~src:b ~dst:a ~src_vpn:vpn_b ~npages ~dst_vpn:vpn_a ());
  let t0 = Machine.now m in
  for _ = 1 to rounds do
    ignore (Remap.move ~src:a ~dst:b ~src_vpn:vpn_a ~npages ~dst_vpn:vpn_b ());
    Access.touch_read b ~vaddr:(vpn_b * ps) ~npages;
    ignore (Remap.move ~src:b ~dst:a ~src_vpn:vpn_b ~npages ~dst_vpn:vpn_a ());
    Access.touch_read a ~vaddr:(vpn_a * ps) ~npages
  done;
  let elapsed = Machine.now m -. t0 in
  elapsed /. float_of_int (rounds * 2 * npages)

let realistic_per_page m ~npages ~rounds ~clear_fraction =
  let a = Pd.create m "flow-src" in
  let b = Pd.create m "flow-sink" in
  let ps = m.Machine.cost.Cost_model.page_size in
  let once () =
    let vpn = Remap.alloc_pages a ~npages ~clear_fraction in
    Access.touch_write a ~vaddr:(vpn * ps) ~npages;
    let dst_vpn = Remap.move ~src:a ~dst:b ~src_vpn:vpn ~npages () in
    Access.touch_read b ~vaddr:(dst_vpn * ps) ~npages;
    Remap.free_pages b ~vpn:dst_vpn ~npages
  in
  once () (* warm up *);
  let t0 = Machine.now m in
  for _ = 1 to rounds do
    once ()
  done;
  (Machine.now m -. t0) /. float_of_int (rounds * npages)
