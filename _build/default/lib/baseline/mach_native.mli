(** Mach's native data-transfer facility, as measured by the paper's
    Figures 1-3: inline data copying for messages under 2 KB and
    copy-on-write virtual copy above — with the lazy physical-map update
    strategy that costs two page faults per transferred page.

    The steady-state workload matches the paper's first experiment: the
    sender allocates a fresh buffer for every message (a high-bandwidth
    source cannot reuse a buffer that is still COW-shared), writes one word
    per page (paying zero-fill faults), virtually copies it to the
    receiver, which reads one word per page (paying receive-side faults)
    and deallocates; the sender then deallocates its side. *)

type t

val create : src:Fbufs_vm.Pd.t -> dst:Fbufs_vm.Pd.t -> kernel:Fbufs_vm.Pd.t -> t

val copy_threshold : int
(** 2048 bytes: Mach copies smaller messages, COWs larger ones. *)

val transfer : t -> bytes:int -> unit
(** One message transfer with the mode Mach would pick for this size. *)

val transfer_cow : t -> bytes:int -> unit
(** Force the COW path regardless of size (for Table 1's COW row). *)

val verify_cow_roundtrip : t -> string -> string
(** Send a string via the COW path and read it back in the receiver,
    then overwrite the source and return the receiver's (unchanged) view. *)
