(** Re-implementation of the DASH/Tzou-Anderson page-remapping measurement
    (paper section 2.2.1): the same facility measured two ways.

    The published DASH result is a *ping-pong*: one set of pages bounces
    between two domains, so address ranges are never allocated or freed and
    pages are never cleared. A realistic unidirectional I/O flow must
    continually allocate fresh pages at the source (clearing some fraction
    of each for security) and deallocate them at the sink — which is where
    the 22 us/page headline becomes 42-99 us/page. *)

val ping_pong_per_page :
  Fbufs_sim.Machine.t -> npages:int -> rounds:int -> float
(** Average per-page cost of remapping a buffer back and forth between two
    fresh domains [rounds] times (both directions counted, matching the
    Tzou/Anderson methodology). *)

val realistic_per_page :
  Fbufs_sim.Machine.t -> npages:int -> rounds:int -> clear_fraction:float -> float
(** Average per-page cost of a one-way flow: allocate + clear
    [clear_fraction] of each page + write + remap + read + free,
    steady-state over [rounds] messages. *)
