open Fbufs_vm

type t = {
  src : Pd.t;
  dst : Pd.t;
  kernel : Pd.t;
  src_va : int;
  kernel_va : int;
  dst_va : int;
  npages : int;
  page_size : int;
}

let create ~src ~dst ~kernel ~max_bytes =
  let ps = src.Pd.m.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size in
  let npages = max 1 ((max_bytes + ps - 1) / ps) in
  let reserve (d : Pd.t) =
    let vpn = Vm_map.reserve_private d.Pd.map ~npages in
    Vm_map.map_zero_fill d.Pd.map ~vpn ~npages;
    vpn * ps
  in
  {
    src;
    dst;
    kernel;
    src_va = reserve src;
    kernel_va = reserve kernel;
    dst_va = reserve dst;
    npages;
    page_size = ps;
  }

let transfer t ~bytes =
  if bytes > t.npages * t.page_size then
    invalid_arg "Copy_transfer.transfer: larger than the buffers";
  let pages = max 1 ((bytes + t.page_size - 1) / t.page_size) in
  Access.touch_write t.src ~vaddr:t.src_va ~npages:pages;
  (* copyin: user -> kernel *)
  Access.blit ~src:t.src ~src_vaddr:t.src_va ~dst:t.kernel
    ~dst_vaddr:t.kernel_va ~len:bytes;
  (* copyout: kernel -> user *)
  Access.blit ~src:t.kernel ~src_vaddr:t.kernel_va ~dst:t.dst
    ~dst_vaddr:t.dst_va ~len:bytes;
  Access.touch_read t.dst ~vaddr:t.dst_va ~npages:pages

let verify_roundtrip t s =
  Access.write_string t.src ~vaddr:t.src_va s;
  Access.blit ~src:t.src ~src_vaddr:t.src_va ~dst:t.kernel
    ~dst_vaddr:t.kernel_va ~len:(String.length s);
  Access.blit ~src:t.kernel ~src_vaddr:t.kernel_va ~dst:t.dst
    ~dst_vaddr:t.dst_va ~len:(String.length s);
  Bytes.to_string
    (Access.read_bytes t.dst ~vaddr:t.dst_va ~len:(String.length s))
