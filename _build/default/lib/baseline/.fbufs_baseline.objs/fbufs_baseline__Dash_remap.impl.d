lib/baseline/dash_remap.ml: Access Cost_model Fbufs_sim Fbufs_vm Machine Pd Remap Vm_map
