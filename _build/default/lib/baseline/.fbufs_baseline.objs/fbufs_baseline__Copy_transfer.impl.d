lib/baseline/copy_transfer.ml: Access Bytes Fbufs_sim Fbufs_vm Pd String Vm_map
