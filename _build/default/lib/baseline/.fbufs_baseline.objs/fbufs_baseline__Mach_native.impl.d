lib/baseline/mach_native.ml: Access Bytes Copy_transfer Fbufs_sim Fbufs_vm Pd String Vm_map
