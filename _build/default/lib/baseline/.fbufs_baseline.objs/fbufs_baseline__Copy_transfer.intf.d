lib/baseline/copy_transfer.mli: Fbufs_vm
