lib/baseline/mach_native.mli: Fbufs_vm
