lib/baseline/dash_remap.mli: Fbufs_sim
