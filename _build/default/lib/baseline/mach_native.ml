open Fbufs_vm

type t = { src : Pd.t; dst : Pd.t; copy : Copy_transfer.t }

let copy_threshold = 2048

let create ~src ~dst ~kernel =
  { src; dst; copy = Copy_transfer.create ~src ~dst ~kernel ~max_bytes:copy_threshold }

let pages_of (d : Pd.t) bytes =
  let ps = d.Pd.m.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size in
  max 1 ((bytes + ps - 1) / ps)

let transfer_cow t ~bytes =
  let ps = t.src.Pd.m.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size in
  let npages = pages_of t.src bytes in
  (* Fresh out-of-line memory for this message. *)
  let vpn = Vm_map.reserve_private t.src.Pd.map ~npages in
  Vm_map.map_zero_fill t.src.Pd.map ~vpn ~npages;
  Access.touch_write t.src ~vaddr:(vpn * ps) ~npages;
  (* Virtual copy with lazy pmap update. *)
  Vm_map.copy_cow ~src:t.src.Pd.map ~dst:t.dst.Pd.map ~vpn ~npages;
  (* Receiver consumes (first faults per page) and deallocates. *)
  Access.touch_read t.dst ~vaddr:(vpn * ps) ~npages;
  Vm_map.release_range t.dst.Pd.map ~vpn ~npages;
  Vm_map.release_range t.src.Pd.map ~vpn ~npages

let transfer t ~bytes =
  if bytes < copy_threshold then Copy_transfer.transfer t.copy ~bytes
  else transfer_cow t ~bytes

let verify_cow_roundtrip t s =
  let ps = t.src.Pd.m.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size in
  let npages = pages_of t.src (String.length s) in
  let vpn = Vm_map.reserve_private t.src.Pd.map ~npages in
  Vm_map.map_zero_fill t.src.Pd.map ~vpn ~npages;
  Access.write_string t.src ~vaddr:(vpn * ps) s;
  Vm_map.copy_cow ~src:t.src.Pd.map ~dst:t.dst.Pd.map ~vpn ~npages;
  (* The sender moves on to other work, scribbling over its buffer; the
     receiver's view must be the original. *)
  Access.write_string t.src ~vaddr:(vpn * ps) (String.make (String.length s) 'X');
  let seen =
    Bytes.to_string
      (Access.read_bytes t.dst ~vaddr:(vpn * ps) ~len:(String.length s))
  in
  Vm_map.release_range t.dst.Pd.map ~vpn ~npages;
  Vm_map.release_range t.src.Pd.map ~vpn ~npages;
  seen
