(** Table 1: incremental per-page cost and asymptotic throughput of a
    single-boundary transfer, for the four fbuf variants, Mach COW, and
    software copy.

    Methodology matches the paper's first experiment: a test protocol in
    the originator domain repeatedly allocates a message, writes one word
    per page, and passes it over IPC to a dummy protocol in the receiver
    domain, which reads one word per page, deallocates and returns. The
    incremental cost is the slope of elapsed time against page count
    (independent of IPC latency); the asymptotic bandwidth is
    page-bits / slope. *)

type row = {
  mechanism : string;
  per_page_us : float;
  asymptotic_mbps : float;
  paper_us : float option;  (** None where the source text is garbled *)
  paper_mbps : float option;
}

val run : ?zero_on_alloc:bool -> unit -> row list
(** [zero_on_alloc] (default false, matching the table, which excludes the
    57 us/page clearing cost) re-enables security clearing of uncached
    allocations — the ablation the paper discusses in prose. *)

val print : row list -> unit
