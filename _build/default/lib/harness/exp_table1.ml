open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testproto = Fbufs_protocols.Testproto

type row = {
  mechanism : string;
  per_page_us : float;
  asymptotic_mbps : float;
  paper_us : float option;
  paper_mbps : float option;
}

let warmup = 3
let iters = 15
let small_pages = 8
let large_pages = 40

(* One fbuf-variant measurement on a fresh host. *)
let fbuf_slope ~zero_on_alloc variant =
  let config = { Region.default_config with Region.zero_on_alloc } in
  let tb = Testbed.create ~config () in
  let m = tb.Testbed.m in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] variant in
  let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
  let roundtrip npages =
    let bytes = npages * m.Machine.cost.Cost_model.page_size in
    let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
    Ipc.call conn msg ~handler:(fun received ->
        Msg.touch_read received ~as_:recv;
        Ipc.free_deferred conn received);
    Msg.free_all msg ~dom:app
  in
  let measure npages =
    for _ = 1 to warmup do
      roundtrip npages
    done;
    let t0 = Machine.now m in
    for _ = 1 to iters do
      roundtrip npages
    done;
    (Machine.now m -. t0) /. float_of_int iters
  in
  let a = measure small_pages and b = measure large_pages in
  (b -. a) /. float_of_int (large_pages - small_pages)

let baseline_slope transfer =
  (* [transfer] performs one message transfer of the given byte count on a
     machine it was created over; the caller passes a closure over fresh
     domains. *)
  fun (m : Machine.t) ->
    let ps = m.Machine.cost.Cost_model.page_size in
    let measure npages =
      for _ = 1 to warmup do
        transfer (npages * ps)
      done;
      let t0 = Machine.now m in
      for _ = 1 to iters do
        transfer (npages * ps)
      done;
      (Machine.now m -. t0) /. float_of_int iters
    in
    let a = measure small_pages and b = measure large_pages in
    (b -. a) /. float_of_int (large_pages - small_pages)

let run ?(zero_on_alloc = false) () =
  let page_bits = 4096 * 8 in
  let fbuf_row name variant paper_us paper_mbps =
    let slope = fbuf_slope ~zero_on_alloc variant in
    {
      mechanism = name;
      per_page_us = slope;
      asymptotic_mbps = float_of_int page_bits /. slope;
      paper_us;
      paper_mbps;
    }
  in
  let cow_row =
    let tb = Testbed.create () in
    let src = Testbed.user_domain tb "mach-src" in
    let dst = Testbed.user_domain tb "mach-dst" in
    let mach =
      Fbufs_baseline.Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel
    in
    let slope =
      baseline_slope
        (fun bytes -> Fbufs_baseline.Mach_native.transfer_cow mach ~bytes)
        tb.Testbed.m
    in
    {
      mechanism = "Mach COW";
      per_page_us = slope;
      asymptotic_mbps = float_of_int page_bits /. slope;
      paper_us = None (* garbled in the source text *);
      paper_mbps = None;
    }
  in
  let copy_row =
    let tb = Testbed.create () in
    let src = Testbed.user_domain tb "copy-src" in
    let dst = Testbed.user_domain tb "copy-dst" in
    let copy =
      Fbufs_baseline.Copy_transfer.create ~src ~dst ~kernel:tb.Testbed.kernel
        ~max_bytes:(large_pages * 4096)
    in
    let slope =
      baseline_slope
        (fun bytes -> Fbufs_baseline.Copy_transfer.transfer copy ~bytes)
        tb.Testbed.m
    in
    {
      mechanism = "copy";
      per_page_us = slope;
      asymptotic_mbps = float_of_int page_bits /. slope;
      paper_us = None;
      paper_mbps = None;
    }
  in
  [
    fbuf_row "fbufs, cached/volatile" Fbuf.cached_volatile (Some 3.0)
      (Some 10922.0);
    fbuf_row "fbufs, volatile" Fbuf.volatile_only (Some 21.0) (Some 1560.0);
    fbuf_row "fbufs, cached" Fbuf.cached_only (Some 29.0) (Some 1130.0);
    fbuf_row "fbufs (plain)" Fbuf.plain None None;
    cow_row;
    copy_row;
  ]

let print rows =
  Report.print_title
    "Table 1: incremental per-page cost and asymptotic throughput";
  Report.print_columns
    [ "mechanism"; "us/page"; "Mb/s"; "paper us"; "paper Mb/s" ];
  List.iter
    (fun r ->
      print_endline
        (String.concat "  "
           (List.map (Report.cell ~width:14)
              [
                Printf.sprintf "%-24s" r.mechanism;
                Printf.sprintf "%.1f" r.per_page_us;
                Printf.sprintf "%.0f" r.asymptotic_mbps;
                Report.fmt_opt r.paper_us;
                Report.fmt_opt r.paper_mbps;
              ])))
    rows
