open Fbufs_sim
open Fbufs_vm

type t = { m : Machine.t; kernel : Pd.t; region : Fbufs.Region.t }

let create ?(name = "host") ?cost ?config ?(nframes = 32768) ?tlb_entries
    ?seed () =
  let m = Machine.create ~name ?cost ~nframes ?tlb_entries ?seed () in
  let kernel = Pd.create m ~kernel:true "kernel" in
  let region = Fbufs.Region.create m ~kernel ?config () in
  { m; kernel; region }

let user_domain t name =
  let d = Pd.create t.m name in
  Fbufs.Region.register_domain t.region d;
  d

let allocator t ~domains variant =
  Fbufs.Allocator.create t.region ~path:(Fbufs.Path.create domains) ~variant ()

let page_size t = t.m.Machine.cost.Cost_model.page_size
