(** Figure 3: throughput of a single domain-boundary crossing as a function
    of message size, including IPC latency — the four fbuf variants against
    Mach's native transfer facility (copy under 2 KB, COW above). *)

val sizes : int list
(** 1 KB to 1 MB, powers of two. *)

val run : unit -> Report.series list
val print : Report.series list -> unit
