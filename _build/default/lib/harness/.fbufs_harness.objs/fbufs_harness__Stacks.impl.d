lib/harness/stacks.ml: Allocator Fbuf Fbufs Fbufs_msg Fbufs_protocols Fbufs_vm Fbufs_xkernel Testbed
