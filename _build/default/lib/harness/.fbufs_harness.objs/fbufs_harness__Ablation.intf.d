lib/harness/ablation.mli:
