lib/harness/exp_fig4.ml: Fbuf Fbufs Fbufs_msg Fbufs_protocols Fbufs_sim List Machine Report Stacks Testbed
