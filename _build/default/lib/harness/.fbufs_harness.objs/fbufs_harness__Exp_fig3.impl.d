lib/harness/exp_fig3.ml: Cost_model Fbuf Fbufs Fbufs_baseline Fbufs_ipc Fbufs_msg Fbufs_protocols Fbufs_sim List Machine Report Testbed
