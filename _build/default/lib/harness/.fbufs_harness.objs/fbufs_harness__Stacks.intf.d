lib/harness/stacks.mli: Fbufs Fbufs_msg Fbufs_protocols Fbufs_vm Testbed
