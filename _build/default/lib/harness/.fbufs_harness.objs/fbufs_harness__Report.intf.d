lib/harness/report.mli:
