lib/harness/exp_table1.mli:
