lib/harness/exp_fig4.mli: Report
