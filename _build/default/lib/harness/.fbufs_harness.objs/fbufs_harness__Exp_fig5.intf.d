lib/harness/exp_fig5.mli: Report
