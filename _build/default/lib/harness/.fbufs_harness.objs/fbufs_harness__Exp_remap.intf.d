lib/harness/exp_remap.mli:
