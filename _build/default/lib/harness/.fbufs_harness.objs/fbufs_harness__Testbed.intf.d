lib/harness/testbed.mli: Fbufs Fbufs_sim Fbufs_vm
