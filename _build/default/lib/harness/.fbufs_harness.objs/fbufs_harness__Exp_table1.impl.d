lib/harness/exp_table1.ml: Cost_model Fbuf Fbufs Fbufs_baseline Fbufs_ipc Fbufs_msg Fbufs_protocols Fbufs_sim List Machine Printf Region Report String Testbed
