lib/harness/exp_fig5.ml: Cost_model Des Fbuf Fbufs Fbufs_msg Fbufs_netdev Fbufs_protocols Fbufs_sim Fbufs_vm Fbufs_xkernel List Machine Pd Report Testbed
