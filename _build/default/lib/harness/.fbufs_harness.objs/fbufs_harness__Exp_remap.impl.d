lib/harness/exp_remap.ml: Fbufs_baseline Fbufs_sim List Machine Printf Report String
