lib/harness/exp_fig3.mli: Report
