lib/harness/testbed.ml: Cost_model Fbufs Fbufs_sim Fbufs_vm Machine Pd
