let mbps ~bytes ~us =
  if us <= 0.0 then infinity else float_of_int bytes *. 8.0 /. us

let print_title s =
  Printf.printf "\n== %s ==\n" s

let cell ~width s =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

let print_columns cols =
  let line = String.concat "  " (List.map (cell ~width:14) cols) in
  print_endline line;
  print_endline (String.make (String.length line) '-')

let fmt_size n =
  if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then
    Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%dK" (n lsr 10)
  else string_of_int n

let fmt_opt = function
  | None -> "-"
  | Some v ->
      if v >= 100.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.1f" v

type series = { name : string; points : (int * float) list }

let print_series_table ~x_label series =
  print_columns (x_label :: List.map (fun s -> s.name) series);
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.points) series)
  in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun s ->
            match List.assoc_opt x s.points with
            | Some y -> Printf.sprintf "%.1f" y
            | None -> "-")
          series
      in
      print_endline
        (String.concat "  "
           (List.map (cell ~width:14) (fmt_size x :: cells))))
    xs
