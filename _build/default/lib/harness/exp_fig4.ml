open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Testproto = Fbufs_protocols.Testproto

let sizes = List.init 11 (fun i -> 1024 lsl i)

let warmup = 3
let iters = 8

let throughput make_stack bytes =
  let stack = make_stack () in
  let m = stack.Stacks.tb.Testbed.m in
  let send () =
    let msg =
      Testproto.make_message ~alloc:stack.Stacks.data_alloc
        ~as_:stack.Stacks.sender_dom ~bytes ()
    in
    stack.Stacks.send msg
  in
  for _ = 1 to warmup do
    send ()
  done;
  let before = Testproto.received stack.Stacks.sink in
  let t0 = Machine.now m in
  for _ = 1 to iters do
    send ()
  done;
  let us = (Machine.now m -. t0) /. float_of_int iters in
  assert (Testproto.received stack.Stacks.sink = before + iters);
  Report.mbps ~bytes ~us

let series name make_stack =
  {
    Report.name;
    points = List.map (fun b -> (b, throughput make_stack b)) sizes;
  }

let run () =
  [
    series "single domain" (fun () -> Stacks.single_domain ());
    series "3 dom cached" (fun () ->
        Stacks.three_domains ~variant:Fbuf.cached_volatile ());
    (* The paper's uncached comparison is the full base mechanism —
       uncached AND non-volatile — "comparable to the best one can achieve
       with page remapping". *)
    series "3 dom uncached" (fun () ->
        Stacks.three_domains ~variant:Fbuf.plain ());
  ]

let print series =
  Report.print_title
    "Figure 4: UDP/IP local loopback throughput (Mb/s), IP PDU = 4 KB";
  Report.print_series_table ~x_label:"msg size" series
