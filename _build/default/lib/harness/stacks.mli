(** Protocol-graph assembly for the loopback experiments (Figure 4). *)

type t = {
  tb : Testbed.t;
  send : Fbufs_msg.Msg.t -> unit;  (** entry point: push into UDP *)
  data_alloc : Fbufs.Allocator.t;  (** where the test protocol's messages come from *)
  sender_dom : Fbufs_vm.Pd.t;
  sink : Fbufs_protocols.Testproto.sink;
  ip : Fbufs_protocols.Ip.t;
}

val single_domain :
  ?variant:Fbufs.Fbuf.variant -> ?pdu_size:int -> unit -> t
(** Test protocol, UDP/IP, loopback and sink all in one protection domain
    ("all components configured into a single protection domain"). *)

val three_domains :
  ?variant:Fbufs.Fbuf.variant -> ?pdu_size:int -> unit -> t
(** The paper's microkernel configuration: test protocol in an application
    domain, UDP/IP + loopback in a network-server domain, sink in a
    receiver domain; one crossing on the way down, one on the way up. *)
