(** Figures 5 and 6: end-to-end UDP/IP throughput between two hosts joined
    by a null modem on simulated Osiris ATM boards, IP PDU = 16 KB, sliding
    window flow control.

    Three configurations, as in the paper:
    - kernel-kernel: the whole stack, including the test protocols, in the
      kernel (baseline: no domain crossings);
    - user-user: one kernel/user crossing per host;
    - user-netserver-user: UDP in a user-level network server, adding a
      second crossing per host.

    [uncached:false] reproduces Figure 5 (cached/volatile fbufs);
    [uncached:true] reproduces Figure 6 (uncached, non-volatile fbufs —
    whose extra costs fall on the transmit host for the non-volatile part
    and the receive host for the uncached part). *)

type config = Kernel_kernel | User_user | User_netserver_user

val config_name : config -> string

type point = {
  bytes : int;
  mbps : float;
  rx_cpu_load : float;  (** receiving host CPU utilization *)
  tx_cpu_load : float;
}

val sizes : int list
(** 4 KB to 1 MB. *)

val run_one :
  uncached:bool ->
  config:config ->
  bytes:int ->
  ?pdu_size:int ->
  ?window:int ->
  ?nmsgs:int ->
  ?hw_demux:bool ->
  unit ->
  point
(** [hw_demux:false] replaces the receiving Osiris board with an
    Ethernet-style adapter that cannot demultiplex before the transfer
    (section 5.2): every PDU pays a software-demux copy. *)

val run : uncached:bool -> ?pdu_size:int -> ?window:int -> unit -> Report.series list

val print : Report.series list -> unit
