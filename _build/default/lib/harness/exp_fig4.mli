(** Figure 4: UDP/IP local-loopback throughput (infinitely fast network),
    single protection domain vs three domains with cached and uncached
    fbufs. IP fragments at 4 KB. *)

val sizes : int list

val run : unit -> Report.series list
val print : Report.series list -> unit
