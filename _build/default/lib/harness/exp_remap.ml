open Fbufs_sim
module Dash = Fbufs_baseline.Dash_remap

type row = { scenario : string; per_page_us : float; paper_us : float option }

let run () =
  let fresh () = Machine.create ~nframes:8192 () in
  let pp = Dash.ping_pong_per_page (fresh ()) ~npages:16 ~rounds:20 in
  let realistic clear =
    Dash.realistic_per_page (fresh ()) ~npages:16 ~rounds:20
      ~clear_fraction:clear
  in
  [
    { scenario = "ping-pong (as published)"; per_page_us = pp; paper_us = Some 22.0 };
    { scenario = "realistic, 0% cleared"; per_page_us = realistic 0.0; paper_us = Some 42.0 };
    { scenario = "realistic, 25% cleared"; per_page_us = realistic 0.25; paper_us = None };
    { scenario = "realistic, 50% cleared"; per_page_us = realistic 0.5; paper_us = None };
    { scenario = "realistic, 100% cleared"; per_page_us = realistic 1.0; paper_us = Some 99.0 };
  ]

let print rows =
  Report.print_title "Section 2.2.1: page remapping, ping-pong vs realistic";
  Report.print_columns [ "scenario"; "us/page"; "paper us" ];
  List.iter
    (fun r ->
      print_endline
        (String.concat "  "
           (List.map (Report.cell ~width:14)
              [
                Printf.sprintf "%-26s" r.scenario;
                Printf.sprintf "%.1f" r.per_page_us;
                Report.fmt_opt r.paper_us;
              ])))
    rows
