(** Canned simulated-host setups shared by tests, examples and experiments. *)

type t = {
  m : Fbufs_sim.Machine.t;
  kernel : Fbufs_vm.Pd.t;
  region : Fbufs.Region.t;
}

val create :
  ?name:string ->
  ?cost:Fbufs_sim.Cost_model.t ->
  ?config:Fbufs.Region.config ->
  ?nframes:int ->
  ?tlb_entries:int ->
  ?seed:int ->
  unit ->
  t
(** A host with a kernel domain and an fbuf region. *)

val user_domain : t -> string -> Fbufs_vm.Pd.t
(** Create a user protection domain registered with the fbuf region. *)

val allocator :
  t -> domains:Fbufs_vm.Pd.t list -> Fbufs.Fbuf.variant -> Fbufs.Allocator.t
(** An allocator for the path [domains] (originator first). *)

val page_size : t -> int
