open Fbufs
module Msg = Fbufs_msg.Msg
module Protocol = Fbufs_xkernel.Protocol
module Proxy = Fbufs_xkernel.Proxy
module Ip = Fbufs_protocols.Ip
module Udp = Fbufs_protocols.Udp
module Loopback = Fbufs_protocols.Loopback
module Testproto = Fbufs_protocols.Testproto

type t = {
  tb : Testbed.t;
  send : Msg.t -> unit;
  data_alloc : Allocator.t;
  sender_dom : Fbufs_vm.Pd.t;
  sink : Testproto.sink;
  ip : Ip.t;
}

let port = 2000

let single_domain ?(variant = Fbuf.cached_volatile) ?(pdu_size = 4096) () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "node" in
  let header_alloc = Testbed.allocator tb ~domains:[ d ] variant in
  let lb = Loopback.create ~dom:d () in
  let ip =
    Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc ~pdu_size ()
  in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:d ~below:(Ip.proto ip)
      ~header_alloc:(Testbed.allocator tb ~domains:[ d ] variant)
      ~dst_port:port ()
  in
  Ip.set_up ip (Udp.proto udp);
  let sink = Testproto.sink ~dom:d () in
  Udp.bind udp ~port (Testproto.sink_proto sink);
  let data_alloc = Testbed.allocator tb ~domains:[ d ] variant in
  {
    tb;
    send = (Udp.proto udp).Protocol.push;
    data_alloc;
    sender_dom = d;
    sink;
    ip;
  }

let three_domains ?(variant = Fbuf.cached_volatile) ?(pdu_size = 4096) () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let ns = Testbed.user_domain tb "netserver" in
  let recv = Testbed.user_domain tb "recv" in
  (* Network server: loopback below IP below UDP. Header buffers for IP
     stay inside the server; UDP's too (headers are stripped there on the
     way back up). *)
  let lb = Loopback.create ~dom:ns () in
  let ip =
    Ip.create ~dom:ns ~below:(Loopback.proto lb)
      ~header_alloc:(Testbed.allocator tb ~domains:[ ns ] variant)
      ~pdu_size ()
  in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:ns ~below:(Ip.proto ip)
      ~header_alloc:(Testbed.allocator tb ~domains:[ ns ] variant)
      ~dst_port:port ()
  in
  Ip.set_up ip (Udp.proto udp);
  (* Receiver side: the reassembled payload crosses into the receiver
     domain where the dummy protocol consumes it. *)
  let sink = Testproto.sink ~dom:recv () in
  let up_proxy =
    Proxy.pop_proxy tb.Testbed.region ~from_dom:ns
      ~target:(Testproto.sink_proto sink) ()
  in
  Udp.bind udp ~port up_proxy;
  (* Sender side: the test protocol's messages cross from the application
     domain into the network server. *)
  let down_proxy =
    Proxy.push_proxy tb.Testbed.region ~from_dom:app ~target:(Udp.proto udp)
      ()
  in
  let data_alloc = Testbed.allocator tb ~domains:[ app; ns; recv ] variant in
  {
    tb;
    send = down_proxy.Protocol.push;
    data_alloc;
    sender_dom = app;
    sink;
    ip;
  }
