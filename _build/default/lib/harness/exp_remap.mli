(** Section 2.2.1: the DASH-style remap facility measured honestly.

    Reproduces the paper's update of the Tzou/Anderson result on the
    DecStation: ~22 us/page in the ping-pong configuration, rising to
    42-99 us/page for a realistic one-way flow that must allocate, clear
    (0-100% of each page) and deallocate buffers. *)

type row = {
  scenario : string;
  per_page_us : float;
  paper_us : float option;
}

val run : unit -> row list
val print : row list -> unit
