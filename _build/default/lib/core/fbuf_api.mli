(** Data-plane convenience operations on fbufs.

    Thin bounds-checked wrappers over {!Fbufs_vm.Access}: all protection
    enforcement (originator-only writes, secured buffers, receivers'
    read-only views) is exercised by the underlying simulated VM, so a
    receiver attempting to write raises
    {!Fbufs_vm.Vm_map.Protection_violation}. *)

val write : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> string -> unit
val write_bytes : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> bytes -> unit
val read : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> len:int -> bytes
val read_string : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> len:int -> string

val touch_write : Fbuf.t -> as_:Fbufs_vm.Pd.t -> unit
(** Write one word in each page (the paper's originator workload). *)

val touch_read : Fbuf.t -> as_:Fbufs_vm.Pd.t -> unit
(** Read one word in each page (the paper's receiver workload). *)

val checksum : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> len:int -> int

val word_at : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> int
val set_word : Fbuf.t -> as_:Fbufs_vm.Pd.t -> off:int -> int -> unit
