open Fbufs_vm

type t = { id : int; domains : Pd.t list }

let next_id = ref 0

let create domains =
  (match domains with
  | [] -> invalid_arg "Path.create: a path needs at least the originator"
  | _ :: _ -> ());
  let rec dup = function
    | [] -> false
    | d :: rest -> List.exists (Pd.equal d) rest || dup rest
  in
  if dup domains then invalid_arg "Path.create: duplicate domain";
  incr next_id;
  { id = !next_id; domains }

let originator t = List.hd t.domains
let receivers t = List.tl t.domains
let mem t d = List.exists (Pd.equal d) t.domains
let length t = List.length t.domains
let equal a b = a.id = b.id

let pp ppf t =
  Format.fprintf ppf "path#%d[%a]" t.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       Pd.pp)
    t.domains
