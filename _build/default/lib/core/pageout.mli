(** The pageout daemon's view of fbufs.

    "Since fbufs are pageable, the amount of physical memory allocated to
    fbufs depends on the level of I/O traffic compared to other system
    activity" — under memory pressure the kernel reclaims the physical
    memory of fbufs sitting on free lists, discarding their contents
    (free buffers are never written to backing store). The LIFO free-list
    discipline means reclamation naturally takes the coldest buffers.

    Allocators register with the daemon; {!balance} reclaims cold cached
    buffers round-robin until the free-frame pool reaches the low-water
    mark (or nothing reclaimable remains). *)

type t

val create : Region.t -> ?low_water_frames:int -> unit -> t
(** [low_water_frames] defaults to 1/16 of physical memory. *)

val register : t -> Allocator.t -> unit
(** Make an allocator's free list visible to the daemon. *)

val registered : t -> int

val balance : t -> int
(** Reclaim free cached fbufs (coldest first within each allocator) until
    free frames >= low water; returns the number of fbufs reclaimed.
    Charges the daemon's scan work plus the per-page reclamation costs. *)

val pressure : t -> bool
(** True when free frames are below the low-water mark. *)
