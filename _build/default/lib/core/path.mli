(** I/O data paths.

    An I/O data path is the ordered sequence of protection domains a buffer
    visits: the originator followed by the receiver domains. All data to or
    from one communication endpoint travels the same path, which is what
    makes per-path fbuf caching profitable (locality in network traffic).

    Paths compare by identity ([id]); two paths over the same domains are
    distinct caching pools. *)

type t = { id : int; domains : Fbufs_vm.Pd.t list }

val create : Fbufs_vm.Pd.t list -> t
(** [create (originator :: receivers)]. Raises [Invalid_argument] on an
    empty list or duplicate domains. *)

val originator : t -> Fbufs_vm.Pd.t
val receivers : t -> Fbufs_vm.Pd.t list
val mem : t -> Fbufs_vm.Pd.t -> bool
val length : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
