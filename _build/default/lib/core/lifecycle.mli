(** Domain termination (paper section 3.3).

    "When a domain terminates, it may hold references to fbufs it has
    received. In the case of an abnormal termination, the domain may not
    properly relinquish those references" — the kernel sweeps them here.
    A terminating domain's own endpoints are destroyed (their allocators
    torn down), which deallocates the associated free fbufs; chunks whose
    buffers are still referenced externally are retained by the kernel
    until the last reference drops (handled by {!Allocator.teardown}). *)

val terminate_domain :
  Region.t -> Fbufs_vm.Pd.t -> allocators:Allocator.t list -> unit
(** Kill a protection domain: release every fbuf reference it holds
    (receiver side), tear down the endpoints it owned ([allocators], all
    of which must be owned by this domain), and mark it dead. Charges the
    kernel's cleanup work. Idempotent on the reference sweep; raises
    [Invalid_argument] if an allocator belongs to another domain. *)

val orphaned_references : Region.t -> Fbufs_vm.Pd.t -> int
(** How many references a (possibly dead) domain still holds across the
    region — 0 after {!terminate_domain}. *)
