open Fbufs_vm

let bounds (fb : Fbuf.t) ~off ~len op =
  if off < 0 || len < 0 || off + len > Fbuf.size fb then
    invalid_arg
      (Printf.sprintf "%s: [%d, %d) outside fbuf of %d bytes" op off
         (off + len) (Fbuf.size fb))

let write fb ~as_ ~off s =
  bounds fb ~off ~len:(String.length s) "Fbuf_api.write";
  Access.write_string as_ ~vaddr:(Fbuf.vaddr fb + off) s

let write_bytes fb ~as_ ~off b =
  bounds fb ~off ~len:(Bytes.length b) "Fbuf_api.write_bytes";
  Access.write_bytes as_ ~vaddr:(Fbuf.vaddr fb + off) b

let read fb ~as_ ~off ~len =
  bounds fb ~off ~len "Fbuf_api.read";
  Access.read_bytes as_ ~vaddr:(Fbuf.vaddr fb + off) ~len

let read_string fb ~as_ ~off ~len = Bytes.to_string (read fb ~as_ ~off ~len)

let touch_write fb ~as_ =
  Access.touch_write as_ ~vaddr:(Fbuf.vaddr fb) ~npages:fb.Fbuf.npages

let touch_read fb ~as_ =
  Access.touch_read as_ ~vaddr:(Fbuf.vaddr fb) ~npages:fb.Fbuf.npages

let checksum fb ~as_ ~off ~len =
  bounds fb ~off ~len "Fbuf_api.checksum";
  Access.checksum as_ ~vaddr:(Fbuf.vaddr fb + off) ~len

let word_at fb ~as_ ~off =
  bounds fb ~off ~len:4 "Fbuf_api.word_at";
  Access.read_word as_ ~vaddr:(Fbuf.vaddr fb + off)

let set_word fb ~as_ ~off v =
  bounds fb ~off ~len:4 "Fbuf_api.set_word";
  Access.write_word as_ ~vaddr:(Fbuf.vaddr fb + off) v
