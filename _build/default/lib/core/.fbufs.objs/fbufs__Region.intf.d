lib/core/region.mli: Fbuf Fbufs_sim Fbufs_vm
