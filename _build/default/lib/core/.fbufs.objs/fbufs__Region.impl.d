lib/core/region.ml: Array Cost_model Fbuf Fbufs_sim Fbufs_vm Hashtbl Machine Pd Phys_mem Printf Prot Stats Vm_map
