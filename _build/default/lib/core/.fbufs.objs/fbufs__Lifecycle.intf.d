lib/core/lifecycle.mli: Allocator Fbufs_vm Region
