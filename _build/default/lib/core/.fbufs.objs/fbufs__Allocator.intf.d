lib/core/allocator.mli: Fbuf Fbufs_vm Path Region
