lib/core/fbuf_api.ml: Access Bytes Fbuf Fbufs_vm Printf String
