lib/core/fbuf_api.mli: Fbuf Fbufs_vm
