lib/core/lifecycle.ml: Allocator Cost_model Fbuf Fbufs_sim Fbufs_vm List Machine Pd Region Stats Transfer
