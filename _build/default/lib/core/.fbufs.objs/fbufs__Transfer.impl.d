lib/core/transfer.ml: Fbuf Fbufs_sim Fbufs_vm List Machine Path Pd Printf Prot Stats Vm_map
