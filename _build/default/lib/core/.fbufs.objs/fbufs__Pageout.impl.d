lib/core/pageout.ml: Allocator Cost_model Fbufs_sim List Machine Phys_mem Region Stats
