lib/core/fbuf.ml: Fbufs_sim Fbufs_vm Format Hashtbl List Path Pd Printf
