lib/core/allocator.ml: Cost_model Fbuf Fbufs_sim Fbufs_vm List Machine Path Pd Phys_mem Prot Region Stats Transfer Vm_map
