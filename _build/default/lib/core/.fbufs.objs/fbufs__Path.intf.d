lib/core/path.mli: Fbufs_vm Format
