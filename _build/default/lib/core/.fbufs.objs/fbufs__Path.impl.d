lib/core/path.ml: Fbufs_vm Format List Pd
