lib/core/transfer.mli: Fbuf Fbufs_vm
