lib/core/pageout.mli: Allocator Region
