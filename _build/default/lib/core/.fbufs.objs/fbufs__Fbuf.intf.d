lib/core/fbuf.mli: Fbufs_sim Fbufs_vm Format Hashtbl Path
