(** Machine-dependent physical map: one per address space.

    This is the lower level of the two-level VM system the paper insists
    modern portable operating systems use ("mapping changes require the
    modification of both low-level, machine dependent page tables, and
    high-level, machine-independent data structures"). The TLB refill
    handler reads this table; every mutation charges simulated time, and
    mutations of entries that may be cached in the TLB additionally pay a
    shootdown. *)

type entry = { frame : Fbufs_sim.Phys_mem.frame_id; writable : bool }

type t

val create : Fbufs_sim.Machine.t -> asid:int -> t

val asid : t -> int

val lookup : t -> vpn:int -> entry option
(** Hardware-walk view used by the TLB refill path; free of charge (the
    refill cost is charged by the access path). *)

val enter : t -> vpn:int -> frame:Fbufs_sim.Phys_mem.frame_id -> writable:bool -> unit
(** Install or replace a translation. Charges [pmap_enter]. *)

val protect : t -> vpn:int -> writable:bool -> unit
(** Change the writable bit of an existing entry. Charges [pmap_protect],
    plus a TLB shootdown when write permission is being removed (a stale
    writable TLB entry would be a protection hole). Upgrades are lazy: the
    stale read-only TLB entry is left to cause a modification fault.
    Raises [Invalid_argument] if no entry exists. *)

val remove : t -> vpn:int -> entry option
(** Drop a translation, returning it. Charges [pmap_remove] plus a TLB
    shootdown. Returns [None] (and charges nothing) if absent. *)

val entry_count : t -> int
