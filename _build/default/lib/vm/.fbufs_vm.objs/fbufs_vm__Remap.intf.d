lib/vm/remap.mli: Pd
