lib/vm/vm_map.mli: Fbufs_sim Pmap Prot
