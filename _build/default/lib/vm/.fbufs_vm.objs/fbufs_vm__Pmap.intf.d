lib/vm/pmap.mli: Fbufs_sim
