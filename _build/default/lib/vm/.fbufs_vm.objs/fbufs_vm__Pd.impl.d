lib/vm/pd.ml: Fbufs_sim Format Machine Pmap Vm_map
