lib/vm/pmap.ml: Cost_model Fbufs_sim Hashtbl Machine Phys_mem Stats Tlb
