lib/vm/access.ml: Bytes Char Cost_model Fbufs_sim Int32 Machine Pd Phys_mem Pmap Prot Stats Tlb Vm_map
