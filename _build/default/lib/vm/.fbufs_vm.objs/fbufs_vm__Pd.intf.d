lib/vm/pd.mli: Fbufs_sim Format Vm_map
