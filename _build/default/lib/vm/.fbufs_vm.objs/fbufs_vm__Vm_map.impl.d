lib/vm/vm_map.ml: Cost_model Fbufs_sim Hashtbl Machine Option Phys_mem Pmap Prot Stats
