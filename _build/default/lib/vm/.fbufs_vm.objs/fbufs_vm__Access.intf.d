lib/vm/access.mli: Pd
