lib/vm/remap.ml: Cost_model Fbufs_sim List Machine Pd Phys_mem Prot Vm_map
