open Fbufs_sim

type t = {
  id : int;
  name : string;
  kernel : bool;
  m : Machine.t;
  map : Vm_map.t;
  mutable live : bool;
  mutable fault_hook : (t -> vpn:int -> write:bool -> bool) option;
}

let create m ?(kernel = false) name =
  let id = Machine.fresh_id m in
  let asid = Machine.fresh_asid m in
  {
    id;
    name;
    kernel;
    m;
    map = Vm_map.create m ~name ~asid;
    live = true;
    fault_hook = None;
  }

let asid t = Pmap.asid (Vm_map.pmap t.map)

let equal a b = a.id = b.id

let pp ppf t =
  Format.fprintf ppf "%s#%d%s" t.name t.id (if t.kernel then "(k)" else "")
