(** Protection domains.

    A protection domain is an address space (one {!Vm_map.t} with its own
    ASID) plus an identity. The kernel is itself a domain — "a range of
    virtual addresses, the fbuf region, is reserved in each protection
    domain, including the kernel". Kernel domains are trusted: enforcement
    operations such as securing a volatile fbuf are no-ops when the
    originator is trusted.

    [fault_hook] lets a higher layer intercept faults the plain VM cannot
    resolve; the fbuf library uses it to implement the paper's "invalid DAG
    references appear to the receiver as the absence of data" behaviour
    (mapping a null leaf page on bad reads inside the fbuf region). *)

type t = {
  id : int;
  name : string;
  kernel : bool;
  m : Fbufs_sim.Machine.t;
  map : Vm_map.t;
  mutable live : bool;
  mutable fault_hook : (t -> vpn:int -> write:bool -> bool) option;
}

val create : Fbufs_sim.Machine.t -> ?kernel:bool -> string -> t
(** A fresh domain with its own ASID and empty address space. *)

val asid : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
