(** Page protection values. *)

type t = No_access | Read_only | Read_write

val can_read : t -> bool
val can_write : t -> bool

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
