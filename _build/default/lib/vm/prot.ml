type t = No_access | Read_only | Read_write

let can_read = function No_access -> false | Read_only | Read_write -> true
let can_write = function No_access | Read_only -> false | Read_write -> true

let equal (a : t) b = a = b

let to_string = function
  | No_access -> "---"
  | Read_only -> "r--"
  | Read_write -> "rw-"

let pp ppf t = Format.pp_print_string ppf (to_string t)
