(* Benchmark harness.

   Two things happen here:

   1. Bechamel micro/meso-benchmarks — one Test.make per paper artefact
      (Table 1, the remap table, Figures 3-6) measuring the real execution
      cost of the code paths that regenerate it, plus a few core-operation
      microbenchmarks. These quantify the *simulator*.

   2. The full reproduction printout: every table and figure of the paper,
      simulated-time results next to the paper's numbers. These quantify
      the *reproduction*.
*)

open Bechamel
open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module H = Fbufs_harness
module Testbed = H.Testbed
module Testproto = Fbufs_protocols.Testproto

(* ---------- steady-state fixtures reused across benchmark runs -------- *)

let roundtrip_fixture variant =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] variant in
  let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
  fun bytes ->
    let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
    Ipc.call conn msg ~handler:(fun received ->
        Msg.touch_read received ~as_:recv;
        Ipc.free_deferred conn received);
    Msg.free_all msg ~dom:app

let bench_table1 =
  let rt = roundtrip_fixture Fbuf.cached_volatile in
  Test.make ~name:"table1: cached/volatile 8-page roundtrip"
    (Staged.stage (fun () -> rt (8 * 4096)))

let bench_remap =
  let open Fbufs_vm in
  let m = Machine.create ~nframes:4096 () in
  let a = Pd.create m "a" and b = Pd.create m "b" in
  let npages = 16 in
  let vpn_a = Remap.alloc_pages a ~npages ~clear_fraction:0.0 in
  let vpn_b = Vm_map.reserve_private b.Pd.map ~npages in
  ignore (Remap.move ~src:a ~dst:b ~src_vpn:vpn_a ~npages ~dst_vpn:vpn_b ());
  Test.make ~name:"remap: 16-page ping-pong round"
    (Staged.stage (fun () ->
         ignore
           (Remap.move ~src:b ~dst:a ~src_vpn:vpn_b ~npages ~dst_vpn:vpn_a ());
         ignore
           (Remap.move ~src:a ~dst:b ~src_vpn:vpn_a ~npages ~dst_vpn:vpn_b ())))

let bench_fig3 =
  let rt = roundtrip_fixture Fbuf.volatile_only in
  Test.make ~name:"fig3: 64K volatile transfer"
    (Staged.stage (fun () -> rt 65536))

let bench_fig4 =
  let stack = H.Stacks.three_domains () in
  Test.make ~name:"fig4: 16K message through 3-domain loopback stack"
    (Staged.stage (fun () ->
         let msg =
           Testproto.make_message ~alloc:stack.H.Stacks.data_alloc
             ~as_:stack.H.Stacks.sender_dom ~bytes:16384 ()
         in
         stack.H.Stacks.send msg))

let bench_fig5 =
  Test.make ~name:"fig5: end-to-end user-user 64K run (4 msgs)"
    (Staged.stage (fun () ->
         ignore
           (H.Exp_fig5.run_one ~uncached:false ~config:H.Exp_fig5.User_user
              ~bytes:65536 ~nmsgs:4 ())))

let bench_fig6 =
  Test.make ~name:"fig6: end-to-end user-user 64K run, uncached (4 msgs)"
    (Staged.stage (fun () ->
         ignore
           (H.Exp_fig5.run_one ~uncached:true ~config:H.Exp_fig5.User_user
              ~bytes:65536 ~nmsgs:4 ())))

let bench_access =
  let m = Machine.create ~nframes:64 () in
  let d = Fbufs_vm.Pd.create m "bench" in
  let vpn = Fbufs_vm.Vm_map.reserve_private d.Fbufs_vm.Pd.map ~npages:4 in
  Fbufs_vm.Vm_map.map_zero_fill d.Fbufs_vm.Pd.map ~vpn ~npages:4;
  let va = vpn * 4096 in
  Fbufs_vm.Access.write_word d ~vaddr:va 1;
  Test.make ~name:"micro: charged word access (TLB hit)"
    (Staged.stage (fun () -> ignore (Fbufs_vm.Access.read_word d ~vaddr:va)))

let bench_msg_ops =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:4 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:16384 in
  Test.make ~name:"micro: message split+join at 4K"
    (Staged.stage (fun () ->
         let a, b = Msg.split msg 4096 in
         ignore (Msg.join a b)))

let bench_integrated =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let fbs = List.init 8 (fun _ -> Allocator.alloc alloc ~npages:1) in
  let msg =
    List.fold_left
      (fun acc fb -> Msg.join acc (Msg.of_fbuf fb ~off:0 ~len:4096))
      Msg.empty fbs
  in
  let meta = Allocator.alloc alloc ~npages:1 in
  Test.make ~name:"micro: integrated DAG serialize (8 leaves)"
    (Staged.stage (fun () ->
         ignore (Fbufs_msg.Integrated.serialize msg ~meta ~as_:app)))

let benchmarks () =
  let tests =
    [
      bench_table1;
      bench_remap;
      bench_fig3;
      bench_fig4;
      bench_fig5;
      bench_fig6;
      bench_access;
      bench_msg_ops;
      bench_integrated;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  print_endline "== Bechamel: real execution cost of the harness ==";
  Printf.printf "%-52s  %14s\n" "benchmark" "ns/run";
  print_endline (String.make 70 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%14.1f" e
            | Some [] | None -> "             -"
          in
          Printf.printf "%-52s  %s\n" name est)
        analyzed)
    tests;
  print_newline ()

(* ---------- full reproduction ----------------------------------------- *)

let reproduce () =
  H.Exp_table1.print (H.Exp_table1.run ());
  H.Exp_remap.print (H.Exp_remap.run ());
  H.Exp_fig3.print (H.Exp_fig3.run ());
  H.Exp_fig4.print (H.Exp_fig4.run ());
  print_endline "\n-- Figure 5 (cached/volatile fbufs) --";
  H.Exp_fig5.print (H.Exp_fig5.run ~uncached:false ());
  print_endline "\n-- Figure 6 (uncached, non-volatile fbufs) --";
  H.Exp_fig5.print (H.Exp_fig5.run ~uncached:true ())

let () =
  benchmarks ();
  reproduce ()
