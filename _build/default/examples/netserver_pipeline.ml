(* The microkernel scenario end to end: two hosts, a user-level network
   server on each, an application above it — the paper's
   user-netserver-user configuration over the simulated Osiris boards.

   Shows the whole system working together (fbufs, UDP/IP, proxies, the
   ATM adapter with per-VCI cached buffer pools) and then prints the
   mechanism-level counters that explain *why* it is fast: the network
   server never maps the data pages it forwards.

   Run with: dune exec examples/netserver_pipeline.exe *)

open Fbufs_sim
module H = Fbufs_harness

let () =
  let bytes = 256 * 1024 in
  Printf.printf
    "user -> netserver -> kernel | ATM null modem | kernel -> netserver -> user\n";
  Printf.printf "message size %d KB, IP PDU 16 KB, window 8\n\n" (bytes / 1024);
  let cached =
    H.Exp_fig5.run_one ~uncached:false ~config:H.Exp_fig5.User_netserver_user
      ~bytes ()
  in
  let uncached =
    H.Exp_fig5.run_one ~uncached:true ~config:H.Exp_fig5.User_netserver_user
      ~bytes ()
  in
  let baseline =
    H.Exp_fig5.run_one ~uncached:false ~config:H.Exp_fig5.Kernel_kernel ~bytes
      ()
  in
  Printf.printf "%-28s %10s %12s %12s\n" "configuration" "Mb/s" "rx CPU" "tx CPU";
  let row name (p : H.Exp_fig5.point) =
    Printf.printf "%-28s %10.0f %11.0f%% %11.0f%%\n" name p.H.Exp_fig5.mbps
      (100.0 *. p.H.Exp_fig5.rx_cpu_load)
      (100.0 *. p.H.Exp_fig5.tx_cpu_load)
  in
  row "kernel-kernel (baseline)" baseline;
  row "u-ns-u, cached fbufs" cached;
  row "u-ns-u, plain fbufs" uncached;
  Printf.printf
    "\nTwo domain crossings per host cost %.1f%% of the baseline throughput\n"
    (100.0 *. (1.0 -. (cached.H.Exp_fig5.mbps /. baseline.H.Exp_fig5.mbps)));

  (* Re-run one cached transfer standalone to show the counters that make
     the argument: the netserver reads only headers, so with lazy mapping
     it never pays per-page VM costs for the data it forwards. *)
  print_newline ();
  let tb = H.Testbed.create () in
  let m = tb.H.Testbed.m in
  let app = H.Testbed.user_domain tb "app" in
  let ns = H.Testbed.user_domain tb "netserver" in
  let sink_dom = H.Testbed.user_domain tb "consumer" in
  let alloc =
    H.Testbed.allocator tb ~domains:[ app; ns; sink_dom ] Fbufs.Fbuf.cached_volatile
  in
  let hop1 = Fbufs_ipc.Ipc.connect tb.H.Testbed.region ~src:app ~dst:ns () in
  let hop2 = Fbufs_ipc.Ipc.connect tb.H.Testbed.region ~src:ns ~dst:sink_dom () in
  let lazy0 = Stats.get m.Machine.stats "fbuf.lazy_map" in
  for _ = 1 to 10 do
    let msg =
      Fbufs_protocols.Testproto.make_message ~alloc ~as_:app ~bytes:65536 ()
    in
    Fbufs_ipc.Ipc.call hop1 msg ~handler:(fun at_ns ->
        (* The netserver forwards without touching the payload. *)
        Fbufs_ipc.Ipc.call hop2 at_ns ~handler:(fun at_consumer ->
            Fbufs_msg.Msg.touch_read at_consumer ~as_:sink_dom;
            Fbufs_ipc.Ipc.free_deferred hop2 at_consumer);
        Fbufs_ipc.Ipc.free_deferred hop1 at_ns);
    Fbufs_msg.Msg.free_all msg ~dom:app
  done;
  Printf.printf
    "10 x 64KB forwarded through the netserver: %d lazy page mappings\n"
    (Stats.get m.Machine.stats "fbuf.lazy_map" - lazy0);
  Printf.printf
    "(16 pages per message mapped once in the consumer on first use,\n\
     zero mappings ever created in the netserver)\n"
