(* Continuous media: the paper's motivating workload.

   A capture domain produces 30 video frames per second; each frame is an
   ADU that crosses two protection boundaries (capture -> compressor ->
   display), the structure a microkernel multimedia system would have.
   We compare cached/volatile fbufs against the plain base mechanism and
   report the per-frame CPU cost and the headroom left at 30 fps.

   Run with: dune exec examples/video_server.exe *)

open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testbed = Fbufs_harness.Testbed

let frame_bytes = 512 * 512 (* 512x512 8-bit grey: 64 pages *)
let fps = 30
let frames = 60

let run variant =
  let tb = Testbed.create () in
  let m = tb.Testbed.m in
  let capture = Testbed.user_domain tb "capture" in
  let compress = Testbed.user_domain tb "compressor" in
  let display = Testbed.user_domain tb "display" in
  let alloc =
    Testbed.allocator tb ~domains:[ capture; compress; display ] variant
  in
  let hop1 = Ipc.connect tb.Testbed.region ~src:capture ~dst:compress () in
  let hop2 = Ipc.connect tb.Testbed.region ~src:compress ~dst:display () in
  let t0 = Machine.now m in
  for i = 1 to frames do
    let frame =
      Fbufs_protocols.Testproto.make_message ~alloc ~as_:capture
        ~bytes:frame_bytes ()
    in
    Ipc.call hop1 frame ~handler:(fun received ->
        (* The compressor samples the frame (motion estimation over a
           quarter of the pixels); being an intermediate layer, it does not
           modify the buffer — a real codec would allocate an output
           buffer for the compressed stream. *)
        ignore
          (Msg.checksum (Msg.truncate received (frame_bytes / 4)) ~as_:compress);
        Ipc.call hop2 received ~handler:(fun at_display ->
            (* The display touches every page to blit it out. *)
            Msg.touch_read at_display ~as_:display;
            Ipc.free_deferred hop2 at_display);
        Ipc.free_deferred hop1 received);
    Msg.free_all frame ~dom:capture;
    ignore i
  done;
  let per_frame = (Machine.now m -. t0) /. float_of_int frames in
  per_frame

let () =
  Printf.printf "Continuous media through 3 domains: %d frames of %d KB at %d fps\n\n"
    frames (frame_bytes / 1024) fps;
  let budget = 1e6 /. float_of_int fps in
  Printf.printf "%-22s %14s %14s %10s\n" "buffering" "us/frame" "budget us"
    "headroom";
  let row name variant =
    let us = run variant in
    Printf.printf "%-22s %14.0f %14.0f %9.0f%%\n" name us budget
      (100.0 *. (1.0 -. (us /. budget)))
  in
  row "cached/volatile fbufs" Fbuf.cached_volatile;
  row "plain fbufs" Fbuf.plain;
  print_newline ();
  print_endline
    "The cached/volatile path leaves the CPU free for the codec; the plain\n\
     base mechanism burns the frame budget on per-page VM work.";
  (* Sanity-check the claim programmatically, like the paper's two-fold
     loopback result. *)
  let cached = run Fbuf.cached_volatile and plain = run Fbuf.plain in
  assert (plain > cached *. 1.5)
