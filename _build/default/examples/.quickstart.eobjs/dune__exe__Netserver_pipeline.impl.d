examples/netserver_pipeline.ml: Fbufs Fbufs_harness Fbufs_ipc Fbufs_msg Fbufs_protocols Fbufs_sim Machine Printf Stats
