examples/quickstart.ml: Allocator Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_sim Fbufs_vm List Machine Printf Stats Transfer Vm_map
