examples/netserver_pipeline.mli:
