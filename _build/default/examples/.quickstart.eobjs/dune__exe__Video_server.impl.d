examples/video_server.ml: Fbuf Fbufs Fbufs_harness Fbufs_ipc Fbufs_msg Fbufs_protocols Fbufs_sim Machine Printf
