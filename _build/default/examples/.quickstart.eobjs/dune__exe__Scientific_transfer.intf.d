examples/scientific_transfer.mli:
