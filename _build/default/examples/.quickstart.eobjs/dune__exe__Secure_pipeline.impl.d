examples/secure_pipeline.ml: Allocator Bytes Char Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_ipc Fbufs_msg Fbufs_vm List Printf String Transfer Vm_map
