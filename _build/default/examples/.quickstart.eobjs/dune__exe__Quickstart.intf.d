examples/quickstart.mli:
