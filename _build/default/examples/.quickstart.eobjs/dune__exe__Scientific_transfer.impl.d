examples/scientific_transfer.ml: Allocator Bytes Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_ipc Fbufs_msg Fbufs_sim Machine Printf Rng Stats
