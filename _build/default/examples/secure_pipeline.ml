(* A presentation layer under an untrusted producer.

   Section 2.1.3 of the paper: layers never modify buffers in place — "an
   intermediate layer that needs to modify the data in the buffer instead
   allocates and writes to a new buffer" — and a receiver that *interprets*
   data from an untrusted originator first secures the buffer so the
   originator cannot change it underneath (the volatile-fbuf contract).

   The pipeline: an untrusted application produces records; a cipher
   service in its own domain secures each input buffer, validates a framing
   header, and encrypts into a freshly allocated output buffer on the
   downstream path; a store domain consumes the ciphertext. A malicious
   producer that scribbles on its buffer after sending is caught by the
   secure step.

   Run with: dune exec examples/secure_pipeline.exe *)

open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testbed = Fbufs_harness.Testbed

let key = 0x5A

let xor_encrypt b =
  Bytes.map (fun c -> Char.chr (Char.code c lxor key)) b

let () =
  let tb = Testbed.create () in
  let producer = Testbed.user_domain tb "producer" in
  let cipher = Testbed.user_domain tb "cipher" in
  let store = Testbed.user_domain tb "store" in

  (* Two data paths: plaintext producer->cipher, ciphertext cipher->store.
     The cipher's output buffers come from its own allocator — in-place
     modification of the input is neither needed nor possible. *)
  let plain_alloc =
    Testbed.allocator tb ~domains:[ producer; cipher ] Fbuf.cached_volatile
  in
  let cipher_alloc =
    Testbed.allocator tb ~domains:[ cipher; store ] Fbuf.cached_volatile
  in
  let hop1 = Ipc.connect tb.Testbed.region ~src:producer ~dst:cipher () in
  let hop2 = Ipc.connect tb.Testbed.region ~src:cipher ~dst:store () in

  let stored = ref [] in
  let rejected = ref 0 in

  let encrypt_and_forward plaintext =
    (* 1. Secure: after this, the producer cannot modify the buffer. *)
    List.iter Transfer.secure (Msg.fbufs plaintext);
    (* 2. Validate the framing header *after* securing. *)
    let hdr = Msg.sub_bytes plaintext ~as_:cipher ~off:0 ~len:4 in
    if Bytes.to_string hdr <> "REC:" then begin
      incr rejected;
      Ipc.free_deferred hop1 plaintext
    end
    else begin
      (* 3. Encrypt into a new buffer on the downstream path. *)
      let data = Msg.to_bytes plaintext ~as_:cipher in
      let ct = xor_encrypt data in
      let ps = Testbed.page_size tb in
      let out =
        Allocator.alloc cipher_alloc
          ~npages:((Bytes.length ct + ps - 1) / ps)
      in
      Fbuf_api.write_bytes out ~as_:cipher ~off:0 ct;
      let out_msg = Msg.of_fbuf out ~off:0 ~len:(Bytes.length ct) in
      Ipc.call hop2 out_msg ~handler:(fun received ->
          stored := Msg.to_bytes received ~as_:store :: !stored;
          Ipc.free_deferred hop2 received);
      Msg.free_all out_msg ~dom:cipher;
      Ipc.free_deferred hop1 plaintext
    end
  in

  (* An honest record. *)
  let send_record payload =
    let body = "REC:" ^ payload in
    let fb = Allocator.alloc plain_alloc ~npages:1 in
    Fbuf_api.write fb ~as_:producer ~off:0 body;
    let msg = Msg.of_fbuf fb ~off:0 ~len:(String.length body) in
    Ipc.call hop1 msg ~handler:encrypt_and_forward;
    (* The producer's handle: with the buffer secured by the cipher, any
       late scribble faults instead of corrupting the pipeline. *)
    (fb, msg)
  in

  let _, m1 = send_record "alpha" in
  Msg.free_all m1 ~dom:producer;
  let fb2, m2 = send_record "bravo" in

  Printf.printf "stored %d ciphertext records, rejected %d\n"
    (List.length !stored) !rejected;
  let decrypted =
    List.rev_map (fun ct -> Bytes.to_string (xor_encrypt ct)) !stored
  in
  List.iteri (fun i s -> Printf.printf "record %d decrypts to %S\n" i s)
    decrypted;
  assert (decrypted = [ "REC:alpha"; "REC:bravo" ]);

  (* The malicious move: rewrite the buffer after the cipher consumed it. *)
  (try
     Fbuf_api.write fb2 ~as_:producer ~off:4 "EVIL!";
     print_endline "BUG: post-send modification succeeded"
   with Vm_map.Protection_violation _ ->
     print_endline "late producer scribble faulted (buffer was secured)");
  Msg.free_all m2 ~dom:producer;

  (* A malformed record is rejected without crashing the cipher. *)
  let fb3 = Allocator.alloc plain_alloc ~npages:1 in
  Fbuf_api.write fb3 ~as_:producer ~off:0 "JUNKdata";
  let m3 = Msg.of_fbuf fb3 ~off:0 ~len:8 in
  Ipc.call hop1 m3 ~handler:encrypt_and_forward;
  Msg.free_all m3 ~dom:producer;
  Printf.printf "malformed records rejected: %d\n" !rejected;
  assert (!rejected = 1);

  (* Steady state: everything went back to the path caches. *)
  Printf.printf "plaintext buffers parked: %d, ciphertext parked: %d\n"
    (Allocator.free_list_length plain_alloc)
    (Allocator.free_list_length cipher_alloc)
