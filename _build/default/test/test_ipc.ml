(* Tests for cross-domain IPC: message hand-off, integrated mode, and the
   deallocation-notice machinery. *)

open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testbed = Fbufs_harness.Testbed
module Testproto = Fbufs_protocols.Testproto

let check = Alcotest.check

let setup ?mode ?auto_free_dst () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let conn =
    Ipc.connect tb.Testbed.region ~src:app ~dst:recv ?mode ?auto_free_dst ()
  in
  (tb, app, recv, alloc, conn)

let make alloc app s =
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:app ~off:0 s;
  Msg.of_fbuf fb ~off:0 ~len:(String.length s)

(* ------------------------------------------------------------------ *)
(* Basic calls                                                         *)
(* ------------------------------------------------------------------ *)

let test_call_delivers_data () =
  let _, app, recv, alloc, conn = setup () in
  let msg = make alloc app "payload!" in
  let seen = ref "" in
  Ipc.call conn msg ~handler:(fun received ->
      seen := Msg.to_string received ~as_:recv;
      Ipc.free_deferred conn received);
  check Alcotest.string "handler read the data" "payload!" !seen

let test_call_charges_latency () =
  let tb, app, _, alloc, conn = setup () in
  let m = tb.Testbed.m in
  let msg = make alloc app "x" in
  let t0 = Machine.now m in
  Ipc.call conn msg ~handler:(fun received -> Ipc.free_deferred conn received);
  let elapsed = Machine.now m -. t0 in
  let cost = m.Machine.cost in
  Alcotest.(check bool)
    (Printf.sprintf "elapsed %.1f >= call+reply" elapsed)
    true
    (elapsed >= cost.Cost_model.ipc_call +. cost.Cost_model.ipc_reply)

let test_receiver_gains_reference () =
  let _, app, recv, alloc, conn = setup () in
  let fb = Allocator.alloc alloc ~npages:1 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:8 in
  Ipc.call conn msg ~handler:(fun _ ->
      check Alcotest.int "receiver holds a ref" 1 (Fbuf.ref_count fb recv));
  ignore app

let test_multiple_fbufs_marshalled () =
  let tb, app, recv, alloc, conn = setup () in
  let m =
    Msg.join (make alloc app "one") (Msg.join (make alloc app "two") (make alloc app "three"))
  in
  let calls0 = Stats.get tb.Testbed.m.Machine.stats "ipc.call" in
  Ipc.call conn m ~handler:(fun received ->
      check Alcotest.string "gathered" "onetwothree"
        (Msg.to_string received ~as_:recv);
      Ipc.free_deferred conn received);
  check Alcotest.int "one control transfer" (calls0 + 1)
    (Stats.get tb.Testbed.m.Machine.stats "ipc.call")

let test_auto_free_dst () =
  let _, app, recv, alloc, conn = setup ~auto_free_dst:true () in
  let fb = Allocator.alloc alloc ~npages:1 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:8 in
  Ipc.call conn msg ~handler:(fun _ -> ());
  check Alcotest.int "receiver's ref auto-released" 0 (Fbuf.ref_count fb recv);
  check Alcotest.int "sender still holds one" 1 (Fbuf.ref_count fb app)

(* ------------------------------------------------------------------ *)
(* Deallocation notices                                                *)
(* ------------------------------------------------------------------ *)

let test_dealloc_deferred_until_next_call () =
  let _, app, recv, alloc, conn = setup () in
  let fb = Allocator.alloc alloc ~npages:1 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:8 in
  Ipc.call conn msg ~handler:(fun received -> Ipc.free_deferred conn received);
  (* The reply of the same call carries the notice. *)
  check Alcotest.int "processed on reply" 0 (Ipc.pending_deallocs conn);
  check Alcotest.int "receiver ref gone" 0 (Fbuf.ref_count fb recv);
  ignore app

let test_dealloc_piggyback_no_extra_message () =
  let tb, app, _, alloc, conn = setup () in
  let stats = tb.Testbed.m.Machine.stats in
  for _ = 1 to 5 do
    let msg = make alloc app "data" in
    Ipc.call conn msg ~handler:(fun received ->
        Ipc.free_deferred conn received);
    Msg.free_all msg ~dom:app
  done;
  check Alcotest.int "no explicit dealloc messages" 0
    (Stats.get stats "ipc.explicit_dealloc_msg");
  Alcotest.(check bool) "notices piggybacked" true
    (Stats.get stats "ipc.dealloc_piggybacked" >= 5)

let test_explicit_flush_charges_message () =
  let tb, app, recv, alloc, conn = setup () in
  ignore recv;
  let fb = Allocator.alloc alloc ~npages:1 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:4 in
  (* Get the receiver a reference without letting the call's reply flush
     the notice queue: defer the free *after* the call. *)
  Ipc.call conn msg ~handler:(fun _ -> ());
  Ipc.free_deferred conn msg;
  check Alcotest.int "pending" 1 (Ipc.pending_deallocs conn);
  Ipc.flush_deallocs conn;
  check Alcotest.int "flushed" 0 (Ipc.pending_deallocs conn);
  check Alcotest.int "explicit message charged" 1
    (Stats.get tb.Testbed.m.Machine.stats "ipc.explicit_dealloc_msg");
  Transfer.free fb ~dom:app

let test_threshold_forces_explicit_flush () =
  let tb, app, recv, alloc, conn = setup () in
  ignore recv;
  let fbs = List.init Ipc.threshold (fun _ -> Allocator.alloc alloc ~npages:1) in
  List.iter
    (fun fb ->
      let msg = Msg.of_fbuf fb ~off:0 ~len:4 in
      Ipc.call conn msg ~handler:(fun _ -> ()))
    fbs;
  (* Now free them all receiver-side with no intervening traffic. *)
  List.iter
    (fun fb -> Ipc.free_deferred conn (Msg.of_fbuf fb ~off:0 ~len:4))
    fbs;
  Alcotest.(check bool) "explicit flush happened" true
    (Stats.get tb.Testbed.m.Machine.stats "ipc.explicit_dealloc_msg" > 0);
  check Alcotest.int "queue drained" 0 (Ipc.pending_deallocs conn);
  List.iter (fun fb -> Transfer.free fb ~dom:app) fbs

(* ------------------------------------------------------------------ *)
(* Integrated mode                                                     *)
(* ------------------------------------------------------------------ *)

let test_integrated_call_roundtrip () =
  let _, app, recv, alloc, conn = setup ~mode:Ipc.Integrated () in
  let m =
    Msg.join (make alloc app "left+") (make alloc app "right")
  in
  let seen = ref "" in
  Ipc.call conn m ~handler:(fun received ->
      seen := Msg.to_string received ~as_:recv;
      Ipc.free_deferred conn received);
  check Alcotest.string "reconstructed across the boundary" "left+right" !seen;
  Msg.free_all m ~dom:app

let test_integrated_meta_buffer_recycled () =
  let tb, app, recv, alloc, conn = setup ~mode:Ipc.Integrated () in
  ignore recv;
  let stats = tb.Testbed.m.Machine.stats in
  let run () =
    let msg = make alloc app "again" in
    Ipc.call conn msg ~handler:(fun received ->
        Ipc.free_deferred conn received);
    Msg.free_all msg ~dom:app
  in
  run ();
  let fresh = Stats.get stats "fbuf.alloc_fresh" in
  for _ = 1 to 5 do
    run ()
  done;
  (* Steady state: neither data nor meta buffers are allocated fresh. *)
  check Alcotest.int "no fresh allocations" fresh
    (Stats.get stats "fbuf.alloc_fresh")

let test_integrated_single_descriptor_marshalled () =
  let tb, app, recv, alloc, conn = setup ~mode:Ipc.Integrated () in
  ignore recv;
  (* A 6-fragment message still marshals one root reference. *)
  let parts = List.init 6 (fun i -> make alloc app (string_of_int i)) in
  let m = List.fold_left Msg.join Msg.empty parts in
  let t0 = Machine.now tb.Testbed.m in
  Ipc.call conn m ~handler:(fun received -> Ipc.free_deferred conn received);
  Msg.free_all m ~dom:app;
  ignore t0;
  Alcotest.(check bool) "ran" true true

let test_integrated_volatile_corruption_is_safe () =
  (* The originator scribbles over the serialized DAG after sending; the
     receiver must see bounded, absent data — never crash. *)
  let tb, app, recv, alloc, _ = setup () in
  let meta_alloc =
    Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
  in
  let m = make alloc app "victim" in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  let root = Fbufs_msg.Integrated.serialize m ~meta ~as_:app in
  List.iter (fun fb -> Transfer.send fb ~src:app ~dst:recv) (Msg.fbufs m);
  Transfer.send meta ~src:app ~dst:recv;
  (* Corrupt: turn the root into a cat node pointing at itself. *)
  Fbufs_vm.Access.write_word app ~vaddr:root 2;
  Fbufs_vm.Access.write_word app ~vaddr:(root + 4) root;
  Fbufs_vm.Access.write_word app ~vaddr:(root + 8) root;
  let got =
    Fbufs_msg.Integrated.deserialize tb.Testbed.region ~as_:recv
      ~root_vaddr:root
  in
  check Alcotest.int "degenerates to empty" 0 (Msg.length got)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_modes_agree =
  QCheck.Test.make ~name:"rebuild and integrated deliver identical bytes"
    ~count:40
    QCheck.(string_of_size Gen.(1 -- 2000))
    (fun s ->
      QCheck.assume (String.length s > 0);
      let run mode =
        let _, app, recv, alloc, conn = setup ~mode () in
        let msg = make alloc app s in
        let out = ref "" in
        Ipc.call conn msg ~handler:(fun received ->
            out := Msg.to_string received ~as_:recv;
            Ipc.free_deferred conn received);
        Msg.free_all msg ~dom:app;
        !out
      in
      run Ipc.Rebuild = s && run Ipc.Integrated = s)

let prop_no_leaks_across_calls =
  QCheck.Test.make ~name:"sustained traffic reaches buffer steady state"
    ~count:20
    QCheck.(int_range 1 4)
    (fun npages ->
      let tb, app, recv, alloc, conn = setup () in
      ignore recv;
      let m = tb.Testbed.m in
      let send () =
        let msg =
          Testproto.make_message ~alloc ~as_:app ~bytes:(npages * 4096) ()
        in
        Ipc.call conn msg ~handler:(fun received ->
            Ipc.free_deferred conn received);
        Msg.free_all msg ~dom:app
      in
      send ();
      let frames = Phys_mem.free_frames m.Machine.pmem in
      for _ = 1 to 30 do
        send ()
      done;
      Phys_mem.free_frames m.Machine.pmem = frames)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "ipc"
    [
      ( "calls",
        [
          tc "delivers data" `Quick test_call_delivers_data;
          tc "charges latency" `Quick test_call_charges_latency;
          tc "receiver gains reference" `Quick test_receiver_gains_reference;
          tc "multiple fbufs marshalled" `Quick test_multiple_fbufs_marshalled;
          tc "auto free dst" `Quick test_auto_free_dst;
        ] );
      ( "dealloc-notices",
        [
          tc "deferred until next call" `Quick
            test_dealloc_deferred_until_next_call;
          tc "piggyback avoids messages" `Quick
            test_dealloc_piggyback_no_extra_message;
          tc "explicit flush charges" `Quick test_explicit_flush_charges_message;
          tc "threshold forces flush" `Quick test_threshold_forces_explicit_flush;
        ] );
      ( "integrated",
        [
          tc "call roundtrip" `Quick test_integrated_call_roundtrip;
          tc "meta buffer recycled" `Quick test_integrated_meta_buffer_recycled;
          tc "single descriptor" `Quick
            test_integrated_single_descriptor_marshalled;
          tc "volatile corruption safe" `Quick
            test_integrated_volatile_corruption_is_safe;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_modes_agree;
          QCheck_alcotest.to_alcotest prop_no_leaks_across_calls;
        ] );
    ]
