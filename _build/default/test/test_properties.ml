(* Model-based property tests: random operation sequences against
   reference models and global invariants of the substrates. *)

open Fbufs_sim
open Fbufs
module Testbed = Fbufs_harness.Testbed

(* ------------------------------------------------------------------ *)
(* Physical memory: conservation and refcount sanity                   *)
(* ------------------------------------------------------------------ *)

let prop_pmem_conservation =
  QCheck.Test.make ~name:"phys_mem conserves frames under random ops"
    ~count:200
    QCheck.(list_of_size Gen.(5 -- 60) (int_bound 2))
    (fun ops ->
      let nframes = 16 in
      let p = Phys_mem.create ~page_size:256 ~nframes in
      let live = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              (* alloc *)
              try live := Phys_mem.alloc p :: !live
              with Phys_mem.Out_of_memory -> ())
          | 1 -> (
              (* incref a random live frame *)
              match !live with
              | [] -> ()
              | f :: _ ->
                  Phys_mem.incref p f;
                  live := f :: !live)
          | _ -> (
              (* decref *)
              match !live with
              | [] -> ()
              | f :: rest ->
                  Phys_mem.decref p f;
                  live := rest))
        ops;
      (* Every live reference must point at a frame with that many refs;
         freed + distinct live = total. *)
      let distinct = List.sort_uniq compare !live in
      let refs_ok =
        List.for_all
          (fun f ->
            Phys_mem.refcount p f
            = List.length (List.filter (( = ) f) !live))
          distinct
      in
      refs_ok
      && Phys_mem.free_frames p + List.length distinct = nframes)

(* ------------------------------------------------------------------ *)
(* TLB against a reference model                                       *)
(* ------------------------------------------------------------------ *)

let prop_tlb_never_lies =
  QCheck.Test.make
    ~name:"TLB hits always agree with the reference map (misses are free)"
    ~count:200
    QCheck.(list_of_size Gen.(5 -- 80) (triple (int_bound 3) (int_bound 4) (int_bound 8)))
    (fun ops ->
      let tlb = Tlb.create ~entries:4 (Rng.create 1) in
      let model : (int * int, bool) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (op, asid, vpn) ->
          match op with
          | 0 ->
              Tlb.insert tlb ~asid ~vpn ~writable:(vpn mod 2 = 0);
              Hashtbl.replace model (asid, vpn) (vpn mod 2 = 0)
          | 1 ->
              Tlb.invalidate tlb ~asid ~vpn;
              Hashtbl.remove model (asid, vpn)
          | 2 ->
              Tlb.flush_asid tlb ~asid;
              Hashtbl.iter
                (fun (a, v) _ ->
                  if a = asid then Hashtbl.remove model (a, v))
                (Hashtbl.copy model)
          | _ -> ())
        ops;
      (* Probe everything: a Hit must match the model exactly; a Miss is
         always legitimate (capacity evictions). *)
      let ok = ref true in
      for asid = 0 to 4 do
        for vpn = 0 to 8 do
          match Tlb.probe tlb ~asid ~vpn ~write:false with
          | Tlb.Hit | Tlb.Hit_readonly ->
              if not (Hashtbl.mem model (asid, vpn)) then ok := false
          | Tlb.Miss -> ()
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Discrete events dispatch in timestamp order                         *)
(* ------------------------------------------------------------------ *)

let prop_des_ordering =
  QCheck.Test.make ~name:"DES dispatches in non-decreasing time order"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1000.0))
    (fun times ->
      let d = Des.create () in
      let dispatched = ref [] in
      List.iter
        (fun t -> Des.schedule d t (fun () -> dispatched := t :: !dispatched))
        times;
      Des.run d;
      let seq = List.rev !dispatched in
      List.length seq = List.length times
      && seq = List.sort compare times)

(* ------------------------------------------------------------------ *)
(* Allocator address-space invariants                                  *)
(* ------------------------------------------------------------------ *)

let overlaps (a_base, a_len) (b_base, b_len) =
  a_base < b_base + b_len && b_base < a_base + a_len

let prop_allocator_no_overlap =
  QCheck.Test.make
    ~name:"uncached alloc/free sequences never hand out overlapping ranges"
    ~count:100
    QCheck.(list_of_size Gen.(5 -- 40) (pair bool (int_range 1 6)))
    (fun ops ->
      let tb = Testbed.create () in
      let app = Testbed.user_domain tb "app" in
      let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.volatile_only in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (do_alloc, npages) ->
          if do_alloc then begin
            let fb = Allocator.alloc alloc ~npages in
            let range = (fb.Fbuf.base_vpn, fb.Fbuf.npages) in
            if
              List.exists
                (fun (fb' : Fbuf.t) ->
                  overlaps range (fb'.Fbuf.base_vpn, fb'.Fbuf.npages))
                !live
            then ok := false;
            live := fb :: !live
          end
          else
            match !live with
            | [] -> ()
            | fb :: rest ->
                Transfer.free fb ~dom:app;
                live := rest)
        ops;
      List.iter (fun fb -> Transfer.free fb ~dom:app) !live;
      !ok)

let prop_allocator_frames_balance =
  QCheck.Test.make ~name:"allocator returns all frames when drained"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 5))
    (fun sizes ->
      let tb = Testbed.create () in
      let m = tb.Testbed.m in
      let app = Testbed.user_domain tb "app" in
      let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.volatile_only in
      let free0 = Phys_mem.free_frames m.Machine.pmem in
      let fbs = List.map (fun n -> Allocator.alloc alloc ~npages:n) sizes in
      let in_use = List.fold_left (fun a n -> a + n) 0 sizes in
      let mid_ok = Phys_mem.free_frames m.Machine.pmem = free0 - in_use in
      List.iter (fun fb -> Transfer.free fb ~dom:app) fbs;
      mid_ok && Phys_mem.free_frames m.Machine.pmem = free0)

(* ------------------------------------------------------------------ *)
(* Region chunk ownership                                              *)
(* ------------------------------------------------------------------ *)

let prop_region_chunk_exclusivity =
  QCheck.Test.make
    ~name:"chunks are never owned by two allocators at once" ~count:60
    QCheck.(list_of_size Gen.(2 -- 20) (pair (int_bound 2) (int_range 1 32)))
    (fun ops ->
      let tb = Testbed.create () in
      let doms =
        Array.init 3 (fun i -> Testbed.user_domain tb (Printf.sprintf "d%d" i))
      in
      let allocs =
        Array.map
          (fun d -> Testbed.allocator tb ~domains:[ d ] Fbuf.volatile_only)
          doms
      in
      let live = Array.make 3 [] in
      (try
         List.iter
           (fun (who, npages) ->
             let fb = Allocator.alloc allocs.(who) ~npages in
             live.(who) <- fb :: live.(who))
           ops
       with Region.Chunk_limit_exceeded _ | Region.Region_exhausted -> ());
      (* No two live fbufs (across all domains) may overlap: chunk and
         extent management must keep domains disjoint. *)
      let all = Array.to_list live |> List.concat in
      let rec pairwise = function
        | [] -> true
        | (fb : Fbuf.t) :: rest ->
            List.for_all
              (fun (fb' : Fbuf.t) ->
                not
                  (overlaps
                     (fb.Fbuf.base_vpn, fb.Fbuf.npages)
                     (fb'.Fbuf.base_vpn, fb'.Fbuf.npages)))
              rest
            && pairwise rest
      in
      let ok = pairwise all in
      Array.iteri
        (fun i fbs ->
          List.iter (fun fb -> Transfer.free fb ~dom:doms.(i)) fbs)
        live;
      ok)

(* ------------------------------------------------------------------ *)
(* Transfer state machine under random interleavings                   *)
(* ------------------------------------------------------------------ *)

let prop_transfer_state_machine =
  QCheck.Test.make
    ~name:"random transfer op sequences preserve mechanism invariants"
    ~count:80
    QCheck.(list_of_size Gen.(3 -- 40) (int_bound 4))
    (fun ops ->
      let tb = Testbed.create () in
      let m = tb.Testbed.m in
      let a = Testbed.user_domain tb "a" in
      let b = Testbed.user_domain tb "b" in
      let c = Testbed.user_domain tb "c" in
      let alloc = Testbed.allocator tb ~domains:[ a; b; c ] Fbuf.cached_volatile in
      let free0 = Phys_mem.free_frames m.Machine.pmem in
      let fb = ref None in
      let step op =
        match (op, !fb) with
        | 0, None -> fb := Some (Allocator.alloc alloc ~npages:2)
        | 1, Some f when Fbuf.ref_count f a > 0 && Fbuf.ref_count f b = 0 ->
            Transfer.send f ~src:a ~dst:b
        | 2, Some f when Fbuf.ref_count f b > 0 && Fbuf.ref_count f c = 0 ->
            Transfer.send f ~src:b ~dst:c
        | 3, Some f -> Transfer.secure f
        | 4, Some f ->
            (* free one ref from some holder, if any *)
            let holder =
              List.find_opt (fun d -> Fbuf.ref_count f d > 0) [ c; b; a ]
            in
            (match holder with
            | Some d ->
                Transfer.free f ~dom:d;
                if Fbuf.total_refs f = 0 then fb := None
            | None -> ())
        | _ -> ()
      in
      List.iter step ops;
      (* Drain. *)
      (match !fb with
      | Some f ->
          List.iter
            (fun d ->
              for _ = 1 to Fbuf.ref_count f d do
                Transfer.free f ~dom:d
              done)
            [ a; b; c ]
      | None -> ());
      (* Invariants: the one cached buffer is parked; frames conserved
         (its 2 frames are parked with it). *)
      Allocator.free_list_length alloc <= 1
      && Phys_mem.free_frames m.Machine.pmem
         = free0 - (2 * Allocator.free_list_length alloc))

(* ------------------------------------------------------------------ *)
(* Rng statistical sanity                                              *)
(* ------------------------------------------------------------------ *)

let prop_rng_uniformish =
  QCheck.Test.make ~name:"rng int is roughly uniform over small ranges"
    ~count:20 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let buckets = Array.make 8 0 in
      let n = 4000 in
      for _ = 1 to n do
        let v = Rng.int r 8 in
        buckets.(v) <- buckets.(v) + 1
      done;
      (* Each bucket within 25% of the expected count. *)
      Array.for_all
        (fun c -> abs (c - (n / 8)) < n / 8 / 4)
        buckets)

let () =
  Alcotest.run "properties"
    [
      ( "models",
        [
          QCheck_alcotest.to_alcotest prop_pmem_conservation;
          QCheck_alcotest.to_alcotest prop_tlb_never_lies;
          QCheck_alcotest.to_alcotest prop_des_ordering;
          QCheck_alcotest.to_alcotest prop_allocator_no_overlap;
          QCheck_alcotest.to_alcotest prop_allocator_frames_balance;
          QCheck_alcotest.to_alcotest prop_region_chunk_exclusivity;
          QCheck_alcotest.to_alcotest prop_transfer_state_machine;
          QCheck_alcotest.to_alcotest prop_rng_uniformish;
        ] );
    ]
