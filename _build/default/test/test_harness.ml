(* Shape regression tests: the paper's qualitative results, asserted.

   These do not pin absolute numbers (the cost model is calibrated, not
   identical hardware); they pin the claims the paper makes — who wins,
   by roughly what factor, and where the crossovers fall. *)

open Fbufs_harness

let check = Alcotest.check

let at series name bytes =
  match List.find_opt (fun s -> s.Report.name = name) series with
  | None -> Alcotest.fail (Printf.sprintf "series %s missing" name)
  | Some s -> (
      match List.assoc_opt bytes s.Report.points with
      | Some v -> v
      | None -> Alcotest.fail (Printf.sprintf "point %d missing" bytes))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_mbps () =
  check (Alcotest.float 0.01) "1 KB in 8 us = 1024 Mb/s" 1024.0
    (Report.mbps ~bytes:1024 ~us:8.0)

let test_fmt_size () =
  check Alcotest.string "4K" "4K" (Report.fmt_size 4096);
  check Alcotest.string "1M" "1M" (Report.fmt_size 1048576);
  check Alcotest.string "odd" "1000" (Report.fmt_size 1000)

(* ------------------------------------------------------------------ *)
(* Table 1 shape                                                       *)
(* ------------------------------------------------------------------ *)

let table1 = lazy (Exp_table1.run ())

let t1 name =
  (List.find
     (fun r -> r.Exp_table1.mechanism = name)
     (Lazy.force table1))
    .Exp_table1.per_page_us

let test_table1_matches_paper_anchors () =
  let within pct paper v = Float.abs (v -. paper) /. paper <= pct in
  Alcotest.(check bool) "cached/volatile within 35% of 3us" true
    (within 0.35 3.0 (t1 "fbufs, cached/volatile"));
  Alcotest.(check bool) "volatile within 25% of 21us" true
    (within 0.25 21.0 (t1 "fbufs, volatile"));
  Alcotest.(check bool) "cached within 25% of 29us" true
    (within 0.25 29.0 (t1 "fbufs, cached"))

let test_table1_order_of_magnitude () =
  let cv = t1 "fbufs, cached/volatile" in
  Alcotest.(check bool) "10x better than uncached/non-volatile" true
    (t1 "fbufs, volatile" /. cv > 5.0
    && t1 "fbufs, cached" /. cv > 5.0
    && t1 "Mach COW" /. cv > 20.0)

let test_table1_copy_worst () =
  Alcotest.(check bool) "copy is the slowest mechanism" true
    (List.for_all
       (fun r ->
         r.Exp_table1.mechanism = "copy"
         || r.Exp_table1.per_page_us < t1 "copy")
       (Lazy.force table1))

(* ------------------------------------------------------------------ *)
(* Remap shape                                                         *)
(* ------------------------------------------------------------------ *)

let test_remap_uncached_fbufs_competitive () =
  (* "The performance of uncached fbufs is competitive with the fastest
     page remapping schemes." *)
  let rows = Exp_remap.run () in
  let pp =
    (List.find (fun r -> r.Exp_remap.scenario = "ping-pong (as published)") rows)
      .Exp_remap.per_page_us
  in
  let volatile = t1 "fbufs, volatile" in
  Alcotest.(check bool)
    (Printf.sprintf "volatile fbufs (%.1f) ~ remap ping-pong (%.1f)" volatile pp)
    true
    (volatile < pp *. 1.4)

(* ------------------------------------------------------------------ *)
(* Figure 3 shape                                                      *)
(* ------------------------------------------------------------------ *)

let fig3 = lazy (Exp_fig3.run ())

let test_fig3_cached_volatile_wins_everywhere () =
  let s = Lazy.force fig3 in
  List.iter
    (fun bytes ->
      let cv = at s "cached/volatile" bytes in
      List.iter
        (fun other ->
          Alcotest.(check bool)
            (Printf.sprintf "cv beats %s at %d" other bytes)
            true
            (cv > at s other bytes))
        [ "volatile"; "cached"; "plain"; "Mach native" ])
    [ 1024; 4096; 65536; 1048576 ]

let test_fig3_mach_beats_plain_only_below_2k () =
  let s = Lazy.force fig3 in
  Alcotest.(check bool) "at 1K Mach native is faster than plain fbufs" true
    (at s "Mach native" 1024 > at s "plain" 1024);
  Alcotest.(check bool) "at 4K it no longer is" true
    (at s "Mach native" 4096 < at s "plain" 4096)

let test_fig3_asymptotes_match_table1 () =
  let s = Lazy.force fig3 in
  (* At 1 MB the throughput approaches page_bits / per_page. *)
  let expect name mech =
    let asym = 4096.0 *. 8.0 /. t1 mech in
    let got = at s name 1048576 in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.0f within 25%% of %.0f" name got asym)
      true
      (Float.abs (got -. asym) /. asym < 0.25)
  in
  expect "volatile" "fbufs, volatile";
  expect "cached" "fbufs, cached"

(* ------------------------------------------------------------------ *)
(* Figure 4 shape                                                      *)
(* ------------------------------------------------------------------ *)

let fig4 = lazy (Exp_fig4.run ())

let test_fig4_cached_approaches_single_domain () =
  let s = Lazy.force fig4 in
  let ratio b = at s "3 dom cached" b /. at s "single domain" b in
  Alcotest.(check bool)
    (Printf.sprintf "at 256K ratio %.2f >= 0.9" (ratio 262144))
    true
    (ratio 262144 >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "at 1M ratio %.2f >= 0.95" (ratio 1048576))
    true
    (ratio 1048576 >= 0.95)

let test_fig4_cached_roughly_twice_uncached () =
  let s = Lazy.force fig4 in
  List.iter
    (fun b ->
      let r = at s "3 dom cached" b /. at s "3 dom uncached" b in
      Alcotest.(check bool)
        (Printf.sprintf "at %d cached/uncached = %.2f in [1.25, 2.6]" b r)
        true
        (r >= 1.25 && r <= 2.6))
    [ 4096; 65536; 1048576 ]

let test_fig4_fragmentation_knee_at_4k () =
  (* The single-domain curve loses its slope at the 4 KB PDU boundary. *)
  let s = Lazy.force fig4 in
  let v b = at s "single domain" b in
  let gain_below = v 2048 /. v 1024 in
  let gain_at = v 4096 /. v 2048 in
  Alcotest.(check bool)
    (Printf.sprintf "slope drops at 4K (%.2f -> %.2f)" gain_below gain_at)
    true
    (gain_at < gain_below -. 0.2)

(* ------------------------------------------------------------------ *)
(* Figures 5/6 shape                                                   *)
(* ------------------------------------------------------------------ *)

let test_fig5_crossings_free_for_large_messages () =
  let kk =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.Kernel_kernel
      ~bytes:262144 ~nmsgs:8 ()
  in
  let uu =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user ~bytes:262144
      ~nmsgs:8 ()
  in
  let unu =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_netserver_user
      ~bytes:262144 ~nmsgs:8 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "uu %.0f within 3%% of kk %.0f" uu.Exp_fig5.mbps
       kk.Exp_fig5.mbps)
    true
    (uu.Exp_fig5.mbps > kk.Exp_fig5.mbps *. 0.97);
  Alcotest.(check bool) "unu too" true
    (unu.Exp_fig5.mbps > kk.Exp_fig5.mbps *. 0.95)

let test_fig5_medium_messages_pay_ipc () =
  let kk =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.Kernel_kernel
      ~bytes:16384 ~nmsgs:16 ()
  in
  let uu =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user ~bytes:16384
      ~nmsgs:16 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "at 16K uu %.0f < kk %.0f" uu.Exp_fig5.mbps kk.Exp_fig5.mbps)
    true
    (uu.Exp_fig5.mbps < kk.Exp_fig5.mbps *. 0.92)

let test_fig5_max_at_io_bound () =
  let kk =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.Kernel_kernel
      ~bytes:524288 ~nmsgs:8 ()
  in
  (* The paper's 285 Mb/s TurboChannel ceiling. *)
  Alcotest.(check bool)
    (Printf.sprintf "max %.0f in [270, 290]" kk.Exp_fig5.mbps)
    true
    (kk.Exp_fig5.mbps > 270.0 && kk.Exp_fig5.mbps < 290.0)

let test_fig6_uncached_degrades_user_paths () =
  let cached =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user ~bytes:524288
      ~nmsgs:8 ()
  in
  let uncached =
    Exp_fig5.run_one ~uncached:true ~config:Exp_fig5.User_user ~bytes:524288
      ~nmsgs:8 ()
  in
  let drop = 1.0 -. (uncached.Exp_fig5.mbps /. cached.Exp_fig5.mbps) in
  Alcotest.(check bool)
    (Printf.sprintf "degradation %.0f%% in [8%%, 30%%]" (100.0 *. drop))
    true
    (drop > 0.08 && drop < 0.30);
  Alcotest.(check bool) "receiver works harder uncached" true
    (uncached.Exp_fig5.rx_cpu_load > cached.Exp_fig5.rx_cpu_load)

let test_fig6_netserver_marginal () =
  (* UDP never touches the body, so the extra netserver crossing costs
     almost nothing even uncached (lazy mapping). *)
  let uu =
    Exp_fig5.run_one ~uncached:true ~config:Exp_fig5.User_user ~bytes:262144
      ~nmsgs:8 ()
  in
  let unu =
    Exp_fig5.run_one ~uncached:true ~config:Exp_fig5.User_netserver_user
      ~bytes:262144 ~nmsgs:8 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "unu %.0f within 6%% of uu %.0f" unu.Exp_fig5.mbps
       uu.Exp_fig5.mbps)
    true
    (unu.Exp_fig5.mbps > uu.Exp_fig5.mbps *. 0.94)

let test_fig5_data_integrity_under_load () =
  (* The end-to-end run asserts message counts internally; also check the
     rx CPU accounting is sane. *)
  let p =
    Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user ~bytes:65536
      ~nmsgs:12 ()
  in
  Alcotest.(check bool) "loads within [0,1]" true
    (p.Exp_fig5.rx_cpu_load >= 0.0
    && p.Exp_fig5.rx_cpu_load <= 1.0
    && p.Exp_fig5.tx_cpu_load >= 0.0
    && p.Exp_fig5.tx_cpu_load <= 1.0)

(* ------------------------------------------------------------------ *)
(* Testbed / stacks plumbing                                           *)
(* ------------------------------------------------------------------ *)

let test_testbed_domains_registered () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "x" in
  (* Registered domains resolve invalid region reads to the dead page. *)
  let config = Fbufs.Region.config tb.Testbed.region in
  let va = (config.Fbufs.Region.base_vpn + 7) * Testbed.page_size tb in
  check Alcotest.int "dead page read" 0 (Fbufs_vm.Access.read_word d ~vaddr:va)

let test_window_monotone () =
  let mbps w =
    (Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user ~bytes:131072
       ~window:w ~nmsgs:8 ())
      .Exp_fig5.mbps
  in
  let w1 = mbps 1 and w8 = mbps 8 in
  Alcotest.(check bool)
    (Printf.sprintf "window 8 (%.0f) >= window 1 (%.0f)" w8 w1)
    true (w8 >= w1)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "harness"
    [
      ( "report",
        [ tc "mbps" `Quick test_mbps; tc "fmt_size" `Quick test_fmt_size ] );
      ( "table1",
        [
          tc "matches paper anchors" `Slow test_table1_matches_paper_anchors;
          tc "order of magnitude" `Slow test_table1_order_of_magnitude;
          tc "copy worst" `Slow test_table1_copy_worst;
        ] );
      ( "remap",
        [ tc "uncached fbufs competitive" `Slow test_remap_uncached_fbufs_competitive ] );
      ( "fig3",
        [
          tc "cached/volatile wins everywhere" `Slow
            test_fig3_cached_volatile_wins_everywhere;
          tc "Mach beats plain only below 2K" `Slow
            test_fig3_mach_beats_plain_only_below_2k;
          tc "asymptotes match table1" `Slow test_fig3_asymptotes_match_table1;
        ] );
      ( "fig4",
        [
          tc "cached approaches single domain" `Slow
            test_fig4_cached_approaches_single_domain;
          tc "cached ~2x uncached" `Slow test_fig4_cached_roughly_twice_uncached;
          tc "fragmentation knee at 4K" `Slow test_fig4_fragmentation_knee_at_4k;
        ] );
      ( "fig5-fig6",
        [
          tc "crossings free for large messages" `Slow
            test_fig5_crossings_free_for_large_messages;
          tc "medium messages pay IPC" `Slow test_fig5_medium_messages_pay_ipc;
          tc "max at I/O bound" `Slow test_fig5_max_at_io_bound;
          tc "uncached degrades user paths" `Slow
            test_fig6_uncached_degrades_user_paths;
          tc "netserver marginal" `Slow test_fig6_netserver_marginal;
          tc "load accounting sane" `Slow test_fig5_data_integrity_under_load;
        ] );
      ( "plumbing",
        [
          tc "testbed registers domains" `Quick test_testbed_domains_registered;
          tc "window monotone" `Slow test_window_monotone;
        ] );
    ]
