(* Tests for the comparator transfer mechanisms: software copy, Mach
   native (copy / COW), and the DASH-style remap measurements. *)

open Fbufs_sim
module Copy_transfer = Fbufs_baseline.Copy_transfer
module Mach_native = Fbufs_baseline.Mach_native
module Dash_remap = Fbufs_baseline.Dash_remap
module Testbed = Fbufs_harness.Testbed

let check = Alcotest.check

let setup () =
  let tb = Testbed.create () in
  let src = Testbed.user_domain tb "src" in
  let dst = Testbed.user_domain tb "dst" in
  (tb, src, dst)

(* ------------------------------------------------------------------ *)
(* Copy                                                                 *)
(* ------------------------------------------------------------------ *)

let test_copy_integrity () =
  let tb, src, dst = setup () in
  let c = Copy_transfer.create ~src ~dst ~kernel:tb.Testbed.kernel ~max_bytes:8192 in
  check Alcotest.string "roundtrip" "two hops through the kernel"
    (Copy_transfer.verify_roundtrip c "two hops through the kernel")

let test_copy_charges_two_traversals () =
  let tb, src, dst = setup () in
  let m = tb.Testbed.m in
  let c =
    Copy_transfer.create ~src ~dst ~kernel:tb.Testbed.kernel
      ~max_bytes:(64 * 4096)
  in
  Copy_transfer.transfer c ~bytes:(64 * 4096) (* warm: fault everything in *);
  let t0 = Machine.now m in
  Copy_transfer.transfer c ~bytes:(64 * 4096) ;
  let us = Machine.now m -. t0 in
  let two_copies =
    2.0 *. float_of_int (64 * 4096) *. m.Machine.cost.Cost_model.copy_per_byte
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f us >= two copy traversals (%.0f)" us two_copies)
    true (us >= two_copies)

let test_copy_oversized_rejected () =
  let tb, src, dst = setup () in
  let c = Copy_transfer.create ~src ~dst ~kernel:tb.Testbed.kernel ~max_bytes:4096 in
  Alcotest.(check bool) "raises" true
    (try
       Copy_transfer.transfer c ~bytes:999999;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mach native                                                          *)
(* ------------------------------------------------------------------ *)

let test_mach_cow_integrity () =
  let tb, src, dst = setup () in
  let mach = Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel in
  check Alcotest.string "receiver view immune to sender scribble"
    "copy on write!"
    (Mach_native.verify_cow_roundtrip mach "copy on write!")

let test_mach_small_messages_copied () =
  let tb, src, dst = setup () in
  let m = tb.Testbed.m in
  let mach = Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel in
  let faults0 = Stats.get m.Machine.stats "vm.fault" in
  Mach_native.transfer mach ~bytes:1024;
  Mach_native.transfer mach ~bytes:1024;
  (* The copy path uses persistent buffers: at most the initial zero-fill
     faults, no COW machinery. *)
  Alcotest.(check bool) "no COW copies" true
    (Stats.get m.Machine.stats "vm.cow_copy" = 0);
  ignore faults0

let test_mach_large_messages_cow () =
  let tb, src, dst = setup () in
  let m = tb.Testbed.m in
  let mach = Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel in
  Mach_native.transfer mach ~bytes:16384;
  Alcotest.(check bool) "faults happened (lazy pmap)" true
    (Stats.get m.Machine.stats "vm.fault" > 0)

let test_mach_cow_slower_per_page_than_copy_threshold_logic () =
  let tb, src, dst = setup () in
  let mach = Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel in
  check Alcotest.int "threshold" 2048 Mach_native.copy_threshold;
  ignore (tb, mach)

let test_mach_no_frame_leaks () =
  let tb, src, dst = setup () in
  let m = tb.Testbed.m in
  let mach = Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel in
  Mach_native.transfer_cow mach ~bytes:32768;
  let frames = Phys_mem.free_frames m.Machine.pmem in
  for _ = 1 to 10 do
    Mach_native.transfer_cow mach ~bytes:32768
  done;
  check Alcotest.int "steady state" frames (Phys_mem.free_frames m.Machine.pmem)

(* ------------------------------------------------------------------ *)
(* DASH remap                                                           *)
(* ------------------------------------------------------------------ *)

let test_remap_ping_pong_cheaper_than_realistic () =
  let pp =
    Dash_remap.ping_pong_per_page (Machine.create ~nframes:4096 ()) ~npages:16
      ~rounds:10
  in
  let real =
    Dash_remap.realistic_per_page (Machine.create ~nframes:4096 ()) ~npages:16
      ~rounds:10 ~clear_fraction:0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "ping-pong %.1f < realistic %.1f" pp real)
    true (pp < real)

let test_remap_clearing_scales_linearly () =
  let real frac =
    Dash_remap.realistic_per_page (Machine.create ~nframes:4096 ()) ~npages:16
      ~rounds:10 ~clear_fraction:frac
  in
  let r0 = real 0.0 and r50 = real 0.5 and r100 = real 1.0 in
  let page_zero = Cost_model.decstation_5000_200.Cost_model.page_zero in
  Alcotest.(check bool)
    (Printf.sprintf "slope %.1f..%.1f..%.1f tracks 57us" r0 r50 r100)
    true
    (Float.abs (r100 -. r0 -. page_zero) < 3.0
    && Float.abs (r50 -. r0 -. (page_zero /. 2.0)) < 3.0)

let test_remap_in_paper_band () =
  (* The paper's update of the Tzou/Anderson result: ~22 ping-pong,
     42-99 realistic. *)
  let pp =
    Dash_remap.ping_pong_per_page (Machine.create ~nframes:4096 ()) ~npages:16
      ~rounds:10
  in
  let lo =
    Dash_remap.realistic_per_page (Machine.create ~nframes:4096 ()) ~npages:16
      ~rounds:10 ~clear_fraction:0.0
  in
  let hi =
    Dash_remap.realistic_per_page (Machine.create ~nframes:4096 ()) ~npages:16
      ~rounds:10 ~clear_fraction:1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "pp %.1f in [18,26]" pp)
    true
    (pp > 18.0 && pp < 26.0);
  Alcotest.(check bool)
    (Printf.sprintf "band %.1f..%.1f brackets [42,99]-ish" lo hi)
    true
    (lo > 36.0 && lo < 52.0 && hi > 90.0 && hi < 115.0)

(* ------------------------------------------------------------------ *)
(* Cross-mechanism ordering (the paper's headline)                      *)
(* ------------------------------------------------------------------ *)

let test_mechanism_ordering () =
  let rows = Fbufs_harness.Exp_table1.run () in
  let find name =
    (List.find (fun r -> r.Fbufs_harness.Exp_table1.mechanism = name) rows)
      .Fbufs_harness.Exp_table1.per_page_us
  in
  let cv = find "fbufs, cached/volatile" in
  let v = find "fbufs, volatile" in
  let c = find "fbufs, cached" in
  let plain = find "fbufs (plain)" in
  let cow = find "Mach COW" in
  let copy = find "copy" in
  Alcotest.(check bool)
    (Printf.sprintf "ordering %.1f < %.1f <= %.1f <= %.1f < %.1f < %.1f" cv v c
       plain cow copy)
    true
    (cv < v && v <= c +. 2.0 && c <= plain && plain < cow && cow < copy)

let prop_copy_any_string =
  QCheck.Test.make ~name:"copy transfer preserves arbitrary strings" ~count:50
    QCheck.(string_of_size Gen.(1 -- 4000))
    (fun s ->
      QCheck.assume (String.length s > 0);
      let tb, src, dst = setup () in
      let c =
        Copy_transfer.create ~src ~dst ~kernel:tb.Testbed.kernel
          ~max_bytes:(String.length s)
      in
      Copy_transfer.verify_roundtrip c s = s)

let prop_cow_any_string =
  QCheck.Test.make ~name:"Mach COW preserves receiver view" ~count:50
    QCheck.(string_of_size Gen.(1 -- 4000))
    (fun s ->
      QCheck.assume (String.length s > 0);
      let tb, src, dst = setup () in
      let mach = Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel in
      Mach_native.verify_cow_roundtrip mach s = s)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "baseline"
    [
      ( "copy",
        [
          tc "integrity" `Quick test_copy_integrity;
          tc "charges two traversals" `Quick test_copy_charges_two_traversals;
          tc "oversized rejected" `Quick test_copy_oversized_rejected;
        ] );
      ( "mach-native",
        [
          tc "cow integrity" `Quick test_mach_cow_integrity;
          tc "small messages copied" `Quick test_mach_small_messages_copied;
          tc "large messages cow" `Quick test_mach_large_messages_cow;
          tc "copy threshold" `Quick
            test_mach_cow_slower_per_page_than_copy_threshold_logic;
          tc "no frame leaks" `Quick test_mach_no_frame_leaks;
        ] );
      ( "dash-remap",
        [
          tc "ping-pong cheaper than realistic" `Quick
            test_remap_ping_pong_cheaper_than_realistic;
          tc "clearing scales linearly" `Quick
            test_remap_clearing_scales_linearly;
          tc "in paper band" `Quick test_remap_in_paper_band;
        ] );
      ("ordering", [ tc "mechanism ordering" `Slow test_mechanism_ordering ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_copy_any_string;
          QCheck_alcotest.to_alcotest prop_cow_any_string;
        ] );
    ]
