(* Tests for the protocol suite: headers, IP fragmentation/reassembly, UDP
   demultiplexing, loopback, and full stacks across domains. *)

open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Protocol = Fbufs_xkernel.Protocol
module Ip = Fbufs_protocols.Ip
module Udp = Fbufs_protocols.Udp
module Loopback = Fbufs_protocols.Loopback
module Header = Fbufs_protocols.Header
module Testproto = Fbufs_protocols.Testproto
module Testbed = Fbufs_harness.Testbed
module Stacks = Fbufs_harness.Stacks

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Header codecs                                                       *)
(* ------------------------------------------------------------------ *)

let test_u16_roundtrip () =
  let b = Bytes.create 4 in
  Header.set_u16 b 1 0xBEEF;
  check Alcotest.int "u16" 0xBEEF (Header.get_u16 b 1)

let test_u32_roundtrip () =
  let b = Bytes.create 8 in
  Header.set_u32 b 2 0xDEADBEEF;
  check Alcotest.int "u32" 0xDEADBEEF (Header.get_u32 b 2)

let test_prepend_and_peek () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  let payload =
    let fb = Allocator.alloc alloc ~npages:1 in
    Fbuf_api.write fb ~as_:d ~off:0 "body";
    Msg.of_fbuf fb ~off:0 ~len:4
  in
  let _, pdu = Header.prepend ~alloc ~as_:d (Bytes.of_string "HDR!") payload in
  check Alcotest.int "length" 8 (Msg.length pdu);
  check Alcotest.bytes "peek" (Bytes.of_string "HDR!")
    (Header.peek pdu ~as_:d ~len:4);
  check Alcotest.string "payload intact" "body"
    (Msg.to_string (Msg.clip pdu 4) ~as_:d)

(* ------------------------------------------------------------------ *)
(* Single-domain stack plumbing                                        *)
(* ------------------------------------------------------------------ *)

let test_loopback_single_domain_delivery () =
  let stack = Stacks.single_domain () in
  let msg =
    Testproto.make_message ~alloc:stack.Stacks.data_alloc
      ~as_:stack.Stacks.sender_dom ~bytes:2048 ~fill:"ping" ()
  in
  stack.Stacks.send msg;
  check Alcotest.int "one message" 1 (Testproto.received stack.Stacks.sink);
  check Alcotest.int "all bytes" 2048
    (Testproto.received_bytes stack.Stacks.sink)

let test_payload_integrity_through_stack () =
  let stack = Stacks.single_domain () in
  let got = ref "" in
  let sink2 =
    Testproto.sink ~dom:stack.Stacks.sender_dom
      ~consume:(fun m -> got := Msg.to_string m ~as_:stack.Stacks.sender_dom)
      ()
  in
  (* Rebind the stack's UDP port to our inspecting sink. *)
  ignore sink2;
  let msg =
    Testproto.make_message ~alloc:stack.Stacks.data_alloc
      ~as_:stack.Stacks.sender_dom ~bytes:10000 ~fill:"0123456789" ()
  in
  (* Capture via the stack's own sink instead: check last message. *)
  stack.Stacks.send msg;
  match Testproto.last_message stack.Stacks.sink with
  | None -> Alcotest.fail "no message delivered"
  | Some _ ->
      (* The sink freed the message; integrity is verified by the
         fragmentation tests below which inspect before freeing. *)
      ()

let test_fragmentation_counts () =
  let stack = Stacks.single_domain ~pdu_size:4096 () in
  let msg =
    Testproto.make_message ~alloc:stack.Stacks.data_alloc
      ~as_:stack.Stacks.sender_dom ~bytes:(4096 * 4) ()
  in
  stack.Stacks.send msg;
  (* 16 KB of payload + 12 bytes of UDP header = 5 fragments. *)
  check Alcotest.int "fragments" 5 (Ip.fragments_sent stack.Stacks.ip);
  check Alcotest.int "reassembled" 1
    (Ip.reassemblies_completed stack.Stacks.ip)

let test_small_message_not_fragmented () =
  let stack = Stacks.single_domain ~pdu_size:4096 () in
  let msg =
    Testproto.make_message ~alloc:stack.Stacks.data_alloc
      ~as_:stack.Stacks.sender_dom ~bytes:1024 ()
  in
  stack.Stacks.send msg;
  check Alcotest.int "one fragment" 1 (Ip.fragments_sent stack.Stacks.ip);
  check Alcotest.int "no reassembly" 0
    (Ip.reassemblies_completed stack.Stacks.ip)

let test_reassembly_byte_integrity () =
  (* Build a custom single-domain stack whose sink inspects the payload
     before freeing. *)
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let variant = Fbuf.cached_volatile in
  let alloc v = Testbed.allocator tb ~domains:[ d ] v in
  let lb = Loopback.create ~dom:d () in
  let ip =
    Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc:(alloc variant)
      ~pdu_size:4096 ()
  in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:d ~below:(Ip.proto ip) ~header_alloc:(alloc variant)
      ~dst_port:7 ()
  in
  Ip.set_up ip (Udp.proto udp);
  let got = ref "" in
  let sink =
    Testproto.sink ~dom:d ~consume:(fun m -> got := Msg.to_string m ~as_:d) ()
  in
  Udp.bind udp ~port:7 (Testproto.sink_proto sink);
  let pattern = "abcdefghij" in
  let bytes = 40000 in
  let msg =
    Testproto.make_message ~alloc:(alloc variant) ~as_:d ~bytes ~fill:pattern ()
  in
  (Udp.proto udp).Protocol.push msg;
  check Alcotest.int "full length" bytes (String.length !got);
  let expected = String.init bytes (fun i -> pattern.[i mod 10]) in
  check Alcotest.bool "bytes equal" true (String.equal !got expected)

let test_udp_demux_by_port () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  let lb = Loopback.create ~dom:d () in
  let ip =
    Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc:alloc ()
  in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:d ~below:(Ip.proto ip) ~header_alloc:alloc ~dst_port:42 ()
  in
  Ip.set_up ip (Udp.proto udp);
  let right = Testproto.sink ~dom:d () in
  let wrong = Testproto.sink ~dom:d () in
  Udp.bind udp ~port:42 (Testproto.sink_proto right);
  Udp.bind udp ~port:43 (Testproto.sink_proto wrong);
  let msg = Testproto.make_message ~alloc ~as_:d ~bytes:512 () in
  (Udp.proto udp).Protocol.push msg;
  check Alcotest.int "right port got it" 1 (Testproto.received right);
  check Alcotest.int "wrong port did not" 0 (Testproto.received wrong)

let test_udp_unbound_port_drops () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  let lb = Loopback.create ~dom:d () in
  let ip = Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc:alloc () in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:d ~below:(Ip.proto ip) ~header_alloc:alloc ~dst_port:99 ()
  in
  Ip.set_up ip (Udp.proto udp);
  let msg = Testproto.make_message ~alloc ~as_:d ~bytes:128 () in
  (Udp.proto udp).Protocol.push msg;
  check Alcotest.int "dropped" 1 (Udp.no_port_drops udp)

let test_udp_checksum_validates () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  let lb = Loopback.create ~dom:d () in
  let ip = Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc:alloc () in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:d ~below:(Ip.proto ip) ~header_alloc:alloc ~dst_port:1
      ~checksum:true ()
  in
  Ip.set_up ip (Udp.proto udp);
  let sink = Testproto.sink ~dom:d () in
  Udp.bind udp ~port:1 (Testproto.sink_proto sink);
  let msg = Testproto.make_message ~alloc ~as_:d ~bytes:4000 ~fill:"ok" () in
  (Udp.proto udp).Protocol.push msg;
  check Alcotest.int "delivered with good checksum" 1 (Testproto.received sink);
  check Alcotest.int "no failures" 0 (Udp.checksum_failures udp)

let test_udp_checksum_detects_corruption () =
  (* A volatile originator mutates the data mid-flight (between push and
     the receive-side verification we force by corrupting first). *)
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  (* Stack where UDP pop rechecks the checksum; corrupt between the two by
     interposing a protocol that scribbles on the (volatile) buffer. *)
  let lb = Loopback.create ~dom:d () in
  let ip = Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc:alloc () in
  let corrupter =
    Protocol.create ~name:"corrupter" ~dom:d
      ~push:(fun pdu -> (Ip.proto ip).Protocol.push pdu)
      ()
  in
  Loopback.set_up lb (Ip.proto ip);
  let udp =
    Udp.create ~dom:d ~below:corrupter ~header_alloc:alloc ~dst_port:1
      ~checksum:true ()
  in
  Ip.set_up ip (Udp.proto udp);
  let sink = Testproto.sink ~dom:d () in
  Udp.bind udp ~port:1 (Testproto.sink_proto sink);
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:d ~off:0 "honest data";
  corrupter.Protocol.push <-
    (fun pdu ->
      (* Asynchronous modification by the (volatile) originator. *)
      Fbuf_api.write fb ~as_:d ~off:0 "tamperedata";
      (Ip.proto ip).Protocol.push pdu);
  (Udp.proto udp).Protocol.push (Msg.of_fbuf fb ~off:0 ~len:11);
  check Alcotest.int "checksum failure detected" 1 (Udp.checksum_failures udp);
  check Alcotest.int "not delivered" 0 (Testproto.received sink)

(* ------------------------------------------------------------------ *)
(* Multi-domain stack                                                  *)
(* ------------------------------------------------------------------ *)

let test_three_domain_delivery () =
  let stack = Stacks.three_domains () in
  let msg =
    Testproto.make_message ~alloc:stack.Stacks.data_alloc
      ~as_:stack.Stacks.sender_dom ~bytes:20000 ()
  in
  stack.Stacks.send msg;
  check Alcotest.int "delivered" 1 (Testproto.received stack.Stacks.sink);
  check Alcotest.int "bytes" 20000
    (Testproto.received_bytes stack.Stacks.sink)

let test_three_domain_steady_state_no_leaks () =
  let stack = Stacks.three_domains () in
  let m = stack.Stacks.tb.Testbed.m in
  let send () =
    let msg =
      Testproto.make_message ~alloc:stack.Stacks.data_alloc
        ~as_:stack.Stacks.sender_dom ~bytes:16384 ()
    in
    stack.Stacks.send msg
  in
  send ();
  send ();
  let frames = Phys_mem.free_frames m.Machine.pmem in
  for _ = 1 to 25 do
    send ()
  done;
  check Alcotest.int "frame count stable" frames
    (Phys_mem.free_frames m.Machine.pmem)

let test_three_domain_uncached_works () =
  let stack = Stacks.three_domains ~variant:Fbuf.plain () in
  let msg =
    Testproto.make_message ~alloc:stack.Stacks.data_alloc
      ~as_:stack.Stacks.sender_dom ~bytes:12000 ()
  in
  stack.Stacks.send msg;
  check Alcotest.int "delivered" 1 (Testproto.received stack.Stacks.sink)

let test_cached_faster_than_uncached_stack () =
  let time variant =
    let stack = Stacks.three_domains ~variant () in
    let m = stack.Stacks.tb.Testbed.m in
    let send () =
      let msg =
        Testproto.make_message ~alloc:stack.Stacks.data_alloc
          ~as_:stack.Stacks.sender_dom ~bytes:65536 ()
      in
      stack.Stacks.send msg
    in
    send ();
    let t0 = Machine.now m in
    for _ = 1 to 5 do
      send ()
    done;
    Machine.now m -. t0
  in
  let cached = time Fbuf.cached_volatile in
  let uncached = time Fbuf.plain in
  Alcotest.(check bool)
    (Printf.sprintf "cached (%.0f) beats uncached (%.0f)" cached uncached)
    true (uncached > cached *. 1.3)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_any_size_survives_stack =
  QCheck.Test.make ~name:"arbitrary sizes survive fragmentation/reassembly"
    ~count:40
    QCheck.(int_range 1 100_000)
    (fun bytes ->
      let tb = Testbed.create () in
      let d = Testbed.user_domain tb "d" in
      let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
      let lb = Loopback.create ~dom:d () in
      let ip =
        Ip.create ~dom:d ~below:(Loopback.proto lb) ~header_alloc:alloc
          ~pdu_size:4096 ()
      in
      Loopback.set_up lb (Ip.proto ip);
      let udp =
        Udp.create ~dom:d ~below:(Ip.proto ip) ~header_alloc:alloc ~dst_port:5 ()
      in
      Ip.set_up ip (Udp.proto udp);
      let received = ref (-1) in
      let sink =
        Testproto.sink ~dom:d ~consume:(fun m -> received := Msg.length m) ()
      in
      Udp.bind udp ~port:5 (Testproto.sink_proto sink);
      let msg = Testproto.make_message ~alloc ~as_:d ~bytes () in
      (Udp.proto udp).Protocol.push msg;
      !received = bytes)

let prop_fragment_count =
  QCheck.Test.make ~name:"fragment count = ceil((len+udp)/pdu)" ~count:60
    QCheck.(pair (int_range 1 60_000) (int_range 1000 8000))
    (fun (bytes, pdu_size) ->
      let stack = Stacks.single_domain ~pdu_size () in
      let msg =
        Testproto.make_message ~alloc:stack.Stacks.data_alloc
          ~as_:stack.Stacks.sender_dom ~bytes ()
      in
      stack.Stacks.send msg;
      let total = bytes + Udp.header_size in
      Ip.fragments_sent stack.Stacks.ip = (total + pdu_size - 1) / pdu_size)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "protocols"
    [
      ( "headers",
        [
          tc "u16 roundtrip" `Quick test_u16_roundtrip;
          tc "u32 roundtrip" `Quick test_u32_roundtrip;
          tc "prepend and peek" `Quick test_prepend_and_peek;
        ] );
      ( "single-domain",
        [
          tc "loopback delivery" `Quick test_loopback_single_domain_delivery;
          tc "payload path exercised" `Quick
            test_payload_integrity_through_stack;
          tc "fragmentation counts" `Quick test_fragmentation_counts;
          tc "small message not fragmented" `Quick
            test_small_message_not_fragmented;
          tc "reassembly byte integrity" `Quick test_reassembly_byte_integrity;
          tc "udp demux by port" `Quick test_udp_demux_by_port;
          tc "udp unbound port drops" `Quick test_udp_unbound_port_drops;
          tc "udp checksum validates" `Quick test_udp_checksum_validates;
          tc "udp checksum detects corruption" `Quick
            test_udp_checksum_detects_corruption;
        ] );
      ( "multi-domain",
        [
          tc "three-domain delivery" `Quick test_three_domain_delivery;
          tc "steady state no leaks" `Quick
            test_three_domain_steady_state_no_leaks;
          tc "uncached works" `Quick test_three_domain_uncached_works;
          tc "cached faster than uncached" `Quick
            test_cached_faster_than_uncached_stack;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_any_size_survives_stack;
          QCheck_alcotest.to_alcotest prop_fragment_count;
        ] );
    ]
