test/test_fbuf.mli:
