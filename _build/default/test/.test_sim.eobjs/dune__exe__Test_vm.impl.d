test/test_vm.ml: Access Alcotest Bytes Char Cost_model Fbufs_sim Fbufs_vm Gen Machine Pd Phys_mem Printf Prot QCheck QCheck_alcotest Remap Stats String Vm_map
