test/test_fbuf.ml: Access Alcotest Allocator Array Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_sim Fbufs_vm Gen List Machine Pd Phys_mem Printf QCheck QCheck_alcotest Region Stats String Transfer Vm_map
