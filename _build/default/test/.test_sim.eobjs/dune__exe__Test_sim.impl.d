test/test_sim.ml: Alcotest Bytes Clock Cost_model Des Fbufs_sim List Machine Phys_mem Printf QCheck QCheck_alcotest Rng Stats Tlb
