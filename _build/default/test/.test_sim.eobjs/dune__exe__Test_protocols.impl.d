test/test_protocols.ml: Alcotest Allocator Bytes Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_msg Fbufs_protocols Fbufs_sim Fbufs_xkernel Machine Phys_mem Printf QCheck QCheck_alcotest String
