test/test_properties.ml: Alcotest Allocator Array Des Fbuf Fbufs Fbufs_harness Fbufs_sim Gen Hashtbl List Machine Phys_mem Printf QCheck QCheck_alcotest Region Rng Tlb Transfer
