test/test_msg.ml: Access Alcotest Allocator Bytes Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_msg Fbufs_sim Fbufs_vm List Machine Pd QCheck QCheck_alcotest Region Stats String Transfer
