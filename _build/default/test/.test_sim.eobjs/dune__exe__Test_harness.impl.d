test/test_harness.ml: Alcotest Exp_fig3 Exp_fig4 Exp_fig5 Exp_remap Exp_table1 Fbufs Fbufs_harness Fbufs_vm Float Lazy List Printf Report Testbed
