test/test_baseline.ml: Alcotest Cost_model Fbufs_baseline Fbufs_harness Fbufs_sim Float Gen List Machine Phys_mem Printf QCheck QCheck_alcotest Stats String
