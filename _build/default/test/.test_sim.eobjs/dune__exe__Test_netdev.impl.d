test/test_netdev.ml: Alcotest Allocator Array Cost_model Des Fbuf Fbuf_api Fbufs Fbufs_harness Fbufs_msg Fbufs_netdev Fbufs_protocols Fbufs_sim List Machine Printf String
