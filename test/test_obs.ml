(* The flight recorder, online monitors and trend gate.

   The recorder's stores are bounded and seeded: the ring keeps exactly
   the newest items, equal seeds over equal runs render byte-identical
   dumps, and the dump trigger honours the debounce window and lifetime
   cap. The planted admission bug (Policy.chaos_skip_threshold) must
   surface as an online gauge violation whose dump round-trips through
   the span parser — and the same fault must still fail the offline
   differential checker, so the monitors are a preview of the checker,
   not a replacement. The trend gate passes the committed snapshot
   series and fails a synthetic step regression no pairwise diff would
   see. *)

open Fbufs
module Machine = Fbufs_sim.Machine
module Trace = Fbufs_trace.Trace
module Mx = Fbufs_metrics.Metrics
module Bench_diff = Fbufs_metrics.Bench_diff
module Span_export = Fbufs_span.Span_export
module Testbed = Fbufs_harness.Testbed
module Policy = Fbufs_policy.Policy
module Scenario = Fbufs_policy.Scenario
module Check = Fbufs_check
module Ring = Fbufs_obs.Ring
module Recorder = Fbufs_obs.Recorder
module Monitor = Fbufs_obs.Monitor
module Trend = Fbufs_obs.Trend

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Dump dirs under the system temp dir, so running the test executable
   outside the dune sandbox cannot litter the working tree. *)
let tmp_dump_dir name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fbufs-%s-%d" name (Unix.getpid ()))

(* -- ring --------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check (option int)) "push 1" None (Ring.push r 1);
  Alcotest.(check (option int)) "push 2" None (Ring.push r 2);
  Alcotest.(check (option int)) "push 3" None (Ring.push r 3);
  Alcotest.(check (option int)) "4 evicts 1" (Some 1) (Ring.push r 4);
  Alcotest.(check (option int)) "5 evicts 2" (Some 2) (Ring.push r 5);
  Alcotest.(check (list int)) "newest three, oldest first" [ 3; 4; 5 ]
    (Ring.to_list r);
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "pushed counts everything" 5 (Ring.pushed r)

let test_ring_trace_wraparound () =
  let t = Trace.create ~ring:true ~capacity:4 () in
  for i = 1 to 10 do
    Trace.instant t ~ts_us:(float_of_int i) ~machine:"m"
      (Printf.sprintf "e%d" i)
  done;
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.events t) in
  Alcotest.(check (list string)) "newest four, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ] kinds;
  Alcotest.(check int) "overwrites counted as drops" 6 (Trace.dropped t)

(* -- seeded sampling determinism ---------------------------------------- *)

let small = { Recorder.default with event_capacity = 64; reservoir = 16 }

(* Feed one fixed synthetic event stream — instants and completes with
   spread-out durations, so reservoir weights differ — through an armed
   recorder's own ring sink; return the dump it would write. Synthetic
   events carry no process-global ids, so dumps can be compared byte
   for byte within one process. *)
let synthetic_dump config =
  let r = Recorder.create config in
  Recorder.with_armed r (fun () ->
      let tr = Option.get !Machine.default_trace in
      for i = 1 to 500 do
        let ts = float_of_int i *. 3.0 in
        if i mod 3 = 0 then
          Trace.complete tr ~ts_us:ts
            ~dur_us:(float_of_int (i mod 17) +. 0.5)
            ~machine:"syn"
            (Printf.sprintf "work%d" (i mod 5))
        else
          Trace.instant tr ~ts_us:ts ~machine:"syn"
            (Printf.sprintf "mark%d" (i mod 7))
      done;
      Alcotest.(check int) "all events tapped" 500 (Recorder.events_seen r);
      Recorder.render_dump r ~reason:"det")

let test_same_seed_identical_dump () =
  let a = synthetic_dump small and b = synthetic_dump small in
  List.iter2
    (fun (na, ca) (nb, cb) ->
      Alcotest.(check string) ("file name " ^ na) na nb;
      Alcotest.(check string) (na ^ " byte-identical") ca cb)
    a b;
  (* a different seed draws a different reservoir *)
  let c = synthetic_dump { small with seed = 99 } in
  Alcotest.(check bool) "different seed, different sample" false
    (List.assoc "sampled.jsonl" a = List.assoc "sampled.jsonl" c)

(* The recorder taps a live machine run: events flow, transfer roots are
   seen and kept (counters, not byte comparisons — machine runs embed
   process-global path and span ids). *)
let test_recorder_taps_live_run () =
  let r = Recorder.create small in
  Recorder.with_armed r (fun () ->
      let tb = Testbed.create ~name:"obs-det" () in
      let src = Testbed.user_domain tb "src" in
      let dst = Testbed.user_domain tb "dst" in
      let alloc =
        Testbed.allocator tb ~domains:[ src; dst ] Fbuf.cached_volatile
      in
      let m = tb.Testbed.m in
      for i = 1 to 8 do
        Machine.with_transfer m ~path_id:i "obs-xfer" (fun () ->
            let fb = Allocator.alloc alloc ~npages:2 in
            Fbufs_vm.Access.touch_write src ~vaddr:(Fbuf.vaddr fb) ~npages:2;
            Transfer.send fb ~src ~dst;
            Transfer.secure fb;
            Transfer.free fb ~dom:dst;
            Transfer.free fb ~dom:src)
      done;
      Alcotest.(check bool) "events observed" true (Recorder.events_seen r > 0);
      Alcotest.(check int) "all eight roots seen" 8 (Recorder.roots_seen r);
      Alcotest.(check int) "denom 1 keeps every root" 8 (Recorder.roots_kept r);
      let dump = Recorder.render_dump r ~reason:"live" in
      let kept = Span_export.parse_jsonl (List.assoc "spans.jsonl" dump) in
      Alcotest.(check int) "all eight round-trip" 8 (List.length kept))

let test_head_sampling_deterministic () =
  let module Head = Fbufs_obs.Sample.Head in
  let keeps seed =
    let h = Head.create ~seed ~denom:4 in
    List.init 200 (fun i -> Head.keep h ~path:(i + 1) ~label:"l")
  in
  let a = keeps 1 in
  let kept = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "1-in-4 sampling thins (kept %d of 200)" kept)
    true
    (kept > 0 && kept < 200);
  Alcotest.(check (list bool)) "same seed, same subset" a (keeps 1);
  Alcotest.(check bool) "different seed, different subset" false (a = keeps 2);
  (* decisions are per-path, order-free: asking again flips nothing *)
  Alcotest.(check (list bool)) "re-asking is stable" a (keeps 1)

(* -- dump trigger debounce ---------------------------------------------- *)

let test_trigger_debounce_and_cap () =
  let r =
    Recorder.create
      {
        Recorder.default with
        dir = tmp_dump_dir "obs-debounce-dump";
        debounce_us = 100.0;
        max_dumps = 2;
      }
  in
  Recorder.with_armed r (fun () ->
      let tr = Option.get !Machine.default_trace in
      let at ts = Trace.instant tr ~ts_us:ts ~machine:"m" "tick" in
      at 0.0;
      Alcotest.(check bool) "first fires" true (Recorder.trigger r ~reason:"a");
      at 50.0;
      Alcotest.(check bool) "inside window suppressed" false
        (Recorder.trigger r ~reason:"b");
      at 200.0;
      Alcotest.(check bool) "past window fires" true
        (Recorder.trigger r ~reason:"c");
      at 400.0;
      Alcotest.(check bool) "over cap suppressed" false
        (Recorder.trigger r ~reason:"d");
      Alcotest.(check bool) "force bypasses both" true
        (Recorder.trigger ~force:true r ~reason:"exit");
      Alcotest.(check int) "three dumps written" 3 (Recorder.dumps r))

(* -- planted violation: monitors fire, dump round-trips ------------------ *)

let test_planted_violation_monitors_and_dump () =
  Fun.protect ~finally:(fun () -> Policy.chaos_skip_threshold := false)
  @@ fun () ->
  let mx = Mx.create () in
  let saved = !Machine.default_metrics in
  Machine.default_metrics := Some mx;
  Fun.protect ~finally:(fun () -> Machine.default_metrics := saved)
  @@ fun () ->
  let r =
    Recorder.create
      {
        Recorder.default with
        dir = tmp_dump_dir "obs-violation-dump";
        max_dumps = 1;
      }
  in
  let mon = Monitor.create ~recorder:r { Monitor.default with grace = 0 } in
  Recorder.with_armed r (fun () ->
      Monitor.with_installed mon (fun () ->
          Policy.chaos_skip_threshold := true;
          (* Un-enforced admission leaks held pages until the arena is
             exhausted; the crash is the fault's endgame — the monitors
             must have flagged it (and dumped) well before. *)
          try
            ignore
              (Scenario.run
                 ~kind:(Policy.Fb_dynamic { alpha = 0.5 })
                 Scenario.Incast)
          with Fbufs_sim.Phys_mem.Out_of_memory -> ()));
  (* the gauge rule saw held pages over an un-enforced threshold *)
  Alcotest.(check bool) "violations recorded" true
    (Monitor.violation_count mon > 0);
  Alcotest.(check bool) "a gauge violation among them" true
    (List.exists (fun (rule, _) -> rule = "gauge") (Monitor.violations mon));
  Alcotest.(check bool) "violation metric exported" true
    (Mx.total_by_name mx ~name:"fbufs_monitor_violations_total" > 0.0);
  Alcotest.(check int) "violation triggered the dump" 1 (Recorder.dumps r);
  (* the dump round-trips: span lines parse back, and the violation left
     its marker in the recorded event stream *)
  let dump = Recorder.render_dump r ~reason:"post" in
  let (_ : Fbufs_span.Span.transfer list) =
    Span_export.parse_jsonl (List.assoc "spans.jsonl" dump)
  in
  Alcotest.(check bool) "violation marker in events" true
    (contains (List.assoc "events.jsonl" dump) "monitor.violation");
  Alcotest.(check bool) "meta names the reason" true
    (contains (List.assoc "meta.json" dump) "post")

(* The monitors are a preview, not a replacement: the same planted fault
   must still fail the offline differential checker. *)
let test_planted_violation_still_fails_checker () =
  Fun.protect ~finally:(fun () -> Policy.chaos_skip_threshold := false)
  @@ fun () ->
  Policy.chaos_skip_threshold := true;
  let report, _ops = Check.Driver.run ~seed:1 ~ops:400 ~adversary:true in
  Alcotest.(check bool) "offline checker catches the same fault" true
    (Check.Driver.failed report)

(* Monitors on a healthy metered run stay silent. *)
let test_monitors_silent_on_healthy_run () =
  let mx = Mx.create () in
  let saved = !Machine.default_metrics in
  Machine.default_metrics := Some mx;
  Fun.protect ~finally:(fun () -> Machine.default_metrics := saved)
  @@ fun () ->
  let mon = Monitor.create Monitor.default in
  Monitor.with_installed mon (fun () ->
      ignore
        (Scenario.run ~kind:(Policy.Fb_dynamic { alpha = 0.5 }) Scenario.Incast));
  Alcotest.(check bool) "sequence points observed" true (Monitor.checks mon > 0);
  Alcotest.(check int) "no violations" 0 (Monitor.violation_count mon)

(* -- trend gate --------------------------------------------------------- *)

let row name ns = { Bench_diff.name; ns_per_run = Some ns; r_square = None }

let snapshots series =
  List.mapi
    (fun i points ->
      (Printf.sprintf "S%d" i, List.map (fun (n, v) -> row n v) points))
    series

let test_trend_flat_series_passes () =
  let named =
    snapshots
      [
        [ ("a", 100.0); ("b", 50.0) ];
        [ ("a", 103.0); ("b", 49.0) ];
        [ ("a", 98.0); ("b", 51.0) ];
        [ ("a", 101.0); ("b", 50.5) ];
      ]
  in
  let r = Trend.analyze_rows ~named ~tolerance_pct:50.0 in
  Alcotest.(check bool) "flat series passes" false r.Trend.failed

(* A creeping regression split across snapshots: every pairwise step is
   inside a 50% tolerance, the accumulated step is not. *)
let test_trend_catches_split_regression () =
  let named =
    snapshots
      [
        [ ("a", 100.0) ];
        [ ("a", 101.0) ];
        [ ("a", 140.0) ];
        [ ("a", 185.0) ];
        [ ("a", 240.0) ];
      ]
  in
  let r = Trend.analyze_rows ~named ~tolerance_pct:50.0 in
  Alcotest.(check bool) "series regression caught" true r.Trend.failed;
  let v = List.find (fun v -> v.Trend.bench = "a") r.Trend.verdicts in
  Alcotest.(check bool) "verdict marks the benchmark" true v.Trend.regressed;
  Alcotest.(check bool) "changepoint located" true (v.Trend.change_at <> None);
  (* every pairwise step stays inside the tolerance the series gate
     still fails on *)
  List.iter2
    (fun (_, old_rows) (_, new_rows) ->
      let d = Bench_diff.diff ~old_:old_rows ~new_:new_rows ~tolerance_pct:50.0 in
      Alcotest.(check bool) "pairwise step passes" false d.Bench_diff.failed)
    (List.filteri (fun i _ -> i < List.length named - 1) named)
    (List.tl named)

let test_trend_missing_latest_fails () =
  let named =
    snapshots [ [ ("a", 100.0); ("b", 50.0) ]; [ ("a", 100.0) ] ]
  in
  let r = Trend.analyze_rows ~named ~tolerance_pct:50.0 in
  Alcotest.(check bool) "dropped benchmark fails the gate" true r.Trend.failed;
  let v = List.find (fun v -> v.Trend.bench = "b") r.Trend.verdicts in
  Alcotest.(check bool) "marked missing" true v.Trend.missing_latest

let test_trend_renders_verdict_line () =
  let named = snapshots [ [ ("a", 100.0) ]; [ ("a", 300.0) ] ] in
  let r = Trend.analyze_rows ~named ~tolerance_pct:50.0 in
  Alcotest.(check bool) "fails" true r.Trend.failed;
  Alcotest.(check bool) "render says FAIL" true (contains (Trend.render r) "FAIL")

(* The committed snapshot series itself must pass the gate — the same
   invocation CI runs. *)
let test_trend_committed_series_passes () =
  let files =
    List.map
      (fun f -> if Sys.file_exists f then f else "../" ^ f)
      [
        "BENCH_PR2.json";
        "BENCH_PR4.json";
        "BENCH_PR5.json";
        "BENCH_PR6.json";
        "BENCH_PR7.json";
        "BENCH_PR8.json";
        "BENCH_PR10.json";
      ]
  in
  match List.for_all Sys.file_exists files with
  | false -> Alcotest.skip ()
  | true ->
      let r = Trend.analyze ~files ~tolerance_pct:50.0 in
      if r.Trend.failed then
        Alcotest.failf "committed series fails the trend gate:@.%s"
          (Trend.render r)

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "trace ring wraparound" `Quick
            test_ring_trace_wraparound;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "same seed, identical dump" `Quick
            test_same_seed_identical_dump;
          Alcotest.test_case "recorder taps a live run" `Quick
            test_recorder_taps_live_run;
          Alcotest.test_case "head sampling thins deterministically" `Quick
            test_head_sampling_deterministic;
        ] );
      ( "trigger",
        [
          Alcotest.test_case "debounce window and dump cap" `Quick
            test_trigger_debounce_and_cap;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "planted violation dumps and round-trips" `Quick
            test_planted_violation_monitors_and_dump;
          Alcotest.test_case "same fault fails the offline checker" `Quick
            test_planted_violation_still_fails_checker;
          Alcotest.test_case "silent on a healthy run" `Quick
            test_monitors_silent_on_healthy_run;
        ] );
      ( "trend",
        [
          Alcotest.test_case "flat series passes" `Quick
            test_trend_flat_series_passes;
          Alcotest.test_case "split regression caught" `Quick
            test_trend_catches_split_regression;
          Alcotest.test_case "missing latest fails" `Quick
            test_trend_missing_latest_fails;
          Alcotest.test_case "render verdict" `Quick
            test_trend_renders_verdict_line;
          Alcotest.test_case "committed series passes" `Quick
            test_trend_committed_series_passes;
        ] );
    ]
