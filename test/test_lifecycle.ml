(* Tests for the pageout daemon, domain termination, reliable transport
   over lossy links, and the URPC facility. *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Protocol = Fbufs_xkernel.Protocol
module Rtp = Fbufs_protocols.Rtp
module Testproto = Fbufs_protocols.Testproto
module Osiris = Fbufs_netdev.Osiris
module Testbed = Fbufs_harness.Testbed

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pageout daemon                                                      *)
(* ------------------------------------------------------------------ *)

let pool_of_parked tb app recv n =
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  for _ = 1 to n do
    let fb = Allocator.alloc alloc ~npages:4 in
    Transfer.free fb ~dom:app
  done;
  (* Park them all: allocate-and-free builds only one at a time; force a
     resident pool by allocating n at once instead. *)
  alloc

let test_pageout_no_pressure_no_reclaim () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let daemon = Pageout.create tb.Testbed.region ~low_water_frames:1 () in
  let alloc = pool_of_parked tb app recv 3 in
  Pageout.register daemon alloc;
  check Alcotest.int "nothing reclaimed" 0 (Pageout.balance daemon)

let test_pageout_relieves_pressure () =
  let tb = Testbed.create ~nframes:256 () in
  let m = tb.Testbed.m in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let daemon = Pageout.create tb.Testbed.region ~low_water_frames:128 () in
  Pageout.register daemon alloc;
  (* Park 40 4-page buffers: 160 frames used, ~96 free -> under water. *)
  let fbs = List.init 40 (fun _ -> Allocator.alloc alloc ~npages:4) in
  List.iter (fun fb -> Transfer.free fb ~dom:app) fbs;
  Alcotest.(check bool) "pressure before" true (Pageout.pressure daemon);
  let n = Pageout.balance daemon in
  Alcotest.(check bool)
    (Printf.sprintf "reclaimed %d > 0" n)
    true (n > 0);
  Alcotest.(check bool) "pressure relieved" false (Pageout.pressure daemon);
  Alcotest.(check bool) "frames actually freed" true
    (Phys_mem.free_frames m.Machine.pmem >= 128)

let test_pageout_spares_warm_buffers () =
  let tb = Testbed.create ~nframes:256 () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let daemon = Pageout.create tb.Testbed.region ~low_water_frames:120 () in
  Pageout.register daemon alloc;
  let cold = List.init 30 (fun _ -> Allocator.alloc alloc ~npages:4) in
  List.iter (fun fb -> Transfer.free fb ~dom:app) cold;
  Machine.charge tb.Testbed.m 10_000.0;
  (* One recently used buffer. *)
  let warm = Allocator.alloc alloc ~npages:4 in
  Transfer.free warm ~dom:app;
  ignore (Pageout.balance daemon);
  Alcotest.(check bool) "warm buffer kept its memory" true
    (Vm_map.frame_of app.Pd.map ~vpn:warm.Fbuf.base_vpn <> None)

let test_pageout_stops_when_nothing_reclaimable () =
  let tb = Testbed.create ~nframes:64 () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let daemon = Pageout.create tb.Testbed.region ~low_water_frames:60 () in
  Pageout.register daemon alloc;
  (* All buffers are live (not parked): the daemon must terminate with the
     pressure unrelieved rather than loop. *)
  let held = List.init 4 (fun _ -> Allocator.alloc alloc ~npages:4) in
  check Alcotest.int "nothing to take" 0 (Pageout.balance daemon);
  List.iter (fun fb -> Transfer.free fb ~dom:app) held

(* ------------------------------------------------------------------ *)
(* Domain termination                                                  *)
(* ------------------------------------------------------------------ *)

let test_terminate_releases_held_references () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Transfer.send fb ~src:app ~dst:recv;
  (* recv dies without freeing. *)
  check Alcotest.int "holds one" 1
    (Lifecycle.orphaned_references tb.Testbed.region recv);
  Lifecycle.terminate_domain tb.Testbed.region recv ~allocators:[];
  check Alcotest.int "released" 0
    (Lifecycle.orphaned_references tb.Testbed.region recv);
  Alcotest.(check bool) "marked dead" false recv.Pd.live;
  (* The originator can finish normally and the buffer parks. *)
  Transfer.free fb ~dom:app;
  check Alcotest.int "parked" 1 (Allocator.free_list_length alloc)

let test_terminate_originator_retains_chunks_until_drain () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:app ~off:0 "survives";
  Transfer.send fb ~src:app ~dst:recv;
  Lifecycle.terminate_domain tb.Testbed.region app ~allocators:[ alloc ];
  Alcotest.(check bool) "chunks retained for external refs" true
    (Region.chunks_owned tb.Testbed.region app > 0);
  check Alcotest.string "receiver still reads" "survives"
    (Fbuf_api.read_string fb ~as_:recv ~off:0 ~len:8);
  Transfer.free fb ~dom:recv;
  check Alcotest.int "chunks returned after drain" 0
    (Region.chunks_owned tb.Testbed.region app)

let test_terminate_wrong_allocator_rejected () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let other = Testbed.user_domain tb "other" in
  let alloc = Testbed.allocator tb ~domains:[ other ] Fbuf.cached_volatile in
  Alcotest.(check bool) "raises" true
    (try
       Lifecycle.terminate_domain tb.Testbed.region app ~allocators:[ alloc ];
       false
     with Invalid_argument m ->
       (* The documented contract: the rejection names the function, so a
          caller sweeping many allocators can attribute the failure. *)
       String.starts_with ~prefix:"Lifecycle.terminate_domain" m);
  (* The rejected sweep must not have half-killed anything: the allocator
     still serves its real owner. *)
  let fb = Allocator.alloc alloc ~npages:1 in
  Transfer.free fb ~dom:other

let test_terminate_frees_frames_of_private_buffers () =
  let tb = Testbed.create () in
  let m = tb.Testbed.m in
  let app = Testbed.user_domain tb "app" in
  let free0 = Phys_mem.free_frames m.Machine.pmem in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:8 in
  ignore fb;
  Lifecycle.terminate_domain tb.Testbed.region app ~allocators:[ alloc ];
  check Alcotest.int "all frames back" free0
    (Phys_mem.free_frames m.Machine.pmem)

(* ------------------------------------------------------------------ *)
(* Reliable transport over a lossy link                                *)
(* ------------------------------------------------------------------ *)

(* Two hosts, RTP directly above the drivers (stressing the transport, not
   UDP/IP which have their own tests). *)
type rtp_net = {
  des : Des.t;
  tb1 : Testbed.t;
  tb2 : Testbed.t;
  ad1 : Osiris.t;
  sender : Rtp.sender;
  receiver : Rtp.receiver;
  data_alloc : Allocator.t;
}

let rtp_setup ?(loss = 0.0) ?(window = 4) () =
  let des = Des.create () in
  let tb1 = Testbed.create ~name:"tx" ~seed:11 () in
  let tb2 = Testbed.create ~name:"rx" ~seed:12 () in
  let k1 = tb1.Testbed.kernel and k2 = tb2.Testbed.kernel in
  let ad1 = Osiris.create ~m:tb1.Testbed.m ~des ~region:tb1.Testbed.region ~kernel:k1 () in
  let ad2 = Osiris.create ~m:tb2.Testbed.m ~des ~region:tb2.Testbed.region ~kernel:k2 () in
  Osiris.connect ad1 ad2;
  Osiris.set_loss_rate ad1 loss;
  let drv1 =
    Protocol.create ~name:"drv1" ~dom:k1
      ~push:(fun pdu -> Osiris.send_pdu ad1 ~vci:1 pdu)
      ()
  in
  let drv2 =
    Protocol.create ~name:"drv2" ~dom:k2
      ~push:(fun pdu -> Osiris.send_pdu ad2 ~vci:2 pdu)
      ()
  in
  let sender =
    Rtp.create_sender ~dom:k1 ~below:drv1
      ~header_alloc:(Testbed.allocator tb1 ~domains:[ k1 ] Fbuf.cached_volatile)
      ~des ~window ~timeout_us:20_000.0 ()
  in
  let receiver =
    Rtp.create_receiver ~dom:k2 ~ack_below:drv2
      ~header_alloc:(Testbed.allocator tb2 ~domains:[ k2 ] Fbuf.cached_volatile)
      ()
  in
  Osiris.set_rx_handler ad2 (fun ~vci:_ msg ->
      (Rtp.receiver_proto receiver).Protocol.pop msg;
      Msg.free_held msg ~dom:k2);
  Osiris.set_rx_handler ad1 (fun ~vci:_ msg ->
      (Rtp.sender_ack_proto sender).Protocol.pop msg;
      Msg.free_held msg ~dom:k1);
  let data_alloc = Testbed.allocator tb1 ~domains:[ k1 ] Fbuf.cached_volatile in
  { des; tb1; tb2; ad1; sender; receiver; data_alloc }

let test_rtp_lossless_delivery () =
  let net = rtp_setup () in
  let delivered = ref [] in
  let up =
    Protocol.create ~name:"app" ~dom:net.tb2.Testbed.kernel
      ~pop:(fun m ->
        delivered := Msg.length m :: !delivered;
        Msg.free_held m ~dom:net.tb2.Testbed.kernel)
      ()
  in
  Rtp.set_up net.receiver up;
  List.iter
    (fun bytes ->
      let msg = Testproto.make_message ~alloc:net.data_alloc ~as_:net.tb1.Testbed.kernel ~bytes () in
      (Rtp.sender_proto net.sender).Protocol.push msg)
    [ 1000; 2000; 3000 ];
  Des.run net.des;
  check Alcotest.(list int) "in order" [ 1000; 2000; 3000 ] (List.rev !delivered);
  check Alcotest.int "no retransmissions" 0 (Rtp.retransmissions net.sender);
  check Alcotest.int "all acked" 3 (Rtp.acked net.sender);
  check Alcotest.int "none in flight" 0 (Rtp.in_flight net.sender)

let test_rtp_retransmits_through_loss () =
  let net = rtp_setup ~loss:0.25 () in
  let delivered = ref 0 in
  let seen = Buffer.create 64 in
  let up =
    Protocol.create ~name:"app" ~dom:net.tb2.Testbed.kernel
      ~pop:(fun m ->
        incr delivered;
        Buffer.add_string seen (Msg.to_string m ~as_:net.tb2.Testbed.kernel);
        Msg.free_held m ~dom:net.tb2.Testbed.kernel)
      ()
  in
  Rtp.set_up net.receiver up;
  let n = 12 in
  for i = 1 to n do
    let msg =
      Testproto.make_message ~alloc:net.data_alloc
        ~as_:net.tb1.Testbed.kernel ~bytes:100
        ~fill:(Printf.sprintf "[msg%02d]" i) ()
    in
    (Rtp.sender_proto net.sender).Protocol.push msg
  done;
  Des.run net.des;
  check Alcotest.int "all delivered despite loss" n !delivered;
  check Alcotest.int "delivered in order" n (Rtp.delivered net.receiver);
  Alcotest.(check bool) "loss actually happened" true
    (Osiris.pdus_dropped net.ad1 > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Rtp.retransmissions net.sender > 0);
  (* In-order byte stream: message i's pattern appears before i+1's. *)
  let s = Buffer.contents seen in
  let pos i =
    match String.index_opt s '[' with
    | None -> -1
    | Some _ ->
        let needle = Printf.sprintf "[msg%02d]" i in
        let rec find from =
          if from + String.length needle > String.length s then -1
          else if String.sub s from (String.length needle) = needle then from
          else find (from + 1)
        in
        find 0
  in
  Alcotest.(check bool) "stream ordered" true (pos 1 < pos 2 && pos 2 < pos 12)

let test_rtp_retains_buffers_until_ack () =
  (* The mechanism the paper's copy semantics exist for: the transport
     keeps references so a retransmission needs no copy. *)
  let net = rtp_setup ~loss:1.0 () (* everything lost: nothing acked *) in
  Rtp.set_up net.receiver
    (Protocol.create ~name:"app" ~dom:net.tb2.Testbed.kernel ~pop:(fun _ -> ()) ());
  let msg =
    Testproto.make_message ~alloc:net.data_alloc ~as_:net.tb1.Testbed.kernel
      ~bytes:5000 ()
  in
  let fb = List.hd (Msg.fbufs msg) in
  (Rtp.sender_proto net.sender).Protocol.push msg;
  (* Drain a few timer firings (well under max_retries), then stop: the
     buffer must still be held. *)
  for _ = 1 to 5 do
    ignore (Des.step net.des)
  done;
  Alcotest.(check bool) "buffer still referenced for retransmit" true
    (Fbuf.ref_count fb net.tb1.Testbed.kernel > 0);
  Alcotest.(check bool) "retransmissions under way" true
    (Rtp.retransmissions net.sender > 0)

let test_rtp_gives_up_after_max_retries () =
  let des = Des.create () in
  let tb1 = Testbed.create ~name:"tx" ~seed:21 () in
  let tb2 = Testbed.create ~name:"rx" ~seed:22 () in
  let k1 = tb1.Testbed.kernel in
  let ad1 = Osiris.create ~m:tb1.Testbed.m ~des ~region:tb1.Testbed.region ~kernel:k1 () in
  let ad2 =
    Osiris.create ~m:tb2.Testbed.m ~des ~region:tb2.Testbed.region
      ~kernel:tb2.Testbed.kernel ()
  in
  Osiris.connect ad1 ad2;
  Osiris.set_loss_rate ad1 1.0;
  let drv1 =
    Protocol.create ~name:"drv1" ~dom:k1
      ~push:(fun pdu -> Osiris.send_pdu ad1 ~vci:1 pdu)
      ()
  in
  let sender =
    Rtp.create_sender ~dom:k1 ~below:drv1
      ~header_alloc:(Testbed.allocator tb1 ~domains:[ k1 ] Fbuf.cached_volatile)
      ~des ~timeout_us:1000.0 ~max_retries:5 ()
  in
  let alloc = Testbed.allocator tb1 ~domains:[ k1 ] Fbuf.cached_volatile in
  let msg = Testproto.make_message ~alloc ~as_:k1 ~bytes:500 () in
  let fb = List.hd (Msg.fbufs msg) in
  (Rtp.sender_proto sender).Protocol.push msg;
  Des.run des;
  check Alcotest.int "gave up" 1 (Rtp.failed sender);
  check Alcotest.int "references released" 0 (Fbuf.ref_count fb k1);
  check Alcotest.int "nothing in flight" 0 (Rtp.in_flight sender)

let test_rtp_duplicate_suppression () =
  (* Slow acks cause retransmissions whose duplicates the receiver must
     drop exactly once each. *)
  let net = rtp_setup ~loss:0.4 ~window:2 () in
  let delivered = ref 0 in
  Rtp.set_up net.receiver
    (Protocol.create ~name:"app" ~dom:net.tb2.Testbed.kernel
       ~pop:(fun m ->
         incr delivered;
         Msg.free_held m ~dom:net.tb2.Testbed.kernel)
       ());
  for _ = 1 to 8 do
    let msg =
      Testproto.make_message ~alloc:net.data_alloc
        ~as_:net.tb1.Testbed.kernel ~bytes:300 ()
    in
    (Rtp.sender_proto net.sender).Protocol.push msg
  done;
  Des.run net.des;
  check Alcotest.int "exactly once delivery" 8 !delivered

(* ------------------------------------------------------------------ *)
(* URPC facility                                                       *)
(* ------------------------------------------------------------------ *)

let test_urpc_cheaper_than_mach () =
  let run facility =
    let tb = Testbed.create () in
    let app = Testbed.user_domain tb "app" in
    let recv = Testbed.user_domain tb "recv" in
    let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
    let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv ~facility () in
    let roundtrip () =
      let msg = Testproto.make_message ~alloc ~as_:app ~bytes:4096 () in
      Ipc.call conn msg ~handler:(fun received ->
          Msg.touch_read received ~as_:recv;
          Ipc.free_deferred conn received);
      Msg.free_all msg ~dom:app
    in
    roundtrip ();
    let t0 = Machine.now tb.Testbed.m in
    for _ = 1 to 10 do
      roundtrip ()
    done;
    (Machine.now tb.Testbed.m -. t0) /. 10.0
  in
  let mach = run Ipc.Mach and urpc = run Ipc.Urpc in
  Alcotest.(check bool)
    (Printf.sprintf "urpc %.1f much cheaper than mach %.1f" urpc mach)
    true
    (urpc < mach /. 2.0)

let test_urpc_same_semantics () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let conn =
    Ipc.connect tb.Testbed.region ~src:app ~dst:recv ~facility:Ipc.Urpc ()
  in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:app ~off:0 "same data, cheaper ride";
  let msg = Msg.of_fbuf fb ~off:0 ~len:23 in
  let seen = ref "" in
  Ipc.call conn msg ~handler:(fun received ->
      seen := Msg.to_string received ~as_:recv;
      Ipc.free_deferred conn received);
  check Alcotest.string "delivered" "same data, cheaper ride" !seen

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "lifecycle"
    [
      ( "pageout",
        [
          tc "no pressure no reclaim" `Quick test_pageout_no_pressure_no_reclaim;
          tc "relieves pressure" `Quick test_pageout_relieves_pressure;
          tc "spares warm buffers" `Quick test_pageout_spares_warm_buffers;
          tc "stops when nothing reclaimable" `Quick
            test_pageout_stops_when_nothing_reclaimable;
        ] );
      ( "termination",
        [
          tc "releases held references" `Quick
            test_terminate_releases_held_references;
          tc "originator chunks retained until drain" `Quick
            test_terminate_originator_retains_chunks_until_drain;
          tc "wrong allocator rejected" `Quick
            test_terminate_wrong_allocator_rejected;
          tc "frees frames of private buffers" `Quick
            test_terminate_frees_frames_of_private_buffers;
        ] );
      ( "reliable-transport",
        [
          tc "lossless delivery" `Quick test_rtp_lossless_delivery;
          tc "retransmits through loss" `Quick test_rtp_retransmits_through_loss;
          tc "retains buffers until ack" `Quick
            test_rtp_retains_buffers_until_ack;
          tc "gives up after max retries" `Quick
            test_rtp_gives_up_after_max_retries;
          tc "duplicate suppression" `Quick test_rtp_duplicate_suppression;
        ] );
      ( "urpc",
        [
          tc "cheaper than Mach" `Quick test_urpc_cheaper_than_mach;
          tc "same semantics" `Quick test_urpc_same_semantics;
        ] );
    ]
