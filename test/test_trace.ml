(* Tests for the tracing facility: histogram math, span bookkeeping,
   Chrome trace_event export round-tripped through the JSON parser, and
   the zero-overhead-when-disabled invariant. *)

open Fbufs_sim
open Fbufs
module Trace = Fbufs_trace.Trace
module Histogram = Fbufs_trace.Histogram
module Json = Fbufs_trace.Json
module Chrome = Fbufs_trace.Chrome
module Testbed = Fbufs_harness.Testbed

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_exact_extrema () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ];
  check Alcotest.int "count" 8 (Histogram.count h);
  check (Alcotest.float 1e-9) "sum" 31.0 (Histogram.sum h);
  check (Alcotest.float 1e-9) "min" 1.0 (Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 9.0 (Histogram.max_value h)

let test_hist_percentiles_known_inputs () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  (* Buckets grow by 2^(1/8) (~9%); a reported percentile is an upper
     bound within one bucket of the true order statistic. *)
  let assert_close p truth =
    let v = Histogram.percentile h p in
    let name = Printf.sprintf "p%g in [truth, truth*1.09]" p in
    Alcotest.(check bool) name true (v >= truth && v <= truth *. 1.09)
  in
  assert_close 50.0 50.0;
  assert_close 90.0 90.0;
  assert_close 99.0 99.0;
  check (Alcotest.float 1e-9) "p100 is exact max" 100.0
    (Histogram.percentile h 100.0);
  check (Alcotest.float 1e-9) "p0 is exact min" 1.0
    (Histogram.percentile h 0.0)

let test_hist_single_sample () =
  let h = Histogram.create () in
  Histogram.add h 42.0;
  List.iter
    (fun p ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "p%g of single sample" p)
        42.0
        (Histogram.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_hist_empty_and_zero () =
  let h = Histogram.create () in
  check (Alcotest.float 1e-9) "empty percentile" 0.0
    (Histogram.percentile h 50.0);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Histogram.mean h);
  Histogram.add h 0.0;
  Histogram.add h (-3.0) (* clamped to zero *);
  check Alcotest.int "zero samples counted" 2 (Histogram.count h);
  check (Alcotest.float 1e-9) "all-zero percentile" 0.0
    (Histogram.percentile h 99.0)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Histogram.add b) [ 100.0 ];
  let m = Histogram.merge a b in
  check Alcotest.int "merged count" 3 (Histogram.count m);
  check (Alcotest.float 1e-9) "merged min" 1.0 (Histogram.min_value m);
  check (Alcotest.float 1e-9) "merged max" 100.0 (Histogram.max_value m);
  check Alcotest.int "merge does not mutate" 2 (Histogram.count a)

(* ------------------------------------------------------------------ *)
(* Spans and event bookkeeping                                         *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let tr = Trace.create () in
  let outer = Trace.begin_span tr ~ts_us:0.0 ~machine:"m" "outer" in
  let inner = Trace.begin_span tr ~ts_us:1.0 ~machine:"m" "inner" in
  check Alcotest.int "two open spans" 2 (Trace.open_spans tr);
  Trace.end_span tr ~ts_us:3.0 inner;
  Trace.end_span tr ~ts_us:10.0 outer;
  check Alcotest.int "all spans closed" 0 (Trace.open_spans tr);
  (match List.map (fun (e : Trace.event) -> (e.kind, e.phase)) (Trace.events tr) with
  | [
   ("outer", Trace.Span_begin);
   ("inner", Trace.Span_begin);
   ("inner", Trace.Span_end);
   ("outer", Trace.Span_end);
  ] ->
      ()
  | evs ->
      Alcotest.failf "unexpected event sequence (%d events)" (List.length evs));
  (* Each closed span fed its duration to the per-kind histogram. *)
  let dur kind =
    match List.assoc_opt kind (Trace.kind_summary tr) with
    | Some h -> Histogram.max_value h
    | None -> Alcotest.failf "no histogram for %s" kind
  in
  check (Alcotest.float 1e-9) "inner duration" 2.0 (dur "inner");
  check (Alcotest.float 1e-9) "outer duration" 10.0 (dur "outer")

let test_span_unknown_id_ignored () =
  let tr = Trace.create () in
  Trace.end_span tr ~ts_us:1.0 0;
  Trace.end_span tr ~ts_us:1.0 999;
  check Alcotest.int "no events from bogus ends" 0 (Trace.event_count tr)

let test_async_span_crosses_machines () =
  let tr = Trace.create () in
  Trace.async_begin tr ~ts_us:5.0 ~machine:"tx" ~path_id:7 ~id:1 "pdu";
  Trace.async_end tr ~ts_us:9.0 ~machine:"rx" ~id:1 "pdu";
  let h = List.assoc ("pdu", 7) (Trace.summary tr) in
  check Alcotest.int "one flight sample" 1 (Histogram.count h);
  check (Alcotest.float 1e-9) "flight latency" 4.0 (Histogram.max_value h)

let test_capacity_drops_events_not_samples () =
  let tr = Trace.create ~capacity:2 () in
  for i = 0 to 9 do
    Trace.complete tr
      ~ts_us:(float_of_int i)
      ~dur_us:1.0 ~machine:"m" "op"
  done;
  check Alcotest.int "buffer capped" 2 (Trace.event_count tr);
  check Alcotest.int "drops counted" 8 (Trace.dropped tr);
  let h = List.assoc "op" (Trace.kind_summary tr) in
  check Alcotest.int "histogram saw every sample" 10 (Histogram.count h)

let test_machine_span_helpers () =
  let m = Machine.create ~name:"host" () in
  Alcotest.(check bool) "disabled by default" false (Machine.tracing m);
  check Alcotest.int "span_begin returns 0 when disabled" 0
    (Machine.span_begin m "nope");
  Machine.span_end m 0 (* must not raise *);
  let tr = Trace.create () in
  Machine.set_trace m (Some tr);
  Machine.with_span m "work" (fun () -> Machine.charge ~kind:"step" m 5.0);
  check Alcotest.int "no leaked spans" 0 (Trace.open_spans tr);
  let h = List.assoc "work" (Trace.kind_summary tr) in
  check (Alcotest.float 1e-9) "span covers the charge" 5.0
    (Histogram.max_value h)

(* ------------------------------------------------------------------ *)
(* Chrome export round trip                                            *)
(* ------------------------------------------------------------------ *)

(* A small real workload with the sink installed the way the harness
   does it: via [Machine.default_trace], picked up by [Machine.create]. *)
let traced_workload () =
  let tr = Trace.create () in
  let saved = !Machine.default_trace in
  Machine.default_trace := Some tr;
  Fun.protect
    ~finally:(fun () -> Machine.default_trace := saved)
    (fun () ->
      let tb = Testbed.create () in
      let app = Testbed.user_domain tb "app" in
      let recv = Testbed.user_domain tb "recv" in
      let alloc =
        Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
      in
      for _ = 1 to 3 do
        let fb = Allocator.alloc alloc ~npages:2 in
        Fbuf_api.touch_write fb ~as_:app;
        Transfer.send fb ~src:app ~dst:recv;
        Fbuf_api.touch_read fb ~as_:recv;
        Transfer.free fb ~dom:recv;
        Transfer.free fb ~dom:app
      done);
  tr

let test_chrome_json_roundtrip () =
  let tr = traced_workload () in
  Alcotest.(check bool) "workload emitted events" true
    (Trace.event_count tr > 0);
  let parsed = Json.parse (Chrome.to_string tr) in
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing or not a list"
  in
  Alcotest.(check bool) "non-empty traceEvents" true (events <> []);
  let str_field name ev =
    match Json.member name ev with
    | Some (Json.String s) -> s
    | _ -> Alcotest.failf "event without string %S field" name
  in
  let balance = Hashtbl.create 8 in
  let metadata = ref 0 in
  List.iter
    (fun ev ->
      let ph = str_field "ph" ev in
      (match ph with
      | "B" | "E" | "X" | "i" | "b" | "e" | "M" -> ()
      | other -> Alcotest.failf "unknown phase %S" other);
      if ph = "M" then incr metadata
      else begin
        (* Every non-metadata event carries a numeric timestamp. *)
        (match Json.member "ts" ev with
        | Some (Json.Float _ | Json.Int _) -> ()
        | _ -> Alcotest.fail "event without numeric ts");
        (* Async events need the correlation id Chrome requires. *)
        if ph = "b" || ph = "e" then
          if Json.member "id" ev = None || Json.member "cat" ev = None then
            Alcotest.fail "async event without id/cat"
      end;
      (* B/E must balance per (pid, tid) lane. *)
      if ph = "B" || ph = "E" then begin
        let lane = (Json.member "pid" ev, Json.member "tid" ev) in
        let d = try Hashtbl.find balance lane with Not_found -> 0 in
        let d = d + if ph = "B" then 1 else -1 in
        Alcotest.(check bool) "E never precedes B on a lane" true (d >= 0);
        Hashtbl.replace balance lane d
      end)
    events;
  Hashtbl.iter
    (fun _ d -> check Alcotest.int "B/E balanced per lane" 0 d)
    balance;
  Alcotest.(check bool) "has process/thread metadata" true (!metadata > 0);
  match Json.member "displayTimeUnit" parsed with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "missing displayTimeUnit"

let test_jsonl_lines_parse () =
  let tr = traced_workload () in
  let path = Filename.temp_file "fbufs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chrome.write_jsonl tr path;
      let ic = open_in path in
      let lines = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lines;
           match Json.parse line with
           | Json.Obj fields ->
               Alcotest.(check bool) "line has kind" true
                 (List.mem_assoc "kind" fields)
           | _ -> Alcotest.fail "jsonl line is not an object"
         done
       with End_of_file -> close_in ic);
      check Alcotest.int "one line per buffered event" (Trace.event_count tr)
        !lines)

(* ------------------------------------------------------------------ *)
(* Zero overhead when disabled                                         *)
(* ------------------------------------------------------------------ *)

(* The same seeded workload must leave bit-identical statistics and
   clock whether a sink is attached or not: tracing observes charges, it
   never adds any. *)
let run_workload ~trace () =
  let saved = !Machine.default_trace in
  Machine.default_trace := trace;
  Fun.protect
    ~finally:(fun () -> Machine.default_trace := saved)
    (fun () ->
      let tb = Testbed.create () in
      let app = Testbed.user_domain tb "app" in
      let recv = Testbed.user_domain tb "recv" in
      let alloc =
        Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
      in
      for _ = 1 to 5 do
        let fb = Allocator.alloc alloc ~npages:3 in
        Fbuf_api.touch_write fb ~as_:app;
        Transfer.send fb ~src:app ~dst:recv;
        Fbuf_api.touch_read fb ~as_:recv;
        Transfer.free fb ~dom:recv;
        Transfer.free fb ~dom:app
      done;
      let m = tb.Testbed.m in
      (Stats.snapshot m.Machine.stats, Machine.now m))

let test_disabled_tracing_is_invisible () =
  let stats_off, now_off = run_workload ~trace:None () in
  let tr = Trace.create () in
  let stats_on, now_on = run_workload ~trace:(Some tr) () in
  Alcotest.(check bool) "traced run actually traced" true
    (Trace.event_count tr > 0);
  check (Alcotest.float 0.0) "identical clock" now_off now_on;
  check
    Alcotest.(list (pair string (Alcotest.float 0.0)))
    "identical statistics" stats_off stats_on;
  check
    Alcotest.(list (pair string (Alcotest.float 0.0)))
    "no residual delta" []
    (Stats.diff ~before:stats_off ~after:stats_on)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact extrema" `Quick test_hist_exact_extrema;
          Alcotest.test_case "percentiles on known inputs" `Quick
            test_hist_percentiles_known_inputs;
          Alcotest.test_case "single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "empty and zero" `Quick test_hist_empty_and_zero;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "unknown ids ignored" `Quick
            test_span_unknown_id_ignored;
          Alcotest.test_case "async crosses machines" `Quick
            test_async_span_crosses_machines;
          Alcotest.test_case "capacity drops events not samples" `Quick
            test_capacity_drops_events_not_samples;
          Alcotest.test_case "machine helpers" `Quick test_machine_span_helpers;
        ] );
      ( "chrome-export",
        [
          Alcotest.test_case "json round trip" `Quick test_chrome_json_roundtrip;
          Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
        ] );
      ( "zero-overhead",
        [
          Alcotest.test_case "disabled tracing is invisible" `Quick
            test_disabled_tracing_is_invisible;
        ] );
    ]
