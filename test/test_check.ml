(* The checker checked.

   Seeded differential runs must pass on the healthy stack in both modes;
   the structural audit must be clean over a live system; a deliberately
   seeded protection bug (Transfer.chaos_skip_protect) must be caught and
   shrink to a handful of operations; and the adversarial corners the
   checker leans on — malformed DAGs, pageout under caching — must behave
   as documented when driven directly. *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Check = Fbufs_check
module Testbed = Fbufs_harness.Testbed
module Msg = Fbufs_msg.Msg
module Integrated = Fbufs_msg.Integrated

let check_seed ~adversary seed =
  let report, _ = Check.Driver.run ~seed ~ops:300 ~adversary in
  match report.Check.Driver.failure with
  | None -> ()
  | Some (step, op, msg) ->
      Alcotest.failf "seed %d step %d (%a): %s" seed step Check.Op.pp op msg

let test_normal_seeds () = List.iter (check_seed ~adversary:false) [ 1; 2; 3 ]
let test_adversary_seeds () = List.iter (check_seed ~adversary:true) [ 1; 2; 3 ]

let test_replay_deterministic () =
  let ops = Check.Driver.gen_ops ~seed:5 ~n:200 ~adversary:true in
  let r1 = Check.Driver.replay ~seed:5 ops in
  let r2 = Check.Driver.replay ~seed:5 ops in
  Alcotest.(check bool) "no failure" false
    (Check.Driver.failed r1 || Check.Driver.failed r2);
  Alcotest.(check int) "same executed count" r1.Check.Driver.executed
    r2.Check.Driver.executed;
  Alcotest.(check int) "same skipped count" r1.Check.Driver.skipped
    r2.Check.Driver.skipped

(* The audit over a healthy hand-built system finds nothing. *)
let test_audit_clean () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let alloc = Testbed.allocator tb ~domains:[ a; b ] Fbuf.cached_volatile in
  let fb1 = Allocator.alloc alloc ~npages:2 in
  Transfer.send fb1 ~src:a ~dst:b;
  ignore (Access.read_bytes b ~vaddr:(Fbuf.vaddr fb1) ~len:(Fbuf.size fb1));
  let fb2 = Allocator.alloc alloc ~npages:1 in
  Transfer.free fb2 ~dom:a;
  let target =
    {
      Check.Audit.region = tb.Testbed.region;
      domains = [ tb.Testbed.kernel; a; b ];
      allocators = [ alloc ];
    }
  in
  Alcotest.(check (list string)) "no violations" [] (Check.audit target)

(* Acceptance test for the whole tentpole: seed a real bug — securing
   that skips the VM protection raise — and the checker must both catch
   it and shrink the counterexample to a handful of operations. *)
let test_chaos_bug_caught_and_shrunk () =
  Fun.protect ~finally:(fun () -> Transfer.chaos_skip_protect := false)
  @@ fun () ->
  Transfer.chaos_skip_protect := true;
  let report, ops = Check.Driver.run ~seed:1 ~ops:400 ~adversary:false in
  Alcotest.(check bool) "seeded bug detected" true (Check.Driver.failed report);
  let shrunk, shrunk_report = Check.Shrink.minimize ~seed:1 ops in
  Alcotest.(check bool) "shrunk sequence still fails" true
    (Check.Driver.failed shrunk_report);
  if List.length shrunk > 10 then
    Alcotest.failf "minimal reproducer has %d ops (> 10):@.%a"
      (List.length shrunk) Check.Op.pp_list shrunk;
  Transfer.chaos_skip_protect := false;
  Alcotest.(check bool) "shrunk sequence passes without the bug" false
    (Check.Driver.failed (Check.Driver.replay ~seed:1 shrunk))

(* Same acceptance shape for the TLB deferral tentpole: seed the
   deferred-downgrade bug — protection downgrades queued like removals
   instead of shot down immediately — and the per-step TLB audit must
   catch it (a writable TLB entry surviving over a read-only translation,
   or a queued shootdown whose translation is still installed) and shrink
   the counterexample. *)
let test_tlb_chaos_bug_caught_and_shrunk () =
  Fun.protect ~finally:(fun () -> Pmap.chaos_defer_downgrade := false)
  @@ fun () ->
  Pmap.chaos_defer_downgrade := true;
  let report, ops = Check.Driver.run ~seed:1 ~ops:400 ~adversary:false in
  Alcotest.(check bool) "seeded bug detected" true (Check.Driver.failed report);
  let shrunk, shrunk_report = Check.Shrink.minimize ~seed:1 ops in
  Alcotest.(check bool) "shrunk sequence still fails" true
    (Check.Driver.failed shrunk_report);
  if List.length shrunk > 10 then
    Alcotest.failf "minimal reproducer has %d ops (> 10):@.%a"
      (List.length shrunk) Check.Op.pp_list shrunk;
  Pmap.chaos_defer_downgrade := false;
  Alcotest.(check bool) "shrunk sequence passes without the bug" false
    (Check.Driver.failed (Check.Driver.replay ~seed:1 shrunk))

(* The deferral window attacked deterministically: a read-touched
   uncached buffer is freed and its old addresses touched in the same
   step. Both the zero-read and the faulting-write arms must hold. *)
let test_tlb_stale_direct () =
  let ops =
    Check.Op.
      [
        Alloc { alloc = 2; npages = 1 };
        Write { fbuf = 0 };
        Tlb_stale { fbuf = 0; write = false };
        Alloc { alloc = 2; npages = 1 };
        Write { fbuf = 0 };
        Tlb_stale { fbuf = 0; write = true };
      ]
  in
  let r = Check.Driver.replay ~seed:7 ops in
  match r.Check.Driver.failure with
  | None -> Alcotest.(check int) "all executed" 6 r.Check.Driver.executed
  | Some (step, op, msg) ->
      Alcotest.failf "step %d (%a): %s" step Check.Op.pp op msg

(* Malformed-DAG handling, driven directly: every bad structure yields an
   empty message plus an anomaly stat, never an escaping exception. *)
let test_integrated_bad_dags () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let region = tb.Testbed.region in
  let stats = tb.Testbed.m.Machine.stats in
  let alloc = Testbed.allocator tb ~domains:[ a ] Fbuf.volatile_only in
  let ps = Testbed.page_size tb in
  let cfg = Region.config region in
  let anomalies () =
    Stats.get stats "integrated.bad_node"
    + Stats.get stats "integrated.cycle"
    + Stats.get stats "integrated.bad_data_ref"
    + Stats.get stats "integrated.budget_exhausted"
  in
  let expect_empty name root =
    let before = anomalies () in
    match Integrated.deserialize region ~as_:b ~root_vaddr:root with
    | msg ->
        Alcotest.(check bool) (name ^ ": empty message") true (Msg.is_empty msg);
        Alcotest.(check bool)
          (name ^ ": anomaly counted")
          true
          (anomalies () > before)
    | exception e ->
        Alcotest.failf "%s: escaped as exception %s" name (Printexc.to_string e)
  in
  (* A node crafted by the (malicious) originator a, then sent to b so b
     reads the actual bytes rather than the dead page. *)
  let craft tag w1_of w2 =
    let fb = Allocator.alloc alloc ~npages:1 in
    let bts = Bytes.create Integrated.node_size in
    Bytes.set_int32_le bts 0 (Int32.of_int tag);
    Bytes.set_int32_le bts 4 (Int32.of_int (w1_of fb));
    Bytes.set_int32_le bts 8 (Int32.of_int w2);
    Bytes.set_int32_le bts 12 0l;
    Access.write_bytes a ~vaddr:(Fbuf.vaddr fb) bts;
    Transfer.send fb ~src:a ~dst:b;
    fb
  in
  expect_empty "root below the region" ((cfg.Region.base_vpn * ps) - ps);
  (* Regression: a record whose first byte is in the region but whose 16
     bytes straddle its end must be rejected, not read across. *)
  expect_empty "root straddling the region end"
    (((cfg.Region.base_vpn + cfg.Region.region_pages) * ps) - 8);
  let garbage = craft 9 (fun _ -> 0) 0 in
  expect_empty "garbage node tag" (Fbuf.vaddr garbage);
  let cycle = craft 2 Fbuf.vaddr 0 in
  (* Second child = own address too: a self-referential cat node. *)
  Access.write_word a ~vaddr:(Fbuf.vaddr cycle + 8) (Fbuf.vaddr cycle);
  expect_empty "self-referential cat node" (Fbuf.vaddr cycle);
  let overrun = craft 1 Fbuf.vaddr 0x1000000 in
  expect_empty "leaf length overruns its fbuf" (Fbuf.vaddr overrun);
  (* An in-region root b has no mapping for reads as the dead page. *)
  let hole = Allocator.alloc alloc ~npages:1 in
  expect_empty "unmapped in-region root" (Fbuf.vaddr hole)

(* Pageout of a parked cached buffer must not leave stale contents or
   stale receiver mappings behind when the buffer is reallocated. *)
let test_pageout_then_cached_realloc () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let alloc = Testbed.allocator tb ~domains:[ a; b ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:2 in
  let size = Fbuf.size fb in
  let vaddr = Fbuf.vaddr fb in
  let secret = Bytes.make size 's' in
  Access.write_bytes a ~vaddr secret;
  Transfer.send fb ~src:a ~dst:b;
  Alcotest.(check bool) "receiver sees the live bytes" true
    (Bytes.equal secret (Access.read_bytes b ~vaddr ~len:size));
  Transfer.free fb ~dom:b;
  Transfer.free fb ~dom:a;
  Alcotest.(check int) "parked buffer reclaimed" 1
    (Allocator.reclaim alloc ~max_fbufs:8 ());
  Alcotest.(check bool) "originator frames discarded" true
    (Vm_map.frame_of a.Pd.map ~vpn:fb.Fbuf.base_vpn = None);
  Alcotest.(check bool) "receiver mapping removed" true
    (Vm_map.frame_of b.Pd.map ~vpn:fb.Fbuf.base_vpn = None);
  let fb2 = Allocator.alloc alloc ~npages:2 in
  Alcotest.(check int) "cache reuses the same buffer" fb.Fbuf.id fb2.Fbuf.id;
  Alcotest.(check bool) "no stale secret after pageout + realloc" true
    (Bytes.equal
       (Bytes.make size '\000')
       (Access.read_bytes a ~vaddr ~len:size));
  let fresh = Bytes.make size 'f' in
  Access.write_bytes a ~vaddr fresh;
  Transfer.send fb2 ~src:a ~dst:b;
  Alcotest.(check bool) "receiver re-materializes the fresh contents" true
    (Bytes.equal fresh (Access.read_bytes b ~vaddr ~len:size))

(* Rng.fork: keyed substreams that do not perturb the parent. *)
let stream g n = List.init n (fun _ -> Rng.next g)

let test_fork_parent_unperturbed () =
  let forked = Rng.create 7 in
  ignore (Rng.fork forked 3);
  ignore (Rng.fork forked 4);
  let virgin = Rng.create 7 in
  Alcotest.(check (list int64)) "parent draws identical after forks"
    (stream virgin 32) (stream forked 32)

let test_fork_keys () =
  let p = Rng.create 7 in
  let s1 = stream (Rng.fork p 1) 8 in
  let s2 = stream (Rng.fork p 2) 8 in
  Alcotest.(check bool) "distinct keys give distinct streams" false (s1 = s2);
  Alcotest.(check (list int64)) "same key is deterministic" s1
    (stream (Rng.fork p 1) 8);
  let other_parent = Rng.create 8 in
  Alcotest.(check bool) "fork depends on parent state" false
    (s1 = stream (Rng.fork other_parent 1) 8)

let () =
  Alcotest.run "check"
    [
      ( "differential",
        [
          Alcotest.test_case "normal seeds 1-3" `Quick test_normal_seeds;
          Alcotest.test_case "adversary seeds 1-3" `Quick test_adversary_seeds;
          Alcotest.test_case "replay is deterministic" `Quick
            test_replay_deterministic;
        ] );
      ( "audit",
        [ Alcotest.test_case "clean live system" `Quick test_audit_clean ] );
      ( "fault injection",
        [
          Alcotest.test_case "seeded protection bug caught, shrunk to <= 10"
            `Quick test_chaos_bug_caught_and_shrunk;
          Alcotest.test_case "seeded deferred-downgrade bug caught, shrunk"
            `Quick test_tlb_chaos_bug_caught_and_shrunk;
          Alcotest.test_case "stale TLB window cannot reach freed frames"
            `Quick test_tlb_stale_direct;
        ] );
      ( "integrated edge cases",
        [
          Alcotest.test_case "bad DAGs are empty + counted, never raise"
            `Quick test_integrated_bad_dags;
        ] );
      ( "pageout x caching",
        [
          Alcotest.test_case "no stale state after pageout + realloc" `Quick
            test_pageout_then_cached_realloc;
        ] );
      ( "rng fork",
        [
          Alcotest.test_case "parent unperturbed" `Quick
            test_fork_parent_unperturbed;
          Alcotest.test_case "keyed substreams" `Quick test_fork_keys;
        ] );
    ]
