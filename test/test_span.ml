(* Fbufs_span: the causal span sink's well-formedness and exactness
   invariants on crafted trees, the critical-path extractor on a chain
   with known slack, exporter round-trips, the DDSketch-style quantile
   sketch (relative-error bound, exact merge algebra, serialization),
   the gauge time-series rings, and an end-to-end Figure 5 run whose
   per-transfer span charges must partition the ledger exactly. *)

module Span = Fbufs_span.Span
module Critical = Fbufs_span.Critical
module Export = Fbufs_span.Span_export
module Comp = Fbufs_metrics.Component
module Sketch = Fbufs_metrics.Sketch
module Mx = Fbufs_metrics.Metrics
module Timeseries = Fbufs_metrics.Timeseries
module Machine = Fbufs_sim.Machine
module Json = Fbufs_trace.Json

let check = Alcotest.check

let no_violations what t =
  check Alcotest.(list string) (what ^ ": well-formed") [] (Span.check t)

(* One tx-side transfer with a nested push, a wire flight and an rx-side
   adopted delivery — the crafted fixture most tests share. Charges are
   chosen so every per-component cell is distinct. *)
let crafted () =
  let t = Span.create () in
  let tid = Span.transfer_begin t ~machine:"tx" ~ts_us:0.0 ~domain:"app" "msg" in
  Span.on_charge t ~machine:"tx" ~comp:Comp.Alloc 1.0;
  let a = Span.enter t ~machine:"tx" ~ts_us:1.0 ~domain:"kernel" "push" in
  Span.on_charge t ~machine:"tx" ~comp:Comp.Proto 3.0;
  let c = Span.enter t ~machine:"tx" ~ts_us:2.0 "stray" in
  Span.on_charge t ~machine:"tx" ~comp:Comp.Copy 0.5;
  Span.finish t ~machine:"tx" ~ts_us:3.0 c;
  Span.finish t ~machine:"tx" ~ts_us:4.0 a;
  let f = Span.flight t ~transfer:tid ~follows:a ~start_us:4.0 ~end_us:5.0 "pdu" in
  let b = Span.adopt t ~machine:"rx" ~ts_us:5.0 ~transfer:tid ~follows:f "rx" in
  Span.on_charge t ~machine:"rx" ~comp:Comp.Net 2.0;
  Span.transfer_end t ~machine:"tx" ~ts_us:6.0 tid;
  Span.finish t ~machine:"rx" ~ts_us:9.0 b;
  (t, tid, (a, c, f, b))

(* ------------------------------------------------------------------ *)
(* Sink structure and exactness                                        *)

let test_tree_structure () =
  let t, tid, (a, c, f, b) = crafted () in
  no_violations "crafted" t;
  let tr = Option.get (Span.find_transfer t tid) in
  let spans = Span.spans_of tr in
  check Alcotest.int "five spans" 5 (List.length spans);
  let span id = Option.get (Span.find_span t id) in
  check Alcotest.int "push is a child of the root" tr.Span.root
    (span a).Span.parent;
  check Alcotest.int "stray is a child of push" a (span c).Span.parent;
  check Alcotest.int "flight follows push" a (span f).Span.follows;
  check Alcotest.string "flight runs on the wire" Span.wire
    (span f).Span.machine;
  check Alcotest.int "delivery is parentless" 0 (span b).Span.parent;
  check Alcotest.int "delivery follows the flight" f (span b).Span.follows;
  Alcotest.(check bool) "all spans closed" true (List.for_all Span.is_closed spans)

let test_charge_partition_is_exact () =
  let t, tid, _ = crafted () in
  let tr = Option.get (Span.find_transfer t tid) in
  (* 1 + 3 + 0.5 + 2 us of CPU charges plus the 1 us flight on the wire. *)
  check Alcotest.int "transfer total" 7_500 (Span.total_ns tr);
  check Alcotest.int "Proto cell" 3_000 tr.Span.cells_ns.(Comp.index Comp.Proto);
  check Alcotest.int "Net cell (flight included)" 3_000
    tr.Span.cells_ns.(Comp.index Comp.Net);
  let sum =
    List.fold_left (fun acc sp -> acc + Span.span_total_ns sp) 0
      (Span.spans_of tr)
  in
  check Alcotest.int "span charges partition the transfer" (Span.total_ns tr) sum

let test_fractional_charges_still_sum () =
  (* Thirds and tenths are not representable in binary floating point;
     single-point rounding means the integer cells still agree exactly. *)
  let t = Span.create () in
  let tid = Span.transfer_begin t ~machine:"m" ~ts_us:0.0 "frac" in
  for i = 1 to 1000 do
    let sp = Span.enter t ~machine:"m" ~ts_us:(float_of_int i) "w" in
    Span.on_charge t ~machine:"m" ~comp:Comp.Ipc (1.0 /. 3.0);
    Span.on_charge t ~machine:"m" ~comp:Comp.Touch 0.1;
    Span.finish t ~machine:"m" ~ts_us:(float_of_int i +. 0.5) sp
  done;
  Span.transfer_end t ~machine:"m" ~ts_us:2000.0 tid;
  no_violations "fractional charges" t

let test_unfinished_span_is_reported () =
  let t = Span.create () in
  let tid = Span.transfer_begin t ~machine:"m" ~ts_us:0.0 "leak" in
  let (_ : int) = Span.enter t ~machine:"m" ~ts_us:1.0 "open" in
  Span.transfer_end t ~machine:"m" ~ts_us:2.0 tid;
  Alcotest.(check bool)
    "draining an open span is a violation" false
    (Span.check t = [])

let test_mismatched_finish_is_reported () =
  let t = Span.create () in
  let tid = Span.transfer_begin t ~machine:"m" ~ts_us:0.0 "bad" in
  Span.finish t ~machine:"m" ~ts_us:1.0 424242;
  Span.transfer_end t ~machine:"m" ~ts_us:2.0 tid;
  Alcotest.(check bool)
    "finishing an unknown id is a violation" false
    (Span.violations t = [])

let test_untracked_charges () =
  let t = Span.create () in
  Span.on_charge t ~machine:"m" ~comp:Comp.Map 4.0;
  let u = Span.untracked_ns t ~machine:"m" in
  check Alcotest.int "no-context charge lands untracked" 4_000
    u.(Comp.index Comp.Map);
  check Alcotest.int "arrival total covers it" 4_000
    (Span.charged_ns t ~machine:"m");
  no_violations "untracked only" t

let test_enter_without_transfer_is_id_zero () =
  let t = Span.create () in
  check Alcotest.int "no context, no span" 0
    (Span.enter t ~machine:"m" ~ts_us:1.0 "w");
  Span.finish t ~machine:"m" ~ts_us:2.0 0;
  no_violations "id 0 ignored" t

let test_cross_transfer_follows () =
  (* A transfer opened while another span is on the CPU (the ack handler
     pumping the next message) records a follows-from edge to it. *)
  let t = Span.create () in
  let t1 = Span.transfer_begin t ~machine:"m" ~ts_us:0.0 "first" in
  let h = Span.enter t ~machine:"m" ~ts_us:1.0 "ack" in
  let t2 = Span.transfer_begin t ~machine:"m" ~ts_us:2.0 "second" in
  Span.transfer_end t ~machine:"m" ~ts_us:3.0 t2;
  Span.finish t ~machine:"m" ~ts_us:4.0 h;
  Span.transfer_end t ~machine:"m" ~ts_us:5.0 t1;
  no_violations "pipelined transfers" t;
  let tr2 = Option.get (Span.find_transfer t t2) in
  let root2 = Option.get (Span.find_span t tr2.Span.root) in
  check Alcotest.int "second root follows the ack handler" h root2.Span.follows

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)

let test_critical_path_and_slack () =
  let t, tid, (a, _c, f, b) = crafted () in
  let tr = Option.get (Span.find_transfer t tid) in
  let s = Critical.analyze t tr in
  check (Alcotest.float 1e-9) "wall is first start to last end" 9.0 s.Critical.wall_us;
  check
    Alcotest.(list int)
    "path follows the causal chain back from the delivery"
    [ tr.Span.root; a; f; b ]
    (List.map (fun sp -> sp.Span.id) s.Critical.path);
  (match s.Critical.off with
  | [ (sp, slack) ] ->
      check Alcotest.string "stray is off-path" "stray" sp.Span.kind;
      (* It ends at 3; the next on-path start is the flight at 4. *)
      check (Alcotest.float 1e-9) "slack to the next on-path start" 1.0 slack
  | off -> Alcotest.failf "expected one off-path span, got %d" (List.length off));
  Array.iteri
    (fun i on ->
      check Alcotest.int
        (Printf.sprintf "component %d on+off = ledger" i)
        tr.Span.cells_ns.(i)
        (on + s.Critical.off_ns.(i)))
    s.Critical.on_ns

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let test_jsonl_round_trip () =
  let t, _, _ = crafted () in
  let parsed = Export.parse_jsonl (Export.jsonl t) in
  let original = Span.transfers t in
  check Alcotest.int "transfer count" (List.length original) (List.length parsed);
  List.iter2
    (fun (o : Span.transfer) (p : Span.transfer) ->
      check Alcotest.int "tid" o.Span.tid p.Span.tid;
      check Alcotest.string "label" o.Span.label p.Span.label;
      check Alcotest.int "root" o.Span.root p.Span.root;
      check
        Alcotest.(array int)
        "ledger cells" o.Span.cells_ns p.Span.cells_ns;
      List.iter2
        (fun (os : Span.span) (ps : Span.span) ->
          check Alcotest.int "id" os.Span.id ps.Span.id;
          check Alcotest.int "parent" os.Span.parent ps.Span.parent;
          check Alcotest.int "follows" os.Span.follows ps.Span.follows;
          check Alcotest.string "kind" os.Span.kind ps.Span.kind;
          check Alcotest.string "machine" os.Span.machine ps.Span.machine;
          check (Alcotest.float 1e-9) "start" os.Span.start_us ps.Span.start_us;
          check (Alcotest.float 1e-9) "end" os.Span.end_us ps.Span.end_us;
          check
            Alcotest.(array int)
            "charges" os.Span.charges_ns ps.Span.charges_ns)
        (Span.spans_of o) (Span.spans_of p))
    original parsed

let test_jsonl_rejects_orphan_span () =
  let zeros =
    String.concat "," (List.init (Array.length Comp.(Array.of_list all)) (fun _ -> "0"))
  in
  let bad =
    Printf.sprintf
      {|{"type":"span","id":7,"transfer":99,"parent":0,"follows":0,"kind":"w","machine":"m","domain":"","path_id":0,"start_us":0,"end_us":1,"charges_ns":[%s]}|}
      zeros
  in
  Alcotest.check_raises "orphan span"
    (Export.Parse_error "line 1: span #7 references unknown transfer #99")
    (fun () -> ignore (Export.parse_jsonl bad))

let test_chrome_export_shape () =
  let t, _, _ = crafted () in
  let j = Json.parse (Json.to_string (Export.chrome t)) in
  match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 5);
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with
            | Some (Json.String p) -> Some p
            | _ -> None)
          evs
      in
      List.iter
        (fun ph ->
          Alcotest.(check bool)
            (Printf.sprintf "phase %S present" ph)
            true (List.mem ph phases))
        [ "X"; "M"; "s"; "f" ]
  | _ -> Alcotest.fail "no traceEvents array"

(* ------------------------------------------------------------------ *)
(* Quantile sketch                                                     *)

let positive_floats =
  QCheck.(
    list_of_size
      Gen.(10 -- 300)
      (map (fun x -> Float.abs x +. 0.001) (float_bound_inclusive 10_000.0)))

let exact_quantile xs p =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  let rank = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n))) in
  a.(rank - 1)

let sketch_of xs =
  let sk = Sketch.create ~alpha:0.01 () in
  List.iter (Sketch.add sk) xs;
  sk

let prop_quantile_relative_error =
  QCheck.Test.make ~name:"sketch quantile within the relative-error bound"
    ~count:200 positive_floats (fun xs ->
      let sk = sketch_of xs in
      List.for_all
        (fun p ->
          let want = exact_quantile xs p in
          let got = Sketch.quantile sk p in
          Float.abs (got -. want) <= (0.01 *. want) +. 1e-9)
        [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ])

let prop_merge_commutes =
  QCheck.Test.make ~name:"sketch merge is commutative" ~count:100
    QCheck.(pair positive_floats positive_floats)
    (fun (xs, ys) ->
      let a = sketch_of xs and b = sketch_of ys in
      Sketch.equal (Sketch.merge a b) (Sketch.merge b a))

let prop_merge_associates =
  QCheck.Test.make ~name:"sketch merge is associative" ~count:100
    QCheck.(triple positive_floats positive_floats positive_floats)
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      Sketch.equal
        (Sketch.merge (Sketch.merge a b) c)
        (Sketch.merge a (Sketch.merge b c)))

let prop_merge_is_union =
  QCheck.Test.make ~name:"merged sketch equals the sketch of the union"
    ~count:100
    QCheck.(pair positive_floats positive_floats)
    (fun (xs, ys) ->
      Sketch.equal
        (Sketch.merge (sketch_of xs) (sketch_of ys))
        (sketch_of (xs @ ys)))

let prop_serialization_round_trips =
  QCheck.Test.make ~name:"sketch JSON round-trip preserves equality"
    ~count:100 positive_floats (fun xs ->
      let sk = sketch_of xs in
      Sketch.equal sk (Sketch.of_json_string (Sketch.to_json_string sk)))

let test_sketch_negative_and_zero () =
  let sk = Sketch.create ~alpha:0.01 () in
  List.iter (Sketch.add sk) [ -100.0; -1.0; 0.0; 1.0; 100.0 ];
  check Alcotest.int "count" 5 (Sketch.count sk);
  check (Alcotest.float 1e-9) "min" (-100.0) (Sketch.min_value sk);
  check (Alcotest.float 1e-9) "max" 100.0 (Sketch.max_value sk);
  let med = Sketch.quantile sk 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "median %g ~ 0" med)
    true
    (Float.abs med <= 0.01);
  Alcotest.(check bool)
    "p100 hits the max" true
    (Float.abs (Sketch.quantile sk 100.0 -. 100.0) <= 1.0)

let test_sketch_alpha_mismatch_rejected () =
  let a = Sketch.create ~alpha:0.01 () and b = Sketch.create ~alpha:0.02 () in
  Alcotest.check_raises "mismatched alpha"
    (Invalid_argument "Sketch.merge: sketches have different alpha")
    (fun () -> ignore (Sketch.merge a b))

let test_sketch_metric_kind () =
  (* A sketch-backed metric observes through the registry and renders in
     both expositions. *)
  let def =
    Mx.sketch ~name:"fbufs_test_span_wall_us" ~help:"test sketch"
      ~labels:[ "label" ] ()
  in
  let mx = Mx.create () in
  List.iter
    (fun v -> Mx.observe mx def ~labels:[ "a" ] v)
    [ 10.0; 20.0; 30.0 ];
  check (Alcotest.float 1e-9) "value is the sum" 60.0
    (Option.get (Mx.value mx def ~labels:[ "a" ]));
  let prom = Fbufs_metrics.Expo.to_prometheus mx in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "count row" true
    (contains prom "fbufs_test_span_wall_us_count");
  Alcotest.(check bool) "quantile row" true
    (contains prom "quantile=\"0.99\"")

(* ------------------------------------------------------------------ *)
(* Gauge time series                                                   *)

let depth_gauge =
  Mx.gauge ~name:"fbufs_test_span_depth" ~help:"test gauge" ~labels:[ "q" ] ()

let test_timeseries_ring () =
  let ts = Timeseries.create ~capacity:4 () in
  let mx = Mx.create () in
  for i = 1 to 6 do
    Mx.set mx depth_gauge ~labels:[ "a" ] (float_of_int i);
    Timeseries.tick ts ~now_us:(float_of_int (i * 10)) mx
  done;
  check Alcotest.int "six ticks" 6 (Timeseries.ticks ts);
  match Timeseries.find ts ~name:"fbufs_test_span_depth" ~labels:[ "a" ] with
  | None -> Alcotest.fail "series missing"
  | Some pts ->
      check Alcotest.int "ring keeps the window" 4 (Array.length pts);
      check
        Alcotest.(list (pair (float 1e-9) (float 1e-9)))
        "oldest points evicted"
        [ (30.0, 3.0); (40.0, 4.0); (50.0, 5.0); (60.0, 6.0) ]
        (Array.to_list pts)

(* ------------------------------------------------------------------ *)
(* End to end                                                          *)

let test_fig5_run_is_well_formed_and_exact () =
  let sink = Span.create () in
  let saved = !Machine.default_spans in
  Machine.default_spans := Some sink;
  Fun.protect
    ~finally:(fun () -> Machine.default_spans := saved)
    (fun () ->
      ignore
        (Fbufs_harness.Exp_fig5.run_one ~uncached:false
           ~config:Fbufs_harness.Exp_fig5.User_user ~bytes:16384 ~window:4
           ~nmsgs:4 ()));
  no_violations "fig5 run" sink;
  let trs = Span.transfers sink in
  check Alcotest.int "one transfer per message" 4 (List.length trs);
  List.iter
    (fun (tr : Span.transfer) ->
      Alcotest.(check bool)
        "the transfer crossed both machines and the wire" true
        (List.sort_uniq compare
           (List.map (fun sp -> sp.Span.machine) (Span.spans_of tr))
        = [ "rx"; "tx"; Span.wire ]);
      let s = Critical.analyze sink tr in
      Alcotest.(check bool) "path is non-trivial" true
        (List.length s.Critical.path > 3);
      let on = Array.fold_left ( + ) 0 s.Critical.on_ns in
      let off = Array.fold_left ( + ) 0 s.Critical.off_ns in
      check Alcotest.int "critical path + slack = ledger charge"
        (Span.total_ns tr) (on + off))
    trs

let test_fig5_spans_follow_across_transfers () =
  (* With a window, later transfers are pumped from ack handlers: their
     roots must carry cross-transfer follows edges. *)
  let sink = Span.create () in
  let saved = !Machine.default_spans in
  Machine.default_spans := Some sink;
  Fun.protect
    ~finally:(fun () -> Machine.default_spans := saved)
    (fun () ->
      ignore
        (Fbufs_harness.Exp_fig5.run_one ~uncached:false
           ~config:Fbufs_harness.Exp_fig5.User_user ~bytes:16384 ~window:2
           ~nmsgs:6 ()));
  let trs = Span.transfers sink in
  let follows_of (tr : Span.transfer) =
    (Option.get (Span.find_span sink tr.Span.root)).Span.follows
  in
  let linked = List.filter (fun tr -> follows_of tr <> 0) trs in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d roots follow earlier work" (List.length linked)
       (List.length trs))
    true
    (List.length linked >= List.length trs - 2)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "span"
    [
      ( "sink",
        [
          tc "tree structure" `Quick test_tree_structure;
          tc "exact charge partition" `Quick test_charge_partition_is_exact;
          tc "fractional charges" `Quick test_fractional_charges_still_sum;
          tc "unfinished span reported" `Quick test_unfinished_span_is_reported;
          tc "mismatched finish reported" `Quick
            test_mismatched_finish_is_reported;
          tc "untracked charges" `Quick test_untracked_charges;
          tc "no context, id 0" `Quick test_enter_without_transfer_is_id_zero;
          tc "cross-transfer follows" `Quick test_cross_transfer_follows;
        ] );
      ( "critical path",
        [ tc "path and slack" `Quick test_critical_path_and_slack ] );
      ( "export",
        [
          tc "JSONL round-trip" `Quick test_jsonl_round_trip;
          tc "orphan span rejected" `Quick test_jsonl_rejects_orphan_span;
          tc "chrome shape" `Quick test_chrome_export_shape;
        ] );
      ( "sketch",
        [
          QCheck_alcotest.to_alcotest prop_quantile_relative_error;
          QCheck_alcotest.to_alcotest prop_merge_commutes;
          QCheck_alcotest.to_alcotest prop_merge_associates;
          QCheck_alcotest.to_alcotest prop_merge_is_union;
          QCheck_alcotest.to_alcotest prop_serialization_round_trips;
          tc "negatives and zero" `Quick test_sketch_negative_and_zero;
          tc "alpha mismatch" `Quick test_sketch_alpha_mismatch_rejected;
          tc "registry kind" `Quick test_sketch_metric_kind;
        ] );
      ( "timeseries", [ tc "ring window" `Quick test_timeseries_ring ] );
      ( "end-to-end",
        [
          tc "fig5 exact partition" `Quick
            test_fig5_run_is_well_formed_and_exact;
          tc "fig5 pipelining edges" `Quick
            test_fig5_spans_follow_across_transfers;
        ] );
    ]
