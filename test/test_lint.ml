(* Fbufs_lint: one known-bad fixture per rule, each pinned to an exact
   file:line, plus negative (clean) fixtures, the JSON round-trip the CI
   artifact and baseline depend on, and the built-in path specs.

   The fixtures use paths outside every allowlist (lib/demo/...) so all
   rules apply; the dogfood test lints the real lib/core/lifecycle unit
   (made visible via dune deps) and expects it clean. *)

module Finding = Fbufs_lint.Finding
module Rules = Fbufs_lint.Rules
module Pathspec = Fbufs_lint.Pathspec

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let finding_t =
  Alcotest.testable Finding.pp (fun a b -> Finding.compare a b = 0)

let lint ?intf impl = Rules.lint_unit ~file:"lib/demo/fixture.ml" ~impl ?intf ()

(* Exactly one finding with the expected rule and span; the message is
   asserted by keyword so wording can evolve without breaking the test. *)
let expect_one ~rule ~line ~keyword findings =
  check Alcotest.int "exactly one finding" 1 (List.length findings);
  let f = List.hd findings in
  check Alcotest.string "rule" rule f.Finding.rule;
  check Alcotest.int "line" line f.Finding.line;
  Alcotest.(check bool)
    (Printf.sprintf "message mentions %S (got %S)" keyword f.Finding.msg)
    true
    (contains f.Finding.msg keyword)

(* ------------------------------------------------------------------ *)
(* Layer A: bad fixtures                                               *)

let test_l1_direct_payload_write () =
  lint "let scribble pm id =\n  Bytes.set (Phys_mem.data pm id) 0 'x'\n"
  |> expect_one ~rule:"L1" ~line:2 ~keyword:"Bytes.set"

let test_l2_nondeterminism () =
  lint "let roll () =\n  Random.int 6\n"
  |> expect_one ~rule:"L2" ~line:2 ~keyword:"Random"

let test_l3_undocumented_raise () =
  lint
    "let clamp n =\n  if n < 0 then invalid_arg \"clamp\" else n\n"
    ~intf:"val clamp : int -> int\n(** Clamp to non-negative. *)\n"
  |> expect_one ~rule:"L3" ~line:2 ~keyword:"Invalid_argument"

let test_l4_asymmetric_release () =
  lint
    "let leaky alloc dom keep =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  if keep then () else Transfer.free fb ~dom\n"
  |> expect_one ~rule:"L4" ~line:2 ~keyword:"some syntactic exit paths"

let test_l5_obj_magic () =
  lint "let launder x =\n  Obj.magic x\n"
  |> expect_one ~rule:"L5" ~line:2 ~keyword:"Obj.magic"

let test_l5_ignored_handle () =
  lint "let drop alloc =\n  ignore (Allocator.alloc alloc ~npages:1)\n"
  |> expect_one ~rule:"L5" ~line:2 ~keyword:"fbuf handle"

let test_parse_error_is_a_finding () =
  lint "let let let\n"
  |> expect_one ~rule:"E0" ~line:1 ~keyword:"does not parse"

(* L6: each test resets the cross-unit name table so order is irrelevant. *)
let lint_l6 ?(file = "lib/demo/fixture.ml") impl =
  Rules.reset_registered_metrics ();
  Rules.lint_unit ~file ~impl ()

let test_l6_bad_name () =
  lint_l6 "let c =\n  Mx.counter ~name:\"requests_total\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"fbufs_"

let test_l6_dynamic_name () =
  lint_l6
    "let c =\n  Mx.counter ~name:(prefix ^ \"_total\") ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"string literal"

let test_l6_registration_under_lambda () =
  lint_l6
    "let make () =\n  Mx.gauge ~name:\"fbufs_demo_depth\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"module initialization"

let test_l6_duplicate_within_unit () =
  lint_l6
    "let a = Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\" ()\n\
     let b = Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"twice"

let test_l6_duplicate_across_units () =
  Rules.reset_registered_metrics ();
  let impl = "let a = Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\" ()\n" in
  let first = Rules.lint_unit ~file:"lib/demo/one.ml" ~impl () in
  check Alcotest.int "first unit clean" 0 (List.length first);
  Rules.lint_unit ~file:"lib/demo/two.ml" ~impl ()
  |> expect_one ~rule:"L6" ~line:1 ~keyword:"lib/demo/one.ml"

let test_l6_sketch_is_a_registration () =
  lint_l6 "let s =\n  Mx.sketch ~name:\"walls_us\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"fbufs_"

(* L7 *)

let test_l7_never_closed () =
  lint
    "let fire m =\n\
    \  let sp = Machine.span_enter m \"demo\" in\n\
    \  work sp\n"
  |> expect_one ~rule:"L7" ~line:2 ~keyword:"every"

let test_l7_closed_on_some_paths () =
  lint
    "let fire m ok =\n\
    \  let sp = Machine.span_enter m \"demo\" in\n\
    \  if ok then Machine.span_exit m sp\n"
  |> expect_one ~rule:"L7" ~line:2 ~keyword:"every"

let test_l7_dangling_transfer () =
  lint
    "let go m =\n\
    \  let tid = Machine.transfer_begin m \"msg\" in\n\
    \  push tid\n"
  |> expect_one ~rule:"L7" ~line:2 ~keyword:"every"

(* ------------------------------------------------------------------ *)
(* Layer A: negatives                                                  *)

let test_clean_fixture () =
  let fs =
    lint
      "let shuttle alloc dom =\n\
      \  let fb = Allocator.alloc alloc ~npages:1 in\n\
      \  Transfer.free fb ~dom\n"
      ~intf:"val shuttle : Allocator.t -> Pd.t -> unit\n"
  in
  check (Alcotest.list finding_t) "no findings" [] fs

let test_l3_documented_raise_is_clean () =
  let fs =
    lint
      "let clamp n =\n  if n < 0 then invalid_arg \"clamp\" else n\n"
      ~intf:
        "val clamp : int -> int\n\
         (** Clamp; raises [Invalid_argument] when negative. *)\n"
  in
  check (Alcotest.list finding_t) "no findings" [] fs

let test_l1_allowed_inside_sim () =
  let fs =
    Rules.lint_unit ~file:"lib/sim/fixture.ml"
      ~impl:"let scribble pm id =\n  Bytes.set (Phys_mem.data pm id) 0 'x'\n"
      ()
  in
  check (Alcotest.list finding_t) "lib/sim owns the frames" [] fs

let test_l4_full_release_is_clean () =
  let fs =
    lint
      "let balanced alloc dom keep =\n\
      \  let fb = Allocator.alloc alloc ~npages:1 in\n\
      \  if keep then Transfer.free fb ~dom else Transfer.free fb ~dom\n"
  in
  check (Alcotest.list finding_t) "release on every path" [] fs

let test_l6_top_level_literal_is_clean () =
  let fs =
    lint_l6
      "let c =\n\
      \  Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\"\n\
      \    ~labels:[ \"machine\" ] ()\n"
  in
  check (Alcotest.list finding_t) "well-formed registration" [] fs

let test_l6_exempt_under_test () =
  let fs =
    lint_l6 ~file:"test/fixture.ml"
      "let c () = Mx.counter ~name:(dyn ()) ~help:\"h\" ()\n"
  in
  check (Alcotest.list finding_t) "test/ is exempt" [] fs

let test_l7_balanced_is_clean () =
  let fs =
    lint
      "let fire m ok =\n\
      \  let sp = Machine.span_enter m \"demo\" in\n\
      \  (if ok then fast () else slow ());\n\
      \  Machine.span_exit m sp\n"
  in
  check (Alcotest.list finding_t) "closed on every path" [] fs

let test_l7_with_transfer_is_clean () =
  (* The bracketed form owns the close internally; it is not an open. *)
  let fs =
    lint "let go m =\n  Machine.with_transfer m \"msg\" (fun () -> push ())\n"
  in
  check (Alcotest.list finding_t) "with_transfer needs no pairing" [] fs

let test_l7_exempt_under_span () =
  let fs =
    Rules.lint_unit ~file:"lib/span/fixture.ml"
      ~impl:"let go m =\n  let sp = Machine.span_enter m \"demo\" in\n  keep sp\n"
      ()
  in
  check (Alcotest.list finding_t) "lib/span is exempt" [] fs

(* Dogfood: the unit whose Invalid_argument contract this PR pins down
   must itself pass L3 — the .mli names the exception. *)
let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let in_tree rel =
  (* cwd is test/ under dune runtest, the repo root under dune exec. *)
  if Sys.file_exists ("../" ^ rel) then "../" ^ rel else rel

let test_l3_dogfood_lifecycle () =
  let impl = read_file (in_tree "lib/core/lifecycle.ml") in
  let intf = read_file (in_tree "lib/core/lifecycle.mli") in
  Alcotest.(check bool)
    "the contract is stated in the interface" true
    (contains intf "Invalid_argument");
  let fs = Rules.lint_unit ~file:"lib/core/lifecycle.ml" ~impl ~intf () in
  check (Alcotest.list finding_t) "lifecycle is lint-clean" [] fs

(* ------------------------------------------------------------------ *)
(* Layer B: bad specs                                                  *)

let spec ?(receivers = [ ("consumer", Pathspec.Ro) ]) ops =
  {
    Pathspec.name = "fixture";
    originator = "producer";
    trusted_originator = false;
    receivers;
    cached = true;
    volatile = true;
    ops;
  }

let test_b1_read_before_secure () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Send ("producer", "consumer");
         Read "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B1" ~line:3 ~keyword:"before any secure"

let test_b2_dual_write_permission () =
  Pathspec.verify
    (spec
       ~receivers:[ ("consumer", Pathspec.Rw) ]
       [
         Write "producer";
         Send ("producer", "consumer");
         Touch "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B2" ~line:0 ~keyword:"read-write"

let test_b2_write_after_secure () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Send ("producer", "consumer");
         Secure "consumer";
         Write "producer";
         Read "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B2" ~line:4 ~keyword:"revoked"

let test_b3_escaping_reference () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Append_ref ("producer", `Out_of_region);
         Send ("producer", "consumer");
         Touch "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B3" ~line:2 ~keyword:"outside the fbuf region"

let test_b0_leaked_reference () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Send ("producer", "consumer");
         Touch "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B0" ~line:4 ~keyword:"still holds"

let test_secure_then_read_is_clean () =
  let fs =
    Pathspec.verify
      (spec
         [
           Write "producer";
           Send ("producer", "consumer");
           Secure "consumer";
           Read "consumer";
           Free "consumer";
           Free "producer";
         ])
  in
  check (Alcotest.list finding_t) "no findings" [] fs

let test_builtin_specs_verify_clean () =
  List.iter
    (fun (s : Pathspec.spec) ->
      check (Alcotest.list finding_t)
        (Printf.sprintf "spec %s" s.Pathspec.name)
        [] (Pathspec.verify s))
    Pathspec.builtins

(* ------------------------------------------------------------------ *)
(* JSON round-trip (artifact and baseline grammar)                     *)

let test_json_round_trip () =
  let fs =
    [
      Finding.v ~rule:"L1" ~file:"lib/demo/a.ml" ~line:7 ~col:2
        "message with \"quotes\" and a\nnewline";
      Finding.v ~rule:"B2" ~file:"spec/fixture" ~line:0 "config-level";
    ]
  in
  let s = Fbufs_trace.Json.to_string (Finding.list_to_json fs) in
  check (Alcotest.list finding_t) "decode (encode fs) = fs" fs
    (Finding.list_of_string s)

let test_baseline_matches_ignoring_line () =
  let f = Finding.v ~rule:"L3" ~file:"lib/demo/a.ml" ~line:10 "msg" in
  let moved = { f with Finding.line = 99; col = 4 } in
  let other = { f with Finding.rule = "L4" } in
  Alcotest.(check bool) "same rule+file+msg, moved line" true
    (Finding.baseline_mem ~baseline:[ f ] moved);
  Alcotest.(check bool) "different rule" false
    (Finding.baseline_mem ~baseline:[ f ] other)

let test_malformed_baseline_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       let (_ : Finding.t list) = Finding.list_of_string "{\"not\": 1}" in
       false
     with Invalid_argument _ -> true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "lint"
    [
      ( "layer-a-bad",
        [
          tc "L1 direct payload write" `Quick test_l1_direct_payload_write;
          tc "L2 nondeterminism" `Quick test_l2_nondeterminism;
          tc "L3 undocumented raise" `Quick test_l3_undocumented_raise;
          tc "L4 asymmetric release" `Quick test_l4_asymmetric_release;
          tc "L5 Obj.magic" `Quick test_l5_obj_magic;
          tc "L5 ignored handle" `Quick test_l5_ignored_handle;
          tc "parse error is a finding" `Quick test_parse_error_is_a_finding;
          tc "L6 bad name" `Quick test_l6_bad_name;
          tc "L6 dynamic name" `Quick test_l6_dynamic_name;
          tc "L6 under lambda" `Quick test_l6_registration_under_lambda;
          tc "L6 duplicate in unit" `Quick test_l6_duplicate_within_unit;
          tc "L6 duplicate across units" `Quick test_l6_duplicate_across_units;
          tc "L6 sketch registration" `Quick test_l6_sketch_is_a_registration;
          tc "L7 never closed" `Quick test_l7_never_closed;
          tc "L7 partial close" `Quick test_l7_closed_on_some_paths;
          tc "L7 dangling transfer" `Quick test_l7_dangling_transfer;
        ] );
      ( "layer-a-clean",
        [
          tc "clean fixture" `Quick test_clean_fixture;
          tc "documented raise" `Quick test_l3_documented_raise_is_clean;
          tc "L1 allowlist" `Quick test_l1_allowed_inside_sim;
          tc "L4 balanced" `Quick test_l4_full_release_is_clean;
          tc "L6 well-formed" `Quick test_l6_top_level_literal_is_clean;
          tc "L6 test exemption" `Quick test_l6_exempt_under_test;
          tc "L7 balanced" `Quick test_l7_balanced_is_clean;
          tc "L7 with_transfer" `Quick test_l7_with_transfer_is_clean;
          tc "L7 span exemption" `Quick test_l7_exempt_under_span;
          tc "dogfood: lifecycle" `Quick test_l3_dogfood_lifecycle;
        ] );
      ( "layer-b",
        [
          tc "B1 read before secure" `Quick test_b1_read_before_secure;
          tc "B2 rw receiver" `Quick test_b2_dual_write_permission;
          tc "B2 write after secure" `Quick test_b2_write_after_secure;
          tc "B3 escaping reference" `Quick test_b3_escaping_reference;
          tc "B0 leaked reference" `Quick test_b0_leaked_reference;
          tc "secure-then-read clean" `Quick test_secure_then_read_is_clean;
          tc "builtins verify clean" `Quick test_builtin_specs_verify_clean;
        ] );
      ( "json",
        [
          tc "round trip" `Quick test_json_round_trip;
          tc "baseline ignores line" `Quick test_baseline_matches_ignoring_line;
          tc "malformed baseline" `Quick test_malformed_baseline_rejected;
        ] );
    ]
