(* Fbufs_lint: one known-bad fixture per rule, each pinned to an exact
   file:line, plus negative (clean) fixtures, the JSON round-trip the CI
   artifact and baseline depend on, and the built-in path specs.

   The fixtures use paths outside every allowlist (lib/demo/...) so all
   rules apply; the dogfood test lints the real lib/core/lifecycle unit
   (made visible via dune deps) and expects it clean. *)

module Finding = Fbufs_lint.Finding
module Rules = Fbufs_lint.Rules
module Pathspec = Fbufs_lint.Pathspec

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let finding_t =
  Alcotest.testable Finding.pp (fun a b -> Finding.compare a b = 0)

let lint ?intf impl = Rules.lint_unit ~file:"lib/demo/fixture.ml" ~impl ?intf ()

(* Exactly one finding with the expected rule and span; the message is
   asserted by keyword so wording can evolve without breaking the test. *)
let expect_one ~rule ~line ~keyword findings =
  check Alcotest.int "exactly one finding" 1 (List.length findings);
  let f = List.hd findings in
  check Alcotest.string "rule" rule f.Finding.rule;
  check Alcotest.int "line" line f.Finding.line;
  Alcotest.(check bool)
    (Printf.sprintf "message mentions %S (got %S)" keyword f.Finding.msg)
    true
    (contains f.Finding.msg keyword)

(* ------------------------------------------------------------------ *)
(* Layer A: bad fixtures                                               *)

let test_l1_direct_payload_write () =
  lint "let scribble pm id =\n  Bytes.set (Phys_mem.data pm id) 0 'x'\n"
  |> expect_one ~rule:"L1" ~line:2 ~keyword:"Bytes.set"

let test_l2_nondeterminism () =
  lint "let roll () =\n  Random.int 6\n"
  |> expect_one ~rule:"L2" ~line:2 ~keyword:"Random"

let test_l3_undocumented_raise () =
  lint
    "let clamp n =\n  if n < 0 then invalid_arg \"clamp\" else n\n"
    ~intf:"val clamp : int -> int\n(** Clamp to non-negative. *)\n"
  |> expect_one ~rule:"L3" ~line:2 ~keyword:"Invalid_argument"

let test_l4_asymmetric_release () =
  lint
    "let leaky alloc dom keep =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  if keep then () else Transfer.free fb ~dom\n"
  |> expect_one ~rule:"L4" ~line:2 ~keyword:"some syntactic exit paths"

let test_l5_obj_magic () =
  lint "let launder x =\n  Obj.magic x\n"
  |> expect_one ~rule:"L5" ~line:2 ~keyword:"Obj.magic"

let test_l5_ignored_handle () =
  lint "let drop alloc =\n  ignore (Allocator.alloc alloc ~npages:1)\n"
  |> expect_one ~rule:"L5" ~line:2 ~keyword:"fbuf handle"

let test_parse_error_is_a_finding () =
  lint "let let let\n"
  |> expect_one ~rule:"E0" ~line:1 ~keyword:"does not parse"

(* L6: each test resets the cross-unit name table so order is irrelevant. *)
let lint_l6 ?(file = "lib/demo/fixture.ml") impl =
  Rules.reset_registered_metrics ();
  Rules.lint_unit ~file ~impl ()

let test_l6_bad_name () =
  lint_l6 "let c =\n  Mx.counter ~name:\"requests_total\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"fbufs_"

let test_l6_dynamic_name () =
  lint_l6
    "let c =\n  Mx.counter ~name:(prefix ^ \"_total\") ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"string literal"

let test_l6_registration_under_lambda () =
  lint_l6
    "let make () =\n  Mx.gauge ~name:\"fbufs_demo_depth\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"module initialization"

let test_l6_duplicate_within_unit () =
  lint_l6
    "let a = Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\" ()\n\
     let b = Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"twice"

let test_l6_duplicate_across_units () =
  Rules.reset_registered_metrics ();
  let impl = "let a = Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\" ()\n" in
  let first = Rules.lint_unit ~file:"lib/demo/one.ml" ~impl () in
  check Alcotest.int "first unit clean" 0 (List.length first);
  Rules.lint_unit ~file:"lib/demo/two.ml" ~impl ()
  |> expect_one ~rule:"L6" ~line:1 ~keyword:"lib/demo/one.ml"

let test_l6_sketch_is_a_registration () =
  lint_l6 "let s =\n  Mx.sketch ~name:\"walls_us\" ~help:\"h\" ()\n"
  |> expect_one ~rule:"L6" ~line:2 ~keyword:"fbufs_"

(* The observability metric families are ordinary L6 citizens: the real
   names register cleanly at module init, and a second unit claiming
   either one is a cross-unit duplicate. *)
let test_l6_covers_obs_names () =
  Rules.reset_registered_metrics ();
  let impl =
    "let a = Mx.counter ~name:\"fbufs_obs_dumps_total\" ~help:\"h\" ()\n\
     let b = Mx.counter ~name:\"fbufs_monitor_violations_total\" ~help:\"h\" ()\n"
  in
  let first = Rules.lint_unit ~file:"lib/demo/obs_one.ml" ~impl () in
  check Alcotest.int "obs names register cleanly" 0 (List.length first);
  Rules.lint_unit ~file:"lib/demo/obs_two.ml"
    ~impl:"let c = Mx.counter ~name:\"fbufs_obs_dumps_total\" ~help:\"h\" ()\n"
    ()
  |> expect_one ~rule:"L6" ~line:1 ~keyword:"lib/demo/obs_one.ml"

(* L7 *)

let test_l7_never_closed () =
  lint
    "let fire m =\n\
    \  let sp = Machine.span_enter m \"demo\" in\n\
    \  work sp\n"
  |> expect_one ~rule:"L7" ~line:2 ~keyword:"every"

let test_l7_closed_on_some_paths () =
  lint
    "let fire m ok =\n\
    \  let sp = Machine.span_enter m \"demo\" in\n\
    \  if ok then Machine.span_exit m sp\n"
  |> expect_one ~rule:"L7" ~line:2 ~keyword:"every"

let test_l7_dangling_transfer () =
  lint
    "let go m =\n\
    \  let tid = Machine.transfer_begin m \"msg\" in\n\
    \  push tid\n"
  |> expect_one ~rule:"L7" ~line:2 ~keyword:"every"

(* ------------------------------------------------------------------ *)
(* Layer A: negatives                                                  *)

let test_clean_fixture () =
  let fs =
    lint
      "let shuttle alloc dom =\n\
      \  let fb = Allocator.alloc alloc ~npages:1 in\n\
      \  Transfer.free fb ~dom\n"
      ~intf:"val shuttle : Allocator.t -> Pd.t -> unit\n"
  in
  check (Alcotest.list finding_t) "no findings" [] fs

let test_l3_documented_raise_is_clean () =
  let fs =
    lint
      "let clamp n =\n  if n < 0 then invalid_arg \"clamp\" else n\n"
      ~intf:
        "val clamp : int -> int\n\
         (** Clamp; raises [Invalid_argument] when negative. *)\n"
  in
  check (Alcotest.list finding_t) "no findings" [] fs

let test_l1_allowed_inside_sim () =
  let fs =
    Rules.lint_unit ~file:"lib/sim/fixture.ml"
      ~impl:"let scribble pm id =\n  Bytes.set (Phys_mem.data pm id) 0 'x'\n"
      ()
  in
  check (Alcotest.list finding_t) "lib/sim owns the frames" [] fs

let test_l4_full_release_is_clean () =
  let fs =
    lint
      "let balanced alloc dom keep =\n\
      \  let fb = Allocator.alloc alloc ~npages:1 in\n\
      \  if keep then Transfer.free fb ~dom else Transfer.free fb ~dom\n"
  in
  check (Alcotest.list finding_t) "release on every path" [] fs

let test_l6_top_level_literal_is_clean () =
  let fs =
    lint_l6
      "let c =\n\
      \  Mx.counter ~name:\"fbufs_demo_total\" ~help:\"h\"\n\
      \    ~labels:[ \"machine\" ] ()\n"
  in
  check (Alcotest.list finding_t) "well-formed registration" [] fs

let test_l6_exempt_under_test () =
  let fs =
    lint_l6 ~file:"test/fixture.ml"
      "let c () = Mx.counter ~name:(dyn ()) ~help:\"h\" ()\n"
  in
  check (Alcotest.list finding_t) "test/ is exempt" [] fs

let test_l7_balanced_is_clean () =
  let fs =
    lint
      "let fire m ok =\n\
      \  let sp = Machine.span_enter m \"demo\" in\n\
      \  (if ok then fast () else slow ());\n\
      \  Machine.span_exit m sp\n"
  in
  check (Alcotest.list finding_t) "closed on every path" [] fs

let test_l7_with_transfer_is_clean () =
  (* The bracketed form owns the close internally; it is not an open. *)
  let fs =
    lint "let go m =\n  Machine.with_transfer m \"msg\" (fun () -> push ())\n"
  in
  check (Alcotest.list finding_t) "with_transfer needs no pairing" [] fs

let test_l7_exempt_under_span () =
  let fs =
    Rules.lint_unit ~file:"lib/span/fixture.ml"
      ~impl:"let go m =\n  let sp = Machine.span_enter m \"demo\" in\n  keep sp\n"
      ()
  in
  check (Alcotest.list finding_t) "lib/span is exempt" [] fs

(* Dogfood: the unit whose Invalid_argument contract this PR pins down
   must itself pass L3 — the .mli names the exception. *)
let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let in_tree rel =
  (* cwd is test/ under dune runtest, the repo root under dune exec. *)
  if Sys.file_exists ("../" ^ rel) then "../" ^ rel else rel

let test_l3_dogfood_lifecycle () =
  let impl = read_file (in_tree "lib/core/lifecycle.ml") in
  let intf = read_file (in_tree "lib/core/lifecycle.mli") in
  Alcotest.(check bool)
    "the contract is stated in the interface" true
    (contains intf "Invalid_argument");
  let fs = Rules.lint_unit ~file:"lib/core/lifecycle.ml" ~impl ~intf () in
  check (Alcotest.list finding_t) "lifecycle is lint-clean" [] fs

(* ------------------------------------------------------------------ *)
(* Layer B: bad specs                                                  *)

let spec ?(receivers = [ ("consumer", Pathspec.Ro) ]) ops =
  {
    Pathspec.name = "fixture";
    originator = "producer";
    trusted_originator = false;
    receivers;
    cached = true;
    volatile = true;
    ops;
  }

let test_b1_read_before_secure () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Send ("producer", "consumer");
         Read "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B1" ~line:3 ~keyword:"before any secure"

let test_b2_dual_write_permission () =
  Pathspec.verify
    (spec
       ~receivers:[ ("consumer", Pathspec.Rw) ]
       [
         Write "producer";
         Send ("producer", "consumer");
         Touch "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B2" ~line:0 ~keyword:"read-write"

let test_b2_write_after_secure () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Send ("producer", "consumer");
         Secure "consumer";
         Write "producer";
         Read "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B2" ~line:4 ~keyword:"revoked"

let test_b3_escaping_reference () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Append_ref ("producer", `Out_of_region);
         Send ("producer", "consumer");
         Touch "consumer";
         Free "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B3" ~line:2 ~keyword:"outside the fbuf region"

let test_b0_leaked_reference () =
  Pathspec.verify
    (spec
       [
         Write "producer";
         Send ("producer", "consumer");
         Touch "consumer";
         Free "producer";
       ])
  |> expect_one ~rule:"B0" ~line:4 ~keyword:"still holds"

let test_secure_then_read_is_clean () =
  let fs =
    Pathspec.verify
      (spec
         [
           Write "producer";
           Send ("producer", "consumer");
           Secure "consumer";
           Read "consumer";
           Free "consumer";
           Free "producer";
         ])
  in
  check (Alcotest.list finding_t) "no findings" [] fs

let test_builtin_specs_verify_clean () =
  List.iter
    (fun (s : Pathspec.spec) ->
      check (Alcotest.list finding_t)
        (Printf.sprintf "spec %s" s.Pathspec.name)
        [] (Pathspec.verify s))
    Pathspec.builtins

(* ------------------------------------------------------------------ *)
(* JSON round-trip (artifact and baseline grammar)                     *)

let test_json_round_trip () =
  let fs =
    [
      Finding.v ~rule:"L1" ~file:"lib/demo/a.ml" ~line:7 ~col:2
        "message with \"quotes\" and a\nnewline";
      Finding.v ~rule:"B2" ~file:"spec/fixture" ~line:0 "config-level";
    ]
  in
  let s = Fbufs_trace.Json.to_string (Finding.list_to_json fs) in
  check (Alcotest.list finding_t) "decode (encode fs) = fs" fs
    (Finding.list_of_string s)

let test_baseline_matches_ignoring_line () =
  let f = Finding.v ~rule:"L3" ~file:"lib/demo/a.ml" ~line:10 "msg" in
  let moved = { f with Finding.line = 99; col = 4 } in
  let other = { f with Finding.rule = "L4" } in
  Alcotest.(check bool) "same rule+file+msg, moved line" true
    (Finding.baseline_mem ~baseline:[ f ] moved);
  Alcotest.(check bool) "different rule" false
    (Finding.baseline_mem ~baseline:[ f ] other)

let test_malformed_baseline_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       let (_ : Finding.t list) = Finding.list_of_string "{\"not\": 1}" in
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Layer C: interprocedural typestate — bad fixtures                   *)

module Typestate = Fbufs_lint.Typestate
module Summary = Fbufs_lint.Summary
module Driver = Fbufs_lint.Driver
module Sarif = Fbufs_lint.Sarif

let lint_c impl = Typestate.lint_unit ~file:"lib/demo/fixture.ml" ~impl

let test_c1_cross_function_use_after_free () =
  lint_c
    "let discard fb dom =\n\
    \  Transfer.free fb ~dom\n\
     \n\
     let go alloc dom =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  discard fb dom;\n\
    \  Fbuf_api.read fb ~as_:dom ~off:0 ~len:4\n"
  |> expect_one ~rule:"C1" ~line:7 ~keyword:"use after free"

let test_c1_double_free () =
  lint_c
    "let twice alloc dom =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Transfer.free fb ~dom;\n\
    \  Transfer.free fb ~dom\n"
  |> expect_one ~rule:"C1" ~line:4 ~keyword:"double free"

let test_c2_leak_through_helper () =
  lint_c
    "let make alloc =\n\
    \  Allocator.alloc alloc ~npages:1\n\
     \n\
     let forget alloc =\n\
    \  let fb = make alloc in\n\
    \  ignore (Fbuf.size fb)\n"
  |> expect_one ~rule:"C2" ~line:5 ~keyword:"leaked"

let test_c3_write_after_send_via_alias () =
  lint_c
    "let oops alloc src dst =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  let same = fb in\n\
    \  Transfer.send fb ~src ~dst;\n\
    \  Fbuf_api.set_word same ~as_:src ~off:0 7;\n\
    \  Transfer.free fb ~dom:dst;\n\
    \  Transfer.free same ~dom:src\n"
  |> expect_one ~rule:"C3" ~line:5 ~keyword:"immutable"

let test_c3_write_after_send_via_helper () =
  lint_c
    "let poke fb dom =\n\
    \  Fbuf_api.touch_write fb ~as_:dom\n\
     \n\
     let relay alloc src dst =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Transfer.send fb ~src ~dst;\n\
    \  poke fb src;\n\
    \  Transfer.free fb ~dom:src\n"
  |> expect_one ~rule:"C3" ~line:7 ~keyword:"poke"

let test_c4_read_before_secure_via_helper () =
  lint_c
    "let peek fb dom =\n\
    \  Fbuf_api.word_at fb ~as_:dom ~off:0\n\
     \n\
     let spy tb producer consumer =\n\
    \  let alloc =\n\
    \    Testbed.allocator tb ~domains:[ producer; consumer ]\n\
    \      Fbuf.cached_volatile\n\
    \  in\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Transfer.send fb ~src:producer ~dst:consumer;\n\
    \  ignore (peek fb consumer);\n\
    \  Transfer.secure fb;\n\
    \  Transfer.free fb ~dom:consumer;\n\
    \  Transfer.free fb ~dom:producer\n"
  |> expect_one ~rule:"C4" ~line:11 ~keyword:"before secure"

let test_c3_direct_write_after_send () =
  lint_c
    "let demo alloc src dst =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Transfer.send fb ~src ~dst;\n\
    \  Fbuf_api.touch_write fb ~as_:src;\n\
    \  Transfer.free fb ~dom:src;\n\
    \  Transfer.free fb ~dom:dst\n"
  |> expect_one ~rule:"C3" ~line:4 ~keyword:"immutable"

(* ------------------------------------------------------------------ *)
(* Layer C: negatives (the hand-off idioms must stay clean)            *)

let expect_clean name impl =
  check (Alcotest.list finding_t) name [] (lint_c impl)

let test_c_clean_handoff_to_helper () =
  expect_clean "deliver owns the frees"
    "let deliver fb ~src ~dst =\n\
    \  Transfer.send fb ~src ~dst;\n\
    \  Transfer.free fb ~dom:dst;\n\
    \  Transfer.free fb ~dom:src\n\
     \n\
     let pipeline alloc src dst =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Fbuf_api.write fb ~as_:src ~off:0 \"payload\";\n\
    \  deliver fb ~src ~dst\n"

let test_c_clean_rx_handler_lambda () =
  expect_clean "rx handler borrows and frees"
    "let install rx dom =\n\
    \  Ipc.set_rx_handler rx (fun fb ->\n\
    \      ignore (Fbuf_api.word_at fb ~as_:dom ~off:0);\n\
    \      Transfer.free fb ~dom)\n"

let test_c_clean_returned_handle () =
  expect_clean "returning hands ownership off"
    "let produce alloc dom =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Fbuf_api.write fb ~as_:dom ~off:0 \"x\";\n\
    \  fb\n"

let test_c_clean_two_domain_free () =
  expect_clean "one free per holding domain is not a double free"
    "let full alloc src dst =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Transfer.send fb ~src ~dst;\n\
    \  Transfer.secure fb;\n\
    \  Transfer.free fb ~dom:dst;\n\
    \  Transfer.free fb ~dom:src\n"

let test_c_clean_branchy_free_is_l4_territory () =
  (* Relinquished on one path only: L4's finding, not C2's (C2 is the
     no-path completion). *)
  expect_clean "some-path free raises no C finding"
    "let branchy alloc dom keep =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  if keep then Transfer.free fb ~dom\n"

let test_c_allow_annotation_suppresses () =
  expect_clean "[@lint.allow] silences the named rule"
    "let demo alloc src dst =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  Transfer.send fb ~src ~dst;\n\
    \  (Fbuf_api.touch_write fb ~as_:src [@lint.allow \"C3\"]);\n\
    \  Transfer.free fb ~dom:src;\n\
    \  Transfer.free fb ~dom:dst\n"

(* ------------------------------------------------------------------ *)
(* Dedup: L4 and C2 at the same span keep only the Layer C finding     *)

let test_dedup_l4_shadowed_by_c2 () =
  let impl =
    "let free _fb = ()\n\
     \n\
     let stubbed alloc keep =\n\
    \  let fb = Allocator.alloc alloc ~npages:1 in\n\
    \  if keep then () else free fb\n"
  in
  let a = Rules.lint_unit ~file:"lib/demo/fixture.ml" ~impl () in
  let c = Typestate.lint_unit ~file:"lib/demo/fixture.ml" ~impl in
  let combined = List.sort_uniq Finding.compare (a @ c) in
  check Alcotest.int "both layers fire" 2 (List.length combined);
  Alcotest.(check (list string))
    "L4 and C2 share the span"
    [ "C2"; "L4" ]
    (List.map (fun f -> f.Finding.rule) combined);
  Driver.dedup combined |> expect_one ~rule:"C2" ~line:4 ~keyword:"leaked"

let test_dedup_keeps_distinct_spans () =
  let l4 = Finding.v ~rule:"L4" ~file:"a.ml" ~line:2 ~col:11 "acquired" in
  let c2 = Finding.v ~rule:"C2" ~file:"a.ml" ~line:9 ~col:11 "leaked" in
  check Alcotest.int "different lines: both survive" 2
    (List.length (Driver.dedup [ l4; c2 ]))

(* ------------------------------------------------------------------ *)
(* qcheck: summary fixpoint terminates, is deterministic and monotone  *)

let graph_src shape =
  let n = List.length shape in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i (frees, outs) ->
      Buffer.add_string buf (Printf.sprintf "let f%d fb dom =\n" i);
      if frees then Buffer.add_string buf "  Transfer.free fb ~dom;\n";
      List.iter
        (fun j -> Buffer.add_string buf (Printf.sprintf "  f%d fb dom;\n" (j mod n)))
        outs;
      Buffer.add_string buf "  ()\n\n")
    shape;
  Buffer.contents buf

let parse_fixture src =
  match Rules.parse ~file:"lib/demo/gen.ml" ~kind:`Impl src with
  | Rules.Ok_impl str -> [ ("lib/demo/gen.ml", str) ]
  | _ -> Alcotest.fail ("generated fixture does not parse:\n" ^ src)

let prop_summary_fixpoint =
  QCheck.Test.make
    ~name:"summary fixpoint terminates, deterministic, monotone" ~count:60
    QCheck.(
      list_of_size
        Gen.(2 -- 8)
        (pair bool (list_of_size Gen.(0 -- 3) (int_bound 7))))
    (fun shape ->
      QCheck.assume (List.length shape >= 2);
      let units = parse_fixture (graph_src shape) in
      let s1, rounds = Typestate.summaries units in
      let s2, _ = Typestate.summaries units in
      let n = List.length shape in
      (* Terminates well under the bound even with cycles. *)
      if rounds > (16 * n) + 8 then
        QCheck.Test.fail_reportf "too many sweeps: %d for %d defs" rounds n;
      (* Deterministic. *)
      if
        not
          (List.for_all2
             (fun (q1, a) (q2, b) -> q1 = q2 && Summary.equal a b)
             s1 s2)
      then QCheck.Test.fail_report "two runs disagree";
      (* Monotone: making one body also free its handle can only grow
         summaries. *)
      let grown =
        match shape with
        | (_, outs) :: rest -> (true, outs) :: rest
        | [] -> []
      in
      let s3, _ = Typestate.summaries (parse_fixture (graph_src grown)) in
      List.for_all2 (fun (_, a) (_, b) -> Summary.le a b) s1 s3)

(* ------------------------------------------------------------------ *)
(* SARIF                                                               *)

let test_sarif_shape () =
  let fs =
    [
      Finding.v ~rule:"C1" ~file:"examples/quickstart.ml" ~line:43 ~col:65
        "use after free";
      Finding.v ~rule:"B2" ~file:"spec/fixture" ~line:0 "config-level";
    ]
  in
  let module J = Fbufs_trace.Json in
  let doc = J.parse (J.to_string (Sarif.to_json fs)) in
  let get path v =
    List.fold_left
      (fun v k ->
        match v with
        | Some (J.Obj _ as o) -> J.member k o
        | Some (J.List l) -> ( try Some (List.nth l (int_of_string k)) with _ -> None)
        | _ -> None)
      (Some v) path
  in
  (match get [ "version" ] doc with
  | Some (J.String "2.1.0") -> ()
  | _ -> Alcotest.fail "version");
  (match get [ "runs"; "0"; "tool"; "driver"; "name" ] doc with
  | Some (J.String "fbufs_lint") -> ()
  | _ -> Alcotest.fail "driver name");
  (match get [ "runs"; "0"; "results"; "0"; "ruleId" ] doc with
  | Some (J.String "C1") -> ()
  | _ -> Alcotest.fail "ruleId");
  (match
     get
       [
         "runs"; "0"; "results"; "0"; "locations"; "0"; "physicalLocation";
         "region"; "startLine";
       ]
       doc
   with
  | Some (J.Int 43) -> ()
  | _ -> Alcotest.fail "startLine");
  (* 0-based finding column becomes 1-based SARIF column; line 0
     (config-level findings) clamps to 1. *)
  (match
     get
       [
         "runs"; "0"; "results"; "0"; "locations"; "0"; "physicalLocation";
         "region"; "startColumn";
       ]
       doc
   with
  | Some (J.Int 66) -> ()
  | _ -> Alcotest.fail "startColumn");
  (match
     get
       [
         "runs"; "0"; "results"; "1"; "locations"; "0"; "physicalLocation";
         "region"; "startLine";
       ]
       doc
   with
  | Some (J.Int 1) -> ()
  | _ -> Alcotest.fail "clamped startLine");
  match get [ "runs"; "0"; "tool"; "driver"; "rules" ] doc with
  | Some (J.List rules) ->
      check Alcotest.int "all rules documented"
        (List.length Sarif.rule_meta)
        (List.length rules)
  | _ -> Alcotest.fail "rules array"

(* ------------------------------------------------------------------ *)
(* Baseline staleness                                                  *)

let test_stale_entries () =
  let live = Finding.v ~rule:"C1" ~file:"examples/q.ml" ~line:3 "boom" in
  let dead = Finding.v ~rule:"L4" ~file:"lib/gone.ml" ~line:9 "old debt" in
  let findings = [ { live with Finding.line = 30 } ] in
  let stale = Driver.stale_entries ~baseline:[ live; dead ] findings in
  check (Alcotest.list finding_t) "only the unmatched entry is stale"
    [ dead ] stale;
  check (Alcotest.list finding_t) "empty baseline is never stale" []
    (Driver.stale_entries ~baseline:[] findings)

(* The CLI gate end to end: a baseline entry nothing matches makes lint
   exit 3 even though there are no fresh findings. Exercised against the
   real tree (which doubles as the in-tree zero-findings dogfood). *)
let cli_setup () =
  if Sys.file_exists "../bin/fbufs_cli.exe" then
    Some ("../bin/fbufs_cli.exe", "..")
  else if Sys.file_exists "_build/default/bin/fbufs_cli.exe" then
    Some ("_build/default/bin/fbufs_cli.exe", "_build/default")
  else None

let test_cli_tree_clean_and_staleness_gate () =
  match cli_setup () with
  | None -> Alcotest.skip ()
  | Some (exe, root) ->
      let quiet = " > /dev/null 2> /dev/null" in
      check Alcotest.int "clean tree exits 0" 0
        (Sys.command
           (Printf.sprintf "%s lint --format json --root %s%s" exe root quiet));
      let tmp = Filename.temp_file "stale_baseline" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let oc = open_out tmp in
          output_string oc
            (Fbufs_trace.Json.to_string
               (Finding.list_to_json
                  [
                    Finding.v ~rule:"L4" ~file:"lib/gone.ml" ~line:9
                      "grandfathered debt that no longer fires";
                  ]));
          close_out oc;
          check Alcotest.int "stale baseline exits 3" 3
            (Sys.command
               (Printf.sprintf "%s lint --format text --baseline %s --root %s%s"
                  exe tmp root quiet)))

(* ------------------------------------------------------------------ *)
(* Dynamic cross-validation: the hazard shapes Layer C flagged in-tree
   (quickstart's C1/C3/C4, before they were fixed or annotated) are
   replayed through the differential checker. A passing replay means the
   real stack and the reference model agree step by step on the hazard's
   dynamic semantics — the use-after-free is defended, the in-flight
   write is visible pre-secure, the post-secure write faults — i.e. the
   static findings describe real dynamic behavior, not analyzer
   artifacts. *)

let replay_concordant name ops =
  let report = Fbufs_check.Driver.replay ~seed:1 ops in
  Alcotest.(check bool)
    (Printf.sprintf "%s: stack and model agree (%s)" name
       (Format.asprintf "%a" Fbufs_check.Driver.pp_report report))
    false
    (Fbufs_check.Driver.failed report);
  check Alcotest.int
    (Printf.sprintf "%s: every op executed" name)
    report.Fbufs_check.Driver.total report.Fbufs_check.Driver.executed

let test_replay_use_after_free () =
  (* quickstart's C1: both domains free, then the old handle is touched.
     The plain (uncached) allocator on the b->c path is the one whose
     full release actually kills the buffer — a cached free only parks
     it, leaving no dead address range to probe. *)
  replay_concordant "use after free"
    Fbufs_check.Op.
      [
        Alloc { alloc = 3; npages = 1 };
        Write { fbuf = 0 };
        Send { fbuf = 0; src = 1; dst = 2 };
        Secure { fbuf = 0 };
        Read { fbuf = 0; dom = 2 };
        Free { fbuf = 0; dom = 2 };
        Free { fbuf = 0; dom = 1 };
        Use_after_free { fbuf = 0; write = false };
      ]

let test_replay_write_after_send () =
  (* quickstart's C3: the originator rewrites the volatile fbuf while it
     is in flight — allowed by protection pre-secure, which is exactly
     why it is a discipline hazard: the receiver's two reads straddle the
     write. (Post-secure the write faults; the checker's protection
     invariant asserts that after every step, and quickstart demonstrates
     it dynamically.) *)
  replay_concordant "write after send"
    Fbufs_check.Op.
      [
        Alloc { alloc = 0; npages = 1 };
        Write { fbuf = 0 };
        Send { fbuf = 0; src = 0; dst = 1 };
        Read { fbuf = 0; dom = 1 };
        Write { fbuf = 0 };
        Secure { fbuf = 0 };
        Read { fbuf = 0; dom = 1 };
        Free { fbuf = 0; dom = 1 };
        Free { fbuf = 0; dom = 0 };
      ]

let test_replay_read_before_secure () =
  (* quickstart's C4: the receiver reads the volatile fbuf before
     securing, the originator rewrites it, the receiver reads again —
     the torn-read hazard the paper's secure step exists to close. *)
  replay_concordant "read before secure"
    Fbufs_check.Op.
      [
        Alloc { alloc = 0; npages = 1 };
        Write { fbuf = 0 };
        Send { fbuf = 0; src = 0; dst = 1 };
        Read { fbuf = 0; dom = 1 };
        Write { fbuf = 0 };
        Read { fbuf = 0; dom = 1 };
        Secure { fbuf = 0 };
        Read { fbuf = 0; dom = 1 };
        Free { fbuf = 0; dom = 1 };
        Free { fbuf = 0; dom = 0 };
      ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "lint"
    [
      ( "layer-a-bad",
        [
          tc "L1 direct payload write" `Quick test_l1_direct_payload_write;
          tc "L2 nondeterminism" `Quick test_l2_nondeterminism;
          tc "L3 undocumented raise" `Quick test_l3_undocumented_raise;
          tc "L4 asymmetric release" `Quick test_l4_asymmetric_release;
          tc "L5 Obj.magic" `Quick test_l5_obj_magic;
          tc "L5 ignored handle" `Quick test_l5_ignored_handle;
          tc "parse error is a finding" `Quick test_parse_error_is_a_finding;
          tc "L6 bad name" `Quick test_l6_bad_name;
          tc "L6 dynamic name" `Quick test_l6_dynamic_name;
          tc "L6 under lambda" `Quick test_l6_registration_under_lambda;
          tc "L6 duplicate in unit" `Quick test_l6_duplicate_within_unit;
          tc "L6 duplicate across units" `Quick test_l6_duplicate_across_units;
          tc "L6 sketch registration" `Quick test_l6_sketch_is_a_registration;
          tc "L6 covers obs names" `Quick test_l6_covers_obs_names;
          tc "L7 never closed" `Quick test_l7_never_closed;
          tc "L7 partial close" `Quick test_l7_closed_on_some_paths;
          tc "L7 dangling transfer" `Quick test_l7_dangling_transfer;
        ] );
      ( "layer-a-clean",
        [
          tc "clean fixture" `Quick test_clean_fixture;
          tc "documented raise" `Quick test_l3_documented_raise_is_clean;
          tc "L1 allowlist" `Quick test_l1_allowed_inside_sim;
          tc "L4 balanced" `Quick test_l4_full_release_is_clean;
          tc "L6 well-formed" `Quick test_l6_top_level_literal_is_clean;
          tc "L6 test exemption" `Quick test_l6_exempt_under_test;
          tc "L7 balanced" `Quick test_l7_balanced_is_clean;
          tc "L7 with_transfer" `Quick test_l7_with_transfer_is_clean;
          tc "L7 span exemption" `Quick test_l7_exempt_under_span;
          tc "dogfood: lifecycle" `Quick test_l3_dogfood_lifecycle;
        ] );
      ( "layer-b",
        [
          tc "B1 read before secure" `Quick test_b1_read_before_secure;
          tc "B2 rw receiver" `Quick test_b2_dual_write_permission;
          tc "B2 write after secure" `Quick test_b2_write_after_secure;
          tc "B3 escaping reference" `Quick test_b3_escaping_reference;
          tc "B0 leaked reference" `Quick test_b0_leaked_reference;
          tc "secure-then-read clean" `Quick test_secure_then_read_is_clean;
          tc "builtins verify clean" `Quick test_builtin_specs_verify_clean;
        ] );
      ( "json",
        [
          tc "round trip" `Quick test_json_round_trip;
          tc "baseline ignores line" `Quick test_baseline_matches_ignoring_line;
          tc "malformed baseline" `Quick test_malformed_baseline_rejected;
        ] );
      ( "layer-c-bad",
        [
          tc "C1 cross-function use after free" `Quick
            test_c1_cross_function_use_after_free;
          tc "C1 double free" `Quick test_c1_double_free;
          tc "C2 leak through helper" `Quick test_c2_leak_through_helper;
          tc "C3 write after send via alias" `Quick
            test_c3_write_after_send_via_alias;
          tc "C3 write after send via helper" `Quick
            test_c3_write_after_send_via_helper;
          tc "C3 direct write after send" `Quick
            test_c3_direct_write_after_send;
          tc "C4 read before secure via helper" `Quick
            test_c4_read_before_secure_via_helper;
        ] );
      ( "layer-c-clean",
        [
          tc "hand-off to a freeing helper" `Quick
            test_c_clean_handoff_to_helper;
          tc "rx handler lambda" `Quick test_c_clean_rx_handler_lambda;
          tc "returned handle" `Quick test_c_clean_returned_handle;
          tc "two-domain free" `Quick test_c_clean_two_domain_free;
          tc "branchy free stays L4's" `Quick
            test_c_clean_branchy_free_is_l4_territory;
          tc "allow annotation" `Quick test_c_allow_annotation_suppresses;
        ] );
      ( "dedup",
        [
          tc "L4 shadowed by C2" `Quick test_dedup_l4_shadowed_by_c2;
          tc "distinct spans survive" `Quick test_dedup_keeps_distinct_spans;
        ] );
      ( "summaries",
        [ QCheck_alcotest.to_alcotest prop_summary_fixpoint ] );
      ( "sarif",
        [ tc "document shape" `Quick test_sarif_shape ] );
      ( "staleness",
        [
          tc "stale entries detected" `Quick test_stale_entries;
          tc "CLI gate: clean tree, stale baseline" `Slow
            test_cli_tree_clean_and_staleness_gate;
        ] );
      ( "cross-validation",
        [
          tc "use after free replays concordantly" `Slow
            test_replay_use_after_free;
          tc "write after send replays concordantly" `Slow
            test_replay_write_after_send;
          tc "read before secure replays concordantly" `Slow
            test_replay_read_before_secure;
        ] );
    ]
