(* Edge cases and small-API coverage across libraries: argument
   validation, printers, accessors and seldom-hit branches. *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Header = Fbufs_protocols.Header
module Testbed = Fbufs_harness.Testbed

let check = Alcotest.check

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Prot / Pd / Path printers and predicates                            *)
(* ------------------------------------------------------------------ *)

let test_prot_predicates () =
  Alcotest.(check bool) "none read" false (Prot.can_read Prot.No_access);
  Alcotest.(check bool) "ro read" true (Prot.can_read Prot.Read_only);
  Alcotest.(check bool) "ro write" false (Prot.can_write Prot.Read_only);
  Alcotest.(check bool) "rw write" true (Prot.can_write Prot.Read_write);
  check Alcotest.string "to_string" "r--" (Prot.to_string Prot.Read_only)

let test_pd_identity () =
  let m = Machine.create ~nframes:16 () in
  let a = Pd.create m "a" and b = Pd.create m "b" in
  Alcotest.(check bool) "distinct" false (Pd.equal a b);
  Alcotest.(check bool) "reflexive" true (Pd.equal a a);
  Alcotest.(check bool) "distinct asids" true (Pd.asid a <> Pd.asid b);
  check Alcotest.string "kernel marker" "k#1(k)"
    (Format.asprintf "%a" Pd.pp (Pd.create (Machine.create ~nframes:16 ()) ~kernel:true "k"))

let test_path_validation () =
  let m = Machine.create ~nframes:16 () in
  let a = Pd.create m "a" in
  Alcotest.(check bool) "empty rejected" true
    (raises_invalid (fun () -> ignore (Path.create [])));
  Alcotest.(check bool) "duplicate rejected" true
    (raises_invalid (fun () -> ignore (Path.create [ a; a ])));
  let p = Path.create [ a ] in
  check Alcotest.int "length" 1 (Path.length p);
  Alcotest.(check bool) "originator" true (Pd.equal (Path.originator p) a);
  check Alcotest.int "no receivers" 0 (List.length (Path.receivers p))

let test_fbuf_pp_states () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  let s = Format.asprintf "%a" Fbuf.pp fb in
  Alcotest.(check bool) "mentions variant" true (contains s "cached/volatile")

(* ------------------------------------------------------------------ *)
(* Machine / cost model accessors                                      *)
(* ------------------------------------------------------------------ *)

let test_machine_charge_n () =
  let m = Machine.create ~nframes:16 () in
  Machine.charge_n m 7 2.0;
  check (Alcotest.float 1e-9) "7 x 2us" 14.0 (Machine.now m)

let test_cost_model_pp_mentions_effective_rate () =
  let s =
    Format.asprintf "%a" Cost_model.pp Cost_model.decstation_5000_200
  in
  Alcotest.(check bool) "prints something substantial" true
    (String.length s > 200)

let test_tlb_pressure_bounded () =
  let m = Machine.create ~tlb_entries:8 ~nframes:16 () in
  Machine.domain_crossing_tlb_pressure m;
  Alcotest.(check bool) "TLB stays bounded" true
    (Tlb.valid_entries m.Machine.tlb <= 8)

(* ------------------------------------------------------------------ *)
(* Access odds and ends                                                *)
(* ------------------------------------------------------------------ *)

let test_access_word_page_boundary_rejected () =
  let m = Machine.create ~nframes:16 () in
  let d = Pd.create m "d" in
  let vpn = Vm_map.reserve_private d.Pd.map ~npages:2 in
  Vm_map.map_zero_fill d.Pd.map ~vpn ~npages:2;
  let ps = m.Machine.cost.Cost_model.page_size in
  Alcotest.(check bool) "straddling word rejected" true
    (raises_invalid (fun () ->
         ignore (Access.read_word d ~vaddr:((vpn * ps) + ps - 2))))

let test_access_can_access () =
  let m = Machine.create ~nframes:16 () in
  let d = Pd.create m "d" in
  let vpn = Vm_map.reserve_private d.Pd.map ~npages:1 in
  Vm_map.map_zero_fill d.Pd.map ~vpn ~npages:1;
  let va = vpn * m.Machine.cost.Cost_model.page_size in
  Alcotest.(check bool) "rw" true (Access.can_access d ~vaddr:va ~write:true);
  Vm_map.protect d.Pd.map ~vpn ~npages:1 ~prot:Prot.Read_only;
  Alcotest.(check bool) "write denied" false
    (Access.can_access d ~vaddr:va ~write:true);
  Alcotest.(check bool) "read ok" true
    (Access.can_access d ~vaddr:va ~write:false);
  Alcotest.(check bool) "unmapped" false
    (Access.can_access d ~vaddr:0x123456 ~write:false)

let test_checksum_composability () =
  let m = Machine.create ~nframes:16 () in
  let d = Pd.create m "d" in
  let vpn = Vm_map.reserve_private d.Pd.map ~npages:1 in
  Vm_map.map_zero_fill d.Pd.map ~vpn ~npages:1;
  let va = vpn * m.Machine.cost.Cost_model.page_size in
  Access.write_string d ~vaddr:va "composable checksums!";
  let whole = Access.checksum d ~vaddr:va ~len:21 in
  let split_at k =
    Access.checksum_finish
      (Access.checksum_feed d ~vaddr:(va + k) ~len:(21 - k)
         (Access.checksum_feed d ~vaddr:va ~len:k Access.checksum_start))
  in
  check Alcotest.int "split at 1 (odd)" whole (split_at 1);
  check Alcotest.int "split at 10" whole (split_at 10);
  check Alcotest.int "split at 20" whole (split_at 20)

(* ------------------------------------------------------------------ *)
(* Msg / Header edges                                                  *)
(* ------------------------------------------------------------------ *)

let test_header_peek_short_message_rejected () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:3 in
  Alcotest.(check bool) "short peek rejected" true
    (raises_invalid (fun () -> ignore (Header.peek msg ~as_:d ~len:8)))

let test_msg_iter_units_bad_size () =
  Alcotest.(check bool) "zero unit rejected" true
    (raises_invalid (fun () ->
         let tb = Testbed.create () in
         let d = Testbed.user_domain tb "d" in
         ignore tb;
         Msg.iter_units Msg.empty ~as_:d ~unit_size:0 ignore))

let test_msg_depth_and_pp () =
  let tb = Testbed.create () in
  let d = Testbed.user_domain tb "d" in
  let alloc = Testbed.allocator tb ~domains:[ d ] Fbuf.cached_volatile in
  let leaf () =
    let fb = Allocator.alloc alloc ~npages:1 in
    Msg.of_fbuf fb ~off:0 ~len:16
  in
  let m = Msg.join (leaf ()) (Msg.join (leaf ()) (leaf ())) in
  check Alcotest.int "depth" 3 (Msg.depth m);
  Alcotest.(check bool) "pp shows length" true
    (contains (Format.asprintf "%a" Msg.pp m) "48B")

(* ------------------------------------------------------------------ *)
(* Ipc / allocator accessors                                           *)
(* ------------------------------------------------------------------ *)

let test_ipc_accessors () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let conn =
    Ipc.connect tb.Testbed.region ~src:a ~dst:b ~mode:Ipc.Integrated
      ~facility:Ipc.Urpc ()
  in
  Alcotest.(check bool) "src" true (Pd.equal (Ipc.src conn) a);
  Alcotest.(check bool) "dst" true (Pd.equal (Ipc.dst conn) b);
  Alcotest.(check bool) "mode" true (Ipc.mode conn = Ipc.Integrated);
  Alcotest.(check bool) "facility" true (Ipc.facility conn = Ipc.Urpc)

let test_allocator_accessors () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let alloc = Testbed.allocator tb ~domains:[ a ] Fbuf.cached_only in
  Alcotest.(check bool) "owner" true (Pd.equal (Allocator.owner alloc) a);
  Alcotest.(check bool) "variant" true
    (Allocator.variant alloc = Fbuf.cached_only);
  check Alcotest.int "nothing live" 0 (Allocator.live_fbufs alloc);
  let fb = Allocator.alloc alloc ~npages:1 in
  check Alcotest.int "one live" 1 (Allocator.live_fbufs alloc);
  Transfer.free fb ~dom:a;
  check Alcotest.int "parked not live" 0 (Allocator.live_fbufs alloc)

let test_allocator_zero_pages_rejected () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let alloc = Testbed.allocator tb ~domains:[ a ] Fbuf.cached_volatile in
  Alcotest.(check bool) "raises" true
    (raises_invalid (fun () ->
         let (_ : Fbuf.t) = Allocator.alloc alloc ~npages:0 in
         ()))

let test_double_teardown_rejected () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let alloc = Testbed.allocator tb ~domains:[ a ] Fbuf.cached_volatile in
  Allocator.teardown alloc;
  Alcotest.(check bool) "raises" true
    (raises_invalid (fun () -> Allocator.teardown alloc))

let test_transfer_to_self_rejected () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let alloc = Testbed.allocator tb ~domains:[ a ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Alcotest.(check bool) "raises" true
    (raises_invalid (fun () -> Transfer.send fb ~src:a ~dst:a))

let test_vm_release_range () =
  let m = Machine.create ~nframes:64 () in
  let d = Pd.create m "d" in
  let free0 = Phys_mem.free_frames m.Machine.pmem in
  let vpn = Remap.alloc_pages d ~npages:4 ~clear_fraction:0.0 in
  Vm_map.release_range d.Pd.map ~vpn ~npages:4;
  check Alcotest.int "frames back" free0 (Phys_mem.free_frames m.Machine.pmem);
  Alcotest.(check bool) "unmapped" false (Vm_map.mapped d.Pd.map ~vpn)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "edges"
    [
      ( "identities",
        [
          tc "prot predicates" `Quick test_prot_predicates;
          tc "pd identity" `Quick test_pd_identity;
          tc "path validation" `Quick test_path_validation;
          tc "fbuf pp" `Quick test_fbuf_pp_states;
        ] );
      ( "machine",
        [
          tc "charge_n" `Quick test_machine_charge_n;
          tc "cost model pp" `Quick test_cost_model_pp_mentions_effective_rate;
          tc "tlb pressure bounded" `Quick test_tlb_pressure_bounded;
        ] );
      ( "access",
        [
          tc "word boundary rejected" `Quick
            test_access_word_page_boundary_rejected;
          tc "can_access" `Quick test_access_can_access;
          tc "checksum composability" `Quick test_checksum_composability;
        ] );
      ( "msg-header",
        [
          tc "short peek rejected" `Quick test_header_peek_short_message_rejected;
          tc "bad unit size" `Quick test_msg_iter_units_bad_size;
          tc "depth and pp" `Quick test_msg_depth_and_pp;
        ] );
      ( "api-edges",
        [
          tc "ipc accessors" `Quick test_ipc_accessors;
          tc "allocator accessors" `Quick test_allocator_accessors;
          tc "zero pages rejected" `Quick test_allocator_zero_pages_rejected;
          tc "double teardown rejected" `Quick test_double_teardown_rejected;
          tc "send to self rejected" `Quick test_transfer_to_self_rejected;
          tc "vm release range" `Quick test_vm_release_range;
        ] );
    ]
