(* Tests for the fbuf core: region, allocators, the four transfer variants,
   protection semantics, caching, reclamation and teardown. *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Testbed = Fbufs_harness.Testbed

let check = Alcotest.check

let setup2 () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  (tb, app, recv)

(* One paper-style round trip: allocate, write a word per page, send,
   receiver reads a word per page, both sides free. *)
let roundtrip alloc ~src ~dst ~npages =
  let fb = Allocator.alloc alloc ~npages in
  Fbuf_api.touch_write fb ~as_:src;
  Transfer.send fb ~src ~dst;
  Fbuf_api.touch_read fb ~as_:dst;
  Transfer.free fb ~dom:dst;
  Transfer.free fb ~dom:src

(* ------------------------------------------------------------------ *)
(* Data integrity                                                      *)
(* ------------------------------------------------------------------ *)

let test_transfer_data_integrity () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:2 in
  Fbuf_api.write fb ~as_:app ~off:100 "hello fbufs";
  Transfer.send fb ~src:app ~dst:recv;
  check Alcotest.string "receiver reads what originator wrote" "hello fbufs"
    (Fbuf_api.read_string fb ~as_:recv ~off:100 ~len:11)

let test_same_vaddr_both_domains () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Transfer.send fb ~src:app ~dst:recv;
  (* No receiver-side address allocation: the fbuf has one address. *)
  let va = Fbuf.vaddr fb in
  Fbuf_api.set_word fb ~as_:app ~off:0 42;
  check Alcotest.int "read at identical vaddr" 42
    (Access.read_word recv ~vaddr:va)

let test_receiver_cannot_write () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Transfer.send fb ~src:app ~dst:recv;
  Alcotest.(check bool) "write violates" true
    (try
       Fbuf_api.set_word fb ~as_:recv ~off:0 1;
       false
     with Vm_map.Protection_violation _ -> true)

(* ------------------------------------------------------------------ *)
(* Volatile vs non-volatile                                            *)
(* ------------------------------------------------------------------ *)

let test_volatile_originator_keeps_write () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.set_word fb ~as_:app ~off:0 1;
  Transfer.send fb ~src:app ~dst:recv;
  (* Volatile: the receiver must assume contents can change under it. *)
  Fbuf_api.set_word fb ~as_:app ~off:0 2;
  check Alcotest.int "receiver observes the change" 2
    (Fbuf_api.word_at fb ~as_:recv ~off:0)

let test_secure_revokes_originator_write () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.set_word fb ~as_:app ~off:0 1;
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.secure fb;
  Alcotest.(check bool) "secured" true (Transfer.is_secured fb);
  Alcotest.(check bool) "originator write violates" true
    (try
       Fbuf_api.set_word fb ~as_:app ~off:0 2;
       false
     with Vm_map.Protection_violation _ -> true);
  check Alcotest.int "contents stable" 1 (Fbuf_api.word_at fb ~as_:recv ~off:0)

let test_secure_kernel_originator_noop () =
  let tb = Testbed.create () in
  let recv = Testbed.user_domain tb "recv" in
  let alloc =
    Testbed.allocator tb ~domains:[ tb.Testbed.kernel; recv ]
      Fbuf.cached_volatile
  in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.set_word fb ~as_:tb.Testbed.kernel ~off:0 1;
  Transfer.send fb ~src:tb.Testbed.kernel ~dst:recv;
  let t0 = Machine.now tb.Testbed.m in
  Transfer.secure fb;
  (* Trusted originator: securing performs no VM work. *)
  check (Alcotest.float 1e-9) "free of charge" 0.0 (Machine.now tb.Testbed.m -. t0);
  Fbuf_api.set_word fb ~as_:tb.Testbed.kernel ~off:0 2;
  check Alcotest.int "kernel keeps write access" 2
    (Fbuf_api.word_at fb ~as_:recv ~off:0)

let test_nonvolatile_send_enforces_immutability () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_only in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.set_word fb ~as_:app ~off:0 1;
  Transfer.send fb ~src:app ~dst:recv;
  Alcotest.(check bool) "eagerly secured" true (Transfer.is_secured fb);
  Alcotest.(check bool) "originator write violates" true
    (try
       Fbuf_api.set_word fb ~as_:app ~off:0 2;
       false
     with Vm_map.Protection_violation _ -> true)

let test_nonvolatile_write_restored_after_free () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_only in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.set_word fb ~as_:app ~off:0 1;
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.free fb ~dom:recv;
  Transfer.free fb ~dom:app;
  (* Reuse from the path cache: write permission must be back. *)
  let fb2 = Allocator.alloc alloc ~npages:1 in
  check Alcotest.int "same buffer reused" (Fbuf.vaddr fb) (Fbuf.vaddr fb2);
  Fbuf_api.set_word fb2 ~as_:app ~off:0 7;
  check Alcotest.int "write works again" 7 (Fbuf_api.word_at fb2 ~as_:app ~off:0)

(* ------------------------------------------------------------------ *)
(* Caching                                                             *)
(* ------------------------------------------------------------------ *)

let test_cached_free_parks_on_lifo () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  roundtrip alloc ~src:app ~dst:recv ~npages:2;
  check Alcotest.int "one parked" 1 (Allocator.free_list_length alloc);
  roundtrip alloc ~src:app ~dst:recv ~npages:2;
  check Alcotest.int "still one (reused)" 1 (Allocator.free_list_length alloc)

let test_cached_reuse_same_address () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:2 in
  let va = Fbuf.vaddr fb in
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.free fb ~dom:recv;
  Transfer.free fb ~dom:app;
  let fb2 = Allocator.alloc alloc ~npages:2 in
  check Alcotest.int "same address" va (Fbuf.vaddr fb2)

let test_cached_reuse_no_vm_work () =
  let tb, app, recv = setup2 () in
  let m = tb.Testbed.m in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  roundtrip alloc ~src:app ~dst:recv ~npages:4 (* warm up *);
  let before = Stats.snapshot m.Machine.stats in
  roundtrip alloc ~src:app ~dst:recv ~npages:4;
  let delta = Stats.since m.Machine.stats before in
  check (Alcotest.float 0.0) "no pmap enters on reuse" 0.0
    (Stats.value delta "pmap.enter");
  check (Alcotest.float 0.0) "no page zeroing on reuse" 0.0
    (Stats.value delta "fbuf.page_zeroed")

let test_cached_lifo_order () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let a = Allocator.alloc alloc ~npages:1 in
  let b = Allocator.alloc alloc ~npages:1 in
  Transfer.free a ~dom:app;
  Transfer.free b ~dom:app;
  (* b freed last, so it is warmest and must come back first. *)
  let c = Allocator.alloc alloc ~npages:1 in
  check Alcotest.int "LIFO reuse" (Fbuf.vaddr b) (Fbuf.vaddr c)

let test_cached_size_mismatch_allocates_fresh () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  roundtrip alloc ~src:app ~dst:recv ~npages:2;
  let fb = Allocator.alloc alloc ~npages:3 in
  Alcotest.(check bool) "fresh buffer" true (fb.Fbuf.npages = 3);
  check Alcotest.int "2-page buffer still parked" 1
    (Allocator.free_list_length alloc)

let test_uncached_teardown_frees_frames () =
  let tb, app, recv = setup2 () in
  let m = tb.Testbed.m in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.volatile_only in
  let free0 = Phys_mem.free_frames m.Machine.pmem in
  roundtrip alloc ~src:app ~dst:recv ~npages:4;
  check Alcotest.int "all frames returned" free0
    (Phys_mem.free_frames m.Machine.pmem);
  check Alcotest.int "nothing parked" 0 (Allocator.free_list_length alloc)

let test_uncached_address_reused_after_free () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.volatile_only in
  let fb = Allocator.alloc alloc ~npages:2 in
  let va = Fbuf.vaddr fb in
  Transfer.free fb ~dom:app;
  let fb2 = Allocator.alloc alloc ~npages:2 in
  check Alcotest.int "extent recycled" va (Fbuf.vaddr fb2)

(* Regression: a receiver holding several references (two overlapping
   sends) keeps its mapping until the *last* free. An early unmap used to
   drop the receiver from [mapped_in]; a later read lazily re-faulted the
   mapping without re-entering the list, and teardown then leaked the
   stale mapping onto the next fbuf allocated at these addresses. *)
let test_uncached_receiver_mapping_survives_partial_free () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.volatile_only in
  let fb = Allocator.alloc alloc ~npages:1 in
  let vpn = fb.Fbuf.base_vpn in
  Fbuf_api.write fb ~as_:app ~off:0 "twice";
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.send fb ~src:app ~dst:recv;
  check Alcotest.string "receiver reads" "twice"
    (Fbuf_api.read_string fb ~as_:recv ~off:0 ~len:5);
  Transfer.free fb ~dom:recv;
  Alcotest.(check bool) "still mapped with a reference outstanding" true
    (Vm_map.mapped recv.Pd.map ~vpn);
  check Alcotest.string "still readable" "twice"
    (Fbuf_api.read_string fb ~as_:recv ~off:0 ~len:5);
  Transfer.free fb ~dom:recv;
  Alcotest.(check bool) "unmapped at last free" false
    (Vm_map.mapped recv.Pd.map ~vpn);
  Transfer.free fb ~dom:app;
  (* The recycled address must carry no mapping from the earlier life. *)
  let fb2 = Allocator.alloc alloc ~npages:1 in
  check Alcotest.int "address recycled" vpn fb2.Fbuf.base_vpn;
  Alcotest.(check bool) "no stale receiver mapping" false
    (Vm_map.mapped recv.Pd.map ~vpn)

(* ------------------------------------------------------------------ *)
(* Reference counting and errors                                       *)
(* ------------------------------------------------------------------ *)

let test_multi_receiver_pipeline () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let c = Testbed.user_domain tb "c" in
  let alloc = Testbed.allocator tb ~domains:[ a; b; c ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:a ~off:0 "pipeline";
  Transfer.send fb ~src:a ~dst:b;
  Transfer.free fb ~dom:a;
  Transfer.send fb ~src:b ~dst:c;
  Transfer.free fb ~dom:b;
  check Alcotest.string "third domain reads" "pipeline"
    (Fbuf_api.read_string fb ~as_:c ~off:0 ~len:8);
  check Alcotest.int "one ref left" 1 (Fbuf.total_refs fb);
  Transfer.free fb ~dom:c;
  check Alcotest.int "parked after last free" 1
    (Allocator.free_list_length alloc)

let test_free_without_ref_rejected () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Alcotest.(check bool) "raises" true
    (try
       Transfer.free fb ~dom:recv;
       false
     with Invalid_argument _ -> true)

let test_send_by_non_holder_rejected () =
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let c = Testbed.user_domain tb "c" in
  let alloc = Testbed.allocator tb ~domains:[ a; b; c ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Alcotest.(check bool) "raises" true
    (try
       Transfer.send fb ~src:b ~dst:c;
       false
     with Invalid_argument _ -> true)

let test_cached_send_off_path_rejected () =
  let tb, app, recv = setup2 () in
  let stranger = Testbed.user_domain tb "stranger" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Alcotest.(check bool) "raises" true
    (try
       Transfer.send fb ~src:app ~dst:stranger;
       false
     with Invalid_argument _ -> true)

let test_default_allocator_goes_anywhere () =
  let tb, app, recv = setup2 () in
  let stranger = Testbed.user_domain tb "stranger" in
  let alloc = Allocator.default tb.Testbed.region ~owner:app in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:app ~off:0 "anywhere";
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.send fb ~src:app ~dst:stranger;
  check Alcotest.string "recv" "anywhere"
    (Fbuf_api.read_string fb ~as_:recv ~off:0 ~len:8);
  check Alcotest.string "stranger" "anywhere"
    (Fbuf_api.read_string fb ~as_:stranger ~off:0 ~len:8)

let test_use_after_free_rejected () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.volatile_only in
  let fb = Allocator.alloc alloc ~npages:1 in
  Transfer.free fb ~dom:app;
  Alcotest.(check bool) "send after free raises" true
    (try
       Transfer.send fb ~src:app ~dst:recv;
       false
     with Transfer.Dead_fbuf _ -> true)

(* ------------------------------------------------------------------ *)
(* Region: chunks, limits, dead page                                   *)
(* ------------------------------------------------------------------ *)

let test_chunk_limit_enforced () =
  let config =
    { Region.default_config with Region.max_chunks_per_allocator = 2 }
  in
  let tb = Testbed.create ~config () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let chunk_pages = config.Region.chunk_pages in
  let fb1 = Allocator.alloc alloc ~npages:chunk_pages in
  let fb2 = Allocator.alloc alloc ~npages:chunk_pages in
  Alcotest.(check bool) "third chunk refused" true
    (try
       let (_ : Fbuf.t) = Allocator.alloc alloc ~npages:chunk_pages in
       false
     with Region.Chunk_limit_exceeded _ -> true);
  Transfer.free fb1 ~dom:app;
  Transfer.free fb2 ~dom:app

let test_region_exhaustion () =
  let config =
    {
      Region.default_config with
      Region.region_pages = 64;
      chunk_pages = 16;
      max_chunks_per_allocator = 1000;
    }
  in
  let tb = Testbed.create ~config () in
  let app = Testbed.user_domain tb "app" in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.volatile_only in
  let bufs = List.init 4 (fun _ -> Allocator.alloc alloc ~npages:16) in
  Alcotest.(check bool) "fifth chunk unavailable" true
    (try
       let (_ : Fbuf.t) = Allocator.alloc alloc ~npages:16 in
       false
     with Region.Region_exhausted -> true);
  List.iter (fun fb -> Transfer.free fb ~dom:app) bufs

let test_dead_page_read_inside_region () =
  let tb, app, _ = setup2 () in
  let config = Region.config tb.Testbed.region in
  (* Read a region address the domain has no mapping for: must read as an
     empty (zero) page rather than fault. *)
  let va = (config.Region.base_vpn + 100) * Testbed.page_size tb in
  check Alcotest.int "reads zero" 0 (Access.read_word app ~vaddr:va);
  check Alcotest.int "recorded" 1 (Region.dead_page_reads tb.Testbed.region)

let test_dead_page_write_still_violates () =
  let tb, app, _ = setup2 () in
  let config = Region.config tb.Testbed.region in
  let va = (config.Region.base_vpn + 101) * Testbed.page_size tb in
  Alcotest.(check bool) "write raises" true
    (try
       Access.write_word app ~vaddr:va 1;
       false
     with Vm_map.Protection_violation _ -> true)

let test_outside_region_read_still_violates () =
  let _tb, app, _ = setup2 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Access.read_word app ~vaddr:0x7000);
       false
     with Vm_map.Protection_violation _ -> true)

let test_dead_page_replaced_by_real_transfer () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  (* Receiver reads before the buffer was ever sent: dead page. *)
  ignore (Access.read_word recv ~vaddr:(Fbuf.vaddr fb));
  Fbuf_api.set_word fb ~as_:app ~off:0 77;
  Transfer.send fb ~src:app ~dst:recv;
  check Alcotest.int "real data after transfer" 77
    (Fbuf_api.word_at fb ~as_:recv ~off:0)

(* ------------------------------------------------------------------ *)
(* Reclamation and teardown                                            *)
(* ------------------------------------------------------------------ *)

let test_reclaim_frees_memory_and_rezeroes () =
  let tb, app, recv = setup2 () in
  let m = tb.Testbed.m in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:2 in
  Fbuf_api.write fb ~as_:app ~off:0 "secret";
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.free fb ~dom:recv;
  Transfer.free fb ~dom:app;
  let free0 = Phys_mem.free_frames m.Machine.pmem in
  let n = Allocator.reclaim alloc ~max_fbufs:10 () in
  check Alcotest.int "one reclaimed" 1 n;
  check Alcotest.int "frames released" (free0 + 2)
    (Phys_mem.free_frames m.Machine.pmem);
  (* Reuse: contents were discarded; first touch reads zero (fresh frame). *)
  let fb2 = Allocator.alloc alloc ~npages:2 in
  check Alcotest.int "same buffer" (Fbuf.vaddr fb) (Fbuf.vaddr fb2);
  check Alcotest.string "no data leak"
    (String.make 6 '\000')
    (Fbuf_api.read_string fb2 ~as_:app ~off:0 ~len:6)

let test_reclaim_takes_coldest_first () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let a = Allocator.alloc alloc ~npages:1 in
  let b = Allocator.alloc alloc ~npages:1 in
  Transfer.free a ~dom:app;
  Transfer.free b ~dom:app;
  (* a is coldest. Reclaim one: a's frames go, b's stay. *)
  ignore (Allocator.reclaim alloc ~max_fbufs:1 ());
  Alcotest.(check bool) "warm buffer keeps frame" true
    (Vm_map.frame_of app.Pd.map ~vpn:b.Fbuf.base_vpn <> None);
  Alcotest.(check bool) "cold buffer lost frame" true
    (Vm_map.frame_of app.Pd.map ~vpn:a.Fbuf.base_vpn = None)

let test_teardown_releases_chunks () =
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  roundtrip alloc ~src:app ~dst:recv ~npages:2;
  Alcotest.(check bool) "owns chunks" true
    (Region.chunks_owned tb.Testbed.region app > 0);
  Allocator.teardown alloc;
  check Alcotest.int "chunks returned" 0
    (Region.chunks_owned tb.Testbed.region app)

let test_teardown_defers_until_external_refs_drop () =
  (* A terminating originator's chunks are retained by the kernel until all
     external references are relinquished (paper section 3.3). *)
  let tb, app, recv = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:app ~off:0 "held";
  Transfer.send fb ~src:app ~dst:recv;
  Transfer.free fb ~dom:app;
  Allocator.teardown alloc;
  Alcotest.(check bool) "chunks retained while receiver holds ref" true
    (Region.chunks_owned tb.Testbed.region app > 0);
  check Alcotest.string "receiver can still read" "held"
    (Fbuf_api.read_string fb ~as_:recv ~off:0 ~len:4);
  Transfer.free fb ~dom:recv;
  check Alcotest.int "chunks returned after last free" 0
    (Region.chunks_owned tb.Testbed.region app)

(* ------------------------------------------------------------------ *)
(* Calibration anchors (Table 1 smoke tests)                           *)
(* ------------------------------------------------------------------ *)

(* Incremental per-page cost: slope of total time against page count,
   measured on warmed-up paths exactly like the paper's first experiment.
   Each stage boundary models the TLB pressure of the IPC crossing the real
   experiment performed (the transfers themselves need no kernel call). *)
let per_page_cost variant =
  let tb, app, recv = setup2 () in
  let m = tb.Testbed.m in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] variant in
  let roundtrip npages =
    let fb = Allocator.alloc alloc ~npages in
    Fbuf_api.touch_write fb ~as_:app;
    Transfer.send fb ~src:app ~dst:recv;
    Machine.domain_crossing_tlb_pressure m;
    Fbuf_api.touch_read fb ~as_:recv;
    Transfer.free fb ~dom:recv;
    Machine.domain_crossing_tlb_pressure m;
    Transfer.free fb ~dom:app
  in
  let measure npages =
    (* Warm up: populate the cache for this size. *)
    roundtrip npages;
    roundtrip npages;
    let t0 = Machine.now m in
    for _ = 1 to 10 do
      roundtrip npages
    done;
    (Machine.now m -. t0) /. 10.0
  in
  let small = measure 8 and large = measure 40 in
  (large -. small) /. 32.0

let check_range what low high v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f us/page in [%.1f, %.1f]" what v low high)
    true
    (v >= low && v <= high)

let test_anchor_cached_volatile () =
  check_range "cached/volatile" 2.0 4.5 (per_page_cost Fbuf.cached_volatile)

let test_anchor_volatile () =
  check_range "volatile (uncached)" 17.0 26.0 (per_page_cost Fbuf.volatile_only)

let test_anchor_cached () =
  check_range "cached (non-volatile)" 24.0 34.0 (per_page_cost Fbuf.cached_only)

let test_anchor_plain () =
  check_range "plain fbufs" 27.0 40.0 (per_page_cost Fbuf.plain)

let test_anchor_order_of_magnitude () =
  let cv = per_page_cost Fbuf.cached_volatile in
  let v = per_page_cost Fbuf.volatile_only in
  let c = per_page_cost Fbuf.cached_only in
  Alcotest.(check bool)
    (Printf.sprintf "cached/volatile (%.1f) ~10x better than %.1f and %.1f" cv
       v c)
    true
    (v /. cv > 5.0 && c /. cv > 5.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip_any_payload =
  QCheck.Test.make ~name:"any payload survives a transfer" ~count:60
    QCheck.(string_of_size Gen.(1 -- 12000))
    (fun s ->
      QCheck.assume (String.length s > 0);
      let tb, app, recv = setup2 () in
      let ps = Testbed.page_size tb in
      let npages = ((String.length s + ps - 1) / ps) + 1 in
      let alloc =
        Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
      in
      let fb = Allocator.alloc alloc ~npages in
      Fbuf_api.write fb ~as_:app ~off:0 s;
      Transfer.send fb ~src:app ~dst:recv;
      Fbuf_api.read_string fb ~as_:recv ~off:0 ~len:(String.length s) = s)

let prop_refcounts_balance =
  QCheck.Test.make ~name:"random send/free sequences leave no refs" ~count:40
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 2))
    (fun ops ->
      let tb = Testbed.create () in
      let a = Testbed.user_domain tb "a" in
      let b = Testbed.user_domain tb "b" in
      let c = Testbed.user_domain tb "c" in
      let doms = [| a; b; c |] in
      let alloc =
        Testbed.allocator tb ~domains:[ a; b; c ] Fbuf.cached_volatile
      in
      let fb = Allocator.alloc alloc ~npages:1 in
      (* Send to each domain mentioned in ops (a holds the buffer), then
         free everywhere. *)
      List.iter
        (fun i ->
          let d = doms.(i) in
          if (not (Fbufs_vm.Pd.equal d a)) && Fbuf.ref_count fb d = 0 then
            Transfer.send fb ~src:a ~dst:d)
        ops;
      let refs = Fbuf.total_refs fb in
      Array.iter
        (fun d ->
          for _ = 1 to Fbuf.ref_count fb d do
            Transfer.free fb ~dom:d
          done)
        doms;
      refs >= 1 && Fbuf.total_refs fb = 0
      && Allocator.free_list_length alloc = 1)

let prop_cached_reuse_is_stable =
  QCheck.Test.make ~name:"cached path reaches steady state (no leaks)"
    ~count:20
    QCheck.(int_range 1 6)
    (fun npages ->
      let tb, app, recv = setup2 () in
      let m = tb.Testbed.m in
      let alloc =
        Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
      in
      roundtrip alloc ~src:app ~dst:recv ~npages;
      let frames = Phys_mem.free_frames m.Machine.pmem in
      for _ = 1 to 25 do
        roundtrip alloc ~src:app ~dst:recv ~npages
      done;
      Phys_mem.free_frames m.Machine.pmem = frames
      && Allocator.free_list_length alloc = 1)

(* ------------------------------------------------------------------ *)
(* Allocation fast-path data structures (size classes, extents,        *)
(* next-fit) — added with the O(1) allocator rework                    *)
(* ------------------------------------------------------------------ *)

let test_fifo_order_survives_interleaving () =
  let tb, app, _ = setup2 () in
  let alloc =
    Allocator.create tb.Testbed.region
      ~path:(Path.create [ app ])
      ~variant:Fbuf.cached_volatile ~policy:Allocator.Fifo ()
  in
  (* Three distinct live fbufs (allocated before any free, so none is a
     cache reuse of another). *)
  let a = Allocator.alloc alloc ~npages:2 in
  let b = Allocator.alloc alloc ~npages:2 in
  let c = Allocator.alloc alloc ~npages:2 in
  Transfer.free a ~dom:app;
  Transfer.free b ~dom:app;
  (* First re-allocation must give the *oldest* parked buffer (a), even
     with more frees and allocations interleaved around it. *)
  let got1 = Allocator.alloc alloc ~npages:2 in
  check Alcotest.int "oldest first" a.Fbuf.id got1.Fbuf.id;
  Transfer.free c ~dom:app;
  Transfer.free got1 ~dom:app;
  (* Parked order is now b, c, a. *)
  let got2 = Allocator.alloc alloc ~npages:2 in
  let got3 = Allocator.alloc alloc ~npages:2 in
  let got4 = Allocator.alloc alloc ~npages:2 in
  check Alcotest.(list int) "FIFO across interleaved alloc/free"
    [ b.Fbuf.id; c.Fbuf.id; a.Fbuf.id ]
    [ got2.Fbuf.id; got3.Fbuf.id; got4.Fbuf.id ]

let test_size_class_hit_and_miss () =
  let tb, app, _ = setup2 () in
  let m = Region.machine tb.Testbed.region in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let one = Allocator.alloc alloc ~npages:1 in
  let four = Allocator.alloc alloc ~npages:4 in
  let eight = Allocator.alloc alloc ~npages:8 in
  List.iter (fun fb -> Transfer.free fb ~dom:app) [ one; four; eight ];
  check Alcotest.int "three parked" 3 (Allocator.free_list_length alloc);
  let hits () =
    int_of_float (Stats.get_float m.Machine.stats "fbuf.alloc_cached_hit")
  in
  let h0 = hits () in
  (* Exact-size requests hit their class regardless of park order... *)
  let got4 = Allocator.alloc alloc ~npages:4 in
  check Alcotest.int "4-page hit" four.Fbuf.id got4.Fbuf.id;
  let got1 = Allocator.alloc alloc ~npages:1 in
  check Alcotest.int "1-page hit" one.Fbuf.id got1.Fbuf.id;
  check Alcotest.int "two cache hits" (h0 + 2) (hits ());
  (* ...while a size with no parked buffer misses even though other
     classes are populated (no splitting of cached mappings). *)
  let got2 = Allocator.alloc alloc ~npages:2 in
  Alcotest.(check bool) "2-page request is a fresh fbuf" true
    (got2.Fbuf.id <> eight.Fbuf.id && got2.Fbuf.id > eight.Fbuf.id);
  check Alcotest.int "still two hits" (h0 + 2) (hits ());
  check Alcotest.int "eight still parked" 1 (Allocator.free_list_length alloc)

let test_extents_coalesce_after_free () =
  let tb, app, _ = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.volatile_only in
  (* Four 4-page uncached fbufs fill one 16-page chunk exactly. *)
  let fbs = List.init 4 (fun _ -> Allocator.alloc alloc ~npages:4) in
  let bases = List.map (fun fb -> fb.Fbuf.base_vpn) fbs in
  let lo = List.fold_left min max_int bases in
  let owned = Region.chunks_owned tb.Testbed.region app in
  (* Free in a scrambled order: the freed extents must coalesce back into
     one 16-page run... *)
  List.iter
    (fun i -> Transfer.free (List.nth fbs i) ~dom:app)
    [ 2; 0; 3; 1 ];
  let big = Allocator.alloc alloc ~npages:16 in
  (* ...so a 16-page request is satisfied in place, with no chunk growth. *)
  check Alcotest.int "16-page alloc reuses the coalesced run" lo
    big.Fbuf.base_vpn;
  check Alcotest.int "no new chunks" owned
    (Region.chunks_owned tb.Testbed.region app)

let test_reclaim_lru_order () =
  let tb, app, _ = setup2 () in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  (* Allocate before freeing anything so a, b, c are distinct buffers with
     strictly increasing last-use times. *)
  let a = Allocator.alloc alloc ~npages:1 in
  let b = Allocator.alloc alloc ~npages:2 in
  let c = Allocator.alloc alloc ~npages:1 in
  Transfer.free a ~dom:app;
  Transfer.free b ~dom:app;
  Transfer.free c ~dom:app;
  let resident fb =
    Vm_map.frame_of app.Pd.map ~vpn:fb.Fbuf.base_vpn <> None
  in
  check Alcotest.int "two reclaimed" 2
    (Allocator.reclaim alloc ~max_fbufs:2 ());
  (* a and b were allocated (hence last used) before c: LRU evicts them
     and leaves the youngest parked buffer resident. *)
  Alcotest.(check bool) "oldest lost memory" false (resident a);
  Alcotest.(check bool) "middle lost memory" false (resident b);
  Alcotest.(check bool) "youngest still resident" true (resident c)

let small_region_config =
  {
    Region.default_config with
    Region.region_pages = 64;
    chunk_pages = 16;
    max_chunks_per_allocator = 64;
  }

let test_next_fit_wraparound () =
  let tb = Testbed.create ~config:small_region_config () in
  let app = Testbed.user_domain tb "app" in
  let r = tb.Testbed.region in
  let base = small_region_config.Region.base_vpn in
  let chunk n = base + (n * 16) in
  (* 4 chunks total. Take three, then free the first. *)
  check Alcotest.int "chunk 0" (chunk 0) (Region.alloc_chunks r app ~nchunks:1);
  check Alcotest.int "chunk 1" (chunk 1) (Region.alloc_chunks r app ~nchunks:1);
  check Alcotest.int "chunk 2" (chunk 2) (Region.alloc_chunks r app ~nchunks:1);
  Region.free_chunks r app ~vpn:(chunk 0) ~nchunks:1;
  (* Next-fit: the cursor sits after chunk 2, so the next allocation takes
     chunk 3, not the lower free chunk 0 (first-fit would). *)
  check Alcotest.int "next-fit skips the low hole" (chunk 3)
    (Region.alloc_chunks r app ~nchunks:1);
  (* Now only chunk 0 is free and the cursor has wrapped past the end. *)
  check Alcotest.int "wraps around to chunk 0" (chunk 0)
    (Region.alloc_chunks r app ~nchunks:1);
  Alcotest.(check bool) "exhausted at the boundary" true
    (try
       ignore (Region.alloc_chunks r app ~nchunks:1);
       false
     with Region.Region_exhausted -> true)

let test_exhausted_when_free_but_fragmented () =
  let tb = Testbed.create ~config:small_region_config () in
  let app = Testbed.user_domain tb "app" in
  let r = tb.Testbed.region in
  let base = small_region_config.Region.base_vpn in
  let chunk n = base + (n * 16) in
  for i = 0 to 3 do
    ignore (Region.alloc_chunks r app ~nchunks:1);
    ignore i
  done;
  (* Free chunks 0 and 2: two chunks free, but no two *contiguous*. *)
  Region.free_chunks r app ~vpn:(chunk 0) ~nchunks:1;
  Region.free_chunks r app ~vpn:(chunk 2) ~nchunks:1;
  Alcotest.(check bool) "2-chunk request fails despite 2 free chunks" true
    (try
       ignore (Region.alloc_chunks r app ~nchunks:2);
       false
     with Region.Region_exhausted -> true);
  (* A single-chunk request still succeeds. *)
  ignore (Region.alloc_chunks r app ~nchunks:1)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fbuf"
    [
      ( "integrity",
        [
          tc "transfer data integrity" `Quick test_transfer_data_integrity;
          tc "same vaddr in both domains" `Quick test_same_vaddr_both_domains;
          tc "receiver cannot write" `Quick test_receiver_cannot_write;
        ] );
      ( "volatility",
        [
          tc "volatile originator keeps write" `Quick
            test_volatile_originator_keeps_write;
          tc "secure revokes originator write" `Quick
            test_secure_revokes_originator_write;
          tc "secure on kernel originator is noop" `Quick
            test_secure_kernel_originator_noop;
          tc "non-volatile send enforces immutability" `Quick
            test_nonvolatile_send_enforces_immutability;
          tc "write restored after free" `Quick
            test_nonvolatile_write_restored_after_free;
        ] );
      ( "caching",
        [
          tc "free parks on LIFO" `Quick test_cached_free_parks_on_lifo;
          tc "reuse same address" `Quick test_cached_reuse_same_address;
          tc "reuse does no VM work" `Quick test_cached_reuse_no_vm_work;
          tc "LIFO order" `Quick test_cached_lifo_order;
          tc "size mismatch allocates fresh" `Quick
            test_cached_size_mismatch_allocates_fresh;
          tc "uncached teardown frees frames" `Quick
            test_uncached_teardown_frees_frames;
          tc "uncached address reuse" `Quick
            test_uncached_address_reused_after_free;
          tc "receiver mapping survives partial free" `Quick
            test_uncached_receiver_mapping_survives_partial_free;
        ] );
      ( "refcounts",
        [
          tc "multi-receiver pipeline" `Quick test_multi_receiver_pipeline;
          tc "free without ref rejected" `Quick test_free_without_ref_rejected;
          tc "send by non-holder rejected" `Quick
            test_send_by_non_holder_rejected;
          tc "cached send off-path rejected" `Quick
            test_cached_send_off_path_rejected;
          tc "default allocator goes anywhere" `Quick
            test_default_allocator_goes_anywhere;
          tc "use after free rejected" `Quick test_use_after_free_rejected;
        ] );
      ( "region",
        [
          tc "chunk limit enforced" `Quick test_chunk_limit_enforced;
          tc "region exhaustion" `Quick test_region_exhaustion;
          tc "dead page read" `Quick test_dead_page_read_inside_region;
          tc "dead page write violates" `Quick
            test_dead_page_write_still_violates;
          tc "outside region read violates" `Quick
            test_outside_region_read_still_violates;
          tc "dead page replaced by transfer" `Quick
            test_dead_page_replaced_by_real_transfer;
        ] );
      ( "fast path structures",
        [
          tc "FIFO survives interleaved alloc/free" `Quick
            test_fifo_order_survives_interleaving;
          tc "size-class hit and miss" `Quick test_size_class_hit_and_miss;
          tc "extents coalesce after free" `Quick
            test_extents_coalesce_after_free;
          tc "reclaim LRU order" `Quick test_reclaim_lru_order;
          tc "next-fit wraparound" `Quick test_next_fit_wraparound;
          tc "exhausted when fragmented" `Quick
            test_exhausted_when_free_but_fragmented;
        ] );
      ( "reclamation",
        [
          tc "reclaim frees and rezeroes" `Quick
            test_reclaim_frees_memory_and_rezeroes;
          tc "reclaim takes coldest" `Quick test_reclaim_takes_coldest_first;
          tc "teardown releases chunks" `Quick test_teardown_releases_chunks;
          tc "teardown defers for external refs" `Quick
            test_teardown_defers_until_external_refs_drop;
        ] );
      ( "calibration",
        [
          tc "anchor cached/volatile ~3us" `Quick test_anchor_cached_volatile;
          tc "anchor volatile ~21us" `Quick test_anchor_volatile;
          tc "anchor cached ~29us" `Quick test_anchor_cached;
          tc "anchor plain" `Quick test_anchor_plain;
          tc "order of magnitude" `Quick test_anchor_order_of_magnitude;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_any_payload;
          QCheck_alcotest.to_alcotest prop_refcounts_balance;
          QCheck_alcotest.to_alcotest prop_cached_reuse_is_stable;
        ] );
    ]
