(* Tests for the simulated Osiris adapter, the null-modem link, and the
   bandwidth caps of the hardware model. *)

open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Osiris = Fbufs_netdev.Osiris
module Testbed = Fbufs_harness.Testbed
module Testproto = Fbufs_protocols.Testproto

let check = Alcotest.check

type pair = {
  des : Des.t;
  tb1 : Testbed.t;
  tb2 : Testbed.t;
  ad1 : Osiris.t;
  ad2 : Osiris.t;
}

let setup () =
  let des = Des.create () in
  let tb1 = Testbed.create ~name:"tx" ~seed:1 () in
  let tb2 = Testbed.create ~name:"rx" ~seed:2 () in
  let ad1 =
    Osiris.create ~m:tb1.Testbed.m ~des ~region:tb1.Testbed.region
      ~kernel:tb1.Testbed.kernel ()
  in
  let ad2 =
    Osiris.create ~m:tb2.Testbed.m ~des ~region:tb2.Testbed.region
      ~kernel:tb2.Testbed.kernel ()
  in
  Osiris.connect ad1 ad2;
  { des; tb1; tb2; ad1; ad2 }

let kernel_msg tb bytes fill =
  let alloc =
    Testbed.allocator tb ~domains:[ tb.Testbed.kernel ] Fbuf.cached_volatile
  in
  Testproto.make_message ~alloc ~as_:tb.Testbed.kernel ~bytes ?fill ()

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let test_pdu_delivery_integrity () =
  let p = setup () in
  let got = ref "" in
  Osiris.set_rx_handler p.ad2 (fun ~vci msg ->
      check Alcotest.int "vci" 7 vci;
      got := Msg.to_string msg ~as_:p.tb2.Testbed.kernel;
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  let msg = kernel_msg p.tb1 640 (Some "payload-pattern-") in
  Osiris.send_pdu p.ad1 ~vci:7 msg;
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  Des.run p.des;
  let expected = String.init 640 (fun i -> "payload-pattern-".[i mod 16]) in
  check Alcotest.string "bytes across the wire" expected !got

let test_unconnected_send_rejected () =
  let des = Des.create () in
  let tb = Testbed.create () in
  let ad =
    Osiris.create ~m:tb.Testbed.m ~des ~region:tb.Testbed.region
      ~kernel:tb.Testbed.kernel ()
  in
  let msg = kernel_msg tb 100 None in
  Alcotest.(check bool) "raises" true
    (try
       Osiris.send_pdu ad ~vci:1 msg;
       false
     with Invalid_argument _ -> true)

let test_multi_pdu_ordering () =
  let p = setup () in
  let order = ref [] in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      order := Msg.length msg :: !order;
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  List.iter
    (fun bytes ->
      let msg = kernel_msg p.tb1 bytes None in
      Osiris.send_pdu p.ad1 ~vci:1 msg;
      Msg.free_held msg ~dom:p.tb1.Testbed.kernel)
    [ 100; 200; 300 ];
  Des.run p.des;
  check Alcotest.(list int) "in order" [ 100; 200; 300 ] (List.rev !order)

let test_bidirectional_traffic () =
  let p = setup () in
  let rx1 = ref 0 and rx2 = ref 0 in
  Osiris.set_rx_handler p.ad1 (fun ~vci:_ msg ->
      incr rx1;
      Msg.free_held msg ~dom:p.tb1.Testbed.kernel);
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      incr rx2;
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  let m1 = kernel_msg p.tb1 512 None in
  let m2 = kernel_msg p.tb2 512 None in
  Osiris.send_pdu p.ad1 ~vci:1 m1;
  Osiris.send_pdu p.ad2 ~vci:2 m2;
  Msg.free_held m1 ~dom:p.tb1.Testbed.kernel;
  Msg.free_held m2 ~dom:p.tb2.Testbed.kernel;
  Des.run p.des;
  check Alcotest.int "host1 received" 1 !rx1;
  check Alcotest.int "host2 received" 1 !rx2

(* ------------------------------------------------------------------ *)
(* VCI demux into cached fbufs                                         *)
(* ------------------------------------------------------------------ *)

let test_registered_vci_uses_cached_fbufs () =
  let p = setup () in
  Osiris.register_path p.ad2 ~vci:5 ~domains:[ p.tb2.Testbed.kernel ];
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  for _ = 1 to 4 do
    let msg = kernel_msg p.tb1 8000 None in
    Osiris.send_pdu p.ad1 ~vci:5 msg;
    Msg.free_held msg ~dom:p.tb1.Testbed.kernel
  done;
  Des.run p.des;
  check Alcotest.int "no uncached arrivals" 0 (Osiris.uncached_rx_pdus p.ad2);
  match Osiris.rx_allocator p.ad2 ~vci:5 with
  | None -> Alcotest.fail "allocator missing"
  | Some a ->
      check Alcotest.int "buffer parked for reuse" 1
        (Allocator.free_list_length a)

let test_unknown_vci_falls_back_to_uncached () =
  let p = setup () in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  let msg = kernel_msg p.tb1 3000 None in
  Osiris.send_pdu p.ad1 ~vci:99 msg;
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  Des.run p.des;
  check Alcotest.int "uncached arrival" 1 (Osiris.uncached_rx_pdus p.ad2)

let test_path_limit_evicts_lru () =
  let p = setup () in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  for vci = 1 to Osiris.max_cached_paths do
    (* Distinct registration times make the LRU order deterministic. *)
    Machine.charge p.tb2.Testbed.m 1.0;
    Osiris.register_path p.ad2 ~vci ~domains:[ p.tb2.Testbed.kernel ]
  done;
  (* Touch path 1 so it is the most recently used; path 2 becomes LRU. *)
  let msg = kernel_msg p.tb1 256 None in
  Osiris.send_pdu p.ad1 ~vci:1 msg;
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  Des.run p.des;
  Osiris.register_path p.ad2 ~vci:17 ~domains:[ p.tb2.Testbed.kernel ];
  check Alcotest.int "one eviction" 1 (Osiris.evictions p.ad2);
  Alcotest.(check bool) "recently used path survives" true
    (Osiris.rx_allocator p.ad2 ~vci:1 <> None);
  Alcotest.(check bool) "LRU path evicted" true
    (Osiris.rx_allocator p.ad2 ~vci:2 = None);
  (* Traffic on the evicted path still flows, just uncached. *)
  let msg = kernel_msg p.tb1 256 None in
  Osiris.send_pdu p.ad1 ~vci:2 msg;
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  Des.run p.des;
  check Alcotest.int "uncached fallback" 1 (Osiris.uncached_rx_pdus p.ad2)

let test_rx_path_must_start_at_kernel () =
  let p = setup () in
  let user = Testbed.user_domain p.tb2 "app" in
  Alcotest.(check bool) "raises" true
    (try
       Osiris.register_path p.ad2 ~vci:3 ~domains:[ user ];
       false
     with Invalid_argument _ -> true)

let test_uncached_slack_is_cleared () =
  (* Security: the unused tail of an uncached receive buffer must not leak
     another domain's old data. *)
  let p = setup () in
  let k2 = p.tb2.Testbed.kernel in
  (* Dirty the free frames by allocating, writing and freeing. *)
  let dirty = kernel_msg p.tb2 16384 (Some "SECRETSECRET") in
  Msg.free_held dirty ~dom:k2;
  let leaked = ref "" in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      (* Read beyond the PDU inside the same fbuf. *)
      let fb = List.hd (Msg.fbufs msg) in
      leaked := Fbuf_api.read_string fb ~as_:k2 ~off:(Msg.length msg) ~len:6;
      Msg.free_held msg ~dom:k2);
  let msg = kernel_msg p.tb1 100 None in
  Osiris.send_pdu p.ad1 ~vci:88 msg;
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  Des.run p.des;
  check Alcotest.string "slack reads as zeros" (String.make 6 '\000') !leaked

let test_no_demux_pays_copy () =
  (* An Ethernet-style adapter (no hardware demux) must copy each PDU from
     the fixed pool into the chosen fbuf. *)
  let des = Des.create () in
  let tb1 = Testbed.create ~name:"tx" ~seed:1 () in
  let tb2 = Testbed.create ~name:"rx" ~seed:2 () in
  let ad1 =
    Osiris.create ~m:tb1.Testbed.m ~des ~region:tb1.Testbed.region
      ~kernel:tb1.Testbed.kernel ()
  in
  let ad2 =
    Osiris.create ~m:tb2.Testbed.m ~des ~region:tb2.Testbed.region
      ~kernel:tb2.Testbed.kernel ~hw_demux:false ()
  in
  Osiris.connect ad1 ad2;
  let got = ref "" in
  Osiris.set_rx_handler ad2 (fun ~vci:_ msg ->
      got := Msg.to_string msg ~as_:tb2.Testbed.kernel;
      Msg.free_held msg ~dom:tb2.Testbed.kernel);
  let bytes = 8192 in
  let cp = Machine.checkpoint tb2.Testbed.m in
  let msg = kernel_msg tb1 bytes (Some "ether") in
  Osiris.send_pdu ad1 ~vci:1 msg;
  Msg.free_held msg ~dom:tb1.Testbed.kernel;
  Des.run des;
  check Alcotest.int "one software copy" 1 (Osiris.software_demux_copies ad2);
  check Alcotest.string "data still intact"
    (String.init bytes (fun i -> "ether".[i mod 5]))
    !got;
  let _, busy0 = cp in
  let rx_cpu = Machine.busy_us tb2.Testbed.m -. busy0 in
  let copy_cost =
    float_of_int bytes
    *. tb2.Testbed.m.Machine.cost.Cost_model.copy_per_byte
  in
  Alcotest.(check bool)
    (Printf.sprintf "rx cpu %.0f includes the copy (%.0f)" rx_cpu copy_cost)
    true
    (rx_cpu >= copy_cost)

let test_multi_flow_paths_independent () =
  (* Four concurrent flows, each to its own path and cached pool: traffic
     on one flow must not disturb another's buffers, and each flow reaches
     buffer steady state. *)
  let p = setup () in
  let k2 = p.tb2.Testbed.kernel in
  let received = Array.make 5 0 in
  for vci = 1 to 4 do
    Osiris.register_path p.ad2 ~vci ~domains:[ k2 ]
  done;
  Osiris.set_rx_handler p.ad2 (fun ~vci msg ->
      received.(vci) <- received.(vci) + 1;
      Msg.free_held msg ~dom:k2);
  for round = 1 to 6 do
    ignore round;
    for vci = 1 to 4 do
      let msg = kernel_msg p.tb1 (4096 * vci) None in
      Osiris.send_pdu p.ad1 ~vci msg;
      Msg.free_held msg ~dom:p.tb1.Testbed.kernel
    done
  done;
  Des.run p.des;
  for vci = 1 to 4 do
    check Alcotest.int (Printf.sprintf "flow %d complete" vci) 6 received.(vci);
    match Osiris.rx_allocator p.ad2 ~vci with
    | None -> Alcotest.fail "allocator missing"
    | Some a ->
        check Alcotest.int
          (Printf.sprintf "flow %d steady state" vci)
          1
          (Allocator.free_list_length a)
  done;
  check Alcotest.int "nothing fell to uncached" 0
    (Osiris.uncached_rx_pdus p.ad2)

(* ------------------------------------------------------------------ *)
(* Bandwidth model                                                     *)
(* ------------------------------------------------------------------ *)

let measured_link_mbps p bytes npdus =
  let finish = ref 0.0 in
  let received = ref 0 in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      incr received;
      if !received = npdus then finish := Machine.now p.tb2.Testbed.m;
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  for _ = 1 to npdus do
    let msg = kernel_msg p.tb1 bytes None in
    Osiris.send_pdu p.ad1 ~vci:1 msg;
    Msg.free_held msg ~dom:p.tb1.Testbed.kernel
  done;
  Des.run p.des;
  float_of_int (bytes * npdus) *. 8.0 /. !finish

let test_link_respects_contended_cap () =
  let p = setup () in
  Osiris.register_path p.ad2 ~vci:1 ~domains:[ p.tb2.Testbed.kernel ];
  let mbps = measured_link_mbps p 16384 32 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f Mb/s within (250, 290)" mbps)
    true
    (mbps > 250.0 && mbps < 290.0)

let test_cell_accounting () =
  let p = setup () in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  let msg = kernel_msg p.tb1 480 None in
  Osiris.send_pdu p.ad1 ~vci:1 msg;
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  Des.run p.des;
  (* 480 payload + 8 trailer = 488 -> ceil(488/48) = 11 cells. *)
  check Alcotest.int "cells" 11 (Osiris.cells_sent p.ad1)

let test_dma_unblocks_sender_cpu () =
  let p = setup () in
  Osiris.set_rx_handler p.ad2 (fun ~vci:_ msg ->
      Msg.free_held msg ~dom:p.tb2.Testbed.kernel);
  let m1 = p.tb1.Testbed.m in
  let msg = kernel_msg p.tb1 65536 None in
  let t0 = Machine.now m1 in
  Osiris.send_pdu p.ad1 ~vci:1 msg;
  let cpu_time = Machine.now m1 -. t0 in
  Msg.free_held msg ~dom:p.tb1.Testbed.kernel;
  (* 64 KB at ~285 Mb/s is ~1.8 ms of wire time; the CPU must only pay the
     driver cost, not wait for the DMA. *)
  Alcotest.(check bool)
    (Printf.sprintf "cpu %.0f us << wire time" cpu_time)
    true (cpu_time < 500.0);
  Des.run p.des

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "netdev"
    [
      ( "delivery",
        [
          tc "pdu integrity" `Quick test_pdu_delivery_integrity;
          tc "unconnected send rejected" `Quick test_unconnected_send_rejected;
          tc "multi-pdu ordering" `Quick test_multi_pdu_ordering;
          tc "bidirectional traffic" `Quick test_bidirectional_traffic;
        ] );
      ( "vci-demux",
        [
          tc "registered vci uses cached fbufs" `Quick
            test_registered_vci_uses_cached_fbufs;
          tc "unknown vci falls back" `Quick
            test_unknown_vci_falls_back_to_uncached;
          tc "16-path LRU replacement" `Quick test_path_limit_evicts_lru;
          tc "rx path starts at kernel" `Quick test_rx_path_must_start_at_kernel;
          tc "uncached slack cleared" `Quick test_uncached_slack_is_cleared;
          tc "no-demux adapter pays copy" `Quick test_no_demux_pays_copy;
          tc "multi-flow paths independent" `Quick
            test_multi_flow_paths_independent;
        ] );
      ( "bandwidth",
        [
          tc "contended cap" `Quick test_link_respects_contended_cap;
          tc "cell accounting" `Quick test_cell_accounting;
          tc "dma unblocks sender" `Quick test_dma_unblocks_sender_cpu;
        ] );
    ]
