(* Loose wall-clock guard on the allocation fast path.

   The claim under test is structural, not a benchmark number: a cached
   allocation (pop from a size-class free list) must never cost more real
   time than a fresh allocation (address-range carve + per-page frame
   alloc + mapping). If the fast path regresses to scanning the parked
   population — the O(n) behaviour this PR removed — the second scenario
   below pushes it past the fresh path and the test fails.

   Assertions compare the two measured paths against each other, never
   against an absolute time, so CI machine speed does not matter. *)

open Fbufs
module Testbed = Fbufs_harness.Testbed

let time_ns iters f =
  (* One warmup pass keeps first-touch effects out of the measurement. *)
  f ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  ((Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters, ())

let alloc_free alloc dom npages () =
  let fb = Allocator.alloc alloc ~npages in
  Transfer.free fb ~dom

(* Fresh-path baseline: uncached fbufs re-map every page on each cycle. *)
let fresh_ns tb app =
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.volatile_only in
  let ns, () = time_ns 5_000 (alloc_free alloc app 8) in
  ns

let test_cached_not_slower_than_fresh () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let fresh = fresh_ns tb app in
  let cached = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let ns, () = time_ns 5_000 (alloc_free cached app 8) in
  Alcotest.(check bool)
    (Printf.sprintf "cached alloc (%.0f ns) <= fresh alloc (%.0f ns)" ns fresh)
    true (ns <= fresh)

let test_cached_unaffected_by_large_mixed_free_list () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let fresh = fresh_ns tb app in
  let cached = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  (* Park ~900 one-page buffers in a *different* size class. An O(n) scan
     of the parked population would have to wade through all of them on
     every 8-page allocation; the size-class lookup never sees them. *)
  let parked =
    List.init 900 (fun _ -> Allocator.alloc cached ~npages:1)
  in
  List.iter (fun fb -> Transfer.free fb ~dom:app) parked;
  let ns, () = time_ns 5_000 (alloc_free cached app 8) in
  Alcotest.(check bool)
    (Printf.sprintf
       "cached alloc with 900 parked strangers (%.0f ns) <= fresh (%.0f ns)"
       ns fresh)
    true (ns <= fresh)

let () =
  Alcotest.run "perf_guard"
    [
      ( "allocation fast path",
        [
          Alcotest.test_case "cached <= fresh" `Quick
            test_cached_not_slower_than_fresh;
          Alcotest.test_case "immune to free-list population" `Quick
            test_cached_unaffected_by_large_mixed_free_list;
        ] );
    ]
