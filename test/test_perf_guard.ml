(* Loose wall-clock guard on the allocation fast path.

   The claim under test is structural, not a benchmark number: a cached
   allocation (pop from a size-class free list) must never cost more real
   time than a fresh allocation (address-range carve + per-page frame
   alloc + mapping). If the fast path regresses to scanning the parked
   population, the second scenario below pushes it past the fresh path
   and the test fails.

   Assertions compare the two measured paths against each other, never
   against an absolute time, so CI machine speed does not matter. To keep
   one unlucky scheduling quantum from deciding the verdict, each test
   interleaves five fresh/cached trial pairs — so drift (thermal, cache,
   competing load) hits both paths alike — and asserts on the medians. *)

open Fbufs
module Testbed = Fbufs_harness.Testbed

let trials = 5
let iters_per_trial = 1_000

let time_ns iters f =
  (* One warmup pass keeps first-touch effects out of the measurement. *)
  f ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let median samples =
  let a = List.sort compare samples in
  List.nth a (List.length a / 2)

(* Five (fresh, cached) pairs measured back to back; medians of each. *)
let interleaved_medians ~fresh ~cached =
  let fs = ref [] and cs = ref [] in
  for _ = 1 to trials do
    fs := time_ns iters_per_trial fresh :: !fs;
    cs := time_ns iters_per_trial cached :: !cs
  done;
  (median !fs, median !cs)

let alloc_free alloc dom npages () =
  let fb = Allocator.alloc alloc ~npages in
  Transfer.free fb ~dom

let check_cached_not_slower what ~fresh ~cached =
  let fresh_ns, cached_ns = interleaved_medians ~fresh ~cached in
  Alcotest.(check bool)
    (Printf.sprintf
       "%s: median cached alloc (%.0f ns) <= median fresh alloc (%.0f ns)"
       what cached_ns fresh_ns)
    true (cached_ns <= fresh_ns)

(* Fresh-path baseline: uncached fbufs re-map every page on each cycle. *)
let fresh_path tb app =
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.volatile_only in
  alloc_free alloc app 8

let test_cached_not_slower_than_fresh () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let cached = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  check_cached_not_slower "plain"
    ~fresh:(fresh_path tb app)
    ~cached:(alloc_free cached app 8)

let test_cached_unaffected_by_large_mixed_free_list () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let cached = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  (* Park ~900 one-page buffers in a *different* size class. An O(n) scan
     of the parked population would have to wade through all of them on
     every 8-page allocation; the size-class lookup never sees them. *)
  let parked = List.init 900 (fun _ -> Allocator.alloc cached ~npages:1) in
  List.iter (fun fb -> Transfer.free fb ~dom:app) parked;
  check_cached_not_slower "900 parked strangers"
    ~fresh:(fresh_path tb app)
    ~cached:(alloc_free cached app 8)

(* Metrics are pay-for-play: every instrumentation site guards on the
   machine carrying a registry instance, so a run without one ("disabled")
   does no registry work at all. Structural claim, measured structurally:
   the same alloc/free cycle on an unmetered machine must not be slower
   than on a metered one (which does strictly more — hashtable cells,
   ledger adds) beyond scheduling noise. *)
let test_metrics_disabled_not_slower_than_enabled () =
  let unmetered = Testbed.create () in
  let app_u = Testbed.user_domain unmetered "app" in
  let alloc_u =
    Testbed.allocator unmetered ~domains:[ app_u ] Fbuf.cached_volatile
  in
  let mx = Fbufs_metrics.Metrics.create () in
  let saved = !Fbufs_sim.Machine.default_metrics in
  Fbufs_sim.Machine.default_metrics := Some mx;
  let metered =
    Fun.protect
      ~finally:(fun () -> Fbufs_sim.Machine.default_metrics := saved)
      (fun () -> Testbed.create ())
  in
  let app_m = Testbed.user_domain metered "app" in
  let alloc_m =
    Testbed.allocator metered ~domains:[ app_m ] Fbuf.cached_volatile
  in
  let enabled_ns, disabled_ns =
    interleaved_medians
      ~fresh:(alloc_free alloc_m app_m 8)
      ~cached:(alloc_free alloc_u app_u 8)
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "median disabled cycle (%.0f ns) <= 1.05 * median metered cycle \
        (%.0f ns)"
       disabled_ns enabled_ns)
    true
    (disabled_ns <= enabled_ns *. 1.05)

(* Causal spans are pay-for-play the same way: every span entry point
   guards on the machine carrying a sink, so a run without one pays a
   single pointer comparison per site. The workload is identical on both
   sides — the transfer bracket is part of the cycle — and the recording
   side does strictly more (context stack, per-span charge cells). *)
let test_spans_disabled_not_slower_than_enabled () =
  let module Machine = Fbufs_sim.Machine in
  let plain = Testbed.create () in
  let app_p = Testbed.user_domain plain "app" in
  let alloc_p =
    Testbed.allocator plain ~domains:[ app_p ] Fbuf.cached_volatile
  in
  let spanned = Testbed.create () in
  Machine.set_spans spanned.Testbed.m (Some (Fbufs_span.Span.create ()));
  let app_s = Testbed.user_domain spanned "app" in
  let alloc_s =
    Testbed.allocator spanned ~domains:[ app_s ] Fbuf.cached_volatile
  in
  let cycle tb alloc dom () =
    Machine.with_transfer tb.Testbed.m "cycle" (alloc_free alloc dom 8)
  in
  let enabled_ns, disabled_ns =
    interleaved_medians
      ~fresh:(cycle spanned alloc_s app_s)
      ~cached:(cycle plain alloc_p app_p)
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "median unspanned cycle (%.0f ns) <= 1.05 * median recording cycle \
        (%.0f ns)"
       disabled_ns enabled_ns)
    true
    (disabled_ns <= enabled_ns *. 1.05)

(* Same structural claim for the quantile sketch: observation sites guard
   on the machine carrying a registry, so with none installed a sketch
   observation site costs one match on [Machine.metrics]. *)
let guard_sketch =
  Fbufs_metrics.Metrics.sketch ~name:"fbufs_perf_guard_wall_us"
    ~help:"perf-guard fixture sketch" ()

let test_sketch_disabled_not_slower_than_enabled () =
  let module Mx = Fbufs_metrics.Metrics in
  let unmetered = Testbed.create () in
  let app_u = Testbed.user_domain unmetered "app" in
  let alloc_u =
    Testbed.allocator unmetered ~domains:[ app_u ] Fbuf.cached_volatile
  in
  let mx = Mx.create () in
  let saved = !Fbufs_sim.Machine.default_metrics in
  Fbufs_sim.Machine.default_metrics := Some mx;
  let metered =
    Fun.protect
      ~finally:(fun () -> Fbufs_sim.Machine.default_metrics := saved)
      (fun () -> Testbed.create ())
  in
  let app_m = Testbed.user_domain metered "app" in
  let alloc_m =
    Testbed.allocator metered ~domains:[ app_m ] Fbuf.cached_volatile
  in
  let cycle tb alloc dom () =
    alloc_free alloc dom 8 ();
    (* The transfer-wall observation site, guarded exactly like the
       harness's: registry absent means no sketch work at all. *)
    match Fbufs_sim.Machine.metrics tb.Testbed.m with
    | None -> ()
    | Some mx -> Mx.observe mx guard_sketch 42.0
  in
  let enabled_ns, disabled_ns =
    interleaved_medians
      ~fresh:(cycle metered alloc_m app_m)
      ~cached:(cycle unmetered alloc_u app_u)
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "median sketchless cycle (%.0f ns) <= 1.05 * median sketching cycle \
        (%.0f ns)"
       disabled_ns enabled_ns)
    true
    (disabled_ns <= enabled_ns *. 1.05)

(* The TLB deferral rework keeps the PR 6 immediate-shootdown behaviour
   reachable behind [Pmap.elision_enabled]; its simulated costs in that
   mode are pinned byte-for-byte by the noelide goldens. This guards the
   real cost: the generation tags and the pending queue the rework added
   must not tax the legacy path — an elision-off alloc/touch/free cycle
   (which pays every shootdown eagerly and uses none of the machinery)
   stays within 1.05x of the elision-on cycle that benefits from it. *)
let test_elision_off_within_noise_of_on () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let cached = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let cycle flag () =
    Fbufs_vm.Pmap.elision_enabled := flag;
    let fb = Allocator.alloc cached ~npages:8 in
    Fbufs_vm.Access.touch_write app ~vaddr:(Fbuf.vaddr fb) ~npages:8;
    Transfer.free fb ~dom:app
  in
  let on_ns, off_ns =
    Fun.protect ~finally:(fun () -> Fbufs_vm.Pmap.elision_enabled := true)
    @@ fun () -> interleaved_medians ~fresh:(cycle true) ~cached:(cycle false)
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "median elision-off cycle (%.0f ns) <= 1.05 * median elision-on \
        cycle (%.0f ns)"
       off_ns on_ns)
    true
    (off_ns <= on_ns *. 1.05)

(* Buffer-sharing hooks are pay-for-play the same way: a Static policy's
   hooks maintain one integer account and never take the admission path
   ([sh_dynamic] is false), so a managed alloc/free cycle does strictly
   bounded extra work. The bare cycle must stay within noise of the
   managed one — and the managed one, doing more, must not be the faster
   side by more than noise either; one bound per direction. *)
let test_static_share_within_noise_of_bare () =
  let bare_tb = Testbed.create () in
  let app_b = Testbed.user_domain bare_tb "app" in
  let alloc_b =
    Testbed.allocator bare_tb ~domains:[ app_b ] Fbuf.cached_volatile
  in
  let managed_tb = Testbed.create () in
  let app_m = Testbed.user_domain managed_tb "app" in
  let alloc_m =
    Testbed.allocator managed_tb ~domains:[ app_m ] Fbuf.cached_volatile
  in
  let pol =
    Fbufs_policy.Policy.create managed_tb.Testbed.region
      Fbufs_policy.Policy.Static
  in
  Fbufs_policy.Policy.register pol alloc_m ~klass:Fbufs_policy.Policy.Latency;
  let managed_ns, bare_ns =
    interleaved_medians
      ~fresh:(alloc_free alloc_m app_m 8)
      ~cached:(alloc_free alloc_b app_b 8)
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "median bare cycle (%.0f ns) <= 1.05 * median static-managed cycle \
        (%.0f ns)"
       bare_ns managed_ns)
    true
    (bare_ns <= managed_ns *. 1.05)

(* The lint analyzer (PR 4) parses the whole tree with compiler-libs; it
   must never be linked into the benchmark executable or the harness it
   measures — an accidental dependency would drag parser tables and
   startup work into the hot path's process. The link lists are data, so
   check them as data. *)
let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let in_tree rel =
  (* cwd is test/ under dune runtest, the repo root under dune exec. *)
  if Sys.file_exists ("../" ^ rel) then "../" ^ rel else rel

let test_lint_not_linked_into_bench () =
  (* Layer C reads *sources* across the whole tree, which must never
     tempt anyone to link the analyzer library into what it analyzes:
     the benchmark, the harness it is built from, or the examples. *)
  List.iter
    (fun dune_file ->
      let src = read_file (in_tree dune_file) in
      Alcotest.(check bool)
        (Printf.sprintf "%s does not link fbufs_lint" dune_file)
        false
        (contains src "fbufs_lint"))
    [ "bench/dune"; "lib/harness/dune"; "examples/dune" ]

(* Same isolation for the policy layer: the benchmark measures the bare
   mechanism, so the policy library (admission hooks, event log) must
   never be linked into it or into the harness it is built from —
   attaching a policy is an explicit per-experiment act. *)
let test_policy_not_linked_into_bench () =
  List.iter
    (fun dune_file ->
      let src = read_file (in_tree dune_file) in
      Alcotest.(check bool)
        (Printf.sprintf "%s does not link fbufs_policy" dune_file)
        false
        (contains src "fbufs_policy"))
    [ "bench/dune"; "lib/harness/dune" ]

(* And for the observability layer: recorder, monitors and trend live
   outside the measured mechanism; arming them is an explicit per-run
   act, never a link-time default of the benchmark or harness. *)
let test_obs_not_linked_into_bench () =
  List.iter
    (fun dune_file ->
      let src = read_file (in_tree dune_file) in
      Alcotest.(check bool)
        (Printf.sprintf "%s does not link fbufs_obs" dune_file)
        false
        (contains src "fbufs_obs"))
    [ "bench/dune"; "lib/harness/dune"; "examples/dune" ]

(* The observability layer rides the same sink refs: with no recorder
   armed and no monitor installed, a cycle pays nothing beyond the
   existing pointer comparisons. The bare side must stay within noise of
   the armed side, which does strictly more (ring push, reservoir offer,
   rule evaluation per sequence point). *)
let test_obs_unarmed_pays_nothing () =
  let module R = Fbufs_obs.Recorder in
  let module Mon = Fbufs_obs.Monitor in
  let bare_tb = Testbed.create () in
  let app_b = Testbed.user_domain bare_tb "app" in
  let alloc_b =
    Testbed.allocator bare_tb ~domains:[ app_b ] Fbuf.cached_volatile
  in
  let r = R.create { R.default with dir = "obs-perf-unused" } in
  let mon = Mon.create ~recorder:r Mon.default in
  let armed_tb, armed_ns, bare_ns =
    R.with_armed r @@ fun () ->
    Mon.with_installed mon @@ fun () ->
    let armed_tb = Testbed.create () in
    let app_a = Testbed.user_domain armed_tb "app" in
    let alloc_a =
      Testbed.allocator armed_tb ~domains:[ app_a ] Fbuf.cached_volatile
    in
    let cycle tb alloc dom () =
      alloc_free alloc dom 8 ();
      Fbufs_sim.Machine.seq_point tb.Testbed.m "perf"
    in
    let armed_ns, bare_ns =
      interleaved_medians
        ~fresh:(cycle armed_tb alloc_a app_a)
        ~cached:(cycle bare_tb alloc_b app_b)
    in
    (armed_tb, armed_ns, bare_ns)
  in
  ignore armed_tb;
  Alcotest.(check bool)
    (Printf.sprintf
       "median unarmed cycle (%.0f ns) <= 1.05 * median armed cycle (%.0f ns)"
       bare_ns armed_ns)
    true
    (bare_ns <= armed_ns *. 1.05)

(* End-to-end bound on the armed cost: a Table 1 run with the recorder
   tapping every event at default sampling stays within 1.10x of the
   bare run. Whole runs are the unit of measurement here, so one run per
   trial, medians over five. *)
let test_recorder_armed_table1_overhead () =
  let module R = Fbufs_obs.Recorder in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let bare () = ignore (Fbufs_harness.Exp_table1.run ()) in
  let armed () =
    let r = R.create { R.default with dir = "obs-perf-unused" } in
    R.with_armed r bare
  in
  let armed_s = ref [] and bare_s = ref [] in
  (* warmup one pair, then interleave *)
  bare ();
  armed ();
  for _ = 1 to trials do
    armed_s := time_once armed :: !armed_s;
    bare_s := time_once bare :: !bare_s
  done;
  let armed_m = median !armed_s and bare_m = median !bare_s in
  Alcotest.(check bool)
    (Printf.sprintf
       "median armed table1 (%.1f ms) <= 1.10 * median bare table1 (%.1f ms)"
       (armed_m *. 1e3) (bare_m *. 1e3))
    true
    (armed_m <= bare_m *. 1.10)

(* The interprocedural layer re-analyzes the whole tree on every lint
   run (parse, call graph, SCC fixpoint, abstract interpretation), so a
   quadratic blowup in the fixpoint or resolver would land here first.
   The bound is a deliberately generous absolute ceiling — the analysis
   currently finishes in well under a second — asserted on the median of
   five runs so one cold page cache cannot decide the verdict. *)
let lint_budget_s = 20.0

let test_whole_tree_lint_within_budget () =
  match Fbufs_lint.Driver.find_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let samples = ref [] in
      for _ = 1 to trials do
        let t0 = Unix.gettimeofday () in
        let (_ : Fbufs_lint.Finding.t list) = Fbufs_lint.Driver.run ~root in
        samples := (Unix.gettimeofday () -. t0) :: !samples
      done;
      let m = median !samples in
      Alcotest.(check bool)
        (Printf.sprintf "median whole-tree lint %.2fs within %.0fs budget" m
           lint_budget_s)
        true (m < lint_budget_s)

let () =
  Alcotest.run "perf_guard"
    [
      ( "allocation fast path",
        [
          Alcotest.test_case "cached <= fresh" `Quick
            test_cached_not_slower_than_fresh;
          Alcotest.test_case "immune to free-list population" `Quick
            test_cached_unaffected_by_large_mixed_free_list;
        ] );
      ( "metrics overhead",
        [
          Alcotest.test_case "disabled pays nothing" `Quick
            test_metrics_disabled_not_slower_than_enabled;
          Alcotest.test_case "disabled spans pay nothing" `Quick
            test_spans_disabled_not_slower_than_enabled;
          Alcotest.test_case "disabled sketch pays nothing" `Quick
            test_sketch_disabled_not_slower_than_enabled;
        ] );
      ( "tlb elision overhead",
        [
          Alcotest.test_case "elision-off path untaxed" `Quick
            test_elision_off_within_noise_of_on;
        ] );
      ( "policy overhead",
        [
          Alcotest.test_case "static share within noise of bare" `Quick
            test_static_share_within_noise_of_bare;
        ] );
      ( "link isolation",
        [
          Alcotest.test_case "lint stays off the hot path" `Quick
            test_lint_not_linked_into_bench;
          Alcotest.test_case "policy stays off the hot path" `Quick
            test_policy_not_linked_into_bench;
          Alcotest.test_case "obs stays off the hot path" `Quick
            test_obs_not_linked_into_bench;
        ] );
      ( "obs overhead",
        [
          Alcotest.test_case "unarmed pays nothing" `Quick
            test_obs_unarmed_pays_nothing;
          Alcotest.test_case "armed table1 within 1.10x" `Slow
            test_recorder_armed_table1_overhead;
        ] );
      ( "lint runtime",
        [
          Alcotest.test_case "whole-tree lint within budget" `Slow
            test_whole_tree_lint_within_budget;
        ] );
    ]
