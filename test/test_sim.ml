(* Unit and property tests for the simulated-hardware substrate. *)

open Fbufs_sim

let check = Alcotest.check
let fl = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_starts_at_zero () =
  let c = Clock.create () in
  check fl "initial" 0.0 (Clock.now c)

let test_clock_advance_accumulates () =
  let c = Clock.create () in
  Clock.advance c 1.5;
  Clock.advance c 2.25;
  check fl "sum" 3.75 (Clock.now c)

let test_clock_advance_negative_rejected () =
  let c = Clock.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Clock.advance: negative increment") (fun () ->
      Clock.advance c (-1.0))

let test_clock_advance_to_forward_only () =
  let c = Clock.create () in
  Clock.advance c 10.0;
  Clock.advance_to c 5.0;
  check fl "no rewind" 10.0 (Clock.now c);
  Clock.advance_to c 12.0;
  check fl "forward" 12.0 (Clock.now c)

let test_clock_reset () =
  let c = Clock.create () in
  Clock.advance c 7.0;
  Clock.reset c;
  check fl "reset" 0.0 (Clock.now c)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let dec = Cost_model.decstation_5000_200

let test_cost_page_words () =
  check Alcotest.int "1024 words/page" 1024 (Cost_model.page_words dec)

let test_cost_effective_net_rate () =
  (* The three caps of the paper: 516 net link, 367 DMA, 285 contended.
     The effective rate must model the contended DMA-bound case. *)
  let r = Cost_model.effective_net_mbps dec in
  Alcotest.(check bool)
    (Printf.sprintf "effective rate %.1f in [270, 300]" r)
    true
    (r > 270.0 && r < 300.0)

let test_cost_dma_bound_without_contention () =
  let c = { dec with Cost_model.bus_contention = 0.0 } in
  let r = Cost_model.effective_net_mbps c in
  Alcotest.(check bool)
    (Printf.sprintf "DMA-bound rate %.1f in [350, 380]" r)
    true
    (r > 350.0 && r < 380.0)

let test_cost_wire_bound_with_fast_dma () =
  let c =
    { dec with Cost_model.bus_contention = 0.0; dma_startup = 0.0;
      dma_mbps = 100_000.0 }
  in
  let r = Cost_model.effective_net_mbps c in
  (* 622 * 48/53 = 563 Mb/s of payload when purely wire-limited. *)
  Alcotest.(check bool)
    (Printf.sprintf "wire-bound rate %.1f in [555, 570]" r)
    true
    (r > 555.0 && r < 570.0)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.next a = Rng.next b)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.next a = Rng.next b)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng floats stay in bounds" ~count:200
    QCheck.(pair small_int pos_float)
    (fun (seed, bound) ->
      QCheck.assume (bound > 1e-6 && bound < 1e9);
      let r = Rng.create seed in
      let v = Rng.float r bound in
      v >= 0.0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  check Alcotest.int "absent is zero" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.incr s "x";
  Stats.add s "x" 3;
  check Alcotest.int "accumulated" 5 (Stats.get s "x")

let test_stats_reset () =
  let s = Stats.create () in
  Stats.incr s "x";
  Stats.reset s;
  check Alcotest.int "cleared" 0 (Stats.get s "x")

let test_stats_to_list_sorted () =
  let s = Stats.create () in
  Stats.incr s "b";
  Stats.incr s "a";
  Stats.incr s "c";
  check
    Alcotest.(list string)
    "sorted names" [ "a"; "b"; "c" ]
    (List.map fst (Stats.to_list s))

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)
(* ------------------------------------------------------------------ *)

let pm () = Phys_mem.create ~page_size:4096 ~nframes:8

let test_pmem_alloc_free_roundtrip () =
  let p = pm () in
  check Alcotest.int "all free" 8 (Phys_mem.free_frames p);
  let f = Phys_mem.alloc p in
  check Alcotest.int "one gone" 7 (Phys_mem.free_frames p);
  check Alcotest.int "refcount 1" 1 (Phys_mem.refcount p f);
  Phys_mem.decref p f;
  check Alcotest.int "back" 8 (Phys_mem.free_frames p)

let test_pmem_refcount_sharing () =
  let p = pm () in
  let f = Phys_mem.alloc p in
  Phys_mem.incref p f;
  Phys_mem.decref p f;
  check Alcotest.int "still live" 1 (Phys_mem.refcount p f);
  check Alcotest.int "not freed" 7 (Phys_mem.free_frames p);
  Phys_mem.decref p f;
  check Alcotest.int "freed" 8 (Phys_mem.free_frames p)

let test_pmem_exhaustion () =
  let p = pm () in
  for _ = 1 to 8 do
    ignore (Phys_mem.alloc p)
  done;
  Alcotest.check_raises "oom" Phys_mem.Out_of_memory (fun () ->
      ignore (Phys_mem.alloc p))

let test_pmem_data_survives () =
  let p = pm () in
  let f = Phys_mem.alloc p in
  Phys_mem.poke p f 100 'Z';
  check Alcotest.char "read back" 'Z' (Bytes.get (Phys_mem.data p f) 100)

let test_pmem_no_implicit_zeroing () =
  (* Frames are recycled dirty unless explicitly zeroed: that is the
     security property whose cost the paper quantifies at 57 us/page. *)
  let p = pm () in
  let f = Phys_mem.alloc p in
  Phys_mem.poke p f 0 'S';
  Phys_mem.decref p f;
  let f' = Phys_mem.alloc p in
  check Alcotest.int "same frame recycled" f f';
  check Alcotest.char "old data leaks" 'S' (Bytes.get (Phys_mem.data p f') 0);
  Phys_mem.zero p f';
  check Alcotest.char "zeroed" '\000' (Bytes.get (Phys_mem.data p f') 0)

let test_pmem_copy_frame () =
  let p = pm () in
  let a = Phys_mem.alloc p and b = Phys_mem.alloc p in
  Phys_mem.fill p a 'q';
  Phys_mem.copy_frame p ~src:a ~dst:b;
  check Alcotest.char "copied" 'q' (Bytes.get (Phys_mem.data p b) 4095)

let test_pmem_free_frame_use_rejected () =
  let p = pm () in
  let f = Phys_mem.alloc p in
  Phys_mem.decref p f;
  Alcotest.check_raises "data on free frame"
    (Invalid_argument "Phys_mem.data: frame is free") (fun () ->
      ignore (Phys_mem.data p f))

(* ------------------------------------------------------------------ *)
(* Tlb                                                                 *)
(* ------------------------------------------------------------------ *)

let tlb () = Tlb.create ~entries:4 (Rng.create 9)

let check_probe msg expected actual =
  let s = function
    | Tlb.Hit -> "hit"
    | Tlb.Hit_readonly -> "hit-ro"
    | Tlb.Miss -> "miss"
  in
  Alcotest.(check string) msg (s expected) (s actual)

let test_tlb_miss_then_hit () =
  let t = tlb () in
  check_probe "cold" Tlb.Miss (Tlb.probe t ~asid:1 ~vpn:10 ~write:false)

let test_tlb_insert_and_hit () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:true;
  check_probe "hit" Tlb.Hit (Tlb.probe t ~asid:1 ~vpn:10 ~write:true)

let test_tlb_asid_isolation () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:true;
  check_probe "other asid misses" Tlb.Miss
    (Tlb.probe t ~asid:2 ~vpn:10 ~write:false)

let test_tlb_readonly_write_faults () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:false;
  check_probe "read ok" Tlb.Hit (Tlb.probe t ~asid:1 ~vpn:10 ~write:false);
  check_probe "write mod-fault" Tlb.Hit_readonly
    (Tlb.probe t ~asid:1 ~vpn:10 ~write:true)

let test_tlb_capacity_eviction () =
  let t = tlb () in
  for vpn = 0 to 5 do
    Tlb.insert t ~asid:1 ~vpn ~writable:false
  done;
  check Alcotest.int "bounded" 4 (Tlb.valid_entries t)

let test_tlb_invalidate () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:true;
  Tlb.invalidate t ~asid:1 ~vpn:10;
  check_probe "gone" Tlb.Miss (Tlb.probe t ~asid:1 ~vpn:10 ~write:false)

let test_tlb_flush_asid_selective () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:true;
  Tlb.insert t ~asid:2 ~vpn:20 ~writable:true;
  Tlb.flush_asid t ~asid:1;
  check_probe "asid 1 gone" Tlb.Miss (Tlb.probe t ~asid:1 ~vpn:10 ~write:false);
  check_probe "asid 2 stays" Tlb.Hit (Tlb.probe t ~asid:2 ~vpn:20 ~write:false)

let test_tlb_reinsert_updates_permission () =
  let t = tlb () in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:false;
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:true;
  check Alcotest.int "no duplicate" 1 (Tlb.valid_entries t);
  check_probe "writable now" Tlb.Hit (Tlb.probe t ~asid:1 ~vpn:10 ~write:true)

let test_tlb_defer_cancel_take () =
  let t = tlb () in
  Tlb.defer t ~asid:1 ~vpn:10 ~frame:5 ~writable:true;
  Tlb.defer t ~asid:1 ~vpn:11 ~frame:6 ~writable:false;
  check Alcotest.int "two queued" 2 (Tlb.pending_count t);
  Alcotest.(check bool) "covered" true (Tlb.pending_covers t ~asid:1 ~vpn:10);
  (match Tlb.find_pending t ~asid:1 ~vpn:10 with
  | Some p ->
      check Alcotest.int "frame recorded" 5 p.Tlb.p_frame;
      Alcotest.(check bool) "writability recorded" true p.Tlb.p_writable
  | None -> Alcotest.fail "pending not found");
  Tlb.cancel_pending t ~asid:1 ~vpn:10;
  check Alcotest.int "one left" 1 (Tlb.pending_count t);
  Alcotest.(check (list (pair int int)))
    "take drains, sorted" [ (1, 11) ] (Tlb.take_pending t);
  check Alcotest.int "empty" 0 (Tlb.pending_count t)

let test_tlb_flush_asid_drops_pendings () =
  let t = tlb () in
  Tlb.defer t ~asid:1 ~vpn:10 ~frame:5 ~writable:true;
  Tlb.defer t ~asid:2 ~vpn:20 ~frame:6 ~writable:true;
  Tlb.flush_asid t ~asid:1;
  Alcotest.(check bool) "asid 1 pending dropped" false
    (Tlb.pending_covers t ~asid:1 ~vpn:10);
  Alcotest.(check bool) "asid 2 pending kept" true
    (Tlb.pending_covers t ~asid:2 ~vpn:20)

(* The generation word is finite. When a flush would reach [gen_limit]
   the TLB falls back to an eager per-entry sweep and resets the word to
   zero — and that sweep must clear every entry tagged for the asid, or
   an old entry whose tag happens to equal the wrapped generation would
   resurrect with its stale translation. *)
let test_tlb_generation_wraparound () =
  let t = Tlb.create ~entries:4 ~gen_limit:3 (Rng.create 9) in
  Tlb.insert t ~asid:1 ~vpn:10 ~writable:true;
  Tlb.flush_asid t ~asid:1;
  check Alcotest.int "gen bumped" 1 (Tlb.generation t ~asid:1);
  Tlb.insert t ~asid:1 ~vpn:11 ~writable:true;
  Tlb.flush_asid t ~asid:1;
  check Alcotest.int "gen bumped again" 2 (Tlb.generation t ~asid:1);
  Tlb.insert t ~asid:1 ~vpn:12 ~writable:true;
  (* 2 + 1 >= gen_limit: eager sweep instead of a bump. *)
  Tlb.flush_asid t ~asid:1;
  check Alcotest.int "gen wrapped to zero" 0 (Tlb.generation t ~asid:1);
  check_probe "gen-0 era entry did not resurrect" Tlb.Miss
    (Tlb.probe t ~asid:1 ~vpn:10 ~write:false);
  check_probe "gen-1 era entry did not resurrect" Tlb.Miss
    (Tlb.probe t ~asid:1 ~vpn:11 ~write:false);
  check_probe "gen-2 era entry swept" Tlb.Miss
    (Tlb.probe t ~asid:1 ~vpn:12 ~write:false);
  check Alcotest.int "no live entries" 0 (Tlb.valid_entries t);
  Tlb.insert t ~asid:1 ~vpn:13 ~writable:true;
  check_probe "post-wrap insert lives" Tlb.Hit
    (Tlb.probe t ~asid:1 ~vpn:13 ~write:false);
  check Alcotest.int "exactly the fresh entry" 1 (Tlb.valid_entries t)

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let test_machine_charge_advances_clock_and_busy () =
  let m = Machine.create ~nframes:16 () in
  Machine.charge m 5.0;
  check fl "clock" 5.0 (Machine.now m);
  check fl "busy" 5.0 (Machine.busy_us m)

let test_machine_load_accounting () =
  let m = Machine.create ~nframes:16 () in
  let cp = Machine.checkpoint m in
  Machine.charge m 30.0;
  Machine.elapse_to m 100.0;
  let load = Machine.load_since m cp in
  check fl "30% busy" 0.3 load

let test_machine_fresh_ids_unique () =
  let m = Machine.create ~nframes:16 () in
  let a = Machine.fresh_id m and b = Machine.fresh_id m in
  Alcotest.(check bool) "distinct" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Des                                                                 *)
(* ------------------------------------------------------------------ *)

let test_des_orders_by_time () =
  let d = Des.create () in
  let log = ref [] in
  Des.schedule d 3.0 (fun () -> log := 3 :: !log);
  Des.schedule d 1.0 (fun () -> log := 1 :: !log);
  Des.schedule d 2.0 (fun () -> log := 2 :: !log);
  Des.run d;
  check Alcotest.(list int) "order" [ 1; 2; 3 ] (List.rev !log)

let test_des_fifo_among_equal_times () =
  let d = Des.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Des.schedule d 1.0 (fun () -> log := i :: !log)
  done;
  Des.run d;
  check Alcotest.(list int) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_des_handler_schedules_more () =
  let d = Des.create () in
  let log = ref [] in
  Des.schedule d 1.0 (fun () ->
      log := 1 :: !log;
      Des.schedule d 2.0 (fun () -> log := 2 :: !log));
  Des.run d;
  check Alcotest.(list int) "chained" [ 1; 2 ] (List.rev !log)

let test_des_rejects_past () =
  let d = Des.create () in
  Des.schedule d 5.0 ignore;
  ignore (Des.step d);
  Alcotest.(check bool) "raises" true
    (try
       Des.schedule d 1.0 ignore;
       false
     with Invalid_argument _ -> true)

let test_des_now_tracks_dispatch () =
  let d = Des.create () in
  Des.schedule d 4.5 ignore;
  ignore (Des.step d);
  check fl "now" 4.5 (Des.now d)

let test_des_heap_many_events () =
  (* Exercise heap growth and ordering with hundreds of events. *)
  let d = Des.create () in
  let rng = Rng.create 11 in
  let last = ref (-1.0) in
  let count = ref 0 in
  for _ = 1 to 500 do
    let t = Rng.float rng 1000.0 in
    Des.schedule d t (fun () ->
        Alcotest.(check bool) "monotone" true (Des.now d >= !last);
        last := Des.now d;
        incr count)
  done;
  Des.run d;
  check Alcotest.int "all ran" 500 !count

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sim"
    [
      ( "clock",
        [
          tc "starts at zero" `Quick test_clock_starts_at_zero;
          tc "advance accumulates" `Quick test_clock_advance_accumulates;
          tc "negative rejected" `Quick test_clock_advance_negative_rejected;
          tc "advance_to forward only" `Quick test_clock_advance_to_forward_only;
          tc "reset" `Quick test_clock_reset;
        ] );
      ( "cost-model",
        [
          tc "page words" `Quick test_cost_page_words;
          tc "effective net rate (contended)" `Quick
            test_cost_effective_net_rate;
          tc "DMA-bound without contention" `Quick
            test_cost_dma_bound_without_contention;
          tc "wire-bound with fast DMA" `Quick test_cost_wire_bound_with_fast_dma;
        ] );
      ( "rng",
        [
          tc "deterministic" `Quick test_rng_deterministic;
          tc "seeds differ" `Quick test_rng_seeds_differ;
          tc "int bounds" `Quick test_rng_int_bounds;
          tc "split independent" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_float_bounds;
        ] );
      ( "stats",
        [
          tc "counters" `Quick test_stats_counters;
          tc "reset" `Quick test_stats_reset;
          tc "sorted listing" `Quick test_stats_to_list_sorted;
        ] );
      ( "phys-mem",
        [
          tc "alloc/free roundtrip" `Quick test_pmem_alloc_free_roundtrip;
          tc "refcount sharing" `Quick test_pmem_refcount_sharing;
          tc "exhaustion" `Quick test_pmem_exhaustion;
          tc "data survives" `Quick test_pmem_data_survives;
          tc "no implicit zeroing" `Quick test_pmem_no_implicit_zeroing;
          tc "copy frame" `Quick test_pmem_copy_frame;
          tc "free frame use rejected" `Quick test_pmem_free_frame_use_rejected;
        ] );
      ( "tlb",
        [
          tc "miss then hit" `Quick test_tlb_miss_then_hit;
          tc "insert and hit" `Quick test_tlb_insert_and_hit;
          tc "asid isolation" `Quick test_tlb_asid_isolation;
          tc "readonly write faults" `Quick test_tlb_readonly_write_faults;
          tc "capacity eviction" `Quick test_tlb_capacity_eviction;
          tc "invalidate" `Quick test_tlb_invalidate;
          tc "flush asid selective" `Quick test_tlb_flush_asid_selective;
          tc "reinsert updates permission" `Quick
            test_tlb_reinsert_updates_permission;
          tc "defer / cancel / take" `Quick test_tlb_defer_cancel_take;
          tc "flush drops the asid's pendings" `Quick
            test_tlb_flush_asid_drops_pendings;
          tc "generation wraparound sweeps eagerly" `Quick
            test_tlb_generation_wraparound;
        ] );
      ( "machine",
        [
          tc "charge advances clock and busy" `Quick
            test_machine_charge_advances_clock_and_busy;
          tc "load accounting" `Quick test_machine_load_accounting;
          tc "fresh ids unique" `Quick test_machine_fresh_ids_unique;
        ] );
      ( "des",
        [
          tc "orders by time" `Quick test_des_orders_by_time;
          tc "fifo among equal times" `Quick test_des_fifo_among_equal_times;
          tc "handler schedules more" `Quick test_des_handler_schedules_more;
          tc "rejects past" `Quick test_des_rejects_past;
          tc "now tracks dispatch" `Quick test_des_now_tracks_dispatch;
          tc "heap many events" `Quick test_des_heap_many_events;
        ] );
    ]
