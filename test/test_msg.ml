(* Tests for the aggregate object (x-kernel message DAG) and its integrated
   (fbuf-resident) representation. *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Integrated = Fbufs_msg.Integrated
module Testbed = Fbufs_harness.Testbed

let check = Alcotest.check

let setup () =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile in
  (tb, app, recv, alloc)

let msg_of_string alloc app s =
  let ps = 4096 in
  let npages = max 1 ((String.length s + ps - 1) / ps) in
  let fb = Allocator.alloc alloc ~npages in
  Fbuf_api.write fb ~as_:app ~off:0 s;
  Msg.of_fbuf fb ~off:0 ~len:(String.length s)

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  check Alcotest.int "length" 0 (Msg.length Msg.empty);
  Alcotest.(check bool) "is_empty" true (Msg.is_empty Msg.empty);
  check Alcotest.int "no leaves" 0 (List.length (Msg.leaves Msg.empty))

let test_of_fbuf_window () =
  let _, app, _, alloc = setup () in
  let fb = Allocator.alloc alloc ~npages:2 in
  Fbuf_api.write fb ~as_:app ~off:100 "window";
  let m = Msg.of_fbuf fb ~off:100 ~len:6 in
  check Alcotest.int "length" 6 (Msg.length m);
  check Alcotest.string "contents" "window" (Msg.to_string m ~as_:app)

let test_of_fbuf_bounds_checked () =
  let _, _, _, alloc = setup () in
  let fb = Allocator.alloc alloc ~npages:1 in
  Alcotest.(check bool) "raises" true
    (try
       let (_ : Msg.t) = Msg.of_fbuf fb ~off:4000 ~len:200 in
       false
     with Invalid_argument _ -> true)

let test_join_concatenates () =
  let _, app, _, alloc = setup () in
  let a = msg_of_string alloc app "hello " in
  let b = msg_of_string alloc app "world" in
  let m = Msg.join a b in
  check Alcotest.int "length" 11 (Msg.length m);
  check Alcotest.string "contents" "hello world" (Msg.to_string m ~as_:app)

let test_join_empty_identity () =
  let _, app, _, alloc = setup () in
  let a = msg_of_string alloc app "x" in
  check Alcotest.string "left" "x" (Msg.to_string (Msg.join Msg.empty a) ~as_:app);
  check Alcotest.string "right" "x" (Msg.to_string (Msg.join a Msg.empty) ~as_:app)

let test_split_shares_fbufs () =
  let _, app, _, alloc = setup () in
  let m = msg_of_string alloc app "abcdefgh" in
  let a, b = Msg.split m 3 in
  check Alcotest.string "head" "abc" (Msg.to_string a ~as_:app);
  check Alcotest.string "tail" "defgh" (Msg.to_string b ~as_:app);
  (* No copying: same underlying buffer. *)
  check Alcotest.int "one fbuf" 1
    (List.length (Msg.fbufs (Msg.join a b)))

let test_split_bounds () =
  let _, app, _, alloc = setup () in
  let m = msg_of_string alloc app "abc" in
  Alcotest.(check bool) "negative raises" true
    (try ignore (Msg.split m (-1)); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "too large raises" true
    (try ignore (Msg.split m 4); false with Invalid_argument _ -> true);
  let a, b = Msg.split m 0 in
  check Alcotest.int "zero split" 0 (Msg.length a);
  check Alcotest.int "zero split rest" 3 (Msg.length b)

let test_clip_and_truncate () =
  let _, app, _, alloc = setup () in
  let m = msg_of_string alloc app "headerpayload" in
  check Alcotest.string "clip" "payload" (Msg.to_string (Msg.clip m 6) ~as_:app);
  check Alcotest.string "truncate" "header"
    (Msg.to_string (Msg.truncate m 6) ~as_:app)

let test_sub_bytes () =
  let _, app, _, alloc = setup () in
  let m =
    Msg.join (msg_of_string alloc app "abcd") (msg_of_string alloc app "efgh")
  in
  check Alcotest.string "across leaves" "cdef"
    (Bytes.to_string (Msg.sub_bytes m ~as_:app ~off:2 ~len:4))

let test_fbufs_dedup () =
  let _, app, _, alloc = setup () in
  let fb = Allocator.alloc alloc ~npages:1 in
  Fbuf_api.write fb ~as_:app ~off:0 "xy";
  let a = Msg.of_fbuf fb ~off:0 ~len:1 in
  let b = Msg.of_fbuf fb ~off:1 ~len:1 in
  check Alcotest.int "one distinct fbuf" 1
    (List.length (Msg.fbufs (Msg.join a b)))

let test_checksum_matches_flat () =
  let _, app, _, alloc = setup () in
  let whole = msg_of_string alloc app "the quick brown fox jumps" in
  (* Split at an odd offset: the cross-leaf byte pairing must still match
     the flat computation. *)
  let a, b = Msg.split whole 7 in
  let rejoined = Msg.join a b in
  check Alcotest.int "same checksum"
    (Msg.checksum whole ~as_:app)
    (Msg.checksum rejoined ~as_:app)

let test_touch_read_requires_access () =
  let _, app, recv, alloc = setup () in
  let m = msg_of_string alloc app "private" in
  (* recv never received the message: its touch must hit the dead page
     (reads as zeros), not the producer's data. *)
  Msg.touch_read m ~as_:recv;
  Alcotest.(check bool) "dead page served" true
    (Stats.get app.Pd.m.Machine.stats "region.dead_page_read" > 0)

let test_iter_units_exact () =
  let _, app, _, alloc = setup () in
  let m = msg_of_string alloc app "aaaabbbbccccdd" in
  let units = ref [] in
  Msg.iter_units m ~as_:app ~unit_size:4 (fun b ->
      units := Bytes.to_string b :: !units);
  check
    Alcotest.(list string)
    "units" [ "aaaa"; "bbbb"; "cccc"; "dd" ] (List.rev !units)

let test_iter_units_gather_only_on_boundary () =
  let tb, app, _, alloc = setup () in
  let m =
    Msg.join (msg_of_string alloc app "aaaa") (msg_of_string alloc app "bbbb")
  in
  let gathers0 = Stats.get tb.Testbed.m.Machine.stats "msg.unit_gather" in
  Msg.iter_units m ~as_:app ~unit_size:4 (fun _ -> ());
  check Alcotest.int "aligned units need no gather" gathers0
    (Stats.get tb.Testbed.m.Machine.stats "msg.unit_gather");
  Msg.iter_units m ~as_:app ~unit_size:3 (fun _ -> ());
  Alcotest.(check bool) "straddling unit gathers" true
    (Stats.get tb.Testbed.m.Machine.stats "msg.unit_gather" > gathers0)

(* ------------------------------------------------------------------ *)
(* Integrated representation                                           *)
(* ------------------------------------------------------------------ *)

let integrated_setup () =
  let tb, app, recv, alloc = setup () in
  let meta_alloc =
    Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
  in
  (tb, app, recv, alloc, meta_alloc)

let transfer_all msg ~src ~dst =
  List.iter (fun fb -> Transfer.send fb ~src ~dst) (Msg.fbufs msg)

let test_integrated_roundtrip () =
  let tb, app, recv, alloc, meta_alloc = integrated_setup () in
  let m =
    Msg.join
      (msg_of_string alloc app "first|")
      (Msg.join (msg_of_string alloc app "second|") (msg_of_string alloc app "third"))
  in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  let root = Integrated.serialize m ~meta ~as_:app in
  transfer_all m ~src:app ~dst:recv;
  Transfer.send meta ~src:app ~dst:recv;
  let got = Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:root in
  check Alcotest.string "same bytes" "first|second|third"
    (Msg.to_string got ~as_:recv)

let test_integrated_node_count () =
  let _, app, _, alloc = setup () in
  let one = msg_of_string alloc app "x" in
  check Alcotest.int "single leaf" 1 (Integrated.node_count one);
  let three =
    Msg.join one (Msg.join (msg_of_string alloc app "y") (msg_of_string alloc app "z"))
  in
  check Alcotest.int "3 leaves -> 5 nodes" 5 (Integrated.node_count three)

let test_integrated_meta_too_small () =
  let _, app, _, alloc, meta_alloc =
    match integrated_setup () with a, b, c, d, e -> (a, b, c, d, e)
  in
  let parts = List.init 300 (fun _ -> msg_of_string alloc app "a") in
  let m = List.fold_left Msg.join Msg.empty parts in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Integrated.serialize m ~meta ~as_:app);
       false
     with Invalid_argument _ -> true)

let test_integrated_unmapped_root_is_empty () =
  let tb, _, recv, _, _ = integrated_setup () in
  let config = Region.config tb.Testbed.region in
  let root = (config.Region.base_vpn + 500) * 4096 in
  let got = Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:root in
  check Alcotest.int "absence of data" 0 (Msg.length got)

let test_integrated_root_outside_region_is_empty () =
  let tb, _, recv, _, _ = integrated_setup () in
  let got =
    Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:0x1000
  in
  check Alcotest.int "empty" 0 (Msg.length got);
  Alcotest.(check bool) "counted" true
    (Stats.get tb.Testbed.m.Machine.stats "integrated.bad_node" > 0)

let test_integrated_cycle_detected () =
  (* A malicious originator writes a cyclic DAG; the receiver must
     terminate and treat it as missing data. *)
  let tb, app, recv, _, meta_alloc = integrated_setup () in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  let base = Fbuf.vaddr meta in
  (* node0: cat(node0, node0) — self cycle. *)
  Access.write_word app ~vaddr:base 2;
  Access.write_word app ~vaddr:(base + 4) base;
  Access.write_word app ~vaddr:(base + 8) base;
  Transfer.send meta ~src:app ~dst:recv;
  let got = Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:base in
  check Alcotest.int "cycle yields empty" 0 (Msg.length got);
  Alcotest.(check bool) "cycle counted" true
    (Stats.get tb.Testbed.m.Machine.stats "integrated.cycle" > 0)

let test_integrated_bad_data_pointer () =
  let tb, app, recv, _, meta_alloc = integrated_setup () in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  let base = Fbuf.vaddr meta in
  (* leaf pointing outside the region *)
  Access.write_word app ~vaddr:base 1;
  Access.write_word app ~vaddr:(base + 4) 0x2000;
  Access.write_word app ~vaddr:(base + 8) 64;
  Transfer.send meta ~src:app ~dst:recv;
  let got = Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:base in
  check Alcotest.int "empty" 0 (Msg.length got);
  Alcotest.(check bool) "counted" true
    (Stats.get tb.Testbed.m.Machine.stats "integrated.bad_data_ref" > 0)

let test_integrated_oversized_leaf_rejected () =
  let tb, app, recv, alloc, meta_alloc = integrated_setup () in
  let fb = Allocator.alloc alloc ~npages:1 in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  let base = Fbuf.vaddr meta in
  Access.write_word app ~vaddr:base 1;
  Access.write_word app ~vaddr:(base + 4) (Fbuf.vaddr fb);
  Access.write_word app ~vaddr:(base + 8) (Fbuf.size fb * 10);
  Transfer.send meta ~src:app ~dst:recv;
  Transfer.send fb ~src:app ~dst:recv;
  let got = Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:base in
  check Alcotest.int "clamped to empty" 0 (Msg.length got)

let test_integrated_reachable_fbufs () =
  let tb, app, _, alloc, meta_alloc = integrated_setup () in
  let m =
    Msg.join (msg_of_string alloc app "aa") (msg_of_string alloc app "bb")
  in
  let meta = Allocator.alloc meta_alloc ~npages:1 in
  let root = Integrated.serialize m ~meta ~as_:app in
  let reachable =
    Integrated.reachable_fbufs tb.Testbed.region ~as_:app ~root_vaddr:root
  in
  (* meta + two data fbufs *)
  check Alcotest.int "three buffers" 3 (List.length reachable);
  Alcotest.(check bool) "meta included" true
    (List.exists (fun (f : Fbuf.t) -> f.Fbuf.id = meta.Fbuf.id) reachable)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random message trees built over small string leaves. *)
let msg_gen alloc app =
  let open QCheck.Gen in
  let leaf =
    map (fun s -> `S s) (string_size ~gen:printable (1 -- 40))
  in
  let rec tree n =
    if n <= 1 then leaf
    else
      frequency
        [ (1, leaf); (3, map2 (fun a b -> `J (a, b)) (tree (n / 2)) (tree (n / 2))) ]
  in
  map
    (fun t ->
      let rec build = function
        | `S s -> (msg_of_string alloc app s, s)
        | `J (a, b) ->
            let ma, sa = build a and mb, sb = build b in
            (Msg.join ma mb, sa ^ sb)
      in
      build t)
    (tree 8)

let with_setup f =
  let tb, app, recv, alloc = setup () in
  f tb app recv alloc

let prop_split_preserves_bytes =
  QCheck.Test.make ~name:"split k ++ rest = original" ~count:100
    QCheck.(pair (int_bound 500) (make (QCheck.Gen.return ())))
    (fun (k, ()) ->
      with_setup (fun _ app _ alloc ->
          let m, s = QCheck.Gen.generate1 (msg_gen alloc app) in
          let k = k mod (String.length s + 1) in
          let a, b = Msg.split m k in
          Msg.to_string a ~as_:app ^ Msg.to_string b ~as_:app = s
          && Msg.length a = k
          && Msg.length b = String.length s - k))

let prop_join_lengths =
  QCheck.Test.make ~name:"length (join a b) = length a + length b" ~count:100
    QCheck.unit
    (fun () ->
      with_setup (fun _ app _ alloc ->
          let a, sa = QCheck.Gen.generate1 (msg_gen alloc app) in
          let b, sb = QCheck.Gen.generate1 (msg_gen alloc app) in
          Msg.length (Msg.join a b) = String.length sa + String.length sb))

let prop_integrated_roundtrip =
  QCheck.Test.make ~name:"integrated serialize/deserialize roundtrip"
    ~count:60 QCheck.unit
    (fun () ->
      with_setup (fun tb app recv alloc ->
          let meta_alloc =
            Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
          in
          let m, s = QCheck.Gen.generate1 (msg_gen alloc app) in
          let npages =
            max 1 ((Integrated.node_count m * Integrated.node_size / 4096) + 1)
          in
          let meta = Allocator.alloc meta_alloc ~npages in
          let root = Integrated.serialize m ~meta ~as_:app in
          transfer_all m ~src:app ~dst:recv;
          Transfer.send meta ~src:app ~dst:recv;
          let got =
            Integrated.deserialize tb.Testbed.region ~as_:recv ~root_vaddr:root
          in
          Msg.to_string got ~as_:recv = s))

let prop_checksum_split_invariant =
  QCheck.Test.make ~name:"checksum invariant under split/join" ~count:60
    QCheck.(int_bound 1000)
    (fun k ->
      with_setup (fun _ app _ alloc ->
          let m, s = QCheck.Gen.generate1 (msg_gen alloc app) in
          QCheck.assume (String.length s > 0);
          let k = k mod String.length s in
          let a, b = Msg.split m k in
          Msg.checksum (Msg.join a b) ~as_:app = Msg.checksum m ~as_:app))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "msg"
    [
      ( "structure",
        [
          tc "empty" `Quick test_empty;
          tc "of_fbuf window" `Quick test_of_fbuf_window;
          tc "of_fbuf bounds" `Quick test_of_fbuf_bounds_checked;
          tc "join concatenates" `Quick test_join_concatenates;
          tc "join empty identity" `Quick test_join_empty_identity;
          tc "split shares fbufs" `Quick test_split_shares_fbufs;
          tc "split bounds" `Quick test_split_bounds;
          tc "clip and truncate" `Quick test_clip_and_truncate;
          tc "sub_bytes across leaves" `Quick test_sub_bytes;
          tc "fbufs dedup" `Quick test_fbufs_dedup;
          tc "checksum matches flat" `Quick test_checksum_matches_flat;
          tc "touch without access hits dead page" `Quick
            test_touch_read_requires_access;
          tc "iter_units exact" `Quick test_iter_units_exact;
          tc "iter_units gathers only on boundary" `Quick
            test_iter_units_gather_only_on_boundary;
        ] );
      ( "integrated",
        [
          tc "roundtrip" `Quick test_integrated_roundtrip;
          tc "node count" `Quick test_integrated_node_count;
          tc "meta too small" `Quick test_integrated_meta_too_small;
          tc "unmapped root reads empty" `Quick
            test_integrated_unmapped_root_is_empty;
          tc "root outside region" `Quick
            test_integrated_root_outside_region_is_empty;
          tc "cycle detected" `Quick test_integrated_cycle_detected;
          tc "bad data pointer" `Quick test_integrated_bad_data_pointer;
          tc "oversized leaf rejected" `Quick
            test_integrated_oversized_leaf_rejected;
          tc "reachable fbufs" `Quick test_integrated_reachable_fbufs;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_split_preserves_bytes;
          QCheck_alcotest.to_alcotest prop_join_lengths;
          QCheck_alcotest.to_alcotest prop_integrated_roundtrip;
          QCheck_alcotest.to_alcotest prop_checksum_split_invariant;
        ] );
    ]
