(* Buffer-sharing policies under memory pressure.

   The threshold arithmetic is pinned by direct unit checks; the priority
   contract (a higher class is never refused while a lower class still
   holds evictable over-threshold buffers) is a random property over real
   worlds; the incast scenario's exact drop counts pin the end-to-end
   behavior of both policies at equal pool size; attaching a Static
   policy must leave the simulated timeline bit-identical to running with
   no policy at all; the pageout daemon's cross-path victim selection is
   pinned buffer by buffer; and the planted admission bug
   (Policy.chaos_skip_threshold) must be caught by the differential
   checker and shrink to a handful of operations. *)

open Fbufs_sim
open Fbufs_vm
open Fbufs
module Policy = Fbufs_policy.Policy
module Scenario = Fbufs_policy.Scenario
module Check = Fbufs_check
module Testbed = Fbufs_harness.Testbed

(* -- threshold arithmetic ---------------------------------------------- *)

let classes = [ Policy.Control; Policy.Latency; Policy.Bulk ]

let test_threshold_static_unbounded () =
  List.iter
    (fun k ->
      List.iter
        (fun free ->
          Alcotest.(check int)
            (Printf.sprintf "static %s at %d free" (Policy.klass_label k) free)
            max_int
            (Policy.threshold Policy.Static k ~free_frames:free))
        [ 0; 1; 4096 ])
    classes

let test_threshold_weights_exact () =
  let kind = Policy.Fb_dynamic { alpha = 0.5 } in
  (* weight * alpha * free, truncated: 8/3/1 * 0.5 * 100. *)
  Alcotest.(check int) "control" 400
    (Policy.threshold kind Policy.Control ~free_frames:100);
  Alcotest.(check int) "latency" 150
    (Policy.threshold kind Policy.Latency ~free_frames:100);
  Alcotest.(check int) "bulk" 50
    (Policy.threshold kind Policy.Bulk ~free_frames:100)

let test_threshold_zero_free_zero_allowance () =
  let kind = Policy.Fb_dynamic { alpha = 0.5 } in
  List.iter
    (fun k ->
      Alcotest.(check int) (Policy.klass_label k) 0
        (Policy.threshold kind k ~free_frames:0))
    classes

let test_threshold_monotone_in_free () =
  let kind = Policy.Fb_dynamic { alpha = 0.31 } in
  List.iter
    (fun k ->
      for free = 0 to 299 do
        let lo = Policy.threshold kind k ~free_frames:free in
        let hi = Policy.threshold kind k ~free_frames:(free + 1) in
        if lo > hi then
          Alcotest.failf "%s allowance shrank as free grew: t(%d)=%d t(%d)=%d"
            (Policy.klass_label k) free lo (free + 1) hi
      done)
    classes

(* -- priority ordering (random worlds) --------------------------------- *)

(* Reclaim-before-drop is the priority guarantee: an allocation on a
   high class may only be Dropped when no strictly-lower-class path holds
   an evictable (parked, still-resident) buffer while over its threshold.
   Random pool sizes, random bulk fills, random control surges. *)
let prop_priority_never_starves_high_class =
  QCheck.Test.make
    ~name:"control never dropped while bulk holds evictable excess" ~count:25
    QCheck.(triple (int_bound 400) (int_bound 10) (int_bound 25))
    (fun (nf, bursts, surge) ->
      let nframes = 64 + nf in
      let tb = Testbed.create ~name:"prio" ~nframes () in
      let pol =
        Policy.create tb.Testbed.region (Policy.Fb_dynamic { alpha = 0.5 })
      in
      let sink = Testbed.user_domain tb "sink" in
      let mk name klass =
        let s = Testbed.user_domain tb name in
        let a =
          Testbed.allocator tb ~domains:[ s; sink ] Fbuf.cached_volatile
        in
        Policy.register pol a ~klass;
        (s, a)
      in
      let bulk_sender, bulk = mk "bulk" Policy.Bulk in
      let _ctl_sender, ctl = mk "ctl" Policy.Control in
      (* Bulk fill: park as many 4-page buffers as admission lets through. *)
      for _ = 1 to (1 + bursts) * 4 do
        try Transfer.free (Allocator.alloc bulk ~npages:4) ~dom:bulk_sender
        with
        | Policy.Dropped _
        | Region.Chunk_limit_exceeded _ | Region.Region_exhausted
        ->
          ()
      done;
      (* Control surge: buffers stay live, so pressure only mounts. *)
      let ok = ref true in
      for _ = 1 to 1 + surge do
        match Allocator.alloc ctl ~npages:1 with
        | _fb -> ()
        | exception Policy.Dropped _ ->
            (* A drop is only legal when no bulk victim was available:
               the refusal changed nothing, so the post-drop state is the
               decision-time state. *)
            if
              Policy.over_threshold pol bulk
              && List.exists Allocator.buffer_resident (Allocator.parked bulk)
            then ok := false
        | exception (Region.Chunk_limit_exceeded _ | Region.Region_exhausted)
          ->
            ()
      done;
      !ok)

(* -- incast end-to-end -------------------------------------------------- *)

(* The exact drop counts of the golden-pinned ablation, asserted as data:
   under incast at equal pool size the dynamic policy must deliver more,
   drop measurably less, and confine every drop to the bulk class. *)
let test_incast_exact_drops () =
  let s = Scenario.run ~kind:Policy.Static Scenario.Incast in
  let d =
    Scenario.run ~kind:(Policy.Fb_dynamic { alpha = 0.5 }) Scenario.Incast
  in
  Alcotest.(check int) "equal offered load" s.Scenario.attempts
    d.Scenario.attempts;
  Alcotest.(check int) "static attempts" 440 s.Scenario.attempts;
  Alcotest.(check int) "static drops" 134 s.Scenario.dropped;
  Alcotest.(check int) "dynamic drops" 8 d.Scenario.dropped;
  Alcotest.(check int) "dynamic reclaim-before-drop evictions" 14
    d.Scenario.evictions;
  Alcotest.(check bool) "dynamic drops fewer at equal pool" true
    (d.Scenario.dropped < s.Scenario.dropped);
  let dropped_of cls o =
    match
      List.find_opt (fun c -> c.Scenario.cls = cls) o.Scenario.by_class
    with
    | Some c -> c.Scenario.dropped
    | None -> Alcotest.failf "class %s missing from outcome" cls
  in
  Alcotest.(check int) "dynamic: control unharmed" 0 (dropped_of "control" d);
  Alcotest.(check int) "dynamic: latency unharmed" 0 (dropped_of "latency" d);
  Alcotest.(check int) "dynamic: bulk pays all drops" d.Scenario.dropped
    (dropped_of "bulk" d)

(* -- static policy is the identity -------------------------------------- *)

(* Attaching a Static policy must not perturb the simulated timeline: the
   hooks maintain an integer account and charge nothing. Same workload,
   with and without the policy attached — Machine.now must agree to the
   bit. *)
let equivalence_workload ~managed =
  let tb = Testbed.create ~name:"static-eq" ~nframes:256 () in
  let a = Testbed.user_domain tb "a" in
  let b = Testbed.user_domain tb "b" in
  let alloc = Testbed.allocator tb ~domains:[ a; b ] Fbuf.cached_volatile in
  if managed then begin
    let pol = Policy.create tb.Testbed.region Policy.Static in
    Policy.register pol alloc ~klass:Policy.Latency
  end;
  for _ = 1 to 50 do
    let fb = Allocator.alloc alloc ~npages:2 in
    Access.touch_write a ~vaddr:(Fbuf.vaddr fb) ~npages:2;
    Transfer.send fb ~src:a ~dst:b;
    Access.touch_read b ~vaddr:(Fbuf.vaddr fb) ~npages:2;
    Transfer.free fb ~dom:b;
    Transfer.free fb ~dom:a
  done;
  Machine.now tb.Testbed.m

let test_static_policy_identical_timeline () =
  Alcotest.(check (float 0.0))
    "simulated elapsed identical with Static attached"
    (equivalence_workload ~managed:false)
    (equivalence_workload ~managed:true)

(* -- deterministic cross-path victim selection --------------------------- *)

(* Five parked buffers interleaved across two paths, pool drained to
   zero by a live hog, then one daemon sweep. Which buffers lose their
   frames is part of the contract, pinned buffer by buffer. *)
let balance_world () =
  let tb = Testbed.create ~name:"balance" ~nframes:64 () in
  let sink = Testbed.user_domain tb "sink" in
  let ep name =
    let s = Testbed.user_domain tb name in
    (s, Testbed.allocator tb ~domains:[ s; sink ] Fbuf.cached_volatile)
  in
  let bs, bulk = ep "bulk" in
  let ls, lat = ep "lat" in
  (* All five allocated live first — LIFO reuse would otherwise hand the
     just-parked buffer straight back — so allocation order alone fixes
     the LRU order: b1 < l1 < b2 < l2 < b3. Then parked together. *)
  let b1 = Allocator.alloc bulk ~npages:4 in
  let l1 = Allocator.alloc lat ~npages:4 in
  let b2 = Allocator.alloc bulk ~npages:4 in
  let l2 = Allocator.alloc lat ~npages:4 in
  let b3 = Allocator.alloc bulk ~npages:4 in
  List.iter (fun fb -> Transfer.free fb ~dom:bs) [ b1; b2; b3 ];
  List.iter (fun fb -> Transfer.free fb ~dom:ls) [ l1; l2 ];
  (* A live hog takes 40 of the remaining 43 frames (one frame went to
     the host's shared dead page): free lands at 3, under both low-water
     marks used below. *)
  let hog_owner = Testbed.user_domain tb "hog" in
  let hog = Testbed.allocator tb ~domains:[ hog_owner ] Fbuf.volatile_only in
  for _ = 1 to 10 do
    (* Hog buffers stay live for the rest of the test by design. *)
    let _live : Fbuf.t = Allocator.alloc hog ~npages:4 in
    ()
  done;
  Alcotest.(check int) "pool drained to 3 free frames" 3
    (Phys_mem.free_frames tb.Testbed.m.Machine.pmem);
  (tb, bulk, lat, [ ("b1", b1); ("l1", l1); ("b2", b2); ("l2", l2); ("b3", b3) ])

let mk_daemon tb ~low_water_frames ~order allocs =
  let d = Pageout.create tb.Testbed.region ~low_water_frames ~order () in
  List.iter (Pageout.register d) allocs;
  d

let check_residency parked ~reclaimed =
  List.iter
    (fun (name, fb) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s" name
           (if List.mem name reclaimed then "reclaimed" else "survives"))
        (not (List.mem name reclaimed))
        (Allocator.buffer_resident fb))
    parked

(* Default order: global LRU across both paths — oldest first regardless
   of which allocator parks it, so b1 then l1. *)
let test_balance_global_lru_across_paths () =
  let tb, bulk, lat, parked = balance_world () in
  let daemon =
    mk_daemon tb ~low_water_frames:8 ~order:Pageout.lru_order [ bulk; lat ]
  in
  Alcotest.(check int) "two victims reach the low-water mark" 2
    (Pageout.balance daemon);
  check_residency parked ~reclaimed:[ "b1"; "l1" ]

(* Policy order: at sweep-start free = 3 both paths are over threshold
   (bulk holds 12 > 1 allowed, latency 8 > 4), so rank decides before
   LRU — every bulk buffer outranks latency, and one 4-page victim
   reaches the low-water mark. The policy attaches after the fill so
   admission control plays no part here. *)
let test_balance_policy_order_rank_first () =
  let tb, bulk, lat, parked = balance_world () in
  let pol =
    Policy.create tb.Testbed.region (Policy.Fb_dynamic { alpha = 0.5 })
  in
  Policy.register pol bulk ~klass:Policy.Bulk;
  Policy.register pol lat ~klass:Policy.Latency;
  let daemon =
    mk_daemon tb ~low_water_frames:4 ~order:(Policy.pageout_order pol)
      [ bulk; lat ]
  in
  Alcotest.(check int) "one victim reaches the low-water mark" 1
    (Pageout.balance daemon);
  check_residency parked ~reclaimed:[ "b1" ]

(* -- planted admission bug caught and shrunk ----------------------------- *)

(* Acceptance for the differential layer: skip the threshold comparison
   (admit unconditionally) and the event-log re-derivation must fail the
   run, and the counterexample must shrink to a handful of operations. *)
let test_policy_chaos_bug_caught_and_shrunk () =
  Fun.protect ~finally:(fun () -> Policy.chaos_skip_threshold := false)
  @@ fun () ->
  Policy.chaos_skip_threshold := true;
  let report, ops = Check.Driver.run ~seed:1 ~ops:400 ~adversary:true in
  Alcotest.(check bool) "seeded bug detected" true (Check.Driver.failed report);
  let shrunk, shrunk_report = Check.Shrink.minimize ~seed:1 ops in
  Alcotest.(check bool) "shrunk sequence still fails" true
    (Check.Driver.failed shrunk_report);
  if List.length shrunk > 10 then
    Alcotest.failf "minimal reproducer has %d ops (> 10):@.%a"
      (List.length shrunk) Check.Op.pp_list shrunk;
  Policy.chaos_skip_threshold := false;
  Alcotest.(check bool) "shrunk sequence passes without the bug" false
    (Check.Driver.failed (Check.Driver.replay ~seed:1 shrunk))

let () =
  Alcotest.run "policy"
    [
      ( "thresholds",
        [
          Alcotest.test_case "static is unbounded" `Quick
            test_threshold_static_unbounded;
          Alcotest.test_case "weights exact" `Quick test_threshold_weights_exact;
          Alcotest.test_case "zero free, zero allowance" `Quick
            test_threshold_zero_free_zero_allowance;
          Alcotest.test_case "monotone in free" `Quick
            test_threshold_monotone_in_free;
        ] );
      ( "priority",
        [ QCheck_alcotest.to_alcotest prop_priority_never_starves_high_class ]
      );
      ( "incast",
        [ Alcotest.test_case "exact drop counts" `Quick test_incast_exact_drops ]
      );
      ( "static equivalence",
        [
          Alcotest.test_case "timeline identical" `Quick
            test_static_policy_identical_timeline;
        ] );
      ( "balance determinism",
        [
          Alcotest.test_case "global LRU across paths" `Quick
            test_balance_global_lru_across_paths;
          Alcotest.test_case "policy order ranks bulk first" `Quick
            test_balance_policy_order_rank_first;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "seeded admission bug caught, shrunk to <= 10"
            `Quick test_policy_chaos_bug_caught_and_shrunk;
        ] );
    ]
