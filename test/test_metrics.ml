(* Fbufs_metrics: registration discipline, exposition round-trips, the
   exactness contracts of the cost ledger, metering transparency (a
   metered run computes the same simulated numbers as an unmetered one),
   and the registry-vs-model differential over a randomized op sequence.

   Definitions are global, so every name registered here is namespaced
   fbufs_test_* to stay clear of the production registrations that module
   initialization already performed. *)

open Fbufs_sim
open Fbufs
module Mx = Fbufs_metrics.Metrics
module Ledger = Fbufs_metrics.Ledger
module Component = Fbufs_metrics.Component
module Expo = Fbufs_metrics.Expo
module Testbed = Fbufs_harness.Testbed
module Table1 = Fbufs_harness.Exp_table1
module Check = Fbufs_check

let check = Alcotest.check

(* Run [f] with a fresh instance installed the way the harness installs
   one: through [Machine.default_metrics], picked up by every machine
   created inside. *)
let metered f =
  let mx = Mx.create () in
  let saved = !Machine.default_metrics in
  Machine.default_metrics := Some mx;
  let r =
    Fun.protect ~finally:(fun () -> Machine.default_metrics := saved) f
  in
  (r, mx)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Registration discipline                                             *)

let test_duplicate_registration_rejected () =
  let _ = Mx.counter ~name:"fbufs_test_dup_total" ~help:"first" () in
  Alcotest.(check bool)
    "second registration of the same name raises" true
    (raises_invalid (fun () ->
         Mx.counter ~name:"fbufs_test_dup_total" ~help:"second" ()))

let test_bad_names_rejected () =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" name)
        true
        (raises_invalid (fun () -> Mx.counter ~name ~help:"h" ())))
    [ "requests_total"; "fbufs_Upper"; "fbufs_dash-total"; "fbufs_"; "" ]

let test_label_arity_checked () =
  let d =
    Mx.counter ~name:"fbufs_test_arity_total" ~help:"h" ~labels:[ "a"; "b" ]
      ()
  in
  let mx = Mx.create () in
  Alcotest.(check bool)
    "update with wrong label count raises" true
    (raises_invalid (fun () -> Mx.incr mx d ~labels:[ "only-one" ] ()))

(* ------------------------------------------------------------------ *)
(* Exposition round-trips                                              *)

let rt_counter =
  Mx.counter ~name:"fbufs_test_rt_total" ~help:"round-trip counter"
    ~labels:[ "path" ] ()

let rt_gauge = Mx.gauge ~name:"fbufs_test_rt_depth" ~help:"round-trip gauge" ()

let rt_hist =
  Mx.histogram ~name:"fbufs_test_rt_bytes" ~help:"round-trip histogram" ()

let populated () =
  let mx = Mx.create () in
  Mx.incr mx rt_counter ~labels:[ "7" ] ();
  Mx.incr mx rt_counter ~labels:[ "7" ] ();
  Mx.incr mx rt_counter ~labels:[ "9" ] ();
  Mx.set mx rt_gauge 42.0;
  List.iter (Mx.observe mx rt_hist) [ 10.0; 20.0; 30.0 ];
  Ledger.charge (Mx.ledger mx) ~machine:"tb" ~comp:Component.Copy
    ~kind:"bcopy" 2.5;
  mx

let flat_value flats name labels =
  match
    List.find_opt
      (fun (f : Expo.flat) -> f.Expo.name = name && f.Expo.labels = labels)
      flats
  with
  | Some f -> f.Expo.value
  | None -> Alcotest.failf "sample %s%s missing" name (String.concat "," [])

let test_json_round_trip () =
  let mx = populated () in
  let flats = Expo.of_json_string (Expo.to_json_string mx) in
  check (Alcotest.float 0.0) "counter cell" 2.0
    (flat_value flats "fbufs_test_rt_total" [ ("path", "7") ]);
  check (Alcotest.float 0.0) "gauge cell" 42.0
    (flat_value flats "fbufs_test_rt_depth" []);
  check (Alcotest.float 0.0) "histogram sum" 60.0
    (flat_value flats "fbufs_test_rt_bytes" []);
  check (Alcotest.float 0.0) "ledger family" 2.5
    (flat_value flats "fbufs_cost_us_total"
       [ ("machine", "tb"); ("component", "copy"); ("kind", "bcopy") ])

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_prometheus_text () =
  let text = Expo.to_prometheus (populated ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" frag) true
        (contains text frag))
    [
      "# TYPE fbufs_test_rt_total counter";
      "fbufs_test_rt_total{path=\"7\"} 2";
      "# TYPE fbufs_test_rt_bytes histogram";
      "fbufs_test_rt_bytes_count 3";
      "fbufs_cost_us_total{machine=\"tb\",component=\"copy\",kind=\"bcopy\"} \
       2.5";
    ]

(* ------------------------------------------------------------------ *)
(* Ledger exactness                                                    *)

(* The headline acceptance check: on a full Table 1 run, the per-component
   breakdown sums to the charged total *exactly* — zero float tolerance —
   because the total is defined as the fold of the component cells. *)
let test_table1_component_sum_exact () =
  let _, mx = metered (fun () -> Table1.run ()) in
  let l = Mx.ledger mx in
  let by_comp = Ledger.by_component l in
  let sum = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 by_comp in
  check (Alcotest.float 0.0) "component sum = charged total" sum
    (Ledger.total_us l);
  Alcotest.(check bool) "a table1 run charges time" true
    (Ledger.total_us l > 0.0);
  (* The transfer experiment must attribute to the paper's components. *)
  List.iter
    (fun comp ->
      Alcotest.(check bool)
        (Printf.sprintf "component %s is charged" (Component.label comp))
        true
        (List.assoc comp by_comp > 0.0))
    [ Component.Alloc; Component.Map; Component.Zero; Component.Copy ];
  (* Per-machine arrival-order totals agree with the compensated total to
     float noise (machines named alike merge in the ledger, so bitwise
     equality is claimed only on single-machine runs below). *)
  let per_machine =
    List.fold_left
      (fun acc m -> acc +. Ledger.charged_us l ~machine:m)
      0.0 (Ledger.machines l)
  in
  Alcotest.(check bool) "per-machine totals match compensated total" true
    (abs_float (per_machine -. Ledger.total_us l)
    <= 1e-9 *. Ledger.total_us l)

(* On one machine the ledger's arrival-order accumulator replays exactly
   the additions [Machine.charge] makes to [busy_us]: bitwise equality,
   not approximate. *)
let test_single_machine_charged_is_busy () =
  let (m, _), mx =
    metered (fun () ->
        let tb = Testbed.create ~name:"mx-test" () in
        let app = Testbed.user_domain tb "app" in
        let dst = Testbed.user_domain tb "dst" in
        let alloc =
          Testbed.allocator tb ~domains:[ app; dst ] Fbuf.cached_volatile
        in
        for i = 1 to 50 do
          let fb = Allocator.alloc alloc ~npages:(1 + (i mod 3)) in
          Fbuf_api.touch_write fb ~as_:app;
          Transfer.send fb ~src:app ~dst;
          Transfer.free fb ~dom:dst;
          Transfer.free fb ~dom:app
        done;
        (tb.Testbed.m, ()))
  in
  let charged = Ledger.charged_us (Mx.ledger mx) ~machine:"mx-test" in
  Alcotest.(check bool)
    (Printf.sprintf "ledger %.17g us = busy %.17g us (bitwise)" charged
       (Machine.busy_us m))
    true
    (charged = Machine.busy_us m)

(* ------------------------------------------------------------------ *)
(* Metering transparency                                               *)

(* Metrics must observe the simulation, never steer it: a metered Table 1
   run computes numbers identical to an unmetered one. *)
let test_metered_run_simulated_identical () =
  let plain = Table1.run () in
  let metered_rows, _ = metered (fun () -> Table1.run ()) in
  Alcotest.(check bool) "same rows" true (plain = metered_rows)

let test_disabled_machine_carries_no_instance () =
  let tb = Testbed.create () in
  Alcotest.(check bool) "no instance installed" true
    (Machine.metrics tb.Testbed.m = None)

(* ------------------------------------------------------------------ *)
(* Differential against the reference model                            *)

(* A metered replay turns the registry into one more observable the
   checker diffs: Driver.verify_metrics compares fbufs_alloc_total
   hit/fresh per allocator, the free-list/live gauges, reclaim counts and
   the bitwise ledger-vs-busy identity against the model's own
   expectations at the end of the sequence. *)
let test_counters_match_model () =
  List.iter
    (fun (seed, adversary) ->
      let (report, _), _ =
        metered (fun () -> Check.Driver.run ~seed ~ops:300 ~adversary)
      in
      if Check.Driver.failed report then
        Alcotest.failf "seed %d (adversary %b): %s" seed adversary
          (Format.asprintf "%a" Check.Driver.pp_report report))
    [ (1, false); (2, false); (3, true) ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "metrics"
    [
      ( "registration",
        [
          tc "duplicate rejected" `Quick test_duplicate_registration_rejected;
          tc "bad names rejected" `Quick test_bad_names_rejected;
          tc "label arity checked" `Quick test_label_arity_checked;
        ] );
      ( "exposition",
        [
          tc "JSON round-trip" `Quick test_json_round_trip;
          tc "Prometheus text" `Quick test_prometheus_text;
        ] );
      ( "exactness",
        [
          tc "table1 component sum" `Quick test_table1_component_sum_exact;
          tc "charged = busy (bitwise)" `Quick
            test_single_machine_charged_is_busy;
        ] );
      ( "transparency",
        [
          tc "metered run identical" `Quick
            test_metered_run_simulated_identical;
          tc "disabled = absent" `Quick
            test_disabled_machine_carries_no_instance;
        ] );
      ( "differential",
        [ tc "counters match model" `Quick test_counters_match_model ] );
    ]
