(* Unit and property tests for the two-level VM system, fault handling and
   the memory access path. *)

open Fbufs_sim
open Fbufs_vm

let check = Alcotest.check

let machine () = Machine.create ~nframes:256 ()

let setup () =
  let m = machine () in
  let a = Pd.create m "a" in
  let b = Pd.create m "b" in
  (m, a, b)

let ps (m : Machine.t) = m.cost.Cost_model.page_size

(* ------------------------------------------------------------------ *)
(* Basic mapping and access                                            *)
(* ------------------------------------------------------------------ *)

let test_zero_fill_roundtrip () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:4 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:4;
  let va = vpn * ps m in
  Access.write_word a ~vaddr:va 0xDEAD;
  check Alcotest.int "read back" 0xDEAD (Access.read_word a ~vaddr:va)

let test_zero_fill_is_zero () =
  let m, a, _ = setup () in
  (* Dirty a frame through domain a, free it, then check a fresh zero-fill
     mapping reads zeros even if it recycles that frame. *)
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  Access.write_word a ~vaddr:(vpn * ps m) 0xFFFF;
  Vm_map.unmap a.Pd.map ~vpn ~npages:1 ~free_frames:true;
  let vpn2 = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn:vpn2 ~npages:1;
  check Alcotest.int "zeroed" 0 (Access.read_word a ~vaddr:(vpn2 * ps m))

let test_zero_fill_charges_page_zero () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  let before = Machine.now m in
  ignore (Access.read_word a ~vaddr:(vpn * ps m));
  let cost = Machine.now m -. before in
  Alcotest.(check bool)
    (Printf.sprintf "first touch costs >= 57us (got %.1f)" cost)
    true
    (cost >= m.cost.Cost_model.page_zero)

let test_unmapped_access_violates () =
  let _, a, _ = setup () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Access.read_word a ~vaddr:0x123000);
       false
     with Vm_map.Protection_violation _ -> true)

let test_read_only_write_violates () =
  let m, a, _ = setup () in
  let f = Phys_mem.alloc m.Machine.pmem in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_frame a.Pd.map ~vpn ~frame:f ~prot:Prot.Read_only ~eager:true;
  ignore (Access.read_word a ~vaddr:(vpn * ps m));
  Alcotest.(check bool) "write raises" true
    (try
       Access.write_word a ~vaddr:(vpn * ps m) 1;
       false
     with Vm_map.Protection_violation v -> v.write)

let test_no_access_read_violates () =
  let m, a, _ = setup () in
  let f = Phys_mem.alloc m.Machine.pmem in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_frame a.Pd.map ~vpn ~frame:f ~prot:Prot.No_access ~eager:false;
  Alcotest.(check bool) "read raises" true
    (try
       ignore (Access.read_word a ~vaddr:(vpn * ps m));
       false
     with Vm_map.Protection_violation _ -> true)

let test_bulk_rw_cross_page () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:3 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:3;
  let va = (vpn * ps m) + (ps m / 2) in
  let payload = Bytes.init 8192 (fun i -> Char.chr (i land 0xFF)) in
  Access.write_bytes a ~vaddr:va payload;
  let back = Access.read_bytes a ~vaddr:va ~len:8192 in
  check Alcotest.bytes "cross-page integrity" payload back

let test_blit_between_domains () =
  let m, a, b = setup () in
  let vpn_a = Vm_map.reserve_private a.Pd.map ~npages:2 in
  Vm_map.map_zero_fill a.Pd.map ~vpn:vpn_a ~npages:2;
  let vpn_b = Vm_map.reserve_private b.Pd.map ~npages:2 in
  Vm_map.map_zero_fill b.Pd.map ~vpn:vpn_b ~npages:2;
  Access.write_string a ~vaddr:(vpn_a * ps m) "transfer me";
  Access.blit ~src:a ~src_vaddr:(vpn_a * ps m) ~dst:b
    ~dst_vaddr:(vpn_b * ps m) ~len:11;
  check Alcotest.string "copied across" "transfer me"
    (Bytes.to_string (Access.read_bytes b ~vaddr:(vpn_b * ps m) ~len:11))

let test_checksum_known_value () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  (* RFC 1071 example: bytes 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d. *)
  Access.write_bytes a ~vaddr:(vpn * ps m)
    (Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7");
  check Alcotest.int "rfc1071" 0x220d
    (Access.checksum a ~vaddr:(vpn * ps m) ~len:8)

let test_checksum_odd_length () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  Access.write_bytes a ~vaddr:(vpn * ps m) (Bytes.of_string "\x01\x02\x03");
  (* words: 0x0102 + 0x0300 = 0x0402 -> complement 0xfbfd *)
  check Alcotest.int "odd tail padded" 0xfbfd
    (Access.checksum a ~vaddr:(vpn * ps m) ~len:3)

(* ------------------------------------------------------------------ *)
(* TLB behaviour through the access path                               *)
(* ------------------------------------------------------------------ *)

let test_tlb_miss_once_then_hits () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  ignore (Access.read_word a ~vaddr:(vpn * ps m));
  let misses = Stats.get m.stats "tlb.miss" in
  for _ = 1 to 10 do
    ignore (Access.read_word a ~vaddr:(vpn * ps m))
  done;
  check Alcotest.int "no further misses" misses (Stats.get m.stats "tlb.miss")

let test_asid_isolation_same_vaddr () =
  let m, a, b = setup () in
  (* Same virtual page number in two domains backed by different frames. *)
  let vpn = 0x2000 in
  let fa = Phys_mem.alloc m.Machine.pmem and fb = Phys_mem.alloc m.Machine.pmem in
  Vm_map.map_frame a.Pd.map ~vpn ~frame:fa ~prot:Prot.Read_write ~eager:true;
  Vm_map.map_frame b.Pd.map ~vpn ~frame:fb ~prot:Prot.Read_write ~eager:true;
  Access.write_word a ~vaddr:(vpn * ps m) 111;
  Access.write_word b ~vaddr:(vpn * ps m) 222;
  check Alcotest.int "a sees its own" 111 (Access.read_word a ~vaddr:(vpn * ps m));
  check Alcotest.int "b sees its own" 222 (Access.read_word b ~vaddr:(vpn * ps m))

let test_protect_downgrade_shoots_down_tlb () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  Access.write_word a ~vaddr:(vpn * ps m) 1;
  (* Writable translation is now cached. Downgrade must shoot it down, or a
     subsequent write would silently succeed. *)
  Vm_map.protect a.Pd.map ~vpn ~npages:1 ~prot:Prot.Read_only;
  Alcotest.(check bool) "write now violates" true
    (try
       Access.write_word a ~vaddr:(vpn * ps m) 2;
       false
     with Vm_map.Protection_violation _ -> true);
  check Alcotest.int "data unchanged" 1 (Access.read_word a ~vaddr:(vpn * ps m))

let test_protect_upgrade_mod_fault_path () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  Access.write_word a ~vaddr:(vpn * ps m) 1;
  Vm_map.protect a.Pd.map ~vpn ~npages:1 ~prot:Prot.Read_only;
  ignore (Access.read_word a ~vaddr:(vpn * ps m));
  Vm_map.protect a.Pd.map ~vpn ~npages:1 ~prot:Prot.Read_write;
  (* The stale read-only TLB entry causes a modification fault that the
     refill path resolves against the now-writable pmap entry. *)
  let mods = Stats.get m.stats "tlb.mod_fault" in
  Access.write_word a ~vaddr:(vpn * ps m) 2;
  check Alcotest.int "one mod fault" (mods + 1)
    (Stats.get m.stats "tlb.mod_fault");
  check Alcotest.int "write landed" 2 (Access.read_word a ~vaddr:(vpn * ps m))

(* ------------------------------------------------------------------ *)
(* Deferred shootdowns and elision                                     *)
(* ------------------------------------------------------------------ *)

(* A remove whose translation is cached queues the shootdown instead of
   paying for it; re-entering the identical translation cancels the
   pending, keeps the TLB entry live, and skips the refill a baseline
   flush-on-remove would have forced. *)
let test_deferred_remove_reenter_elides () =
  let m, a, _ = setup () in
  let pmap = Vm_map.pmap a.Pd.map in
  let asid = Pd.asid a in
  let vpn = 0x3000 in
  let f = Phys_mem.alloc m.Machine.pmem in
  Vm_map.map_frame a.Pd.map ~vpn ~frame:f ~prot:Prot.Read_write ~eager:true;
  Access.write_word a ~vaddr:(vpn * ps m) 7;
  let shoots = Stats.get m.stats "tlb.shootdown" in
  ignore (Pmap.remove pmap ~vpn);
  check Alcotest.int "no immediate shootdown" shoots
    (Stats.get m.stats "tlb.shootdown");
  Alcotest.(check bool) "shootdown queued" true
    (Tlb.pending_covers m.Machine.tlb ~asid ~vpn);
  let misses = Stats.get m.stats "tlb.miss" in
  Pmap.enter pmap ~vpn ~frame:f ~writable:true;
  Alcotest.(check bool) "pending cancelled" false
    (Tlb.pending_covers m.Machine.tlb ~asid ~vpn);
  check Alcotest.int "still no shootdown paid" shoots
    (Stats.get m.stats "tlb.shootdown");
  check Alcotest.int "read hits without a refill" 7
    (Access.read_word a ~vaddr:(vpn * ps m));
  check Alcotest.int "no tlb miss" misses (Stats.get m.stats "tlb.miss")

(* The elision guard: if the re-entered translation differs (frame or
   writability), the stale entry must be shot down, never reused. *)
let test_changed_translation_shoots_down () =
  let m, a, _ = setup () in
  let pmap = Vm_map.pmap a.Pd.map in
  let asid = Pd.asid a in
  let vpn = 0x3000 in
  let f1 = Phys_mem.alloc m.Machine.pmem in
  let f2 = Phys_mem.alloc m.Machine.pmem in
  Vm_map.map_frame a.Pd.map ~vpn ~frame:f1 ~prot:Prot.Read_write ~eager:true;
  Access.write_word a ~vaddr:(vpn * ps m) 111;
  ignore (Pmap.remove pmap ~vpn);
  let shoots = Stats.get m.stats "tlb.shootdown" in
  (* Same vpn, different frame: the queued shootdown must fire now. *)
  Vm_map.map_frame a.Pd.map ~vpn ~frame:f2 ~prot:Prot.Read_write ~eager:true;
  check Alcotest.int "stale entry shot down" (shoots + 1)
    (Stats.get m.stats "tlb.shootdown");
  Alcotest.(check bool) "no pending left" false
    (Tlb.pending_covers m.Machine.tlb ~asid ~vpn);
  Access.write_word a ~vaddr:(vpn * ps m) 222;
  check Alcotest.int "write reached the new frame" 222
    (Access.read_word a ~vaddr:(vpn * ps m));
  check Alcotest.int "old frame untouched" 111
    (let b = Phys_mem.data m.Machine.pmem f1 in
     Char.code (Bytes.get b 0)
     lor (Char.code (Bytes.get b 1) lsl 8)
     lor (Char.code (Bytes.get b 2) lsl 16)
     lor (Char.code (Bytes.get b 3) lsl 24))

(* A pageout victim's translations are torn down with their shootdowns
   deferred; the cached realloc that reuses its address range must see
   fresh zero-filled pages, never the stale translations. *)
let test_pageout_victim_pending_shootdown () =
  let module Testbed = Fbufs_harness.Testbed in
  let module Allocator = Fbufs.Allocator in
  let module Fbuf = Fbufs.Fbuf in
  let tb = Testbed.create () in
  let a = Testbed.user_domain tb "a" in
  let alloc = Testbed.allocator tb ~domains:[ a ] Fbuf.cached_volatile in
  let m = tb.Testbed.m in
  let fb = Allocator.alloc alloc ~npages:2 in
  Access.touch_write a ~vaddr:(Fbuf.vaddr fb) ~npages:2;
  Fbufs.Transfer.free fb ~dom:a;
  check Alcotest.int "one victim" 1 (Allocator.reclaim alloc ~max_fbufs:1 ());
  let asid = Pd.asid a in
  for i = 0 to 1 do
    Alcotest.(check bool) "victim page shootdown deferred" true
      (Tlb.pending_covers m.Machine.tlb ~asid ~vpn:(fb.Fbuf.base_vpn + i))
  done;
  let fb2 = Allocator.alloc alloc ~npages:2 in
  check Alcotest.int "address range reused" fb.Fbuf.base_vpn fb2.Fbuf.base_vpn;
  let got = Access.read_bytes a ~vaddr:(Fbuf.vaddr fb2) ~len:(Fbuf.size fb2) in
  Alcotest.(check bool) "reads zeros, not stale bytes" true
    (Bytes.equal got (Bytes.make (Fbuf.size fb2) '\000'));
  Access.write_word a ~vaddr:(Fbuf.vaddr fb2) 0xBEEF;
  check Alcotest.int "write lands" 0xBEEF
    (Access.read_word a ~vaddr:(Fbuf.vaddr fb2))

(* ------------------------------------------------------------------ *)
(* Copy-on-write                                                       *)
(* ------------------------------------------------------------------ *)

let cow_setup () =
  let m, a, b = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:2 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:2;
  Access.write_word a ~vaddr:(vpn * ps m) 0xAAAA;
  Access.write_word a ~vaddr:((vpn + 1) * ps m) 0xBBBB;
  Vm_map.copy_cow ~src:a.Pd.map ~dst:b.Pd.map ~vpn ~npages:2;
  (m, a, b, vpn)

let test_cow_receiver_sees_data () =
  let m, _, b, vpn = cow_setup () in
  check Alcotest.int "page 0" 0xAAAA (Access.read_word b ~vaddr:(vpn * ps m));
  check Alcotest.int "page 1" 0xBBBB
    (Access.read_word b ~vaddr:((vpn + 1) * ps m))

let test_cow_shares_frames_until_write () =
  let m, a, b, vpn = cow_setup () in
  ignore (Access.read_word b ~vaddr:(vpn * ps m));
  let fa = Vm_map.frame_of a.Pd.map ~vpn and fb = Vm_map.frame_of b.Pd.map ~vpn in
  check Alcotest.(option int) "same frame" fa fb

let test_cow_write_isolates () =
  let m, a, b, vpn = cow_setup () in
  Access.write_word b ~vaddr:(vpn * ps m) 0xCCCC;
  check Alcotest.int "b sees new" 0xCCCC (Access.read_word b ~vaddr:(vpn * ps m));
  check Alcotest.int "a unchanged" 0xAAAA (Access.read_word a ~vaddr:(vpn * ps m));
  Alcotest.(check bool) "frames now differ" true
    (Vm_map.frame_of a.Pd.map ~vpn <> Vm_map.frame_of b.Pd.map ~vpn)

let test_cow_lazy_update_two_faults () =
  (* The paper: Mach's lazy pmap update causes two page faults per
     transferred page — one in the receiver on first access, one in the
     sender on its next write. *)
  let m, a, b, vpn = cow_setup () in
  let faults0 = Stats.get m.stats "vm.fault" in
  ignore (Access.read_word b ~vaddr:(vpn * ps m));
  Access.write_word a ~vaddr:(vpn * ps m) 0xDDDD;
  let faults = Stats.get m.stats "vm.fault" - faults0 in
  check Alcotest.int "two faults" 2 faults;
  check Alcotest.int "b keeps original" 0xAAAA
    (Access.read_word b ~vaddr:(vpn * ps m))

let test_cow_claim_when_not_shared () =
  (* If the receiver unmapped before the sender writes, the sender's write
     fault claims the frame without copying. *)
  let m, a, b, vpn = cow_setup () in
  ignore (Access.read_word b ~vaddr:(vpn * ps m));
  Vm_map.unmap b.Pd.map ~vpn ~npages:2 ~free_frames:true;
  let copies0 = Stats.get m.stats "vm.cow_copy" in
  Access.write_word a ~vaddr:(vpn * ps m) 0xEEEE;
  check Alcotest.int "no copy" copies0 (Stats.get m.stats "vm.cow_copy");
  Alcotest.(check bool) "claimed" true (Stats.get m.stats "vm.cow_claim" > 0)

(* ------------------------------------------------------------------ *)
(* Remap                                                               *)
(* ------------------------------------------------------------------ *)

let test_remap_move_semantics () =
  let m, a, b = setup () in
  let vpn = Remap.alloc_pages a ~npages:2 ~clear_fraction:0.0 in
  Access.write_word a ~vaddr:(vpn * ps m) 0x1234;
  let dst_vpn = Remap.move ~src:a ~dst:b ~src_vpn:vpn ~npages:2 () in
  check Alcotest.int "data arrived" 0x1234
    (Access.read_word b ~vaddr:(dst_vpn * ps m));
  Alcotest.(check bool) "source unmapped" false
    (Vm_map.mapped a.Pd.map ~vpn)

let test_remap_source_access_fails_after_move () =
  let m, a, b = setup () in
  let vpn = Remap.alloc_pages a ~npages:1 ~clear_fraction:0.0 in
  Access.write_word a ~vaddr:(vpn * ps m) 7;
  ignore (Remap.move ~src:a ~dst:b ~src_vpn:vpn ~npages:1 ());
  Alcotest.(check bool) "moved away" true
    (try
       ignore (Access.read_word a ~vaddr:(vpn * ps m));
       false
     with Vm_map.Protection_violation _ -> true)

let test_remap_clear_fraction_charges () =
  let m, a, _ = setup () in
  let t0 = Machine.now m in
  ignore (Remap.alloc_pages a ~npages:4 ~clear_fraction:1.0);
  let full = Machine.now m -. t0 in
  let t1 = Machine.now m in
  ignore (Remap.alloc_pages a ~npages:4 ~clear_fraction:0.0);
  let none = Machine.now m -. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "clearing costs (%.1f vs %.1f)" full none)
    true
    (full -. none >= 4.0 *. m.cost.Cost_model.page_zero *. 0.99)

let test_remap_free_pages_releases_frames () =
  let m, a, _ = setup () in
  let before = Phys_mem.free_frames m.Machine.pmem in
  let vpn = Remap.alloc_pages a ~npages:3 ~clear_fraction:0.0 in
  Remap.free_pages a ~vpn ~npages:3;
  check Alcotest.int "frames back" before (Phys_mem.free_frames m.Machine.pmem)

(* ------------------------------------------------------------------ *)
(* convert_zero_fill (pageout support)                                 *)
(* ------------------------------------------------------------------ *)

let test_convert_zero_fill_discards_and_rezeroes () =
  let m, a, _ = setup () in
  let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
  Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
  Access.write_word a ~vaddr:(vpn * ps m) 99;
  let free0 = Phys_mem.free_frames m.Machine.pmem in
  Vm_map.convert_zero_fill a.Pd.map ~vpn ~npages:1;
  check Alcotest.int "frame released" (free0 + 1)
    (Phys_mem.free_frames m.Machine.pmem);
  check Alcotest.int "reads zero afterwards" 0
    (Access.read_word a ~vaddr:(vpn * ps m))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_bulk_roundtrip =
  QCheck.Test.make ~name:"bulk write/read roundtrip at any offset" ~count:100
    QCheck.(pair (int_bound 8000) (string_of_size Gen.(1 -- 5000)))
    (fun (off, s) ->
      QCheck.assume (String.length s > 0);
      let m, a, _ = setup () in
      let npages = 4 in
      let vpn = Vm_map.reserve_private a.Pd.map ~npages in
      Vm_map.map_zero_fill a.Pd.map ~vpn ~npages;
      let off = off mod ((npages * ps m) - String.length s) in
      let off = max 0 off in
      let va = (vpn * ps m) + off in
      Access.write_string a ~vaddr:va s;
      Bytes.to_string (Access.read_bytes a ~vaddr:va ~len:(String.length s)) = s)

let prop_checksum_matches_reference =
  QCheck.Test.make ~name:"checksum equals reference implementation" ~count:100
    QCheck.(string_of_size Gen.(1 -- 2000))
    (fun s ->
      QCheck.assume (String.length s > 0);
      let m, a, _ = setup () in
      let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
      Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
      QCheck.assume (String.length s <= ps m);
      Access.write_string a ~vaddr:(vpn * ps m) s;
      let reference =
        let sum = ref 0 in
        let n = String.length s in
        let i = ref 0 in
        while !i + 1 < n do
          sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
          i := !i + 2
        done;
        if !i < n then sum := !sum + (Char.code s.[!i] lsl 8);
        let fold x = (x land 0xFFFF) + (x lsr 16) in
        lnot (fold (fold !sum)) land 0xFFFF
      in
      Access.checksum a ~vaddr:(vpn * ps m) ~len:(String.length s) = reference)

let prop_cow_preserves_reader_view =
  QCheck.Test.make ~name:"COW: receiver view immune to sender writes"
    ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (v1, v2) ->
      let m, a, b = setup () in
      let vpn = Vm_map.reserve_private a.Pd.map ~npages:1 in
      Vm_map.map_zero_fill a.Pd.map ~vpn ~npages:1;
      Access.write_word a ~vaddr:(vpn * ps m) v1;
      Vm_map.copy_cow ~src:a.Pd.map ~dst:b.Pd.map ~vpn ~npages:1;
      Access.write_word a ~vaddr:(vpn * ps m) v2;
      Access.read_word b ~vaddr:(vpn * ps m) = v1)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "vm"
    [
      ( "mapping",
        [
          tc "zero-fill roundtrip" `Quick test_zero_fill_roundtrip;
          tc "zero-fill is zero" `Quick test_zero_fill_is_zero;
          tc "zero-fill charges page_zero" `Quick
            test_zero_fill_charges_page_zero;
          tc "unmapped access violates" `Quick test_unmapped_access_violates;
          tc "read-only write violates" `Quick test_read_only_write_violates;
          tc "no-access read violates" `Quick test_no_access_read_violates;
          tc "bulk rw cross page" `Quick test_bulk_rw_cross_page;
          tc "blit between domains" `Quick test_blit_between_domains;
          tc "checksum known value" `Quick test_checksum_known_value;
          tc "checksum odd length" `Quick test_checksum_odd_length;
        ] );
      ( "tlb-integration",
        [
          tc "miss once then hits" `Quick test_tlb_miss_once_then_hits;
          tc "asid isolation same vaddr" `Quick test_asid_isolation_same_vaddr;
          tc "downgrade shoots down" `Quick
            test_protect_downgrade_shoots_down_tlb;
          tc "upgrade via mod fault" `Quick test_protect_upgrade_mod_fault_path;
        ] );
      ( "deferred shootdowns",
        [
          tc "remove defers, identical re-enter elides" `Quick
            test_deferred_remove_reenter_elides;
          tc "changed translation shoots down" `Quick
            test_changed_translation_shoots_down;
          tc "pageout victim leaves pendings, realloc is clean" `Quick
            test_pageout_victim_pending_shootdown;
        ] );
      ( "cow",
        [
          tc "receiver sees data" `Quick test_cow_receiver_sees_data;
          tc "shares frames until write" `Quick test_cow_shares_frames_until_write;
          tc "write isolates" `Quick test_cow_write_isolates;
          tc "lazy update costs two faults" `Quick test_cow_lazy_update_two_faults;
          tc "claim when not shared" `Quick test_cow_claim_when_not_shared;
        ] );
      ( "remap",
        [
          tc "move semantics" `Quick test_remap_move_semantics;
          tc "source loses access" `Quick test_remap_source_access_fails_after_move;
          tc "clear fraction charges" `Quick test_remap_clear_fraction_charges;
          tc "free releases frames" `Quick test_remap_free_pages_releases_frames;
        ] );
      ( "pageout",
        [ tc "convert zero-fill" `Quick test_convert_zero_fill_discards_and_rezeroes ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bulk_roundtrip;
          QCheck_alcotest.to_alcotest prop_checksum_matches_reference;
          QCheck_alcotest.to_alcotest prop_cow_preserves_reader_view;
        ] );
    ]
