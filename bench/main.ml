(* Benchmark harness.

   Two things happen here:

   1. Bechamel micro/meso-benchmarks — one Test.make per paper artefact
      (Table 1, the remap table, Figures 3-6) measuring the real execution
      cost of the code paths that regenerate it, plus a few core-operation
      microbenchmarks. These quantify the *simulator*.

   2. The full reproduction printout: every table and figure of the paper,
      simulated-time results next to the paper's numbers. These quantify
      the *reproduction*.
*)

open Bechamel
open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module H = Fbufs_harness
module Testbed = H.Testbed
module Testproto = Fbufs_protocols.Testproto

(* ---------- steady-state fixtures reused across benchmark runs -------- *)

let roundtrip_fixture variant =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc = Testbed.allocator tb ~domains:[ app; recv ] variant in
  let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
  fun bytes ->
    let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
    Ipc.call conn msg ~handler:(fun received ->
        Msg.touch_read received ~as_:recv;
        Ipc.free_deferred conn received);
    Msg.free_all msg ~dom:app

let bench_table1 =
  let rt = roundtrip_fixture Fbuf.cached_volatile in
  Test.make ~name:"table1: cached/volatile 8-page roundtrip"
    (Staged.stage (fun () -> rt (8 * 4096)))

let bench_remap =
  let open Fbufs_vm in
  let m = Machine.create ~nframes:4096 () in
  let a = Pd.create m "a" and b = Pd.create m "b" in
  let npages = 16 in
  let vpn_a = Remap.alloc_pages a ~npages ~clear_fraction:0.0 in
  let vpn_b = Vm_map.reserve_private b.Pd.map ~npages in
  ignore (Remap.move ~src:a ~dst:b ~src_vpn:vpn_a ~npages ~dst_vpn:vpn_b ());
  Test.make ~name:"remap: 16-page ping-pong round"
    (Staged.stage (fun () ->
         ignore
           (Remap.move ~src:b ~dst:a ~src_vpn:vpn_b ~npages ~dst_vpn:vpn_a ());
         ignore
           (Remap.move ~src:a ~dst:b ~src_vpn:vpn_a ~npages ~dst_vpn:vpn_b ())))

let bench_fig3 =
  let rt = roundtrip_fixture Fbuf.volatile_only in
  Test.make ~name:"fig3: 64K volatile transfer"
    (Staged.stage (fun () -> rt 65536))

let bench_fig4 =
  let stack = H.Stacks.three_domains () in
  Test.make ~name:"fig4: 16K message through 3-domain loopback stack"
    (Staged.stage (fun () ->
         let msg =
           Testproto.make_message ~alloc:stack.H.Stacks.data_alloc
             ~as_:stack.H.Stacks.sender_dom ~bytes:16384 ()
         in
         stack.H.Stacks.send msg))

let bench_fig5 =
  Test.make ~name:"fig5: end-to-end user-user 64K run (4 msgs)"
    (Staged.stage (fun () ->
         ignore
           (H.Exp_fig5.run_one ~uncached:false ~config:H.Exp_fig5.User_user
              ~bytes:65536 ~nmsgs:4 ())))

let bench_fig6 =
  Test.make ~name:"fig6: end-to-end user-user 64K run, uncached (4 msgs)"
    (Staged.stage (fun () ->
         ignore
           (H.Exp_fig5.run_one ~uncached:true ~config:H.Exp_fig5.User_user
              ~bytes:65536 ~nmsgs:4 ())))

let bench_access =
  let m = Machine.create ~nframes:64 () in
  let d = Fbufs_vm.Pd.create m "bench" in
  let vpn = Fbufs_vm.Vm_map.reserve_private d.Fbufs_vm.Pd.map ~npages:4 in
  Fbufs_vm.Vm_map.map_zero_fill d.Fbufs_vm.Pd.map ~vpn ~npages:4;
  let va = vpn * 4096 in
  Fbufs_vm.Access.write_word d ~vaddr:va 1;
  Test.make ~name:"micro: charged word access (TLB hit)"
    (Staged.stage (fun () -> ignore (Fbufs_vm.Access.read_word d ~vaddr:va)))

let bench_msg_ops =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let fb = Allocator.alloc alloc ~npages:4 in
  let msg = Msg.of_fbuf fb ~off:0 ~len:16384 in
  Test.make ~name:"micro: message split+join at 4K"
    (Staged.stage (fun () ->
         let a, b = Msg.split msg 4096 in
         ignore (Msg.join a b)))

let bench_integrated =
  let tb = Testbed.create () in
  let app = Testbed.user_domain tb "app" in
  let alloc = Testbed.allocator tb ~domains:[ app ] Fbuf.cached_volatile in
  let fbs = List.init 8 (fun _ -> Allocator.alloc alloc ~npages:1) in
  let msg =
    List.fold_left
      (fun acc fb -> Msg.join acc (Msg.of_fbuf fb ~off:0 ~len:4096))
      Msg.empty fbs
  in
  let meta = Allocator.alloc alloc ~npages:1 in
  Test.make ~name:"micro: integrated DAG serialize (8 leaves)"
    (Staged.stage (fun () ->
         ignore (Fbufs_msg.Integrated.serialize msg ~meta ~as_:app)))

(* ---------- run + report ---------------------------------------------- *)

type row = { name : string; ns_per_run : float; r_square : float option }

let run_benchmarks ~quick =
  (* Per-test measurement budgets. The end-to-end figure-5/6 runs cost
     ~15 ms per iteration: under the light quota barely thirty samples
     land and allocator/GC noise dominates the OLS fit (r^2 of 0.58 and
     0.43 in the PR4 snapshot). They get a 6x quota and a stabilized
     heap; everything else keeps the cheap config. Benchmark names are
     the bench-diff join key, so they never change. *)
  let light =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.05 else 0.5))
      ~stabilize:false ()
  in
  let heavy =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.3 else 3.0))
      ~stabilize:true ()
  in
  (* The table1/fig3 roundtrips sit between the micros and the end-to-end
     runs (a few microseconds per iteration): under the light quota their
     OLS fits topped out around r^2 0.86-0.94 (PR6 snapshot). Two changes
     push both past 0.95: a stabilized heap with a 6x quota, and samples
     that start at 50 runs with a 5% geometric ramp — under the default
     start-at-1 sampling, most samples execute a handful of ~6 us
     iterations and fixed per-sample noise (timer, scheduler) swamps the
     signal the OLS fit needs. *)
  let steady =
    Benchmark.cfg ~limit:3000
      ~quota:(Time.second (if quick then 0.2 else 3.0))
      ~stabilize:true ~start:50 ~sampling:(`Geometric 1.05) ()
  in
  let tests =
    [
      (bench_table1, steady);
      (bench_remap, light);
      (bench_fig3, steady);
      (bench_fig4, light);
      (bench_fig5, heavy);
      (bench_fig6, heavy);
      (bench_access, light);
      (bench_msg_ops, light);
      (bench_integrated, light);
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let rows = ref [] in
  List.iter
    (fun (test, cfg) ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          rows :=
            { name; ns_per_run = ns; r_square = Analyze.OLS.r_square ols_result }
            :: !rows)
        analyzed)
    tests;
  (* Hashtbl.iter order is arbitrary; sort so the report (and the JSON
     artifact) is stable run to run. *)
  List.sort (fun a b -> compare a.name b.name) !rows

let print_rows rows =
  print_endline "== Bechamel: real execution cost of the harness ==";
  Printf.printf "%-52s  %14s\n" "benchmark" "ns/run";
  print_endline (String.make 70 '-');
  List.iter
    (fun r ->
      let est =
        if Float.is_nan r.ns_per_run then "             -"
        else Printf.sprintf "%14.1f" r.ns_per_run
      in
      Printf.printf "%-52s  %s\n" r.name est)
    rows;
  print_newline ()

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSON object per benchmark: name, ns_per_run, r_square, date
   (ISO 8601, UTC). NaN is not valid JSON, so a failed estimate or a
   missing r^2 is emitted as null. *)
let write_json ~file rows =
  let tm = Unix.gmtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let oc = open_out file in
  let fnum v =
    if Float.is_nan v then "null" else Printf.sprintf "%.1f" v
  in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      let r2 =
        match r.r_square with
        | Some v when not (Float.is_nan v) -> Printf.sprintf "%.6f" v
        | Some _ | None -> "null"
      in
      Printf.fprintf oc
        "  {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s, \"date\": \"%s\"}%s\n"
        (json_escape r.name) (fnum r.ns_per_run) r2 date
        (if i = List.length rows - 1 then "" else ",");)
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s (%d benchmarks)\n\n" file (List.length rows)

(* ---------- full reproduction ----------------------------------------- *)

let reproduce () =
  H.Exp_table1.print (H.Exp_table1.run ());
  H.Exp_remap.print (H.Exp_remap.run ());
  H.Exp_fig3.print (H.Exp_fig3.run ());
  H.Exp_fig4.print (H.Exp_fig4.run ());
  print_endline "\n-- Figure 5 (cached/volatile fbufs) --";
  H.Exp_fig5.print (H.Exp_fig5.run ~uncached:false ());
  print_endline "\n-- Figure 6 (uncached, non-volatile fbufs) --";
  H.Exp_fig5.print (H.Exp_fig5.run ~uncached:true ())

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--json FILE]\n\
     \  --quick      reduced measurement quota; skips the paper\n\
     \               reproduction printout (CI smoke mode)\n\
     \  --json FILE  also write the benchmark rows to FILE as JSON";
  exit 2

let () =
  let quick = ref false and json = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows = run_benchmarks ~quick:!quick in
  print_rows rows;
  (match !json with Some file -> write_json ~file rows | None -> ());
  if not !quick then reproduce ()
