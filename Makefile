.PHONY: all build test check model-check bench bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# The one gate CI runs: everything compiles (including examples and
# bench) and the full test suite passes.
check:
	dune build @all && dune runtest

# Differential check against the reference model: seeds 1-3, normal and
# adversary mode. Failures shrink to a minimal replayable sequence,
# also written to counterexample.txt (CI uploads it as an artifact).
model-check:
	dune exec bin/fbufs_cli.exe -- check --quick --out counterexample.txt

bench:
	dune exec bench/main.exe

# Full-quota benchmark run that also writes the machine-readable
# trajectory (one JSON object per benchmark: name, ns_per_run, r_square,
# date). BENCH_PR2.json is the committed snapshot for this PR.
bench-json:
	dune exec bench/main.exe -- --json BENCH_PR2.json

clean:
	dune clean
