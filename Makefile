.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# The one gate CI runs: everything compiles (including examples and
# bench) and the full test suite passes.
check:
	dune build @all && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
