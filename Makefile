.PHONY: all build test check lint model-check bench bench-json stats spans bench-diff bench-trend top clean ablation-tlb ablation-policy

all: build

build:
	dune build @all

test:
	dune runtest

# The one gate CI runs: everything compiles (including examples and
# bench) and the full test suite passes.
check:
	dune build @all && dune runtest

# Static fbuf-discipline analyzer: rules L1-L7 over the sources plus the
# Layer-B abstract interpreter over the built-in data-path specs. The
# shipped tree is clean, so the committed baseline is empty; a non-empty
# baseline only papers over known findings while a fix is in flight.
lint:
	dune exec bin/fbufs_cli.exe -- lint --format text --baseline lint_baseline.json

# Differential check against the reference model: seeds 1-3, normal and
# adversary mode. Failures shrink to a minimal replayable sequence,
# also written to counterexample.txt (CI uploads it as an artifact).
model-check:
	dune exec bin/fbufs_cli.exe -- check --quick --out counterexample.txt

bench:
	dune exec bench/main.exe

# Full-quota benchmark run that also writes the machine-readable
# trajectory (one JSON object per benchmark: name, ns_per_run, r_square,
# date). BENCH_PR10.json is the committed snapshot for this PR;
# BENCH_PR8.json is the previous one the regression gate diffs against.
bench-json:
	dune exec bench/main.exe -- --json BENCH_PR10.json

# Per-component cost attribution of a Table 1 run (simulated
# microseconds charged to alloc/map/unmap/tlb_flush/zero/secure/copy/...),
# plus the full exposition written to metrics.json.
stats:
	dune exec bin/fbufs_cli.exe -- stats table1 --metrics metrics.json

# Causal span recording over one fig5-style windowed run: per-transfer
# critical paths print to stdout (component costs sum exactly to the
# ledger charge), the span trees land in spans.jsonl, and a Chrome
# trace_event rendering with follows-from flow arrows in spans-chrome.json.
spans:
	dune exec bin/fbufs_cli.exe -- spans --out spans.jsonl --chrome spans-chrome.json

# The bench-trajectory regression gate: the committed snapshot of this
# PR against the previous one, same-name benchmarks joined, nonzero exit
# when any regresses beyond tolerance (or disappears). Both snapshots
# were collected on the same machine with make bench-json, so the deltas
# are meaningful; 50% tolerance absorbs scheduler noise on ~ms runs.
bench-diff:
	dune exec bin/fbufs_cli.exe -- bench-diff BENCH_PR8.json BENCH_PR10.json --tolerance-pct 50

# The whole-series trend gate: every committed snapshot in chronological
# order, per-benchmark OLS slope and two-segment changepoint. Fails when
# any benchmark's post-changepoint mean exceeds the pre-changepoint mean
# by more than tolerance, or a benchmark disappears from the latest
# snapshot — a slow drift the pairwise diff cannot see.
bench-trend:
	dune exec bin/fbufs_cli.exe -- bench-trend BENCH_PR2.json BENCH_PR4.json \
	  BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json \
	  BENCH_PR10.json --tolerance-pct 50 --json bench-trend.json

# Periodic snapshot frames of a Table 1 run on the simulated timeline:
# throughput counters with per-interval deltas, drops, cost shares and
# transfer-wall quantiles, one frame per simulated 50 ms.
top:
	dune exec bin/fbufs_cli.exe -- top table1 --interval-us 50000

# TLB shootdown deferral/elision ablation: the on/off comparison table,
# plus a folded-stack rendering of a Table 1 run in both modes and their
# diff (feed either .folded file to flamegraph.pl or speedscope; the diff
# shows exactly which stacks the elision removed cost from). CI uploads
# all three files as an artifact.
ablation-tlb:
	dune exec bin/fbufs_cli.exe -- ablation --only tlb-elision
	dune exec bin/fbufs_cli.exe -- stats table1 --folded table1-elide.folded
	dune exec bin/fbufs_cli.exe -- stats table1 --no-tlb-elision --folded table1-noelide.folded
	diff -u table1-noelide.folded table1-elide.folded > ablation-tlb-folded.diff; test $$? -le 1
	@echo "wrote table1-elide.folded table1-noelide.folded ablation-tlb-folded.diff"

# Buffer-sharing ablation: every congestion scenario (incast, bursty,
# mixed RPC) under the static and fb-dynamic policies at equal pool
# size, with the per-class drop decomposition. Deterministic simulated
# time — the same table is golden-pinned by the test suite; CI uploads
# it as an artifact.
ablation-policy:
	dune exec bin/fbufs_cli.exe -- ablation --only buffer-sharing

clean:
	dune clean
