(** Windowed gauge time series: a fixed-capacity ring buffer per
    (gauge, labels) cell, fed by explicitly ticking a metrics instance.
    Once a window is full the oldest point is overwritten, so memory is
    bounded regardless of run length. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) points retained per series. Raises
    [Invalid_argument] when not positive. *)

val capacity : t -> int

val ticks : t -> int
(** Number of {!tick} calls so far. *)

val tick : t -> now_us:float -> Metrics.t -> unit
(** Sample every touched [Gauge] cell of the instance at [now_us]. *)

val series : t -> (string * string list * (float * float) array) list
(** Every tracked series in first-seen order: gauge name, label values,
    and its [(ts_us, value)] points oldest first (at most
    {!capacity}). *)

val find :
  t -> name:string -> labels:string list -> (float * float) array option
