module Json = Fbufs_trace.Json

(* DDSketch-style mergeable quantile sketch.

   Positive values land in log-spaced buckets: x maps to the bucket
   index ceil(log_gamma x) with gamma = (1+alpha)/(1-alpha), so the
   bucket midpoint 2*gamma^i/(gamma+1) is within relative error alpha of
   every value in the bucket. Zeros get their own bucket and negatives a
   mirrored table. All per-bucket state is an integer count, so [merge]
   is exact — associative and commutative under {!equal} — which is what
   lets per-path sketches roll up across machines without error
   accumulation. The running [sum] is float (kept for reporting and for
   the registry's scalar view) and is deliberately excluded from
   {!equal}. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  pos : (int, int) Hashtbl.t;
  neg : (int, int) Hashtbl.t;
  mutable zero : int;
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create ?(alpha = 0.01) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    pos = Hashtbl.create 64;
    neg = Hashtbl.create 8;
    zero = 0;
    n = 0;
    sum = 0.0;
    minv = Float.infinity;
    maxv = Float.neg_infinity;
  }

let alpha t = t.alpha
let count t = t.n
let sum t = t.sum
let min_value t = if t.n = 0 then Float.nan else t.minv
let max_value t = if t.n = 0 then Float.nan else t.maxv

let bucket t x = int_of_float (Float.ceil (log x /. t.log_gamma))

let bump tbl i =
  Hashtbl.replace tbl i (1 + Option.value ~default:0 (Hashtbl.find_opt tbl i))

let add t x =
  if Float.is_nan x then invalid_arg "Sketch.add: nan";
  if x = 0.0 then t.zero <- t.zero + 1
  else if x > 0.0 then bump t.pos (bucket t x)
  else bump t.neg (bucket t (-.x));
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x

let midpoint t i = 2.0 *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.0)

let sorted tbl =
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile t p =
  if t.n = 0 then Float.nan
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)))
    in
    (* Ascending value order: negatives (largest magnitude first), the
       zero bucket, then positives. *)
    let seen = ref 0 in
    let result = ref Float.nan in
    let take v c =
      if Float.is_nan !result then begin
        seen := !seen + c;
        if !seen >= rank then result := v
      end
    in
    List.iter
      (fun (i, c) -> take (-.midpoint t i) c)
      (List.rev (sorted t.neg));
    take 0.0 t.zero;
    List.iter (fun (i, c) -> take (midpoint t i) c) (sorted t.pos);
    (* Clamp into the observed range: the extreme buckets over-shoot
       their midpoints while min/max are exact. *)
    Float.max t.minv (Float.min t.maxv !result)
  end

let merge_into dst src =
  Hashtbl.iter (fun i c -> Hashtbl.replace dst.pos i
    (c + Option.value ~default:0 (Hashtbl.find_opt dst.pos i))) src.pos;
  Hashtbl.iter (fun i c -> Hashtbl.replace dst.neg i
    (c + Option.value ~default:0 (Hashtbl.find_opt dst.neg i))) src.neg;
  dst.zero <- dst.zero + src.zero;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.minv < dst.minv then dst.minv <- src.minv;
  if src.maxv > dst.maxv then dst.maxv <- src.maxv

let merge a b =
  if a.alpha <> b.alpha then
    invalid_arg "Sketch.merge: sketches have different alpha";
  let t = create ~alpha:a.alpha () in
  merge_into t a;
  merge_into t b;
  t

let equal a b =
  a.alpha = b.alpha && a.zero = b.zero && a.n = b.n
  && sorted a.pos = sorted b.pos
  && sorted a.neg = sorted b.neg
  && (a.n = 0 || (a.minv = b.minv && a.maxv = b.maxv))

(* -- serialization ------------------------------------------------------ *)

let buckets_json tbl =
  Json.List
    (List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ]) (sorted tbl))

let to_json t =
  Json.Obj
    [
      ("alpha", Json.Float t.alpha);
      ("zero", Json.Int t.zero);
      ("n", Json.Int t.n);
      ("sum", Json.Float t.sum);
      ("min", (if t.n = 0 then Json.Null else Json.Float t.minv));
      ("max", (if t.n = 0 then Json.Null else Json.Float t.maxv));
      ("pos", buckets_json t.pos);
      ("neg", buckets_json t.neg);
    ]

exception Bad_sketch of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_sketch s)) fmt

let jnum name = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> bad "field %S: expected number" name

let jint name = function
  | Json.Int i -> i
  | _ -> bad "field %S: expected int" name

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> bad "missing field %S" name

let read_buckets name tbl j =
  match field name j with
  | Json.List rows ->
      List.iter
        (fun row ->
          match row with
          | Json.List [ Json.Int i; Json.Int c ] -> Hashtbl.replace tbl i c
          | _ -> bad "field %S: expected [index, count] pairs" name)
        rows
  | _ -> bad "field %S: expected list" name

let of_json j =
  let t = create ~alpha:(jnum "alpha" (field "alpha" j)) () in
  t.zero <- jint "zero" (field "zero" j);
  t.n <- jint "n" (field "n" j);
  t.sum <- jnum "sum" (field "sum" j);
  (match field "min" j with
  | Json.Null -> ()
  | v -> t.minv <- jnum "min" v);
  (match field "max" j with
  | Json.Null -> ()
  | v -> t.maxv <- jnum "max" v);
  read_buckets "pos" t.pos j;
  read_buckets "neg" t.neg j;
  t

let to_json_string t = Json.to_string (to_json t)
let of_json_string s = of_json (Json.parse s)
