(* Cost-attribution ledger: every simulated-us charge lands in a cell
   keyed by (machine, component, charge kind).

   Two accumulators serve two different exactness claims:

   - Per-cell sums use Neumaier-compensated addition, so the per-component
     breakdown is the correctly rounded sum of its charges regardless of
     grouping. The printed total is DEFINED as the plain left fold of the
     per-component sums in [Component.all] order, which is exactly the
     computation a reader (or a test) redoes — component sum equals total
     by construction, with no epsilon.

   - A plain per-machine accumulator [charged] adds every charge in
     arrival order, the same float operations in the same order as the
     machine's own busy-time accumulator — so [charged_us] is bitwise
     equal to [Machine.busy_us] and proves no charge escaped
     attribution. *)

type cell = { mutable sum : float; mutable err : float; mutable n : int }

type t = {
  cells : (string * int * string, cell) Hashtbl.t;
  charged : (string, float ref) Hashtbl.t;
  mutable machine_order : string list; (* reverse insertion order *)
}

let create () =
  { cells = Hashtbl.create 64; charged = Hashtbl.create 4; machine_order = [] }

let clear t =
  Hashtbl.reset t.cells;
  Hashtbl.reset t.charged;
  t.machine_order <- []

(* Neumaier variant of Kahan summation. *)
let cell_add c x =
  let s = c.sum +. x in
  c.err <-
    (c.err
    +. if Float.abs c.sum >= Float.abs x then c.sum -. s +. x else x -. s +. c.sum
    );
  c.sum <- s;
  c.n <- c.n + 1

let cell_value c = c.sum +. c.err

let charge t ~machine ~comp ~kind us =
  let key = (machine, Component.index comp, kind) in
  (match Hashtbl.find t.cells key with
  | c -> cell_add c us
  | exception Not_found ->
      let c = { sum = 0.0; err = 0.0; n = 0 } in
      Hashtbl.add t.cells key c;
      cell_add c us);
  match Hashtbl.find t.charged machine with
  | r -> r := !r +. us
  | exception Not_found ->
      Hashtbl.add t.charged machine (ref us);
      t.machine_order <- machine :: t.machine_order

let charged_us t ~machine =
  match Hashtbl.find_opt t.charged machine with Some r -> !r | None -> 0.0

let machines t = List.rev t.machine_order

type row = {
  machine : string;
  comp : Component.t;
  kind : string;
  us : float;
  count : int;
}

let comp_of_index i =
  match List.nth_opt Component.all i with Some c -> c | None -> Component.Other

let rows t =
  Hashtbl.fold
    (fun (machine, ci, kind) c acc ->
      { machine; comp = comp_of_index ci; kind; us = cell_value c; count = c.n }
      :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match compare a.machine b.machine with
         | 0 -> (
             match compare (Component.index a.comp) (Component.index b.comp) with
             | 0 -> compare a.kind b.kind
             | c -> c)
         | c -> c)

let by_component t =
  let r = rows t in
  List.map
    (fun comp ->
      ( comp,
        List.fold_left
          (fun acc row -> if row.comp = comp then acc +. row.us else acc)
          0.0 r ))
    Component.all

(* The total is the same left fold over the same per-component values a
   caller of [by_component] performs: equality is structural, not
   numerical luck. *)
let total_us t =
  List.fold_left (fun acc (_, us) -> acc +. us) 0.0 (by_component t)

let charge_count t =
  Hashtbl.fold (fun _ c acc -> acc + c.n) t.cells 0

(* Collapsed-stack (flamegraph) export: one "frame1;frame2;frame3 value"
   line per cell, value in integer nanoseconds of simulated time so
   flamegraph tooling (which expects integer sample counts) keeps three
   decimal digits of the us figure. *)
let collapsed t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      let kind = if r.kind = "" then "untyped" else r.kind in
      Buffer.add_string b
        (Printf.sprintf "%s;%s;%s %.0f\n" r.machine (Component.label r.comp)
           kind (r.us *. 1000.0)))
    (rows t);
  Buffer.contents b
