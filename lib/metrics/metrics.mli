(** Typed metrics registry.

    Metric {e definitions} (name, help, label names, kind) are global and
    registered once at module-initialization time; {e values} live in
    per-run instances ({!t}). Instrumented code guards every update on the
    machine carrying an instance, so a run without one pays nothing —
    "disabled" is the absence of the instance, not a branch per sample.

    Definition names must match [fbufs_[a-z0-9_]+] and be unique; the
    lint rule L6 additionally checks, statically, that registrations use
    literal names at module init. *)

type kind = Counter | Gauge | Hist | Sketch

type def = {
  id : int;  (** dense registration index *)
  name : string;
  help : string;
  labels : string list;  (** label {e names}; values are per-cell *)
  kind : kind;
}

val counter : name:string -> help:string -> ?labels:string list -> unit -> def
(** Register a monotone counter. Raises [Invalid_argument] if [name] does
    not match [fbufs_[a-z0-9_]+] or is already registered. *)

val gauge : name:string -> help:string -> ?labels:string list -> unit -> def
(** Register a gauge (set to current level). Raises [Invalid_argument] on
    a bad or duplicate name, as {!counter}. *)

val histogram :
  name:string -> help:string -> ?labels:string list -> unit -> def
(** Register a distribution metric backed by
    {!Fbufs_trace.Histogram}. Raises [Invalid_argument] on a bad or
    duplicate name, as {!counter}. *)

val sketch : name:string -> help:string -> ?labels:string list -> unit -> def
(** Register a distribution metric backed by a mergeable quantile
    {!Sketch} (default relative-error bound) instead of a log-bucket
    histogram — the bounded-memory choice for high-cardinality label
    sets. Raises [Invalid_argument] on a bad or duplicate name, as
    {!counter}. *)

val definitions : unit -> def list
(** All registered definitions in registration order. *)

val find_def : string -> def option

(** {1 Instances} *)

type t

val create : unit -> t
(** Fresh instance: all cells zero, empty ledger. *)

val ledger : t -> Ledger.t
(** The cost-attribution ledger carried alongside the counters. *)

val incr : t -> def -> ?labels:string list -> unit -> unit
val add : t -> def -> ?labels:string list -> float -> unit

val set : t -> def -> ?labels:string list -> float -> unit
(** Gauge write (overwrites the cell). *)

val observe : t -> def -> ?labels:string list -> float -> unit
(** Distribution sample (histogram or sketch, per the def's kind); on a
    scalar def behaves like {!add}. *)

val value : t -> def -> labels:string list -> float option
(** Current value of one cell ([None] if never touched). Histograms and
    sketches report their sample sum. All three accessors raise
    [Invalid_argument] when the label-value count does not match the
    definition. *)

val value_by_name : t -> name:string -> labels:string list -> float option

val total_by_name : t -> name:string -> float
(** Sum over every label combination; 0 for untouched or unknown names. *)

type sample = {
  def : def;
  labels : string list;
  value : float;
  count : int;  (** number of updates that hit this cell *)
  histo : Fbufs_trace.Histogram.t option;  (** populated for [Hist] cells *)
  sketch : Sketch.t option;  (** populated for [Sketch] cells *)
}

val samples : t -> sample list
(** Every touched cell, sorted by definition id then labels. *)
