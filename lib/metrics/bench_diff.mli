(** Bench-trajectory regression gate.

    Compares two bench snapshots (the JSON emitted by
    [bench/main.ml --json]) benchmark-by-benchmark and classifies each
    ns/run delta against a tolerance. The gate {e fails} on any
    [Regression] — and on any benchmark that existed in the old snapshot
    but is missing from the new one, because silently dropping a
    benchmark is how regressions hide. *)

type row = { name : string; ns_per_run : float option; r_square : float option }

exception Bad_snapshot of string

val load_string : string -> row list
(** Raises {!Bad_snapshot} on structural problems and
    [Fbufs_trace.Json.Parse_error] on malformed JSON. *)

val load_file : string -> row list
(** Raises {!Bad_snapshot}, [Fbufs_trace.Json.Parse_error] and
    [Sys_error] as {!load_string}/[open_in]. *)

type status = Ok_ | Regression | Improvement | Added | Removed

type entry = {
  bench : string;
  old_ns : float option;
  new_ns : float option;
  delta_pct : float option;  (** (new − old)/old × 100 *)
  status : status;
}

type result = { entries : entry list; tolerance_pct : float; failed : bool }

val diff : old_:row list -> new_:row list -> tolerance_pct:float -> result

val render : result -> string
(** Fixed-width table plus a PASS/FAIL trailer line. *)
