(** Exposition formats for a metrics instance.

    Renders registry cells and the cost ledger as Prometheus text or
    JSON. The ledger appears in both as a synthetic counter family
    [fbufs_cost_us_total{machine,component,kind}], so one exposition
    carries the whole observable state. *)

val to_prometheus : Metrics.t -> string
(** Prometheus text format: [# HELP]/[# TYPE] headers followed by
    [name{label="v"} value] lines; histograms emit [_count], [_sum] and
    p50/p90/p99 quantile lines. *)

val to_json : Metrics.t -> Fbufs_trace.Json.t
val to_json_string : Metrics.t -> string

type flat = { name : string; labels : (string * string) list; value : float }
(** One sample as parsed back from JSON exposition. *)

exception Bad_exposition of string

val of_json : Fbufs_trace.Json.t -> flat list
(** Parse JSON exposition back to flat samples (round-trip check); raises
    {!Bad_exposition} on structural surprises. *)

val of_json_string : string -> flat list
(** Raises {!Bad_exposition} (and [Fbufs_trace.Json.Parse_error] on
    malformed JSON). *)
