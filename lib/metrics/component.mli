(** Table 1 cost components.

    Every simulated-microsecond charge is attributed to one component.
    The first eight constructors are the paper's Table 1 decomposition of
    a cross-domain transfer (allocation, pmap update, pmap removal, TLB
    flush, zero-fill, secure, data copy, aggregate-object support); the
    remainder classify work outside Table 1's scope — IPC control
    transfer, protocol processing, network driver, per-word touches — so
    the attribution is total. [Other] is only ever produced by a charge
    whose call site carries no tag. [Policy] tags buffer-sharing policy
    work (admission checks and victim scans, see [Fbufs_policy]). *)

type t =
  | Alloc
  | Map
  | Unmap
  | Tlb_flush
  | Zero
  | Secure
  | Copy
  | Dag
  | Ipc
  | Proto
  | Net
  | Touch
  | Other
  | Policy

val all : t list
(** Every component, in a fixed report order. *)

val label : t -> string
(** Stable lower-case name, e.g. ["tlb_flush"]. *)

val of_label : string -> t option

val index : t -> int
(** Dense index in [0, List.length all); follows the order of {!all}. *)

val table1 : t list
(** The paper's own eight components. *)

val in_table1 : t -> bool
