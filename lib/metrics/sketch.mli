(** DDSketch-style mergeable quantile sketch.

    O(1) per sample, O(log_gamma range) space, and a relative-error
    guarantee: for any quantile, the reported value is within relative
    error [alpha] of the exact order statistic (gamma = (1+alpha)/(1-alpha)
    log-spaced buckets; zeros and negatives handled separately). All
    distribution state is integer bucket counts, so {!merge} is exact —
    associative and commutative under {!equal} — which is what makes
    per-path sketches roll up across machines without error growth,
    unlike the unbounded per-path histograms they replace. *)

type t

val create : ?alpha:float -> unit -> t
(** Fresh sketch with relative-error bound [alpha] (default 0.01).
    Raises [Invalid_argument] unless [0 < alpha < 1]. *)

val alpha : t -> float
val add : t -> float -> unit
(** O(1). Raises [Invalid_argument] on nan. *)

val count : t -> int
val sum : t -> float
(** Running sum of samples — reporting only; not part of {!equal}. *)

val min_value : t -> float
val max_value : t -> float
(** Exact extremes; nan while empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in percent (0–100): within relative error
    [alpha] of the exact p-th percentile of the samples, clamped into
    [[min_value, max_value]]. nan while empty. *)

val merge : t -> t -> t
(** Pure merge; the result distributes as if every sample of both inputs
    had been {!add}ed to one sketch. Raises [Invalid_argument] when the
    alphas differ. *)

val equal : t -> t -> bool
(** Equality of distribution state (alpha, counts, extremes); ignores
    the float {!sum}. [merge] is associative and commutative under this
    equality. *)

(** {1 Serialization} *)

exception Bad_sketch of string

val to_json : t -> Fbufs_trace.Json.t
val of_json : Fbufs_trace.Json.t -> t
(** Raises {!Bad_sketch} on malformed input. Round-trips: restores state
    {!equal} to (and with the same {!sum} as) the original. *)

val to_json_string : t -> string
val of_json_string : string -> t
