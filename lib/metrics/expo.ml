(* Exposition: render a metrics instance (registry cells + ledger) as
   Prometheus text or JSON, and parse the JSON back for round-trip
   testing. The ledger is exposed as a synthetic counter family
   [fbufs_cost_us_total{machine,component,kind}] so one scrape carries
   both the live counters and the cost attribution. *)

module Json = Fbufs_trace.Json
module Histogram = Fbufs_trace.Histogram

let kind_str = function
  | Metrics.Counter -> "counter"
  | Metrics.Gauge -> "gauge"
  | Metrics.Hist -> "histogram"
  | Metrics.Sketch -> "sketch"

(* Prometheus label-value escaping: backslash, quote, newline. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | _ -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let label_str names values =
  if names = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map2 (fun n v -> Printf.sprintf "%s=%S" n (escape v)) names values)
    ^ "}"

let fnum x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

(* Ledger rows presented as one more metric family. *)
let ledger_family ledger =
  List.map
    (fun (r : Ledger.row) ->
      ( [ r.machine; Component.label r.comp;
          (if r.kind = "" then "untyped" else r.kind) ],
        r.us,
        r.count ))
    (Ledger.rows ledger)

let ledger_name = "fbufs_cost_us_total"
let ledger_help = "Simulated microseconds charged, by Table 1 component"
let ledger_labels = [ "machine"; "component"; "kind" ]

let to_prometheus t =
  let b = Buffer.create 4096 in
  let emit_header name help kind =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let samples = Metrics.samples t in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (s : Metrics.sample) ->
      let d = s.def in
      if not (Hashtbl.mem seen d.id) then begin
        Hashtbl.add seen d.id ();
        emit_header d.name d.help (kind_str d.kind)
      end;
      let distribution ~count ~sum ~percentile =
        let ls = label_str d.labels s.labels in
        Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" d.name ls count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" d.name ls (fnum sum));
        List.iter
          (fun p ->
            let q =
              label_str
                (d.labels @ [ "quantile" ])
                (s.labels @ [ Printf.sprintf "%.2f" (p /. 100.0) ])
            in
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" d.name q (fnum (percentile p))))
          [ 50.0; 90.0; 99.0 ]
      in
      match (s.histo, s.sketch) with
      | Some h, _ ->
          distribution ~count:(Histogram.count h) ~sum:(Histogram.sum h)
            ~percentile:(Histogram.percentile h)
      | None, Some sk ->
          distribution ~count:(Sketch.count sk) ~sum:(Sketch.sum sk)
            ~percentile:(Sketch.quantile sk)
      | None, None ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" d.name
               (label_str d.labels s.labels)
               (fnum s.value)))
    samples;
  let rows = ledger_family (Metrics.ledger t) in
  if rows <> [] then begin
    emit_header ledger_name ledger_help "counter";
    List.iter
      (fun (labels, us, _) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" ledger_name
             (label_str ledger_labels labels)
             (fnum us)))
      rows
  end;
  Buffer.contents b

let sample_json name kind help (labels_n : string list) rows =
  Json.Obj
    [
      ("name", Json.String name);
      ("type", Json.String kind);
      ("help", Json.String help);
      ( "samples",
        Json.List
          (List.map
             (fun (labels_v, value, count) ->
               Json.Obj
                 [
                   ( "labels",
                     Json.Obj
                       (List.map2
                          (fun n v -> (n, Json.String v))
                          labels_n labels_v) );
                   ("value", Json.Float value);
                   ("count", Json.Int count);
                 ])
             rows) );
    ]

let to_json t =
  let samples = Metrics.samples t in
  let ids =
    List.sort_uniq compare
      (List.map (fun (s : Metrics.sample) -> s.def.Metrics.id) samples)
  in
  let families =
    List.filter_map
      (fun id ->
        match
          List.find_opt (fun (s : Metrics.sample) -> s.def.Metrics.id = id)
            samples
        with
        | None -> None
        | Some first ->
            let d = first.def in
            let rows =
              List.filter_map
                (fun (s : Metrics.sample) ->
                  if s.def.Metrics.id = id then Some (s.labels, s.value, s.count)
                  else None)
                samples
            in
            Some (sample_json d.name (kind_str d.kind) d.help d.labels rows))
      ids
  in
  let ledger_rows = ledger_family (Metrics.ledger t) in
  let families =
    if ledger_rows = [] then families
    else
      families
      @ [ sample_json ledger_name "counter" ledger_help ledger_labels
            ledger_rows ]
  in
  Json.Obj [ ("metrics", Json.List families) ]

let to_json_string t = Json.to_string (to_json t)

type flat = { name : string; labels : (string * string) list; value : float }

exception Bad_exposition of string

let jstr = function
  | Json.String s -> s
  | _ -> raise (Bad_exposition "expected string")

let jnum = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> raise (Bad_exposition "expected number")

let of_json j =
  match Json.member "metrics" j with
  | Some (Json.List families) ->
      List.concat_map
        (fun fam ->
          let name =
            match Json.member "name" fam with
            | Some v -> jstr v
            | None -> raise (Bad_exposition "family without name")
          in
          match Json.member "samples" fam with
          | Some (Json.List rows) ->
              List.map
                (fun row ->
                  let labels =
                    match Json.member "labels" row with
                    | Some (Json.Obj kvs) ->
                        List.map (fun (k, v) -> (k, jstr v)) kvs
                    | _ -> []
                  in
                  let value =
                    match Json.member "value" row with
                    | Some v -> jnum v
                    | None -> raise (Bad_exposition "sample without value")
                  in
                  { name; labels; value })
                rows
          | _ -> raise (Bad_exposition "family without samples"))
        families
  | _ -> raise (Bad_exposition "missing metrics list")

let of_json_string s = of_json (Json.parse s)
