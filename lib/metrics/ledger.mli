(** Cost-attribution ledger.

    Every simulated-microsecond charge is recorded under a
    [(machine, component, charge kind)] key; the per-component breakdown
    and the collapsed-stack export are read out of these cells. The
    ledger never reads wall-clock time and never advances simulated time:
    it only observes the charges the machines make.

    Exactness contract: {!total_us} is defined as the plain left fold of
    the {!by_component} values in [Component.all] order, so a caller that
    sums {!by_component} reproduces {!total_us} exactly (no epsilon). And
    {!charged_us} accumulates charges per machine in arrival order with
    the same float additions the machine's busy counter performs, so it
    is bitwise equal to [Machine.busy_us] for machines that carried the
    ledger for their whole life — proving the attribution is complete. *)

type t

val create : unit -> t
val clear : t -> unit

val charge :
  t -> machine:string -> comp:Component.t -> kind:string -> float -> unit
(** Record [us] simulated microseconds. [kind] is the charge's trace kind
    (["pmap.enter"], ...); pass [""] for untyped charges. *)

val charged_us : t -> machine:string -> float
(** Arrival-ordered total for one machine name; 0 if never charged.
    Machines created with equal names share one accumulator. *)

val machines : t -> string list
(** Machine names in first-charge order. *)

type row = {
  machine : string;
  comp : Component.t;
  kind : string;
  us : float;
  count : int;
}

val rows : t -> row list
(** Every cell, sorted by machine, component order, then kind. *)

val by_component : t -> (Component.t * float) list
(** One entry per component of [Component.all] (zeros included),
    aggregated over machines and kinds. *)

val total_us : t -> float
(** Left fold of {!by_component} — the breakdown's printed total. *)

val charge_count : t -> int
(** Number of individual charges recorded. *)

val collapsed : t -> string
(** Flamegraph-compatible collapsed stacks:
    ["machine;component;kind <ns>\n"] per cell (integer simulated
    nanoseconds, so stack tools that expect integral counts keep
    sub-microsecond resolution). *)
