(* Windowed time series over registry gauges.

   A fixed-capacity ring buffer per (gauge, labels) cell: [tick] samples
   every touched gauge of a metrics instance at the caller's timestamp,
   overwriting the oldest point once the window is full. Like the rest
   of the observability layer this is pay-for-play — nothing samples
   unless an instance exists and someone ticks it. *)

type ring = {
  buf : (float * float) array;  (* (ts_us, value) *)
  mutable head : int;  (* next write position *)
  mutable len : int;
}

type t = {
  capacity : int;
  rings : (string * string list, ring) Hashtbl.t;
  mutable order : (string * string list) list;  (* newest first *)
  mutable ticks : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be > 0";
  { capacity; rings = Hashtbl.create 16; order = []; ticks = 0 }

let capacity t = t.capacity
let ticks t = t.ticks

let push t key ts v =
  let r =
    match Hashtbl.find_opt t.rings key with
    | Some r -> r
    | None ->
        let r = { buf = Array.make t.capacity (0.0, 0.0); head = 0; len = 0 } in
        Hashtbl.add t.rings key r;
        t.order <- key :: t.order;
        r
  in
  r.buf.(r.head) <- (ts, v);
  r.head <- (r.head + 1) mod t.capacity;
  if r.len < t.capacity then r.len <- r.len + 1

let tick t ~now_us mx =
  t.ticks <- t.ticks + 1;
  List.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.def.Metrics.kind = Metrics.Gauge then
        push t (s.Metrics.def.Metrics.name, s.Metrics.labels) now_us
          s.Metrics.value)
    (Metrics.samples mx)

let points r =
  Array.init r.len (fun i ->
      r.buf.((r.head - r.len + i + Array.length r.buf * 2) mod Array.length r.buf))

let series t =
  List.rev_map
    (fun key ->
      let name, labels = key in
      (name, labels, points (Hashtbl.find t.rings key)))
    t.order

let find t ~name ~labels =
  Option.map points (Hashtbl.find_opt t.rings (name, labels))
