(* Live metrics registry.

   Definitions are global and immutable: a module registers its metric
   names once at init time (the lint rule L6 enforces literal names and
   init-time registration), so the set of definitions is a static
   property of the build, independent of which machines run. Values live
   in per-run instances ([t]) so concurrent testbeds and repeated
   experiment runs never bleed counts into each other, and so "metrics
   disabled" is represented by the absence of an instance — the
   instrumented code paths then do no registry work at all. *)

type kind = Counter | Gauge | Hist | Sketch

type def = {
  id : int;
  name : string;
  help : string;
  labels : string list;
  kind : kind;
}

(* Global definition table: name -> def, insertion-ordered by id. *)
let defs : (string, def) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let name_ok name =
  String.length name > 6
  && String.sub name 0 6 = "fbufs_"
  && String.for_all
       (fun ch -> (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch = '_')
       name

let register kind ~name ~help ?(labels = []) () =
  if not (name_ok name) then
    invalid_arg
      (Printf.sprintf "Metrics.register: name %S must match fbufs_[a-z0-9_]+"
         name);
  if Hashtbl.mem defs name then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
  let d = { id = !next_id; name; help; labels; kind } in
  incr next_id;
  Hashtbl.add defs name d;
  d

let counter ~name ~help ?labels () = register Counter ~name ~help ?labels ()
let gauge ~name ~help ?labels () = register Gauge ~name ~help ?labels ()
let histogram ~name ~help ?labels () = register Hist ~name ~help ?labels ()
let sketch ~name ~help ?labels () = register Sketch ~name ~help ?labels ()

let definitions () =
  Hashtbl.fold (fun _ d acc -> d :: acc) defs []
  |> List.sort (fun a b -> compare a.id b.id)

let find_def name = Hashtbl.find_opt defs name

(* A value cell. Counters and gauges use [v]; histograms use [hist];
   sketch-kind metrics use [sk]. [n] counts observations (for
   distributions and counter increments). *)
type cell = {
  mutable v : float;
  mutable n : int;
  hist : Fbufs_trace.Histogram.t option;
  sk : Sketch.t option;
}

type t = {
  cells : (int * string list, cell) Hashtbl.t;
  ledger : Ledger.t;
}

let create () = { cells = Hashtbl.create 128; ledger = Ledger.create () }
let ledger t = t.ledger

let check_labels d labels =
  if List.length labels <> List.length d.labels then
    invalid_arg
      (Printf.sprintf "Metrics: %s expects %d label values, got %d" d.name
         (List.length d.labels) (List.length labels))

let cell t d labels =
  check_labels d labels;
  let key = (d.id, labels) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c =
        {
          v = 0.0;
          n = 0;
          hist =
            (match d.kind with
            | Hist -> Some (Fbufs_trace.Histogram.create ())
            | Counter | Gauge | Sketch -> None);
          sk =
            (match d.kind with
            | Sketch -> Some (Sketch.create ())
            | Counter | Gauge | Hist -> None);
        }
      in
      Hashtbl.add t.cells key c;
      c

let add t d ?(labels = []) x =
  let c = cell t d labels in
  c.v <- c.v +. x;
  c.n <- c.n + 1

let incr t d ?labels () = add t d ?labels 1.0

let set t d ?(labels = []) x =
  let c = cell t d labels in
  c.v <- x;
  c.n <- c.n + 1

let observe t d ?(labels = []) x =
  let c = cell t d labels in
  (match (c.hist, c.sk) with
  | Some h, _ -> Fbufs_trace.Histogram.add h x
  | None, Some sk -> Sketch.add sk x
  | None, None -> c.v <- c.v +. x);
  c.n <- c.n + 1

let cell_value d c =
  match (d.kind, c.hist, c.sk) with
  | Hist, Some h, _ -> Fbufs_trace.Histogram.sum h
  | Sketch, _, Some sk -> Sketch.sum sk
  | _ -> c.v

let value t d ~labels =
  check_labels d labels;
  match Hashtbl.find_opt t.cells (d.id, labels) with
  | Some c -> Some (cell_value d c)
  | None -> None

let value_by_name t ~name ~labels =
  match find_def name with None -> None | Some d -> value t d ~labels

let total_by_name t ~name =
  match find_def name with
  | None -> 0.0
  | Some d ->
      Hashtbl.fold
        (fun (id, _) c acc -> if id = d.id then acc +. cell_value d c else acc)
        t.cells 0.0

type sample = {
  def : def;
  labels : string list;
  value : float;
  count : int;
  histo : Fbufs_trace.Histogram.t option;
  sketch : Sketch.t option;
}

let samples t =
  let by_id = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.add by_id d.id d) (definitions ());
  Hashtbl.fold
    (fun (id, labels) c acc ->
      match Hashtbl.find_opt by_id id with
      | None -> acc
      | Some d ->
          {
            def = d;
            labels;
            value = cell_value d c;
            count = c.n;
            histo = c.hist;
            sketch = c.sk;
          }
          :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match compare a.def.id b.def.id with
         | 0 -> compare a.labels b.labels
         | c -> c)
