(* Table 1 decomposes the incremental per-page cost of a cross-domain
   transfer into mechanism components; every simulated-us charge is
   attributed to exactly one of them. The first eight constructors are
   the paper's; the rest cover work outside Table 1's scope so the
   attribution is total (nothing ever lands in a catch-all silently —
   [Other] is reserved for charges whose call site carries no tag). *)

type t =
  | Alloc
  | Map
  | Unmap
  | Tlb_flush
  | Zero
  | Secure
  | Copy
  | Dag
  | Ipc
  | Proto
  | Net
  | Touch
  | Other
  | Policy

let all =
  [
    Alloc; Map; Unmap; Tlb_flush; Zero; Secure; Copy; Dag; Ipc; Proto; Net;
    Touch; Other; Policy;
  ]

let label = function
  | Alloc -> "alloc"
  | Map -> "map"
  | Unmap -> "unmap"
  | Tlb_flush -> "tlb_flush"
  | Zero -> "zero"
  | Secure -> "secure"
  | Copy -> "copy"
  | Dag -> "dag"
  | Ipc -> "ipc"
  | Proto -> "proto"
  | Net -> "net"
  | Touch -> "touch"
  | Other -> "other"
  | Policy -> "policy"

let of_label s = List.find_opt (fun c -> label c = s) all

let index = function
  | Alloc -> 0
  | Map -> 1
  | Unmap -> 2
  | Tlb_flush -> 3
  | Zero -> 4
  | Secure -> 5
  | Copy -> 6
  | Dag -> 7
  | Ipc -> 8
  | Proto -> 9
  | Net -> 10
  | Touch -> 11
  | Other -> 12
  | Policy -> 13

let table1 = [ Alloc; Map; Unmap; Tlb_flush; Zero; Secure; Copy; Dag ]
let in_table1 c = List.mem c table1
