(* Bench-trajectory regression gate: compare two bench JSON snapshots
   (as written by `bench/main.ml --json`) and flag per-benchmark
   ns_per_run growth beyond a tolerance. A benchmark present in OLD but
   missing from NEW fails the gate too — silently dropping a benchmark
   is how regressions hide. *)

module Json = Fbufs_trace.Json

type row = { name : string; ns_per_run : float option; r_square : float option }

exception Bad_snapshot of string

let num = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let parse_rows j =
  match j with
  | Json.List items ->
      List.map
        (fun item ->
          let name =
            match Json.member "name" item with
            | Some (Json.String s) -> s
            | _ -> raise (Bad_snapshot "benchmark entry without name")
          in
          let field k =
            match Json.member k item with Some v -> num v | None -> None
          in
          { name; ns_per_run = field "ns_per_run"; r_square = field "r_square" })
        items
  | _ -> raise (Bad_snapshot "snapshot is not a JSON list")

let load_string s = parse_rows (Json.parse s)

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> load_string (really_input_string ic (in_channel_length ic)))

type status = Ok_ | Regression | Improvement | Added | Removed

type entry = {
  bench : string;
  old_ns : float option;
  new_ns : float option;
  delta_pct : float option;
  status : status;
}

type result = { entries : entry list; tolerance_pct : float; failed : bool }

let diff ~old_ ~new_ ~tolerance_pct =
  let find rows n = List.find_opt (fun r -> r.name = n) rows in
  let names =
    List.sort_uniq compare (List.map (fun r -> r.name) (old_ @ new_))
  in
  let entries =
    List.map
      (fun bench ->
        let o = find old_ bench and n = find new_ bench in
        let old_ns = Option.bind o (fun r -> r.ns_per_run) in
        let new_ns = Option.bind n (fun r -> r.ns_per_run) in
        match (old_ns, new_ns) with
        | None, None ->
            { bench; old_ns; new_ns; delta_pct = None; status = Ok_ }
        | None, Some _ ->
            { bench; old_ns; new_ns; delta_pct = None; status = Added }
        | Some _, None ->
            { bench; old_ns; new_ns; delta_pct = None; status = Removed }
        | Some ov, Some nv ->
            let delta = if ov > 0.0 then (nv -. ov) /. ov *. 100.0 else 0.0 in
            let status =
              if delta > tolerance_pct then Regression
              else if delta < -.tolerance_pct then Improvement
              else Ok_
            in
            { bench; old_ns; new_ns; delta_pct = Some delta; status })
      names
  in
  let failed =
    List.exists (fun e -> e.status = Regression || e.status = Removed) entries
  in
  { entries; tolerance_pct; failed }

let status_str = function
  | Ok_ -> "ok"
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Added -> "added"
  | Removed -> "REMOVED"

let render r =
  let b = Buffer.create 1024 in
  let fmt_ns = function Some v -> Printf.sprintf "%12.1f" v | None -> "           -" in
  let fmt_pct = function
    | Some v -> Printf.sprintf "%+8.1f%%" v
    | None -> "        -"
  in
  Buffer.add_string b
    (Printf.sprintf "%-32s %12s %12s %9s  %s\n" "benchmark" "old ns/run"
       "new ns/run" "delta" "status");
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%-32s %s %s %s  %s\n" e.bench (fmt_ns e.old_ns)
           (fmt_ns e.new_ns) (fmt_pct e.delta_pct) (status_str e.status)))
    r.entries;
  Buffer.add_string b
    (Printf.sprintf "tolerance ±%.0f%%: %s\n" r.tolerance_pct
       (if r.failed then "FAIL" else "PASS"));
  Buffer.contents b
