(** Harness-side metrics glue.

    The counterpart of {!Tracing} for the metrics registry: a run is
    metered by installing an instance in
    {!Fbufs_sim.Machine.default_metrics} for its duration, so every
    machine created inside picks it up. With nothing requested, nothing
    is installed and the run is untouched — report output is
    byte-identical to an unmetered run. *)

val with_metrics :
  ?file:string -> ?folded:string -> ?summary:bool -> (unit -> 'a) -> 'a
(** [with_metrics ?file ?folded ?summary f] runs [f]; when any output is
    requested, machines created during the run share one fresh
    {!Fbufs_metrics.Metrics.t}. Afterwards [file] receives the exposition
    (JSON when the filename ends in [.json], Prometheus text otherwise),
    [folded] receives collapsed flamegraph stacks of the cost ledger, and
    with [summary] (default [false]) the per-component cost breakdown is
    printed. The previous [default_metrics] is restored even if [f]
    raises. *)

val print_breakdown : Fbufs_metrics.Metrics.t -> unit
(** Print the per-component simulated-microsecond table; the total row is
    exactly the sum of the component rows ({!Fbufs_metrics.Ledger.total_us}). *)

val export : Fbufs_metrics.Metrics.t -> string -> unit
(** Write the exposition to a path (format chosen by extension, as in
    {!with_metrics}); I/O errors are reported on stderr, not raised. *)

val export_folded : Fbufs_metrics.Metrics.t -> string -> unit
(** Write collapsed flamegraph stacks; errors reported as {!export}. *)
