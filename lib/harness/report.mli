(** Plain-text rendering of experiment results, paper-vs-measured. *)

val mbps : bytes:int -> us:float -> float
(** Megabits per second from a byte count and elapsed microseconds. *)

val print_title : string -> unit

val print_columns : string list -> unit
(** Header row followed by a rule. *)

val cell : width:int -> string -> string

val fmt_size : int -> string
(** 4096 -> "4K", 1048576 -> "1M". *)

val fmt_opt : float option -> string
(** "-" for [None]. *)

type series = { name : string; points : (int * float) list }
(** A plotted line: (x, y) pairs — typically (message bytes, Mb/s). *)

val print_series_table : x_label:string -> series list -> unit
(** Figures as aligned text tables: one row per x, one column per series. *)

val print_trace_summary : ?min_count:int -> Fbufs_trace.Trace.t -> unit
(** Per-[(kind, path)] latency table (count, p50/p90/p99/max and total
    simulated us) from the trace's online histograms. [min_count] hides
    keys with fewer samples. Prints nothing for an event-free trace. *)
