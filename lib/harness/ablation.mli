(** Ablations of the design choices DESIGN.md section 6 calls out. *)

val security_zeroing : unit -> unit
(** Table 1's uncached rows with and without the 57 us/page clearing of
    recycled pages — the cost the paper notes but excludes. *)

val tlb_size : unit -> unit
(** Per-page cost of cached/volatile transfers as the TLB grows: the 3 us
    is software refill work, so a large-enough TLB absorbs it. *)

val tlb_elision : unit -> unit
(** Generation-tagged deferral/elision of TLB shootdowns (PR 7) on vs the
    eager PR 6 behaviour: per-message cost, shootdown/batch-drain counts,
    and the number of flushes elided on the warm cached/volatile path. *)

val ipc_latency : unit -> unit
(** Single-boundary throughput at 4 KB and 64 KB as the IPC latency scales:
    small messages are latency-bound, large ones are not. *)

val free_list_policy : unit -> unit
(** LIFO vs FIFO free lists under memory pressure (periodic reclamation of
    the coldest half): LIFO keeps reusing warm buffers. *)

val window_size : unit -> unit
(** End-to-end throughput (user-user, 256 KB messages) against the test
    protocol's sliding-window size. *)

val chunk_size : unit -> unit
(** Kernel chunk-allocation RPCs for a mixed workload as the chunk
    granularity varies: the two-level allocator's slow path. *)

val ipc_facility : unit -> unit
(** Mach kernel RPC vs a URPC-style user-level facility: with fbufs doing
    the data plane without kernel help, the control-transfer facility is
    the whole remaining cost for small messages. *)

val integrated_vs_rebuild : unit -> unit
(** Section 3.2.3: passing the aggregate object's root through fbufs vs
    flattening to a descriptor list and rebuilding, as the fragment count
    grows. *)

val securing_policy : unit -> unit
(** Volatile (lazy secure) vs eager immutability enforcement, for a
    receiver that does and does not demand secured buffers. *)

val adapter_demux : unit -> unit
(** Section 5.2: "the use of cached fbufs requires a demultiplexing
    capability in the network adapter" — end-to-end throughput with the
    Osiris-style hardware demux vs an Ethernet-style fixed-pool adapter
    that copies after software demux. *)

val path_locality : unit -> unit
(** The driver's 16-most-recently-used cached-path table against the
    number of concurrent flows: within the table every PDU lands in a
    cached buffer; beyond it, LRU churn sends a growing fraction of
    arrivals through the uncached slow path — the locality bet the paper
    makes explicit. *)

val pdu_size_cpu_load : unit -> unit
(** The paper's section-4 CPU-load discussion: receiver load at 1 MB
    messages for cached vs uncached fbufs with 16 KB and 32 KB PDUs. *)

val run_all : unit -> unit
