open Fbufs_sim
module Mx = Fbufs_metrics.Metrics
module Span = Fbufs_span.Span
module Critical = Fbufs_span.Critical
module Export = Fbufs_span.Span_export

(* Harness-side span glue: the counterpart of [Metrics_run] for the
   causal span sink. A run is spanned by installing a sink in
   [Machine.default_spans] for its duration; with nothing requested,
   nothing is installed and the run does zero span work. *)

let transfer_wall =
  Mx.sketch ~name:"fbufs_transfer_wall_us"
    ~help:
      "End-to-end wall time per causal transfer (mergeable quantile sketch)"
    ~labels:[ "label" ] ()

let export_jsonl sink path =
  match Export.write_jsonl path sink with
  | () ->
      Printf.printf "spans: %d transfers -> %s (jsonl)\n"
        (List.length (Span.transfers sink))
        path
  | exception Sys_error msg ->
      Printf.eprintf "spans: cannot write %s: %s\n" path msg

let export_chrome sink path =
  match Export.write_chrome path sink with
  | () ->
      Printf.printf "spans: %d transfers -> %s (chrome://tracing, Perfetto)\n"
        (List.length (Span.transfers sink))
        path
  | exception Sys_error msg ->
      Printf.eprintf "spans: cannot write %s: %s\n" path msg

let print_report ?top sink =
  Critical.print_report Format.std_formatter ?top sink

let roll_transfer_walls mx sink =
  List.iter
    (fun (tr : Span.transfer) ->
      let s = Critical.analyze sink tr in
      Mx.observe mx transfer_wall ~labels:[ tr.Span.label ] s.Critical.wall_us)
    (Span.transfers sink)

let with_spans ?jsonl ?chrome ?(summary = false) ?top f =
  match (jsonl, chrome, summary) with
  | None, None, false -> f ()
  | _ ->
      let sink = Span.create () in
      let saved = !Machine.default_spans in
      Machine.default_spans := Some sink;
      let result =
        Fun.protect ~finally:(fun () -> Machine.default_spans := saved) f
      in
      (* Roll per-transfer wall times into the run's metrics instance (when
         one is installed around us) as a mergeable sketch, keyed by the
         transfer label. *)
      (match !Machine.default_metrics with
      | None -> ()
      | Some mx -> roll_transfer_walls mx sink);
      Option.iter (export_jsonl sink) jsonl;
      Option.iter (export_chrome sink) chrome;
      if summary then print_report ?top sink;
      result
