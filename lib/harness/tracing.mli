(** Harness-side tracing glue.

    The experiment drivers build their own testbeds, so tracing is enabled
    by installing a sink in {!Fbufs_sim.Machine.default_trace} for the
    duration of a run: every machine created inside picks it up. With no
    output file requested nothing is installed and the run is untouched —
    report output is byte-identical to an untraced run. *)

val with_trace :
  ?chrome:string ->
  ?jsonl:string ->
  ?summary:bool ->
  ?capacity:int ->
  (unit -> 'a) ->
  'a
(** [with_trace ?chrome ?jsonl f] runs [f]; when at least one output file
    is given, machines created during the run share one fresh trace sink,
    and afterwards the Chrome JSON and/or JSONL exports are written, the
    per-path latency summary is printed ([summary] defaults to [true]),
    and a one-line note says where the trace went. The previous
    [default_trace] is restored even if [f] raises. [capacity] bounds the
    buffered event count (default 2M — full sweeps emit far more; dropped
    events are reported, and the latency summary still covers them). *)

val run_workload :
  ?config:Exp_fig5.config ->
  ?bytes:int ->
  ?uncached:bool ->
  ?pdu_size:int ->
  ?window:int ->
  ?nmsgs:int ->
  ?chrome:string ->
  ?jsonl:string ->
  ?metrics:string ->
  ?spans:string ->
  ?spans_chrome:string ->
  ?spans_summary:bool ->
  ?top:int ->
  unit ->
  unit
(** The [trace] and [spans] subcommands: one fully instrumented
    end-to-end UDP/IP transfer run (the Figure 5/6 testbed at a single
    message size, default 64 KB user-user cached), dumping any
    combination of Chrome trace / JSONL ([chrome], [jsonl]), metrics
    exposition ([metrics], via {!Metrics_run.with_metrics}), and causal
    span trees ([spans] JSONL / [spans_chrome], via
    {!Spans_run.with_spans}; [spans_summary] prints the critical-path
    report, [top] limits it) — one execution, every requested output. *)
