open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testproto = Fbufs_protocols.Testproto

let sizes = List.init 11 (fun i -> 1024 lsl i)

let warmup = 3
let iters = 10

let fbuf_series name variant =
  let points =
    List.map
      (fun bytes ->
        let tb = Testbed.create () in
        let m = tb.Testbed.m in
        let app = Testbed.user_domain tb "app" in
        let recv = Testbed.user_domain tb "recv" in
        let alloc = Testbed.allocator tb ~domains:[ app; recv ] variant in
        let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
        let roundtrip () =
          let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
          Ipc.call conn msg ~handler:(fun received ->
              Msg.touch_read received ~as_:recv;
              Ipc.free_deferred conn received);
          Msg.free_all msg ~dom:app
        in
        for _ = 1 to warmup do
          roundtrip ()
        done;
        let t0 = Machine.now m in
        for _ = 1 to iters do
          roundtrip ()
        done;
        let us = (Machine.now m -. t0) /. float_of_int iters in
        (bytes, Report.mbps ~bytes ~us))
      sizes
  in
  { Report.name; points }

let mach_series () =
  let points =
    List.map
      (fun bytes ->
        let tb = Testbed.create () in
        let m = tb.Testbed.m in
        let src = Testbed.user_domain tb "src" in
        let dst = Testbed.user_domain tb "dst" in
        let mach =
          Fbufs_baseline.Mach_native.create ~src ~dst ~kernel:tb.Testbed.kernel
        in
        let roundtrip () =
          Machine.charge ~comp:Fbufs_metrics.Component.Ipc m
            m.Machine.cost.Cost_model.ipc_call;
          Machine.domain_crossing_tlb_pressure m;
          Fbufs_baseline.Mach_native.transfer mach ~bytes;
          Machine.charge ~comp:Fbufs_metrics.Component.Ipc m
            m.Machine.cost.Cost_model.ipc_reply;
          Machine.domain_crossing_tlb_pressure m
        in
        for _ = 1 to warmup do
          roundtrip ()
        done;
        let t0 = Machine.now m in
        for _ = 1 to iters do
          roundtrip ()
        done;
        let us = (Machine.now m -. t0) /. float_of_int iters in
        (bytes, Report.mbps ~bytes ~us))
      sizes
  in
  { Report.name = "Mach native"; points }

let run () =
  [
    fbuf_series "cached/volatile" Fbuf.cached_volatile;
    fbuf_series "volatile" Fbuf.volatile_only;
    fbuf_series "cached" Fbuf.cached_only;
    fbuf_series "plain" Fbuf.plain;
    mach_series ();
  ]

let print series =
  Report.print_title
    "Figure 3: single-boundary throughput vs message size (Mb/s)";
  Report.print_series_table ~x_label:"msg size" series
