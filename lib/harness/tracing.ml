open Fbufs_sim
module Trace = Fbufs_trace.Trace
module Chrome = Fbufs_trace.Chrome

(* Full experiment sweeps emit tens of millions of events; a bounded
   buffer keeps exports loadable in a viewer while the online histograms
   (fed before the capacity check) still see every span. *)
let default_capacity = 2_000_000

let with_trace ?chrome ?jsonl ?(summary = true) ?(capacity = default_capacity)
    f =
  match (chrome, jsonl) with
  | None, None -> f ()
  | _ ->
      let tr = Trace.create ~capacity () in
      let saved = !Machine.default_trace in
      Machine.default_trace := Some tr;
      let result =
        Fun.protect
          ~finally:(fun () -> Machine.default_trace := saved)
          f
      in
      let write what writer path =
        match writer tr path with
        | () ->
            Printf.printf "trace: %d events -> %s (%s)\n"
              (Trace.event_count tr) path what
        | exception Sys_error msg ->
            Printf.eprintf "trace: cannot write %s: %s\n" path msg
      in
      Option.iter (write "chrome://tracing, Perfetto" Chrome.write_file) chrome;
      Option.iter (write "jsonl" Chrome.write_jsonl) jsonl;
      if Trace.dropped tr > 0 then
        Printf.printf "trace: %d events dropped (buffer capacity)\n"
          (Trace.dropped tr);
      if summary then Report.print_trace_summary tr;
      result

let run_workload ?(config = Exp_fig5.User_user) ?(bytes = 65536)
    ?(uncached = false) ?pdu_size ?window ?nmsgs ?chrome ?jsonl ?metrics
    ?spans ?spans_chrome ?(spans_summary = false) ?top () =
  Report.print_title
    (Printf.sprintf
       "Traced end-to-end transfer: %s, %s fbufs, %d-byte messages"
       (Exp_fig5.config_name config)
       (if uncached then "uncached" else "cached/volatile")
       bytes);
  (* Nesting order matters: spans innermost, so its post-run export still
     sees the metrics instance and can observe transfer walls into the
     [fbufs_transfer_wall_us] sketch. *)
  with_trace ?chrome ?jsonl (fun () ->
      Metrics_run.with_metrics ?file:metrics (fun () ->
          Spans_run.with_spans ?jsonl:spans ?chrome:spans_chrome
            ~summary:spans_summary ?top (fun () ->
              let p =
                Exp_fig5.run_one ~uncached ~config ~bytes ?pdu_size ?window
                  ?nmsgs ()
              in
              Printf.printf
                "throughput %.1f Mb/s, tx CPU load %.2f, rx CPU load %.2f\n"
                p.Exp_fig5.mbps p.Exp_fig5.tx_cpu_load p.Exp_fig5.rx_cpu_load)))
