open Fbufs_sim
open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Protocol = Fbufs_xkernel.Protocol
module Proxy = Fbufs_xkernel.Proxy
module Ip = Fbufs_protocols.Ip
module Udp = Fbufs_protocols.Udp
module Testproto = Fbufs_protocols.Testproto
module Osiris = Fbufs_netdev.Osiris

type config = Kernel_kernel | User_user | User_netserver_user

let config_name = function
  | Kernel_kernel -> "kernel-kernel"
  | User_user -> "user-user"
  | User_netserver_user -> "user-netserver-user"

type point = {
  bytes : int;
  mbps : float;
  rx_cpu_load : float;
  tx_cpu_load : float;
}

let sizes = List.init 9 (fun i -> 4096 lsl i)

let data_vci = 5
let ack_vci = 6
let port = 2000

let run_one ~uncached ~config ~bytes ?(pdu_size = 16384) ?(window = 8)
    ?nmsgs ?(hw_demux = true) () =
  let nmsgs =
    match nmsgs with
    | Some n -> n
    | None -> max 4 (min 128 (4 * 1024 * 1024 / bytes))
  in
  let variant =
    if uncached && config <> Kernel_kernel then Fbuf.plain
    else Fbuf.cached_volatile
  in
  let des = Des.create () in
  let tb1 = Testbed.create ~name:"tx" ~seed:1 () in
  let tb2 = Testbed.create ~name:"rx" ~seed:2 () in
  let m1 = tb1.Testbed.m and m2 = tb2.Testbed.m in
  let k1 = tb1.Testbed.kernel and k2 = tb2.Testbed.kernel in
  let ad1 = Osiris.create ~m:m1 ~des ~region:tb1.Testbed.region ~kernel:k1 () in
  let ad2 =
    Osiris.create ~m:m2 ~des ~region:tb2.Testbed.region ~kernel:k2 ~hw_demux ()
  in
  Osiris.connect ad1 ad2;

  (* ---------------- transmit host ---------------- *)
  let sender_dom, udp1_dom =
    match config with
    | Kernel_kernel -> (k1, k1)
    | User_user -> (Testbed.user_domain tb1 "app", k1)
    | User_netserver_user ->
        let ns = Testbed.user_domain tb1 "netserver" in
        (Testbed.user_domain tb1 "app", ns)
  in
  (* The driver consumes PDU bytes synchronously (DMA gather) and frees
     nothing: header references are released by the protocols that
     allocated them, data references by the proxies / the sending test
     protocol. *)
  let driver1 =
    Protocol.create ~name:"osiris-tx" ~dom:k1
      ~push:(fun pdu -> Osiris.send_pdu ad1 ~vci:data_vci pdu)
      ()
  in
  let ip1 =
    Ip.create ~dom:k1 ~below:driver1
      ~header_alloc:(Testbed.allocator tb1 ~domains:[ k1 ] variant)
      ~pdu_size ()
  in
  let udp1_below =
    if Pd.equal udp1_dom k1 then Ip.proto ip1
    else
      Proxy.push_proxy tb1.Testbed.region ~from_dom:udp1_dom
        ~target:(Ip.proto ip1) ()
  in
  let udp1_header_path =
    if Pd.equal udp1_dom k1 then [ k1 ] else [ udp1_dom; k1 ]
  in
  let udp1 =
    Udp.create ~dom:udp1_dom ~below:udp1_below
      ~header_alloc:(Testbed.allocator tb1 ~domains:udp1_header_path variant)
      ~dst_port:port ()
  in
  let entry =
    if Pd.equal sender_dom udp1_dom then Udp.proto udp1
    else
      Proxy.push_proxy tb1.Testbed.region ~from_dom:sender_dom
        ~target:(Udp.proto udp1) ()
  in
  let data_path =
    match config with
    | Kernel_kernel -> [ k1 ]
    | User_user -> [ sender_dom; k1 ]
    | User_netserver_user -> [ sender_dom; udp1_dom; k1 ]
  in
  let data_alloc = Testbed.allocator tb1 ~domains:data_path variant in

  (* ---------------- receive host ---------------- *)
  let sink_dom, udp2_dom =
    match config with
    | Kernel_kernel -> (k2, k2)
    | User_user -> (Testbed.user_domain tb2 "app", k2)
    | User_netserver_user ->
        let ns = Testbed.user_domain tb2 "netserver" in
        (Testbed.user_domain tb2 "app", ns)
  in
  let rx_path =
    match config with
    | Kernel_kernel -> [ k2 ]
    | User_user -> [ k2; sink_dom ]
    | User_netserver_user -> [ k2; udp2_dom; sink_dom ]
  in
  (* Cached receive buffers: the adapter demultiplexes on VCI into
     preallocated per-path fbufs. The uncached experiment leaves the VCI
     unregistered, so PDUs land in uncached buffers. The kernel-kernel
     configuration always runs cached: Figure 6 includes it purely as the
     unchanged baseline. *)
  if (not uncached) || config = Kernel_kernel then
    Osiris.register_path ad2 ~vci:data_vci ~domains:rx_path;
  Osiris.register_path ad1 ~vci:ack_vci ~domains:[ k1 ];
  let null_below = Protocol.create ~name:"null" ~dom:k2 () in
  let ip2 =
    Ip.create ~dom:k2 ~below:null_below
      ~header_alloc:(Testbed.allocator tb2 ~domains:[ k2 ] variant)
      ~pdu_size ()
  in
  let udp2 =
    let below = Protocol.create ~name:"null-up" ~dom:udp2_dom () in
    Udp.create ~dom:udp2_dom ~below
      ~header_alloc:(Testbed.allocator tb2 ~domains:[ udp2_dom ] variant)
      ()
  in
  (if Pd.equal udp2_dom k2 then Ip.set_up ip2 (Udp.proto udp2)
   else
     Ip.set_up ip2
       (Proxy.pop_proxy tb2.Testbed.region ~from_dom:k2
          ~target:(Udp.proto udp2) ()));

  (* Receiving test protocol: consume, then send a window acknowledgement
     back through the driver (paying the user->kernel crossing when it
     does not live in the kernel). *)
  let received = ref 0 in
  let finish_time = ref 0.0 in
  let ack_alloc = Testbed.allocator tb2 ~domains:[ k2 ] Fbuf.cached_volatile in
  let send_ack () =
    if not (Pd.equal sink_dom k2) then begin
      Machine.charge ~comp:Fbufs_metrics.Component.Ipc m2
        m2.Machine.cost.Cost_model.ipc_call;
      Machine.charge ~comp:Fbufs_metrics.Component.Ipc m2
        m2.Machine.cost.Cost_model.ipc_reply;
      Machine.domain_crossing_tlb_pressure m2
    end;
    let ack = Testproto.make_message ~alloc:ack_alloc ~as_:k2 ~bytes:64 () in
    Osiris.send_pdu ad2 ~vci:ack_vci ack;
    Msg.free_held ack ~dom:k2
  in
  let sink =
    Testproto.sink ~dom:sink_dom
      ~consume:(fun msg ->
        Msg.touch_read msg ~as_:sink_dom;
        incr received;
        if !received = nmsgs then finish_time := Machine.now m2;
        send_ack ())
      ()
  in
  (if Pd.equal sink_dom udp2_dom then
     Udp.bind udp2 ~port (Testproto.sink_proto sink)
   else
     Udp.bind udp2 ~port
       (Proxy.pop_proxy tb2.Testbed.region ~from_dom:udp2_dom
          ~target:(Testproto.sink_proto sink) ()));

  (* ---------------- window-driven send loop ---------------- *)
  let sent = ref 0 in
  let outstanding = ref 0 in
  let pump () =
    while !sent < nmsgs && !outstanding < window do
      incr sent;
      incr outstanding;
      (* One causal transfer per message: the root span covers the send
         path; the PDU flights, the receive side and the ack adopt into
         it as they happen. *)
      Machine.with_transfer m1 ~domain:sender_dom.Pd.name
        (config_name config) (fun () ->
          let msg =
            Testproto.make_message ~alloc:data_alloc ~as_:sender_dom ~bytes ()
          in
          entry.Protocol.push msg;
          (* When no proxy sits between the test protocol and UDP, the
             sender still owns its references after the push. *)
          Msg.free_held msg ~dom:sender_dom)
    done
  in
  Osiris.set_rx_handler ad2 (fun ~vci msg ->
      if vci = data_vci then (Ip.proto ip2).Protocol.pop msg
      else Msg.free_held msg ~dom:k2);
  Osiris.set_rx_handler ad1 (fun ~vci msg ->
      if vci = ack_vci then begin
        Msg.free_held msg ~dom:k1;
        decr outstanding;
        pump ()
      end);
  let cp1 = Machine.checkpoint m1 in
  let cp2 = Machine.checkpoint m2 in
  pump ();
  Des.run des;
  assert (!received = nmsgs);
  let total_bytes = nmsgs * bytes in
  {
    bytes;
    mbps = Report.mbps ~bytes:total_bytes ~us:!finish_time;
    rx_cpu_load = Machine.load_since m2 cp2;
    tx_cpu_load = Machine.load_since m1 cp1;
  }

let run ~uncached ?pdu_size ?window () =
  List.map
    (fun config ->
      {
        Report.name = config_name config;
        points =
          List.map
            (fun bytes ->
              let p = run_one ~uncached ~config ~bytes ?pdu_size ?window () in
              (bytes, p.mbps))
            sizes;
      })
    [ Kernel_kernel; User_user; User_netserver_user ]

let print series =
  Report.print_title
    "Figures 5/6: end-to-end UDP/IP throughput (Mb/s), IP PDU = 16 KB";
  Report.print_series_table ~x_label:"msg size" series
