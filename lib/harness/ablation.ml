open Fbufs_sim
open Fbufs
module Msg = Fbufs_msg.Msg
module Ipc = Fbufs_ipc.Ipc
module Testproto = Fbufs_protocols.Testproto

(* Shared single-boundary measurement: throughput of [bytes]-sized messages
   over one IPC crossing with the given variant, on a custom machine. *)
let one_boundary_mbps ?cost ?tlb_entries ?policy variant bytes =
  let tb = Testbed.create ?cost ?tlb_entries () in
  let m = tb.Testbed.m in
  let app = Testbed.user_domain tb "app" in
  let recv = Testbed.user_domain tb "recv" in
  let alloc =
    Allocator.create tb.Testbed.region
      ~path:(Path.create [ app; recv ])
      ~variant ?policy ()
  in
  let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
  let roundtrip () =
    let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
    Ipc.call conn msg ~handler:(fun received ->
        Msg.touch_read received ~as_:recv;
        Ipc.free_deferred conn received);
    Msg.free_all msg ~dom:app
  in
  for _ = 1 to 3 do
    roundtrip ()
  done;
  let t0 = Machine.now m in
  let iters = 10 in
  for _ = 1 to iters do
    roundtrip ()
  done;
  Report.mbps ~bytes ~us:((Machine.now m -. t0) /. float_of_int iters)

let security_zeroing () =
  Report.print_title "Ablation: security clearing of uncached allocations";
  Report.print_columns [ "mechanism"; "us/page" ];
  let row name rows mech =
    let r = List.find (fun r -> r.Exp_table1.mechanism = mech) rows in
    Printf.printf "%s  %s\n"
      (Report.cell ~width:30 name)
      (Report.cell ~width:12 (Printf.sprintf "%.1f" r.Exp_table1.per_page_us))
  in
  let plain = Exp_table1.run ~zero_on_alloc:false () in
  let zeroed = Exp_table1.run ~zero_on_alloc:true () in
  row "volatile, no clearing" plain "fbufs, volatile";
  row "volatile, cleared (57us/page)" zeroed "fbufs, volatile";
  row "cached/volatile, no clearing" plain "fbufs, cached/volatile";
  row "cached/volatile, cleared" zeroed "fbufs, cached/volatile";
  print_endline
    "(cached buffers never need clearing: reuse stays on the same path)"

let tlb_size () =
  Report.print_title "Ablation: TLB size vs cached/volatile transfer cost";
  Report.print_columns [ "TLB entries"; "Mb/s @64K" ];
  List.iter
    (fun entries ->
      let v =
        one_boundary_mbps ~tlb_entries:entries Fbuf.cached_volatile 65536
      in
      Printf.printf "%s  %s\n"
        (Report.cell ~width:12 (string_of_int entries))
        (Report.cell ~width:12 (Printf.sprintf "%.0f" v)))
    [ 16; 32; 64; 128; 256; 512 ]

let ipc_latency () =
  Report.print_title "Ablation: IPC latency scaling (cached/volatile)";
  Report.print_columns [ "latency x"; "Mb/s @4K"; "Mb/s @64K" ];
  List.iter
    (fun scale ->
      let base = Cost_model.decstation_5000_200 in
      let cost =
        {
          base with
          Cost_model.ipc_call = base.Cost_model.ipc_call *. scale;
          ipc_reply = base.Cost_model.ipc_reply *. scale;
        }
      in
      let small = one_boundary_mbps ~cost Fbuf.cached_volatile 4096 in
      let large = one_boundary_mbps ~cost Fbuf.cached_volatile 65536 in
      Printf.printf "%s  %s  %s\n"
        (Report.cell ~width:12 (Printf.sprintf "%.2f" scale))
        (Report.cell ~width:12 (Printf.sprintf "%.0f" small))
        (Report.cell ~width:12 (Printf.sprintf "%.0f" large)))
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let free_list_policy () =
  Report.print_title
    "Ablation: LIFO vs FIFO free lists under memory pressure";
  Report.print_columns [ "policy"; "us/message"; "pages re-zeroed" ];
  let run policy =
    let tb = Testbed.create () in
    let m = tb.Testbed.m in
    let app = Testbed.user_domain tb "app" in
    let recv = Testbed.user_domain tb "recv" in
    let alloc =
      Allocator.create tb.Testbed.region
        ~path:(Path.create [ app; recv ])
        ~variant:Fbuf.cached_volatile ~policy ()
    in
    let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
    let burst n =
      let msgs =
        List.init n (fun _ ->
            Testproto.make_message ~alloc ~as_:app ~bytes:16384 ())
      in
      List.iter
        (fun msg ->
          Ipc.call conn msg ~handler:(fun received ->
              Msg.touch_read received ~as_:recv;
              Ipc.free_deferred conn received);
          Msg.free_all msg ~dom:app)
        msgs
    in
    (* Build a pool of 8 parked buffers, then run 4-deep bursts while the
       pageout daemon reclaims buffers that have been idle for more than
       one round. LIFO keeps allocating the warm head, so its working set
       never goes idle; FIFO rotates through all 8, parking each buffer
       long enough to be reclaimed — and pays the zero-fill refills. *)
    burst 8;
    let zeroed0 = Stats.get m.Machine.stats "vm.zero_fill" in
    let t0 = Machine.now m in
    let rounds = 20 in
    let round_us = ref 0.0 in
    for i = 1 to rounds do
      let t = Machine.now m in
      ignore
        (Allocator.reclaim alloc ~older_than_us:(1.5 *. !round_us)
           ~max_fbufs:8 ());
      burst 4;
      if i = 1 then round_us := Machine.now m -. t
    done;
    ( (Machine.now m -. t0) /. float_of_int (rounds * 4),
      Stats.get m.Machine.stats "vm.zero_fill" - zeroed0 )
  in
  List.iter
    (fun (name, policy) ->
      let us, zeroed = run policy in
      Printf.printf "%s  %s  %s\n"
        (Report.cell ~width:12 name)
        (Report.cell ~width:12 (Printf.sprintf "%.1f" us))
        (Report.cell ~width:12 (string_of_int zeroed)))
    [ ("LIFO", Allocator.Lifo); ("FIFO", Allocator.Fifo) ]

let window_size () =
  Report.print_title "Ablation: sliding-window size (user-user, 256K)";
  Report.print_columns [ "window"; "Mb/s" ];
  List.iter
    (fun w ->
      let p =
        Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user
          ~bytes:262144 ~window:w ()
      in
      Printf.printf "%s  %s\n"
        (Report.cell ~width:12 (string_of_int w))
        (Report.cell ~width:12 (Printf.sprintf "%.0f" p.Exp_fig5.mbps)))
    [ 1; 2; 4; 8; 16 ]

let chunk_size () =
  Report.print_title "Ablation: chunk granularity vs kernel involvement";
  Report.print_columns [ "chunk pages"; "kernel RPCs"; "us/message" ];
  List.iter
    (fun chunk_pages ->
      let config =
        {
          Region.default_config with
          Region.chunk_pages;
          max_chunks_per_allocator = 4096 / chunk_pages;
        }
      in
      let tb = Testbed.create ~config () in
      let m = tb.Testbed.m in
      let app = Testbed.user_domain tb "app" in
      let recv = Testbed.user_domain tb "recv" in
      let alloc =
        Allocator.create tb.Testbed.region
          ~path:(Path.create [ app; recv ])
          ~variant:Fbuf.volatile_only ()
      in
      let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
      let t0 = Machine.now m in
      let iters = 40 in
      for i = 1 to iters do
        (* Mixed sizes force address-space churn in the allocator. *)
        let bytes = 4096 * (1 + (i mod 5)) in
        let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
        Ipc.call conn msg ~handler:(fun received ->
            Msg.touch_read received ~as_:recv;
            Ipc.free_deferred conn received);
        Msg.free_all msg ~dom:app
      done;
      Printf.printf "%s  %s  %s\n"
        (Report.cell ~width:12 (string_of_int chunk_pages))
        (Report.cell ~width:12
           (string_of_int (Stats.get m.Machine.stats "region.chunk_rpc")))
        (Report.cell ~width:12
           (Printf.sprintf "%.1f" ((Machine.now m -. t0) /. float_of_int iters))))
    [ 4; 8; 16; 64 ]

let ipc_facility () =
  Report.print_title "Ablation: control-transfer facility (cached/volatile)";
  Report.print_columns [ "facility"; "Mb/s @4K"; "Mb/s @64K" ];
  let run facility bytes =
    let tb = Testbed.create () in
    let app = Testbed.user_domain tb "app" in
    let recv = Testbed.user_domain tb "recv" in
    let alloc =
      Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
    in
    let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv ~facility () in
    let roundtrip () =
      let msg = Testproto.make_message ~alloc ~as_:app ~bytes () in
      Ipc.call conn msg ~handler:(fun received ->
          Msg.touch_read received ~as_:recv;
          Ipc.free_deferred conn received);
      Msg.free_all msg ~dom:app
    in
    roundtrip ();
    let t0 = Machine.now tb.Testbed.m in
    for _ = 1 to 10 do
      roundtrip ()
    done;
    Report.mbps ~bytes ~us:((Machine.now tb.Testbed.m -. t0) /. 10.0)
  in
  List.iter
    (fun (name, facility) ->
      Printf.printf "%s  %s  %s\n"
        (Report.cell ~width:12 name)
        (Report.cell ~width:12 (Printf.sprintf "%.0f" (run facility 4096)))
        (Report.cell ~width:12 (Printf.sprintf "%.0f" (run facility 65536))))
    [ ("Mach RPC", Ipc.Mach); ("URPC", Ipc.Urpc) ]

let integrated_vs_rebuild () =
  Report.print_title
    "Ablation: integrated buffer management vs flatten/rebuild";
  Report.print_columns [ "fragments"; "rebuild us"; "integrated us" ];
  let run mode nfrags =
    let tb = Testbed.create () in
    let app = Testbed.user_domain tb "app" in
    let recv = Testbed.user_domain tb "recv" in
    let alloc =
      Testbed.allocator tb ~domains:[ app; recv ] Fbuf.cached_volatile
    in
    let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv ~mode () in
    let send () =
      (* A reassembled ADU: nfrags PDU-sized buffers joined together. *)
      let msg =
        List.fold_left
          (fun acc _ ->
            Msg.join acc
              (Testproto.make_message ~alloc ~as_:app ~bytes:4096 ()))
          Msg.empty
          (List.init nfrags Fun.id)
      in
      Ipc.call conn msg ~handler:(fun received ->
          Msg.touch_read received ~as_:recv;
          Ipc.free_deferred conn received);
      Msg.free_all msg ~dom:app
    in
    send ();
    let t0 = Machine.now tb.Testbed.m in
    for _ = 1 to 10 do
      send ()
    done;
    (Machine.now tb.Testbed.m -. t0) /. 10.0
  in
  List.iter
    (fun nfrags ->
      Printf.printf "%s  %s  %s\n"
        (Report.cell ~width:12 (string_of_int nfrags))
        (Report.cell ~width:12
           (Printf.sprintf "%.0f" (run Ipc.Rebuild nfrags)))
        (Report.cell ~width:12
           (Printf.sprintf "%.0f" (run Ipc.Integrated nfrags))))
    [ 1; 4; 16; 64 ]

let securing_policy () =
  Report.print_title "Ablation: volatile (lazy secure) vs eager enforcement";
  Report.print_columns [ "policy"; "us/transfer @32K" ];
  let run ~variant ~secure_on_receive =
    let tb = Testbed.create () in
    let app = Testbed.user_domain tb "app" in
    let recv = Testbed.user_domain tb "recv" in
    let alloc = Testbed.allocator tb ~domains:[ app; recv ] variant in
    let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
    let roundtrip () =
      let msg = Testproto.make_message ~alloc ~as_:app ~bytes:32768 () in
      Ipc.call conn msg ~handler:(fun received ->
          if secure_on_receive then
            List.iter Transfer.secure (Msg.fbufs received);
          Msg.touch_read received ~as_:recv;
          Ipc.free_deferred conn received);
      Msg.free_all msg ~dom:app
    in
    roundtrip ();
    let t0 = Machine.now tb.Testbed.m in
    for _ = 1 to 10 do
      roundtrip ()
    done;
    (Machine.now tb.Testbed.m -. t0) /. 10.0
  in
  List.iter
    (fun (name, variant, secure_on_receive) ->
      Printf.printf "%s  %s\n"
        (Report.cell ~width:36 name)
        (Report.cell ~width:12
           (Printf.sprintf "%.0f" (run ~variant ~secure_on_receive))))
    [
      ("volatile, receiver trusts", Fbuf.cached_volatile, false);
      ("volatile, receiver secures", Fbuf.cached_volatile, true);
      ("eager (non-volatile)", Fbuf.cached_only, false);
    ]

let adapter_demux () =
  Report.print_title
    "Ablation: adapter demultiplexing capability (user-user, 256K)";
  Report.print_columns [ "adapter"; "Mb/s"; "rx CPU" ];
  List.iter
    (fun (name, hw_demux) ->
      let p =
        Exp_fig5.run_one ~uncached:false ~config:Exp_fig5.User_user
          ~bytes:262144 ~nmsgs:8 ~hw_demux ()
      in
      Printf.printf "%s  %s  %s\n"
        (Report.cell ~width:22 name)
        (Report.cell ~width:12 (Printf.sprintf "%.0f" p.Exp_fig5.mbps))
        (Report.cell ~width:12
           (Printf.sprintf "%.0f%%" (100.0 *. p.Exp_fig5.rx_cpu_load))))
    [ ("hw demux (Osiris)", true); ("fixed pool (Ethernet)", false) ]

let path_locality () =
  Report.print_title
    "Ablation: concurrent flows vs the 16-path cached-buffer table";
  Report.print_columns [ "flows"; "uncached %"; "evictions"; "us/PDU rx" ];
  let module Osiris = Fbufs_netdev.Osiris in
  List.iter
    (fun nflows ->
      let des = Des.create () in
      let tb1 = Testbed.create ~name:"tx" ~seed:5 () in
      let tb2 = Testbed.create ~name:"rx" ~seed:6 () in
      let k1 = tb1.Testbed.kernel and k2 = tb2.Testbed.kernel in
      let ad1 =
        Osiris.create ~m:tb1.Testbed.m ~des ~region:tb1.Testbed.region
          ~kernel:k1 ()
      in
      let ad2 =
        Osiris.create ~m:tb2.Testbed.m ~des ~region:tb2.Testbed.region
          ~kernel:k2 ()
      in
      Osiris.connect ad1 ad2;
      (* The driver (re)registers a path whenever traffic arrives on an
         unregistered VCI: most-recently-used replacement, as in the
         paper's driver. *)
      Osiris.set_rx_handler ad2 (fun ~vci msg ->
          if Osiris.rx_allocator ad2 ~vci = None then
            Osiris.register_path ad2 ~vci ~domains:[ k2 ];
          Msg.touch_read msg ~as_:k2;
          Msg.free_held msg ~dom:k2);
      let alloc = Testbed.allocator tb1 ~domains:[ k1 ] Fbuf.cached_volatile in
      let cp = Machine.checkpoint tb2.Testbed.m in
      let pdus = nflows * 8 in
      for i = 0 to pdus - 1 do
        (* Round-robin over the flows: the worst case for an LRU table. *)
        let vci = 100 + (i mod nflows) in
        let msg = Testproto.make_message ~alloc ~as_:k1 ~bytes:4096 () in
        Osiris.send_pdu ad1 ~vci msg;
        Msg.free_held msg ~dom:k1
      done;
      Des.run des;
      let _, busy0 = cp in
      let rx_us = (Machine.busy_us tb2.Testbed.m -. busy0) /. float_of_int pdus in
      Printf.printf "%s  %s  %s  %s\n"
        (Report.cell ~width:12 (string_of_int nflows))
        (Report.cell ~width:12
           (Printf.sprintf "%.0f%%"
              (100.0
              *. float_of_int (Osiris.uncached_rx_pdus ad2)
              /. float_of_int pdus)))
        (Report.cell ~width:12 (string_of_int (Osiris.evictions ad2)))
        (Report.cell ~width:12 (Printf.sprintf "%.0f" rx_us)))
    [ 4; 8; 16; 20; 32 ]

let pdu_size_cpu_load () =
  Report.print_title
    "Ablation: receiver CPU load at 1 MB messages (section 4)";
  Report.print_columns [ "PDU"; "mode"; "Mb/s"; "rx CPU load" ];
  List.iter
    (fun pdu_size ->
      List.iter
        (fun (mode, uncached) ->
          let p =
            Exp_fig5.run_one ~uncached ~config:Exp_fig5.User_user
              ~bytes:1048576 ~pdu_size ~nmsgs:8 ()
          in
          Printf.printf "%s  %s  %s  %s\n"
            (Report.cell ~width:12 (Report.fmt_size pdu_size))
            (Report.cell ~width:12 mode)
            (Report.cell ~width:12 (Printf.sprintf "%.0f" p.Exp_fig5.mbps))
            (Report.cell ~width:12
               (Printf.sprintf "%.0f%%" (100.0 *. p.Exp_fig5.rx_cpu_load))))
        [ ("cached", false); ("uncached", true) ])
    [ 16384; 32768 ]

let tlb_elision () =
  Report.print_title
    "Ablation: TLB shootdown deferral and elision (volatile, 64K)";
  Report.print_columns
    [ "mode"; "us/message"; "shootdowns"; "batch drains"; "elided" ];
  let run enabled =
    Fbufs_vm.Pmap.elision_enabled := enabled;
    Fun.protect ~finally:(fun () -> Fbufs_vm.Pmap.elision_enabled := true)
    @@ fun () ->
    (* A registry on the machine so the elision counter is observable;
       everything else comes from the machine's own stats. *)
    let mx = Fbufs_metrics.Metrics.create () in
    let saved = !Machine.default_metrics in
    Machine.default_metrics := Some mx;
    let tb =
      Fun.protect
        ~finally:(fun () -> Machine.default_metrics := saved)
        (fun () -> Testbed.create ())
    in
    let m = tb.Testbed.m in
    let app = Testbed.user_domain tb "app" in
    let recv = Testbed.user_domain tb "recv" in
    (* Volatile (uncached) buffers: every free unmaps, so this is the
       path where deferral has shootdowns to defer and same-range reuse
       has pending ones to cancel. Cached buffers stay mapped on free and
       never reach the queue. *)
    let alloc =
      Testbed.allocator tb ~domains:[ app; recv ] Fbuf.volatile_only
    in
    let conn = Ipc.connect tb.Testbed.region ~src:app ~dst:recv () in
    let roundtrip () =
      let msg = Testproto.make_message ~alloc ~as_:app ~bytes:65536 () in
      Ipc.call conn msg ~handler:(fun received ->
          Msg.touch_read received ~as_:recv;
          Ipc.free_deferred conn received);
      Msg.free_all msg ~dom:app
    in
    for _ = 1 to 3 do
      roundtrip ()
    done;
    let elided_total () =
      Fbufs_metrics.Metrics.total_by_name mx
        ~name:"fbufs_tlb_flushes_elided_total"
    in
    let before = Stats.snapshot m.Machine.stats in
    let el0 = elided_total () in
    let t0 = Machine.now m in
    let iters = 20 in
    for _ = 1 to iters do
      roundtrip ()
    done;
    let us = (Machine.now m -. t0) /. float_of_int iters in
    let d = Stats.since m.Machine.stats before in
    ( us,
      Stats.value d "tlb.shootdown",
      Stats.value d "tlb.shootdown_batch",
      elided_total () -. el0 )
  in
  let row name (us, shots, batches, elided) =
    Printf.printf "%s  %s  %s  %s  %s\n"
      (Report.cell ~width:14 name)
      (Report.cell ~width:12 (Printf.sprintf "%.1f" us))
      (Report.cell ~width:12 (Printf.sprintf "%.0f" shots))
      (Report.cell ~width:12 (Printf.sprintf "%.0f" batches))
      (Report.cell ~width:12 (Printf.sprintf "%.0f" elided))
  in
  row "elision on" (run true);
  row "elision off" (run false);
  print_endline
    "(on: warm reuse cancels the deferred shootdowns, so the steady state\n\
    \ neither flushes nor refills; off reproduces the PR 6 cost model)"

let run_all () =
  security_zeroing ();
  tlb_size ();
  tlb_elision ();
  ipc_latency ();
  ipc_facility ();
  integrated_vs_rebuild ();
  securing_policy ();
  free_list_policy ();
  window_size ();
  chunk_size ();
  adapter_demux ();
  path_locality ();
  pdu_size_cpu_load ()
