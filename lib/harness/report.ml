let mbps ~bytes ~us =
  if us <= 0.0 then infinity else float_of_int bytes *. 8.0 /. us

let print_title s =
  Printf.printf "\n== %s ==\n" s

let cell ~width s =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

let print_columns cols =
  let line = String.concat "  " (List.map (cell ~width:14) cols) in
  print_endline line;
  print_endline (String.make (String.length line) '-')

let fmt_size n =
  if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then
    Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%dK" (n lsr 10)
  else string_of_int n

let fmt_opt = function
  | None -> "-"
  | Some v ->
      if v >= 100.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.1f" v

type series = { name : string; points : (int * float) list }

let lcell ~width s =
  if String.length s >= width then s
  else s ^ String.make (width - String.length s) ' '

let fmt_us v =
  if v >= 1000.0 then Printf.sprintf "%.0f" v
  else if v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let print_trace_summary ?(min_count = 1) trace =
  let rows = Fbufs_trace.Trace.summary trace in
  let rows =
    List.filter
      (fun (_, h) -> Fbufs_trace.Histogram.count h >= min_count)
      rows
  in
  if rows <> [] then begin
    print_title "Trace summary: latency by event kind and path (us)";
    let header =
      lcell ~width:24 "kind"
      :: List.map (cell ~width:9)
           [ "path"; "count"; "p50"; "p90"; "p99"; "max"; "total" ]
    in
    let line = String.concat "  " header in
    print_endline line;
    print_endline (String.make (String.length line) '-');
    List.iter
      (fun ((kind, path_id), h) ->
        let open Fbufs_trace.Histogram in
        let cells =
          lcell ~width:24 kind
          :: List.map (cell ~width:9)
               [
                 (if path_id < 0 then "-" else string_of_int path_id);
                 string_of_int (count h);
                 fmt_us (percentile h 50.0);
                 fmt_us (percentile h 90.0);
                 fmt_us (percentile h 99.0);
                 fmt_us (max_value h);
                 fmt_us (sum h);
               ]
        in
        print_endline (String.concat "  " cells))
      rows
  end

let print_series_table ~x_label series =
  print_columns (x_label :: List.map (fun s -> s.name) series);
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.points) series)
  in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun s ->
            match List.assoc_opt x s.points with
            | Some y -> Printf.sprintf "%.1f" y
            | None -> "-")
          series
      in
      print_endline
        (String.concat "  "
           (List.map (cell ~width:14) (fmt_size x :: cells))))
    xs
