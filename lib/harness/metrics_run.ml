open Fbufs_sim
module Mx = Fbufs_metrics.Metrics
module Ledger = Fbufs_metrics.Ledger
module Component = Fbufs_metrics.Component
module Expo = Fbufs_metrics.Expo

(* Per-component breakdown of everything the run charged. The total row
   is [Ledger.total_us], which is by construction the sum of the printed
   component rows — a reader adding the column reproduces it exactly. *)
let print_breakdown mx =
  let ledger = Mx.ledger mx in
  let total = Ledger.total_us ledger in
  if Ledger.charge_count ledger = 0 then
    print_endline "metrics: no simulated time was charged"
  else begin
    Report.print_title "Cost attribution (simulated microseconds)";
    Report.print_columns [ "component"; "us"; "%"; "table1" ];
    let row cols =
      print_endline
        (String.concat "  " (List.map (Report.cell ~width:14) cols))
    in
    List.iter
      (fun (comp, us) ->
        if us <> 0.0 then
          row
            [
              Component.label comp;
              Printf.sprintf "%.2f" us;
              (if total > 0.0 then Printf.sprintf "%.1f" (100.0 *. us /. total)
               else "-");
              (if Component.in_table1 comp then "yes" else "-");
            ])
      (Ledger.by_component ledger);
    row [ "total"; Printf.sprintf "%.2f" total; "100.0"; "" ]
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let export mx path =
  let contents =
    if Filename.check_suffix path ".json" then Expo.to_json_string mx
    else Expo.to_prometheus mx
  in
  match write_file path contents with
  | () -> Printf.printf "metrics: exposition -> %s\n" path
  | exception Sys_error msg ->
      Printf.eprintf "metrics: cannot write %s: %s\n" path msg

let export_folded mx path =
  match write_file path (Ledger.collapsed (Mx.ledger mx)) with
  | () -> Printf.printf "metrics: collapsed stacks -> %s\n" path
  | exception Sys_error msg ->
      Printf.eprintf "metrics: cannot write %s: %s\n" path msg

let with_metrics ?file ?folded ?(summary = false) f =
  match (file, folded, summary) with
  | None, None, false -> f ()
  | _ ->
      let mx = Mx.create () in
      let saved = !Machine.default_metrics in
      Machine.default_metrics := Some mx;
      let result =
        Fun.protect
          ~finally:(fun () -> Machine.default_metrics := saved)
          f
      in
      Option.iter (export mx) file;
      Option.iter (export_folded mx) folded;
      if summary then print_breakdown mx;
      result
