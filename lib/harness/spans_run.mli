(** Harness-side span glue.

    The counterpart of {!Metrics_run} for the causal span sink: a run is
    spanned by installing a {!Fbufs_span.Span.t} in
    {!Fbufs_sim.Machine.default_spans} for its duration, so every machine
    created inside records into it. With nothing requested, nothing is
    installed and the run does no span work at all. *)

val with_spans :
  ?jsonl:string ->
  ?chrome:string ->
  ?summary:bool ->
  ?top:int ->
  (unit -> 'a) ->
  'a
(** [with_spans ?jsonl ?chrome ?summary ?top f] runs [f]; when any output
    is requested, machines created during the run share one fresh span
    sink. Afterwards [jsonl] receives the span trees (round-trippable via
    {!Fbufs_span.Span_export.parse_jsonl}), [chrome] a trace_event file
    with flow events, and with [summary] (default [false]) the
    critical-path report (first [top] transfers when given) is printed.
    When a metrics instance is installed around the run (e.g.
    [--metrics]), each transfer's wall time is additionally observed into
    the [fbufs_transfer_wall_us] sketch. The previous [default_spans] is
    restored even if [f] raises. *)

val print_report : ?top:int -> Fbufs_span.Span.t -> unit
(** Print the critical-path report to stdout. *)

val roll_transfer_walls : Fbufs_metrics.Metrics.t -> Fbufs_span.Span.t -> unit
(** Observe each of the sink's transfer wall times into the
    [fbufs_transfer_wall_us] sketch of the given registry (what
    {!with_spans} does automatically when a metrics instance is
    installed around it). *)

val export_jsonl : Fbufs_span.Span.t -> string -> unit
(** Write span trees as JSONL; I/O errors are reported on stderr. *)

val export_chrome : Fbufs_span.Span.t -> string -> unit
(** Write the Chrome trace_event file; errors reported as
    {!export_jsonl}. *)
