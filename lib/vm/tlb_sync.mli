(** Deferred-shootdown barrier.

    The VM layer queues shootdowns of translations that cannot be used
    unsafely in the meantime (see {!Pmap.remove}); this module drains the
    queue at the simulator's existing sequence points — IPC domain
    crossings, {!Fbufs.Transfer.secure}, fault handling, and pageout
    victim selection. *)

val drain : Fbufs_sim.Machine.t -> unit
(** Invalidate every queued entry and charge one batched barrier
    ([tlb_shootdown_batch_base] + n * [tlb_shootdown_batch_entry], in the
    [Tlb_flush] component); charges nothing when the queue is empty. *)
