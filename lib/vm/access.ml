open Fbufs_sim
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

let tlb_events =
  Mx.counter ~name:"fbufs_tlb_events_total"
    ~help:"TLB misses and write-protection (mod) faults taken on access"
    ~labels:[ "machine"; "event" ] ()

let note_tlb (m : Machine.t) event =
  match Machine.metrics m with
  | None -> ()
  | Some mx -> Mx.incr mx tlb_events ~labels:[ m.Machine.name; event ] ()

let page_size (dom : Pd.t) = dom.m.cost.Cost_model.page_size

let raise_violation (dom : Pd.t) vaddr write =
  raise (Vm_map.Protection_violation { domain = dom.name; vaddr; write })

let handle_fault (dom : Pd.t) ~vpn ~write ~vaddr =
  let hooked =
    match dom.fault_hook with Some h -> h dom ~vpn ~write | None -> false
  in
  if not hooked then
    match Vm_map.fault dom.map ~vpn ~write with
    | Vm_map.Resolved -> ()
    | Vm_map.Violation -> raise_violation dom vaddr write

(* Translate a virtual address to its physical frame, performing the full
   TLB / pmap / fault dance with charges. Returns the frame only (callers
   compute the page offset themselves): the pair this used to return was a
   fresh heap block on every simulated load/store. *)
let translate (dom : Pd.t) ~vaddr ~write =
  let m = dom.m in
  let ps = page_size dom in
  let vpn = vaddr / ps in
  let asid = Pd.asid dom in
  let pmap = Vm_map.pmap dom.map in
  let rec attempt depth =
    if depth > 4 then
      failwith "Access.translate: fault loop (mechanism bug)"
    else
      match Tlb.probe m.tlb ~asid ~vpn ~write with
      | Tlb.Hit -> (
          match Pmap.lookup pmap ~vpn with
          | Some e -> e.Pmap.frame
          | None ->
              if Tlb.pending_covers m.tlb ~asid ~vpn then begin
                (* Legal deferral window: the translation was removed with
                   its shootdown queued. Fault handling is the sequence
                   point that resolves it — re-establishing the mapping
                   runs [Pmap.enter], which either cancels the pending
                   (identical translation: this very TLB entry is valid
                   again, and the retry hits without paying a refill) or
                   shoots the stale entry down before the new translation
                   lands. *)
                handle_fault dom ~vpn ~write ~vaddr;
                attempt (depth + 1)
              end
              else
                (* A TLB hit without a pmap entry and no queued shootdown
                   means one was missed; treat as fatal mechanism bug. *)
                failwith "Access.translate: TLB/pmap inconsistency")
      | Tlb.Miss -> (
          Machine.charge ~kind:"tlb.refill" ~comp:Comp.Tlb_flush m
            m.cost.Cost_model.tlb_refill;
          Stats.incr m.stats "tlb.miss";
          note_tlb m "miss";
          match Pmap.lookup pmap ~vpn with
          | Some e when (not write) || e.Pmap.writable ->
              Tlb.insert m.tlb ~asid ~vpn ~writable:e.Pmap.writable;
              e.Pmap.frame
          | Some _ | None ->
              handle_fault dom ~vpn ~write ~vaddr;
              attempt (depth + 1))
      | Tlb.Hit_readonly -> (
          Machine.charge ~kind:"tlb.mod_fault" ~comp:Comp.Tlb_flush m
            m.cost.Cost_model.tlb_mod_fault;
          Stats.incr m.stats "tlb.mod_fault";
          note_tlb m "mod_fault";
          match Pmap.lookup pmap ~vpn with
          | Some e when e.Pmap.writable ->
              (* Permission was upgraded since the entry was cached. *)
              Tlb.insert m.tlb ~asid ~vpn ~writable:true;
              e.Pmap.frame
          | Some _ | None ->
              handle_fault dom ~vpn ~write ~vaddr;
              attempt (depth + 1))
  in
  attempt 0

let charge_word (dom : Pd.t) =
  let m = dom.m in
  Machine.charge ~comp:Comp.Touch m
    (m.cost.Cost_model.word_touch +. m.cost.Cost_model.cache_miss)

(* The word accessors assemble the 32-bit value a byte at a time rather
   than via [Bytes.get_int32_le]/[set_int32_le]: the [Int32] round trip
   boxes on every access, and these two functions are the per-word unit of
   every touch loop in the experiments. *)
let read_word dom ~vaddr =
  let ps = page_size dom in
  let off = vaddr mod ps in
  if off + 4 > ps then invalid_arg "Access.read_word: crosses page boundary";
  charge_word dom;
  let frame = translate dom ~vaddr ~write:false in
  let b = Phys_mem.data dom.m.pmem frame in
  Char.code (Bytes.unsafe_get b off)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)

let write_word dom ~vaddr v =
  let ps = page_size dom in
  let off = vaddr mod ps in
  if off + 4 > ps then invalid_arg "Access.write_word: crosses page boundary";
  charge_word dom;
  let frame = translate dom ~vaddr ~write:true in
  let b = Phys_mem.data dom.m.pmem frame in
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

(* Iterate over the page-aligned segments of [vaddr, vaddr+len). *)
let iter_segments dom ~vaddr ~len f =
  let ps = page_size dom in
  let rec loop va remaining =
    if remaining > 0 then begin
      let off = va mod ps in
      let seg = min remaining (ps - off) in
      f ~vaddr:va ~len:seg;
      loop (va + seg) (remaining - seg)
    end
  in
  loop vaddr len

let read_bytes (dom : Pd.t) ~vaddr ~len =
  let out = Bytes.create len in
  let m = dom.m in
  let ps = page_size dom in
  let pos = ref 0 in
  iter_segments dom ~vaddr ~len (fun ~vaddr ~len ->
      let frame = translate dom ~vaddr ~write:false in
      let off = vaddr mod ps in
      Machine.charge ~comp:Comp.Copy m
        (float_of_int len *. m.cost.Cost_model.copy_per_byte);
      Bytes.blit (Phys_mem.data m.pmem frame) off out !pos len;
      pos := !pos + len);
  Stats.add m.stats "mem.bytes_read" len;
  out

let write_bytes (dom : Pd.t) ~vaddr src =
  let m = dom.m in
  let ps = page_size dom in
  let len = Bytes.length src in
  let pos = ref 0 in
  iter_segments dom ~vaddr ~len (fun ~vaddr ~len ->
      let frame = translate dom ~vaddr ~write:true in
      let off = vaddr mod ps in
      Machine.charge ~comp:Comp.Copy m
        (float_of_int len *. m.cost.Cost_model.copy_per_byte);
      Bytes.blit src !pos (Phys_mem.data m.pmem frame) off len;
      pos := !pos + len);
  Stats.add m.stats "mem.bytes_written" len

let write_string dom ~vaddr s = write_bytes dom ~vaddr (Bytes.of_string s)

let blit ~src ~src_vaddr ~dst ~dst_vaddr ~len =
  (* One physical copy: read side is charged, write side reuses the data
     without a second per-byte charge (a real bcopy touches each byte once
     on each side; copy_per_byte is calibrated for a full load+store). *)
  let data = read_bytes src ~vaddr:src_vaddr ~len in
  let m = dst.Pd.m in
  let page_size_dst = page_size dst in
  let pos = ref 0 in
  iter_segments dst ~vaddr:dst_vaddr ~len (fun ~vaddr ~len ->
      let frame = translate dst ~vaddr ~write:true in
      let off = vaddr mod page_size_dst in
      Bytes.blit data !pos (Phys_mem.data m.pmem frame) off len;
      pos := !pos + len)

type checksum_state = { sum : int; odd : int option }

let checksum_start = { sum = 0; odd = None }

let checksum_feed (dom : Pd.t) ~vaddr ~len state =
  let m = dom.m in
  let ps = page_size dom in
  let sum = ref state.sum in
  let odd = ref state.odd in
  iter_segments dom ~vaddr ~len (fun ~vaddr ~len ->
      let frame = translate dom ~vaddr ~write:false in
      let off = vaddr mod ps in
      Machine.charge ~comp:Comp.Copy m
        (float_of_int len *. m.cost.Cost_model.checksum_per_byte);
      let b = Phys_mem.data m.pmem frame in
      let i = ref 0 in
      (match !odd with
      | Some hi when len > 0 ->
          sum := !sum + ((hi lsl 8) lor Char.code (Bytes.get b off));
          odd := None;
          i := 1
      | Some _ | None -> ());
      while !i + 1 < len do
        sum :=
          !sum
          + ((Char.code (Bytes.get b (off + !i)) lsl 8)
            lor Char.code (Bytes.get b (off + !i + 1)));
        i := !i + 2
      done;
      if !i < len then odd := Some (Char.code (Bytes.get b (off + !i))));
  { sum = !sum; odd = !odd }

let checksum_finish state =
  let sum =
    match state.odd with Some hi -> state.sum + (hi lsl 8) | None -> state.sum
  in
  let fold s =
    let s = (s land 0xFFFF) + (s lsr 16) in
    (s land 0xFFFF) + (s lsr 16)
  in
  lnot (fold sum) land 0xFFFF

let checksum dom ~vaddr ~len =
  checksum_finish (checksum_feed dom ~vaddr ~len checksum_start)

let touch_read dom ~vaddr ~npages =
  let ps = page_size dom in
  for i = 0 to npages - 1 do
    ignore (read_word dom ~vaddr:(vaddr + (i * ps)))
  done

let touch_write dom ~vaddr ~npages =
  let ps = page_size dom in
  for i = 0 to npages - 1 do
    write_word dom ~vaddr:(vaddr + (i * ps)) (0xF00D + i)
  done

let can_access (dom : Pd.t) ~vaddr ~write =
  let ps = page_size dom in
  let vpn = vaddr / ps in
  match Vm_map.prot_of dom.Pd.map ~vpn with
  | None -> false
  | Some p -> if write then Prot.can_write p else Prot.can_read p
