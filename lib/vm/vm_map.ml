open Fbufs_sim
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

type entry = {
  mutable frame : Phys_mem.frame_id option;
  mutable prot : Prot.t;
  mutable cow : bool;
  mutable zero_fill : bool;
}

type t = {
  m : Machine.t;
  name : string;
  pmap : Pmap.t;
  table : entry Ptable.t;
  mutable next_private_vpn : int;
}

exception
  Protection_violation of { domain : string; vaddr : int; write : bool }

(* Private mappings start at 16 MB; the fbuf region (managed by the core
   library) lives at a much higher, globally agreed address. *)
let private_base_vpn = 0x1000

let create m ~name ~asid =
  {
    m;
    name;
    pmap = Pmap.create m ~asid;
    table = Ptable.create ();
    next_private_vpn = private_base_vpn;
  }

let name t = t.name
let pmap t = t.pmap
let machine t = t.m

let vm_ops =
  Mx.counter ~name:"fbufs_vm_ops_total"
    ~help:"VM map operations by granularity (range setup vs per-page)"
    ~labels:[ "machine"; "op" ] ()

let batched_saved =
  Mx.counter ~name:"fbufs_vm_batched_pages_saved_total"
    ~help:
      "Range-op invocations avoided by batching multi-page VM operations \
       (pages beyond the first per batched call)"
    ~labels:[ "machine" ] ()

let note_vm_op t op =
  match Machine.metrics t.m with
  | None -> ()
  | Some mx -> Mx.incr mx vm_ops ~labels:[ t.m.Machine.name; op ] ()

let note_batch t npages =
  if npages > 1 then
    match Machine.metrics t.m with
    | None -> ()
    | Some mx ->
        Mx.add mx batched_saved ~labels:[ t.m.Machine.name ]
          (float_of_int (npages - 1))

let charge_range_op ?comp t =
  Machine.charge ~kind:"vm.range_op" ?comp t.m t.m.cost.Cost_model.vm_range_op;
  Stats.incr t.m.stats "vm.range_op";
  note_vm_op t "range"

let charge_page_op ?comp t =
  Machine.charge ~kind:"vm.page_op" ?comp t.m t.m.cost.Cost_model.vm_page_op;
  Stats.incr t.m.stats "vm.page_op";
  note_vm_op t "page"

let reserve_private t ~npages =
  charge_range_op ~comp:Comp.Alloc t;
  let base = t.next_private_vpn in
  t.next_private_vpn <- base + npages;
  base

let map_zero_fill t ~vpn ~npages =
  charge_range_op ~comp:Comp.Map t;
  note_batch t npages;
  for i = 0 to npages - 1 do
    charge_page_op ~comp:Comp.Map t;
    Ptable.set t.table (vpn + i)
      { frame = None; prot = Prot.Read_write; cow = false; zero_fill = true }
  done

let map_frame t ~vpn ~frame ~prot ~eager =
  charge_page_op ~comp:Comp.Map t;
  Ptable.set t.table vpn
    { frame = Some frame; prot; cow = false; zero_fill = false };
  if eager then
    Pmap.enter t.pmap ~vpn ~frame ~writable:(Prot.can_write prot)

let protect t ~vpn ~npages ~prot =
  charge_range_op ~comp:Comp.Secure t;
  note_batch t npages;
  for i = 0 to npages - 1 do
    match Ptable.find t.table (vpn + i) with
    | None -> invalid_arg "Vm_map.protect: page not mapped"
    | Some e ->
        charge_page_op ~comp:Comp.Secure t;
        e.prot <- prot;
        if Pmap.lookup t.pmap ~vpn:(vpn + i) <> None then
          if Prot.can_read prot then
            Pmap.protect t.pmap ~vpn:(vpn + i)
              ~writable:(Prot.can_write prot && not e.cow)
          else ignore (Pmap.remove t.pmap ~vpn:(vpn + i))
  done

let free_frame t f =
  (* The free-pool charge applies only when this reference is the last. *)
  if Phys_mem.refcount t.m.pmem f = 1 then begin
    Machine.charge ~comp:Comp.Alloc t.m t.m.cost.Cost_model.page_free;
    Stats.incr t.m.stats "vm.page_free"
  end;
  Phys_mem.decref t.m.pmem f

let unmap t ~vpn ~npages ~free_frames =
  charge_range_op ~comp:Comp.Unmap t;
  note_batch t npages;
  (* Walk the range backwards so freed frames land on the physical
     free stack in reverse page order: a subsequent same-size allocation
     of this address range pops them back page 0..n-1 and re-creates the
     identical vpn -> frame translations, which is what turns the queued
     TLB shootdowns into cancellations. Per-page charges are symmetric,
     so the direction is cost-invisible. *)
  for i = npages - 1 downto 0 do
    match Ptable.find t.table (vpn + i) with
    | None -> ()
    | Some e ->
        charge_page_op ~comp:Comp.Unmap t;
        ignore (Pmap.remove t.pmap ~vpn:(vpn + i));
        (match e.frame with
        | Some f when free_frames -> free_frame t f
        | Some _ | None -> ());
        Ptable.remove t.table (vpn + i)
  done

let copy_cow ~src ~dst ~vpn ~npages =
  charge_range_op ~comp:Comp.Map src;
  charge_range_op ~comp:Comp.Map dst;
  note_batch src npages;
  for i = 0 to npages - 1 do
    let p = vpn + i in
    match Ptable.find src.table p with
    | None -> invalid_arg "Vm_map.copy_cow: source page not mapped"
    | Some e ->
        charge_page_op ~comp:Comp.Map src;
        charge_page_op ~comp:Comp.Map dst;
        (match e.frame with
        | Some f ->
            Phys_mem.incref src.m.pmem f;
            Ptable.set dst.table p
              { frame = Some f; prot = e.prot; cow = true; zero_fill = false };
            e.cow <- true;
            (* Lazy physical-map update: invalidate rather than downgrade,
               leaving both sides to fault their entries back in. *)
            ignore (Pmap.remove src.pmap ~vpn:p)
        | None ->
            (* Unmaterialized zero-fill page: both sides keep private
               zero-fill semantics; no sharing needed. *)
            Ptable.set dst.table p
              { frame = None; prot = e.prot; cow = false; zero_fill = true })
  done

let convert_zero_fill t ~vpn ~npages =
  charge_range_op ~comp:Comp.Unmap t;
  note_batch t npages;
  for i = 0 to npages - 1 do
    match Ptable.find t.table (vpn + i) with
    | None -> invalid_arg "Vm_map.convert_zero_fill: page not mapped"
    | Some e ->
        charge_page_op ~comp:Comp.Unmap t;
        ignore (Pmap.remove t.pmap ~vpn:(vpn + i));
        (match e.frame with Some f -> free_frame t f | None -> ());
        e.frame <- None;
        e.cow <- false;
        e.zero_fill <- true
  done

let mapped t ~vpn = Ptable.mem t.table vpn

let prot_of t ~vpn =
  Option.map (fun e -> e.prot) (Ptable.find t.table vpn)

let frame_of t ~vpn =
  Option.bind (Ptable.find t.table vpn) (fun e -> e.frame)

let is_cow t ~vpn =
  match Ptable.find t.table vpn with Some e -> e.cow | None -> false

let entry_count t = Ptable.length t.table

let release_range t ~vpn ~npages = unmap t ~vpn ~npages ~free_frames:true

type fault_result = Resolved | Violation

let trace_fault t ~vpn ~write outcome =
  if Machine.tracing t.m then
    Machine.trace_instant t.m ~domain:t.name
      ~args:
        [
          ("vpn", Fbufs_trace.Trace.Int vpn);
          ("write", Fbufs_trace.Trace.Str (if write then "w" else "r"));
          ("outcome", Fbufs_trace.Trace.Str outcome);
        ]
      "vm.fault"

let fault t ~vpn ~write =
  Machine.charge ~kind:"vm.fault_trap" ~comp:Comp.Map t.m
    t.m.cost.Cost_model.fault_trap;
  Stats.incr t.m.stats "vm.fault";
  match Ptable.find t.table vpn with
  | None ->
      trace_fault t ~vpn ~write "violation";
      Violation
  | Some e ->
      let need = if write then Prot.can_write e.prot else Prot.can_read e.prot in
      if not need then begin
        trace_fault t ~vpn ~write "violation";
        Violation
      end
      else begin
        charge_page_op ~comp:Comp.Map t;
        (match e.frame with
        | None ->
            (* Zero-fill materialization: allocate and clear a frame. *)
            assert e.zero_fill;
            Machine.charge ~kind:"page.alloc" ~comp:Comp.Alloc t.m
              t.m.cost.Cost_model.page_alloc;
            Machine.charge ~kind:"page.zero" ~comp:Comp.Zero t.m
              t.m.cost.Cost_model.page_zero;
            Stats.incr t.m.stats "vm.zero_fill";
            trace_fault t ~vpn ~write "zero_fill";
            let f = Phys_mem.alloc t.m.pmem in
            Phys_mem.zero t.m.pmem f;
            e.frame <- Some f;
            e.zero_fill <- false;
            Pmap.enter t.pmap ~vpn ~frame:f ~writable:(Prot.can_write e.prot)
        | Some f when write && e.cow ->
            if Phys_mem.refcount t.m.pmem f = 1 then begin
              (* Sharing already collapsed: claim the frame in place. *)
              Stats.incr t.m.stats "vm.cow_claim";
              trace_fault t ~vpn ~write "cow_claim";
              e.cow <- false;
              Pmap.enter t.pmap ~vpn ~frame:f ~writable:true
            end
            else begin
              (* Physical copy: the cost COW was supposed to avoid. *)
              Machine.charge ~kind:"page.alloc" ~comp:Comp.Alloc t.m
                t.m.cost.Cost_model.page_alloc;
              Machine.charge ~kind:"vm.cow_copy" ~comp:Comp.Copy t.m
                (float_of_int t.m.cost.Cost_model.page_size
                *. t.m.cost.Cost_model.copy_per_byte);
              Stats.incr t.m.stats "vm.cow_copy";
              trace_fault t ~vpn ~write "cow_copy";
              let nf = Phys_mem.alloc t.m.pmem in
              Phys_mem.copy_frame t.m.pmem ~src:f ~dst:nf;
              Phys_mem.decref t.m.pmem f;
              e.frame <- Some nf;
              e.cow <- false;
              Pmap.enter t.pmap ~vpn ~frame:nf ~writable:true
            end
        | Some f ->
            (* Lazily invalidated or never-entered translation. COW pages
               are entered read-only so a later write faults again. *)
            trace_fault t ~vpn ~write "refill";
            let writable = Prot.can_write e.prot && not e.cow in
            Pmap.enter t.pmap ~vpn ~frame:f ~writable);
        Resolved
      end
