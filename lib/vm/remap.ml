open Fbufs_sim
module Comp = Fbufs_metrics.Component

(* Generic-facility surcharge: operating on arbitrary map entries (clip,
   validate, lock) per page, which the fbuf region's fixed layout avoids. *)
let charge_generic (dom : Pd.t) n =
  Machine.charge_n ~comp:Comp.Map dom.Pd.m n
    dom.Pd.m.Machine.cost.Cost_model.remap_page_overhead

let move ~src ~dst ~src_vpn ~npages ?dst_vpn () =
  let base =
    match dst_vpn with
    | Some v -> v
    | None -> Vm_map.reserve_private dst.Pd.map ~npages
  in
  charge_generic src npages;
  charge_generic dst npages;
  let frames =
    List.init npages (fun i ->
        match Vm_map.frame_of src.Pd.map ~vpn:(src_vpn + i) with
        | Some f ->
            Phys_mem.incref src.Pd.m.pmem f;
            f
        | None -> invalid_arg "Remap.move: source page has no frame")
  in
  Vm_map.unmap src.Pd.map ~vpn:src_vpn ~npages ~free_frames:true;
  List.iteri
    (fun i frame ->
      Vm_map.map_frame dst.Pd.map ~vpn:(base + i) ~frame
        ~prot:Prot.Read_write ~eager:true)
    frames;
  base

let alloc_pages (dom : Pd.t) ~npages ~clear_fraction =
  let m = dom.m in
  let base = Vm_map.reserve_private dom.map ~npages in
  charge_generic dom npages;
  for i = 0 to npages - 1 do
    Machine.charge ~comp:Comp.Alloc m m.cost.Cost_model.page_alloc;
    let f = Phys_mem.alloc m.pmem in
    if clear_fraction > 0.0 then begin
      Machine.charge ~comp:Comp.Zero m
        (m.cost.Cost_model.page_zero *. clear_fraction);
      Phys_mem.zero m.pmem f
    end;
    Vm_map.map_frame dom.map ~vpn:(base + i) ~frame:f ~prot:Prot.Read_write
      ~eager:true
  done;
  base

let free_pages (dom : Pd.t) ~vpn ~npages =
  charge_generic dom npages;
  Vm_map.release_range dom.Pd.map ~vpn ~npages
