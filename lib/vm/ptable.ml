(* Dense slab-backed page table: vpn -> 'a.

   Mapped virtual pages cluster into a handful of contiguous ranges (the
   private area, the fbuf region), so the table is a hashtable of dense
   slabs of [1 lsl slab_bits] pages each. Point lookups are one (usually
   memoized) slab resolution plus an array index; range traversals touch
   the hashtable once per slab crossed, not once per page.

   The single-slab memo makes sequential range walks O(1) amortized per
   page: consecutive vpns hit the same slab until the walk crosses a slab
   boundary. *)

type 'a t = {
  slab_bits : int;
  slabs : (int, 'a option array) Hashtbl.t;
  mutable count : int;
  mutable memo_id : int; (* slab id of [memo_slab]; min_int = no memo *)
  mutable memo_slab : 'a option array;
}

let create ?(slab_bits = 9) () =
  if slab_bits < 1 || slab_bits > 20 then
    invalid_arg "Ptable.create: slab_bits out of range";
  {
    slab_bits;
    slabs = Hashtbl.create 16;
    count = 0;
    memo_id = min_int;
    memo_slab = [||];
  }

let idx t vpn = vpn land ((1 lsl t.slab_bits) - 1)

(* Existing slab holding [vpn], if any. *)
let slab_of t vpn =
  let id = vpn lsr t.slab_bits in
  if id = t.memo_id then Some t.memo_slab
  else
    match Hashtbl.find_opt t.slabs id with
    | Some s ->
        t.memo_id <- id;
        t.memo_slab <- s;
        Some s
    | None -> None

(* Slab holding [vpn], created on demand. *)
let slab_for t vpn =
  match slab_of t vpn with
  | Some s -> s
  | None ->
      let id = vpn lsr t.slab_bits in
      let s = Array.make (1 lsl t.slab_bits) None in
      Hashtbl.add t.slabs id s;
      t.memo_id <- id;
      t.memo_slab <- s;
      s

let find t vpn =
  if vpn < 0 then None
  else
    match slab_of t vpn with
    | None -> None
    (* [idx] masks into the slab, so the access is in range. *)
    | Some s -> Array.unsafe_get s (idx t vpn)

let mem t vpn = find t vpn <> None

let set t vpn v =
  if vpn < 0 then invalid_arg "Ptable.set: negative vpn";
  let s = slab_for t vpn in
  let i = idx t vpn in
  if s.(i) = None then t.count <- t.count + 1;
  s.(i) <- Some v

let remove t vpn =
  if vpn >= 0 then
    match slab_of t vpn with
    | None -> ()
    | Some s ->
        let i = idx t vpn in
        if s.(i) <> None then begin
          t.count <- t.count - 1;
          s.(i) <- None
        end

let length t = t.count

let iter f t =
  Hashtbl.iter
    (fun id s ->
      Array.iteri
        (fun i -> function
          | None -> ()
          | Some v -> f ((id lsl t.slab_bits) lor i) v)
        s)
    t.slabs
