(** Conventional virtual page remapping with move semantics.

    This is the generic facility of the V kernel / DASH lineage the paper
    uses as its baseline ("we use a conventional remap facility with copy
    semantics as the baseline"): pages are unmapped from the sender and
    mapped into a freshly reserved (or caller-fixed) range in the receiver,
    paying both VM levels and TLB consistency on every transfer. *)

val move :
  src:Pd.t -> dst:Pd.t -> src_vpn:int -> npages:int -> ?dst_vpn:int -> unit -> int
(** Transfer ownership of the frames backing [npages] pages from [src] to
    [dst] with move semantics. When [dst_vpn] is omitted a fresh range is
    reserved in the receiver (charging the address-range search the
    ping-pong benchmarks of prior work conveniently skipped). Returns the
    receiver-side base VPN. The receiver mapping is entered eagerly with
    read-write protection. Raises [Invalid_argument] when a source page has
    no backing frame. *)

val alloc_pages : Pd.t -> npages:int -> clear_fraction:float -> int
(** Allocate fresh anonymous pages eagerly (reserve range, allocate frames,
    optionally clear [clear_fraction] of each page's bytes for security),
    returning the base VPN. Models the allocation cost a realistic
    unidirectional data flow pays and that ping-pong tests hide. *)

val free_pages : Pd.t -> vpn:int -> npages:int -> unit
(** Release the range and free the frames. *)
