open Fbufs_sim
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

type entry = { frame : Phys_mem.frame_id; writable : bool }

type t = { m : Machine.t; asid : int; table : entry Ptable.t }

(* Deferred/elidable shootdowns (generation-tagged TLB). On: removes of
   TLB-cached translations are queued instead of flushed and cancelled
   outright when the identical translation is re-entered; removes of
   uncached translations pay nothing. Off: every downgrade and remove
   pays the PR6-era immediate per-page shootdown, reproducing the
   paper-faithful numbers byte for byte. *)
let elision_enabled = ref true

(* Chaos fault injection for the differential checker: defer even the
   cached writable downgrade, which leaves a reachable stale *writable*
   translation over a read-only pmap entry — exactly the protection hole
   the paper's security argument forbids. The checker's TLB audit must
   catch this within one step. *)
let chaos_defer_downgrade = ref false

let pmap_ops =
  Mx.counter ~name:"fbufs_pmap_ops_total" ~help:"Pmap mutations by operation"
    ~labels:[ "machine"; "op" ] ()

let tlb_shootdowns =
  Mx.counter ~name:"fbufs_tlb_shootdowns_total"
    ~help:
      "TLB shootdowns by disposition: immediate on downgrade/remove, \
       drained in a batch, or cancelled by translation reuse"
    ~labels:[ "machine"; "reason" ] ()

let tlb_elided =
  Mx.counter ~name:"fbufs_tlb_flushes_elided_total"
    ~help:
      "TLB flushes elided because the translation was reused unchanged, \
       already evicted, or never cached"
    ~labels:[ "machine"; "reason" ] ()

let note_op_m m op =
  match Machine.metrics m with
  | None -> ()
  | Some mx -> Mx.incr mx pmap_ops ~labels:[ m.Machine.name; op ] ()

let note_shootdown m ~reason =
  match Machine.metrics m with
  | None -> ()
  | Some mx -> Mx.incr mx tlb_shootdowns ~labels:[ m.Machine.name; reason ] ()

let note_elided m ~reason =
  match Machine.metrics m with
  | None -> ()
  | Some mx -> Mx.incr mx tlb_elided ~labels:[ m.Machine.name; reason ] ()

let note_op t op = note_op_m t.m op

let create m ~asid = { m; asid; table = Ptable.create () }

let asid t = t.asid

let lookup t ~vpn = Ptable.find t.table vpn

let cached t ~vpn =
  Tlb.probe t.m.Machine.tlb ~asid:t.asid ~vpn ~write:false <> Tlb.Miss

(* One immediate per-page shootdown: the PR6-era cost, still paid for
   every non-deferrable invalidation. *)
let shoot_now t ~vpn ~reason =
  Machine.charge ~kind:"tlb.shootdown" ~comp:Comp.Tlb_flush t.m
    t.m.cost.Cost_model.tlb_shootdown;
  Stats.incr t.m.stats "tlb.shootdown";
  note_shootdown t.m ~reason;
  Tlb.invalidate t.m.tlb ~asid:t.asid ~vpn

(* Each mutation is visible on the trace timeline as the Complete slice
   its [charge ~kind] emits; no separate instant is needed. *)
let enter t ~vpn ~frame ~writable =
  Machine.charge ~kind:"pmap.enter" ~comp:Comp.Map t.m
    t.m.cost.Cost_model.pmap_enter;
  Stats.incr t.m.stats "pmap.enter";
  note_op t "enter";
  (match Tlb.find_pending t.m.tlb ~asid:t.asid ~vpn with
  | None -> ()
  | Some p ->
      Tlb.cancel_pending t.m.tlb ~asid:t.asid ~vpn;
      if not (cached t ~vpn) then
        (* The stale entry fell out of the TLB on its own; nothing left
           to shoot down. *)
        note_elided t.m ~reason:"evicted"
      else if p.Tlb.p_frame = frame && p.Tlb.p_writable = writable then begin
        (* Identical translation re-entered (fbuf reuse): the still-cached
           entry is correct again, so the queued shootdown — and the
           refill the flush would have forced — are both elided. *)
        note_shootdown t.m ~reason:"elided-cancel";
        note_elided t.m ~reason:"reuse"
      end
      else
        (* Translation changed while the old entry may still be cached:
           the deferral window ends here, immediately. *)
        shoot_now t ~vpn ~reason:"remove");
  Ptable.set t.table vpn { frame; writable }

let protect t ~vpn ~writable =
  match Ptable.find t.table vpn with
  | None -> invalid_arg "Pmap.protect: no entry"
  | Some e ->
      Machine.charge ~kind:"pmap.protect" ~comp:Comp.Secure t.m
        t.m.cost.Cost_model.pmap_protect;
      Stats.incr t.m.stats "pmap.protect";
      note_op t
        (if (not e.writable) && writable then "protect-upgrade" else "protect");
      if e.writable && not writable then begin
        if not !elision_enabled then shoot_now t ~vpn ~reason:"downgrade"
        else if cached t ~vpn then
          if !chaos_defer_downgrade then
            (* Fault injection: deferring this one is unsound (see above). *)
            Tlb.defer t.m.tlb ~asid:t.asid ~vpn ~frame:e.frame
              ~writable:e.writable
          else
            (* A cached writable entry another access can still use must
               die before the pmap says read-only: never deferred. *)
            shoot_now t ~vpn ~reason:"downgrade"
        else
          (* Never cached (or already evicted): the downgrade is visible
             to the next refill for free. *)
          note_elided t.m ~reason:"uncached"
      end;
      Ptable.set t.table vpn { e with writable }

let remove t ~vpn =
  match Ptable.find t.table vpn with
  | None -> None
  | Some e ->
      Machine.charge ~kind:"pmap.remove" ~comp:Comp.Unmap t.m
        t.m.cost.Cost_model.pmap_remove;
      Stats.incr t.m.stats "pmap.remove";
      note_op t "remove";
      if not !elision_enabled then shoot_now t ~vpn ~reason:"remove"
      else if cached t ~vpn then
        (* Deferred-safe: the access path re-consults this pmap on every
           TLB hit, so a stale (non-writable-over-readonly) entry cannot
           be used — queue the shootdown for the next barrier, or for
           cancellation if the identical translation comes back first. *)
        Tlb.defer t.m.tlb ~asid:t.asid ~vpn ~frame:e.frame
          ~writable:e.writable
      else note_elided t.m ~reason:"uncached";
      Ptable.remove t.table vpn;
      Some e

let entry_count t = Ptable.length t.table
