open Fbufs_sim

type entry = { frame : Phys_mem.frame_id; writable : bool }

type t = { m : Machine.t; asid : int; table : entry Ptable.t }

let create m ~asid = { m; asid; table = Ptable.create () }

let asid t = t.asid

let lookup t ~vpn = Ptable.find t.table vpn

(* Each mutation is visible on the trace timeline as the Complete slice
   its [charge ~kind] emits; no separate instant is needed. *)
let enter t ~vpn ~frame ~writable =
  Machine.charge ~kind:"pmap.enter" t.m t.m.cost.Cost_model.pmap_enter;
  Stats.incr t.m.stats "pmap.enter";
  Ptable.set t.table vpn { frame; writable }

let protect t ~vpn ~writable =
  match Ptable.find t.table vpn with
  | None -> invalid_arg "Pmap.protect: no entry"
  | Some e ->
      Machine.charge ~kind:"pmap.protect" t.m t.m.cost.Cost_model.pmap_protect;
      Stats.incr t.m.stats "pmap.protect";
      if e.writable && not writable then begin
        (* Downgrade: a writable translation may be cached; shoot it down. *)
        Machine.charge ~kind:"tlb.shootdown" t.m
          t.m.cost.Cost_model.tlb_shootdown;
        Stats.incr t.m.stats "tlb.shootdown";
        Tlb.invalidate t.m.tlb ~asid:t.asid ~vpn
      end;
      Ptable.set t.table vpn { e with writable }

let remove t ~vpn =
  match Ptable.find t.table vpn with
  | None -> None
  | Some e ->
      Machine.charge ~kind:"pmap.remove" t.m t.m.cost.Cost_model.pmap_remove;
      Stats.incr t.m.stats "pmap.remove";
      Machine.charge ~kind:"tlb.shootdown" t.m
        t.m.cost.Cost_model.tlb_shootdown;
      Stats.incr t.m.stats "tlb.shootdown";
      Tlb.invalidate t.m.tlb ~asid:t.asid ~vpn;
      Ptable.remove t.table vpn;
      Some e

let entry_count t = Ptable.length t.table
