open Fbufs_sim
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

type entry = { frame : Phys_mem.frame_id; writable : bool }

type t = { m : Machine.t; asid : int; table : entry Ptable.t }

let pmap_ops =
  Mx.counter ~name:"fbufs_pmap_ops_total" ~help:"Pmap mutations by operation"
    ~labels:[ "machine"; "op" ] ()

let tlb_shootdowns =
  Mx.counter ~name:"fbufs_tlb_shootdowns_total"
    ~help:"TLB shootdowns issued on translation downgrade or removal"
    ~labels:[ "machine" ] ()

let note_op t op =
  match Machine.metrics t.m with
  | None -> ()
  | Some mx -> Mx.incr mx pmap_ops ~labels:[ t.m.Machine.name; op ] ()

let note_shootdown t =
  match Machine.metrics t.m with
  | None -> ()
  | Some mx -> Mx.incr mx tlb_shootdowns ~labels:[ t.m.Machine.name ] ()

let create m ~asid = { m; asid; table = Ptable.create () }

let asid t = t.asid

let lookup t ~vpn = Ptable.find t.table vpn

(* Each mutation is visible on the trace timeline as the Complete slice
   its [charge ~kind] emits; no separate instant is needed. *)
let enter t ~vpn ~frame ~writable =
  Machine.charge ~kind:"pmap.enter" ~comp:Comp.Map t.m
    t.m.cost.Cost_model.pmap_enter;
  Stats.incr t.m.stats "pmap.enter";
  note_op t "enter";
  Ptable.set t.table vpn { frame; writable }

let protect t ~vpn ~writable =
  match Ptable.find t.table vpn with
  | None -> invalid_arg "Pmap.protect: no entry"
  | Some e ->
      Machine.charge ~kind:"pmap.protect" ~comp:Comp.Secure t.m
        t.m.cost.Cost_model.pmap_protect;
      Stats.incr t.m.stats "pmap.protect";
      note_op t "protect";
      if e.writable && not writable then begin
        (* Downgrade: a writable translation may be cached; shoot it down. *)
        Machine.charge ~kind:"tlb.shootdown" ~comp:Comp.Tlb_flush t.m
          t.m.cost.Cost_model.tlb_shootdown;
        Stats.incr t.m.stats "tlb.shootdown";
        note_shootdown t;
        Tlb.invalidate t.m.tlb ~asid:t.asid ~vpn
      end;
      Ptable.set t.table vpn { e with writable }

let remove t ~vpn =
  match Ptable.find t.table vpn with
  | None -> None
  | Some e ->
      Machine.charge ~kind:"pmap.remove" ~comp:Comp.Unmap t.m
        t.m.cost.Cost_model.pmap_remove;
      Stats.incr t.m.stats "pmap.remove";
      note_op t "remove";
      Machine.charge ~kind:"tlb.shootdown" ~comp:Comp.Tlb_flush t.m
        t.m.cost.Cost_model.tlb_shootdown;
      Stats.incr t.m.stats "tlb.shootdown";
      note_shootdown t;
      Tlb.invalidate t.m.tlb ~asid:t.asid ~vpn;
      Ptable.remove t.table vpn;
      Some e

let entry_count t = Ptable.length t.table
