(** Machine-dependent physical map: one per address space.

    This is the lower level of the two-level VM system the paper insists
    modern portable operating systems use ("mapping changes require the
    modification of both low-level, machine dependent page tables, and
    high-level, machine-independent data structures"). The TLB refill
    handler reads this table; every mutation charges simulated time, and
    mutations of entries that may be cached in the TLB pay for TLB
    consistency — immediately, batched at the next barrier, or not at all
    when the translation comes back unchanged (see {!elision_enabled}). *)

type entry = { frame : Fbufs_sim.Phys_mem.frame_id; writable : bool }

type t

val elision_enabled : bool ref
(** Deferred/elidable shootdowns (default on). When off, every downgrade
    and remove pays the immediate per-page shootdown, reproducing the
    pre-generation-TLB (PR6) cost model exactly. *)

val chaos_defer_downgrade : bool ref
(** Fault injection for the differential checker (default off): defer
    even the cached writable downgrade, leaving a reachable stale
    writable translation the checker's TLB audit must flag. *)

val create : Fbufs_sim.Machine.t -> asid:int -> t

val asid : t -> int

val lookup : t -> vpn:int -> entry option
(** Hardware-walk view used by the TLB refill path; free of charge (the
    refill cost is charged by the access path). *)

val enter : t -> vpn:int -> frame:Fbufs_sim.Phys_mem.frame_id -> writable:bool -> unit
(** Install or replace a translation. Charges [pmap_enter]. Resolves any
    pending deferred shootdown for the page: cancelled outright when the
    re-entered translation is identical (the fbuf-reuse elision), turned
    into an immediate shootdown when it changed. *)

val protect : t -> vpn:int -> writable:bool -> unit
(** Change the writable bit of an existing entry. Charges [pmap_protect],
    plus a TLB shootdown when write permission is being removed from a
    still-cached entry (a stale writable TLB entry would be a protection
    hole — this one is never deferred); a downgrade of an uncached
    translation is elided. Upgrades are lazy: the stale read-only TLB
    entry is left to cause a modification fault. Raises
    [Invalid_argument] if no entry exists. *)

val remove : t -> vpn:int -> entry option
(** Drop a translation, returning it. Charges [pmap_remove]; the TLB
    shootdown is deferred (queued) when the translation is still cached
    and elided when it is not. With {!elision_enabled} off, charges the
    immediate shootdown unconditionally. Returns [None] (and charges
    nothing) if absent. *)

val entry_count : t -> int

(** {2 Metrics hooks} (shared with the drain path in {!Tlb_sync}) *)

val note_shootdown : Fbufs_sim.Machine.t -> reason:string -> unit
(** Count one shootdown in [fbufs_tlb_shootdowns_total]; [reason] is one
    of ["downgrade"], ["remove"], ["batch"], ["elided-cancel"]. *)

val note_elided : Fbufs_sim.Machine.t -> reason:string -> unit
(** Count one elided flush in [fbufs_tlb_flushes_elided_total]; [reason]
    is one of ["reuse"], ["evicted"], ["uncached"]. *)
