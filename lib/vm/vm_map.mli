(** Machine-independent address map: the upper level of the two-level VM.

    Holds the authoritative mapping state for one address space (backing
    frames, protections, copy-on-write and zero-fill attributes) and keeps
    the {!Pmap} below it consistent, either eagerly or lazily (lazy updates
    are resolved by {!fault}, which is how Mach's COW facility ends up taking
    two page faults per transferred page — the behaviour the paper measures
    in Table 1).

    Charging convention: each call that changes mapping state pays one
    [vm_range_op] plus one [vm_page_op] per affected page, and whatever the
    pmap layer charges for the low-level updates it performs. *)

type t

exception
  Protection_violation of { domain : string; vaddr : int; write : bool }

val create : Fbufs_sim.Machine.t -> name:string -> asid:int -> t

val name : t -> string
val pmap : t -> Pmap.t
val machine : t -> Fbufs_sim.Machine.t

(* -- address space management --------------------------------------- *)

val reserve_private : t -> npages:int -> int
(** Find and reserve a range of virtual pages in the domain's private area;
    returns the base VPN. Charges [vm_range_op]. *)

val release_range : t -> vpn:int -> npages:int -> unit
(** Return a reserved range; unmaps any remaining pages (freeing frames).
    Charges [vm_range_op] plus unmap costs. *)

(* -- mapping operations ---------------------------------------------- *)

val map_zero_fill : t -> vpn:int -> npages:int -> unit
(** Establish lazily materialized anonymous zero-filled memory with
    read-write protection. Frames are allocated (and zeroed, with the full
    57 us charge) on first touch by {!fault}. *)

val map_frame :
  t ->
  vpn:int ->
  frame:Fbufs_sim.Phys_mem.frame_id ->
  prot:Prot.t ->
  eager:bool ->
  unit
(** Map one page to a concrete frame (taking over one reference). [eager]
    installs the pmap entry now; otherwise the first access faults it in. *)

val protect : t -> vpn:int -> npages:int -> prot:Prot.t -> unit
(** Change protection. Valid pmap entries are updated in place (paying the
    pmap protect cost and, on downgrade, a TLB shootdown per page). Raises
    [Invalid_argument] on an unmapped page. *)

val unmap : t -> vpn:int -> npages:int -> free_frames:bool -> unit
(** Remove mappings. With [free_frames], materialized frames lose one
    reference (and are charged [page_free] if that frees them); without it
    the frames survive — used by move-semantics remapping. *)

val copy_cow : src:t -> dst:t -> vpn:int -> npages:int -> unit
(** Mach-style virtual copy of [src]'s pages into [dst] at the same VPN:
    frames become shared and copy-on-write in both maps; physical map
    entries are invalidated lazily, so the next access in either domain
    faults ({!fault} then either re-enters read-only or performs the
    physical copy). Raises [Invalid_argument] on an unmapped source page. *)

val convert_zero_fill : t -> vpn:int -> npages:int -> unit
(** Pageout support: drop the frames backing a mapped range (one reference
    each) and turn the entries into lazily materialized zero-fill pages,
    keeping their protection. The next touch faults in a fresh zeroed
    frame. Raises [Invalid_argument] on unmapped pages. *)

(* -- queries ---------------------------------------------------------- *)

val mapped : t -> vpn:int -> bool
val prot_of : t -> vpn:int -> Prot.t option
val frame_of : t -> vpn:int -> Fbufs_sim.Phys_mem.frame_id option
val is_cow : t -> vpn:int -> bool
val entry_count : t -> int

(* -- fault handling --------------------------------------------------- *)

type fault_result = Resolved | Violation

val fault : t -> vpn:int -> write:bool -> fault_result
(** Resolve a page fault: zero-fill materialization, COW copy (or claim, if
    the frame is no longer shared), or lazy pmap re-entry. Charges
    [fault_trap] plus the work performed. [Violation] means the access is
    not permitted by the map. *)
