(** Dense slab-backed page table: vpn -> ['a].

    Backing store for {!Vm_map} and {!Pmap}. Mapped pages cluster into a
    few contiguous ranges, so entries live in dense slabs (arrays) found
    through a per-slab hashtable. A point operation costs one slab
    resolution plus an array index; the most recently used slab is
    memoized, so a sequential range traversal resolves the hashtable once
    per slab crossed instead of once per page.

    Note this structure only changes the *real* execution cost of the
    simulator; simulated-time charges are made by the callers, per page,
    exactly as before. *)

type 'a t

val create : ?slab_bits:int -> unit -> 'a t
(** [slab_bits] (default 9, i.e. 512-page / 2 MB slabs) sets the slab
    granule. Raises [Invalid_argument] outside [1, 20]. *)

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val set : 'a t -> int -> 'a -> unit
(** Insert or overwrite. Raises [Invalid_argument] on a negative vpn. *)

val remove : 'a t -> int -> unit
(** No-op when absent. *)

val length : 'a t -> int
(** Number of live entries, maintained as a counter (O(1)). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate over live entries in unspecified order. *)
