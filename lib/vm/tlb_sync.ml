open Fbufs_sim
module Comp = Fbufs_metrics.Component

(* Drain the machine's deferred-shootdown queue at a synchronization
   barrier. One batched charge covers the whole queue — base (the
   trap/synchronization cost, paid once) plus a small per-entry
   increment — which is the entire point of deferring: n queued
   invalidations cost far less than n standalone shootdowns, and the
   ones cancelled by reuse before a barrier cost nothing at all. *)
let drain m =
  match Tlb.take_pending m.Machine.tlb with
  | [] -> ()
  | l ->
      let n = List.length l in
      List.iter (fun (asid, vpn) -> Tlb.invalidate m.Machine.tlb ~asid ~vpn) l;
      Machine.charge ~kind:"tlb.shootdown_batch" ~comp:Comp.Tlb_flush m
        (m.cost.Cost_model.tlb_shootdown_batch_base
        +. (float_of_int n *. m.cost.Cost_model.tlb_shootdown_batch_entry));
      Stats.incr m.stats "tlb.shootdown_batch";
      for _ = 1 to n do
        Pmap.note_shootdown m ~reason:"batch"
      done
