(** The memory access path: TLB lookup, software refill, fault dispatch.

    Every byte any simulated component reads or writes goes through this
    module, so TLB locality, lazy pmap updates, modification faults and
    protection enforcement are emergent properties of the mechanisms under
    test rather than numbers asserted by the experiments.

    Word operations model individual loads/stores (charging a cache-fill
    share per access); bulk operations model bcopy-style loops (charging
    [copy_per_byte]) and checksum loops (charging [checksum_per_byte]).

    Raises {!Vm_map.Protection_violation} on access the domain does not
    have — this is the memory access violation exception the paper's
    restricted dynamic read sharing relies on. *)

val read_word : Pd.t -> vaddr:int -> int
(** Load a 32-bit little-endian word. Raises [Invalid_argument] if the
    word crosses a page boundary. *)

val write_word : Pd.t -> vaddr:int -> int -> unit
(** Store a 32-bit little-endian word (low 32 bits of the argument).
    Raises [Invalid_argument] if the word crosses a page boundary. *)

val read_bytes : Pd.t -> vaddr:int -> len:int -> bytes

val write_bytes : Pd.t -> vaddr:int -> bytes -> unit

val write_string : Pd.t -> vaddr:int -> string -> unit

val blit : src:Pd.t -> src_vaddr:int -> dst:Pd.t -> dst_vaddr:int -> len:int -> unit
(** Copy between (possibly different) domains through a trusted intermediary
    (e.g. kernel copyin/copyout); charges one copy per byte. *)

val checksum : Pd.t -> vaddr:int -> len:int -> int
(** Internet-style 16-bit ones'-complement checksum over the range,
    computed over the actual simulated bytes. *)

type checksum_state
(** Partial ones'-complement sum, composable across discontiguous ranges
    (buffer aggregates): carries the running sum and byte parity. *)

val checksum_start : checksum_state

val checksum_feed :
  Pd.t -> vaddr:int -> len:int -> checksum_state -> checksum_state
(** Fold a range into the sum in place (charging only the checksum loop,
    not a copy). *)

val checksum_finish : checksum_state -> int

val touch_read : Pd.t -> vaddr:int -> npages:int -> unit
(** Read one word in each page of the range — the paper's Table 1 receiver
    workload ("touches (reads) one word in each page"). *)

val touch_write : Pd.t -> vaddr:int -> npages:int -> unit
(** Write one word in each page — the Table 1 originator workload. *)

val can_access : Pd.t -> vaddr:int -> write:bool -> bool
(** Non-faulting permission probe against the map (no charges). *)
