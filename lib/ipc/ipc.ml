open Fbufs_sim
open Fbufs_vm
open Fbufs
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

type mode = Rebuild | Integrated

type facility = Mach | Urpc

type conn = {
  region : Region.t;
  src : Pd.t;
  dst : Pd.t;
  mode : mode;
  facility : facility;
  auto_free_dst : bool;
  meta_alloc : Allocator.t option;
  m : Machine.t;
  mutable pending : Fbuf.t list;
}

let threshold = 64

let connect region ~src ~dst ?(mode = Rebuild) ?(facility = Mach)
    ?(auto_free_dst = false) () =
  let meta_alloc =
    match mode with
    | Rebuild -> None
    | Integrated ->
        Some
          (Allocator.create region
             ~path:(Path.create [ src; dst ])
             ~variant:Fbuf.cached_volatile ())
  in
  {
    region;
    src;
    dst;
    mode;
    facility;
    auto_free_dst;
    meta_alloc;
    m = Region.machine region;
    pending = [];
  }

let facility c = c.facility
let meta_allocator c = c.meta_alloc

let calls_total =
  Mx.counter ~name:"fbufs_ipc_calls_total"
    ~help:"IPC crossings by facility and aggregate-transfer mode"
    ~labels:[ "machine"; "facility"; "mode" ] ()

let deallocs_total =
  Mx.counter ~name:"fbufs_ipc_deallocs_total"
    ~help:
      "Deferred-deallocation dispositions: queued, piggybacked on a reply, \
       or flushed by an explicit message"
    ~labels:[ "machine"; "kind" ] ()

let note_deallocs c kind n =
  match Machine.metrics c.m with
  | None -> ()
  | Some mx ->
      Mx.add mx deallocs_total
        ~labels:[ c.m.Machine.name; kind ]
        (float_of_int n)

let src c = c.src
let dst c = c.dst
let mode c = c.mode

let pending_deallocs c = List.length c.pending

let process_pending c =
  List.iter
    (fun fb ->
      Stats.incr c.m.Machine.stats "ipc.dealloc_processed";
      Transfer.free fb ~dom:c.dst)
    (List.rev c.pending);
  c.pending <- []

let explicit_flush c =
  if c.pending <> [] then begin
    if Machine.tracing c.m then
      Machine.trace_instant c.m ~domain:c.dst.Pd.name
        ~args:[ ("pending", Fbufs_trace.Trace.Int (List.length c.pending)) ]
        "ipc.dealloc_flush";
    Machine.charge ~kind:"ipc.call" ~comp:Comp.Ipc c.m
      c.m.cost.Cost_model.ipc_call;
    Machine.charge ~kind:"ipc.reply" ~comp:Comp.Ipc c.m
      c.m.cost.Cost_model.ipc_reply;
    Stats.incr c.m.Machine.stats "ipc.explicit_dealloc_msg";
    note_deallocs c "explicit" (List.length c.pending);
    process_pending c
  end

let flush_deallocs c = explicit_flush c

let free_deferred c msg =
  List.iter
    (fun (fb : Fbuf.t) ->
      if Pd.equal (Fbuf.originator fb) c.src then begin
        Stats.incr c.m.Machine.stats "ipc.dealloc_deferred";
        note_deallocs c "deferred" 1;
        c.pending <- fb :: c.pending
      end
      else Transfer.free fb ~dom:c.dst)
    (Fbufs_msg.Msg.fbufs msg);
  if List.length c.pending >= threshold then explicit_flush c

let node_bytes msg = Fbufs_msg.Integrated.node_count msg * Fbufs_msg.Integrated.node_size

let crossing_costs c =
  let cost = c.m.Machine.cost in
  match c.facility with
  | Mach ->
      ( cost.Cost_model.ipc_call,
        cost.Cost_model.ipc_reply,
        cost.Cost_model.ipc_tlb_footprint )
  | Urpc ->
      ( cost.Cost_model.urpc_call,
        cost.Cost_model.urpc_reply,
        cost.Cost_model.urpc_tlb_footprint )

let facility_name = function Mach -> "mach" | Urpc -> "urpc"

let call c msg ~handler =
  let cost = c.m.Machine.cost in
  let call_cost, reply_cost, footprint = crossing_costs c in
  (* One span covers the whole crossing: control transfer in, transfer of
     the message's buffers, handler execution, and the reply. *)
  let sp =
    if Machine.tracing c.m then
      Machine.span_begin c.m ~domain:c.src.Pd.name
        ~args:
          [
            ("dst", Fbufs_trace.Trace.Str c.dst.Pd.name);
            ("facility", Fbufs_trace.Trace.Str (facility_name c.facility));
            ( "mode",
              Fbufs_trace.Trace.Str
                (match c.mode with Rebuild -> "rebuild" | Integrated -> "integrated")
            );
          ]
        "ipc.call"
    else 0
  in
  (* Causal span for the crossing. The caller's transfer context usually
     reaches here down the stack; a call made outside any context (a
     proxy invoked from a detached continuation) adopts the transfer
     carried by the message's first fbuf. *)
  let csp =
    if not (Machine.spanning c.m) then 0
    else if Machine.current_transfer c.m <> 0 then
      Machine.span_enter c.m ~domain:c.src.Pd.name "ipc.call"
    else
      let tid =
        match Fbufs_msg.Msg.fbufs msg with
        | fb :: _ -> fb.Fbuf.xfer
        | [] -> 0
      in
      Machine.span_adopt c.m ~transfer:tid ~domain:c.src.Pd.name "ipc.call"
  in
  Machine.charge ~kind:"ipc.crossing" ~comp:Comp.Ipc c.m call_cost;
  Stats.incr c.m.Machine.stats "ipc.call";
  (match Machine.metrics c.m with
  | None -> ()
  | Some mx ->
      Mx.incr mx calls_total
        ~labels:
          [
            c.m.Machine.name;
            facility_name c.facility;
            (match c.mode with Rebuild -> "rebuild" | Integrated -> "integrated");
          ]
        ());
  (match c.mode with
  | Rebuild ->
      (* Flatten to an fbuf list, marshal one descriptor per buffer, and
         let the receiving side reconstruct the aggregate. *)
      let fbs = Fbufs_msg.Msg.fbufs msg in
      Machine.charge ~kind:"ipc.marshal" ~comp:Comp.Ipc c.m
        (float_of_int (List.length fbs) *. cost.Cost_model.ipc_per_fbuf);
      List.iter (fun fb -> Transfer.send fb ~src:c.src ~dst:c.dst) fbs;
      Machine.domain_crossing_tlb_pressure ~entries:footprint c.m;
      handler msg;
      if c.auto_free_dst then Fbufs_msg.Msg.free_held msg ~dom:c.dst
  | Integrated ->
      (* Everything spent building, walking and reconstructing the
         aggregate object — including the VM and allocator work for the
         meta buffer — is DAG-support cost (Table 1's last row), so the
         whole activity runs under a [Dag] attribution context. *)
      let meta, root_vaddr =
        Machine.with_comp c.m Comp.Dag (fun () ->
            let meta_alloc = Option.get c.meta_alloc in
            let ps = cost.Cost_model.page_size in
            let npages = max 1 ((node_bytes msg + ps - 1) / ps) in
            let meta = Allocator.alloc meta_alloc ~npages in
            (meta, Fbufs_msg.Integrated.serialize msg ~meta ~as_:c.src))
      in
      (* Only the root reference is marshalled; the kernel inspects the
         aggregate to find the buffers to transfer. *)
      Machine.charge ~kind:"ipc.marshal" ~comp:Comp.Ipc c.m
        cost.Cost_model.ipc_per_fbuf;
      let reachable =
        Machine.with_comp c.m Comp.Dag (fun () ->
            Fbufs_msg.Integrated.reachable_fbufs c.region ~as_:c.src
              ~root_vaddr)
      in
      List.iter (fun fb -> Transfer.send fb ~src:c.src ~dst:c.dst) reachable;
      Machine.domain_crossing_tlb_pressure ~entries:footprint c.m;
      let received =
        Machine.with_comp c.m Comp.Dag (fun () ->
            Fbufs_msg.Integrated.deserialize c.region ~as_:c.dst ~root_vaddr)
      in
      handler received;
      if c.auto_free_dst then Fbufs_msg.Msg.free_held received ~dom:c.dst;
      (* The meta buffer served its purpose on both sides. *)
      Transfer.free meta ~dom:c.dst;
      Transfer.free meta ~dom:c.src);
  (* Reply path: control transfer back, carrying deferred deallocation
     notices for free. *)
  Machine.charge ~kind:"ipc.crossing" ~comp:Comp.Ipc c.m reply_cost;
  Machine.domain_crossing_tlb_pressure ~entries:footprint c.m;
  (* The return crossing is the call's synchronization barrier: whatever
     deferred shootdowns survived the roundtrip — and were not cancelled
     by a page being re-entered with its old translation — drain here,
     batched, so staleness is bounded by one roundtrip. (Draining once
     per call rather than at every crossing is what gives a reused page's
     pending shootdown the chance to be cancelled by the receiver's
     re-fault during the call.) *)
  Tlb_sync.drain c.m;
  if c.pending <> [] then begin
    Stats.add c.m.Machine.stats "ipc.dealloc_piggybacked"
      (List.length c.pending);
    note_deallocs c "piggybacked" (List.length c.pending);
    if Machine.tracing c.m then
      Machine.trace_instant c.m ~domain:c.dst.Pd.name
        ~args:[ ("pending", Fbufs_trace.Trace.Int (List.length c.pending)) ]
        "ipc.dealloc_piggyback";
    process_pending c
  end;
  Machine.span_end c.m sp;
  Machine.span_exit c.m csp;
  (* The reply delivered and its deferred notices processed: a sequence
     point where cross-domain state is expected consistent. *)
  Machine.seq_point c.m "ipc.reply"
