(** Synchronous cross-domain invocation carrying fbuf-based messages.

    Models Mach-style RPC between two protection domains on one host: a
    call charges the control-transfer latency, displaces TLB entries
    (kernel IPC path working set), hands the message's fbufs to the callee
    via {!Fbufs.Transfer}, runs the handler "in" the callee, and returns.

    Two message-passing modes implement section 3.2.3 of the paper:
    - [Rebuild]: the aggregate object is flattened to a list of fbufs in
      the sender, each descriptor is marshalled (charged per fbuf), and the
      receiving side reconstructs the aggregate — buffer management and
      transfer are separate facilities.
    - [Integrated]: the DAG is serialized into a meta fbuf drawn from a
      per-connection cached allocator and only the root address crosses;
      the kernel walks the DAG to find the fbufs to transfer.

    Deallocation notices: when the callee frees buffers owned by the
    caller, the free is recorded and piggybacked on the next message
    between the pair ({!free_deferred}); only when too many accumulate is
    an explicit notification message charged. *)

type mode = Rebuild | Integrated

type facility = Mach | Urpc
(** The control-transfer mechanism: Mach-style kernel RPC, or a user-level
    RPC facility (URPC) with shared-memory queues. Because fbuf transfers
    need no kernel work in the common case, fbufs compose with either; the
    facility changes only latency and TLB pollution. *)

type conn

val connect :
  Fbufs.Region.t ->
  src:Fbufs_vm.Pd.t ->
  dst:Fbufs_vm.Pd.t ->
  ?mode:mode ->
  ?facility:facility ->
  ?auto_free_dst:bool ->
  unit ->
  conn
(** A connection (port pair) from [src] to [dst]. Default mode [Rebuild].
    In [Integrated] mode a cached meta-buffer allocator is created for the
    path src -> dst.

    With [auto_free_dst] (default false), the destination's references on
    the delivered message are released once the handler returns — the
    hand-off discipline protocol proxies use; a handler that must retain
    the data past the call takes its own references. Without it, the
    destination keeps its references until it frees them explicitly
    ({!free_deferred}). *)

val facility : conn -> facility

val meta_allocator : conn -> Fbufs.Allocator.t option
(** The per-connection meta-buffer allocator ([Integrated] mode only), so
    invariant audits can include its buffers in their sweeps. *)

val src : conn -> Fbufs_vm.Pd.t
val dst : conn -> Fbufs_vm.Pd.t
val mode : conn -> mode

val call : conn -> Fbufs_msg.Msg.t -> handler:(Fbufs_msg.Msg.t -> unit) -> unit
(** Synchronous invocation: transfers the message's fbufs to [dst], runs
    [handler] on the receiver-side view of the message, processes deferred
    deallocations, and returns. The callee's references persist until it
    frees them ({!free_deferred} or {!Fbufs_msg.Msg.free_all}). *)

val free_deferred : conn -> Fbufs_msg.Msg.t -> unit
(** Called by the receiver when done with a message whose buffers belong to
    the sender: queues deallocation notices to piggyback on the next
    {!call} (or an explicit message once {!val-threshold} are pending). *)

val threshold : int
(** Pending-notice count that forces an explicit deallocation message. *)

val pending_deallocs : conn -> int

val flush_deallocs : conn -> unit
(** Process pending deallocation notices immediately, paying an explicit
    message if there are any (used on teardown). *)
