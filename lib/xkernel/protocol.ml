open Fbufs_sim
open Fbufs_vm

type t = {
  name : string;
  dom : Pd.t;
  mutable push : Fbufs_msg.Msg.t -> unit;
  mutable pop : Fbufs_msg.Msg.t -> unit;
}

let not_wired name dir _ =
  failwith (Printf.sprintf "protocol %s: %s not wired" name dir)

let create ~name ~dom ?push ?pop () =
  {
    name;
    dom;
    push = (match push with Some f -> f | None -> not_wired name "push");
    pop = (match pop with Some f -> f | None -> not_wired name "pop");
  }

let machine t = t.dom.Pd.m

let charge_op t =
  let m = machine t in
  Machine.charge ~comp:Fbufs_metrics.Component.Proto m
    m.Machine.cost.Cost_model.proto_op;
  Stats.incr m.Machine.stats ("proto." ^ t.name)
