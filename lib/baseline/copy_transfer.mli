(** Software-copy cross-domain transfer (the UNIX read/write discipline):
    data moves from the sender's private buffer into a kernel buffer
    (copyin) and from there into the receiver's private buffer (copyout).
    Two full traversals of the data per transfer — the cost the paper's
    whole design exists to avoid. *)

type t

val create :
  src:Fbufs_vm.Pd.t ->
  dst:Fbufs_vm.Pd.t ->
  kernel:Fbufs_vm.Pd.t ->
  max_bytes:int ->
  t
(** Establish the three persistent buffers (steady state: no allocation on
    the transfer path, like a long-lived UNIX socket). *)

val transfer : t -> bytes:int -> unit
(** One transfer: the sender dirties one word per page of its buffer, the
    data is copied in and out, and the receiver reads one word per page.
    Raises [Invalid_argument] if [bytes] exceeds the buffers sized at
    {!create}. *)

val verify_roundtrip : t -> string -> string
(** Write a string into the source buffer, transfer, and read it back from
    the destination buffer (integrity check for tests). *)
