(** The aggregate object: an immutable buffer-aggregate DAG in the style of
    x-kernel messages (and BSD mbuf chains).

    A message is a tree whose leaves are (fbuf, offset, length) windows; all
    editing — joining PDUs into an ADU, fragmenting an ADU into PDUs,
    prepending headers, clipping headers off — is performed by building new
    nodes that share the underlying fbufs, never by touching buffer bytes.
    This is what makes copy semantics free for immutable buffers.

    Data access goes through {!Fbufs_vm.Access} in a caller-supplied domain,
    so a domain reading a message it was never sent faults exactly as the
    paper requires. *)

type t

type leaf = private { fbuf : Fbufs.Fbuf.t; off : int; len : int }

val empty : t

val of_fbuf : Fbufs.Fbuf.t -> off:int -> len:int -> t
(** A single-leaf message windowing [len] bytes of the fbuf at [off].
    Raises [Invalid_argument] if the window exceeds the buffer. *)

val length : t -> int

val is_empty : t -> bool

val join : t -> t -> t
(** Logical concatenation: [join hd tl] is hd's bytes followed by tl's. *)

val split : t -> int -> t * t
(** [split m k] is [(first k bytes, rest)]. Splitting inside a leaf shares
    the fbuf with adjusted windows. Raises [Invalid_argument] when [k] is
    outside [0, length m]. *)

val clip : t -> int -> t
(** Drop the first [k] bytes (header strip): [snd (split m k)]. *)

val truncate : t -> int -> t
(** Keep only the first [k] bytes: [fst (split m k)]. *)

val leaves : t -> leaf list
(** Left-to-right leaf windows (empty leaves omitted). *)

val fbufs : t -> Fbufs.Fbuf.t list
(** Distinct underlying fbufs in first-appearance order. *)

val depth : t -> int

(* -- data plane ------------------------------------------------------ *)

val to_bytes : t -> as_:Fbufs_vm.Pd.t -> bytes
(** Gather the message contents (charged reads in [as_]). *)

val to_string : t -> as_:Fbufs_vm.Pd.t -> string

val sub_bytes : t -> as_:Fbufs_vm.Pd.t -> off:int -> len:int -> bytes

val checksum : t -> as_:Fbufs_vm.Pd.t -> int
(** Ones'-complement checksum over the whole message, fragment-aware (odd
    leaf boundaries handled as a contiguous byte stream). *)

val iter_units :
  t -> as_:Fbufs_vm.Pd.t -> unit_size:int -> (bytes -> unit) -> unit
(** The paper's generator-like interface: deliver the message as
    consecutive application data units of [unit_size] bytes (last may be
    short). A unit contained in one leaf is read in place; only units that
    cross a fragment boundary pay an extra gather copy, which is recorded
    in the machine's stats under "msg.unit_gather". Raises
    [Invalid_argument] when [unit_size] is not positive. *)

val touch_read : t -> as_:Fbufs_vm.Pd.t -> unit
(** Read one word per page spanned by each leaf — the paper's dummy
    receiver workload, at message granularity. *)

val free_all : t -> dom:Fbufs_vm.Pd.t -> unit
(** Release [dom]'s reference on each distinct underlying fbuf. Raises
    [Invalid_argument] if a reference is missing. *)

val free_held : t -> dom:Fbufs_vm.Pd.t -> unit
(** Like {!free_all} but skips buffers [dom] holds no reference to (a layer
    releasing only what it owns in a message assembled by several). *)

val pp : Format.formatter -> t -> unit
