(** Integrated buffer management: the aggregate object stored in fbufs.

    The message DAG itself is serialized into an fbuf (the "meta" buffer),
    so a cross-domain transfer passes a single root address: because the
    fbuf region is mapped at the same virtual address everywhere, no
    pointer translation is needed and steps (2a)/(3c) of the base mechanism
    disappear.

    The receiving side must defend against a malicious or faulty originator
    mutating the DAG under it (volatile fbufs). Deserialization therefore
    (1) range-checks every node and data pointer against the fbuf region,
    (2) bounds traversal with a visited set (cycles) and a node budget, and
    (3) reads of unmapped region pages resolve to the dead page, whose zero
    tag decodes as "absence of data" — exactly the paper's behaviour. Bad
    structure never raises; it yields an empty message and a stat. *)

val node_size : int
(** Bytes per serialized DAG node (16). *)

val node_count : Msg.t -> int
(** Number of nodes the serialized form of [m] needs. *)

val serialize :
  Msg.t -> meta:Fbufs.Fbuf.t -> as_:Fbufs_vm.Pd.t -> int
(** Write the DAG into [meta] (which must be writable by [as_] and large
    enough: [node_count m * node_size] bytes); returns the root node's
    virtual address. Raises [Invalid_argument] if [meta] is too small. *)

val deserialize :
  Fbufs.Region.t -> as_:Fbufs_vm.Pd.t -> root_vaddr:int -> Msg.t
(** Rebuild a message by traversing the DAG with the receiving domain's own
    access rights. Invalid references appear as absent data, {e never} as
    an escaping exception: node references outside the region — including
    records whose 16 bytes merely straddle the region's end — and data
    references to pages holding no fbuf yield an empty message with an
    anomaly stat bump ("integrated.bad_node" / "integrated.bad_data_ref" /
    "integrated.cycle" / "integrated.budget_exhausted"), while references
    to unmapped in-region pages read the zeroed dead page, whose tag 0
    decodes as absence of data. *)

val reachable_fbufs :
  Fbufs.Region.t -> as_:Fbufs_vm.Pd.t -> root_vaddr:int -> Fbufs.Fbuf.t list
(** The distinct fbufs a transfer of this DAG must move: every fbuf holding
    a reachable node plus every fbuf holding referenced data. Walked with
    [as_]'s rights (the kernel, in the transfer path). *)
