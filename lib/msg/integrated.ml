open Fbufs_sim
open Fbufs_vm
open Fbufs

let node_size = 16

let tag_leaf = 1
let tag_cat = 2

(* Msg.t is abstract here; count/serialize work through the public API:
   leaves and splits would lose sharing, so we measure structure via
   [Msg.leaves] and rebuild a right-leaning spine. A spine is semantically
   identical (same byte stream) and keeps the serialized form linear in the
   number of leaves, which also bounds the meta buffer size predictably. *)

let node_count m =
  match List.length (Msg.leaves m) with
  | 0 -> 1 (* a single empty leaf node *)
  | n -> n + max 0 (n - 1)

let serialize m ~meta ~as_ =
  let needed = node_count m * node_size in
  if needed > Fbuf.size meta then
    invalid_arg
      (Printf.sprintf "Integrated.serialize: need %d bytes, meta has %d"
         needed (Fbuf.size meta));
  let base = Fbuf.vaddr meta in
  (* Assemble the node records locally, then store them with one bulk
     write: the serializer runs at bcopy speed, not one store per field. *)
  let buf = Bytes.create needed in
  let next = ref 0 in
  (* Layout: u32 tag, u32 w1, u32 w2, u32 pad — little-endian machine
     words, the same encoding Access.read_word decodes. *)
  let write_node tag w1 w2 =
    let off = !next in
    next := off + node_size;
    Bytes.set_int32_le buf off (Int32.of_int tag);
    Bytes.set_int32_le buf (off + 4) (Int32.of_int w1);
    Bytes.set_int32_le buf (off + 8) (Int32.of_int w2);
    Bytes.set_int32_le buf (off + 12) 0l;
    base + off
  in
  let write_leaf (l : Msg.leaf) =
    write_node tag_leaf (Fbuf.vaddr l.Msg.fbuf + l.Msg.off) l.Msg.len
  in
  let root =
    match Msg.leaves m with
    | [] -> write_node tag_leaf 0 0
    | [ l ] -> write_leaf l
    | l :: rest ->
        (* Right-leaning spine, built back to front. *)
        let rec spine = function
          | [] -> assert false
          | [ x ] -> write_leaf x
          | x :: more ->
              let right = spine more in
              let left = write_leaf x in
              write_node tag_cat left right
        in
        let right = spine rest in
        let left = write_leaf l in
        write_node tag_cat left right
  in
  Access.write_bytes as_ ~vaddr:base (Bytes.sub buf 0 !next);
  root

let max_nodes = 4096

let in_region_vaddr region ~vaddr ~m =
  let ps = (Region.machine region).Machine.cost.Cost_model.page_size in
  ignore m;
  Region.in_region region ~vpn:(vaddr / ps)

(* A node record is [node_size] bytes, so both its first and last byte must
   fall inside the region: a record starting within the last 15 bytes of
   the region passes the single-page check yet its bulk read would cross
   into non-region pages, where the dead-page defence does not apply. Such
   a reference is malformed structure and must count as an anomaly, never
   escape as a fault. *)
let node_in_region region ~vaddr ~m =
  in_region_vaddr region ~vaddr ~m
  && in_region_vaddr region ~vaddr:(vaddr + node_size - 1) ~m

let deserialize region ~as_ ~root_vaddr =
  let machine = Region.machine region in
  let ps = machine.Machine.cost.Cost_model.page_size in
  let stats = machine.Machine.stats in
  let visited = Hashtbl.create 64 in
  let budget = ref max_nodes in
  let bad reason =
    Stats.incr stats ("integrated." ^ reason);
    Msg.empty
  in
  let rec node vaddr =
    if !budget <= 0 then bad "budget_exhausted"
    else if not (node_in_region region ~vaddr ~m:machine) then bad "bad_node"
    else if Hashtbl.mem visited vaddr then bad "cycle"
    else begin
      decr budget;
      Hashtbl.add visited vaddr ();
      (* Reading an unmapped page yields the dead page: tag 0. One bulk
         read per node keeps traversal at bcopy speed. *)
      let b = Access.read_bytes as_ ~vaddr ~len:node_size in
      let field i = Int32.to_int (Bytes.get_int32_le b i) land 0xFFFFFFFF in
      let tag = field 0 in
      let w1 = field 4 in
      let w2 = field 8 in
      let result =
        if tag = tag_leaf then begin
          if w2 = 0 then Msg.empty
          else if not (in_region_vaddr region ~vaddr:w1 ~m:machine) then
            bad "bad_data_ref"
          else
            match Region.fbuf_at region ~vpn:(w1 / ps) with
            | None -> bad "bad_data_ref"
            | Some fb ->
                let off = w1 - Fbuf.vaddr fb in
                if off < 0 || w2 < 0 || off + w2 > Fbuf.size fb then
                  bad "bad_data_ref"
                else Msg.of_fbuf fb ~off ~len:w2
        end
        else if tag = tag_cat then Msg.join (node w1) (node w2)
        else bad "bad_node"
      in
      (* A DAG may legitimately share subtrees; only in-progress nodes are
         cycles. Allow re-visits of completed nodes. *)
      Hashtbl.remove visited vaddr;
      result
    end
  in
  node root_vaddr

let reachable_fbufs region ~as_ ~root_vaddr =
  let machine = Region.machine region in
  let ps = machine.Machine.cost.Cost_model.page_size in
  let seen_fb = Hashtbl.create 8 in
  let order = ref [] in
  let note vaddr =
    match Region.fbuf_at region ~vpn:(vaddr / ps) with
    | Some fb when not (Hashtbl.mem seen_fb fb.Fbuf.id) ->
        Hashtbl.add seen_fb fb.Fbuf.id ();
        order := fb :: !order
    | Some _ | None -> ()
  in
  let visited = Hashtbl.create 64 in
  let budget = ref max_nodes in
  let rec walk vaddr =
    if
      !budget > 0
      && node_in_region region ~vaddr ~m:machine
      && not (Hashtbl.mem visited vaddr)
    then begin
      decr budget;
      Hashtbl.add visited vaddr ();
      note vaddr;
      let b = Access.read_bytes as_ ~vaddr ~len:node_size in
      let field i = Int32.to_int (Bytes.get_int32_le b i) land 0xFFFFFFFF in
      let tag = field 0 in
      let w1 = field 4 in
      let w2 = field 8 in
      if tag = tag_leaf then begin
        if w2 > 0 && in_region_vaddr region ~vaddr:w1 ~m:machine then
          note w1
      end
      else if tag = tag_cat then begin
        walk w1;
        walk w2
      end
    end
  in
  walk root_vaddr;
  List.rev !order
