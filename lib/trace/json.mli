(** Minimal JSON tree, printer and parser.

    The tracing exporters must produce Chrome [trace_event] files without
    pulling a JSON dependency into the build, and the test suite must be
    able to parse what they wrote back into a tree to validate it. Both
    sides live here so the round trip is exercised against one grammar. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact serialization. Non-finite floats are emitted as [null] (JSON
    has no representation for them). *)

val to_string : t -> string

exception Parse_error of string

val parse : string -> t
(** Parse a complete JSON document; trailing garbage is an error. Raises
    {!Parse_error}. Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)
