(** Exporters: Chrome [trace_event] JSON and line-oriented JSONL.

    The Chrome format loads directly in [chrome://tracing] and Perfetto.
    Simulated microseconds map one-to-one onto the format's native [ts]
    unit, so the timeline reads in real simulated time. Each simulated
    machine becomes a process (pid), each protection domain a thread (tid)
    within it; machine-level events (cost charges, interrupts) land on a
    dedicated tid 1 lane per machine. *)

val to_json : Trace.t -> Json.t
(** The whole trace as [{"traceEvents": [...], ...}], including
    [process_name]/[thread_name] metadata events. *)

val to_string : Trace.t -> string

val write_file : Trace.t -> string -> unit

val write_jsonl : Trace.t -> string -> unit
(** One raw event per line:
    [{"ts":..,"machine":..,"domain":..,"path":..,"kind":..,"ph":..,...}].
    Suited to grep/jq-style processing rather than timeline viewers. *)

val jsonl_event : Trace.event -> Json.t
(** The per-line JSON object used by {!write_jsonl}, for callers that
    dump event subsets of their own (e.g. the flight recorder's sampled
    reservoir) in the same format. *)
