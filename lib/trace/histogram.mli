(** Log-bucketed latency histogram.

    Values (simulated microseconds) are binned into geometric buckets —
    successive bucket boundaries grow by a factor of [2^(1/8)] (~9%), so
    any reported quantile is within one bucket width (< 9% relative error)
    of the true order statistic while the whole structure stays a handful
    of integer counters regardless of sample count. [min]/[max]/[sum] are
    tracked exactly. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. Negative samples are clamped to zero; zero lands in
    the dedicated underflow bucket. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile h p] for [p] in [0, 100]: an upper bound for the value at
    rank [ceil(p/100 * count)], clamped to the exact observed [min]/[max];
    the first and last ranks return [min] and [max] exactly. 0 when empty.
    Deterministic for a given sample multiset. *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(low, high, count)], ascending. *)

val merge : t -> t -> t
(** Pointwise sum of two histograms (does not mutate its arguments). *)
