(** Structured event tracing for the simulated data path.

    A [Trace.t] is a sink that subsystems stamp typed events into as the
    simulation runs: instants (a pmap update, an fbuf cache hit), complete
    slices (a cost charge with a known duration), nested spans (an IPC
    call from entry to reply) and async spans (the life of one fbuf from
    allocation to last free, or one PDU from DMA-gather to delivery,
    causally linking events that belong to the same logical transfer).

    Timestamps are simulated microseconds supplied by the caller (the
    machine's clock); the sink itself never reads wall-clock time and
    never charges simulated time, so enabling tracing cannot perturb any
    measurement.

    Latency histograms keyed by [(kind, path_id)] are maintained online as
    spans close, so percentile summaries survive even when a bounded
    buffer drops raw events. *)

type arg = Str of string | Int of int | Float of float

type phase =
  | Instant
  | Complete of float  (** duration in simulated us *)
  | Span_begin
  | Span_end
  | Async_begin
  | Async_end

type event = {
  ts_us : float;
  machine : string;
  domain : string;  (** "" when the event is machine-level *)
  path_id : int;  (** -1 when the event is not bound to an I/O path *)
  kind : string;
  phase : phase;
  span : int;  (** span/async correlation id; 0 = none *)
  args : (string * arg) list;
}

type t

val create : ?ring:bool -> ?latency:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds the number of buffered events. By default, once
    full, further events are counted in {!dropped} but not stored
    (histograms still update). With [~ring:true] the sink becomes a
    flight-recorder ring instead: when full, each new event overwrites
    the {e oldest} retained one (the overwritten event counts in
    {!dropped}), so the buffer always holds the most recent [capacity]
    events. [~latency:false] skips the per-[(kind, path)] latency
    histograms entirely — the log-bucketing is the most expensive part
    of accepting an event, and an always-armed recorder ring has no
    use for it ({!latency_table} renders empty). Unbounded by default.
    Raises [Invalid_argument] when [capacity] is not positive, or when
    [ring] is set without a [capacity]. *)

val set_tap : t -> (event -> unit) option -> unit
(** Install (or clear) a callback observing every event as it is pushed,
    before any capacity/ring bookkeeping — the tap sees events the buffer
    subsequently drops or overwrites. [None] by default, costing one
    pointer compare per push. A generic tap forces the hot charge path
    ({!complete_comp}) to materialize full event records; the flight
    recorder uses the cheaper {!set_sampler} hook instead. *)

type sampler = {
  skip : float array;
      (** Length-1 cell holding the weight budget until the next
          acceptance. The trace decrements it by each event's sampling
          weight (the duration for completes, 1.0 otherwise) inline —
          an unboxed float-array store, no call, no allocation. *)
  accept : event -> float -> float;
      (** Called with the event and its weight when the budget reaches
          zero; returns the next budget. Only now is the event record
          materialized from the ring columns, so a sampler whose
          steady-state accept rate is low (a full weighted reservoir
          skipping in weight units) costs a float subtract and compare
          per event. *)
}

val set_sampler : t -> sampler option -> unit

val complete_comp :
  t ->
  ts_us:float ->
  dur_us:float ->
  machine:string ->
  comp:string ->
  string ->
  unit
(** [complete] specialized to the per-charge slice: at most one
    [("comp", Str comp)] argument ([comp = ""] for none), no domain, no
    path. In ring mode with no generic tap this writes the ring columns
    directly without allocating an event record; otherwise it behaves
    exactly like [complete], and the stored events are identical. *)

val last_ts : t -> float
(** Largest timestamp pushed so far (0.0 when none — reset by
    {!clear}). *)

val clear : t -> unit
val event_count : t -> int
val dropped : t -> int

val events : t -> event list
(** Buffered events in emission order (oldest retained first, including
    across ring wraparound). *)

val instant :
  t ->
  ts_us:float ->
  machine:string ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * arg) list ->
  string ->
  unit

val complete :
  t ->
  ts_us:float ->
  dur_us:float ->
  machine:string ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * arg) list ->
  string ->
  unit
(** A slice of known duration starting at [ts_us]; feeds the histogram for
    its [(kind, path_id)]. *)

val begin_span :
  t ->
  ts_us:float ->
  machine:string ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * arg) list ->
  string ->
  int
(** Open a synchronous (strictly nested) span; returns its correlation id
    (always > 0). *)

val end_span : t -> ts_us:float -> ?args:(string * arg) list -> int -> unit
(** Close a span by id, feeding its duration to the histogram. Unknown
    ids (including 0, the "tracing disabled" id) are ignored. *)

val async_begin :
  t ->
  ts_us:float ->
  machine:string ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * arg) list ->
  id:int ->
  string ->
  unit
(** Open an async span: correlation by [(kind, id)] rather than nesting,
    so it may cross domains and machines (fbuf lifetime, PDU flight). *)

val async_end :
  t ->
  ts_us:float ->
  machine:string ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * arg) list ->
  id:int ->
  string ->
  unit
(** Close an async span. If no matching [async_begin] was seen the event
    is still recorded but no latency sample is taken. The histogram key
    uses the [path_id] of the [async_begin] side. *)

val open_spans : t -> int
(** Currently open synchronous spans (for leak checks in tests). *)

val summary : t -> ((string * int) * Histogram.t) list
(** Latency histograms keyed by [(kind, path_id)], sorted by kind then
    path id. Populated by [complete], [end_span] and [async_end]. *)

val kind_summary : t -> (string * Histogram.t) list
(** {!summary} merged across paths: one histogram per kind. *)
