(* pid/tid assignment: machines get pids 1.. in order of first appearance;
   (machine, domain) pairs get tids within their machine, with tid 1
   reserved for the machine-level lane (domain = ""). *)

type ids = {
  pids : (string, int) Hashtbl.t;
  tids : (string * string, int) Hashtbl.t;
  next_tid : (string, int) Hashtbl.t;
}

let assign ids (ev : Trace.event) =
  let pid =
    match Hashtbl.find_opt ids.pids ev.Trace.machine with
    | Some p -> p
    | None ->
        let p = 1 + Hashtbl.length ids.pids in
        Hashtbl.add ids.pids ev.Trace.machine p;
        Hashtbl.add ids.next_tid ev.Trace.machine 2;
        p
  in
  let tid =
    if ev.Trace.domain = "" then 1
    else
      let key = (ev.Trace.machine, ev.Trace.domain) in
      match Hashtbl.find_opt ids.tids key with
      | Some t -> t
      | None ->
          let t = Hashtbl.find ids.next_tid ev.Trace.machine in
          Hashtbl.replace ids.next_tid ev.Trace.machine (t + 1);
          Hashtbl.add ids.tids key t;
          t
  in
  (pid, tid)

let arg_json = function
  | Trace.Str s -> Json.String s
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f

let args_json (ev : Trace.event) =
  let base = List.map (fun (k, v) -> (k, arg_json v)) ev.Trace.args in
  if ev.Trace.path_id >= 0 then ("path", Json.Int ev.Trace.path_id) :: base
  else base

let event_json ids (ev : Trace.event) =
  let pid, tid = assign ids ev in
  let common =
    [
      ("name", Json.String ev.Trace.kind);
      ("ph", Json.String "");
      ("ts", Json.Float ev.Trace.ts_us);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
    ]
  in
  let set_ph p fields =
    List.map
      (function "ph", _ -> ("ph", Json.String p) | f -> f)
      fields
  in
  let with_args fields =
    match args_json ev with [] -> fields | a -> fields @ [ ("args", Json.Obj a) ]
  in
  let fields =
    match ev.Trace.phase with
    | Trace.Instant -> set_ph "i" common @ [ ("s", Json.String "t") ]
    | Trace.Complete dur -> set_ph "X" common @ [ ("dur", Json.Float dur) ]
    | Trace.Span_begin -> set_ph "B" common
    | Trace.Span_end -> set_ph "E" common
    | Trace.Async_begin ->
        set_ph "b" common
        @ [
            ("cat", Json.String ev.Trace.kind);
            ("id", Json.Int ev.Trace.span);
          ]
    | Trace.Async_end ->
        set_ph "e" common
        @ [
            ("cat", Json.String ev.Trace.kind);
            ("id", Json.Int ev.Trace.span);
          ]
  in
  Json.Obj (with_args fields)

let metadata_events ids =
  let procs =
    Hashtbl.fold
      (fun name pid acc ->
        Json.Obj
          [
            ("name", Json.String "process_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("args", Json.Obj [ ("name", Json.String name) ]);
          ]
        :: acc)
      ids.pids []
  in
  let threads =
    Hashtbl.fold
      (fun (machine, domain) tid acc ->
        match Hashtbl.find_opt ids.pids machine with
        | None -> acc
        | Some pid ->
            Json.Obj
              [
                ("name", Json.String "thread_name");
                ("ph", Json.String "M");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("args", Json.Obj [ ("name", Json.String domain) ]);
              ]
            :: acc)
      ids.tids []
  in
  let machine_lanes =
    Hashtbl.fold
      (fun _ pid acc ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int 1);
            ("args", Json.Obj [ ("name", Json.String "machine") ]);
          ]
        :: acc)
      ids.pids []
  in
  procs @ machine_lanes @ threads

let to_json t =
  let ids =
    {
      pids = Hashtbl.create 4;
      tids = Hashtbl.create 16;
      next_tid = Hashtbl.create 4;
    }
  in
  let evs = List.map (event_json ids) (Trace.events t) in
  Json.Obj
    [
      ("traceEvents", Json.List (evs @ metadata_events ids));
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("dropped", Json.Int (Trace.dropped t)) ]);
    ]

let to_string t = Json.to_string (to_json t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let phase_name = function
  | Trace.Instant -> "i"
  | Trace.Complete _ -> "X"
  | Trace.Span_begin -> "B"
  | Trace.Span_end -> "E"
  | Trace.Async_begin -> "b"
  | Trace.Async_end -> "e"

let jsonl_event (ev : Trace.event) =
  let fields =
    [
      ("ts", Json.Float ev.Trace.ts_us);
      ("machine", Json.String ev.Trace.machine);
      ("domain", Json.String ev.Trace.domain);
      ("path", Json.Int ev.Trace.path_id);
      ("kind", Json.String ev.Trace.kind);
      ("ph", Json.String (phase_name ev.Trace.phase));
    ]
  in
  let fields =
    match ev.Trace.phase with
    | Trace.Complete dur -> fields @ [ ("dur", Json.Float dur) ]
    | _ -> fields
  in
  let fields =
    if ev.Trace.span <> 0 then fields @ [ ("span", Json.Int ev.Trace.span) ]
    else fields
  in
  let fields =
    match ev.Trace.args with
    | [] -> fields
    | args ->
        fields
        @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Json.Obj fields

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun ev ->
          output_string oc (Json.to_string (jsonl_event ev));
          output_char oc '\n')
        (Trace.events t))
