type arg = Str of string | Int of int | Float of float

type phase =
  | Instant
  | Complete of float
  | Span_begin
  | Span_end
  | Async_begin
  | Async_end

type event = {
  ts_us : float;
  machine : string;
  domain : string;
  path_id : int;
  kind : string;
  phase : phase;
  span : int;
  args : (string * arg) list;
}

type open_span = {
  o_ts : float;
  o_machine : string;
  o_domain : string;
  o_path : int;
  o_kind : string;
}

(* Ring-mode storage is struct-of-arrays rather than an array of event
   records: an always-armed flight recorder keeps its window live across
   every minor GC, and a window of boxed records turns each collection
   into a promotion of the whole window. Columns of unboxed floats and
   ints hold no minor-heap pointers at all, and the string columns almost
   always point at shared literals (kinds) or interned machine names, so
   the retained window costs the GC nothing. The common single
   [("comp", Str _)] argument is split into its own string column; only
   the rare richer argument lists are retained boxed. *)
type cols = {
  c_ts : float array;
  c_dur : float array; (* Complete duration; 0.0 for other phases *)
  c_machine : string array;
  c_domain : string array;
  c_kind : string array;
  c_path : int array;
  c_phase : int array;
  c_span : int array;
  c_comp : string array; (* "" = no comp arg *)
  c_extra : (string * arg) list array; (* args other than a lone comp *)
}

type sampler = {
  skip : float array;
      (* weight budget until the next acceptance; decremented inline
         per event (unboxed float-array cell, so the common case is a
         subtract and a compare with no call and no allocation) *)
  accept : event -> float -> float; (* event -> weight -> next budget *)
}

type t = {
  mutable buf : event array; (* non-ring storage; [||] in ring mode *)
  cols : cols option; (* ring storage; None otherwise *)
  mutable len : int;
  capacity : int option;
  ring : bool;
  latency : bool; (* maintain per-(kind, path) histograms *)
  mutable start : int; (* index of the oldest retained event (ring mode) *)
  mutable dropped : int;
  mutable next_span : int;
  mutable tap : (event -> unit) option;
  mutable sampler : sampler option;
  last : float array; (* newest timestamp seen; float array so the
                         per-event update is an unboxed store *)
  spans : (int, open_span) Hashtbl.t;
  asyncs : (string * int, float * int) Hashtbl.t; (* start ts, path_id *)
  hist : (string * int, Histogram.t) Hashtbl.t;
}

let phase_code = function
  | Instant -> 0
  | Complete _ -> 1
  | Span_begin -> 2
  | Span_end -> 3
  | Async_begin -> 4
  | Async_end -> 5

let make_cols c =
  {
    c_ts = Array.make c 0.0;
    c_dur = Array.make c 0.0;
    c_machine = Array.make c "";
    c_domain = Array.make c "";
    c_kind = Array.make c "";
    c_path = Array.make c 0;
    c_phase = Array.make c 0;
    c_span = Array.make c 0;
    c_comp = Array.make c "";
    c_extra = Array.make c [];
  }

let set_cols c i ev =
  c.c_ts.(i) <- ev.ts_us;
  c.c_dur.(i) <- (match ev.phase with Complete d -> d | _ -> 0.0);
  c.c_machine.(i) <- ev.machine;
  c.c_domain.(i) <- ev.domain;
  c.c_kind.(i) <- ev.kind;
  c.c_path.(i) <- ev.path_id;
  c.c_phase.(i) <- phase_code ev.phase;
  c.c_span.(i) <- ev.span;
  match ev.args with
  | [] ->
      c.c_comp.(i) <- "";
      if c.c_extra.(i) != [] then c.c_extra.(i) <- []
  | [ (k, Str comp) ] when String.equal k "comp" ->
      c.c_comp.(i) <- comp;
      if c.c_extra.(i) != [] then c.c_extra.(i) <- []
  | args ->
      c.c_comp.(i) <- "";
      c.c_extra.(i) <- args

let event_of_cols c i =
  let phase =
    match c.c_phase.(i) with
    | 0 -> Instant
    | 1 -> Complete c.c_dur.(i)
    | 2 -> Span_begin
    | 3 -> Span_end
    | 4 -> Async_begin
    | _ -> Async_end
  in
  let args =
    match c.c_extra.(i) with
    | [] -> if c.c_comp.(i) = "" then [] else [ ("comp", Str c.c_comp.(i)) ]
    | l -> l
  in
  {
    ts_us = c.c_ts.(i);
    machine = c.c_machine.(i);
    domain = c.c_domain.(i);
    path_id = c.c_path.(i);
    kind = c.c_kind.(i);
    phase;
    span = c.c_span.(i);
    args;
  }

let dummy_event =
  {
    ts_us = 0.0;
    machine = "";
    domain = "";
    path_id = -1;
    kind = "";
    phase = Instant;
    span = 0;
    args = [];
  }

let create ?(ring = false) ?(latency = true) ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | None when ring -> invalid_arg "Trace.create: ring requires a capacity"
  | _ -> ());
  {
    buf = (if ring then [||] else Array.make 1024 dummy_event);
    cols = (match capacity with Some c when ring -> Some (make_cols c) | _ -> None);
    len = 0;
    capacity;
    ring;
    latency;
    start = 0;
    dropped = 0;
    next_span = 1;
    tap = None;
    sampler = None;
    last = [| 0.0 |];
    spans = Hashtbl.create 16;
    asyncs = Hashtbl.create 64;
    hist = Hashtbl.create 64;
  }

let set_tap t f = t.tap <- f
let set_sampler t s = t.sampler <- s
let last_ts t = t.last.(0)

let clear t =
  (match t.cols with
  | Some c ->
      (* Drop retained references so cleared rings hold no old strings. *)
      Array.fill c.c_machine 0 (Array.length c.c_machine) "";
      Array.fill c.c_domain 0 (Array.length c.c_domain) "";
      Array.fill c.c_kind 0 (Array.length c.c_kind) "";
      Array.fill c.c_comp 0 (Array.length c.c_comp) "";
      Array.fill c.c_extra 0 (Array.length c.c_extra) []
  | None -> ());
  t.last.(0) <- 0.0;
  t.len <- 0;
  t.start <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.asyncs;
  Hashtbl.reset t.hist

let event_count t = t.len
let dropped t = t.dropped
let open_spans t = Hashtbl.length t.spans

let events t =
  match t.cols with
  | None -> Array.to_list (Array.sub t.buf 0 t.len)
  | Some c ->
      let cap = Array.length c.c_ts in
      List.init t.len (fun i -> event_of_cols c ((t.start + i) mod cap))

(* Claim the slot the next ring event lands in, advancing the window.
   [start < cap] and [len <= cap], so a compare-and-subtract replaces
   the integer division a [mod] would cost on every event. *)
let ring_slot t cap =
  if t.len < cap then begin
    let i = t.start + t.len in
    let i = if i >= cap then i - cap else i in
    t.len <- t.len + 1;
    i
  end
  else begin
    (* full: overwrite the oldest event, counting it as dropped *)
    let i = t.start in
    let s = i + 1 in
    t.start <- (if s >= cap then 0 else s);
    t.dropped <- t.dropped + 1;
    i
  end

let push t ev =
  (match t.tap with Some f -> f ev | None -> ());
  (match t.sampler with
  | Some s ->
      let w = match ev.phase with Complete d -> Float.max d 1e-9 | _ -> 1.0 in
      let sk = s.skip.(0) -. w in
      if sk <= 0.0 then s.skip.(0) <- s.accept ev w else s.skip.(0) <- sk
  | None -> ());
  if ev.ts_us > t.last.(0) then t.last.(0) <- ev.ts_us;
  match t.cols with
  | Some c ->
      let i = ring_slot t (Array.length c.c_ts) in
      set_cols c i ev
  | None -> (
      match t.capacity with
      | Some c when t.len >= c -> t.dropped <- t.dropped + 1
      | _ ->
          if t.len = Array.length t.buf then begin
            let bigger = Array.make (2 * t.len) dummy_event in
            Array.blit t.buf 0 bigger 0 t.len;
            t.buf <- bigger
          end;
          t.buf.(t.len) <- ev;
          t.len <- t.len + 1)

let record_latency_on t ~kind ~path_id dur =
  let key = (kind, path_id) in
  let h =
    match Hashtbl.find_opt t.hist key with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.add t.hist key h;
        h
  in
  Histogram.add h dur

let record_latency t ~kind ~path_id dur =
  if t.latency then record_latency_on t ~kind ~path_id dur

let instant t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = []) kind
    =
  push t
    { ts_us; machine; domain; path_id; kind; phase = Instant; span = 0; args }

let complete t ~ts_us ~dur_us ~machine ?(domain = "") ?(path_id = -1)
    ?(args = []) kind =
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Complete dur_us;
      span = 0;
      args;
    };
  record_latency t ~kind ~path_id dur_us

(* The per-charge slice is by far the hottest emission site (tens of
   thousands per run), so it gets a record-free entry point: in ring
   mode with no generic tap installed, the fields go straight into the
   columns and an event record is only materialized when the sampler
   accepts one. With a tap (or without a ring) this degrades to the
   ordinary [complete] with an identical args list, so dumps are
   byte-identical either way. [comp = ""] means no component tag. *)
let complete_comp t ~ts_us ~dur_us ~machine ~comp kind =
  match (t.cols, t.tap) with
  | Some c, None ->
      if ts_us > t.last.(0) then t.last.(0) <- ts_us;
      let i = ring_slot t (Array.length c.c_ts) in
      c.c_ts.(i) <- ts_us;
      c.c_dur.(i) <- dur_us;
      if c.c_machine.(i) != machine then c.c_machine.(i) <- machine;
      if String.length c.c_domain.(i) <> 0 then c.c_domain.(i) <- "";
      if c.c_kind.(i) != kind then c.c_kind.(i) <- kind;
      c.c_path.(i) <- -1;
      c.c_phase.(i) <- 1 (* Complete *);
      c.c_span.(i) <- 0;
      if c.c_comp.(i) != comp then c.c_comp.(i) <- comp;
      if c.c_extra.(i) != [] then c.c_extra.(i) <- [];
      (match t.sampler with
      | Some s ->
          let w = Float.max dur_us 1e-9 in
          let sk = s.skip.(0) -. w in
          if sk <= 0.0 then s.skip.(0) <- s.accept (event_of_cols c i) w
          else s.skip.(0) <- sk
      | None -> ());
      record_latency t ~kind ~path_id:(-1) dur_us
  | _ ->
      let args =
        if String.length comp = 0 then [] else [ ("comp", Str comp) ]
      in
      complete t ~ts_us ~dur_us ~machine ~args kind

let begin_span t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = [])
    kind =
  let id = t.next_span in
  t.next_span <- id + 1;
  Hashtbl.replace t.spans id
    {
      o_ts = ts_us;
      o_machine = machine;
      o_domain = domain;
      o_path = path_id;
      o_kind = kind;
    };
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Span_begin;
      span = id;
      args;
    };
  id

let end_span t ~ts_us ?(args = []) id =
  match Hashtbl.find_opt t.spans id with
  | None -> ()
  | Some o ->
      Hashtbl.remove t.spans id;
      push t
        {
          ts_us;
          machine = o.o_machine;
          domain = o.o_domain;
          path_id = o.o_path;
          kind = o.o_kind;
          phase = Span_end;
          span = id;
          args;
        };
      record_latency t ~kind:o.o_kind ~path_id:o.o_path (ts_us -. o.o_ts)

let async_begin t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = [])
    ~id kind =
  Hashtbl.replace t.asyncs (kind, id) (ts_us, path_id);
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Async_begin;
      span = id;
      args;
    }

let async_end t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = [])
    ~id kind =
  let path_id =
    match Hashtbl.find_opt t.asyncs (kind, id) with
    | Some (start, begin_path) ->
        Hashtbl.remove t.asyncs (kind, id);
        record_latency t ~kind ~path_id:begin_path (ts_us -. start);
        begin_path
    | None -> path_id
  in
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Async_end;
      span = id;
      args;
    }

let summary t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hist []
  |> List.sort (fun ((ka, pa), _) ((kb, pb), _) ->
         match String.compare ka kb with 0 -> compare pa pb | c -> c)

let kind_summary t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun ((kind, _), h) ->
      match Hashtbl.find_opt merged kind with
      | Some prev -> Hashtbl.replace merged kind (Histogram.merge prev h)
      | None -> Hashtbl.replace merged kind h)
    (summary t);
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
