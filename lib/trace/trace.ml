type arg = Str of string | Int of int | Float of float

type phase =
  | Instant
  | Complete of float
  | Span_begin
  | Span_end
  | Async_begin
  | Async_end

type event = {
  ts_us : float;
  machine : string;
  domain : string;
  path_id : int;
  kind : string;
  phase : phase;
  span : int;
  args : (string * arg) list;
}

type open_span = {
  o_ts : float;
  o_machine : string;
  o_domain : string;
  o_path : int;
  o_kind : string;
}

type t = {
  mutable buf : event array;
  mutable len : int;
  capacity : int option;
  mutable dropped : int;
  mutable next_span : int;
  spans : (int, open_span) Hashtbl.t;
  asyncs : (string * int, float * int) Hashtbl.t; (* start ts, path_id *)
  hist : (string * int, Histogram.t) Hashtbl.t;
}

let dummy_event =
  {
    ts_us = 0.0;
    machine = "";
    domain = "";
    path_id = -1;
    kind = "";
    phase = Instant;
    span = 0;
    args = [];
  }

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  {
    buf = Array.make 1024 dummy_event;
    len = 0;
    capacity;
    dropped = 0;
    next_span = 1;
    spans = Hashtbl.create 16;
    asyncs = Hashtbl.create 64;
    hist = Hashtbl.create 64;
  }

let clear t =
  t.len <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.asyncs;
  Hashtbl.reset t.hist

let event_count t = t.len
let dropped t = t.dropped
let open_spans t = Hashtbl.length t.spans

let events t = Array.to_list (Array.sub t.buf 0 t.len)

let push t ev =
  match t.capacity with
  | Some c when t.len >= c -> t.dropped <- t.dropped + 1
  | _ ->
      if t.len = Array.length t.buf then begin
        let bigger = Array.make (2 * t.len) dummy_event in
        Array.blit t.buf 0 bigger 0 t.len;
        t.buf <- bigger
      end;
      t.buf.(t.len) <- ev;
      t.len <- t.len + 1

let record_latency t ~kind ~path_id dur =
  let key = (kind, path_id) in
  let h =
    match Hashtbl.find_opt t.hist key with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.add t.hist key h;
        h
  in
  Histogram.add h dur

let instant t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = []) kind
    =
  push t
    { ts_us; machine; domain; path_id; kind; phase = Instant; span = 0; args }

let complete t ~ts_us ~dur_us ~machine ?(domain = "") ?(path_id = -1)
    ?(args = []) kind =
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Complete dur_us;
      span = 0;
      args;
    };
  record_latency t ~kind ~path_id dur_us

let begin_span t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = [])
    kind =
  let id = t.next_span in
  t.next_span <- id + 1;
  Hashtbl.replace t.spans id
    {
      o_ts = ts_us;
      o_machine = machine;
      o_domain = domain;
      o_path = path_id;
      o_kind = kind;
    };
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Span_begin;
      span = id;
      args;
    };
  id

let end_span t ~ts_us ?(args = []) id =
  match Hashtbl.find_opt t.spans id with
  | None -> ()
  | Some o ->
      Hashtbl.remove t.spans id;
      push t
        {
          ts_us;
          machine = o.o_machine;
          domain = o.o_domain;
          path_id = o.o_path;
          kind = o.o_kind;
          phase = Span_end;
          span = id;
          args;
        };
      record_latency t ~kind:o.o_kind ~path_id:o.o_path (ts_us -. o.o_ts)

let async_begin t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = [])
    ~id kind =
  Hashtbl.replace t.asyncs (kind, id) (ts_us, path_id);
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Async_begin;
      span = id;
      args;
    }

let async_end t ~ts_us ~machine ?(domain = "") ?(path_id = -1) ?(args = [])
    ~id kind =
  let path_id =
    match Hashtbl.find_opt t.asyncs (kind, id) with
    | Some (start, begin_path) ->
        Hashtbl.remove t.asyncs (kind, id);
        record_latency t ~kind ~path_id:begin_path (ts_us -. start);
        begin_path
    | None -> path_id
  in
  push t
    {
      ts_us;
      machine;
      domain;
      path_id;
      kind;
      phase = Async_end;
      span = id;
      args;
    }

let summary t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hist []
  |> List.sort (fun ((ka, pa), _) ((kb, pb), _) ->
         match String.compare ka kb with 0 -> compare pa pb | c -> c)

let kind_summary t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun ((kind, _), h) ->
      match Hashtbl.find_opt merged kind with
      | Some prev -> Hashtbl.replace merged kind (Histogram.merge prev h)
      | None -> Hashtbl.replace merged kind h)
    (summary t);
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
