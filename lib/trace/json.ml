type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that parses back to exactly [f]: writing a value and
   reading it again must be the identity (the sketch serialization's
   [equal] and the span JSONL round-trip rely on it), without printing
   17 digits for every 0.1. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec loop () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        loop ()
    | _ -> ()
  in
  loop ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "short \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Encode the code point as UTF-8 (BMP only, which is all the
               escape syntax can express without surrogate pairs). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
