(* Bucket 0 is the underflow bucket [0, base]; bucket i >= 1 covers
   (base * g^(i-1), base * g^i] with g = 2^(1/8). *)

let base = 1e-3
let log_g = log 2.0 /. 8.0

type t = {
  counts : (int, int) Hashtbl.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    counts = Hashtbl.create 32;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_of v =
  if v <= base then 0
  else
    let i = 1 + int_of_float (Float.floor (log (v /. base) /. log_g)) in
    (* Guard against v sitting exactly on a boundary where floating-point
       rounding pushes it one bucket high. *)
    if base *. exp (float_of_int (i - 1) *. log_g) >= v then i - 1 else i

let upper_bound i =
  if i = 0 then base else base *. exp (float_of_int i *. log_g)

let lower_bound i = if i = 0 then 0.0 else upper_bound (i - 1)

let add t v =
  let v = Float.max 0.0 v in
  let b = bucket_of v in
  Hashtbl.replace t.counts b
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts b));
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

let sorted_buckets t =
  Hashtbl.fold (fun b n acc -> (b, n) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)))
    in
    if rank = 1 then t.min_v
    else if rank = t.count then t.max_v
    else
    let rec walk acc = function
      | [] -> t.max_v
      | (b, n) :: rest ->
          if acc + n >= rank then upper_bound b else walk (acc + n) rest
    in
    let v = walk 0 (sorted_buckets t) in
    Float.min t.max_v (Float.max t.min_v v)
  end

let buckets t =
  List.map (fun (b, n) -> (lower_bound b, upper_bound b, n)) (sorted_buckets t)

let merge a b =
  let t = create () in
  let blit src =
    Hashtbl.iter
      (fun k n ->
        Hashtbl.replace t.counts k
          (n + Option.value ~default:0 (Hashtbl.find_opt t.counts k)))
      src.counts;
    t.count <- t.count + src.count;
    t.sum <- t.sum +. src.sum;
    if src.count > 0 then begin
      if src.min_v < t.min_v then t.min_v <- src.min_v;
      if src.max_v > t.max_v then t.max_v <- src.max_v
    end
  in
  blit a;
  blit b;
  t
