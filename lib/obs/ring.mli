(** Fixed-capacity ring over arbitrary items: pushing onto a full ring
    evicts (and returns) the oldest item, so the ring always holds the
    most recent [capacity] pushes in order. The flight recorder keeps
    sampled span roots in one of these and forgets evicted transfers
    from the sink, bounding recording memory for arbitrarily long
    runs. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] unless [capacity] is positive. *)

val push : 'a t -> 'a -> 'a option
(** Append; returns the evicted oldest item when the ring was full. *)

val to_list : 'a t -> 'a list
(** Retained items, oldest first. *)

val length : 'a t -> int
val capacity : 'a t -> int

val pushed : 'a t -> int
(** Total pushes ever, including those since evicted. *)
