(** Periodic snapshot report over the metrics registry, on the simulated
    timeline.

    A [Top.t] hangs off the machine tick hook: every time any machine's
    clock crosses an interval boundary it renders one frame —
    throughput counters with per-interval deltas, drops by class, held
    pages vs threshold, TLB shootdowns and elisions, monitor violations,
    per-component cost shares from the ledger and transfer-wall
    quantiles from the sketch. Everything printed is simulated-time
    state, so frames are deterministic and goldenable; rendering reads
    the registry without charging, so installing Top perturbs nothing.

    Both [fbufs_cli top] and [fbufs_cli stats --watch] share this
    renderer. *)

type t

val create :
  ?interval_us:float ->
  ?ppf:Format.formatter ->
  ?monitor:Monitor.t ->
  metrics:Fbufs_metrics.Metrics.t ->
  unit ->
  t
(** Default interval 1 s of simulated time, output to stdout. Raises
    [Invalid_argument] unless the interval is positive. *)

val install : t -> unit
(** Install the tick callback as [Machine.default_tick] (picked up by
    machines created afterwards). *)

val uninstall : t -> unit
val with_installed : t -> (unit -> 'a) -> 'a

val tick : t -> float -> unit
(** The tick callback: renders one frame per interval boundary crossed
    by the new simulated time. *)

val frame : t -> now_us:float -> unit
(** Render one snapshot frame unconditionally. *)

val final : t -> unit
(** Render a closing frame at the latest simulated time observed by
    {!tick} (the end-of-run summary frame). *)

val frames : t -> int
