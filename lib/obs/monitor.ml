module Machine = Fbufs_sim.Machine
module Mx = Fbufs_metrics.Metrics
module Ledger = Fbufs_metrics.Ledger
module Region = Fbufs.Region
module Allocator = Fbufs.Allocator
module Fbuf = Fbufs.Fbuf

type config = {
  budget : int;
  grace : int;
  drop_spike : float;
  max_violations : int;
}

let default = { budget = 32; grace = 16; drop_spike = 8.0; max_violations = 64 }

let violations_total =
  Mx.counter ~name:"fbufs_monitor_violations_total"
    ~help:"Invariant violations detected by the online monitors"
    ~labels:[ "rule" ] ()

let checks_total =
  Mx.counter ~name:"fbufs_monitor_checks_total"
    ~help:"Rule evaluations performed at sequence points"
    ~labels:[ "rule" ] ()

type target = {
  region : Region.t;
  allocators : Allocator.t list;
}

type rule = Refcount | Free_list | Ledger_rule | Gauge

let rules = [| Refcount; Free_list; Ledger_rule; Gauge |]

let rule_name = function
  | Refcount -> "refcount"
  | Free_list -> "free-list"
  | Ledger_rule -> "ledger"
  | Gauge -> "gauge"

type t = {
  config : config;
  recorder : Recorder.t option;
  targets : (string, target) Hashtbl.t;
  last_drops : (string, float) Hashtbl.t;
  mutable rule_idx : int;  (* round-robin over [rules] *)
  mutable fb_cursor : int;  (* resume point into registered fbufs *)
  mutable alloc_cursor : int;  (* resume point into the allocator list *)
  mutable violations : (string * string) list;  (* newest first, capped *)
  mutable violation_count : int;
  mutable checks : int;
}

let create ?recorder config =
  {
    config;
    recorder;
    targets = Hashtbl.create 4;
    last_drops = Hashtbl.create 4;
    rule_idx = 0;
    fb_cursor = 0;
    alloc_cursor = 0;
    violations = [];
    violation_count = 0;
    checks = 0;
  }

let attach t ~machine target = Hashtbl.replace t.targets machine target

let violate t m rule fmt =
  Printf.ksprintf
    (fun msg ->
      t.violation_count <- t.violation_count + 1;
      if List.length t.violations < t.config.max_violations then
        t.violations <- (rule_name rule, msg) :: t.violations;
      (match Machine.metrics m with
      | Some mx -> Mx.incr mx violations_total ~labels:[ rule_name rule ] ()
      | None -> ());
      match t.recorder with
      | Some r ->
          Recorder.note r ~kind:"monitor.violation"
            ~args:
              [
                ("rule", Fbufs_trace.Trace.Str (rule_name rule));
                ("msg", Fbufs_trace.Trace.Str msg);
              ]
            ();
          ignore (Recorder.trigger r ~reason:("monitor:" ^ rule_name rule))
      | None -> ())
    fmt

(* -- rules --------------------------------------------------------------- *)

(* Examine a [budget]-sized window of [items] starting at the saved
   cursor, wrapping; returns the advanced cursor. *)
let window ~cursor ~budget items f =
  let n = List.length items in
  if n = 0 then 0
  else begin
    let arr = Array.of_list items in
    let start = cursor mod n in
    let steps = min budget n in
    for i = 0 to steps - 1 do
      f arr.((start + i) mod n)
    done;
    (start + steps) mod n
  end

let check_refcount t m target =
  t.fb_cursor <-
    window ~cursor:t.fb_cursor ~budget:t.config.budget
      (Region.registered_fbufs target.region)
      (fun (fb : Fbuf.t) ->
        let refs = Fbuf.total_refs fb in
        if refs < 0 then
          violate t m Refcount "fbuf#%d holds %d references" fb.Fbuf.id refs;
        if fb.Fbuf.state = Fbuf.Cached_free && refs <> 0 then
          violate t m Refcount "cached-free fbuf#%d holds %d references"
            fb.Fbuf.id refs)

let check_free_list t m target =
  match target.allocators with
  | [] -> ()
  | allocs ->
      let n = List.length allocs in
      let ai = t.alloc_cursor mod n in
      t.alloc_cursor <- (ai + 1) mod n;
      let alloc = List.nth allocs ai in
      let parked = Allocator.parked alloc in
      if List.length parked <> Allocator.free_list_length alloc then
        violate t m Free_list
          "allocator %d: free_list_length %d but %d parked buffers" ai
          (Allocator.free_list_length alloc)
          (List.length parked);
      List.iteri
        (fun i (fb : Fbuf.t) ->
          if i < t.config.budget then begin
            if fb.Fbuf.state <> Fbuf.Cached_free then
              violate t m Free_list "allocator %d: parked fbuf#%d not \
                                     Cached_free" ai fb.Fbuf.id;
            if Fbuf.total_refs fb <> 0 then
              violate t m Free_list
                "allocator %d: parked fbuf#%d holds %d references" ai
                fb.Fbuf.id (Fbuf.total_refs fb)
          end)
        parked

let check_ledger t m =
  match Machine.metrics m with
  | None -> ()
  | Some mx ->
      let charged = Ledger.charged_us (Mx.ledger mx) ~machine:m.Machine.name in
      let busy = Machine.busy_us m in
      if Float.abs (charged -. busy) > 1e-6 then
        violate t m Ledger_rule
          "machine %s: ledger charged %.3f us but busy %.3f us"
          m.Machine.name charged busy

let check_gauges t m =
  match Machine.metrics m with
  | None -> ()
  | Some mx ->
      let held =
        List.filter
          (fun (s : Mx.sample) ->
            s.Mx.def.Mx.name = "fbufs_policy_held_pages")
          (Mx.samples mx)
      in
      List.iteri
        (fun i (s : Mx.sample) ->
          if i < t.config.budget then
            match
              Mx.value_by_name mx ~name:"fbufs_policy_threshold_pages"
                ~labels:s.Mx.labels
            with
            | Some thr ->
                if s.Mx.value > thr +. float_of_int t.config.grace then
                  violate t m Gauge
                    "path %s holds %.0f pages, threshold %.0f (+%d grace)"
                    (String.concat "/" s.Mx.labels)
                    s.Mx.value thr t.config.grace
            | None -> ())
        held

let check_drop_spike t m =
  match Machine.metrics m with
  | None -> ()
  | Some mx ->
      let total = Mx.total_by_name mx ~name:"fbufs_policy_dropped_total" in
      let last =
        Option.value ~default:0.0 (Hashtbl.find_opt t.last_drops m.Machine.name)
      in
      Hashtbl.replace t.last_drops m.Machine.name total;
      if total -. last >= t.config.drop_spike then begin
        match t.recorder with
        | Some r ->
            Recorder.note r ~kind:"monitor.drop_spike"
              ~args:
                [ ("drops", Fbufs_trace.Trace.Float (total -. last)) ]
              ();
            ignore (Recorder.trigger r ~reason:"drop-spike")
        | None -> ()
      end

let hook t m _site =
  t.checks <- t.checks + 1;
  check_drop_spike t m;
  let rule = rules.(t.rule_idx mod Array.length rules) in
  t.rule_idx <- (t.rule_idx + 1) mod Array.length rules;
  (match Machine.metrics m with
  | Some mx -> Mx.incr mx checks_total ~labels:[ rule_name rule ] ()
  | None -> ());
  match rule with
  | Refcount -> (
      match Hashtbl.find_opt t.targets m.Machine.name with
      | Some target -> check_refcount t m target
      | None -> ())
  | Free_list -> (
      match Hashtbl.find_opt t.targets m.Machine.name with
      | Some target -> check_free_list t m target
      | None -> ())
  | Ledger_rule -> check_ledger t m
  | Gauge -> check_gauges t m

let install t = Machine.default_seq_hook := Some (hook t)
let uninstall _t = Machine.default_seq_hook := None

let with_installed t f =
  install t;
  Fun.protect ~finally:(fun () -> uninstall t) f

let violations t = List.rev t.violations
let violation_count t = t.violation_count
let checks t = t.checks
