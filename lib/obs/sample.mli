(** Seeded, deterministic sampling for the flight recorder.

    Both samplers draw exclusively from {!Fbufs_sim.Rng} substreams of
    one configured seed, so two runs over the same deterministic event
    stream make identical keep/drop decisions — the property the
    recorder's byte-identical-dump tests pin. *)

module Head : sig
  (** Per-path head sampling: the keep/drop decision for a path is made
      once (a keyed {!Fbufs_sim.Rng.fork} of the seed, so no draw order
      is involved) and applies to every transfer on that path. Sampling
      whole paths, not individual transfers, keeps causally related
      transfers together in the dump. *)

  type t

  val create : seed:int -> denom:int -> t
  (** Keep roughly 1-in-[denom] paths; [denom = 1] keeps everything.
      Raises [Invalid_argument] unless [denom] is positive. *)

  val keep : t -> path:int -> label:string -> bool
  (** Decision for a transfer root. Keyed by [path] when it is bound to
      an I/O path (non-zero), otherwise by a hash of [label], so
      unbound transfers of the same kind sample consistently. *)
end

module Reservoir : sig
  (** Weighted reservoir of size [k]: each offered item gets priority
      [u^(1/w)] with [u] drawn from the sampler's own seeded stream;
      the [k] largest priorities are retained. Heavier items (longer
      slices) are proportionally more likely to survive, giving a
      duration-biased long-horizon sample to complement the recent
      ring. Implemented as A-ExpJ over a min-heap: once full, skipped
      items cost one subtraction — no RNG draw — so offering is cheap
      enough for an always-armed recorder. *)

  type 'a t

  val create : seed:int -> k:int -> 'a t
  (** Raises [Invalid_argument] unless [k] is positive. *)

  val offer : 'a t -> weight:float -> 'a -> unit
  (** Weights [<= 0] are clamped to a small positive minimum. *)

  val accept_weighted : 'a t -> weight:float -> 'a -> float
  (** Inverted flow for a hot emission path that owns the skip budget
      itself: decrement the budget by each item's weight inline and
      call this only when it reaches zero — the item is retained and
      the next budget is returned (0.0 while the reservoir is still
      filling, so every item is an acceptance until it is full). Items
      skipped this way must NOT also be [offer]ed. The RNG draw
      sequence matches the eager path, so either flow keeps the same
      sample. *)

  val items : 'a t -> 'a list
  (** Retained items in offer order. *)

  val offered : 'a t -> int
  (** Items accepted into the reservoir so far (monotone; exceeds [k]
      once replacements begin). Skip-eliminated items are not counted —
      the trace's own event counters cover those. *)
end
