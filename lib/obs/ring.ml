type 'a t = {
  buf : 'a option array;
  mutable len : int;
  mutable start : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; len = 0; start = 0; pushed = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let pushed t = t.pushed

let push t x =
  t.pushed <- t.pushed + 1;
  let cap = Array.length t.buf in
  if t.len < cap then begin
    t.buf.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1;
    None
  end
  else begin
    let evicted = t.buf.(t.start) in
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap;
    evicted
  end

let to_list t =
  let cap = Array.length t.buf in
  List.init t.len (fun i ->
      match t.buf.((t.start + i) mod cap) with
      | Some x -> x
      | None -> assert false)
