(** The flight recorder: always-on, bounded-memory capture of recent
    history, dumped post-mortem when an anomaly fires.

    Three stores, all bounded and all fed from the ordinary trace/span
    sinks — the trace's sampling hook and the span sink's tap — so
    recording shares the exporters and costs nothing when disarmed:

    - a ring of the most recent trace events (the recorder installs its
      own ring sink when the run has none; otherwise it taps the
      existing sink and dumps that sink's tail),
    - a seeded weighted reservoir of events over the whole run
      (duration-biased, for long-horizon context the ring has already
      overwritten),
    - a ring of head-sampled span roots (whole completed transfers);
      evicted or unsampled transfers are {!Fbufs_span.Span.forget}ten
      from a recorder-owned sink, bounding memory.

    A {!trigger} is debounced (simulated-time window, lifetime dump cap)
    and writes one dump: recent events as JSONL and Chrome trace,
    sampled events as JSONL, sampled transfers as span JSONL
    (round-trips through {!Fbufs_span.Span_export.parse_jsonl}), plus a
    meta record. Everything sampled is derived from the configured seed,
    so equal seeds over equal runs produce byte-identical dumps. *)

type config = {
  seed : int;  (** sampling seed (head sampler and reservoir substreams) *)
  event_capacity : int;  (** recent-event ring size (recorder-owned sink) *)
  reservoir : int;  (** weighted reservoir size *)
  span_capacity : int;  (** sampled transfer-root ring size *)
  span_denom : int;  (** head-sample 1-in-[span_denom] paths *)
  debounce_us : float;  (** min simulated time between dumps *)
  max_dumps : int;  (** lifetime dump cap *)
  dir : string;  (** dump directory (created on first dump) *)
  gc_minor_words : int;
      (** nursery size (in words) to guarantee while armed; [0] leaves
          the GC untouched. The recorder pre-sizes the minor heap the
          way flight recorders pre-size their arenas: its residual
          churn (slow-path event records, boxed floats at emission
          call sites) otherwise raises the host run's minor-GC rate,
          which is where an always-on tap would tax the workload.
          Restored on {!disarm}. *)
}

val default : config
(** seed 1, 4096-event ring, 256-event reservoir, 64 roots, every path
    ([span_denom = 1]), 10 ms debounce, 4 dumps, ["postmortem"],
    8M-word nursery while armed. *)

type t

val create : config -> t

val arm : t -> unit
(** Attach to the ambient sinks: taps an installed
    [Machine.default_trace]/[default_spans] sink, or installs a
    recorder-owned ring/sink when none is present (machines created
    after [arm] pick it up). Re-arming is a no-op. *)

val disarm : t -> unit
(** Remove taps and uninstall any recorder-owned default sinks. *)

val with_armed : t -> (unit -> 'a) -> 'a
(** [arm], run, [disarm] (exceptions included). *)

val note : t -> kind:string -> ?args:(string * Fbufs_trace.Trace.arg) list -> unit -> unit
(** Stamp an instant event (at the last observed simulated time) into
    the recorded stream — how monitors and refusal hooks leave their
    mark in the dump. Dropped when disarmed. *)

val trigger : ?force:bool -> t -> reason:string -> bool
(** Request a post-mortem dump; returns whether one was written.
    Suppressed (returning [false]) while within [debounce_us] of the
    previous dump or past [max_dumps]; [~force:true] (the [--dump-on-exit]
    path) bypasses both. Counted in [fbufs_obs_dumps_total{reason}] /
    [fbufs_obs_dump_suppressed_total{reason}] when a metrics instance is
    ambient. *)

val render_dump : t -> reason:string -> (string * string) list
(** The dump a {!trigger} would write, as [(filename, content)] pairs,
    without touching the filesystem or the debounce state — what the
    determinism tests compare. *)

val last_ts : t -> float
(** Latest simulated timestamp observed through the taps (0 initially). *)

val dumps : t -> int
val events_seen : t -> int
val roots_seen : t -> int
val roots_kept : t -> int
