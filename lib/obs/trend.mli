(** Bench-trajectory trend gate: the whole-series generalization of the
    pairwise [bench-diff].

    Given the committed [BENCH_*.json] snapshots in chronological order,
    each benchmark's ns/run series gets (1) an ordinary-least-squares
    slope, normalized to percent of the series mean per step, and (2) a
    two-segment changepoint (the split minimizing summed squared error,
    with a minimum segment length of one point on each side). A
    benchmark {e regresses} when the post-changepoint mean exceeds the
    pre-changepoint mean by more than the tolerance — a step regression
    a generous pairwise tolerance would wave through accumulates no
    matter how it is split across adjacent snapshots — or when the
    benchmark was present earlier but is missing from the latest
    snapshot. Two-point series degenerate to exactly the pairwise
    [bench-diff] comparison.

    All snapshots must come from the same collection machine (the same
    rule the pairwise gate relies on); runner speed never enters. *)

type verdict = {
  bench : string;
  n : int;  (** points present in the series *)
  first_ns : float;
  last_ns : float;
  slope_pct : float;  (** OLS slope, percent of series mean per step *)
  change_at : int option;
      (** series index of the first post-changepoint point (n >= 3) *)
  pre_mean : float;
  post_mean : float;
  delta_pct : float;  (** (post − pre)/pre × 100 across the changepoint *)
  regressed : bool;
  missing_latest : bool;
}

type result = {
  files : string list;
  verdicts : verdict list;  (** sorted by benchmark name *)
  tolerance_pct : float;
  failed : bool;
}

val analyze_rows :
  named:(string * Fbufs_metrics.Bench_diff.row list) list ->
  tolerance_pct:float ->
  result
(** [named] pairs a snapshot label with its rows, oldest first. Raises
    [Invalid_argument] on fewer than two snapshots. *)

val analyze : files:string list -> tolerance_pct:float -> result
(** {!analyze_rows} over [Bench_diff.load_file] of each path; raises as
    that loader on malformed snapshots. *)

val render : result -> string
(** Fixed-width table plus a PASS/FAIL trailer line. *)

val to_json : result -> Fbufs_trace.Json.t
(** Machine-readable verdict (the CI artifact). *)
