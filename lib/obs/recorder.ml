module Machine = Fbufs_sim.Machine
module Trace = Fbufs_trace.Trace
module Chrome = Fbufs_trace.Chrome
module Json = Fbufs_trace.Json
module Span = Fbufs_span.Span
module Span_export = Fbufs_span.Span_export
module Mx = Fbufs_metrics.Metrics

type config = {
  seed : int;
  event_capacity : int;
  reservoir : int;
  span_capacity : int;
  span_denom : int;
  debounce_us : float;
  max_dumps : int;
  dir : string;
  gc_minor_words : int;
      (* Nursery size (words) to guarantee while armed; 0 leaves the GC
         alone. The recorder's churn — event records on the slow paths,
         boxed floats at emission calls — otherwise raises the minor-GC
         rate of the host run; a pre-sized nursery absorbs it the same
         way flight recorders pre-size their arenas. Restored on
         disarm. *)
}

let default =
  {
    seed = 1;
    event_capacity = 4096;
    reservoir = 256;
    span_capacity = 64;
    span_denom = 1;
    debounce_us = 10_000.0;
    max_dumps = 4;
    dir = "postmortem";
    gc_minor_words = 8_000_000;
  }

let dumps_total =
  Mx.counter ~name:"fbufs_obs_dumps_total"
    ~help:"Post-mortem dumps written by the flight recorder"
    ~labels:[ "reason" ] ()

let suppressed_total =
  Mx.counter ~name:"fbufs_obs_dump_suppressed_total"
    ~help:"Dump triggers suppressed by the debounce window or the dump cap"
    ~labels:[ "reason" ] ()

type t = {
  config : config;
  head : Sample.Head.t;
  res : Trace.event Sample.Reservoir.t;
  roots : Span.transfer Ring.t;
  mutable trace : Trace.t option;  (* sink being tapped while armed *)
  mutable spans : Span.t option;
  mutable own_trace : bool;  (* we installed the default; uninstall on disarm *)
  mutable own_spans : bool;
  mutable armed : bool;
  mutable last_ts : float; (* span-side; merge with the trace via [last_ts t] *)
  mutable seen0 : int; (* events already in the trace when we armed *)
  mutable roots_seen : int;
  mutable roots_kept : int;
  mutable dumps : int;
  mutable suppressed : int;
  mutable last_dump_ts : float;
  mutable saved_minor : int; (* nursery size to restore on disarm; 0 = none *)
}

let create config =
  {
    config;
    head = Sample.Head.create ~seed:config.seed ~denom:config.span_denom;
    res = Sample.Reservoir.create ~seed:(config.seed + 1) ~k:config.reservoir;
    roots = Ring.create ~capacity:config.span_capacity;
    trace = None;
    spans = None;
    own_trace = false;
    own_spans = false;
    armed = false;
    last_ts = 0.0;
    seen0 = 0;
    roots_seen = 0;
    roots_kept = 0;
    dumps = 0;
    suppressed = 0;
    last_dump_ts = Float.neg_infinity;
    saved_minor = 0;
  }

(* Per-event work is a skip-budget decrement inside the trace (one
   float subtract + compare in the steady state); the event record is
   only materialized on reservoir acceptance. Counters and timestamps
   come from the trace itself, so the recorder adds no per-event
   bookkeeping of its own. *)
let sampler t =
  {
    Trace.skip = [| 0.0 |];
    accept = (fun ev w -> Sample.Reservoir.accept_weighted t.res ~weight:w ev);
  }

let pushed tr = Trace.event_count tr + Trace.dropped tr

let events_seen t =
  match t.trace with Some tr -> pushed tr - t.seen0 | None -> 0

let last_ts t =
  match t.trace with
  | Some tr -> Float.max t.last_ts (Trace.last_ts tr)
  | None -> t.last_ts

let root_path (tr : Span.transfer) =
  (* The root span was recorded first; [spans] is newest-first. *)
  match List.rev tr.Span.spans with
  | (sp : Span.span) :: _ when sp.Span.id = tr.Span.root -> sp.Span.path_id
  | _ -> 0

let span_tap t (tr : Span.transfer) =
  t.roots_seen <- t.roots_seen + 1;
  if tr.Span.t_start_us > t.last_ts then t.last_ts <- tr.Span.t_start_us;
  let keep =
    Sample.Head.keep t.head ~path:(root_path tr) ~label:tr.Span.label
  in
  if keep then begin
    t.roots_kept <- t.roots_kept + 1;
    match Ring.push t.roots tr with
    | Some evicted when t.own_spans -> (
        match t.spans with
        | Some s -> Span.forget s evicted.Span.tid
        | None -> ())
    | Some _ | None -> ()
  end
  else if t.own_spans then
    match t.spans with Some s -> Span.forget s tr.Span.tid | None -> ()

let arm t =
  if not t.armed then begin
    t.armed <- true;
    (let cur = (Gc.get ()).Gc.minor_heap_size in
     if t.config.gc_minor_words > cur then begin
       t.saved_minor <- cur;
       Gc.set { (Gc.get ()) with Gc.minor_heap_size = t.config.gc_minor_words }
     end);
    (match !Machine.default_trace with
    | Some tr -> t.trace <- Some tr
    | None ->
        let tr =
          Trace.create ~ring:true ~latency:false
            ~capacity:t.config.event_capacity ()
        in
        t.trace <- Some tr;
        t.own_trace <- true;
        Machine.default_trace := Some tr);
    (match t.trace with
    | Some tr ->
        t.seen0 <- pushed tr;
        Trace.set_sampler tr (Some (sampler t))
    | None -> ());
    (match !Machine.default_spans with
    | Some s -> t.spans <- Some s
    | None ->
        let s = Span.create () in
        t.spans <- Some s;
        t.own_spans <- true;
        Machine.default_spans := Some s);
    match t.spans with
    | Some s -> Span.set_tap s (Some (span_tap t))
    | None -> ()
  end

let disarm t =
  if t.armed then begin
    t.armed <- false;
    if t.saved_minor > 0 then begin
      Gc.set { (Gc.get ()) with Gc.minor_heap_size = t.saved_minor };
      t.saved_minor <- 0
    end;
    (match t.trace with Some tr -> Trace.set_sampler tr None | None -> ());
    (match t.spans with Some s -> Span.set_tap s None | None -> ());
    if t.own_trace then Machine.default_trace := None;
    if t.own_spans then Machine.default_spans := None;
    t.own_trace <- false;
    t.own_spans <- false
  end

let with_armed t f =
  arm t;
  Fun.protect ~finally:(fun () -> disarm t) f

let note t ~kind ?(args = []) () =
  if t.armed then
    match t.trace with
    | Some tr ->
        Trace.instant tr ~ts_us:(last_ts t) ~machine:"obs" ~args kind
    | None -> ()

(* -- dumps -------------------------------------------------------------- *)

let tail n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let jsonl_of_events evs =
  let buf = Buffer.create 65536 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Json.to_string (Chrome.jsonl_event ev));
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let meta_json t ~reason =
  Json.Obj
    [
      ("reason", Json.String reason);
      ("ts_us", Json.Float (last_ts t));
      ("seed", Json.Int t.config.seed);
      ("span_denom", Json.Int t.config.span_denom);
      ("events_seen", Json.Int (events_seen t));
      ("roots_seen", Json.Int t.roots_seen);
      ("roots_kept", Json.Int t.roots_kept);
      ("reservoir_accepts", Json.Int (Sample.Reservoir.offered t.res));
      ("dumps", Json.Int t.dumps);
      ("suppressed", Json.Int t.suppressed);
    ]

let render_dump t ~reason =
  let events, chrome =
    match t.trace with
    | Some tr ->
        ( jsonl_of_events (tail t.config.event_capacity (Trace.events tr)),
          Chrome.to_string tr )
    | None -> ("", "{\"traceEvents\":[]}")
  in
  [
    ("events.jsonl", events);
    ("chrome.json", chrome);
    ("sampled.jsonl", jsonl_of_events (Sample.Reservoir.items t.res));
    ("spans.jsonl", Span_export.jsonl_of_transfers (Ring.to_list t.roots));
    ("meta.json", Json.to_string (meta_json t ~reason));
  ]

let metric_label reason =
  (* Keep the label set bounded: strip any per-op detail after ':'. *)
  match String.index_opt reason ':' with
  | Some i -> String.sub reason 0 i
  | None -> reason

let write_dump t ~reason =
  if not (Sys.file_exists t.config.dir) then Sys.mkdir t.config.dir 0o755;
  t.dumps <- t.dumps + 1;
  t.last_dump_ts <- last_ts t;
  let prefix = Printf.sprintf "postmortem-%d-" t.dumps in
  List.iter
    (fun (name, content) ->
      let path = Filename.concat t.config.dir (prefix ^ name) in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content))
    (render_dump t ~reason);
  match !Machine.default_metrics with
  | Some mx -> Mx.incr mx dumps_total ~labels:[ metric_label reason ] ()
  | None -> ()

let trigger ?(force = false) t ~reason =
  let allowed =
    force
    || t.dumps < t.config.max_dumps
       && last_ts t -. t.last_dump_ts >= t.config.debounce_us
  in
  if allowed then begin
    write_dump t ~reason;
    true
  end
  else begin
    t.suppressed <- t.suppressed + 1;
    (match !Machine.default_metrics with
    | Some mx -> Mx.incr mx suppressed_total ~labels:[ metric_label reason ] ()
    | None -> ());
    false
  end

let dumps t = t.dumps
let roots_seen t = t.roots_seen
let roots_kept t = t.roots_kept
