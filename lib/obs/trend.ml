module Bench_diff = Fbufs_metrics.Bench_diff
module Json = Fbufs_trace.Json

type verdict = {
  bench : string;
  n : int;
  first_ns : float;
  last_ns : float;
  slope_pct : float;
  change_at : int option;
  pre_mean : float;
  post_mean : float;
  delta_pct : float;
  regressed : bool;
  missing_latest : bool;
}

type result = {
  files : string list;
  verdicts : verdict list;
  tolerance_pct : float;
  failed : bool;
}

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let ols_slope xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let fn = float_of_int n in
    let xbar = (fn -. 1.0) /. 2.0 in
    let ybar = mean xs in
    let num = ref 0.0 and den = ref 0.0 in
    Array.iteri
      (fun i y ->
        let dx = float_of_int i -. xbar in
        num := !num +. (dx *. (y -. ybar));
        den := !den +. (dx *. dx))
      xs;
    if !den = 0.0 then 0.0 else !num /. !den
  end

let sse xs lo hi =
  (* sum of squared deviations of xs.(lo..hi-1) from their mean *)
  let n = hi - lo in
  if n <= 0 then 0.0
  else begin
    let m = ref 0.0 in
    for i = lo to hi - 1 do
      m := !m +. xs.(i)
    done;
    let m = !m /. float_of_int n in
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      let d = xs.(i) -. m in
      s := !s +. (d *. d)
    done;
    !s
  end

(* Best two-segment split: k in [1, n-1] minimizing summed SSE; the
   pre segment is [0,k), the post segment [k,n). *)
let changepoint xs =
  let n = Array.length xs in
  if n < 2 then None
  else begin
    let best_k = ref 1 and best_cost = ref infinity in
    for k = 1 to n - 1 do
      let cost = sse xs 0 k +. sse xs k n in
      if cost < !best_cost then begin
        best_cost := cost;
        best_k := k
      end
    done;
    Some !best_k
  end

let seg_mean xs lo hi =
  let s = ref 0.0 in
  for i = lo to hi - 1 do
    s := !s +. xs.(i)
  done;
  !s /. float_of_int (hi - lo)

let analyze_rows ~named ~tolerance_pct =
  if List.length named < 2 then
    invalid_arg "Trend.analyze_rows: need at least two snapshots";
  let files = List.map fst named in
  let snapshots = List.map snd named in
  let latest = List.nth snapshots (List.length snapshots - 1) in
  let names =
    List.concat_map
      (List.filter_map (fun (r : Bench_diff.row) ->
           match r.Bench_diff.ns_per_run with
           | Some _ -> Some r.Bench_diff.name
           | None -> None))
      snapshots
    |> List.sort_uniq String.compare
  in
  let verdicts =
    List.map
      (fun bench ->
        let series =
          List.filter_map
            (fun rows ->
              List.find_map
                (fun (r : Bench_diff.row) ->
                  if r.Bench_diff.name = bench then r.Bench_diff.ns_per_run
                  else None)
                rows)
            snapshots
        in
        let xs = Array.of_list series in
        let n = Array.length xs in
        let missing_latest =
          not
            (List.exists
               (fun (r : Bench_diff.row) ->
                 r.Bench_diff.name = bench
                 && r.Bench_diff.ns_per_run <> None)
               latest)
        in
        if n < 2 then
          {
            bench;
            n;
            first_ns = (if n > 0 then xs.(0) else 0.0);
            last_ns = (if n > 0 then xs.(n - 1) else 0.0);
            slope_pct = 0.0;
            change_at = None;
            pre_mean = 0.0;
            post_mean = 0.0;
            delta_pct = 0.0;
            regressed = missing_latest;
            missing_latest;
          }
        else begin
          let m = mean xs in
          let slope_pct =
            if m = 0.0 then 0.0 else 100.0 *. ols_slope xs /. m
          in
          let k = Option.get (changepoint xs) in
          let pre_mean = seg_mean xs 0 k in
          let post_mean = seg_mean xs k n in
          let delta_pct =
            if pre_mean = 0.0 then 0.0
            else 100.0 *. (post_mean -. pre_mean) /. pre_mean
          in
          let stepped = delta_pct > tolerance_pct in
          {
            bench;
            n;
            first_ns = xs.(0);
            last_ns = xs.(n - 1);
            slope_pct;
            change_at = (if n >= 3 then Some k else None);
            pre_mean;
            post_mean;
            delta_pct;
            regressed = stepped || missing_latest;
            missing_latest;
          }
        end)
      names
  in
  {
    files;
    verdicts;
    tolerance_pct;
    failed = List.exists (fun v -> v.regressed) verdicts;
  }

let analyze ~files ~tolerance_pct =
  let named = List.map (fun f -> (f, Bench_diff.load_file f)) files in
  analyze_rows ~named ~tolerance_pct

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "bench-trend over %d snapshots (tolerance %.0f%%)\n"
       (List.length r.files) r.tolerance_pct);
  Buffer.add_string buf
    (Printf.sprintf "%-28s %3s %12s %12s %9s %6s %9s  %s\n" "benchmark" "n"
       "first ns" "last ns" "slope/step" "chg@" "step%" "verdict");
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %3d %12.1f %12.1f %8.2f%% %6s %8.1f%%  %s\n"
           v.bench v.n v.first_ns v.last_ns v.slope_pct
           (match v.change_at with Some k -> string_of_int k | None -> "-")
           v.delta_pct
           (if v.missing_latest then "MISSING"
            else if v.regressed then "REGRESSED"
            else "ok")))
    r.verdicts;
  Buffer.add_string buf (if r.failed then "FAIL\n" else "PASS\n");
  Buffer.contents buf

let to_json r =
  Json.Obj
    [
      ("files", Json.List (List.map (fun f -> Json.String f) r.files));
      ("tolerance_pct", Json.Float r.tolerance_pct);
      ("failed", Json.Bool r.failed);
      ( "benchmarks",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("name", Json.String v.bench);
                   ("n", Json.Int v.n);
                   ("first_ns", Json.Float v.first_ns);
                   ("last_ns", Json.Float v.last_ns);
                   ("slope_pct_per_step", Json.Float v.slope_pct);
                   ( "change_at",
                     match v.change_at with
                     | Some k -> Json.Int k
                     | None -> Json.Null );
                   ("pre_mean_ns", Json.Float v.pre_mean);
                   ("post_mean_ns", Json.Float v.post_mean);
                   ("delta_pct", Json.Float v.delta_pct);
                   ("regressed", Json.Bool v.regressed);
                   ("missing_latest", Json.Bool v.missing_latest);
                 ])
             r.verdicts) );
    ]
