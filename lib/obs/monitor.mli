(** Online invariant monitors: a budgeted subset of the structural
    checker's invariants, evaluated incrementally at sequence points
    ({!Fbufs_sim.Machine.seq_point} sites: an IPC reply delivered, a
    transfer secured, a pageout sweep done) instead of in one full
    sweep.

    Rules rotate round-robin, one rule per sequence point, and the
    structural rules resume a cursor between calls, examining at most
    [budget] items each — so the per-sequence-point cost is constant
    regardless of system size, and every item is still visited given
    enough sequence points. Monitors only read: they never charge
    simulated time, so arming them cannot perturb any golden output.

    Rules:
    - [refcount]: registered fbufs hold non-negative reference counts,
      and cached-free buffers hold none (needs an {!attach}ed target);
    - [free-list]: allocator free-list length agrees with its parked
      set, and parked buffers are cached-free with zero references
      (needs an {!attach}ed target);
    - [ledger]: the cost ledger's arrival total for the machine equals
      [Machine.busy_us] — attribution is complete (metered runs);
    - [gauge]: policy held-pages gauges do not exceed their threshold
      gauge by more than [grace] pages (metered runs).

    Violations feed [fbufs_monitor_violations_total{rule}], leave an
    instant event in the recorded stream and arm the recorder's dump
    trigger. Independently of the rules, a policy drop spike (the
    dropped-total counter advancing by [drop_spike] or more between
    consecutive sequence points of a machine) triggers a dump with
    reason [drop-spike]. *)

type config = {
  budget : int;  (** max items examined per sequence point *)
  grace : int;  (** pages of held-over-threshold slack before [gauge] fires *)
  drop_spike : float;  (** drops between sequence points that trigger a dump *)
  max_violations : int;  (** retained violation messages (metric still counts all) *)
}

val default : config
(** budget 32, grace 16 pages, spike 8 drops, 64 retained messages. *)

type target = {
  region : Fbufs.Region.t;
  allocators : Fbufs.Allocator.t list;
}

type t

val create : ?recorder:Recorder.t -> config -> t

val attach : t -> machine:string -> target -> unit
(** Enable the structural rules for sequence points of the named
    machine. Without an attachment only the machine-local rules run. *)

val hook : t -> Fbufs_sim.Machine.t -> string -> unit
(** The sequence-point callback; exposed for direct installation on one
    machine via [Machine.set_seq_hook]. *)

val install : t -> unit
(** Install {!hook} as [Machine.default_seq_hook] (picked up by machines
    created afterwards). *)

val uninstall : t -> unit

val with_installed : t -> (unit -> 'a) -> 'a

val violations : t -> (string * string) list
(** Retained [(rule, message)] pairs, oldest first, capped at
    [max_violations]. *)

val violation_count : t -> int
val checks : t -> int
(** Sequence points observed. *)
