module Machine = Fbufs_sim.Machine
module Mx = Fbufs_metrics.Metrics
module Ledger = Fbufs_metrics.Ledger
module Sketch = Fbufs_metrics.Sketch
module Comp = Fbufs_metrics.Component

type t = {
  interval_us : float;
  ppf : Format.formatter;
  monitor : Monitor.t option;
  metrics : Mx.t;
  prev : (string, float) Hashtbl.t;  (* counter totals at the last frame *)
  mutable next_due : float;
  mutable last_now : float;
  mutable frames : int;
}

let create ?(interval_us = 1_000_000.0) ?(ppf = Format.std_formatter) ?monitor
    ~metrics () =
  if interval_us <= 0.0 then
    invalid_arg "Top.create: interval must be positive";
  {
    interval_us;
    ppf;
    monitor;
    metrics;
    prev = Hashtbl.create 16;
    next_due = interval_us;
    last_now = 0.0;
    frames = 0;
  }

(* Counter total with the per-frame delta, updating the saved value. *)
let delta t name =
  let total = Mx.total_by_name t.metrics ~name in
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.prev name) in
  Hashtbl.replace t.prev name total;
  (total, total -. prev)

let gauge_sum t name =
  List.fold_left
    (fun acc (s : Mx.sample) ->
      if s.Mx.def.Mx.name = name then acc +. s.Mx.value else acc)
    0.0 (Mx.samples t.metrics)

(* Aggregate a counter by one label position (e.g. drops by class). *)
let by_label t name ~pos =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Mx.sample) ->
      if s.Mx.def.Mx.name = name then
        match List.nth_opt s.Mx.labels pos with
        | Some l ->
            Hashtbl.replace tbl l
              (s.Mx.value
              +. Option.value ~default:0.0 (Hashtbl.find_opt tbl l))
        | None -> ())
    (Mx.samples t.metrics);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merged_sketch t name =
  List.fold_left
    (fun acc (s : Mx.sample) ->
      if s.Mx.def.Mx.name = name then
        match (s.Mx.sketch, acc) with
        | Some sk, None -> Some sk
        | Some sk, Some m -> Some (Sketch.merge m sk)
        | None, _ -> acc
      else acc)
    None (Mx.samples t.metrics)

let frame t ~now_us =
  t.frames <- t.frames + 1;
  let p = Format.fprintf in
  let ppf = t.ppf in
  p ppf "── top @@ %.1f us ─ frame %d ─@." now_us t.frames;
  let sends, d_sends = delta t "fbufs_sends_total" in
  let pdus, d_pdus = delta t "fbufs_net_pdus_total" in
  let pdu_drops, d_pdu_drops = delta t "fbufs_net_pdus_dropped_total" in
  p ppf "  sends %12.0f (+%.0f)   net pdus %12.0f (+%.0f)  lost %.0f (+%.0f)@."
    sends d_sends pdus d_pdus pdu_drops d_pdu_drops;
  let allocs, d_allocs = delta t "fbufs_alloc_total" in
  let secured, d_secured = delta t "fbufs_secured_total" in
  p ppf "  allocs %11.0f (+%.0f)   secured %13.0f (+%.0f)@." allocs d_allocs
    secured d_secured;
  let pol_drops, d_pol_drops = delta t "fbufs_policy_dropped_total" in
  if pol_drops > 0.0 || d_pol_drops > 0.0 then begin
    p ppf "  policy drops %5.0f (+%.0f)" pol_drops d_pol_drops;
    let classes = by_label t "fbufs_policy_dropped_total" ~pos:2 in
    if classes <> [] then begin
      p ppf "  [";
      List.iteri
        (fun i (c, v) -> p ppf "%s%s %.0f" (if i > 0 then ", " else "") c v)
        classes;
      p ppf "]"
    end;
    p ppf "@."
  end;
  let held = gauge_sum t "fbufs_policy_held_pages" in
  let thr = gauge_sum t "fbufs_policy_threshold_pages" in
  if held > 0.0 || thr > 0.0 then
    p ppf "  held pages %7.0f   threshold %11.0f@." held thr;
  let shoot, d_shoot = delta t "fbufs_tlb_shootdowns_total" in
  let elided, d_elided = delta t "fbufs_tlb_flushes_elided_total" in
  p ppf "  tlb shootdowns %3.0f (+%.0f)   elided %14.0f (+%.0f)@." shoot
    d_shoot elided d_elided;
  (match t.monitor with
  | Some mon ->
      p ppf "  monitor violations %.0f   checks %d@."
        (float_of_int (Monitor.violation_count mon))
        (Monitor.checks mon)
  | None ->
      let v = Mx.total_by_name t.metrics ~name:"fbufs_monitor_violations_total" in
      if v > 0.0 then p ppf "  monitor violations %.0f@." v);
  let ledger = Mx.ledger t.metrics in
  let total = Ledger.total_us ledger in
  if total > 0.0 then begin
    p ppf "  cost shares:";
    List.iter
      (fun (comp, us) ->
        if us > 0.0 then
          p ppf " %s %.1f%%" (Comp.label comp) (100.0 *. us /. total))
      (Ledger.by_component ledger);
    p ppf "  (total %.1f us)@." total
  end;
  (match merged_sketch t "fbufs_transfer_wall_us" with
  | Some sk when Sketch.count sk > 0 ->
      p ppf "  transfer wall p50 %.1f us  p99 %.1f us  (n=%d)@."
        (Sketch.quantile sk 50.0) (Sketch.quantile sk 99.0) (Sketch.count sk)
  | Some _ | None -> ())

let tick t now_us =
  if now_us > t.last_now then t.last_now <- now_us;
  while now_us >= t.next_due do
    frame t ~now_us:t.next_due;
    t.next_due <- t.next_due +. t.interval_us
  done

let final t = frame t ~now_us:t.last_now

let install t = Machine.default_tick := Some (tick t)
let uninstall _t = Machine.default_tick := None

let with_installed t f =
  install t;
  Fun.protect ~finally:(fun () -> uninstall t) f

let frames t = t.frames
