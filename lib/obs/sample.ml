module Rng = Fbufs_sim.Rng

module Head = struct
  type t = { base : Rng.t; denom : int }

  let create ~seed ~denom =
    if denom <= 0 then invalid_arg "Head.create: denom must be positive";
    { base = Rng.create seed; denom }

  (* FNV-1a, so label-keyed decisions are stable across runs and OCaml
     versions (Hashtbl.hash promises neither). *)
  let fnv1a s =
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff)
      s;
    !h

  let keep t ~path ~label =
    t.denom = 1
    ||
    let key = if path <> 0 then path else fnv1a label lor 0x40000000 in
    (* [fork] does not advance [base], so decisions are order-free. *)
    Rng.int (Rng.fork t.base key) t.denom = 0
end

module Reservoir = struct
  type 'a slot = { key : float; seq : int; item : 'a }

  (* A-ExpJ over a binary min-heap: once the reservoir is full, a
     pre-drawn weight budget [skip] decides how much total weight
     passes untouched before the next replacement, so the common case
     per offer is one subtraction and one comparison — no RNG draw, no
     transcendental, no scan. Replacements (expected k·ln(n/k) over a
     run) pay the O(log k) sift. *)
  type 'a t = {
    rng : Rng.t;
    slots : 'a slot option array;  (* min-heap by key over [0, filled) *)
    mutable filled : int;
    mutable offered : int;
    mutable skip : float;  (* weight left to pass before the next replacement *)
  }

  let create ~seed ~k =
    if k <= 0 then invalid_arg "Reservoir.create: k must be positive";
    {
      rng = Rng.create seed;
      slots = Array.make k None;
      filled = 0;
      offered = 0;
      skip = 0.0;
    }

  let key_at t i = match t.slots.(i) with Some s -> s.key | None -> infinity

  let swap t i j =
    let tmp = t.slots.(i) in
    t.slots.(i) <- t.slots.(j);
    t.slots.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if key_at t i < key_at t p then begin
        swap t i p;
        sift_up t p
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let s = ref i in
    if l < t.filled && key_at t l < key_at t !s then s := l;
    if r < t.filled && key_at t r < key_at t !s then s := r;
    if !s <> i then begin
      swap t i !s;
      sift_down t !s
    end

  (* u in (0,1]: avoid u = 0, which would collapse every weight. *)
  let u01 t = 1.0 -. Rng.float t.rng 1.0

  let draw_skip t =
    (* Threshold is the smallest retained key; clamp away from 1 so the
       log below cannot vanish when a key drew exactly 1. *)
    let tw = Float.min (key_at t 0) (1.0 -. 1e-12) in
    t.skip <- Float.log (u01 t) /. Float.log tw

  (* Inverted entry point for a hot emission path: the CALLER owns the
     skip budget (decrementing it by each event's weight inline, with
     no call and no allocation) and only invokes [accept_weighted] when
     the budget reaches zero — i.e. when the item is retained. Returns
     the next skip budget: 0.0 while the reservoir is still filling (so
     every item is an acceptance), the freshly drawn A-ExpJ skip after
     that. The RNG draw sequence is identical to eager per-item A-Res,
     so the retained set matches what [offer] alone would keep. *)
  let accept_weighted t ~weight item =
    t.offered <- t.offered + 1;
    let w = Float.max weight 1e-9 in
    let k = Array.length t.slots in
    if t.filled < k then begin
      (* u^(1/w) as exp(log u / w): one log + one exp beats pow's
         extended-precision path, and keys only order the heap. *)
      let key = Float.exp (Float.log (u01 t) /. w) in
      t.slots.(t.filled) <- Some { key; seq = t.offered; item };
      t.filled <- t.filled + 1;
      sift_up t (t.filled - 1);
      if t.filled = k then draw_skip t else t.skip <- 0.0;
      t.skip
    end
    else begin
      (* Replace the minimum; the new key is drawn from (Tw^w, 1] so
         the retained set is distributed exactly as A-Res would have
         it (Efraimidis & Spirakis, A-ExpJ). *)
      let tw = Float.min (key_at t 0) (1.0 -. 1e-12) in
      let lo = Float.exp (w *. Float.log tw) in
      let u = lo +. ((1.0 -. lo) *. u01 t) in
      let key = Float.exp (Float.log u /. w) in
      t.slots.(0) <- Some { key; seq = t.offered; item };
      sift_down t 0;
      draw_skip t;
      t.skip
    end

  let offer t ~weight item =
    let w = Float.max weight 1e-9 in
    if t.filled < Array.length t.slots then
      ignore (accept_weighted t ~weight:w item)
    else begin
      t.skip <- t.skip -. w;
      if t.skip <= 0.0 then ignore (accept_weighted t ~weight:w item)
    end

  let offered t = t.offered

  let items t =
    Array.to_list (Array.sub t.slots 0 t.filled)
    |> List.filter_map Fun.id
    |> List.sort (fun a b -> compare a.seq b.seq)
    |> List.map (fun s -> s.item)
end
