(** Causal span sink: per-transfer span trees on the simulated timeline.

    A {e transfer} is one end-to-end movement of application data — a
    message pushed into the stack, its PDUs on the wire, their delivery,
    the acknowledgement. Within one machine spans nest (parent/child);
    across machines and asynchrony boundaries they link with follows-from
    edges ({!adopt}, {!flight}). Every {!Fbufs_sim.Machine.charge} that
    arrives while a span is open on the charging machine lands in that
    innermost span, attributed to its Table 1 component, so the spans of
    a transfer partition its cost by construction.

    Accounting is integer nanoseconds: each charge is rounded exactly
    once and the same integer feeds the span cell, the transfer cell and
    the machine arrival counter, so the exactness invariants verified by
    {!check} (and relied on by the critical-path report) hold with zero
    tolerance. The sink never charges, draws randomness or reads clocks —
    callers supply timestamps — so attaching it perturbs nothing. *)

val ncomp : int
(** Number of cost components; charge arrays are indexed by
    {!Fbufs_metrics.Component.index}. *)

val ns_of_us : float -> int
(** Round a simulated-microsecond amount to integer nanoseconds — the
    single rounding point of the whole accounting scheme. *)

val us_of_ns : int -> float

val wire : string
(** Pseudo-machine charged with wire occupancy ({!flight} spans):
    serialization and propagation consume link time, not any CPU. *)

type span = {
  id : int;
  transfer : int;
  parent : int;  (** 0 = none (root or adopted) *)
  follows : int;  (** 0 = none; may cross transfers at a root *)
  kind : string;
  machine : string;
  domain : string;
  path_id : int;
  start_us : float;
  mutable end_us : float;  (** nan while open *)
  charges_ns : int array;  (** per-component, {!Fbufs_metrics.Component.index} *)
}

type transfer = {
  tid : int;
  label : string;
  root : int;  (** root span id *)
  t_start_us : float;
  cells_ns : int array;  (** per-component total of every charge in context *)
  mutable spans : span list;  (** newest first; use {!spans_of} *)
}

type t

val create : unit -> t

(** {1 Recording} — driven by {!Fbufs_sim.Machine}; timestamps are the
    charging machine's simulated clock. Span/transfer id 0 means "none"
    and is ignored everywhere, so call sites need no guards. *)

val transfer_begin :
  t ->
  machine:string ->
  ts_us:float ->
  ?domain:string ->
  ?path_id:int ->
  string ->
  int
(** Open a transfer (and its root span) on [machine]; returns the
    transfer id. If another span is already open on the machine, the new
    root records a follows-from edge to it (cross-transfer causality:
    e.g. the ack handler pumping the next message). *)

val transfer_end : t -> machine:string -> ts_us:float -> int -> unit
(** Close the transfer's root span and restore the previous context.
    Spans left open inside it are force-closed and reported by
    {!check}. *)

val enter :
  t ->
  machine:string ->
  ts_us:float ->
  ?domain:string ->
  ?path_id:int ->
  string ->
  int
(** Open a child of the innermost open span. Returns 0 (records
    nothing) when the machine has no transfer context — span coverage is
    transfer-scoped by design. *)

val finish : t -> machine:string -> ts_us:float -> int -> unit
(** Close an open span (id 0 ignored). Closing out of stack order
    force-closes the intermediates and reports them via {!check}. *)

val adopt :
  t ->
  machine:string ->
  ts_us:float ->
  transfer:int ->
  ?follows:int ->
  ?domain:string ->
  ?path_id:int ->
  string ->
  int
(** Continue a transfer on this machine (parentless span with a
    follows-from edge, default the transfer's root): the receive side of
    a cross-machine delivery. Saves and restores the machine's previous
    context like any other span. *)

val flight :
  t ->
  transfer:int ->
  follows:int ->
  start_us:float ->
  end_us:float ->
  ?path_id:int ->
  string ->
  int
(** Record an already-closed wire-occupancy span on the {!wire}
    pseudo-machine, charged to [Net] for its full duration
    (serialization + propagation). Returns its id for the delivery side
    to follow. *)

val on_charge : t -> machine:string -> comp:Fbufs_metrics.Component.t -> float -> unit
(** Attribute one charge (microseconds) to the innermost open span of
    [machine] — or to the machine's untracked cells when no span is
    open. *)

val context : t -> machine:string -> int * int
(** [(transfer id, innermost open span id)], 0 when absent. *)

val current : t -> machine:string -> int
(** The machine's current transfer id (0 when none). *)

val set_tap : t -> (transfer -> unit) option -> unit
(** Install (or clear) a callback fired by {!transfer_end} with the
    completed transfer, after its root span closes. Late adoptions (an
    ack continuing the transfer after the root closed) are not yet in
    [spans] when the tap fires. Used by the flight recorder's head
    sampler; [None] by default, costing one pointer compare per close. *)

val forget : t -> int -> unit
(** Evict a transfer and its spans from the sink, bounding memory for
    long recording runs. The tid is remembered so late operations on it
    ({!adopt}, {!flight}, {!transfer_end}) silently return 0 instead of
    recording a violation. Machine arrival counters are untouched, so
    {!check}'s charge-partition invariants are no longer meaningful on a
    sink that has forgotten transfers (a recorder sink is lossy by
    design). Unknown tids are ignored. *)

(** {1 Queries} *)

val transfers : t -> transfer list
(** In creation order. *)

val find_transfer : t -> int -> transfer option
val find_span : t -> int -> span option

val spans_of : transfer -> span list
(** In creation (id) order. *)

val machines : t -> string list
(** Every machine that charged or opened spans, in first-seen order;
    includes {!wire} when flights were recorded. *)

val untracked_ns : t -> machine:string -> int array
(** Per-component charges that arrived with no span open (a fresh
    copy). *)

val charged_ns : t -> machine:string -> int
(** Every nanosecond that arrived on the machine, in arrival order. *)

val charge_count : t -> machine:string -> int
(** Number of charges the machine delivered — bounds the accumulated
    rounding distance to the float ledger (half a nanosecond each). *)

val total_ns : transfer -> int
val span_total_ns : span -> int
val is_closed : span -> bool

val violations : t -> string list
(** Discipline breaches observed while recording (mismatched finish,
    unknown ids), oldest first. *)

val check : t -> string list
(** Well-formedness: every span finished; exactly one causal root per
    transfer; parents and follows edges resolve (parents within the
    transfer, children's intervals inside the parent's); per component,
    span charges sum {e exactly} to the transfer cells; per machine,
    span charges plus untracked charges equal the arrival total. Empty
    list = well-formed. Includes {!violations}. *)
