module Json = Fbufs_trace.Json
module Comp = Fbufs_metrics.Component

(* Exporters for recorded span trees.

   Chrome trace_event: each machine becomes a pid, each domain a tid,
   spans become "X" complete events and follows-from edges become flow
   event pairs ("s" at the source, "f"/bp:"e" at the destination), so
   about:tracing / Perfetto draws the causal arrows across machines.

   JSONL: one self-contained object per line — a "transfer" line then
   its "span" lines — with a round-trip parser used by the tests and by
   external tooling that wants the raw trees. *)

let ns_list a = Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a))

let float_or_null f = if Float.is_nan f then Json.Null else Json.Float f

(* -- Chrome trace_event ------------------------------------------------- *)

let chrome t =
  let pids = Hashtbl.create 8 in
  let tids = Hashtbl.create 8 in
  let meta = ref [] in
  let pid_of machine =
    match Hashtbl.find_opt pids machine with
    | Some p -> p
    | None ->
        let p = Hashtbl.length pids + 1 in
        Hashtbl.add pids machine p;
        meta :=
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", Json.Int p);
              ("args", Json.Obj [ ("name", Json.String machine) ]);
            ]
          :: !meta;
        p
  in
  let tid_of machine domain =
    let key = (machine, domain) in
    match Hashtbl.find_opt tids key with
    | Some i -> i
    | None ->
        let i =
          1
          + Hashtbl.fold
              (fun (m, _) _ acc -> if m = machine then acc + 1 else acc)
              tids 0
        in
        Hashtbl.add tids key i;
        let pid = pid_of machine in
        meta :=
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int i);
              ( "args",
                Json.Obj
                  [
                    ( "name",
                      Json.String (if domain = "" then machine else domain) );
                  ] );
            ]
          :: !meta;
        i
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  List.iter
    (fun (tr : Span.transfer) ->
      List.iter
        (fun (sp : Span.span) ->
          let pid = pid_of sp.Span.machine in
          let tid = tid_of sp.Span.machine sp.Span.domain in
          let dur =
            if Span.is_closed sp then sp.Span.end_us -. sp.Span.start_us
            else 0.0
          in
          let args =
            ("transfer", Json.Int sp.Span.transfer)
            :: ("span", Json.Int sp.Span.id)
            :: ("charged_us", Json.Float (Span.us_of_ns (Span.span_total_ns sp)))
            :: List.concat_map
                 (fun comp ->
                   let ns = sp.Span.charges_ns.(Comp.index comp) in
                   if ns = 0 then []
                   else [ (Comp.label comp, Json.Float (Span.us_of_ns ns)) ])
                 Comp.all
          in
          emit
            (Json.Obj
               [
                 ("name", Json.String sp.Span.kind);
                 ("cat", Json.String "span");
                 ("ph", Json.String "X");
                 ("ts", Json.Float sp.Span.start_us);
                 ("dur", Json.Float dur);
                 ("pid", Json.Int pid);
                 ("tid", Json.Int tid);
                 ("args", Json.Obj args);
               ]);
          if sp.Span.follows <> 0 then
            match Span.find_span t sp.Span.follows with
            | None -> ()
            | Some src ->
                let spid = pid_of src.Span.machine in
                let stid = tid_of src.Span.machine src.Span.domain in
                let sts =
                  if Span.is_closed src then src.Span.end_us
                  else src.Span.start_us
                in
                emit
                  (Json.Obj
                     [
                       ("name", Json.String "follows");
                       ("cat", Json.String "flow");
                       ("ph", Json.String "s");
                       ("id", Json.Int sp.Span.id);
                       ("ts", Json.Float sts);
                       ("pid", Json.Int spid);
                       ("tid", Json.Int stid);
                     ]);
                emit
                  (Json.Obj
                     [
                       ("name", Json.String "follows");
                       ("cat", Json.String "flow");
                       ("ph", Json.String "f");
                       ("bp", Json.String "e");
                       ("id", Json.Int sp.Span.id);
                       ("ts", Json.Float sp.Span.start_us);
                       ("pid", Json.Int pid);
                       ("tid", Json.Int tid);
                     ]))
        (Span.spans_of tr))
    (Span.transfers t);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !meta @ List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.to_buffer buf (chrome t);
      Buffer.output_buffer oc buf;
      output_char oc '\n')

(* -- JSONL -------------------------------------------------------------- *)

let transfer_line (tr : Span.transfer) =
  Json.Obj
    [
      ("type", Json.String "transfer");
      ("tid", Json.Int tr.Span.tid);
      ("label", Json.String tr.Span.label);
      ("root", Json.Int tr.Span.root);
      ("start_us", Json.Float tr.Span.t_start_us);
      ("cells_ns", ns_list tr.Span.cells_ns);
    ]

let span_line (sp : Span.span) =
  Json.Obj
    [
      ("type", Json.String "span");
      ("id", Json.Int sp.Span.id);
      ("transfer", Json.Int sp.Span.transfer);
      ("parent", Json.Int sp.Span.parent);
      ("follows", Json.Int sp.Span.follows);
      ("kind", Json.String sp.Span.kind);
      ("machine", Json.String sp.Span.machine);
      ("domain", Json.String sp.Span.domain);
      ("path_id", Json.Int sp.Span.path_id);
      ("start_us", Json.Float sp.Span.start_us);
      ("end_us", float_or_null sp.Span.end_us);
      ("charges_ns", ns_list sp.Span.charges_ns);
    ]

let jsonl_of_transfers trs =
  let buf = Buffer.create 65536 in
  List.iter
    (fun (tr : Span.transfer) ->
      Json.to_buffer buf (transfer_line tr);
      Buffer.add_char buf '\n';
      List.iter
        (fun sp ->
          Json.to_buffer buf (span_line sp);
          Buffer.add_char buf '\n')
        (Span.spans_of tr))
    trs;
  Buffer.contents buf

let jsonl t = jsonl_of_transfers (Span.transfers t)

let write_jsonl path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (jsonl t))

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let get name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let int_field name j =
  match get name j with Json.Int i -> i | _ -> fail "field %S: not an int" name

let str_field name j =
  match get name j with
  | Json.String s -> s
  | _ -> fail "field %S: not a string" name

let num_field name j =
  match get name j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | Json.Null -> Float.nan
  | _ -> fail "field %S: not a number" name

let ns_field name j =
  match get name j with
  | Json.List l ->
      if List.length l <> Span.ncomp then
        fail "field %S: expected %d components" name Span.ncomp;
      let a = Array.make Span.ncomp 0 in
      List.iteri
        (fun i v ->
          match v with
          | Json.Int n -> a.(i) <- n
          | _ -> fail "field %S: not an int array" name)
        l;
      a
  | _ -> fail "field %S: not a list" name

let parse_jsonl text =
  let transfers = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      if String.trim line <> "" then begin
        let j =
          try Json.parse line
          with Json.Parse_error m -> fail "line %d: %s" (lineno + 1) m
        in
        match str_field "type" j with
        | "transfer" ->
            let tr : Span.transfer =
              {
                Span.tid = int_field "tid" j;
                label = str_field "label" j;
                root = int_field "root" j;
                t_start_us = num_field "start_us" j;
                cells_ns = ns_field "cells_ns" j;
                spans = [];
              }
            in
            transfers := tr :: !transfers
        | "span" -> (
            let sp : Span.span =
              {
                Span.id = int_field "id" j;
                transfer = int_field "transfer" j;
                parent = int_field "parent" j;
                follows = int_field "follows" j;
                kind = str_field "kind" j;
                machine = str_field "machine" j;
                domain = str_field "domain" j;
                path_id = int_field "path_id" j;
                start_us = num_field "start_us" j;
                end_us = num_field "end_us" j;
                charges_ns = ns_field "charges_ns" j;
              }
            in
            match
              List.find_opt
                (fun (tr : Span.transfer) -> tr.Span.tid = sp.Span.transfer)
                !transfers
            with
            | Some tr -> tr.Span.spans <- sp :: tr.Span.spans
            | None ->
                fail "line %d: span #%d references unknown transfer #%d"
                  (lineno + 1) sp.Span.id sp.Span.transfer)
        | other -> fail "line %d: unknown record type %S" (lineno + 1) other
      end)
    lines;
  List.rev !transfers
