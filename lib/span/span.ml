module Comp = Fbufs_metrics.Component

(* Causal span sink.

   One transfer = one end-to-end movement of application data (a message
   pushed into the stack, its PDUs, their delivery, the acknowledgement).
   Spans nest within a machine (parent/child) and link across machines
   and asynchrony boundaries (follows-from). Every simulated-microsecond
   charge lands in the innermost open span of the charging machine, so
   span charges partition the transfer's cost by construction.

   Accounting is integer nanoseconds: each charge is rounded once
   ([ns_of_us]) and the same integer is added to the span cell, the
   transfer cell and the machine arrival counter. Integer addition is
   associative, so the exactness invariants the checker and the report
   rely on — span charges sum to the transfer total, transfer totals plus
   untracked charges sum to the machine total — hold with zero tolerance
   while remaining real checks of the bookkeeping, not float luck. *)

let ncomp = List.length Comp.all
let ns_of_us us = int_of_float (Float.round (us *. 1000.0))
let us_of_ns ns = float_of_int ns /. 1000.0

(* Pseudo-machine name charged with wire occupancy ({!flight} spans):
   serialization and propagation consume link time, not any CPU. *)
let wire = "wire"

type span = {
  id : int;
  transfer : int;
  parent : int;  (* 0 = none (root or adopted) *)
  follows : int;  (* 0 = none; may cross transfers at a root *)
  kind : string;
  machine : string;
  domain : string;
  path_id : int;
  start_us : float;
  mutable end_us : float;  (* nan while open *)
  charges_ns : int array;
}

type transfer = {
  tid : int;
  label : string;
  root : int;
  t_start_us : float;
  cells_ns : int array;
  mutable spans : span list;  (* newest first; [spans_of] reverses *)
}

(* Per-machine dynamic state: the open-span stack and the current
   transfer context. Each stack entry remembers the context to restore
   when it pops, which makes nesting transfers and adopting foreign
   contexts the same save/restore motion. *)
type mctx = {
  mutable stack : (span * int) list;
  mutable ctx : int;  (* current transfer id; 0 = none *)
  untracked_ns : int array;
  mutable charged_ns : int;
  mutable ncharges : int;
}

type t = {
  mutable next_id : int;
  transfers : (int, transfer) Hashtbl.t;
  mutable torder : int list;  (* newest first *)
  by_id : (int, span) Hashtbl.t;
  machines : (string, mctx) Hashtbl.t;
  mutable morder : string list;  (* newest first *)
  mutable violations : string list;  (* discipline breaches seen online *)
  mutable tap : (transfer -> unit) option;
  forgotten : (int, unit) Hashtbl.t;  (* tids evicted by {!forget} *)
  (* one-entry context cache: charges arrive machine-by-machine in long
     runs, and [Machine.t] passes the same name string every time, so a
     physical-equality hit skips the hashtable on the per-charge path *)
  mutable cached_name : string;
  mutable cached_mc : mctx option;
}

let create () =
  {
    next_id = 1;
    transfers = Hashtbl.create 64;
    torder = [];
    by_id = Hashtbl.create 256;
    machines = Hashtbl.create 8;
    morder = [];
    violations = [];
    tap = None;
    forgotten = Hashtbl.create 64;
    cached_name = "";
    cached_mc = None;
  }

let set_tap t f = t.tap <- f

let fresh t =
  let i = t.next_id in
  t.next_id <- i + 1;
  i

let mctx_slow t machine =
  match Hashtbl.find_opt t.machines machine with
  | Some mc ->
      t.cached_name <- machine;
      t.cached_mc <- Some mc;
      mc
  | None ->
      let mc =
        {
          stack = [];
          ctx = 0;
          untracked_ns = Array.make ncomp 0;
          charged_ns = 0;
          ncharges = 0;
        }
      in
      Hashtbl.add t.machines machine mc;
      t.morder <- machine :: t.morder;
      t.cached_name <- machine;
      t.cached_mc <- Some mc;
      mc

let mctx t machine =
  if t.cached_name == machine then
    match t.cached_mc with Some mc -> mc | None -> mctx_slow t machine
  else mctx_slow t machine

let violate t fmt = Printf.ksprintf (fun s -> t.violations <- s :: t.violations) fmt

let add_span t tr sp =
  Hashtbl.add t.by_id sp.id sp;
  tr.spans <- sp :: tr.spans

let push t mc tr sp =
  add_span t tr sp;
  mc.stack <- (sp, mc.ctx) :: mc.stack;
  mc.ctx <- sp.transfer

let transfer_begin t ~machine ~ts_us ?(domain = "") ?(path_id = 0) label =
  let mc = mctx t machine in
  let tid = fresh t in
  let rid = fresh t in
  (* A transfer opened while another span is on CPU (the ack handler
     pumping the next message) is caused by it: record a follows edge at
     the new root so cross-transfer causality survives extraction. *)
  let follows = match mc.stack with (top, _) :: _ -> top.id | [] -> 0 in
  let root =
    {
      id = rid;
      transfer = tid;
      parent = 0;
      follows;
      kind = label;
      machine;
      domain;
      path_id;
      start_us = ts_us;
      end_us = Float.nan;
      charges_ns = Array.make ncomp 0;
    }
  in
  let tr =
    {
      tid;
      label;
      root = rid;
      t_start_us = ts_us;
      cells_ns = Array.make ncomp 0;
      spans = [];
    }
  in
  Hashtbl.add t.transfers tid tr;
  t.torder <- tid :: t.torder;
  push t mc tr root;
  tid

let pop_one mc ~ts_us =
  match mc.stack with
  | [] -> None
  | (sp, restore) :: rest ->
      sp.end_us <- ts_us;
      mc.stack <- rest;
      mc.ctx <- restore;
      Some sp

let transfer_end t ~machine ~ts_us tid =
  if tid <> 0 then begin
    let mc = mctx t machine in
    match Hashtbl.find_opt t.transfers tid with
    | None ->
        if not (Hashtbl.mem t.forgotten tid) then
          violate t "transfer_end: unknown transfer #%d" tid
    | Some tr ->
        if
          not
            (List.exists (fun ((sp : span), _) -> sp.id = tr.root) mc.stack)
        then
          violate t "transfer_end: root span of transfer #%d not open on %s"
            tid machine
        else begin
          let rec drain () =
            match pop_one mc ~ts_us with
            | None -> ()
            | Some sp ->
                if sp.id <> tr.root then begin
                  violate t
                    "transfer_end: span #%d (%s) still open inside transfer \
                     #%d"
                    sp.id sp.kind tid;
                  drain ()
                end
          in
          drain ();
          match t.tap with Some f -> f tr | None -> ()
        end
  end

let enter t ~machine ~ts_us ?(domain = "") ?(path_id = 0) kind =
  let mc = mctx t machine in
  if mc.ctx = 0 then 0
  else begin
    let parent = match mc.stack with (top, _) :: _ -> top.id | [] -> 0 in
    let sp =
      {
        id = fresh t;
        transfer = mc.ctx;
        parent;
        follows = 0;
        kind;
        machine;
        domain;
        path_id;
        start_us = ts_us;
        end_us = Float.nan;
        charges_ns = Array.make ncomp 0;
      }
    in
    let tr = Hashtbl.find t.transfers mc.ctx in
    push t mc tr sp;
    sp.id
  end

let finish t ~machine ~ts_us id =
  if id <> 0 then begin
    let mc = mctx t machine in
    if not (List.exists (fun ((sp : span), _) -> sp.id = id) mc.stack) then
      violate t "finish: span #%d is not open on %s" id machine
    else
      let rec drain () =
        match pop_one mc ~ts_us with
        | None -> ()
        | Some sp ->
            if sp.id <> id then begin
              violate t "finish: span #%d closed while #%d (%s) still open"
                id sp.id sp.kind;
              drain ()
            end
      in
      drain ()
  end

let adopt t ~machine ~ts_us ~transfer ?(follows = 0) ?(domain = "")
    ?(path_id = 0) kind =
  if transfer = 0 then 0
  else
    match Hashtbl.find_opt t.transfers transfer with
    | None ->
        if not (Hashtbl.mem t.forgotten transfer) then
          violate t "adopt: unknown transfer #%d" transfer;
        0
    | Some tr ->
        let mc = mctx t machine in
        let follows = if follows <> 0 then follows else tr.root in
        let sp =
          {
            id = fresh t;
            transfer;
            parent = 0;
            follows;
            kind;
            machine;
            domain;
            path_id;
            start_us = ts_us;
            end_us = Float.nan;
            charges_ns = Array.make ncomp 0;
          }
        in
        push t mc tr sp;
        sp.id

let flight t ~transfer ~follows ~start_us ~end_us ?(path_id = 0) kind =
  if transfer = 0 then 0
  else
    match Hashtbl.find_opt t.transfers transfer with
    | None ->
        if not (Hashtbl.mem t.forgotten transfer) then
          violate t "flight: unknown transfer #%d" transfer;
        0
    | Some tr ->
        let sp =
          {
            id = fresh t;
            transfer;
            parent = 0;
            follows = (if follows <> 0 then follows else tr.root);
            kind;
            machine = wire;
            domain = "";
            path_id;
            start_us;
            end_us;
            charges_ns = Array.make ncomp 0;
          }
        in
        let ns = ns_of_us (end_us -. start_us) in
        let i = Comp.index Comp.Net in
        sp.charges_ns.(i) <- ns;
        tr.cells_ns.(i) <- tr.cells_ns.(i) + ns;
        let mc = mctx t wire in
        mc.charged_ns <- mc.charged_ns + ns;
        mc.ncharges <- mc.ncharges + 1;
        add_span t tr sp;
        sp.id

let on_charge t ~machine ~comp us =
  let mc = mctx t machine in
  let ns = ns_of_us us in
  mc.charged_ns <- mc.charged_ns + ns;
  mc.ncharges <- mc.ncharges + 1;
  let i = Comp.index comp in
  match mc.stack with
  | (sp, _) :: _ ->
      sp.charges_ns.(i) <- sp.charges_ns.(i) + ns;
      let tr = Hashtbl.find t.transfers sp.transfer in
      tr.cells_ns.(i) <- tr.cells_ns.(i) + ns
  | [] -> mc.untracked_ns.(i) <- mc.untracked_ns.(i) + ns

let forget t tid =
  match Hashtbl.find_opt t.transfers tid with
  | None -> ()
  | Some tr ->
      List.iter (fun (sp : span) -> Hashtbl.remove t.by_id sp.id) tr.spans;
      Hashtbl.remove t.transfers tid;
      t.torder <- List.filter (fun i -> i <> tid) t.torder;
      Hashtbl.replace t.forgotten tid ()

let context t ~machine =
  match Hashtbl.find_opt t.machines machine with
  | None -> (0, 0)
  | Some mc ->
      (mc.ctx, match mc.stack with (sp, _) :: _ -> sp.id | [] -> 0)

let current t ~machine = fst (context t ~machine)

(* -- queries ----------------------------------------------------------- *)

let transfers t =
  List.rev_map (fun tid -> Hashtbl.find t.transfers tid) t.torder

let find_transfer t tid = Hashtbl.find_opt t.transfers tid
let find_span t id = Hashtbl.find_opt t.by_id id
let spans_of tr = List.rev tr.spans
let machines t = List.rev t.morder

let untracked_ns t ~machine =
  match Hashtbl.find_opt t.machines machine with
  | None -> Array.make ncomp 0
  | Some mc -> Array.copy mc.untracked_ns

let charged_ns t ~machine =
  match Hashtbl.find_opt t.machines machine with
  | None -> 0
  | Some mc -> mc.charged_ns

let charge_count t ~machine =
  match Hashtbl.find_opt t.machines machine with
  | None -> 0
  | Some mc -> mc.ncharges

let total_ns tr = Array.fold_left ( + ) 0 tr.cells_ns
let span_total_ns sp = Array.fold_left ( + ) 0 sp.charges_ns
let violations t = List.rev t.violations

(* -- well-formedness ---------------------------------------------------- *)

let is_closed sp = not (Float.is_nan sp.end_us)

let check t =
  let bad = ref (violations t) in
  let err fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  Hashtbl.iter
    (fun name (mc : mctx) ->
      List.iter
        (fun ((sp : span), _) ->
          err "machine %s: span #%d (%s) never finished" name sp.id sp.kind)
        mc.stack)
    t.machines;
  List.iter
    (fun tr ->
      let spans = spans_of tr in
      (* Exactly one causal root: the transfer's own root span. Other
         parentless spans must carry a same-transfer follows edge (adopt,
         flight); the root itself may follow a span of another transfer. *)
      List.iter
        (fun sp ->
          if not (is_closed sp) then
            err "transfer #%d: span #%d (%s) unfinished" tr.tid sp.id sp.kind;
          if sp.parent = 0 && sp.id <> tr.root then begin
            match find_span t sp.follows with
            | Some f when f.transfer = tr.tid -> ()
            | Some _ | None ->
                err
                  "transfer #%d: span #%d (%s) is an orphan (no parent, no \
                   same-transfer follows)"
                  tr.tid sp.id sp.kind
          end;
          (if sp.follows <> 0 && find_span t sp.follows = None then
             err "transfer #%d: span #%d follows unknown span #%d" tr.tid
               sp.id sp.follows);
          match if sp.parent = 0 then None else find_span t sp.parent with
          | None ->
              if sp.parent <> 0 then
                err "transfer #%d: span #%d has unknown parent #%d" tr.tid
                  sp.id sp.parent
          | Some p ->
              if p.transfer <> tr.tid then
                err "transfer #%d: span #%d's parent lives in transfer #%d"
                  tr.tid sp.id p.transfer;
              if is_closed sp && is_closed p then
                if sp.start_us < p.start_us || sp.end_us > p.end_us then
                  err
                    "transfer #%d: span #%d [%.3f,%.3f] outside parent #%d \
                     [%.3f,%.3f]"
                    tr.tid sp.id sp.start_us sp.end_us p.id p.start_us
                    p.end_us)
        spans;
      (* The exactness contract: per component, span charges partition the
         transfer's cells — integer equality, zero tolerance. *)
      List.iteri
        (fun i comp ->
          let sum =
            List.fold_left (fun acc sp -> acc + sp.charges_ns.(i)) 0 spans
          in
          if sum <> tr.cells_ns.(i) then
            err "transfer #%d: %s spans sum to %d ns but cells say %d ns"
              tr.tid (Comp.label comp) sum tr.cells_ns.(i))
        Comp.all)
    (transfers t);
  (* Per machine: span charges plus untracked charges account for every
     nanosecond that arrived — nothing lost, nothing double-counted. *)
  Hashtbl.iter
    (fun name (mc : mctx) ->
      let spanned = ref 0 in
      Hashtbl.iter
        (fun _ (sp : span) ->
          if sp.machine = name then spanned := !spanned + span_total_ns sp)
        t.by_id;
      let untracked = Array.fold_left ( + ) 0 mc.untracked_ns in
      if !spanned + untracked <> mc.charged_ns then
        err
          "machine %s: spans (%d ns) + untracked (%d ns) <> charged (%d ns)"
          name !spanned untracked mc.charged_ns)
    t.machines;
  List.rev !bad
