module Comp = Fbufs_metrics.Component

(* Critical-path extraction over one transfer's span set.

   The chain is built backwards from the last-ending span. Each step
   picks the predecessor that explains why the current span started when
   it did: an explicit follows-from edge when one resolves inside the
   transfer (wire flights, adopted continuations), otherwise the
   latest-ending span that finished before this one started (sequential
   siblings), otherwise the parent (the span that was on CPU around it).
   Off-path spans report slack: how much later they could have finished
   before colliding with the next on-path start — the usual PERT notion,
   evaluated against the extracted chain. *)

type summary = {
  tr : Span.transfer;
  start_us : float;
  finish_us : float;  (* max end over the transfer's spans *)
  wall_us : float;
  path : Span.span list;  (* root-first *)
  off : (Span.span * float) list;  (* off-path spans with slack, id order *)
  on_ns : int array;  (* per-component charges of on-path spans *)
  off_ns : int array;
}

let later (a : Span.span) (b : Span.span) =
  a.Span.end_us > b.Span.end_us
  || (a.Span.end_us = b.Span.end_us && a.Span.id > b.Span.id)

let analyze t (tr : Span.transfer) =
  let spans = List.filter Span.is_closed (Span.spans_of tr) in
  match spans with
  | [] ->
      {
        tr;
        start_us = tr.Span.t_start_us;
        finish_us = tr.Span.t_start_us;
        wall_us = 0.0;
        path = [];
        off = [];
        on_ns = Array.make Span.ncomp 0;
        off_ns = Array.make Span.ncomp 0;
      }
  | first :: rest ->
      let last = List.fold_left (fun a b -> if later b a then b else a) first rest in
      let visited = Hashtbl.create 16 in
      let in_transfer id =
        match Span.find_span t id with
        | Some sp when sp.Span.transfer = tr.Span.tid -> Some sp
        | Some _ | None -> None
      in
      let pred (cur : Span.span) =
        let fresh sp = not (Hashtbl.mem visited sp.Span.id) in
        let via_follows =
          if cur.Span.follows = 0 then None
          else
            match in_transfer cur.Span.follows with
            | Some sp when fresh sp -> Some sp
            | Some _ | None -> None
        in
        match via_follows with
        | Some _ as r -> r
        | None -> (
            let before =
              List.filter
                (fun (sp : Span.span) ->
                  fresh sp && sp.Span.id <> cur.Span.id
                  && sp.Span.end_us <= cur.Span.start_us)
                spans
            in
            match before with
            | sp0 :: more ->
                Some
                  (List.fold_left (fun a b -> if later b a then b else a) sp0 more)
            | [] -> (
                if cur.Span.parent = 0 then None
                else
                  match in_transfer cur.Span.parent with
                  | Some sp when fresh sp -> Some sp
                  | Some _ | None -> None))
      in
      let rec walk acc cur =
        Hashtbl.replace visited cur.Span.id ();
        match pred cur with
        | Some p -> walk (cur :: acc) p
        | None -> cur :: acc
      in
      let path = walk [] last in
      let on_path id = List.exists (fun (sp : Span.span) -> sp.Span.id = id) path in
      let finish_us = last.Span.end_us in
      let off =
        List.filter_map
          (fun (sp : Span.span) ->
            if on_path sp.Span.id then None
            else
              let next =
                List.fold_left
                  (fun acc (p : Span.span) ->
                    if p.Span.start_us >= sp.Span.end_us then
                      match acc with
                      | Some s when s <= p.Span.start_us -> acc
                      | Some _ | None -> Some p.Span.start_us
                    else acc)
                  None path
              in
              let horizon = match next with Some s -> s | None -> finish_us in
              Some (sp, Float.max 0.0 (horizon -. sp.Span.end_us)))
          spans
      in
      let on_ns = Array.make Span.ncomp 0 in
      let off_ns = Array.make Span.ncomp 0 in
      List.iter
        (fun (sp : Span.span) ->
          let dst = if on_path sp.Span.id then on_ns else off_ns in
          Array.iteri (fun i ns -> dst.(i) <- dst.(i) + ns) sp.Span.charges_ns)
        spans;
      {
        tr;
        start_us = tr.Span.t_start_us;
        finish_us;
        wall_us = finish_us -. tr.Span.t_start_us;
        path;
        off;
        on_ns;
        off_ns;
      }

(* -- report ------------------------------------------------------------ *)

let dominant (sp : Span.span) =
  let best = ref (-1) and best_ns = ref 0 in
  Array.iteri
    (fun i ns ->
      if ns > !best_ns then begin
        best := i;
        best_ns := ns
      end)
    sp.Span.charges_ns;
  if !best < 0 then ""
  else Comp.label (List.nth Comp.all !best)

let pp_us ppf ns = Format.fprintf ppf "%.3f" (Span.us_of_ns ns)

let print_summary ppf _t (s : summary) =
  let tr = s.tr in
  Format.fprintf ppf "transfer #%d %S: wall %.3f us, charged %a us@."
    tr.Span.tid tr.Span.label s.wall_us pp_us (Span.total_ns tr);
  Format.fprintf ppf "  critical path (%d of %d spans):@." (List.length s.path)
    (List.length (Span.spans_of tr));
  List.iter
    (fun (sp : Span.span) ->
      let where =
        if sp.Span.domain = "" then sp.Span.machine
        else sp.Span.machine ^ "/" ^ sp.Span.domain
      in
      let dom = dominant sp in
      Format.fprintf ppf "    %8.3f %9.3f  %-14s %-12s %a us%s@."
        sp.Span.start_us
        (sp.Span.end_us -. sp.Span.start_us)
        sp.Span.kind where pp_us (Span.span_total_ns sp)
        (if dom = "" then "" else "  [" ^ dom ^ "]"))
    s.path;
  (match s.off with
  | [] -> ()
  | off ->
      Format.fprintf ppf "  off-path:@.";
      List.iter
        (fun ((sp : Span.span), slack) ->
          Format.fprintf ppf "    %-14s %-8s %a us charged, slack %.3f us@."
            sp.Span.kind sp.Span.machine pp_us (Span.span_total_ns sp) slack)
        off);
  Format.fprintf ppf "  components (us, on-path / off-path / total):@.";
  List.iteri
    (fun i comp ->
      let total = tr.Span.cells_ns.(i) in
      if total <> 0 || s.on_ns.(i) <> 0 || s.off_ns.(i) <> 0 then
        Format.fprintf ppf "    %-10s %a / %a / %a@." (Comp.label comp) pp_us
          s.on_ns.(i) pp_us s.off_ns.(i) pp_us total)
    Comp.all;
  let on = Array.fold_left ( + ) 0 s.on_ns in
  let off = Array.fold_left ( + ) 0 s.off_ns in
  (* The total column is the transfer's ledger charge; the printed rows
     sum to it exactly (integer cells, one rounding per charge). *)
  assert (on + off = Span.total_ns tr);
  Format.fprintf ppf "    %-10s %a / %a / %a@." "total" pp_us on pp_us off
    pp_us (on + off)

let print_report ppf ?top t =
  let all = Span.transfers t in
  let n = List.length all in
  let shown = match top with Some k -> min k n | None -> n in
  Format.fprintf ppf "== Causal spans: critical path per transfer ==@.";
  List.iteri (fun i s -> if i < shown then print_summary ppf t (analyze t s)) all;
  if shown < n then
    Format.fprintf ppf "(%d more transfer%s not shown)@." (n - shown)
      (if n - shown = 1 then "" else "s");
  if n > 0 then begin
    let sk = Fbufs_metrics.Sketch.create () in
    let charged = ref 0 in
    List.iter
      (fun tr ->
        let s = analyze t tr in
        Fbufs_metrics.Sketch.add sk s.wall_us;
        charged := !charged + Span.total_ns tr)
      all;
    Format.fprintf ppf
      "aggregate: %d transfers, charged %a us, wall us p50 %.1f p90 %.1f \
       p99 %.1f max %.1f (sketch alpha %.2f)@."
      n pp_us !charged
      (Fbufs_metrics.Sketch.quantile sk 50.0)
      (Fbufs_metrics.Sketch.quantile sk 90.0)
      (Fbufs_metrics.Sketch.quantile sk 99.0)
      (Fbufs_metrics.Sketch.max_value sk)
      (Fbufs_metrics.Sketch.alpha sk)
  end;
  (match Span.check t with
  | [] -> ()
  | bad ->
      Format.fprintf ppf "WELL-FORMEDNESS VIOLATIONS:@.";
      List.iter (fun v -> Format.fprintf ppf "  %s@." v) bad)
