(** Span-tree exporters: Chrome trace_event (with flow events for
    follows-from edges) and JSONL with a round-trip parser. *)

val chrome : Span.t -> Fbufs_trace.Json.t
(** Chrome [trace_event] document: machines map to pids, domains to
    tids, spans to ["X"] complete events (component charges in [args]),
    follows-from edges to flow-event pairs (["s"]/["f"] with
    [bp = "e"]). Loadable in about:tracing / Perfetto. *)

val write_chrome : string -> Span.t -> unit

val jsonl : Span.t -> string
(** One JSON object per line: each transfer line followed by its span
    lines, in creation order. Open spans serialize [end_us] as [null]. *)

val jsonl_of_transfers : Span.transfer list -> string
(** {!jsonl} over an explicit transfer list (e.g. the flight recorder's
    sampled root ring); output round-trips through {!parse_jsonl}. *)

val write_jsonl : string -> Span.t -> unit

exception Parse_error of string

val parse_jsonl : string -> Span.transfer list
(** Inverse of {!jsonl}: rebuilds the transfers with their spans
    attached (recording order restored by {!Span.spans_of}). Raises
    {!Parse_error} on malformed input, unknown record types, or spans
    referencing unknown transfers. *)
