(** Critical-path extraction and reporting over recorded span trees.

    For each transfer the extractor walks backwards from the last-ending
    span, at each step picking the predecessor that explains the current
    span's start time: the follows-from edge when it resolves within the
    transfer, otherwise the latest-ending span that finished before the
    current one started, otherwise the parent. Spans off the resulting
    chain carry slack — how much later each could have finished without
    pushing the next on-path start (or the transfer finish). *)

type summary = {
  tr : Span.transfer;
  start_us : float;
  finish_us : float;  (** max end over the transfer's closed spans *)
  wall_us : float;
  path : Span.span list;  (** critical path, root first *)
  off : (Span.span * float) list;  (** off-path spans with slack (us) *)
  on_ns : int array;  (** per-component charges of on-path spans *)
  off_ns : int array;  (** per-component charges of off-path spans;
                           [on_ns.(i) + off_ns.(i) = cells_ns.(i)] exactly *)
}

val analyze : Span.t -> Span.transfer -> summary

val print_summary : Format.formatter -> Span.t -> summary -> unit
(** One transfer: critical path with per-span timings and dominant
    component, off-path slack, and the component table whose on-path +
    off-path columns sum exactly to the transfer's ledger charge. *)

val print_report : Format.formatter -> ?top:int -> Span.t -> unit
(** Whole sink: per-transfer summaries (first [top] transfers when
    given), an aggregate wall-time quantile line backed by
    {!Fbufs_metrics.Sketch}, and any {!Span.check} violations. *)
