open Fbufs_sim
open Fbufs_vm
open Fbufs
module Msg = Fbufs_msg.Msg
module Mx = Fbufs_metrics.Metrics
module Comp = Fbufs_metrics.Component

let net_pdus =
  Mx.counter ~name:"fbufs_net_pdus_total"
    ~help:"PDUs handled by the Osiris adapter, by direction"
    ~labels:[ "machine"; "dir" ] ()

let net_pdu_bytes =
  Mx.histogram ~name:"fbufs_net_pdu_bytes"
    ~help:"PDU payload sizes, by direction" ~labels:[ "machine"; "dir" ] ()

let net_cells =
  Mx.counter ~name:"fbufs_net_cells_sent_total"
    ~help:"Link-level cells occupied on the wire" ~labels:[ "machine" ] ()

let net_dropped =
  Mx.counter ~name:"fbufs_net_pdus_dropped_total"
    ~help:"PDUs lost in flight (simulated CRC failures)"
    ~labels:[ "machine" ] ()

let max_cached_paths = 16

(* AAL5-style trailer bytes carried per PDU on the wire. *)
let pdu_overhead = 8

type t = {
  m : Machine.t;
  des : Des.t;
  region : Region.t;
  kernel : Pd.t;
  mutable peer : t option;
  vci_allocs : (int, Allocator.t) Hashtbl.t;
  vci_last_use : (int, float) Hashtbl.t;
  uncached : Allocator.t;
  mutable rx_handler : (vci:int -> Msg.t -> unit) option;
  mutable link_free_at : float;
  mutable cells_sent : int;
  mutable pdus_received : int;
  mutable uncached_rx : int;
  mutable loss_rate : float;
  mutable pdus_dropped : int;
  mutable evictions : int;
  hw_demux : bool;
  mutable sw_demux_copies : int;
}

let create ~m ~des ~region ~kernel ?(hw_demux = true) () =
  {
    m;
    des;
    region;
    kernel;
    peer = None;
    vci_allocs = Hashtbl.create 16;
    vci_last_use = Hashtbl.create 16;
    uncached = Allocator.default region ~owner:kernel;
    rx_handler = None;
    link_free_at = 0.0;
    cells_sent = 0;
    pdus_received = 0;
    uncached_rx = 0;
    loss_rate = 0.0;
    pdus_dropped = 0;
    evictions = 0;
    hw_demux;
    sw_demux_copies = 0;
  }

let connect a b =
  a.peer <- Some b;
  b.peer <- Some a

let machine t = t.m

(* Least-recently-used cached path (for replacement). *)
let lru_vci t =
  Hashtbl.fold
    (fun vci _ best ->
      let used =
        match Hashtbl.find_opt t.vci_last_use vci with
        | Some u -> u
        | None -> 0.0
      in
      match best with
      | Some (_, bu) when bu <= used -> best
      | Some _ | None -> Some (vci, used))
    t.vci_allocs None

let evict_path t vci =
  match Hashtbl.find_opt t.vci_allocs vci with
  | None -> ()
  | Some alloc ->
      t.evictions <- t.evictions + 1;
      Stats.incr t.m.stats "osiris.path_evicted";
      Hashtbl.remove t.vci_allocs vci;
      Hashtbl.remove t.vci_last_use vci;
      Allocator.teardown alloc

let register_path t ~vci ~domains =
  (match domains with
  | first :: _ when Pd.equal first t.kernel -> ()
  | _ ->
      invalid_arg
        "Osiris.register_path: incoming data paths originate in the kernel");
  if
    (not (Hashtbl.mem t.vci_allocs vci))
    && Hashtbl.length t.vci_allocs >= max_cached_paths
  then begin
    match lru_vci t with
    | Some (victim, _) -> evict_path t victim
    | None -> ()
  end;
  let alloc =
    Allocator.create t.region ~path:(Path.create domains)
      ~variant:Fbuf.cached_volatile ()
  in
  (match Hashtbl.find_opt t.vci_allocs vci with
  | Some old when old != alloc -> Allocator.teardown old
  | Some _ | None -> ());
  Hashtbl.replace t.vci_allocs vci alloc;
  Hashtbl.replace t.vci_last_use vci (Machine.now t.m)

let set_rx_handler t f = t.rx_handler <- Some f

let rx_allocator t ~vci = Hashtbl.find_opt t.vci_allocs vci

let set_loss_rate t r =
  if r < 0.0 || r > 1.0 then invalid_arg "Osiris.set_loss_rate";
  t.loss_rate <- r

let pdus_dropped t = t.pdus_dropped

let evictions t = t.evictions

let software_demux_copies t = t.sw_demux_copies

let cells_sent t = t.cells_sent
let pdus_received t = t.pdus_received
let uncached_rx_pdus t = t.uncached_rx

(* DMA engines address physical memory directly: no TLB, no CPU charges.
   Frames are found through the owning domain's map. *)
let dma_gather t msg =
  let ps = t.m.Machine.cost.Cost_model.page_size in
  let out = Bytes.create (Msg.length msg) in
  let pos = ref 0 in
  List.iter
    (fun (l : Msg.leaf) ->
      let orig = Fbuf.originator l.Msg.fbuf in
      let rec copy vaddr remaining =
        if remaining > 0 then begin
          let off = vaddr mod ps in
          let seg = min remaining (ps - off) in
          (match Vm_map.frame_of orig.Pd.map ~vpn:(vaddr / ps) with
          | Some f -> Bytes.blit (Phys_mem.data t.m.pmem f) off out !pos seg
          | None -> Bytes.fill out !pos seg '\000');
          pos := !pos + seg;
          copy (vaddr + seg) (remaining - seg)
        end
      in
      copy (Fbuf.vaddr l.Msg.fbuf + l.Msg.off) l.Msg.len)
    (Msg.leaves msg);
  out

let scatter_at t (fb : Fbuf.t) ~off data =
  let ps = t.m.Machine.cost.Cost_model.page_size in
  let len = Bytes.length data in
  let pos = ref 0 in
  let vaddr = ref (Fbuf.vaddr fb + off) in
  while !pos < len do
    let off = !vaddr mod ps in
    let seg = min (len - !pos) (ps - off) in
    let vpn = !vaddr / ps in
    let frame =
      match Vm_map.frame_of t.kernel.Pd.map ~vpn with
      | Some f -> f
      | None ->
          (* Reclaimed cached buffer: the driver re-pins a frame when it
             hands the buffer to the adapter. *)
          let f = Phys_mem.alloc t.m.pmem in
          Vm_map.map_frame t.kernel.Pd.map ~vpn ~frame:f
            ~prot:Prot.Read_write ~eager:true;
          f
    in
    Bytes.blit data !pos (Phys_mem.data t.m.pmem frame) off seg;
    pos := !pos + seg;
    vaddr := !vaddr + seg
  done

let dma_scatter t fb data = scatter_at t fb ~off:0 data

let deliver t ~flight ~cause ~vci data =
  let now = Des.now t.des in
  Machine.elapse_to t.m now;
  (* Continue the sender's transfer on this machine: the rx span follows
     the wire-flight span, and everything charged while the handler runs
     (interrupt, driver, demux, protocol processing, the ack) lands in
     the same causal tree. [cause] is (transfer, flight-span) — both 0
     when the sender recorded no spans. *)
  let ctid, cfsp = cause in
  let csp = Machine.span_adopt t.m ~transfer:ctid ~follows:cfsp "osiris.rx" in
  Machine.charge ~kind:"interrupt" ~comp:Comp.Net t.m
    t.m.cost.Cost_model.interrupt;
  Machine.charge ~kind:"driver.op" ~comp:Comp.Net t.m
    t.m.cost.Cost_model.driver_op;
  Stats.incr t.m.stats "osiris.rx_pdu";
  t.pdus_received <- t.pdus_received + 1;
  let len = Bytes.length data in
  (match Machine.metrics t.m with
  | None -> ()
  | Some mx ->
      let labels = [ t.m.Machine.name; "rx" ] in
      Mx.incr mx net_pdus ~labels ();
      Mx.observe mx net_pdu_bytes ~labels (float_of_int len));
  let ps = t.m.Machine.cost.Cost_model.page_size in
  let npages = max 1 ((len + ps - 1) / ps) in
  let cached_path = Hashtbl.mem t.vci_allocs vci in
  if Machine.tracing t.m then begin
    let open Fbufs_trace.Trace in
    Machine.trace_instant t.m
      ~args:
        [
          ("vci", Int vci);
          ("bytes", Int len);
          ("cached", Str (if cached_path then "yes" else "no"));
        ]
      "osiris.rx";
    if flight <> 0 then
      Machine.async_end t.m ~id:flight ~args:[ ("vci", Int vci) ] "osiris.pdu"
  end;
  if cached_path then Hashtbl.replace t.vci_last_use vci now;
  let alloc =
    match Hashtbl.find_opt t.vci_allocs vci with
    | Some a -> a
    | None ->
        t.uncached_rx <- t.uncached_rx + 1;
        Stats.incr t.m.stats "osiris.rx_uncached";
        t.uncached
  in
  let fb = Allocator.alloc alloc ~npages in
  (* Without hardware demultiplexing the adapter could only DMA into a
     fixed driver pool; choosing the per-path fbuf happens in software,
     after the fact, at the cost of one full copy of the PDU. *)
  if not t.hw_demux then begin
    t.sw_demux_copies <- t.sw_demux_copies + 1;
    Stats.incr t.m.stats "osiris.sw_demux_copy";
    Machine.charge ~kind:"osiris.sw_demux_copy" ~comp:Comp.Copy t.m
      (float_of_int len *. t.m.cost.Cost_model.copy_per_byte)
  end;
  dma_scatter t fb data;
  (* Security: an uncached buffer is built from frames recycled from
     arbitrary domains, so the slack beyond the PDU must be cleared before
     the buffer is exposed to the receiving path. Cached buffers recycle
     within one I/O data path and never pay this. *)
  let slack = (npages * ps) - len in
  if (not cached_path) && slack > 0 then begin
    Machine.charge ~kind:"osiris.slack_zero" ~comp:Comp.Zero t.m
      (float_of_int slack /. float_of_int ps
      *. t.m.cost.Cost_model.page_zero);
    Stats.incr t.m.stats "osiris.slack_zeroed";
    (* The clearing loop itself is charged above at the bzero rate; write
       the zeros through the frames directly. *)
    scatter_at t fb ~off:len (Bytes.make slack '\000')
  end;
  let msg = Msg.of_fbuf fb ~off:0 ~len in
  (match t.rx_handler with
  | Some h -> h ~vci msg
  | None -> Msg.free_all msg ~dom:t.kernel);
  Machine.span_exit t.m csp

let send_pdu t ~vci msg =
  let peer =
    match t.peer with
    | Some p -> p
    | None -> invalid_arg "Osiris.send_pdu: adapter is not connected"
  in
  (* Causal tx span; a send outside any context (driver-level retry)
     adopts the transfer stamped on the message's first fbuf. *)
  let csp =
    if not (Machine.spanning t.m) then 0
    else if Machine.current_transfer t.m <> 0 then
      Machine.span_enter t.m "osiris.tx"
    else
      let tid =
        match Msg.fbufs msg with fb :: _ -> fb.Fbuf.xfer | [] -> 0
      in
      Machine.span_adopt t.m ~transfer:tid "osiris.tx"
  in
  let ctid = Machine.current_transfer t.m in
  Machine.charge ~kind:"driver.op" ~comp:Comp.Net t.m
    t.m.cost.Cost_model.driver_op;
  Stats.incr t.m.stats "osiris.tx_pdu";
  let data = dma_gather t msg in
  let cells =
    (Bytes.length data + pdu_overhead + t.m.cost.Cost_model.cell_payload - 1)
    / t.m.cost.Cost_model.cell_payload
  in
  t.cells_sent <- t.cells_sent + cells;
  (match Machine.metrics t.m with
  | None -> ()
  | Some mx ->
      let labels = [ t.m.Machine.name; "tx" ] in
      Mx.incr mx net_pdus ~labels ();
      Mx.observe mx net_pdu_bytes ~labels (float_of_int (Bytes.length data));
      Mx.add mx net_cells ~labels:[ t.m.Machine.name ] (float_of_int cells));
  let tx_time = float_of_int cells *. Cost_model.cell_time t.m.cost in
  let start = Float.max (Machine.now t.m) t.link_free_at in
  let finish = start +. tx_time in
  t.link_free_at <- finish;
  let propagation = 1.0 in
  (* The flight id links this tx to the delivery on the peer machine; ids
     are only consumed when tracing so untraced runs are unperturbed. *)
  let flight =
    if Machine.tracing t.m then begin
      let id = Machine.fresh_id t.m in
      let open Fbufs_trace.Trace in
      Machine.trace_instant t.m
        ~args:
          [
            ("vci", Int vci);
            ("bytes", Int (Bytes.length data));
            ("cells", Int cells);
          ]
        "osiris.tx";
      Machine.async_begin t.m ~id ~args:[ ("vci", Int vci) ] "osiris.pdu";
      id
    end
    else 0
  in
  if t.loss_rate > 0.0 && Rng.float t.m.rng 1.0 < t.loss_rate then begin
    (* The cells occupy the wire but the frame is lost (CRC failure at the
       receiving adapter); nothing is delivered. *)
    t.pdus_dropped <- t.pdus_dropped + 1;
    Stats.incr t.m.stats "osiris.pdu_dropped";
    (match Machine.metrics t.m with
    | None -> ()
    | Some mx -> Mx.incr mx net_dropped ~labels:[ t.m.Machine.name ] ());
    if Machine.tracing t.m then begin
      Machine.trace_instant t.m
        ~args:[ ("vci", Fbufs_trace.Trace.Int vci) ]
        "osiris.pdu_dropped";
      Machine.async_end t.m ~id:flight "osiris.pdu"
    end;
    ignore
      (Machine.span_flight t.m ~transfer:ctid ~follows:csp ~start_us:start
         ~end_us:finish "pdu.lost")
  end
  else begin
    let fsp =
      Machine.span_flight t.m ~transfer:ctid ~follows:csp ~start_us:start
        ~end_us:(finish +. propagation) "pdu.flight"
    in
    let cause = (ctid, fsp) in
    Des.schedule t.des (finish +. propagation) (fun () ->
        deliver peer ~flight ~cause ~vci data)
  end;
  Machine.span_exit t.m csp
