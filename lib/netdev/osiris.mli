(** Simulated Osiris ATM network adapter on the TurboChannel.

    Models the hardware path of the paper's end-to-end experiments:

    - PDUs are segmented into 53-byte ATM cells (48-byte payload); the
      adapter initiates one DMA transfer per cell, so throughput is capped
      by DMA start-up latency (367 Mb/s) below the 516 Mb/s net link rate,
      and bus contention from concurrent CPU/memory traffic lowers the
      attainable rate further (285 Mb/s) — all three caps emerge from
      {!Fbufs_sim.Cost_model.cell_time}.
    - On receive, the adapter reassembles cells directly into an fbuf
      chosen by VCI: each of up to 16 recently used data paths has a queue
      of preallocated *cached* fbufs; traffic on unknown VCIs lands in
      *uncached* fbufs from the default allocator.
    - DMA moves bytes without charging CPU time; the driver pays interrupt
      and per-PDU processing costs.

    Two adapters joined by {!connect} form the null-modem configuration. *)

type t

val create :
  m:Fbufs_sim.Machine.t ->
  des:Fbufs_sim.Des.t ->
  region:Fbufs.Region.t ->
  kernel:Fbufs_vm.Pd.t ->
  ?hw_demux:bool ->
  unit ->
  t
(** [hw_demux] (default true) models the Osiris capability the paper calls
    out in section 5.2: the adapter interprets the VCI *before* the
    transfer into main memory, so each PDU is reassembled directly into
    the right per-path fbuf. With [hw_demux:false] the adapter behaves
    like a classical Ethernet device: it can only DMA into a fixed driver
    pool, and the driver must copy the PDU into the chosen fbuf after
    demultiplexing in software — "the use of cached fbufs requires a
    demultiplexing capability in the network adapter". *)

val connect : t -> t -> unit
(** Null modem: cross-wire the two adapters (both directions). *)

val machine : t -> Fbufs_sim.Machine.t

val max_cached_paths : int
(** 16, as in the paper's driver: "queues of preallocated cached fbufs for
    the 16 most recently used data paths". *)

val register_path : t -> vci:int -> domains:Fbufs_vm.Pd.t list -> unit
(** Install a queue of cached fbufs for incoming traffic on [vci], bound to
    the I/O data path [domains] (kernel first). When all
    {!max_cached_paths} slots are taken, the least recently used path is
    evicted (its allocator torn down; its future traffic falls back to
    uncached buffers until re-registered). Raises [Invalid_argument] unless
    [domains] starts with the kernel (incoming paths originate there). *)

val evictions : t -> int
(** How many cached paths have been evicted by LRU replacement. *)

val set_rx_handler : t -> (vci:int -> Fbufs_msg.Msg.t -> unit) -> unit
(** Driver upcall invoked (with interrupt and driver costs charged) when a
    PDU has been reassembled into an fbuf. The handler's domain owns the
    fbuf (kernel-originated). *)

val send_pdu : t -> vci:int -> Fbufs_msg.Msg.t -> unit
(** Transmit a PDU: charges driver processing, then schedules cell
    transmission on the shared link; the caller's CPU is not blocked while
    DMA runs. The message's buffers are not freed (the caller owns them).
    Raises [Invalid_argument] if the adapter is not connected to a peer. *)

val set_loss_rate : t -> float -> unit
(** Probability in [0, 1] that a transmitted PDU is lost on the wire (an
    ATM cell loss destroys the whole AAL5 frame). Deterministic per machine
    seed. Default 0. Raises [Invalid_argument] outside [0, 1]. *)

val pdus_dropped : t -> int

val cells_sent : t -> int
val pdus_received : t -> int

val software_demux_copies : t -> int
(** PDUs that paid the fixed-pool copy (always 0 with hardware demux). *)

val uncached_rx_pdus : t -> int
(** PDUs that arrived on unregistered VCIs (uncached fbufs). *)

val rx_allocator : t -> vci:int -> Fbufs.Allocator.t option
