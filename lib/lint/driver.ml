module F = Finding

let source_dirs = [ "lib"; "bin"; "examples"; "bench"; "test" ]

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

(* Root-relative paths of every .ml under the source dirs, sorted for a
   deterministic report order. *)
let ml_files ~root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if entry <> "" && entry.[0] <> '.' && entry <> "_build" then
            let rel' = rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then walk rel'
            else if Filename.check_suffix entry ".ml" then
              acc := rel' :: !acc)
        (Sys.readdir abs)
  in
  List.iter walk source_dirs;
  List.sort String.compare !acc

let run ~root =
  Rules.reset_registered_metrics ();
  let source =
    List.concat_map (fun rel -> Rules.lint_file ~root rel) (ml_files ~root)
  in
  let specs = List.concat_map Pathspec.verify Pathspec.builtins in
  List.sort_uniq F.compare (source @ specs)

let render_text ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." F.pp f) findings;
  Format.fprintf ppf "%d finding(s)@." (List.length findings)

let render_json ppf findings =
  Format.fprintf ppf "%s@."
    (Fbufs_trace.Json.to_string (F.list_to_json findings))

let load_baseline path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  F.list_of_string s

let unbaselined ~baseline findings =
  List.filter (fun f -> not (F.baseline_mem ~baseline f)) findings
