module F = Finding

let source_dirs = [ "lib"; "bin"; "examples"; "bench"; "test" ]

let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

(* Root-relative paths of every .ml under the source dirs, sorted for a
   deterministic report order. *)
let ml_files ~root =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if entry <> "" && entry.[0] <> '.' && entry <> "_build" then
            let rel' = rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then walk rel'
            else if Filename.check_suffix entry ".ml" then
              acc := rel' :: !acc)
        (Sys.readdir abs)
  in
  List.iter walk source_dirs;
  List.sort String.compare !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Overlapping rules can agree on a span: L4 (syntactic some-but-not-all
   paths) and C2 (interprocedural no-path leak) both anchor at the
   acquiring application, as do L1 and C3 for payload writes. When both
   fire at the same position, keep only the more precise Layer C finding.
   Filtering preserves the {!Finding.compare}-sorted order. *)
let shadowed_by = [ ("L4", "C2"); ("L1", "C3") ]

let dedup findings =
  List.filter
    (fun (f : F.t) ->
      match List.assoc_opt f.F.rule shadowed_by with
      | None -> true
      | Some by ->
          not
            (List.exists
               (fun (g : F.t) ->
                 g.F.rule = by && g.F.file = f.F.file && g.F.line = f.F.line
                 && g.F.col = f.F.col)
               findings))
    findings

let run ~root =
  Rules.reset_registered_metrics ();
  let files = ml_files ~root in
  let source = List.concat_map (fun rel -> Rules.lint_file ~root rel) files in
  (* Layer C wants every unit parsed up front: summaries span the whole
     tree even though findings are only emitted for client code. Files
     that do not parse already carry an E0 from Layer A. *)
  let units =
    List.filter_map
      (fun rel ->
        match
          Rules.parse ~file:rel ~kind:`Impl
            (read_file (Filename.concat root rel))
        with
        | Rules.Ok_impl str -> Some (rel, str)
        | _ -> None)
      files
  in
  let typestate = Typestate.lint_units units in
  let specs = List.concat_map Pathspec.verify Pathspec.builtins in
  dedup (List.sort_uniq F.compare (source @ typestate @ specs))

let render_text ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." F.pp f) findings;
  Format.fprintf ppf "%d finding(s)@." (List.length findings)

let render_json ppf findings =
  Format.fprintf ppf "%s@."
    (Fbufs_trace.Json.to_string (F.list_to_json findings))

let load_baseline path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  F.list_of_string s

let unbaselined ~baseline findings =
  List.filter (fun f -> not (F.baseline_mem ~baseline f)) findings

(* Baseline entries that no current finding matches: the debt they
   grandfathered is gone, so the entry must be deleted lest it silently
   excuse a future regression. *)
let stale_entries ~baseline findings =
  List.filter
    (fun b ->
      not (List.exists (fun f -> F.baseline_mem ~baseline:[ b ] f) findings))
    baseline
