(** SARIF 2.1.0 rendering of lint findings.

    One run, driver [fbufs_lint], the full rule table in
    [tool.driver.rules] (so viewers can document rules with no results),
    one [result] per finding with a [physicalLocation] whose region uses
    1-based lines (clamped) and 1-based columns (findings store 0-based
    columns). Emitted by [fbufs_cli lint --format sarif]; CI uploads it
    as an artifact next to the plain JSON report. *)

val rule_meta : (string * string) list
(** [(rule id, short description)] for every rule either layer emits. *)

val to_json : Finding.t list -> Fbufs_trace.Json.t
val render : Format.formatter -> Finding.t list -> unit
