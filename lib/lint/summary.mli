(** Per-function ownership summaries, computed to fixpoint over the call
    graph's SCCs.

    A summary records, for each parameter position, what the function
    (transitively) does to a handle passed there — the bits Layer C's
    caller-side typestate transitions consume — and what the result
    carries. All bits are monotone under {!join}; the return slot commits
    to its first non-[R_none] answer. *)

type param_sum = {
  consumes : bool;  (** some path relinquishes a reference *)
  sends : bool;  (** some path transfers the handle *)
  secures : bool;  (** some path secures it *)
  writes : bool;  (** some path writes the payload *)
  reads : bool;  (** some path reads the payload *)
}

type returns =
  | R_none  (** no handle, or unknown *)
  | R_fresh of { volatile : bool }  (** a handle the function allocated *)
  | R_param of int  (** parameter [i] passed through *)

type fsum = { params : param_sum array; ret : returns }

val bot_param : param_sum
val bot : nparams:int -> fsum

val join : fsum -> fsum -> fsum
val le : fsum -> fsum -> bool
(** Pointwise bit implication on the parameter summaries (ignores [ret]) —
    the order the qcheck monotonicity property checks. *)

val equal : fsum -> fsum -> bool

type table = (string, fsum) Hashtbl.t
(** Keyed by {!Callgraph.key}. *)

val find : table -> Callgraph.def -> fsum
(** The current summary, bottom when not yet computed. *)

val compute :
  Callgraph.t ->
  analyze:(Callgraph.def -> lookup:(Callgraph.def -> fsum) -> fsum) ->
  table * int
(** Run [analyze] over every definition, SCC by SCC in callees-first
    order, iterating each SCC until its summaries stop growing. [analyze]
    reads callee summaries through [lookup]. Returns the table and the
    total number of sweeps performed (bounded: summaries only grow along
    a finite lattice, and each SCC additionally carries a hard sweep
    cap). *)
