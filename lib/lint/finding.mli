(** Lint findings: one rule violation anchored to a [file:line] span.

    Shared by both analyzer layers — the source lint ({!Rules}) reports
    spans in real [.ml]/[.mli] files, the path-spec verifier ({!Pathspec})
    reports synthetic [spec/<name>] spans where the line is the 1-based
    index of the offending operation. The JSON encoding round-trips through
    {!Fbufs_trace.Json} so CI artifacts and the baseline share one
    grammar. *)

type t = {
  rule : string;  (** "L1".."L5" (source lint) or "B1".."B3" (path specs) *)
  file : string;  (** root-relative source path, or [spec/<name>] *)
  line : int;  (** 1-based; for specs, the operation index *)
  col : int;  (** 0-based column; 0 for spec findings *)
  msg : string;
}

val v : rule:string -> file:string -> line:int -> ?col:int -> string -> t

val compare : t -> t -> int
(** Order by file, then line, column, rule, message. *)

val pp : Format.formatter -> t -> unit
(** One line: [file:line:col: rule: msg]. *)

val to_json : t -> Fbufs_trace.Json.t

val of_json : Fbufs_trace.Json.t -> t
(** Raises [Invalid_argument] on a value not shaped like {!to_json}
    output. *)

val list_to_json : t list -> Fbufs_trace.Json.t

val list_of_string : string -> t list
(** Parse a JSON array of findings (the baseline / artifact format).
    Raises [Invalid_argument] on malformed input, including JSON parse
    errors. *)

val baseline_mem : baseline:t list -> t -> bool
(** Baseline matching ignores [line] and [col] so an entry survives
    unrelated edits to the file: a finding is baselined when an entry with
    the same rule, file and message exists. *)
