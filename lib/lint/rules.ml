open Parsetree
module F = Finding

(* ------------------------------------------------------------------ *)
(* Rule scoping by root-relative path                                  *)

let l1_allowed = [ "lib/sim/"; "lib/vm/"; "lib/netdev/" ]
let l2_allowed = [ "lib/sim/"; "bench/"; "test/test_perf_guard.ml" ]
(* L4 targets *clients* of the transfer facility. The machinery itself —
   core semantics, the IPC/message/netdev/xkernel receive paths whose
   hand-off policies (auto_free_dst, free_after, rx_handler) make frees
   conditional by design — and the randomized state-machine property
   tests (whose balance is semantic, checked dynamically by Fbufs_check)
   are out of scope. *)
let l4_exempt =
  [
    "lib/core/"; "lib/check/"; "lib/ipc/"; "lib/msg/"; "lib/netdev/";
    "lib/xkernel/"; "test/test_properties.ml";
  ]

(* L6 targets production registrations; the metrics unit tests register
   deliberately bad and dynamic names to exercise the runtime rejection
   path. *)
let l6_exempt = [ "test/" ]

(* L7 targets *clients* of the span facility. The sink and the machine
   wrappers manipulate open spans by design (drain-on-end, adoption into
   closed transfers), the trace layer has its own span vocabulary, and
   the tests construct deliberately unbalanced trees to exercise the
   runtime violation reporting. *)
let l7_exempt = [ "lib/sim/"; "lib/span/"; "lib/trace/"; "test/" ]

let under prefixes file =
  List.exists (fun p -> String.starts_with ~prefix:p file) prefixes

(* ------------------------------------------------------------------ *)
(* Parsetree helpers                                                   *)

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

(* The flattened path of an identifier expression, with a leading
   [Stdlib.] stripped so [Stdlib.ignore] and [ignore] compare equal. *)
let ident_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | "Stdlib" :: (_ :: _ as rest) -> Some rest
      | l -> Some l
      | exception _ -> None)
  | _ -> None

let rev_path e = Option.map List.rev (ident_path e)

let contains_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  ||
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let doc_of_attr (a : attribute) =
  match a.attr_name.txt with
  | "ocaml.doc" | "doc" -> (
      match a.attr_payload with
      | PStr
          [
            {
              pstr_desc =
                Pstr_eval
                  ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
              _;
            };
          ] ->
          Some s
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* API classification (normalized module paths, matched by suffix so
   [Fbufs.Allocator.alloc], [Allocator.alloc] and local module aliases
   all count)                                                          *)

let bytes_mutators =
  [ "set"; "blit"; "fill"; "unsafe_set"; "unsafe_blit"; "unsafe_fill" ]

let is_bytes_mutator e =
  match ident_path e with
  | Some [ "Bytes"; op ] when List.mem op bytes_mutators -> Some op
  | _ -> None

let is_phys_mem_data e =
  match rev_path e with Some ("data" :: "Phys_mem" :: _) -> true | _ -> false

let is_acquire e =
  match rev_path e with
  | Some ("alloc" :: "Allocator" :: _)
  | Some ("send" :: "Transfer" :: _)
  | Some ("call" :: "Ipc" :: _)
  | Some ("make_message" :: "Testproto" :: _) ->
      true
  | _ -> false

let release_names =
  [
    "free"; "free_all"; "free_deferred"; "flush_deallocs"; "terminate_domain";
    "teardown"; "destroy_cached"; "reclaim_memory";
  ]

let is_release e =
  match rev_path e with
  | Some (last :: _) -> List.mem last release_names
  | _ -> false

let is_handle_call e =
  match rev_path e with
  | Some ("alloc" :: "Allocator" :: _)
  | Some ("of_fbuf" :: "Msg" :: _)
  | Some ("make_message" :: "Testproto" :: _) ->
      true
  | _ -> false

let nondet_msg e =
  match ident_path e with
  | Some ("Random" :: _) ->
      Some "Stdlib.Random breaks replay; use Fbufs_sim.Rng"
  | Some _ -> (
      match rev_path e with
      | Some ("gettimeofday" :: "Unix" :: _) | Some ("time" :: "Unix" :: _) ->
          Some "wall-clock time is nondeterministic; use the simulated clock"
      | Some ("time" :: "Sys" :: _) ->
          Some "Sys.time is nondeterministic; use the simulated clock"
      | Some ("hash" :: "Hashtbl" :: _)
      | Some ("hash_param" :: "Hashtbl" :: _)
      | Some ("seeded_hash" :: "Hashtbl" :: _) ->
          Some "Hashtbl.hash-dependent behavior is not stable across runs"
      | _ -> None)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type parse_result = Ok_impl of structure | Ok_intf of signature | Err of F.t

let parse ~file ~kind source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Lexer.init ();
  let err loc msg =
    let line, col = line_col loc in
    Err (F.v ~rule:"E0" ~file ~line:(max line 1) ~col msg)
  in
  try
    match kind with
    | `Impl -> Ok_impl (Parse.implementation lexbuf)
    | `Intf -> Ok_intf (Parse.interface lexbuf)
  with
  | Syntaxerr.Error e ->
      err (Syntaxerr.location_of_error e) "syntax error (file does not parse)"
  | Lexer.Error (_, loc) -> err loc "lexer error (file does not parse)"
  | _ -> err Location.none "parse failure"

(* ------------------------------------------------------------------ *)
(* L1 / L2 / L5: one full-tree pass                                    *)

let expression_pass ~file ~l1 ~l2 str =
  let found = ref [] in
  let add ~rule loc msg =
    let line, col = line_col loc in
    found := F.v ~rule ~file ~line ~col msg :: !found
  in
  let mentions_phys_data e =
    let hit = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            if is_phys_mem_data e then hit := true;
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it e;
    !hit
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              (match is_bytes_mutator f with
              | Some op
                when l1
                     && List.exists (fun (_, a) -> mentions_phys_data a) args
                ->
                  add ~rule:"L1" e.pexp_loc
                    (Printf.sprintf
                       "direct Bytes.%s on an fbuf payload (Phys_mem.data); \
                        write through the originator API (Fbuf_api/Access) \
                        or a Phys_mem helper"
                       op)
              | _ -> ());
              match (ident_path f, args) with
              | Some [ "ignore" ], [ (_, arg) ] -> (
                  match arg.pexp_desc with
                  | Pexp_apply (g, _) when is_handle_call g ->
                      add ~rule:"L5" e.pexp_loc
                        "ignored result carries an fbuf handle; the \
                         reference must be relinquished, not dropped"
                  | _ -> ())
              | _ -> ())
          | Pexp_ident _ -> (
              (match ident_path e with
              | Some [ "Obj"; "magic" ] ->
                  add ~rule:"L5" e.pexp_loc
                    "Obj.magic defeats every fbuf-discipline guarantee"
              | _ -> ());
              match nondet_msg e with
              | Some msg when l2 -> add ~rule:"L2" e.pexp_loc msg
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !found

(* ------------------------------------------------------------------ *)
(* L3: raises in exported functions must be named in the .mli doc      *)

let rec intf_docs prefix items acc =
  List.fold_left
    (fun acc it ->
      match it.psig_desc with
      | Psig_value vd ->
          let doc =
            String.concat " " (List.filter_map doc_of_attr vd.pval_attributes)
          in
          (prefix ^ vd.pval_name.txt, doc) :: acc
      | Psig_module
          {
            pmd_name = { txt = Some n; _ };
            pmd_type = { pmty_desc = Pmty_signature s; _ };
            _;
          } ->
          intf_docs (prefix ^ n ^ ".") s acc
      | _ -> acc)
    acc items

let rec impl_bindings prefix items acc =
  List.fold_left
    (fun acc it ->
      match it.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> (prefix ^ txt, vb.pvb_expr) :: acc
              | _ -> acc)
            acc vbs
      | Pstr_module
          {
            pmb_name = { txt = Some n; _ };
            pmb_expr = { pmod_desc = Pmod_structure s; _ };
            _;
          } ->
          impl_bindings (prefix ^ n ^ ".") s acc
      | _ -> acc)
    acc items

let collect_raises e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, (_, a1) :: _) -> (
              match ident_path f with
              | Some [ "raise" ] | Some [ "raise_notrace" ] -> (
                  match a1.pexp_desc with
                  | Pexp_construct ({ txt; _ }, _) ->
                      acc := (Longident.last txt, e.pexp_loc) :: !acc
                  | _ -> ())
              | Some [ "invalid_arg" ] | Some [ "Fmt"; "invalid_arg" ] ->
                  acc := ("Invalid_argument", e.pexp_loc) :: !acc
              | Some [ "failwith" ] | Some [ "Fmt"; "failwith" ] ->
                  acc := ("Failure", e.pexp_loc) :: !acc
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

let l3_pass ~file str sg =
  let docs = intf_docs "" sg [] in
  let bindings = impl_bindings "" str [] in
  List.concat_map
    (fun (name, body) ->
      match List.assoc_opt name docs with
      | None -> []
      | Some doc ->
          List.filter_map
            (fun (exc, loc) ->
              if contains_substring ~needle:exc doc then None
              else
                let line, col = line_col loc in
                Some
                  (F.v ~rule:"L3" ~file ~line ~col
                     (Printf.sprintf
                        "exported %s raises %s but the .mli doc comment \
                         does not mention it"
                        name exc)))
            (collect_raises body))
    bindings

(* ------------------------------------------------------------------ *)
(* L4: per-scope relinquish balance                                    *)

(* A scope is a function body, a lambda body or a loop body; nested
   scopes are analyzed independently (a handler lambda owns its own
   balance; a loop body balances per iteration). *)

let strip_funs e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> go body
    | _ -> e
  in
  go e

let is_scope_boundary e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_for _ | Pexp_while _ -> true
  | _ -> false

(* Shallow walk: visit every expression of the scope without entering
   nested scopes. *)
let iter_shallow on_expr e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          if is_scope_boundary e then ()
          else begin
            on_expr e;
            Ast_iterator.default_iterator.expr self e
          end);
    }
  in
  if is_scope_boundary e then () else it.expr it e

(* (definitely, possibly): does every / any syntactic exit path through
   [e] perform a call satisfying [is_rel]? Exceptional exits are treated
   optimistically (a [try] body's balance stands for the whole). *)
let rel ~is_rel e =
  let rec go e =
    let none = (false, false) in
    let all_evaluated parts =
      (List.exists fst parts, List.exists snd parts)
    in
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_for _ | Pexp_while _ | Pexp_lazy _
      ->
        none
    | Pexp_apply (f, args) ->
        let here = is_rel f in
        let d, p = all_evaluated (List.map (fun (_, a) -> go a) args) in
        (here || d, here || p)
    | Pexp_sequence (a, b) -> all_evaluated [ go a; go b ]
    | Pexp_let (_, vbs, body) ->
        all_evaluated (go body :: List.map (fun vb -> go vb.pvb_expr) vbs)
    | Pexp_ifthenelse (c, t, f) ->
        let dc, pc = go c in
        let dt, pt = go t in
        let df, pf = match f with Some f -> go f | None -> (false, false) in
        (dc || (dt && df), pc || pt || pf)
    | Pexp_match (s, cases) ->
        let ds, ps = go s in
        let rs = List.map (fun c -> go c.pc_rhs) cases in
        ( ds || (cases <> [] && List.for_all fst rs),
          ps || List.exists snd rs )
    | Pexp_try (b, cases) ->
        let db, pb = go b in
        (db, pb || List.exists (fun c -> snd (go c.pc_rhs)) cases)
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e)
    | Pexp_letexception (_, e)
    | Pexp_construct (_, Some e)
    | Pexp_variant (_, Some e)
    | Pexp_assert e
    | Pexp_field (e, _)
    | Pexp_send (e, _) ->
        go e
    | Pexp_tuple l | Pexp_array l -> all_evaluated (List.map go l)
    | Pexp_record (fields, base) ->
        all_evaluated
          (List.map (fun (_, e) -> go e) fields
          @ match base with Some b -> [ go b ] | None -> [])
    | Pexp_setfield (a, _, b) -> all_evaluated [ go a; go b ]
    | _ -> none
  in
  go e

let nested_scopes e =
  let acc = ref [] in
  let add body = acc := strip_funs body :: !acc in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_fun (_, _, _, body) -> add body
          | Pexp_function cases ->
              List.iter (fun c -> add c.pc_rhs) cases
          | Pexp_for (_, _, _, _, body) | Pexp_while (_, body) -> add body
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

(* Shared scope walk for the two balance rules: find the first [is_acq]
   call of each scope, run the definitely/possibly analysis with
   [is_rel], and let [flag] decide whether the (d, p) pair is a
   finding. *)
let rec analyze_scope ~is_acq ~is_rel ~flag ~file ~name acc e =
  let acquire = ref None in
  iter_shallow
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, _) when is_acq f && !acquire = None -> (
          match ident_path f with
          | Some p -> acquire := Some (String.concat "." p, e.pexp_loc)
          | None -> ())
      | _ -> ())
    e;
  let acc =
    match !acquire with
    | Some (fn, loc) -> (
        let d, p = rel ~is_rel e in
        match flag ~name ~fn ~d ~p with
        | Some (rule, msg) ->
            let line, col = line_col loc in
            F.v ~rule ~file ~line ~col msg :: acc
        | None -> acc)
    | None -> acc
  in
  List.fold_left
    (fun acc body ->
      analyze_scope ~is_acq ~is_rel ~flag ~file ~name:(name ^ ".<fun>") acc
        body)
    acc (nested_scopes e)

let balance_pass ~is_acq ~is_rel ~flag ~file str =
  let bindings = impl_bindings "" str [] in
  List.fold_left
    (fun acc (name, e) ->
      analyze_scope ~is_acq ~is_rel ~flag ~file ~name acc (strip_funs e))
    [] bindings

let l4_pass ~file str =
  let flag ~name ~fn ~d ~p =
    if p && not d then
      Some
        ( "L4",
          Printf.sprintf
            "%s acquires an fbuf reference via %s but relinquishes on only \
             some syntactic exit paths"
            name fn )
    else None
  in
  balance_pass ~is_acq:is_acquire ~is_rel:is_release ~flag ~file str

(* ------------------------------------------------------------------ *)
(* L7: span begin/end balance                                          *)

(* A span id obtained from any of the open-span entry points must be
   closed on every syntactic exit path of the scope that opened it — an
   unfinished span corrupts the per-machine context stack and shows up
   only later, as a drain-time violation on some unrelated transfer.
   Unlike L4, never releasing at all is also a finding: span ids are
   meaningless outside their machine, so there is no ownership
   hand-off that could justify it. Matching is by function name, so
   [Machine.span_enter] and any alias of it count alike. *)

let span_acquire_names =
  [ "span_enter"; "span_adopt"; "span_begin"; "transfer_begin" ]

let span_release_names = [ "span_exit"; "span_end"; "transfer_end" ]

let is_span_acquire e =
  match rev_path e with
  | Some (last :: _) -> List.mem last span_acquire_names
  | _ -> false

let is_span_release e =
  match rev_path e with
  | Some (last :: _) -> List.mem last span_release_names
  | _ -> false

let l7_pass ~file str =
  let flag ~name ~fn ~d ~p:_ =
    if not d then
      Some
        ( "L7",
          Printf.sprintf
            "%s opens a span via %s but does not close it on every \
             syntactic exit path"
            name fn )
    else None
  in
  balance_pass ~is_acq:is_span_acquire ~is_rel:is_span_release ~flag ~file str

(* ------------------------------------------------------------------ *)
(* L6: metric registrations                                            *)

(* A registration is an application of [counter]/[gauge]/[histogram]
   (under any module alias of [Fbufs_metrics.Metrics]) carrying both the
   [~name] and [~help] labelled arguments — the registration signature.
   Three disciplines, all static approximations of what the runtime
   registry enforces or assumes:

   - the [~name] must be a string literal (the exposition contract is
     greppable, and the runtime duplicate check is only useful if names
     are decided at compile time);
   - the literal must match [^fbufs_[a-z0-9_]+$], the namespace the
     exposition formats promise;
   - the registration must execute at module initialization, not under a
     lambda or loop — a registration that re-runs raises
     [Invalid_argument] on the second call.

   Duplicate literals are tracked across the whole lint run in
   [registered_metric_names]; {!reset_registered_metrics} clears the
   table between runs. *)

let registered_metric_names : (string, string) Hashtbl.t = Hashtbl.create 32
let reset_registered_metrics () = Hashtbl.reset registered_metric_names

let metric_name_ok s =
  let prefix = "fbufs_" in
  String.length s > String.length prefix
  && String.starts_with ~prefix s
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       s

let labelled l args =
  List.find_map
    (fun (lbl, a) ->
      match lbl with Asttypes.Labelled l' when l' = l -> Some a | _ -> None)
    args

let is_metric_registration f args =
  (match rev_path f with
  | Some (("counter" | "gauge" | "histogram" | "sketch") :: _) -> true
  | _ -> false)
  && labelled "name" args <> None
  && labelled "help" args <> None

let l6_pass ~file str =
  let found = ref [] in
  let add loc msg =
    let line, col = line_col loc in
    found := F.v ~rule:"L6" ~file ~line ~col msg :: !found
  in
  let depth = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          let nested =
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ | Pexp_for _ | Pexp_while _
            | Pexp_lazy _ ->
                true
            | _ -> false
          in
          (match e.pexp_desc with
          | Pexp_apply (f, args) when is_metric_registration f args -> (
              (if !depth > 0 then
                 add e.pexp_loc
                   "metric registered under a function or loop; \
                    registrations must run once, at module initialization");
              match labelled "name" args with
              | Some { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }
                -> (
                  if not (metric_name_ok s) then
                    add e.pexp_loc
                      (Printf.sprintf
                         "metric name %S does not match ^fbufs_[a-z0-9_]+$" s)
                  else
                    match Hashtbl.find_opt registered_metric_names s with
                    | Some first when first <> file ->
                        add e.pexp_loc
                          (Printf.sprintf
                             "metric name %S already registered in %s" s first)
                    | Some _ ->
                        add e.pexp_loc
                          (Printf.sprintf
                             "metric name %S registered twice in this unit" s)
                    | None -> Hashtbl.replace registered_metric_names s file)
              | Some arg ->
                  add arg.pexp_loc
                    "metric name must be a string literal, not a computed \
                     value"
              | None -> ())
          | _ -> ());
          if nested then begin
            incr depth;
            Ast_iterator.default_iterator.expr self e;
            decr depth
          end
          else Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  !found

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let lint_unit ~file ~impl ?intf () =
  let norm = String.map (fun c -> if c = '\\' then '/' else c) file in
  match parse ~file ~kind:`Impl impl with
  | Err f -> [ f ]
  | Ok_intf _ -> assert false
  | Ok_impl str ->
      let l1 = not (under l1_allowed norm) in
      let l2 = not (under l2_allowed norm) in
      let l4 = not (under l4_exempt norm) in
      let l6 = not (under l6_exempt norm) in
      let l7 = not (under l7_exempt norm) in
      let a = expression_pass ~file ~l1 ~l2 str in
      let b = if l4 then l4_pass ~file str else [] in
      let d = if l6 then l6_pass ~file str else [] in
      let e = if l7 then l7_pass ~file str else [] in
      let c =
        match intf with
        | None -> []
        | Some src -> (
            match parse ~file:(file ^ "i") ~kind:`Intf src with
            | Err f -> [ f ]
            | Ok_impl _ -> assert false
            | Ok_intf sg -> l3_pass ~file str sg)
      in
      List.sort_uniq F.compare (a @ b @ c @ d @ e)

let lint_file ~root rel =
  let read p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let path = Filename.concat root rel in
  let impl = read path in
  let intf =
    let i = path ^ "i" in
    if Sys.file_exists i then Some (read i) else None
  in
  lint_unit ~file:rel ~impl ?intf ()
