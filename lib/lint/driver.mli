(** Orchestration: lint the whole tree, render, apply the baseline.

    [fbufs_cli lint] calls {!run} with the repository root (found by
    walking up from the working directory to the nearest [dune-project]),
    lints every [.ml] under [lib/], [bin/], [examples/], [bench/] and
    [test/], verifies every {!Pathspec.builtins} spec, and fails on any
    finding absent from the checked-in baseline ([lint_baseline.json],
    shipped empty). *)

val source_dirs : string list
(** [lib; bin; examples; bench; test] — the roots scanned for sources. *)

val find_root : unit -> string option
(** Nearest ancestor of the working directory containing [dune-project]. *)

val run : root:string -> Finding.t list
(** All findings from both layers, sorted, duplicates removed. Skips
    [_build] and dot-directories. *)

val render_text : Format.formatter -> Finding.t list -> unit
val render_json : Format.formatter -> Finding.t list -> unit

val load_baseline : string -> Finding.t list
(** Read a baseline file. Raises [Sys_error] if unreadable or
    [Invalid_argument] if malformed. *)

val unbaselined : baseline:Finding.t list -> Finding.t list -> Finding.t list
