(** Orchestration: lint the whole tree, render, apply the baseline.

    [fbufs_cli lint] calls {!run} with the repository root (found by
    walking up from the working directory to the nearest [dune-project]),
    lints every [.ml] under [lib/], [bin/], [examples/], [bench/] and
    [test/], verifies every {!Pathspec.builtins} spec, and fails on any
    finding absent from the checked-in baseline ([lint_baseline.json],
    shipped empty). *)

val source_dirs : string list
(** [lib; bin; examples; bench; test] — the roots scanned for sources. *)

val find_root : unit -> string option
(** Nearest ancestor of the working directory containing [dune-project]. *)

val run : root:string -> Finding.t list
(** All findings from every layer — Layer A per-file rules, Layer C
    interprocedural typestate ({!Typestate.lint_units} over every unit
    that parses), {!Pathspec} checks — sorted, duplicates removed, and
    {!dedup}-filtered. Skips [_build] and dot-directories. *)

val dedup : Finding.t list -> Finding.t list
(** Drop a syntactic finding shadowed by its interprocedural refinement
    at the same [file:line:col] — L4 by C2, L1 by C3 — keeping the list's
    {!Finding.compare} order intact. {!run} applies this already. *)

val render_text : Format.formatter -> Finding.t list -> unit
val render_json : Format.formatter -> Finding.t list -> unit

val load_baseline : string -> Finding.t list
(** Read a baseline file. Raises [Sys_error] if unreadable or
    [Invalid_argument] if malformed. *)

val unbaselined : baseline:Finding.t list -> Finding.t list -> Finding.t list

val stale_entries :
  baseline:Finding.t list -> Finding.t list -> Finding.t list
(** Baseline entries no current finding matches (same rule, file and
    message — the {!Finding.baseline_mem} criterion). [fbufs_cli lint
    --baseline] treats a non-empty result as an error (exit 3): stale
    entries are deleted debt that would otherwise excuse future
    regressions. *)
