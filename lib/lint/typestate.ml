open Parsetree
module F = Finding
module SS = Set.Make (String)
module SM = Map.Make (String)

(* Layer C findings are reported only for the transfer facility's
   *clients*; the machinery itself (lib/core, lib/ipc, ...) implements
   the disciplines and would drown the report in policy-by-design
   exceptions. Summaries are still computed over every unit, so a client
   calling through machinery helpers is analyzed with their effects. *)
let client_dirs = [ "examples/"; "lib/harness/"; "lib/demo/"; "bin/"; "bench/" ]

let client_file file =
  let norm = String.map (fun c -> if c = '\\' then '/' else c) file in
  List.exists (fun p -> String.starts_with ~prefix:p norm) client_dirs

(* ------------------------------------------------------------------ *)
(* Abstract values and per-handle typestate                            *)

type value =
  | Hdl of int
  | Alloc_v of bool  (** an allocator; [true] = hands out volatile fbufs *)
  | Var_v of bool  (** an [Fbuf.variant]; [true] = volatile *)
  | Unk

(* The lattice {Fresh, Held, Sent, Secured, Freed, T}. Fresh/Held only
   differ in provenance (local allocation vs borrowed parameter); the
   rules treat them alike. *)
type phase = P_fresh | P_held | P_sent | P_secured | P_freed | P_top

type origin =
  | O_local  (** allocated in this scope (directly or via a helper) *)
  | O_borrowed of int option
      (** parameter [i]; [None] for lambda parameters *)

type hstate = {
  origin : origin;
  volatile : bool;
  oline : int;
  ocol : int;  (** allocation site (C2 anchors here) *)
  mutable phase : phase;
  mutable refs : int option;  (** outstanding references; [None] unknown *)
  mutable freed_doms : SS.t;  (** syntactic [~dom] strings already freed *)
  mutable src_dom : string option;  (** syntactic [~src] of the send *)
  mutable escaped : bool;
  mutable consumed : bool;
}

type ctx = {
  file : string;
  unit_name : string;
  cg : Callgraph.t;
  lookup : Callgraph.def -> Summary.fsum;
  emit : bool;
  findings : F.t list ref;
  handles : (int, hstate) Hashtbl.t;
  next : int ref;
  psums : Summary.param_sum array;
}

let hstate ctx id = Hashtbl.find ctx.handles id

let new_handle ctx ~origin ~volatile ~loc =
  let id = !(ctx.next) in
  incr ctx.next;
  let line, col = Rules.line_col loc in
  Hashtbl.replace ctx.handles id
    {
      origin;
      volatile;
      oline = line;
      ocol = col;
      phase = (match origin with O_local -> P_fresh | O_borrowed _ -> P_held);
      refs = (match origin with O_local -> Some 1 | O_borrowed _ -> None);
      freed_doms = SS.empty;
      src_dom = None;
      escaped = false;
      consumed = false;
    };
  Hdl id

let report ctx ~rule ~loc msg =
  if ctx.emit then begin
    let line, col = Rules.line_col loc in
    ctx.findings := F.v ~rule ~file:ctx.file ~line ~col msg :: !(ctx.findings)
  end

(* Any fbuf API reaching a dead handle is C1. *)
let use ctx ~loc h =
  if h.phase = P_freed then
    report ctx ~rule:"C1" ~loc
      "use of a dead fbuf handle (use after free): every reference was \
       relinquished"

(* Propagate an effect bit to the enclosing function's summary when the
   handle is one of its parameters. *)
let record ctx h f =
  match h.origin with
  | O_borrowed (Some i) when i < Array.length ctx.psums ->
      ctx.psums.(i) <- f ctx.psums.(i)
  | _ -> ()

(* A handle stored into a data structure, captured by a closure or passed
   to an unknown callee leaves the analysis: no further findings, no C2. *)
let escape ctx v =
  match v with
  | Hdl id ->
      let h = hstate ctx id in
      h.escaped <- true;
      h.phase <- P_top;
      h.refs <- None
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Branch-state snapshot / join                                        *)

type snap = (int * phase * int option * SS.t * string option) list

let snapshot ctx : snap =
  Hashtbl.fold
    (fun id h acc -> (id, h.phase, h.refs, h.freed_doms, h.src_dom) :: acc)
    ctx.handles []

let restore ctx (s : snap) =
  List.iter
    (fun (id, p, r, fd, sd) ->
      match Hashtbl.find_opt ctx.handles id with
      | Some h ->
          h.phase <- p;
          h.refs <- r;
          h.freed_doms <- fd;
          h.src_dom <- sd
      | None -> ())
    s

(* Pointwise join of branch end-states: equal components survive,
   disagreements go to the conservative top. [freed_doms] joins by
   intersection so "already freed" only holds when every path freed. *)
let join_outs ctx (outs : snap list) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (id, p, r, fd, sd) ->
         match Hashtbl.find_opt tbl id with
         | None -> Hashtbl.replace tbl id (p, r, fd, sd)
         | Some (p0, r0, fd0, sd0) ->
             Hashtbl.replace tbl id
               ( (if p0 = p then p0 else P_top),
                 (if r0 = r then r0 else None),
                 SS.inter fd0 fd,
                 if sd0 = sd then sd0 else None )))
    outs;
  Hashtbl.iter
    (fun id (p, r, fd, sd) ->
      match Hashtbl.find_opt ctx.handles id with
      | Some h ->
          h.phase <- p;
          h.refs <- r;
          h.freed_doms <- fd;
          h.src_dom <- sd
      | None -> ())
    tbl

(* ------------------------------------------------------------------ *)
(* Primitive fbuf API classification                                   *)

type prim =
  | Pr_alloc
  | Pr_alloc_default
  | Pr_alloc_create
  | Pr_send
  | Pr_secure
  | Pr_free
  | Pr_read
  | Pr_write
  | Pr_use_only  (** blind touch / metadata: a use, no phase meaning *)
  | Pr_escape  (** wraps the handle into a message / IPC payload *)

let prim_of_path rp =
  match rp with
  | "alloc" :: "Allocator" :: _ -> Some Pr_alloc
  | "default" :: "Allocator" :: _ -> Some Pr_alloc_default
  | "create" :: "Allocator" :: _ | "allocator" :: "Testbed" :: _ ->
      Some Pr_alloc_create
  | "send" :: "Transfer" :: _ -> Some Pr_send
  | "secure" :: "Transfer" :: _ -> Some Pr_secure
  | "free" :: "Transfer" :: _ -> Some Pr_free
  | ("read" | "read_string" | "word_at" | "checksum") :: "Fbuf_api" :: _ ->
      Some Pr_read
  | ("write" | "write_bytes" | "set_word" | "touch_write") :: "Fbuf_api" :: _
    ->
      Some Pr_write
  | "of_fbuf" :: "Msg" :: _
  | "call" :: "Ipc" :: _
  | "make_message" :: "Testproto" :: _ ->
      Some Pr_escape
  | _ :: "Fbuf_api" :: _ | _ :: "Fbuf" :: _ | _ :: "Transfer" :: _ ->
      Some Pr_use_only
  | _ -> None

let variant_of_ident e =
  match Rules.rev_path e with
  | Some (("cached_volatile" | "volatile_only") :: "Fbuf" :: _) ->
      Some (Var_v true)
  | Some (("cached_only" | "plain") :: "Fbuf" :: _) -> Some (Var_v false)
  | _ -> None

let dom_string = function
  | Some e -> (
      match Rules.ident_path e with
      | Some p -> Some (String.concat "." p)
      | None -> None)
  | None -> None

(* The paper forbids the *originator* mutating in flight; a receiver's
   write is refused dynamically by protection. When either side of the
   comparison is unknown we stay conservative and flag. *)
let writer_is_src h as_ =
  match (h.src_dom, as_) with
  | None, _ | _, None -> true
  | Some s, Some a -> s = a

(* Resolve an actual argument to its formal parameter index. *)
let formal_index params lbl upos =
  match lbl with
  | Asttypes.Nolabel ->
      let rec go i k = function
        | [] -> None
        | (Asttypes.Nolabel, _) :: rest ->
            if k = upos then Some i else go (i + 1) (k + 1) rest
        | _ :: rest -> go (i + 1) k rest
      in
      go 0 0 params
  | Asttypes.Labelled l | Asttypes.Optional l ->
      let rec go i = function
        | [] -> None
        | (Asttypes.Labelled l', _) :: rest | (Asttypes.Optional l', _) :: rest
          ->
            if l' = l then Some i else go (i + 1) rest
        | (Asttypes.Nolabel, _) :: rest -> go (i + 1) rest
      in
      go 0 params

let pattern_vars pat =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it pat;
  !acc

let collect_idents e =
  let acc = ref SS.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } -> acc := SS.add x !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* The abstract interpreter                                            *)

let rec eval ctx env e : value =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } when SM.mem x env ->
      SM.find x env
  | Pexp_ident _ -> (
      match variant_of_ident e with Some v -> v | None -> Unk)
  | Pexp_constant _ -> Unk
  | Pexp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            let v = eval ctx env vb.pvb_expr in
            bind_pattern ctx acc vb.pvb_pat v)
          env vbs
      in
      eval ctx env' body
  | Pexp_sequence (a, b) ->
      ignore (eval ctx env a : value);
      eval ctx env b
  | Pexp_apply (f, args) -> eval_apply ctx env e f args
  | Pexp_ifthenelse (c, t, fo) ->
      ignore (eval ctx env c : value);
      let thunks =
        match fo with
        | Some f -> [ (fun () -> eval ctx env t); (fun () -> eval ctx env f) ]
        | None -> [ (fun () -> eval ctx env t); (fun () -> Unk) ]
      in
      branch_values ctx thunks
  | Pexp_match (scr, cases) ->
      let sv = eval ctx env scr in
      branch_cases ctx env sv cases
  | Pexp_try (b, cases) ->
      (* The body always runs (possibly partially); handlers are joined
         in from the pre-state, approximating "from any point inside". *)
      branch_values ctx
        ((fun () -> eval ctx env b)
        :: List.map (fun c () -> case_value ctx env Unk c) cases)
  | Pexp_fun _ | Pexp_function _ ->
      handle_lambda ctx env e;
      Unk
  | Pexp_lazy b ->
      handle_lambda ctx env b;
      Unk
  | Pexp_while (c, body) ->
      ignore (eval ctx env c : value);
      loop_body ctx env body;
      Unk
  | Pexp_for (pat, a, b, _, body) ->
      ignore (eval ctx env a : value);
      ignore (eval ctx env b : value);
      let env' =
        List.fold_left
          (fun acc x -> SM.add x Unk acc)
          env (pattern_vars pat)
      in
      loop_body ctx env' body;
      Unk
  | Pexp_tuple l | Pexp_array l ->
      List.iter (fun x -> escape ctx (eval ctx env x)) l;
      Unk
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) ->
      escape ctx (eval ctx env a);
      Unk
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> Unk
  | Pexp_record (fields, base) ->
      List.iter (fun (_, x) -> escape ctx (eval ctx env x)) fields;
      (match base with
      | Some b -> ignore (eval ctx env b : value)
      | None -> ());
      Unk
  | Pexp_setfield (a, _, b) ->
      ignore (eval ctx env a : value);
      escape ctx (eval ctx env b);
      Unk
  | Pexp_field (a, _) ->
      ignore (eval ctx env a : value);
      Unk
  | Pexp_constraint (x, _)
  | Pexp_coerce (x, _, _)
  | Pexp_open (_, x)
  | Pexp_letmodule (_, _, x)
  | Pexp_letexception (_, x)
  | Pexp_newtype (_, x) ->
      eval ctx env x
  | Pexp_assert x ->
      ignore (eval ctx env x : value);
      Unk
  | _ -> Unk

and bind_pattern ctx env pat v =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> SM.add txt v env
  | Ppat_constraint (p, _) -> bind_pattern ctx env p v
  | Ppat_alias (p, { txt; _ }) -> bind_pattern ctx (SM.add txt v env) p v
  | Ppat_any -> env
  | _ ->
      (* Destructuring loses handle identity. *)
      escape ctx v;
      List.fold_left (fun acc x -> SM.add x Unk acc) env (pattern_vars pat)

and case_value ctx env sv c =
  let env' = bind_pattern ctx env c.pc_lhs sv in
  (match c.pc_guard with
  | Some g -> ignore (eval ctx env' g : value)
  | None -> ());
  eval ctx env' c.pc_rhs

and branch_cases ctx env sv cases =
  branch_values ctx (List.map (fun c () -> case_value ctx env sv c) cases)

and branch_values ctx thunks : value =
  match thunks with
  | [] -> Unk
  | [ one ] -> one ()
  | _ ->
      let base = snapshot ctx in
      let outs =
        List.map
          (fun th ->
            restore ctx base;
            let v = th () in
            (v, snapshot ctx))
          thunks
      in
      join_outs ctx (List.map snd outs);
      (match outs with
      | (v0, _) :: rest when List.for_all (fun (v, _) -> v = v0) rest -> v0
      | _ ->
          (* A handle reaching here only on some paths has no single
             identity; drop it from the analysis rather than guess. *)
          List.iter
            (fun (v, _) -> match v with Hdl _ -> escape ctx v | _ -> ())
            outs;
          Unk)

and loop_body ctx env body =
  (* One unrolling joined with the zero-iteration path. *)
  ignore
    (branch_values ctx
       [
         (fun () ->
           ignore (eval ctx env body : value);
           Unk);
         (fun () -> Unk);
       ]
      : value)

(* A lambda value: every handle it captures escapes (the closure may run
   any number of times, later), and its body is analyzed as its own
   scope with borrowed parameters. *)
and handle_lambda ctx env e =
  let ids = collect_idents e in
  SM.iter
    (fun x v ->
      match v with Hdl _ when SS.mem x ids -> escape ctx v | _ -> ())
    env;
  let env' = SM.map (fun v -> match v with Hdl _ -> Unk | v -> v) env in
  analyze_lambda ctx env' e

and analyze_lambda ctx env e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let env' =
        match pat.ppat_desc with
        | Ppat_var { txt; _ } ->
            SM.add txt
              (new_handle ctx ~origin:(O_borrowed None) ~volatile:false
                 ~loc:pat.ppat_loc)
              env
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
            SM.add txt
              (new_handle ctx ~origin:(O_borrowed None) ~volatile:false
                 ~loc:pat.ppat_loc)
              env
        | _ ->
            List.fold_left
              (fun acc x -> SM.add x Unk acc)
              env (pattern_vars pat)
      in
      analyze_lambda ctx env' body
  | Pexp_function cases ->
      List.iter
        (fun c ->
          let v =
            new_handle ctx ~origin:(O_borrowed None) ~volatile:false
              ~loc:c.pc_lhs.ppat_loc
          in
          ignore (case_value ctx env v c : value))
        cases
  | Pexp_newtype (_, body) -> analyze_lambda ctx env body
  | _ ->
      (* The body proper: its result is handed to whoever calls the
         closure. *)
      escape ctx (eval ctx env e)

and eval_apply ctx env e f args =
  let argvals = List.map (fun (lbl, a) -> (lbl, a, eval ctx env a)) args in
  match Rules.rev_path f with
  | Some rp when prim_of_path rp <> None ->
      apply_prim ctx e (Option.get (prim_of_path rp)) args argvals
  | _ -> (
      match Rules.ident_path f with
      | Some path -> (
          match Callgraph.resolve ctx.cg ~unit_name:ctx.unit_name path with
          | Some d -> apply_summary ctx e d argvals
          | None -> apply_unknown ctx path argvals)
      | None ->
          List.iter (fun (_, _, v) -> escape ctx v) argvals;
          Unk)

and apply_prim ctx e prim args argvals =
  let loc = e.pexp_loc in
  let first_unlabelled () =
    List.find_map
      (fun (lbl, a, v) ->
        if lbl = Asttypes.Nolabel then Some (a, v) else None)
      argvals
  in
  let hdl () =
    match first_unlabelled () with
    | Some (_, Hdl id) -> Some (hstate ctx id)
    | _ -> None
  in
  match prim with
  | Pr_alloc_default -> Alloc_v true
  | Pr_alloc_create ->
      Alloc_v (List.exists (fun (_, _, v) -> v = Var_v true) argvals)
  | Pr_alloc ->
      let vol =
        match first_unlabelled () with
        | Some (_, Alloc_v v) -> v
        | _ -> false
      in
      new_handle ctx ~origin:O_local ~volatile:vol ~loc
  | Pr_send ->
      (match hdl () with
      | Some h ->
          use ctx ~loc h;
          record ctx h (fun p -> { p with Summary.sends = true });
          h.refs <- Option.map (fun n -> n + 1) h.refs;
          h.src_dom <- dom_string (Rules.labelled "src" args);
          (match h.phase with
          | P_fresh | P_held -> h.phase <- P_sent
          | _ -> ())
      | None -> ());
      Unk
  | Pr_secure ->
      (match hdl () with
      | Some h ->
          use ctx ~loc h;
          record ctx h (fun p -> { p with Summary.secures = true });
          (match h.phase with
          | P_fresh | P_held | P_sent -> h.phase <- P_secured
          | _ -> ())
      | None -> ());
      Unk
  | Pr_free ->
      (match hdl () with
      | Some h ->
          let dom = dom_string (Rules.labelled "dom" args) in
          (if h.phase = P_freed then
             report ctx ~rule:"C1" ~loc
               "double free: every reference to this fbuf was already \
                relinquished"
           else
             match dom with
             | Some d when SS.mem d h.freed_doms ->
                 report ctx ~rule:"C1" ~loc
                   (Printf.sprintf
                      "double free: the reference held by %s was already \
                       relinquished"
                      d)
             | _ -> ());
          record ctx h (fun p -> { p with Summary.consumes = true });
          h.consumed <- true;
          (match dom with
          | Some d -> h.freed_doms <- SS.add d h.freed_doms
          | None -> ());
          (match h.refs with
          | Some n ->
              let n' = n - 1 in
              h.refs <- Some (max n' 0);
              if n' <= 0 then h.phase <- P_freed
          | None -> ())
      | None -> ());
      Unk
  | Pr_write ->
      (match hdl () with
      | Some h ->
          use ctx ~loc h;
          record ctx h (fun p -> { p with Summary.writes = true });
          let as_ = dom_string (Rules.labelled "as_" args) in
          (match h.phase with
          | P_secured ->
              report ctx ~rule:"C3" ~loc
                "write to a secured fbuf: write permission was revoked at \
                 secure"
          | P_sent when writer_is_src h as_ ->
              report ctx ~rule:"C3" ~loc
                "originator write to a sent fbuf: in-flight payloads are \
                 immutable (paper section 3.1)"
          | _ -> ())
      | None -> ());
      Unk
  | Pr_read ->
      (match hdl () with
      | Some h ->
          use ctx ~loc h;
          record ctx h (fun p -> { p with Summary.reads = true });
          if h.phase = P_sent && h.volatile then
            report ctx ~rule:"C4" ~loc
              "read from a volatile fbuf before secure: the originator can \
               still change the bytes under the reader (paper section 3.2)"
      | None -> ());
      Unk
  | Pr_use_only ->
      (match hdl () with Some h -> use ctx ~loc h | None -> ());
      Unk
  | Pr_escape ->
      List.iter
        (fun (_, a, v) ->
          match v with
          | Hdl id ->
              use ctx ~loc:a.pexp_loc (hstate ctx id);
              escape ctx v
          | _ -> ())
        argvals;
      Unk

and apply_summary ctx e d argvals =
  let s = ctx.lookup d in
  let nformals = List.length d.Callgraph.params in
  let actual_for = Array.make (max nformals 1) Unk in
  let upos = ref 0 in
  List.iter
    (fun (lbl, a, v) ->
      let fi = formal_index d.Callgraph.params lbl !upos in
      if lbl = Asttypes.Nolabel then incr upos;
      match v with
      | Hdl id -> (
          let h = hstate ctx id in
          match fi with
          | Some i when i < nformals ->
              actual_for.(i) <- v;
              let ps =
                if i < Array.length s.Summary.params then s.Summary.params.(i)
                else Summary.bot_param
              in
              use ctx ~loc:a.pexp_loc h;
              if ps.Summary.reads then begin
                record ctx h (fun p -> { p with Summary.reads = true });
                if h.phase = P_sent && h.volatile then
                  report ctx ~rule:"C4" ~loc:e.pexp_loc
                    (Printf.sprintf
                       "read from a volatile fbuf before secure (via %s): \
                        the originator can still change the bytes under the \
                        reader (paper section 3.2)"
                       d.Callgraph.qname)
              end;
              if ps.Summary.writes then begin
                record ctx h (fun p -> { p with Summary.writes = true });
                (match h.phase with
                | P_secured ->
                    report ctx ~rule:"C3" ~loc:e.pexp_loc
                      (Printf.sprintf
                         "write to a secured fbuf (via %s): write \
                          permission was revoked at secure"
                         d.Callgraph.qname)
                | P_sent ->
                    report ctx ~rule:"C3" ~loc:e.pexp_loc
                      (Printf.sprintf
                         "originator write to a sent fbuf (via %s): \
                          in-flight payloads are immutable (paper section \
                          3.1)"
                         d.Callgraph.qname)
                | _ -> ())
              end;
              if ps.Summary.sends then begin
                record ctx h (fun p -> { p with Summary.sends = true });
                h.refs <- Option.map (fun n -> n + 1) h.refs;
                match h.phase with
                | P_fresh | P_held -> h.phase <- P_sent
                | _ -> ()
              end;
              if ps.Summary.secures then begin
                record ctx h (fun p -> { p with Summary.secures = true });
                match h.phase with
                | P_fresh | P_held | P_sent -> h.phase <- P_secured
                | _ -> ()
              end;
              if ps.Summary.consumes then begin
                record ctx h (fun p -> { p with Summary.consumes = true });
                h.consumed <- true;
                match h.refs with
                | Some n ->
                    let n' = n - 1 in
                    h.refs <- Some (max n' 0);
                    if n' <= 0 then h.phase <- P_freed
                | None -> ()
              end
          | _ -> escape ctx v)
      | _ -> ())
    argvals;
  match s.Summary.ret with
  | Summary.R_fresh { volatile } ->
      new_handle ctx ~origin:O_local ~volatile ~loc:e.pexp_loc
  | Summary.R_param i when i < Array.length actual_for -> actual_for.(i)
  | _ -> Unk

and apply_unknown ctx path argvals =
  let last = match List.rev path with l :: _ -> l | [] -> "" in
  if List.mem last Rules.release_names then begin
    (* An unresolved call with a release-family name: assume it consumes
       its handle arguments (no C2), learn nothing else. *)
    List.iter
      (fun (_, a, v) ->
        match v with
        | Hdl id ->
            let h = hstate ctx id in
            use ctx ~loc:a.pexp_loc h;
            record ctx h (fun p -> { p with Summary.consumes = true });
            h.consumed <- true;
            h.refs <- None;
            h.phase <- P_top
        | _ -> ())
      argvals;
    Unk
  end
  else begin
    List.iter (fun (_, _, v) -> escape ctx v) argvals;
    Unk
  end

(* ------------------------------------------------------------------ *)
(* Per-definition analysis                                             *)

let analyze_def ~cg ~lookup ~emit ~findings (d : Callgraph.def) =
  let nparams = List.length d.Callgraph.params in
  let ctx =
    {
      file = d.Callgraph.file;
      unit_name = d.Callgraph.unit_name;
      cg;
      lookup;
      emit;
      findings;
      handles = Hashtbl.create 16;
      next = ref 0;
      psums = Array.make nparams Summary.bot_param;
    }
  in
  let env, _ =
    List.fold_left
      (fun (env, i) (_, name) ->
        let env =
          match name with
          | Some x ->
              SM.add x
                (new_handle ctx ~origin:(O_borrowed (Some i)) ~volatile:false
                   ~loc:Location.none)
                env
          | None -> env
        in
        (env, i + 1))
      (SM.empty, 0) d.Callgraph.params
  in
  let ret_v = eval ctx env d.Callgraph.body in
  let ret =
    match ret_v with
    | Hdl id -> (
        let h = hstate ctx id in
        match h.origin with
        | O_borrowed (Some i) -> Summary.R_param i
        | O_local -> Summary.R_fresh { volatile = h.volatile }
        | O_borrowed None -> Summary.R_none)
    | _ -> Summary.R_none
  in
  (* Returning a handle is an ownership hand-off. *)
  (match ret_v with
  | Hdl id -> (hstate ctx id).escaped <- true
  | _ -> ());
  if emit then
    Hashtbl.iter
      (fun _ h ->
        if h.origin = O_local && (not h.escaped) && not h.consumed then
          findings :=
            F.v ~rule:"C2" ~file:ctx.file ~line:h.oline ~col:h.ocol
              "fbuf allocated here is relinquished on no path and never \
               handed off: the reference is leaked on every exit"
            :: !findings)
      ctx.handles;
  { Summary.params = Array.copy ctx.psums; ret }

(* ------------------------------------------------------------------ *)
(* [@lint.allow "C3"] suppression spans                                *)

let allow_spans str =
  let acc = ref [] in
  let payload (a : attribute) =
    match a.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some s
    | _ -> None
  in
  let add attrs (loc : Location.t) =
    List.iter
      (fun (a : attribute) ->
        if a.attr_name.txt = "lint.allow" then
          match payload a with
          | Some s ->
              let rules =
                String.map (fun c -> if c = ',' then ' ' else c) s
                |> String.split_on_char ' '
                |> List.filter (fun x -> x <> "")
              in
              acc :=
                (rules, loc.loc_start.pos_lnum, loc.loc_end.pos_lnum) :: !acc
          | None -> ())
      attrs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          add e.pexp_attributes e.pexp_loc;
          Ast_iterator.default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          add vb.pvb_attributes vb.pvb_loc;
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  !acc

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let compute_summaries cg =
  Summary.compute cg ~analyze:(fun d ~lookup ->
      analyze_def ~cg ~lookup ~emit:false ~findings:(ref []) d)

let lint_units units =
  let cg = Callgraph.build units in
  let table, _rounds = compute_summaries cg in
  let findings = ref [] in
  List.iter
    (fun d ->
      if client_file d.Callgraph.file then
        ignore
          (analyze_def ~cg ~lookup:(Summary.find table) ~emit:true ~findings d
            : Summary.fsum))
    (Callgraph.defs cg);
  let spans =
    List.concat_map
      (fun (file, str) -> List.map (fun sp -> (file, sp)) (allow_spans str))
      units
  in
  let keep (f : F.t) =
    not
      (List.exists
         (fun (file, (rules, l1, l2)) ->
           file = f.F.file && List.mem f.F.rule rules && f.F.line >= l1
           && f.F.line <= l2)
         spans)
  in
  List.sort_uniq F.compare (List.filter keep !findings)

let lint_unit ~file ~impl =
  match Rules.parse ~file ~kind:`Impl impl with
  | Rules.Ok_impl str -> lint_units [ (file, str) ]
  | _ -> []

let summaries units =
  let cg = Callgraph.build units in
  let table, rounds = compute_summaries cg in
  ( List.map
      (fun d -> (d.Callgraph.qname, Summary.find table d))
      (Callgraph.defs cg),
    rounds )
