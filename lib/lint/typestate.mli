(** Layer C: interprocedural, flow-sensitive typestate analysis of fbuf
    handles.

    Each handle moves through the lattice
    [{Fresh, Held, Sent, Secured, Freed, T}] as the abstract interpreter
    walks function bodies; calls to other in-tree functions transition the
    handle through the callee's ownership summary ({!Summary}), computed
    to fixpoint over the call graph's SCCs first. Four rules:

    - {b C1 — use after free / double free}: any fbuf API reaching a
      handle whose every reference was relinquished, or a second
      [Transfer.free] from a domain that already freed.
    - {b C2 — leak on all paths}: a locally allocated handle that is
      relinquished on {e no} path, never stored/captured/passed to an
      unknown callee, and not returned. (L4 keeps catching the
      some-but-not-all-paths asymmetry; C2 is its interprocedural
      completion for the no-path case.)
    - {b C3 — write after send} (paper section 3.1): the originator
      writing an in-flight payload (the writer's [~as_] matches the
      send's [~src], or either is unknown), or any write after secure.
    - {b C4 — read before secure} (paper section 3.2): reading a
      volatile handle in the [Sent] phase, before [Transfer.secure].

    Soundness caveats (documented, deliberate): aliasing is tracked only
    through [let]-bindings, returns and direct argument passing; branch
    joins go to a silent top on disagreement ([freed_doms] joins by
    intersection); handles stored into data structures, captured by
    closures or passed to unresolved callees escape the analysis
    entirely. The analysis under-approximates — it misses bugs rather
    than invent them.

    Findings are reported only for client code (examples/, lib/harness/,
    lib/demo/, bin/, bench/); summaries are computed over every unit.
    [[@lint.allow "C3 C4"]] on an expression or [let]-binding suppresses
    the named rules within that node's line span. *)

val lint_units : (string * Parsetree.structure) list -> Finding.t list
(** Analyze a whole tree of [(root-relative file, parsetree)] units:
    build the call graph, compute summaries to fixpoint, interpret every
    client-file definition. Sorted with {!Finding.compare}, deduplicated,
    [@lint.allow] spans applied. *)

val lint_unit : file:string -> impl:string -> Finding.t list
(** Single-unit convenience for tests: parse [impl] and run
    {!lint_units} on it alone ([] if it does not parse — Layer A owns
    E0). *)

val summaries :
  (string * Parsetree.structure) list ->
  (string * Summary.fsum) list * int
(** The computed ownership summary of every definition (keyed by qname,
    in definition order) plus the number of fixpoint sweeps — the
    surface the qcheck termination/monotonicity property drives. *)
