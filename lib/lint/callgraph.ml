open Parsetree

type def = {
  qname : string;
  unit_name : string;
  file : string;
  params : (Asttypes.arg_label * string option) list;
  body : expression;
  line : int;
  col : int;
}

type t = {
  defs : def list;
  by_last : (string, def list) Hashtbl.t;
}

let key d = Printf.sprintf "%s:%d:%d:%s" d.file d.line d.col d.qname
let defs t = t.defs

let unit_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

(* Peel the [fun] chain off a binding's expression, recording each
   parameter's label and (when the pattern is a plain variable, possibly
   constrained) its name. *)
let rec collect_params e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
      let name =
        match pat.ppat_desc with
        | Ppat_var { txt; _ } -> Some txt
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
            Some txt
        | _ -> None
      in
      let ps, b = collect_params body in
      ((lbl, name) :: ps, b)
  | Pexp_newtype (_, body) -> collect_params body
  | _ -> ([], e)

let rec defs_of_items ~unit_name ~file prefix items acc =
  (* Bindings to non-variable patterns — [let () = ...], [let _ = ...] —
     and bare [;;]-expressions still run fbuf code (that is exactly what
     example programs look like), so they become anonymous definitions:
     analyzed for findings, unreachable by name resolution (the ["<top:"]
     component can never appear in an identifier path). *)
  let anon expr =
    let params, body = collect_params expr in
    let line, col = Rules.line_col expr.pexp_loc in
    {
      qname = Printf.sprintf "%s<top:%d:%d>" prefix line col;
      unit_name;
      file;
      params;
      body;
      line;
      col;
    }
  in
  List.fold_left
    (fun acc it ->
      match it.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  let params, body = collect_params vb.pvb_expr in
                  let line, col = Rules.line_col vb.pvb_expr.pexp_loc in
                  { qname = prefix ^ txt; unit_name; file; params; body;
                    line; col }
                  :: acc
              | _ -> anon vb.pvb_expr :: acc)
            acc vbs
      | Pstr_eval (e, _) -> anon e :: acc
      | Pstr_module
          {
            pmb_name = { txt = Some n; _ };
            pmb_expr = { pmod_desc = Pmod_structure s; _ };
            _;
          } ->
          defs_of_items ~unit_name ~file (prefix ^ n ^ ".") s acc
      | _ -> acc)
    acc items

let build units =
  let defs =
    List.concat_map
      (fun (file, str) ->
        let u = unit_of_file file in
        List.rev (defs_of_items ~unit_name:u ~file (u ^ ".") str []))
      units
  in
  let by_last = Hashtbl.create 64 in
  List.iter
    (fun d ->
      match List.rev (String.split_on_char '.' d.qname) with
      | last :: _ ->
          let prev =
            Option.value (Hashtbl.find_opt by_last last) ~default:[]
          in
          Hashtbl.replace by_last last (d :: prev)
      | [] -> ())
    defs;
  { defs; by_last }

(* [path] is suffix-matched against qname components, so [Helpers.f],
   [Lib.Helpers.f] and a local alias all resolve alike. *)
let suffix_matches ~path qn =
  let qc = String.split_on_char '.' qn in
  let lq = List.length qc and lp = List.length path in
  lp <= lq
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (lq - lp) qc = path

(* Later top-level bindings shadow earlier ones of the same qname, so
   among same-qname candidates the textually last wins. *)
let last_of_qname cands =
  List.fold_left
    (fun best d ->
      match best with
      | Some b when not (b.file = d.file && b.qname = d.qname) -> best
      | Some b -> if d.line >= b.line then Some d else best
      | None -> Some d)
    None cands

let resolve t ~unit_name path =
  match List.rev path with
  | [] -> None
  | last :: _ -> (
      let cands =
        Option.value (Hashtbl.find_opt t.by_last last) ~default:[]
      in
      let matching = List.filter (fun d -> suffix_matches ~path d.qname) cands in
      let same_unit = List.filter (fun d -> d.unit_name = unit_name) matching in
      let pick group =
        match group with
        | [] -> None
        | d :: rest ->
            if List.for_all (fun d' -> d'.qname = d.qname && d'.file = d.file)
                 rest
            then last_of_qname group
            else None (* ambiguous across units: stay unknown *)
      in
      match path with
      | [ _ ] ->
          (* Unqualified names resolve only within their own unit. *)
          pick same_unit
      | _ -> ( match pick matching with Some d -> Some d | None -> pick same_unit))

let callees t d =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) -> (
              match Rules.ident_path f with
              | Some path -> (
                  match resolve t ~unit_name:d.unit_name path with
                  | Some d' -> acc := d' :: !acc
                  | None -> ())
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it d.body;
  !acc

(* Tarjan; SCCs pop in callees-first order, which is exactly the order
   the summary fixpoint wants. *)
let sccs t =
  let defs = Array.of_list t.defs in
  let n = Array.length defs in
  let id_of = Hashtbl.create n in
  Array.iteri (fun i d -> Hashtbl.replace id_of (key d) i) defs;
  let succs =
    Array.map
      (fun d ->
        List.filter_map (fun d' -> Hashtbl.find_opt id_of (key d'))
          (callees t d))
      defs
  in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let comp = pop [] in
      out := List.map (fun i -> defs.(i)) comp :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !out
