(** Layer B: abstract interpretation of declarative data-path specs.

    A {!spec} is a declarative description of one I/O data path — the
    originator, the ordered receivers with the page protection their
    mappings get, the fbuf variant, and the sequence of operations the
    configuration performs. The verifier interprets the sequence over a
    small per-domain lattice {e without executing anything}:

    {v per domain: { holds_ref; may_write }   global: { secured } v}

    and rejects:

    - {b B1 — read before secure}: on a volatile path with an untrusted
      originator, a receiver interprets buffer contents before any domain
      raised protection with [secure] — the originator could still change
      the bytes underneath (paper section 3.2).
    - {b B2 — dual write permission}: a configuration under which two
      domains could hold write permission simultaneously — a receiver
      mapped read-write, a non-originator issuing a write, or an
      originator writing after [secure] (paper section 3.1).
    - {b B3 — escaping reference}: an aggregate-object (DAG) reference
      that points outside the fbuf region, which the kernel could neither
      validate nor transfer (paper section 3.2.3).

    Sequencing errors that make a spec meaningless — operating on a
    reference the domain does not hold, sending to a domain outside the
    path, references still held when the sequence ends — are reported as
    {b B0} so a typo in a spec cannot silently verify.

    Findings use the synthetic file [spec/<name>] with the 1-based index
    of the offending op as the line ([line 0] for configuration-level
    errors such as a read-write receiver mapping). *)

type domain = string
type prot = Ro | Rw

type op =
  | Write of domain  (** originator fills (part of) the buffer *)
  | Send of domain * domain  (** transfer a reference [src -> dst] *)
  | Secure of domain  (** receiver raises protection before interpreting *)
  | Read of domain
      (** a domain {e interprets} buffer contents (validates, parses,
          checksums against an expectation) — the access that must be
          preceded by [Secure] on a volatile path *)
  | Touch of domain
      (** a domain accesses the bytes without trusting them — the paper's
          receiver workload (touch a word per page, forward, blind copy);
          needs a reference but no [Secure] *)
  | Free of domain  (** relinquish the domain's reference *)
  | Terminate of domain  (** kernel sweep: drops the domain's references *)
  | Append_ref of domain * [ `In_region | `Out_of_region ]
      (** the domain deposits a DAG reference into the aggregate *)

type spec = {
  name : string;
  originator : domain;
  trusted_originator : bool;
      (** kernel-originated paths: [secure] is a no-op and reads are safe *)
  receivers : (domain * prot) list;
  cached : bool;
  volatile : bool;
  ops : op list;
}

val verify : spec -> Finding.t list
(** Abstractly interpret [spec.ops]; empty list = the configuration obeys
    the fbuf disciplines on every path. *)

val builtins : spec list
(** Declarative mirrors of the data paths wired by [lib/harness] and
    [examples/]: the Figure 4 single- and three-domain loopback stacks,
    the Figure 5/6 end-to-end configurations, and each example's
    pipeline. Verified on every [fbufs_cli lint] run so a harness change
    that breaks a discipline is caught before any code executes. *)
