module Json = Fbufs_trace.Json

type t = { rule : string; file : string; line : int; col : int; msg : string }

let v ~rule ~file ~line ?(col = 0) msg = { rule; file; line; col; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: %s: %s" t.file t.line t.col t.rule t.msg

let to_json t =
  Json.Obj
    [
      ("rule", Json.String t.rule);
      ("file", Json.String t.file);
      ("line", Json.Int t.line);
      ("col", Json.Int t.col);
      ("msg", Json.String t.msg);
    ]

let of_json j =
  let str k =
    match Json.member k j with
    | Some (Json.String s) -> s
    | _ -> invalid_arg ("Finding.of_json: missing string field " ^ k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int i) -> i
    | _ -> invalid_arg ("Finding.of_json: missing int field " ^ k)
  in
  {
    rule = str "rule";
    file = str "file";
    line = int "line";
    col = int "col";
    msg = str "msg";
  }

let list_to_json ts = Json.List (List.map to_json ts)

let list_of_string s =
  let j =
    try Json.parse s
    with Json.Parse_error e -> invalid_arg ("Finding.list_of_string: " ^ e)
  in
  match j with
  | Json.List l -> List.map of_json l
  | _ -> invalid_arg "Finding.list_of_string: expected a JSON array"

let baseline_mem ~baseline t =
  List.exists
    (fun b -> b.rule = t.rule && b.file = t.file && b.msg = t.msg)
    baseline
