module F = Finding

type domain = string
type prot = Ro | Rw

type op =
  | Write of domain
  | Send of domain * domain
  | Secure of domain
  | Read of domain
  | Touch of domain
  | Free of domain
  | Terminate of domain
  | Append_ref of domain * [ `In_region | `Out_of_region ]

type spec = {
  name : string;
  originator : domain;
  trusted_originator : bool;
  receivers : (domain * prot) list;
  cached : bool;
  volatile : bool;
  ops : op list;
}

(* ------------------------------------------------------------------ *)
(* Abstract interpreter                                                *)

type state = {
  refs : (domain, int) Hashtbl.t;
  mutable secured : bool;
  mutable orig_writable : bool;
}

let verify spec =
  let file = "spec/" ^ spec.name in
  let findings = ref [] in
  let add ~rule ~line msg = findings := F.v ~rule ~file ~line msg :: !findings in
  let domains = spec.originator :: List.map fst spec.receivers in
  (* Configuration-level checks (line 0). *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d then
        add ~rule:"B0" ~line:0 (Printf.sprintf "duplicate domain %s" d)
      else Hashtbl.add seen d ())
    domains;
  List.iter
    (fun (d, prot) ->
      if prot = Rw then
        add ~rule:"B2" ~line:0
          (Printf.sprintf
             "receiver %s is mapped read-write: two domains could hold \
              write permission simultaneously"
             d))
    spec.receivers;
  let st =
    { refs = Hashtbl.create 8; secured = false; orig_writable = true }
  in
  List.iter (fun d -> Hashtbl.replace st.refs d 0) domains;
  Hashtbl.replace st.refs spec.originator 1;
  let refs d = try Hashtbl.find st.refs d with Not_found -> 0 in
  let known d = List.mem d domains in
  (* One finding at most per op: a sequencing error (B0) preempts the
     discipline rules so a malformed spec cannot cascade. *)
  let step i op =
    let line = i + 1 in
    let need_ref d what =
      if not (known d) then begin
        add ~rule:"B0" ~line
          (Printf.sprintf "%s by %s, which is not on the path" what d);
        false
      end
      else if refs d = 0 then begin
        add ~rule:"B0" ~line
          (Printf.sprintf "%s by %s, which holds no reference" what d);
        false
      end
      else true
    in
    match op with
    | Write d ->
        if need_ref d "write" then
          if d <> spec.originator then
            add ~rule:"B2" ~line
              (Printf.sprintf
                 "write by non-originator %s: only the originator may hold \
                  write permission"
                 d)
          else if not st.orig_writable then
            add ~rule:"B2" ~line
              "originator write after its write permission was revoked \
               (secure, or first send of a non-volatile fbuf)"
    | Send (src, dst) ->
        if need_ref src "send" then
          if not (known dst) then
            add ~rule:"B0" ~line
              (Printf.sprintf "send to %s, which is not on the path" dst)
          else begin
            Hashtbl.replace st.refs dst (refs dst + 1);
            if not spec.volatile then st.orig_writable <- false
          end
    | Secure d ->
        if need_ref d "secure" && not spec.trusted_originator then begin
          st.secured <- true;
          st.orig_writable <- false
        end
    | Read d ->
        if need_ref d "read" then
          if
            d <> spec.originator && spec.volatile && (not st.secured)
            && not spec.trusted_originator
          then
            add ~rule:"B1" ~line
              (Printf.sprintf
                 "%s interprets a volatile fbuf before any secure: the \
                  originator could still change the bytes underneath"
                 d)
    | Touch d -> ignore (need_ref d "touch")
    | Free d ->
        if need_ref d "free" then Hashtbl.replace st.refs d (refs d - 1)
    | Terminate d ->
        if known d then Hashtbl.replace st.refs d 0
        else
          add ~rule:"B0" ~line
            (Printf.sprintf "terminate of %s, which is not on the path" d)
    | Append_ref (d, target) ->
        if need_ref d "append_ref" then
          if target = `Out_of_region then
            add ~rule:"B3" ~line
              (Printf.sprintf
                 "%s deposits an aggregate (DAG) reference that points \
                  outside the fbuf region: the kernel can neither validate \
                  nor transfer it"
                 d)
  in
  List.iteri step spec.ops;
  let final_line = List.length spec.ops in
  List.iter
    (fun d ->
      let n = refs d in
      if n > 0 then
        add ~rule:"B0" ~line:final_line
          (Printf.sprintf
             "%s still holds %d reference(s) when the spec ends: every \
              path must relinquish"
             d n))
    domains;
  List.sort F.compare !findings

(* ------------------------------------------------------------------ *)
(* Declarative mirrors of the repo's own data paths                    *)

let ro ds = List.map (fun d -> (d, Ro)) ds

let builtins =
  [
    (* Figure 4 loopback stacks (lib/harness/stacks.ml). *)
    {
      name = "harness/fig4-single-domain";
      originator = "host";
      trusted_originator = false;
      receivers = [];
      cached = true;
      volatile = true;
      ops = [ Write "host"; Touch "host"; Free "host" ];
    };
    {
      name = "harness/fig4-three-domain";
      originator = "app";
      trusted_originator = false;
      receivers = ro [ "netserver"; "receiver" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "app";
          Send ("app", "netserver");
          Send ("netserver", "receiver");
          Touch "receiver";
          Free "receiver";
          Free "netserver";
          Free "app";
        ];
    };
    (* Figure 5 end-to-end configurations (lib/harness/exp_fig5.ml).
       The tx and rx sides are distinct paths on distinct hosts. *)
    {
      name = "harness/fig5-kernel-kernel";
      originator = "tx-kernel";
      trusted_originator = true;
      receivers = ro [ "tx-driver" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "tx-kernel";
          Send ("tx-kernel", "tx-driver");
          Touch "tx-driver";
          Free "tx-driver";
          Free "tx-kernel";
        ];
    };
    {
      name = "harness/fig5-user-user-tx";
      originator = "tx-app";
      trusted_originator = false;
      receivers = ro [ "tx-kernel" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "tx-app";
          Send ("tx-app", "tx-kernel");
          Touch "tx-kernel";
          Free "tx-kernel";
          Free "tx-app";
        ];
    };
    {
      name = "harness/fig5-user-user-rx";
      originator = "rx-kernel";
      trusted_originator = true;
      receivers = ro [ "rx-app" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "rx-kernel";
          Send ("rx-kernel", "rx-app");
          (* Trusted (kernel) originator: interpreting without secure is
             safe — secure is a no-op on this path. *)
          Read "rx-app";
          Free "rx-app";
          Free "rx-kernel";
        ];
    };
    {
      name = "harness/fig5-user-netserver-user-tx";
      originator = "tx-app";
      trusted_originator = false;
      receivers = ro [ "tx-netserver"; "tx-kernel" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "tx-app";
          Send ("tx-app", "tx-netserver");
          (* The network server forwards: it never maps, reads or writes
             the data pages. *)
          Send ("tx-netserver", "tx-kernel");
          Touch "tx-kernel";
          Free "tx-kernel";
          Free "tx-netserver";
          Free "tx-app";
        ];
    };
    {
      name = "harness/fig5-user-netserver-user-rx";
      originator = "rx-kernel";
      trusted_originator = true;
      receivers = ro [ "rx-netserver"; "rx-app" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "rx-kernel";
          Send ("rx-kernel", "rx-netserver");
          Send ("rx-netserver", "rx-app");
          Read "rx-app";
          Free "rx-app";
          Free "rx-netserver";
          Free "rx-kernel";
        ];
    };
    (* Figure 6: same topology, uncached non-volatile fbufs — the first
       send revokes the originator's write permission eagerly, so no
       secure is ever needed. *)
    {
      name = "harness/fig6-uncached-tx";
      originator = "tx-app";
      trusted_originator = false;
      receivers = ro [ "tx-kernel" ];
      cached = false;
      volatile = false;
      ops =
        [
          Write "tx-app";
          Send ("tx-app", "tx-kernel");
          Read "tx-kernel";
          Free "tx-kernel";
          Free "tx-app";
        ];
    };
    (* Examples. *)
    {
      name = "examples/quickstart";
      originator = "producer";
      trusted_originator = false;
      receivers = ro [ "consumer" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "producer";
          Send ("producer", "consumer");
          Secure "consumer";
          Read "consumer";
          Free "consumer";
          Free "producer";
        ];
    };
    {
      name = "examples/secure-pipeline-plaintext";
      originator = "producer";
      trusted_originator = false;
      receivers = ro [ "cipher" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "producer";
          Send ("producer", "cipher");
          Secure "cipher";
          Read "cipher";
          Free "cipher";
          Free "producer";
        ];
    };
    {
      name = "examples/secure-pipeline-ciphertext";
      originator = "cipher";
      trusted_originator = false;
      receivers = ro [ "store" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "cipher";
          Send ("cipher", "store");
          (* The store archives ciphertext blindly; it interprets
             nothing, so no secure is required. *)
          Touch "store";
          Free "store";
          Free "cipher";
        ];
    };
    {
      name = "examples/video-server";
      originator = "capture";
      trusted_originator = false;
      receivers = ro [ "compressor"; "display" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "capture";
          Send ("capture", "compressor");
          (* Motion-estimation sampling and the display blit access
             pixels without trusting them: torn frames are a glitch, not
             a safety violation. *)
          Touch "compressor";
          Send ("compressor", "display");
          Touch "display";
          Free "display";
          Free "compressor";
          Free "capture";
        ];
    };
    {
      name = "examples/scientific-transfer";
      originator = "simulation";
      trusted_originator = false;
      receivers = ro [ "analysis" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "simulation";
          (* The ADU is an aggregate of two joined buffers; both live in
             the fbuf region. *)
          Append_ref ("simulation", `In_region);
          Send ("simulation", "analysis");
          Secure "analysis";
          Read "analysis";
          Free "analysis";
          Free "simulation";
        ];
    };
    {
      name = "examples/netserver-pipeline";
      originator = "user-app";
      trusted_originator = false;
      receivers = ro [ "netserver"; "kernel" ];
      cached = true;
      volatile = true;
      ops =
        [
          Write "user-app";
          Send ("user-app", "netserver");
          Send ("netserver", "kernel");
          Touch "kernel";
          Free "kernel";
          Free "netserver";
          Free "user-app";
        ];
    };
  ]
