module J = Fbufs_trace.Json
module F = Finding

(* Static metadata for every rule either layer can emit. The SARIF
   [tool.driver.rules] array always carries the full set so a viewer can
   show rule documentation even for rules with no results in this run. *)
let rule_meta =
  [
    ("E0", "source file does not parse");
    ("L1", "payload writes must go through the protection-checked API");
    ("L2", "no wall-clock or hash nondeterminism outside lib/sim");
    ("L3", "exported functions must document the exceptions they raise");
    ("L4", "reference acquired here is relinquished on some paths only");
    ("L5", "no handle laundering through Obj.magic or ignored handles");
    ("L6", "metric registration discipline");
    ("L7", "pathspec violation");
    ("B0", "pathspec: required file missing");
    ("B1", "pathspec: forbidden dependency");
    ("B2", "pathspec: required marker missing");
    ("B3", "pathspec: stale reference");
    ("C1", "use after free / double free of an fbuf handle");
    ("C2", "fbuf leaked on every exit path");
    ("C3", "write after send: in-flight payloads are immutable");
    ("C4", "read of a volatile fbuf before secure");
  ]

let result (f : F.t) =
  J.Obj
    [
      ("ruleId", J.String f.F.rule);
      ("level", J.String "error");
      ("message", J.Obj [ ("text", J.String f.F.msg) ]);
      ( "locations",
        J.List
          [
            J.Obj
              [
                ( "physicalLocation",
                  J.Obj
                    [
                      ( "artifactLocation",
                        J.Obj [ ("uri", J.String f.F.file) ] );
                      ( "region",
                        J.Obj
                          [
                            ("startLine", J.Int (max f.F.line 1));
                            ("startColumn", J.Int (f.F.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let to_json findings =
  J.Obj
    [
      ( "$schema",
        J.String
          "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", J.String "2.1.0");
      ( "runs",
        J.List
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.String "fbufs_lint");
                            ("informationUri", J.String "DESIGN.md");
                            ( "rules",
                              J.List
                                (List.map
                                   (fun (id, short) ->
                                     J.Obj
                                       [
                                         ("id", J.String id);
                                         ( "shortDescription",
                                           J.Obj
                                             [ ("text", J.String short) ] );
                                       ])
                                   rule_meta) );
                          ] );
                    ] );
                ("results", J.List (List.map result findings));
              ];
          ] );
    ]

let render ppf findings =
  Format.fprintf ppf "%s@." (J.to_string (to_json findings))
