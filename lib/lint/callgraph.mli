(** The whole-tree definition table and call graph Layer C analyzes.

    Definitions are the top-level [let]-bound values of every parsed unit
    (including those inside literal [module M = struct .. end] blocks),
    keyed by qualified name [Unit.Sub.f] where [Unit] is the capitalized
    file basename. Call edges are syntactic applications whose head
    identifier resolves to a definition; resolution is by qualified-name
    suffix so [Helpers.process], [Fbufs_harness.Helpers.process] and a
    local module alias all reach the same definition, while an ambiguous
    suffix (two units exporting the same path) resolves to nothing —
    Layer C then treats the call as unknown, which is the conservative
    direction. *)

type def = {
  qname : string;  (** [Unit.f] or [Unit.Sub.f] *)
  unit_name : string;  (** capitalized file basename *)
  file : string;  (** root-relative [.ml] path *)
  params : (Asttypes.arg_label * string option) list;
      (** the [fun] chain's parameters; [None] for non-variable patterns *)
  body : Parsetree.expression;  (** the body after the [fun] chain *)
  line : int;
  col : int;  (** span of the binding's expression *)
}

type t

val key : def -> string
(** Unique table key ([file:line:col:qname]); qnames alone can collide
    under top-level shadowing. *)

val defs : t -> def list
(** Every definition, in source order per unit. Besides named bindings
    this includes one anonymous definition per [let () = ...] /
    [let _ = ...] / bare [;;]-expression item (qname [Unit.<top:l:c>]) —
    example programs keep their fbuf code there, and Layer C analyzes
    them like any other body; they are never the target of resolution. *)

val build : (string * Parsetree.structure) list -> t
(** [(file, parsetree)] pairs for every unit in scope. *)

val resolve : t -> unit_name:string -> string list -> def option
(** Resolve an applied identifier path seen inside [unit_name].
    Unqualified names resolve only within their own unit; qualified names
    suffix-match across the tree, falling back to the caller's unit, and
    ambiguity yields [None]. *)

val callees : t -> def -> def list
(** Resolved targets of every application in [d]'s body (duplicates
    preserved; order unspecified). *)

val sccs : t -> def list list
(** Strongly connected components in callees-first topological order —
    the order in which the summary fixpoint visits them. *)
