(** Layer A: source lint over the repo's own [.ml]/[.mli] files.

    Parses with [compiler-libs.common] (the toolchain's own parser — no new
    dependency) and walks the parsetree. Five rules, each a static
    approximation of an fbuf discipline the type system does not enforce:

    - {b L1 — payload immutability} (paper section 3.1): no direct
      [Bytes.set]/[Bytes.blit]/[Bytes.fill] (or their [unsafe_] variants)
      applied to frame payloads — syntactically, a mutation whose argument
      subtree mentions [Phys_mem.data]. All payload writes must go through
      the protection-checked originator API ([Fbuf_api] over [Access]).
      Allowed only in [lib/sim] (owns the frames), [lib/vm] (the access
      layer that enforces protection) and [lib/netdev] (DMA engines bypass
      the MMU by construction).
    - {b L2 — determinism}: no [Stdlib.Random], [Hashtbl.hash],
      [Unix.gettimeofday], [Unix.time] or [Sys.time] outside [lib/sim] —
      goldens and [Fbufs_check] replay depend on bit-identical runs.
      [bench/] and [test/test_perf_guard.ml] are exempt: they measure real
      wall-clock time on purpose.
    - {b L3 — documented raises}: every [raise]/[invalid_arg]/[failwith]
      occurring syntactically in the body of a function exported through
      the unit's [.mli] must have its exception named in that value's
      [.mli] doc comment. (Syntactic containment approximates "reachable
      from"; raises in private helpers are the helper's caller's contract.)
    - {b L4 — reference pairing} (paper section 3.3): a scope (function,
      lambda or loop body) that calls a reference-acquiring API
      ([Allocator.alloc], [Transfer.send], [Ipc.call]) and relinquishes
      ([Transfer.free], [Msg.free_all], [Ipc.free_deferred],
      [Lifecycle.terminate_domain], ...) on {e some} syntactic exit path
      but not on {e all} of them is flagged — the branch asymmetry that
      leaks references. Scopes with no relinquish at all are not flagged
      (ownership handed off elsewhere). Exempt: [lib/core], [lib/ipc],
      [lib/msg], [lib/netdev] and [lib/xkernel] (the machinery itself,
      whose hand-off policies — [auto_free_dst], [free_after],
      [rx_handler] — make frees conditional by design), [lib/check] and
      [test/test_properties.ml] (randomized sequences whose balance is
      semantic and checked dynamically).
    - {b L5 — no handle laundering}: no [Obj.magic] anywhere; no [ignore]
      of a call whose result carries an fbuf handle ([Allocator.alloc],
      [Msg.of_fbuf], [Testproto.make_message]).
    - {b L6 — metric registration discipline}: every
      [Fbufs_metrics.Metrics] registration ([counter]/[gauge]/[histogram]
      under any module alias, recognized by its [~name]/[~help]
      signature) must pass a string literal matching
      [^fbufs_[a-z0-9_]+$] as its name, must not reuse a literal already
      registered anywhere in the tree, and must execute at module
      initialization — not under a lambda or loop, where a re-run would
      raise at runtime. Exempt: [test/] (the metrics tests register bad
      names on purpose to exercise the runtime rejection).

    Rule scoping is by root-relative path with ['/'] separators. Fixture
    tests use paths outside every allowlist so all rules apply. *)

val lint_unit :
  file:string -> impl:string -> ?intf:string -> unit -> Finding.t list
(** Lint one compilation unit. [file] is the root-relative [.ml] path used
    for rule scoping and finding spans; [impl] is its source text; [intf],
    when present, is the text of the paired [.mli] (enables L3). A file
    that does not parse yields a single ["E0"] finding at the error
    location. Findings are sorted with {!Finding.compare}. *)

val lint_file : root:string -> string -> Finding.t list
(** [lint_file ~root rel] reads [root ^ "/" ^ rel] (and its [.mli] sibling
    if present) and lints it. *)

val reset_registered_metrics : unit -> unit
(** Clear the cross-unit table of metric names L6 has seen. {!Driver.run}
    calls this before every tree walk; call it between unrelated
    {!lint_unit} batches so duplicate detection does not leak across
    runs. *)

(** {2 Shared parsing and parsetree helpers}

    Layer C ({!Callgraph}, {!Typestate}) reuses Layer A's parser and
    identifier utilities so both layers agree on file positions and path
    normalization. *)

type parse_result =
  | Ok_impl of Parsetree.structure
  | Ok_intf of Parsetree.signature
  | Err of Finding.t  (** an ["E0"] finding at the error location *)

val parse : file:string -> kind:[ `Impl | `Intf ] -> string -> parse_result

val line_col : Location.t -> int * int
(** 1-based line, 0-based column of the location's start. *)

val ident_path : Parsetree.expression -> string list option
(** The flattened path of an identifier expression ([Transfer.send] ->
    [["Transfer"; "send"]]), with a leading [Stdlib.] stripped. *)

val rev_path : Parsetree.expression -> string list option
(** {!ident_path} reversed — suffix matching reads outward. *)

val labelled :
  string ->
  (Asttypes.arg_label * Parsetree.expression) list ->
  Parsetree.expression option
(** The argument carrying the given label, if present. *)

val release_names : string list
(** Last path components treated as reference-relinquishing calls by L4
    and by Layer C's unknown-callee fallback. *)
