type param_sum = {
  consumes : bool;
  sends : bool;
  secures : bool;
  writes : bool;
  reads : bool;
}

type returns = R_none | R_fresh of { volatile : bool } | R_param of int

type fsum = { params : param_sum array; ret : returns }

let bot_param =
  { consumes = false; sends = false; secures = false; writes = false;
    reads = false }

let bot ~nparams = { params = Array.make nparams bot_param; ret = R_none }

let join_param a b =
  {
    consumes = a.consumes || b.consumes;
    sends = a.sends || b.sends;
    secures = a.secures || b.secures;
    writes = a.writes || b.writes;
    reads = a.reads || b.reads;
  }

(* The return slot is not part of the monotone bit lattice: R_none is the
   unknown bottom and any disagreement sticks with the first committed
   answer, which keeps the fixpoint deterministic. *)
let join_ret a b =
  match (a, b) with R_none, x -> x | x, R_none -> x | x, _ -> x

let join a b =
  let n = max (Array.length a.params) (Array.length b.params) in
  let at s i = if i < Array.length s.params then s.params.(i) else bot_param in
  {
    params = Array.init n (fun i -> join_param (at a i) (at b i));
    ret = join_ret a.ret b.ret;
  }

let le_param a b =
  ((not a.consumes) || b.consumes)
  && ((not a.sends) || b.sends)
  && ((not a.secures) || b.secures)
  && ((not a.writes) || b.writes)
  && ((not a.reads) || b.reads)

let le a b =
  Array.length a.params <= Array.length b.params
  && Array.for_all2 le_param a.params
       (Array.sub b.params 0 (Array.length a.params))

let equal a b = a.ret = b.ret && a.params = b.params

type table = (string, fsum) Hashtbl.t

let find table d =
  match Hashtbl.find_opt table (Callgraph.key d) with
  | Some s -> s
  | None -> bot ~nparams:(List.length d.Callgraph.params)

(* Fixpoint over the SCCs in callees-first order. Each recomputed summary
   is joined onto the previous one, so per-definition state only grows
   along the finite bit lattice — termination does not depend on the
   analyze callback itself being monotone. [rounds] counts inner sweeps
   (the qcheck property bounds it). *)
let compute cg ~analyze =
  let table : table = Hashtbl.create 64 in
  let rounds = ref 0 in
  List.iter
    (fun scc ->
      let changed = ref true in
      let guard = ref 0 in
      while !changed && !guard < 64 do
        changed := false;
        incr guard;
        incr rounds;
        List.iter
          (fun d ->
            let old = find table d in
            let next = join old (analyze d ~lookup:(find table)) in
            if not (equal next old) then begin
              Hashtbl.replace table (Callgraph.key d) next;
              changed := true
            end)
          scc
      done)
    (Callgraph.sccs cg);
  (table, !rounds)
