open Fbufs
module Msg = Fbufs_msg.Msg

let make_message ~alloc ~as_ ~bytes ?fill () =
  if bytes <= 0 then invalid_arg "Testproto.make_message: bytes must be > 0";
  let machine = Region.machine (Allocator.region alloc) in
  let ps = machine.Fbufs_sim.Machine.cost.Fbufs_sim.Cost_model.page_size in
  let npages = (bytes + ps - 1) / ps in
  let fb = Allocator.alloc alloc ~npages in
  (match fill with
  | None -> Fbuf_api.touch_write fb ~as_
  | Some s ->
      let b = Bytes.create bytes in
      for i = 0 to bytes - 1 do
        Bytes.set b i s.[i mod String.length s]
      done;
      Fbuf_api.write_bytes fb ~as_ ~off:0 b);
  Msg.of_fbuf fb ~off:0 ~len:bytes

type sink = {
  proto : Fbufs_xkernel.Protocol.t;
  mutable received : int;
  mutable received_bytes : int;
  mutable last : Msg.t option;
}

let sink ~dom ?consume ?free () =
  let proto = Fbufs_xkernel.Protocol.create ~name:"sink" ~dom () in
  let t = { proto; received = 0; received_bytes = 0; last = None } in
  let consume =
    match consume with Some f -> f | None -> fun m -> Msg.touch_read m ~as_:dom
  in
  let free =
    match free with Some f -> f | None -> fun m -> Msg.free_all m ~dom
  in
  proto.Fbufs_xkernel.Protocol.pop <-
    (fun msg ->
      let m = Fbufs_xkernel.Protocol.machine proto in
      let csp =
        Fbufs_sim.Machine.span_enter m ~domain:dom.Fbufs_vm.Pd.name
          "sink.consume"
      in
      t.received <- t.received + 1;
      t.received_bytes <- t.received_bytes + Msg.length msg;
      t.last <- Some msg;
      consume msg;
      free msg;
      Fbufs_sim.Machine.span_exit m csp);
  t

let sink_proto t = t.proto
let received t = t.received
let received_bytes t = t.received_bytes
let last_message t = t.last
