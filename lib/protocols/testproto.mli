(** Test protocols: message source and dummy sink, as used by every
    experiment in the paper's section 4. *)

val make_message :
  alloc:Fbufs.Allocator.t ->
  as_:Fbufs_vm.Pd.t ->
  bytes:int ->
  ?fill:string ->
  unit ->
  Fbufs_msg.Msg.t
(** Allocate fbufs for a [bytes]-long message and initialize it: with
    [fill] absent, write one word in each page (the paper's originator
    workload); with [fill], tile the string across the whole payload (used
    by integrity tests). Raises [Invalid_argument] when [bytes] is not
    positive. *)

type sink

val sink :
  dom:Fbufs_vm.Pd.t ->
  ?consume:(Fbufs_msg.Msg.t -> unit) ->
  ?free:(Fbufs_msg.Msg.t -> unit) ->
  unit ->
  sink
(** The paper's dummy protocol: on pop it touches one word in each page of
    the message and deallocates it. [consume] replaces the default
    touch-read; [free] replaces the default [Msg.free_all] (e.g. with
    {!Fbufs_ipc.Ipc.free_deferred} when the buffers belong to a peer). *)

val sink_proto : sink -> Fbufs_xkernel.Protocol.t
val received : sink -> int
val received_bytes : sink -> int
val last_message : sink -> Fbufs_msg.Msg.t option
