(** A simplified IP: fragmentation on push, reassembly on pop.

    Messages larger than the configured PDU size are fragmented by buffer
    editing alone — each fragment shares the original message's fbufs and
    gains a fresh 20-byte header fbuf. Reassembly joins fragment payloads
    back into the original byte stream. Both directions support messages
    far larger than 64 KB (the paper modified UDP/IP the same way).

    Header layout (big-endian):
    {v
    0  u16 magic 0x4950 ("IP")
    2  u32 total payload length of the original message
    6  u32 message id
    10 u32 fragment offset
    14 u32 fragment payload length
    18 u8  more-fragments flag
    19 u8  reserved
    v} *)

val header_size : int

type t

val create :
  dom:Fbufs_vm.Pd.t ->
  below:Fbufs_xkernel.Protocol.t ->
  header_alloc:Fbufs.Allocator.t ->
  ?pdu_size:int ->
  unit ->
  t
(** [pdu_size] defaults to 4096 bytes of payload per fragment (the paper's
    local-loopback configuration; the end-to-end tests use 16 KB). Raises
    [Invalid_argument] when [pdu_size] is not positive. *)

val proto : t -> Fbufs_xkernel.Protocol.t
(** Push fragments downward through [below]; wire [below]'s receive side to
    this protocol's [pop]. *)

val set_up : t -> Fbufs_xkernel.Protocol.t -> unit
(** Where completed (reassembled) messages are delivered. *)

val fragments_sent : t -> int
val reassemblies_completed : t -> int
