(** Local loopback pseudo-driver.

    Configured below IP, it turns every pushed PDU around and delivers it
    back up the receive side — "the use of a loopback protocol rather than
    a real device driver simulates an infinitely fast network", so it
    charges no transmission time and no driver cost. *)

type t

val create : dom:Fbufs_vm.Pd.t -> unit -> t
(** The returned protocol's push raises [Failure] if a message arrives
    before {!set_up} has wired an upper protocol. *)

val proto : t -> Fbufs_xkernel.Protocol.t
val set_up : t -> Fbufs_xkernel.Protocol.t -> unit
(** The receive-side protocol (typically IP's pop). *)

val pdus : t -> int
