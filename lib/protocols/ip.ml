open Fbufs_sim
module Msg = Fbufs_msg.Msg

let header_size = 20
let magic = 0x4950

type reasm = {
  mutable got : (int * Msg.t) list; (* (offset, payload) *)
  mutable bytes : int;
  mutable total : int option; (* known once the last fragment arrives *)
}

type t = {
  dom : Fbufs_vm.Pd.t;
  below : Fbufs_xkernel.Protocol.t;
  header_alloc : Fbufs.Allocator.t;
  pdu_size : int;
  proto : Fbufs_xkernel.Protocol.t;
  mutable up : Fbufs_xkernel.Protocol.t option;
  mutable next_id : int;
  table : (int, reasm) Hashtbl.t;
  mutable fragments_sent : int;
  mutable reassemblies : int;
}

let proto t = t.proto
let set_up t p = t.up <- Some p
let fragments_sent t = t.fragments_sent
let reassemblies_completed t = t.reassemblies

let make_header ~total ~id ~off ~len ~more =
  let b = Bytes.create header_size in
  Header.set_u16 b 0 magic;
  Header.set_u32 b 2 total;
  Header.set_u32 b 6 id;
  Header.set_u32 b 10 off;
  Header.set_u32 b 14 len;
  Bytes.set b 18 (if more then '\001' else '\000');
  Bytes.set b 19 '\000';
  b

let charge_frag t =
  let m = Fbufs_xkernel.Protocol.machine t.proto in
  Machine.charge ~comp:Fbufs_metrics.Component.Proto m
    m.Machine.cost.Cost_model.frag_op;
  Stats.incr m.Machine.stats "ip.frag_op"

let push t msg =
  let m = Fbufs_xkernel.Protocol.machine t.proto in
  let csp = Machine.span_enter m ~domain:t.dom.Fbufs_vm.Pd.name "ip.push" in
  Fbufs_xkernel.Protocol.charge_op t.proto;
  let total = Msg.length msg in
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let rec send off rest =
    let len = min t.pdu_size (Msg.length rest) in
    let frag, rest = Msg.split rest len in
    let more = not (Msg.is_empty rest) in
    if more || off > 0 then charge_frag t;
    let hdr = make_header ~total ~id ~off ~len ~more in
    let hdr_fb, pdu =
      Header.prepend ~alloc:t.header_alloc ~as_:t.dom hdr frag
    in
    t.fragments_sent <- t.fragments_sent + 1;
    t.below.Fbufs_xkernel.Protocol.push pdu;
    (* The push is synchronous: downstream consumers (driver DMA or the
       receive side of a loopback) are done with this PDU's header. *)
    Header.release_header ~dom:t.dom hdr_fb;
    if more then send (off + len) rest
  in
  send 0 msg;
  Machine.span_exit m csp

let deliver_up t msg =
  match t.up with
  | Some up -> up.Fbufs_xkernel.Protocol.pop msg
  | None -> failwith "Ip: no upper protocol wired"

let pop t pdu =
  let m = Fbufs_xkernel.Protocol.machine t.proto in
  let csp = Machine.span_enter m ~domain:t.dom.Fbufs_vm.Pd.name "ip.pop" in
  Fbufs_xkernel.Protocol.charge_op t.proto;
  let hdr = Header.peek pdu ~as_:t.dom ~len:header_size in
  (if Header.get_u16 hdr 0 <> magic then
    Stats.incr (Fbufs_xkernel.Protocol.machine t.proto).Machine.stats "ip.bad_header"
  else begin
    let total = Header.get_u32 hdr 2 in
    let id = Header.get_u32 hdr 6 in
    let off = Header.get_u32 hdr 10 in
    let len = Header.get_u32 hdr 14 in
    let more = Bytes.get hdr 18 = '\001' in
    let payload = Msg.truncate (Msg.clip pdu header_size) len in
    Header.free_stripped ~dom:t.dom ~pdu ~payload;
    if (not more) && off = 0 then deliver_up t payload
    else begin
      charge_frag t;
      let r =
        match Hashtbl.find_opt t.table id with
        | Some r -> r
        | None ->
            let r = { got = []; bytes = 0; total = None } in
            Hashtbl.add t.table id r;
            r
      in
      r.got <- (off, payload) :: r.got;
      r.bytes <- r.bytes + len;
      if not more then r.total <- Some total;
      match r.total with
      | Some want when r.bytes >= want ->
          Hashtbl.remove t.table id;
          let parts =
            List.sort (fun (a, _) (b, _) -> compare a b) r.got
          in
          let whole =
            List.fold_left (fun acc (_, p) -> Msg.join acc p) Msg.empty parts
          in
          t.reassemblies <- t.reassemblies + 1;
          deliver_up t whole
      | Some _ | None -> ()
    end
  end);
  Machine.span_exit m csp

let create ~dom ~below ~header_alloc ?(pdu_size = 4096) () =
  if pdu_size <= 0 then invalid_arg "Ip.create: pdu_size must be positive";
  let proto = Fbufs_xkernel.Protocol.create ~name:"ip" ~dom () in
  let t =
    {
      dom;
      below;
      header_alloc;
      pdu_size;
      proto;
      up = None;
      next_id = 1;
      table = Hashtbl.create 16;
      fragments_sent = 0;
      reassemblies = 0;
    }
  in
  proto.Fbufs_xkernel.Protocol.push <- push t;
  proto.Fbufs_xkernel.Protocol.pop <- pop t;
  t
