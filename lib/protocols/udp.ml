open Fbufs_sim
module Msg = Fbufs_msg.Msg

let header_size = 12
let magic = 0x5544

type t = {
  dom : Fbufs_vm.Pd.t;
  below : Fbufs_xkernel.Protocol.t;
  header_alloc : Fbufs.Allocator.t;
  src_port : int;
  dst_port : int;
  checksum : bool;
  proto : Fbufs_xkernel.Protocol.t;
  ports : (int, Fbufs_xkernel.Protocol.t) Hashtbl.t;
  mutable checksum_failures : int;
  mutable delivered : int;
  mutable no_port_drops : int;
}

let proto t = t.proto
let bind t ~port p = Hashtbl.replace t.ports port p
let checksum_failures t = t.checksum_failures
let delivered t = t.delivered
let no_port_drops t = t.no_port_drops

let push t msg =
  let m = Fbufs_xkernel.Protocol.machine t.proto in
  let csp = Machine.span_enter m ~domain:t.dom.Fbufs_vm.Pd.name "udp.push" in
  Fbufs_xkernel.Protocol.charge_op t.proto;
  let csum = if t.checksum then Msg.checksum msg ~as_:t.dom else 0 in
  let b = Bytes.create header_size in
  Header.set_u16 b 0 magic;
  Header.set_u16 b 2 t.src_port;
  Header.set_u16 b 4 t.dst_port;
  Header.set_u32 b 6 (Msg.length msg);
  Header.set_u16 b 10 csum;
  let hdr_fb, pdu = Header.prepend ~alloc:t.header_alloc ~as_:t.dom b msg in
  t.below.Fbufs_xkernel.Protocol.push pdu;
  Header.release_header ~dom:t.dom hdr_fb;
  Machine.span_exit m csp

let pop t pdu =
  let m = Fbufs_xkernel.Protocol.machine t.proto in
  let csp = Machine.span_enter m ~domain:t.dom.Fbufs_vm.Pd.name "udp.pop" in
  Fbufs_xkernel.Protocol.charge_op t.proto;
  let stats = (Fbufs_xkernel.Protocol.machine t.proto).Machine.stats in
  (if Msg.length pdu < header_size then Stats.incr stats "udp.short_pdu"
  else begin
    let hdr = Header.peek pdu ~as_:t.dom ~len:header_size in
    if Header.get_u16 hdr 0 <> magic then Stats.incr stats "udp.bad_header"
    else begin
      let dst = Header.get_u16 hdr 4 in
      let len = Header.get_u32 hdr 6 in
      let csum = Header.get_u16 hdr 10 in
      let payload = Msg.truncate (Msg.clip pdu header_size) len in
      Header.free_stripped ~dom:t.dom ~pdu ~payload;
      let ok =
        csum = 0
        || Msg.checksum payload ~as_:t.dom = csum
      in
      if not ok then begin
        t.checksum_failures <- t.checksum_failures + 1;
        Stats.incr stats "udp.checksum_failure"
      end
      else
        match Hashtbl.find_opt t.ports dst with
        | Some up ->
            t.delivered <- t.delivered + 1;
            up.Fbufs_xkernel.Protocol.pop payload
        | None ->
            t.no_port_drops <- t.no_port_drops + 1;
            Stats.incr stats "udp.no_port"
    end
  end);
  Machine.span_exit m csp

let create ~dom ~below ~header_alloc ?(src_port = 1000) ?(dst_port = 2000)
    ?(checksum = false) () =
  let proto = Fbufs_xkernel.Protocol.create ~name:"udp" ~dom () in
  let t =
    {
      dom;
      below;
      header_alloc;
      src_port;
      dst_port;
      checksum;
      proto;
      ports = Hashtbl.create 8;
      checksum_failures = 0;
      delivered = 0;
      no_port_drops = 0;
    }
  in
  proto.Fbufs_xkernel.Protocol.push <- push t;
  proto.Fbufs_xkernel.Protocol.pop <- pop t;
  t
