(* splitmix64.

   The state is stored as two 32-bit halves in immediate [int] fields
   rather than one [int64] field: int64 record fields are boxed, so a
   [t.state <- ...] store would allocate on every draw — and the TLB
   replacement path draws on every domain crossing. The arithmetic itself
   stays in [Int64]: the native compiler unboxes let-bound int64 locals
   whose uses are all arithmetic, so each draw below compiles to straight
   64-bit register code with zero allocation. That same unboxing rule is
   why [int]/[float]/[bool] duplicate the mixing chain instead of calling
   [next]: without flambda a call boundary would box the returned int64. *)

type t = { mutable hi : int; mutable lo : int }
(* Invariant: 0 <= hi < 2^32, 0 <= lo < 2^32; the state is hi * 2^32 + lo. *)

let golden = 0x9E3779B97F4A7C15L

let of_int64 s =
  {
    hi = Int64.to_int (Int64.shift_right_logical s 32);
    lo = Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  }

let create seed = of_int64 (Int64.add (Int64.of_int seed) 0x2545F4914F6CDD1DL)

(* splitmix64: one 64-bit multiply-xor-shift chain per output. *)
let next t =
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* Shift by 2 so the value fits OCaml's 63-bit int without wrapping. *)
  let v = Int64.to_int (Int64.shift_right_logical z 2) in
  (* Same result either way ([v] is non-negative); the mask path skips the
     division, which matters because TLB random replacement draws with a
     power-of-two bound on every eviction. *)
  if bound land (bound - 1) = 0 then v land (bound - 1) else v mod bound

let float t bound =
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let v = Int64.to_float (Int64.shift_right_logical z 11) in
  v /. 9007199254740992.0 *. bound

let bool t =
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let split t = of_int64 (next t)

(* Keyed substream derivation. Unlike [split], forking does NOT advance the
   parent: the child seed is the splitmix64 finalizer applied to the
   parent's *current* state perturbed by [key]. Inserting or removing fork
   calls therefore leaves every subsequent parent draw byte-identical,
   which is what lets the checker keep op generation, shrinking and
   machine-level randomness on provably independent streams without
   disturbing the golden draw sequences. Equal (state, key) pairs yield
   equal children; use distinct keys for distinct subsystems. *)
let fork t key =
  let s =
    Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo)
  in
  let s = Int64.add s (Int64.mul (Int64.add (Int64.of_int key) 1L) golden) in
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  of_int64 (Int64.logxor z (Int64.shift_right_logical z 31))
