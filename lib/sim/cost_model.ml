type t = {
  cpu_mhz : float;
  page_size : int;
  word_size : int;
  word_touch : float;
  cache_miss : float;
  tlb_refill : float;
  tlb_mod_fault : float;
  copy_per_byte : float;
  checksum_per_byte : float;
  page_zero : float;
  vm_page_op : float;
  pmap_enter : float;
  pmap_remove : float;
  pmap_protect : float;
  tlb_shootdown : float;
  tlb_shootdown_batch_base : float;
  tlb_shootdown_batch_entry : float;
  vm_range_op : float;
  fault_trap : float;
  remap_page_overhead : float;
  page_alloc : float;
  page_free : float;
  policy_check : float;
  policy_victim_scan : float;
  ipc_call : float;
  ipc_reply : float;
  ipc_per_fbuf : float;
  ipc_tlb_footprint : int;
  urpc_call : float;
  urpc_reply : float;
  urpc_tlb_footprint : int;
  proto_op : float;
  frag_op : float;
  driver_op : float;
  interrupt : float;
  link_mbps : float;
  cell_payload : int;
  cell_total : int;
  dma_startup : float;
  dma_mbps : float;
  bus_contention : float;
}

(* Calibration notes (see DESIGN.md section 5).  The anchors from the paper:
   - cached/volatile fbufs cost 3 us/page, all of it TLB refills and cache
     fills in the two domains that touch one word per page;
   - volatile (uncached) fbufs cost 21 us/page: frame alloc + two pmap
     enters + two removes + shootdowns + frame free on top of the 3 us;
   - cached (non-volatile) fbufs cost 29 us/page: write-protect on send,
     write-restore on free, plus the TLB modification fault the originator
     takes when it next writes the reused page;
   - zeroing a page takes 57 us;
   - Mach IPC round trip on this machine is ~100 us. *)
let decstation_5000_200 =
  {
    cpu_mhz = 25.0;
    page_size = 4096;
    word_size = 4;
    word_touch = 0.04;
    cache_miss = 0.26;
    tlb_refill = 1.2;
    tlb_mod_fault = 4.0;
    copy_per_byte = 0.025;
    checksum_per_byte = 0.020;
    page_zero = 57.0;
    vm_page_op = 1.0;
    pmap_enter = 2.0;
    pmap_remove = 2.0;
    pmap_protect = 11.5;
    tlb_shootdown = 1.2;
    tlb_shootdown_batch_base = 1.2;
    tlb_shootdown_batch_entry = 0.3;
    vm_range_op = 9.0;
    fault_trap = 3.6;
    remap_page_overhead = 6.0;
    page_alloc = 0.7;
    page_free = 0.5;
    policy_check = 0.4;
    policy_victim_scan = 1.6;
    ipc_call = 55.0;
    ipc_reply = 45.0;
    ipc_per_fbuf = 4.0;
    ipc_tlb_footprint = 24;
    urpc_call = 14.0;
    urpc_reply = 12.0;
    urpc_tlb_footprint = 6;
    proto_op = 25.0;
    frag_op = 15.0;
    driver_op = 260.0;
    interrupt = 60.0;
    link_mbps = 622.0;
    cell_payload = 48;
    cell_total = 53;
    dma_startup = 0.565;
    dma_mbps = 800.0;
    bus_contention = 0.288;
  }

let page_words c = c.page_size / c.word_size

let cell_time c =
  let wire = float_of_int c.cell_total *. 8.0 /. c.link_mbps in
  let dma =
    c.dma_startup +. (float_of_int c.cell_payload *. 8.0 /. c.dma_mbps)
  in
  let dma = dma *. (1.0 +. c.bus_contention) in
  Float.max wire dma

let effective_net_mbps c =
  float_of_int c.cell_payload *. 8.0 /. cell_time c

let pp ppf c =
  Format.fprintf ppf
    "@[<v>cpu %.0f MHz, page %d B, word %d B@,\
     access: touch %.2f, miss %.2f, refill %.2f, mod-fault %.2f@,\
     copy %.4f us/B, csum %.4f us/B, zero %.1f us/page@,\
     vm: page-op %.2f, enter %.2f, remove %.2f, protect %.2f, shootdown %.2f@,\
     vm: shootdown-batch %.2f + %.2f/entry@,\
     vm: range-op %.2f, fault %.2f, palloc %.2f, pfree %.2f@,\
     policy: check %.2f, victim-scan %.2f@,\
     ipc: call %.1f, reply %.1f, per-fbuf %.1f@,\
     proto %.1f, frag %.1f, driver %.1f, intr %.1f@,\
     link %.0f Mb/s, cell %d/%d, dma %.3f us + %.0f Mb/s, contention %.3f@,\
     => effective net %.1f Mb/s@]"
    c.cpu_mhz c.page_size c.word_size c.word_touch c.cache_miss c.tlb_refill
    c.tlb_mod_fault c.copy_per_byte c.checksum_per_byte c.page_zero
    c.vm_page_op c.pmap_enter c.pmap_remove c.pmap_protect c.tlb_shootdown
    c.tlb_shootdown_batch_base c.tlb_shootdown_batch_entry
    c.vm_range_op c.fault_trap c.page_alloc c.page_free c.policy_check
    c.policy_victim_scan c.ipc_call
    c.ipc_reply c.ipc_per_fbuf c.proto_op c.frag_op c.driver_op c.interrupt
    c.link_mbps c.cell_payload c.cell_total c.dma_startup c.dma_mbps
    c.bus_contention (effective_net_mbps c)
