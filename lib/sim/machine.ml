module Trace = Fbufs_trace.Trace

(* All-float record: mutated in place on every charge, no boxing. *)
type busy = { mutable busy_us : float }

type t = {
  name : string;
  clock : Clock.t;
  cost : Cost_model.t;
  pmem : Phys_mem.t;
  tlb : Tlb.t;
  stats : Stats.t;
  rng : Rng.t;
  busy : busy;
  mutable next_asid : int;
  mutable next_id : int;
  mutable trace : Trace.t option;
  mutable metrics : Fbufs_metrics.Metrics.t option;
  mutable spans : Fbufs_span.Span.t option;
  mutable series : Fbufs_metrics.Timeseries.t option;
  mutable comp_ctx : Fbufs_metrics.Component.t option;
  mutable seq_hook : (t -> string -> unit) option;
  mutable on_tick : (float -> unit) option;
}

let default_trace : Trace.t option ref = ref None
let default_metrics : Fbufs_metrics.Metrics.t option ref = ref None
let default_spans : Fbufs_span.Span.t option ref = ref None
let default_series : Fbufs_metrics.Timeseries.t option ref = ref None
let default_seq_hook : (t -> string -> unit) option ref = ref None
let default_tick : (float -> unit) option ref = ref None

let create ?(name = "host") ?(cost = Cost_model.decstation_5000_200)
    ?(nframes = 4096) ?(tlb_entries = 64) ?(seed = 42) ?trace ?metrics ?spans
    ?series () =
  let rng = Rng.create seed in
  {
    name;
    clock = Clock.create ();
    cost;
    pmem = Phys_mem.create ~page_size:cost.Cost_model.page_size ~nframes;
    tlb = Tlb.create ~entries:tlb_entries (Rng.split rng);
    stats = Stats.create ();
    rng;
    busy = { busy_us = 0.0 };
    next_asid = 1;
    next_id = 1;
    trace = (match trace with Some _ as t -> t | None -> !default_trace);
    metrics = (match metrics with Some _ as x -> x | None -> !default_metrics);
    spans = (match spans with Some _ as s -> s | None -> !default_spans);
    series = (match series with Some _ as s -> s | None -> !default_series);
    comp_ctx = None;
    seq_hook = !default_seq_hook;
    on_tick = !default_tick;
  }

let set_trace m tr = m.trace <- tr
let tracing m = m.trace <> None
let set_metrics m x = m.metrics <- x
let metered m = m.metrics <> None
let metrics m = m.metrics
let set_spans m s = m.spans <- s
let spanning m = m.spans <> None
let spans m = m.spans
let set_series m s = m.series <- s
let series m = m.series
let set_seq_hook m h = m.seq_hook <- h
let set_tick m h = m.on_tick <- h

(* Sequence point: a place where the system's invariants are expected to
   hold (an IPC reply delivered, a transfer secured, a pageout sweep
   done). The online monitors hang off this; with no hook installed the
   cost is one pointer compare. *)
let seq_point m site =
  match m.seq_hook with None -> () | Some f -> f m site

let with_comp m c f =
  let saved = m.comp_ctx in
  m.comp_ctx <- Some c;
  Fun.protect ~finally:(fun () -> m.comp_ctx <- saved) f

let charge ?kind ?comp m us =
  (* A surrounding [with_comp] context wins over the call site's tag:
     e.g. the page allocation inside aggregate-object deserialization is
     DAG-support cost, not allocator cost. *)
  let eff = match m.comp_ctx with Some _ as c -> c | None -> comp in
  (match (m.trace, kind) with
  | Some tr, Some k ->
      (* [Component.label] returns a literal, so the fast path stores
         no young pointer into the ring. *)
      let comp =
        match eff with
        | Some c -> Fbufs_metrics.Component.label c
        | None -> ""
      in
      Trace.complete_comp tr ~ts_us:(Clock.now m.clock) ~dur_us:us
        ~machine:m.name ~comp k
  | _ -> ());
  (match m.metrics with
  | None -> ()
  | Some mx ->
      let c = match eff with Some c -> c | None -> Fbufs_metrics.Component.Other in
      let k = match kind with Some k -> k | None -> "" in
      Fbufs_metrics.Ledger.charge
        (Fbufs_metrics.Metrics.ledger mx)
        ~machine:m.name ~comp:c ~kind:k us);
  (match m.spans with
  | None -> ()
  | Some s ->
      let c = match eff with Some c -> c | None -> Fbufs_metrics.Component.Other in
      Fbufs_span.Span.on_charge s ~machine:m.name ~comp:c us);
  (match (m.series, m.metrics) with
  | Some ts, Some mx ->
      Fbufs_metrics.Timeseries.tick ts ~now_us:(Clock.now m.clock) mx
  | _ -> ());
  Clock.advance m.clock us;
  m.busy.busy_us <- m.busy.busy_us +. us;
  match m.on_tick with Some f -> f (Clock.now m.clock) | None -> ()

let charge_n ?kind ?comp m n us = charge ?kind ?comp m (float_of_int n *. us)

let trace_instant m ?domain ?path_id ?args kind =
  match m.trace with
  | None -> ()
  | Some tr ->
      Trace.instant tr ~ts_us:(Clock.now m.clock) ~machine:m.name ?domain
        ?path_id ?args kind

let span_begin m ?domain ?path_id ?args kind =
  match m.trace with
  | None -> 0
  | Some tr ->
      Trace.begin_span tr ~ts_us:(Clock.now m.clock) ~machine:m.name ?domain
        ?path_id ?args kind

let span_end m ?args id =
  match m.trace with
  | None -> ()
  | Some tr -> if id <> 0 then Trace.end_span tr ~ts_us:(Clock.now m.clock) ?args id

let with_span m ?domain ?path_id kind f =
  match m.trace with
  | None -> f ()
  | Some _ ->
      let id = span_begin m ?domain ?path_id kind in
      Fun.protect ~finally:(fun () -> span_end m id) f

let async_begin m ?domain ?path_id ?args ~id kind =
  match m.trace with
  | None -> ()
  | Some tr ->
      Trace.async_begin tr ~ts_us:(Clock.now m.clock) ~machine:m.name ?domain
        ?path_id ?args ~id kind

let async_end m ?domain ?path_id ?args ~id kind =
  match m.trace with
  | None -> ()
  | Some tr ->
      Trace.async_end tr ~ts_us:(Clock.now m.clock) ~machine:m.name ?domain
        ?path_id ?args ~id kind

(* Causal span plumbing. Like the trace spans above, ids are 0 and the
   calls do nothing when no sink is attached, so instrumentation sites
   need no guards; unlike trace spans these carry the transfer context
   that {!charge} attributes cost into. *)

let transfer_begin m ?domain ?path_id label =
  match m.spans with
  | None -> 0
  | Some s ->
      Fbufs_span.Span.transfer_begin s ~machine:m.name
        ~ts_us:(Clock.now m.clock) ?domain ?path_id label

let transfer_end m tid =
  match m.spans with
  | None -> ()
  | Some s ->
      Fbufs_span.Span.transfer_end s ~machine:m.name ~ts_us:(Clock.now m.clock)
        tid

let with_transfer m ?domain ?path_id label f =
  match m.spans with
  | None -> f ()
  | Some _ ->
      let tid = transfer_begin m ?domain ?path_id label in
      Fun.protect ~finally:(fun () -> transfer_end m tid) f

let span_enter m ?domain ?path_id kind =
  match m.spans with
  | None -> 0
  | Some s ->
      Fbufs_span.Span.enter s ~machine:m.name ~ts_us:(Clock.now m.clock)
        ?domain ?path_id kind

let span_exit m id =
  match m.spans with
  | None -> ()
  | Some s ->
      Fbufs_span.Span.finish s ~machine:m.name ~ts_us:(Clock.now m.clock) id

let span_adopt m ~transfer ?follows ?domain ?path_id kind =
  match m.spans with
  | None -> 0
  | Some s ->
      Fbufs_span.Span.adopt s ~machine:m.name ~ts_us:(Clock.now m.clock)
        ~transfer ?follows ?domain ?path_id kind

let span_flight m ~transfer ~follows ~start_us ~end_us ?path_id kind =
  match m.spans with
  | None -> 0
  | Some s ->
      Fbufs_span.Span.flight s ~transfer ~follows ~start_us ~end_us ?path_id
        kind

let current_transfer m =
  match m.spans with
  | None -> 0
  | Some s -> Fbufs_span.Span.current s ~machine:m.name

let span_context m =
  match m.spans with
  | None -> (0, 0)
  | Some s -> Fbufs_span.Span.context s ~machine:m.name

let elapse_to ?kind m t =
  (match (m.trace, kind) with
  | Some tr, Some k ->
      let now = Clock.now m.clock in
      if t > now then
        Trace.complete tr ~ts_us:now ~dur_us:(t -. now) ~machine:m.name k
  | _ -> ());
  Clock.advance_to m.clock t;
  match m.on_tick with Some f -> f (Clock.now m.clock) | None -> ()

let now m = Clock.now m.clock

let fresh_asid m =
  let a = m.next_asid in
  m.next_asid <- a + 1;
  a

let fresh_id m =
  let i = m.next_id in
  m.next_id <- i + 1;
  i

let cpu_load m ~since =
  let span = now m -. since in
  if span <= 0.0 then 0.0 else Float.min 1.0 (m.busy.busy_us /. span)

let busy_us m = m.busy.busy_us

let checkpoint m = (now m, busy_us m)

let load_since m (t0, busy0) =
  let span = now m -. t0 in
  if span <= 0.0 then 0.0 else Float.min 1.0 ((busy_us m -. busy0) /. span)

(* The kernel's IPC path occupies a distinguished address space (ASID 0)
   and touches a working set of code and data pages on every crossing. *)
let domain_crossing_tlb_pressure ?entries m =
  let n =
    match entries with
    | Some n -> n
    | None -> m.cost.Cost_model.ipc_tlb_footprint
  in
  if tracing m then
    trace_instant m ~args:[ ("entries", Fbufs_trace.Trace.Int n) ]
      "tlb.pressure";
  for i = 0 to n - 1 do
    Tlb.insert m.tlb ~asid:0 ~vpn:(0x70000 + (i * 7) + Rng.int m.rng 5)
      ~writable:false
  done

let reset_stats m = Stats.reset m.stats
