(* Open-addressed int -> int map used as the TLB's tag index. Linear
   probing with tombstones and Fibonacci hashing; the capacity is fixed at
   8x the TLB size (live entries never exceed the number of slots, so the
   load factor stays under 1/8 and probe chains are short), and a
   full in-place rehash runs when tombstones fill half the table, which
   amortizes to O(1) per deletion. Much cheaper per operation than a
   generic [Hashtbl]: IPC domain crossings insert dozens of entries each,
   so this sits on the simulator's hottest path.

   Values are TLB slot numbers and each is bound to at most one key, so
   the table also keeps the inverse map [inv] : value -> table slot.
   Deleting by value ([remove_value], the eviction/shootdown path) is then
   a direct tombstone write with no probe at all. [inv] entries are only
   meaningful for live values; rehash rebuilds them as it reinserts. *)
module Itab = struct
  type t = {
    key : int array;
    value : int array;
    inv : int array; (* value -> slot holding it, for live values *)
    state : Bytes.t; (* '\000' empty, '\001' live, '\002' tombstone *)
    mask : int;
    mutable live : int;
    mutable used : int; (* live + tombstones *)
  }

  let create ~capacity_for =
    let rec pow2 c = if c >= 8 * capacity_for then c else pow2 (c * 2) in
    let cap = pow2 16 in
    {
      key = Array.make cap 0;
      value = Array.make cap 0;
      inv = Array.make capacity_for (-1);
      state = Bytes.make cap '\000';
      mask = cap - 1;
      live = 0;
      used = 0;
    }

  let slot_of t k =
    let h = k * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land t.mask

  let find t k =
    let rec loop i =
      match Bytes.unsafe_get t.state i with
      | '\000' -> -1
      | '\001' when Array.unsafe_get t.key i = k -> Array.unsafe_get t.value i
      | _ -> loop ((i + 1) land t.mask)
    in
    loop (slot_of t k)

  let rec replace t k v =
    (* Track the first tombstone on the probe path so deleted slots are
       recycled; fall through to it only once the key is known absent. *)
    let rec loop i tomb =
      match Bytes.unsafe_get t.state i with
      | '\001' when Array.unsafe_get t.key i = k ->
          t.value.(i) <- v;
          t.inv.(v) <- i
      | '\000' ->
          if tomb >= 0 then begin
            t.key.(tomb) <- k;
            t.value.(tomb) <- v;
            t.inv.(v) <- tomb;
            Bytes.set t.state tomb '\001';
            t.live <- t.live + 1
          end
          else if 2 * (t.used + 1) > t.mask + 1 then begin
            rehash t;
            replace t k v
          end
          else begin
            t.key.(i) <- k;
            t.value.(i) <- v;
            t.inv.(v) <- i;
            Bytes.set t.state i '\001';
            t.live <- t.live + 1;
            t.used <- t.used + 1
          end
      | '\002' when tomb < 0 -> loop ((i + 1) land t.mask) i
      | _ -> loop ((i + 1) land t.mask) tomb
    in
    loop (slot_of t k) (-1)

  and rehash t =
    let cap = t.mask + 1 in
    let old_key = Array.copy t.key and old_val = Array.copy t.value in
    let old_state = Bytes.copy t.state in
    Bytes.fill t.state 0 cap '\000';
    t.live <- 0;
    t.used <- 0;
    for i = 0 to cap - 1 do
      if Bytes.get old_state i = '\001' then replace t old_key.(i) old_val.(i)
    done

  (* Delete the binding whose value is [v]. The caller guarantees [v] is
     currently bound (the TLB only evicts/invalidates valid entries), so
     this is one array read and a tombstone write — no probe. *)
  let remove_value t v =
    let i = t.inv.(v) in
    Bytes.set t.state i '\002';
    t.live <- t.live - 1;
    (* If the probe chain ends right after [i], this tombstone (and any
       tombstones immediately preceding it) can revert to empty: no lookup
       can terminate early because of them. At low load this reclaims
       almost every deletion in place, so the tombstone-triggered rehash
       almost never runs. *)
    if Bytes.unsafe_get t.state ((i + 1) land t.mask) = '\000' then begin
      let rec clean j =
        if Bytes.unsafe_get t.state j = '\002' then begin
          Bytes.set t.state j '\000';
          t.used <- t.used - 1;
          clean ((j - 1) land t.mask)
        end
      in
      clean i
    end

  let clear t =
    Bytes.fill t.state 0 (t.mask + 1) '\000';
    t.live <- 0;
    t.used <- 0
end

type entry = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable writable : bool;
}

(* [index] maps the (asid, vpn) tag of every *valid* slot to its slot
   number, so probes and shootdowns are O(1) instead of a scan over the
   whole array; [valid_count] lets [insert] know without scanning whether
   an invalid slot exists. Invariants: a tag is in [index] iff its slot is
   valid, and [valid_count] equals the number of valid slots. *)
type t = {
  slots : entry array;
  rng : Rng.t;
  index : Itab.t;
  mutable valid_count : int;
}

type probe_result = Hit | Hit_readonly | Miss

let key ~asid ~vpn = (asid lsl 40) + vpn

let create ?(entries = 64) rng =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  let slots =
    Array.init entries (fun _ ->
        { valid = false; asid = 0; vpn = 0; writable = false })
  in
  { slots; rng; index = Itab.create ~capacity_for:entries; valid_count = 0 }

let entries t = Array.length t.slots

let probe t ~asid ~vpn ~write =
  let i = Itab.find t.index (key ~asid ~vpn) in
  if i = -1 then Miss
  else if write && not (Array.unsafe_get t.slots i).writable then Hit_readonly
  else Hit

let insert t ~asid ~vpn ~writable =
  let k = key ~asid ~vpn in
  let i =
    match Itab.find t.index k with
    | -1 ->
        let n = Array.length t.slots in
        (* Prefer the lowest-numbered invalid slot; otherwise evict a
           random victim, as the R3000 'tlbwr' (write-random) refill idiom
           does. The invalid-slot scan only runs while the TLB is filling
           up (or right after a flush); in steady state it is skipped. *)
        let victim =
          if t.valid_count < n then begin
            let rec invalid i =
              if not t.slots.(i).valid then i else invalid (i + 1)
            in
            invalid 0
          end
          else Rng.int t.rng n
        in
        let e = t.slots.(victim) in
        if e.valid then begin
          Itab.remove_value t.index victim;
          t.valid_count <- t.valid_count - 1;
          e.valid <- false
        end;
        Itab.replace t.index k victim;
        victim
    | i -> i
  in
  let e = t.slots.(i) in
  if not e.valid then t.valid_count <- t.valid_count + 1;
  e.valid <- true;
  e.asid <- asid;
  e.vpn <- vpn;
  e.writable <- writable

let invalidate t ~asid ~vpn =
  match Itab.find t.index (key ~asid ~vpn) with
  | -1 -> ()
  | i ->
      t.slots.(i).valid <- false;
      Itab.remove_value t.index i;
      t.valid_count <- t.valid_count - 1

let flush_asid t ~asid =
  Array.iteri
    (fun i e ->
      if e.valid && e.asid = asid then begin
        e.valid <- false;
        Itab.remove_value t.index i;
        t.valid_count <- t.valid_count - 1
      end)
    t.slots

let flush_all t =
  Array.iter (fun e -> e.valid <- false) t.slots;
  Itab.clear t.index;
  t.valid_count <- 0

let valid_entries t = t.valid_count
