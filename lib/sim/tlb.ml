(* Open-addressed int -> int map used as the TLB's tag index. Linear
   probing with tombstones and Fibonacci hashing; the capacity is fixed at
   8x the TLB size (live entries never exceed the number of slots, so the
   load factor stays under 1/8 and probe chains are short), and a
   full in-place rehash runs when tombstones fill half the table, which
   amortizes to O(1) per deletion. Much cheaper per operation than a
   generic [Hashtbl]: IPC domain crossings insert dozens of entries each,
   so this sits on the simulator's hottest path.

   Values are TLB slot numbers and each is bound to at most one key, so
   the table also keeps the inverse map [inv] : value -> table slot.
   Deleting by value ([remove_value], the eviction/shootdown path) is then
   a direct tombstone write with no probe at all. [inv] entries are only
   meaningful for live values; rehash rebuilds them as it reinserts. *)
module Itab = struct
  type t = {
    key : int array;
    value : int array;
    inv : int array; (* value -> slot holding it, for live values *)
    state : Bytes.t; (* '\000' empty, '\001' live, '\002' tombstone *)
    mask : int;
    mutable live : int;
    mutable used : int; (* live + tombstones *)
  }

  let create ~capacity_for =
    let rec pow2 c = if c >= 8 * capacity_for then c else pow2 (c * 2) in
    let cap = pow2 16 in
    {
      key = Array.make cap 0;
      value = Array.make cap 0;
      inv = Array.make capacity_for (-1);
      state = Bytes.make cap '\000';
      mask = cap - 1;
      live = 0;
      used = 0;
    }

  let slot_of t k =
    let h = k * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land t.mask

  let find t k =
    let rec loop i =
      match Bytes.unsafe_get t.state i with
      | '\000' -> -1
      | '\001' when Array.unsafe_get t.key i = k -> Array.unsafe_get t.value i
      | _ -> loop ((i + 1) land t.mask)
    in
    loop (slot_of t k)

  let rec replace t k v =
    (* Track the first tombstone on the probe path so deleted slots are
       recycled; fall through to it only once the key is known absent. *)
    let rec loop i tomb =
      match Bytes.unsafe_get t.state i with
      | '\001' when Array.unsafe_get t.key i = k ->
          t.value.(i) <- v;
          t.inv.(v) <- i
      | '\000' ->
          if tomb >= 0 then begin
            t.key.(tomb) <- k;
            t.value.(tomb) <- v;
            t.inv.(v) <- tomb;
            Bytes.set t.state tomb '\001';
            t.live <- t.live + 1
          end
          else if 2 * (t.used + 1) > t.mask + 1 then begin
            rehash t;
            replace t k v
          end
          else begin
            t.key.(i) <- k;
            t.value.(i) <- v;
            t.inv.(v) <- i;
            Bytes.set t.state i '\001';
            t.live <- t.live + 1;
            t.used <- t.used + 1
          end
      | '\002' when tomb < 0 -> loop ((i + 1) land t.mask) i
      | _ -> loop ((i + 1) land t.mask) tomb
    in
    loop (slot_of t k) (-1)

  and rehash t =
    let cap = t.mask + 1 in
    let old_key = Array.copy t.key and old_val = Array.copy t.value in
    let old_state = Bytes.copy t.state in
    Bytes.fill t.state 0 cap '\000';
    t.live <- 0;
    t.used <- 0;
    for i = 0 to cap - 1 do
      if Bytes.get old_state i = '\001' then replace t old_key.(i) old_val.(i)
    done

  (* Delete the binding whose value is [v]. The caller guarantees [v] is
     currently bound (the TLB only evicts/invalidates valid entries), so
     this is one array read and a tombstone write — no probe. *)
  let remove_value t v =
    let i = t.inv.(v) in
    Bytes.set t.state i '\002';
    t.live <- t.live - 1;
    (* If the probe chain ends right after [i], this tombstone (and any
       tombstones immediately preceding it) can revert to empty: no lookup
       can terminate early because of them. At low load this reclaims
       almost every deletion in place, so the tombstone-triggered rehash
       almost never runs. *)
    if Bytes.unsafe_get t.state ((i + 1) land t.mask) = '\000' then begin
      let rec clean j =
        if Bytes.unsafe_get t.state j = '\002' then begin
          Bytes.set t.state j '\000';
          t.used <- t.used - 1;
          clean ((j - 1) land t.mask)
        end
      in
      clean i
    end

  let clear t =
    Bytes.fill t.state 0 (t.mask + 1) '\000';
    t.live <- 0;
    t.used <- 0
end

type entry = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable writable : bool;
  mutable gen : int;  (* generation of the owning asid at insert time *)
}

type pending = { p_frame : int; p_writable : bool }

(* [index] maps the (asid, vpn) tag of every *tagged* slot (live or
   generation-stale) to its slot number, so probes and shootdowns are O(1)
   instead of a scan over the whole array. An entry is *live* only when it
   is valid and its [gen] matches the owning asid's current generation
   word; a generation bump ([flush_asid]) makes every entry of that asid
   stale in O(1) without touching slots or index — stale entries are
   reclaimed lazily when a probe or insert next lands on them.
   Invariants: a tag is in [index] iff its slot is valid (possibly stale),
   [valid_count] equals the number of *live* slots, and [asid_live.(a)]
   equals the number of live slots tagged with asid [a]. *)
type t = {
  slots : entry array;
  rng : Rng.t;
  index : Itab.t;
  mutable valid_count : int;
  mutable asid_gen : int array; (* per-asid generation word, grows on demand *)
  mutable asid_live : int array; (* per-asid live-entry count *)
  gen_limit : int;
  pending : (int, pending) Hashtbl.t; (* deferred shootdowns, by tag key *)
  mutable pending_n : int;
}

type probe_result = Hit | Hit_readonly | Miss

let key ~asid ~vpn = (asid lsl 40) + vpn
let vpn_mask = (1 lsl 40) - 1

let create ?(entries = 64) ?(gen_limit = 1 lsl 20) rng =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  if gen_limit < 2 then invalid_arg "Tlb.create: gen_limit must be >= 2";
  let slots =
    Array.init entries (fun _ ->
        { valid = false; asid = 0; vpn = 0; writable = false; gen = 0 })
  in
  {
    slots;
    rng;
    index = Itab.create ~capacity_for:entries;
    valid_count = 0;
    asid_gen = Array.make 16 0;
    asid_live = Array.make 16 0;
    gen_limit;
    pending = Hashtbl.create 64;
    pending_n = 0;
  }

let entries t = Array.length t.slots

let ensure_asid t asid =
  let n = Array.length t.asid_gen in
  if asid >= n then begin
    let n' = max (asid + 1) (2 * n) in
    let grow a =
      let a' = Array.make n' 0 in
      Array.blit a 0 a' 0 n;
      a'
    in
    t.asid_gen <- grow t.asid_gen;
    t.asid_live <- grow t.asid_live
  end

let gen_for t asid =
  if asid < Array.length t.asid_gen then t.asid_gen.(asid) else 0

let generation t ~asid = gen_for t asid
let is_live t e = e.valid && e.gen = gen_for t e.asid

(* Clear a tagged slot. Stale entries were already subtracted from the
   live counts at their generation bump, so only live ones adjust them. *)
let clear_slot t i =
  let e = t.slots.(i) in
  Itab.remove_value t.index i;
  if is_live t e then begin
    t.valid_count <- t.valid_count - 1;
    t.asid_live.(e.asid) <- t.asid_live.(e.asid) - 1
  end;
  e.valid <- false

let probe t ~asid ~vpn ~write =
  let i = Itab.find t.index (key ~asid ~vpn) in
  if i = -1 then Miss
  else
    let e = Array.unsafe_get t.slots i in
    if e.gen <> gen_for t e.asid then begin
      (* Stale under a bumped generation: reclaim the slot lazily. *)
      clear_slot t i;
      Miss
    end
    else if write && not e.writable then Hit_readonly
    else Hit

let insert t ~asid ~vpn ~writable =
  ensure_asid t asid;
  let k = key ~asid ~vpn in
  let i =
    match Itab.find t.index k with
    | -1 ->
        let n = Array.length t.slots in
        (* Prefer the lowest-numbered non-live slot (invalid or stale);
           otherwise evict a random victim, as the R3000 'tlbwr'
           (write-random) refill idiom does. The scan only runs while the
           TLB has free capacity (or right after a flush); in steady state
           it is skipped. *)
        let victim =
          if t.valid_count < n then begin
            let rec avail i =
              if is_live t t.slots.(i) then avail (i + 1) else i
            in
            avail 0
          end
          else Rng.int t.rng n
        in
        if t.slots.(victim).valid then clear_slot t victim;
        Itab.replace t.index k victim;
        victim
    | i -> i
  in
  let e = t.slots.(i) in
  (* Same-tag overwrite: drop the old entry from the live counts first
     (a stale one was dropped already at its generation bump). *)
  if e.valid && is_live t e then begin
    t.valid_count <- t.valid_count - 1;
    t.asid_live.(e.asid) <- t.asid_live.(e.asid) - 1
  end;
  e.valid <- true;
  e.asid <- asid;
  e.vpn <- vpn;
  e.writable <- writable;
  e.gen <- t.asid_gen.(asid);
  t.valid_count <- t.valid_count + 1;
  t.asid_live.(asid) <- t.asid_live.(asid) + 1

let invalidate t ~asid ~vpn =
  match Itab.find t.index (key ~asid ~vpn) with
  | -1 -> ()
  | i -> clear_slot t i

(* Drop every pending shootdown belonging to [asid]; a full-ASID flush
   subsumes them. *)
let drop_asid_pendings t asid =
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if k lsr 40 = asid then k :: acc else acc)
      t.pending []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.pending k;
      t.pending_n <- t.pending_n - 1)
    doomed

let flush_asid t ~asid =
  ensure_asid t asid;
  let g = t.asid_gen.(asid) in
  if g + 1 >= t.gen_limit then begin
    (* Generation-word wraparound: reclaim every tagged entry of this
       asid eagerly (live or stale) so the reset to generation 0 cannot
       resurrect an old translation. *)
    Array.iteri
      (fun i e -> if e.valid && e.asid = asid then clear_slot t i)
      t.slots;
    t.asid_gen.(asid) <- 0
  end
  else begin
    (* O(1) bulk invalidation: everything tagged with the old generation
       is now stale and will be reclaimed lazily. *)
    t.valid_count <- t.valid_count - t.asid_live.(asid);
    t.asid_live.(asid) <- 0;
    t.asid_gen.(asid) <- g + 1
  end;
  drop_asid_pendings t asid

let flush_all t =
  Array.iter (fun e -> e.valid <- false) t.slots;
  Itab.clear t.index;
  t.valid_count <- 0;
  Array.fill t.asid_live 0 (Array.length t.asid_live) 0;
  Hashtbl.reset t.pending;
  t.pending_n <- 0

let valid_entries t = t.valid_count

let iter_live t f =
  Array.iter
    (fun e ->
      if is_live t e then f ~asid:e.asid ~vpn:e.vpn ~writable:e.writable)
    t.slots

(* -- deferred-shootdown queue ------------------------------------------ *)

let defer t ~asid ~vpn ~frame ~writable =
  let k = key ~asid ~vpn in
  if not (Hashtbl.mem t.pending k) then t.pending_n <- t.pending_n + 1;
  Hashtbl.replace t.pending k { p_frame = frame; p_writable = writable }

let find_pending t ~asid ~vpn = Hashtbl.find_opt t.pending (key ~asid ~vpn)
let pending_covers t ~asid ~vpn = Hashtbl.mem t.pending (key ~asid ~vpn)

let cancel_pending t ~asid ~vpn =
  let k = key ~asid ~vpn in
  if Hashtbl.mem t.pending k then begin
    Hashtbl.remove t.pending k;
    t.pending_n <- t.pending_n - 1
  end

let pending_count t = t.pending_n

let iter_pending t f =
  Hashtbl.iter (fun k p -> f ~asid:(k lsr 40) ~vpn:(k land vpn_mask) p) t.pending

let take_pending t =
  let all =
    Hashtbl.fold
      (fun k _ acc -> (k lsr 40, k land vpn_mask) :: acc)
      t.pending []
  in
  Hashtbl.reset t.pending;
  t.pending_n <- 0;
  List.sort compare all
