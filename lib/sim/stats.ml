(* Single-field mutable float record: an all-float record is stored flat,
   so bumping a counter mutates in place instead of allocating a fresh
   boxed float the way a [float ref] assignment would. Counters are hit on
   every simulated event, so this is visibly hot. *)
type cell = { mutable v : float }

type t = (string, cell) Hashtbl.t

let create () : t = Hashtbl.create 64

let reset t = Hashtbl.reset t

(* [Hashtbl.find] instead of [find_opt]: the hit path allocates nothing
   (find_opt wraps every hit in a fresh [Some]), and counters are bumped on
   every simulated event. *)
let cell t name =
  match Hashtbl.find t name with
  | r -> r
  | exception Not_found ->
      let r = { v = 0.0 } in
      Hashtbl.add t name r;
      r

let add_float t name v =
  let r = cell t name in
  r.v <- r.v +. v

let add t name n = add_float t name (float_of_int n)

let incr t name = add t name 1

let get_float t name =
  match Hashtbl.find t name with r -> r.v | exception Not_found -> 0.0

let get t name = int_of_float (get_float t name)

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, r.v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot = to_list

let value snap name =
  match List.assoc_opt name snap with Some v -> v | None -> 0.0

let diff ~before ~after =
  let keys =
    List.sort_uniq String.compare (List.map fst before @ List.map fst after)
  in
  List.filter_map
    (fun k ->
      let d = value after k -. value before k in
      if d = 0.0 then None else Some (k, d))
    keys

let since t before = diff ~before ~after:(snapshot t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.fprintf ppf "%-32s %12.0f@," k v
      else Format.fprintf ppf "%-32s %12.2f@," k v)
    (to_list t);
  Format.fprintf ppf "@]"
