type frame_id = int

(* Frame payloads are materialized on first allocation so that building a
   large simulated memory is cheap; a recycled frame keeps its old bytes
   (no implicit zeroing — that cost is explicit and charged). *)
type frame = { mutable data : bytes; mutable refcount : int }

(* The free pool is a LIFO stack: recently freed frames are reallocated
   first. Recency matters to the TLB layer — a teardown that frees an
   fbuf's frames in reverse page order (see [Vm_map.unmap]) leaves them
   on the stack so the next same-size allocation pops them back in page
   order, restoring the identical vpn -> frame translations and letting
   the queued shootdowns be cancelled instead of flushed. *)
type t = {
  page_size : int;
  frames : frame array;
  mutable free : frame_id list;
  mutable nfree : int;
}

exception Out_of_memory

let create ~page_size ~nframes =
  let frames =
    Array.init nframes (fun _ -> { data = Bytes.empty; refcount = 0 })
  in
  let free = List.init nframes (fun i -> nframes - 1 - i) in
  { page_size; frames; free; nfree = nframes }

let page_size t = t.page_size
let total_frames t = Array.length t.frames
let free_frames t = t.nfree

let alloc t =
  match t.free with
  | [] -> raise Out_of_memory
  | id :: rest ->
      t.free <- rest;
      t.nfree <- t.nfree - 1;
      let f = t.frames.(id) in
      assert (f.refcount = 0);
      if Bytes.length f.data = 0 then f.data <- Bytes.create t.page_size;
      f.refcount <- 1;
      id

let check_live t id name =
  if id < 0 || id >= Array.length t.frames then
    invalid_arg (name ^ ": bad frame id");
  if t.frames.(id).refcount = 0 then invalid_arg (name ^ ": frame is free")

let incref t id =
  check_live t id "Phys_mem.incref";
  let f = t.frames.(id) in
  f.refcount <- f.refcount + 1

let decref t id =
  check_live t id "Phys_mem.decref";
  let f = t.frames.(id) in
  f.refcount <- f.refcount - 1;
  if f.refcount = 0 then begin
    t.free <- id :: t.free;
    t.nfree <- t.nfree + 1
  end

let refcount t id =
  if id < 0 || id >= Array.length t.frames then
    invalid_arg "Phys_mem.refcount: bad frame id";
  t.frames.(id).refcount

let zero t id =
  check_live t id "Phys_mem.zero";
  Bytes.fill t.frames.(id).data 0 t.page_size '\000'

let data t id =
  check_live t id "Phys_mem.data";
  t.frames.(id).data

let poke t id off c =
  check_live t id "Phys_mem.poke";
  if off < 0 || off >= t.page_size then
    invalid_arg "Phys_mem.poke: offset outside the page";
  Bytes.set t.frames.(id).data off c

let fill t id c =
  check_live t id "Phys_mem.fill";
  Bytes.fill t.frames.(id).data 0 t.page_size c

let copy_frame t ~src ~dst =
  check_live t src "Phys_mem.copy_frame";
  check_live t dst "Phys_mem.copy_frame";
  Bytes.blit t.frames.(src).data 0 t.frames.(dst).data 0 t.page_size
