(** A simulated host: clock, cost model, physical memory, TLB, statistics.

    Every other subsystem (VM, fbufs, IPC, protocols, drivers) operates on a
    [Machine.t] and accounts simulated time through {!charge} (CPU work) or
    {!elapse} (idle waiting, e.g. for the network), which keeps CPU-load
    accounting honest for the paper's section-4 load measurements. *)

type busy = { mutable busy_us : float }
(** Single-field all-float record: the busy accumulator lives in flat
    (unboxed) storage so {!charge} does not allocate. *)

type t = {
  name : string;
  clock : Clock.t;
  cost : Cost_model.t;
  pmem : Phys_mem.t;
  tlb : Tlb.t;
  stats : Stats.t;
  rng : Rng.t;
  busy : busy;
  mutable next_asid : int;
  mutable next_id : int;
  mutable trace : Fbufs_trace.Trace.t option;
  mutable metrics : Fbufs_metrics.Metrics.t option;
  mutable spans : Fbufs_span.Span.t option;
  mutable series : Fbufs_metrics.Timeseries.t option;
  mutable comp_ctx : Fbufs_metrics.Component.t option;
  mutable seq_hook : (t -> string -> unit) option;
  mutable on_tick : (float -> unit) option;
}

val default_trace : Fbufs_trace.Trace.t option ref
(** Sink installed on machines subsequently built by {!create} when no
    explicit [?trace] is given. Lets a harness observe machines it does
    not construct itself (the experiment drivers build their own
    testbeds); [None] — the default — disables tracing everywhere. *)

val default_metrics : Fbufs_metrics.Metrics.t option ref
(** Same install pattern as {!default_trace}, for the metrics registry
    and cost-attribution ledger. [None] (the default) means machines are
    unmetered and the instrumented paths do no registry work at all. *)

val default_spans : Fbufs_span.Span.t option ref
(** Same install pattern, for the causal span sink. [None] (the default)
    disables span recording: every [transfer_begin]/[span_enter] returns
    0 immediately and {!charge} does one pointer comparison. *)

val default_series : Fbufs_metrics.Timeseries.t option ref
(** Same install pattern, for windowed gauge time series. Only sampled
    when the machine also carries a metrics instance. *)

val default_seq_hook : (t -> string -> unit) option ref
(** Same install pattern, for the {!seq_point} callback the online
    invariant monitors hang off. [None] (the default) makes every
    sequence point one pointer comparison. *)

val default_tick : (float -> unit) option ref
(** Same install pattern, for the clock-advance callback (called with
    the new simulated time after every {!charge} and {!elapse_to}) that
    drives periodic snapshot reports on the simulated timeline. *)

val create :
  ?name:string ->
  ?cost:Cost_model.t ->
  ?nframes:int ->
  ?tlb_entries:int ->
  ?seed:int ->
  ?trace:Fbufs_trace.Trace.t ->
  ?metrics:Fbufs_metrics.Metrics.t ->
  ?spans:Fbufs_span.Span.t ->
  ?series:Fbufs_metrics.Timeseries.t ->
  unit ->
  t
(** Defaults: DecStation 5000/200 cost model, 4096 frames (16 MB), 64 TLB
    entries, seed 42, trace sink [!default_trace], metrics instance
    [!default_metrics], span sink [!default_spans], time series
    [!default_series]. *)

val set_trace : t -> Fbufs_trace.Trace.t option -> unit

val tracing : t -> bool
(** Whether a sink is attached. Instrumentation sites that build argument
    lists must test this first so a disabled trace costs one pointer
    comparison and no allocation. *)

val set_metrics : t -> Fbufs_metrics.Metrics.t option -> unit

val metered : t -> bool
(** Whether a metrics instance is attached; the counterpart of {!tracing}
    for registry updates — instrumentation guards on it (or matches on
    {!metrics}) so an unmetered machine pays one pointer comparison. *)

val metrics : t -> Fbufs_metrics.Metrics.t option

val set_spans : t -> Fbufs_span.Span.t option -> unit

val spanning : t -> bool
(** Whether a causal span sink is attached — the counterpart of
    {!tracing}/{!metered} for the span instrumentation. *)

val spans : t -> Fbufs_span.Span.t option

val set_series : t -> Fbufs_metrics.Timeseries.t option -> unit
val series : t -> Fbufs_metrics.Timeseries.t option
val set_seq_hook : t -> (t -> string -> unit) option -> unit
val set_tick : t -> (float -> unit) option -> unit

val seq_point : t -> string -> unit
(** Declare a sequence point — a site (named like ["ipc.reply"],
    ["transfer.secure"], ["pageout.balance"]) where the system's
    invariants are expected to hold. Dispatches to the installed hook;
    with none installed (the default) the cost is one pointer
    comparison, preserving pay-for-play. *)

val with_comp : t -> Fbufs_metrics.Component.t -> (unit -> 'a) -> 'a
(** Run [f] with every {!charge} attributed to the given component,
    overriding the call sites' own tags — used where a whole activity
    (e.g. aggregate-object deserialization) belongs to one Table 1 row
    even though it exercises allocator and VM charge sites. Restores the
    previous context on exit, exceptions included. *)

val charge : ?kind:string -> ?comp:Fbufs_metrics.Component.t -> t -> float -> unit
(** Consume [us] microseconds of CPU time: advances the clock and the busy
    accumulator. With [?kind] and a trace attached, additionally emits a
    [Complete] slice of that duration — this is how every individual cost
    in the model becomes visible on the timeline. With a metrics instance
    attached, the charge also lands in the cost ledger under [?comp]
    (or the surrounding {!with_comp} context; [Other] if neither).
    Tracing and metering never alter the charge itself. *)

val charge_n :
  ?kind:string -> ?comp:Fbufs_metrics.Component.t -> t -> int -> float -> unit
(** [charge_n m n us] charges [n] repetitions of a per-item cost. *)

val elapse_to : ?kind:string -> t -> float -> unit
(** Wait (idle) until an absolute simulated time; no busy time accrues.
    With [?kind], the idle interval is emitted as a [Complete] slice. *)

(** {1 Causal spans}

    Wrappers over {!Fbufs_span.Span} stamped with this machine's clock
    and name. With no sink attached every call is a pointer comparison;
    begin/enter return 0 and end/exit ignore 0, so call sites need no
    guards. Every {!charge} made while a span is open on the machine is
    attributed to it (innermost wins) under its Table 1 component. *)

val transfer_begin : t -> ?domain:string -> ?path_id:int -> string -> int
(** Open a transfer (one end-to-end data movement) rooted on this
    machine; returns the transfer id to carry across domains and
    machines (0 when disabled). *)

val transfer_end : t -> int -> unit

val with_transfer : t -> ?domain:string -> ?path_id:int -> string -> (unit -> 'a) -> 'a
(** Bracket [f] in a transfer. The transfer's spans may keep arriving
    after [f] returns (deliveries {!span_adopt} into it); only the root
    span closes here. *)

val span_enter : t -> ?domain:string -> ?path_id:int -> string -> int
(** Child span of the innermost open span; 0 when disabled or when the
    machine has no open transfer context. *)

val span_exit : t -> int -> unit

val span_adopt :
  t -> transfer:int -> ?follows:int -> ?domain:string -> ?path_id:int -> string -> int
(** Continue transfer [transfer] on this machine (the receive side of a
    cross-machine delivery), linked by a follows-from edge (default: the
    transfer's root). Ignores transfer id 0. *)

val span_flight :
  t ->
  transfer:int ->
  follows:int ->
  start_us:float ->
  end_us:float ->
  ?path_id:int ->
  string ->
  int
(** Record a wire-occupancy span (serialization + propagation) on the
    {!Fbufs_span.Span.wire} pseudo-machine. *)

val current_transfer : t -> int
(** The machine's current transfer context (0 when none or disabled) —
    what {!Fbufs.Allocator.alloc} stamps into new fbufs. *)

val span_context : t -> int * int
(** [(transfer id, innermost open span id)], 0s when absent. *)

val trace_instant :
  t ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * Fbufs_trace.Trace.arg) list ->
  string ->
  unit
(** Emit an instant event stamped with the machine's current simulated
    time. No-op without a sink (guard arg construction with {!tracing}). *)

val span_begin :
  t ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * Fbufs_trace.Trace.arg) list ->
  string ->
  int
(** Open a nested span; returns 0 (and does nothing) without a sink, and
    {!span_end} ignores id 0, so begin/end pairs are safe unguarded. *)

val span_end :
  t -> ?args:(string * Fbufs_trace.Trace.arg) list -> int -> unit

val with_span : t -> ?domain:string -> ?path_id:int -> string -> (unit -> 'a) -> 'a

val async_begin :
  t ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * Fbufs_trace.Trace.arg) list ->
  id:int ->
  string ->
  unit
(** Open/close async spans correlated by [(kind, id)] — they may cross
    domains and machines (fbuf lifetime, PDU flight). *)

val async_end :
  t ->
  ?domain:string ->
  ?path_id:int ->
  ?args:(string * Fbufs_trace.Trace.arg) list ->
  id:int ->
  string ->
  unit

val now : t -> float

val busy_us : t -> float
(** Accumulated CPU (non-idle) simulated time. *)

val fresh_asid : t -> int
val fresh_id : t -> int

val cpu_load : t -> since:float -> float
(** Fraction of wall (simulated) time the CPU was busy since the given
    timestamp pair captured with {!checkpoint}. *)

val checkpoint : t -> float * float
(** [(now, busy)] snapshot, for differential load measurement with
    {!load_since}. *)

val load_since : t -> float * float -> float
(** CPU load between a {!checkpoint} and now, in [0, 1]. *)

val domain_crossing_tlb_pressure : ?entries:int -> t -> unit
(** Displace [entries] (default [ipc_tlb_footprint]) TLB entries with
    kernel-path translations, modelling the cache/TLB pollution of one IPC
    crossing. Costless in time (the control-transfer latency is charged
    separately by the IPC layer); its effect is the refill work later
    accesses must redo. *)

val reset_stats : t -> unit
