(** Simulated translation lookaside buffer.

    Modelled on the MIPS R3000: a small fully-associative array of
    (ASID, VPN) tagged entries with random replacement and *software* miss
    handling — the OS refill handler cost is what makes the paper's
    cached/volatile fbuf transfers cost 3 us/page instead of 0.

    The TLB caches the writable bit, so downgrading a mapping's protection
    requires an explicit shootdown (the consistency action the paper counts
    against non-volatile fbufs), and upgrading leads to a TLB modification
    fault on the next write through a stale read-only entry.

    Two mechanisms make invalidation cheap for the fbuf reuse path:

    - {b Generations.} Every ASID owns a generation word and every entry is
      tagged with the generation current when it was inserted; an entry is
      live only while the tags match. {!flush_asid} is therefore an O(1)
      generation bump — stale entries are reclaimed lazily when a probe or
      insert next lands on them, and a generation-word wraparound falls
      back to one eager sweep before resetting to zero.

    - {b Deferred shootdowns.} Instead of invalidating immediately, the VM
      layer may queue a shootdown ({!defer}) to be either cancelled when
      the identical translation is re-entered (fbuf reuse — the elision the
      whole exercise is after) or drained in one batch at the next
      synchronization barrier ({!take_pending}). The queue records the
      removed translation's frame and writability so re-entry can prove
      identity. The TLB itself charges nothing; cost accounting stays with
      the callers. *)

type t

type probe_result =
  | Hit  (** translation present with sufficient permission *)
  | Hit_readonly
      (** translation present but the access is a write and the cached entry
          is read-only: the hardware raises a TLB modification exception *)
  | Miss  (** no entry for this (asid, vpn) *)

type pending = {
  p_frame : int;  (** frame the removed translation pointed at *)
  p_writable : bool;  (** writability of the removed translation *)
}

val create : ?entries:int -> ?gen_limit:int -> Rng.t -> t
(** [entries] defaults to 64 (R3000); [gen_limit] is the exclusive upper
    bound on a per-ASID generation word before the wraparound sweep runs
    (default [2{^20}]; raises [Invalid_argument] when < 2 or when
    [entries] is not positive). *)

val entries : t -> int

val probe : t -> asid:int -> vpn:int -> write:bool -> probe_result
(** Look up a translation. Never changes the visible contents, but may
    lazily reclaim a generation-stale slot it lands on. *)

val insert : t -> asid:int -> vpn:int -> writable:bool -> unit
(** Refill after a miss (or after a modification fault, with the new
    permission). Replaces the existing entry for (asid, vpn) if any,
    otherwise prefers a non-live slot and falls back to evicting a random
    victim. *)

val invalidate : t -> asid:int -> vpn:int -> unit
(** Shoot down one entry if present. *)

val flush_asid : t -> asid:int -> unit
(** Invalidate every entry belonging to one address space: an O(1)
    generation bump (plus dropping that ASID's queued shootdowns, which it
    subsumes), degenerating to an eager sweep only on generation-word
    wraparound. *)

val flush_all : t -> unit

val valid_entries : t -> int
(** Number of live entries (for tests and locality diagnostics);
    generation-stale slots do not count. *)

val generation : t -> asid:int -> int
(** Current generation word of [asid] (for tests and the checker). *)

val iter_live : t -> (asid:int -> vpn:int -> writable:bool -> unit) -> unit
(** Iterate the live entries (for the checker's stale-translation audit). *)

(** {2 Deferred-shootdown queue} *)

val defer : t -> asid:int -> vpn:int -> frame:int -> writable:bool -> unit
(** Queue a shootdown of (asid, vpn) whose pmap translation — [frame],
    [writable] — was just removed. Replaces any earlier pending entry for
    the same tag. *)

val find_pending : t -> asid:int -> vpn:int -> pending option
val pending_covers : t -> asid:int -> vpn:int -> bool

val cancel_pending : t -> asid:int -> vpn:int -> unit
(** Drop the queued shootdown for (asid, vpn), if any — the elision path,
    taken when the identical translation was re-entered. *)

val pending_count : t -> int

val iter_pending : t -> (asid:int -> vpn:int -> pending -> unit) -> unit
(** Iterate the queued shootdowns (for the checker's audit). *)

val take_pending : t -> (int * int) list
(** Empty the queue and return the (asid, vpn) pairs it held, sorted; the
    caller invalidates them and charges one batched barrier. *)
