(** Simulated translation lookaside buffer.

    Modelled on the MIPS R3000: a small fully-associative array of
    (ASID, VPN) tagged entries with random replacement and *software* miss
    handling — the OS refill handler cost is what makes the paper's
    cached/volatile fbuf transfers cost 3 us/page instead of 0.

    The TLB caches the writable bit, so downgrading a mapping's protection
    requires an explicit shootdown (the consistency action the paper counts
    against non-volatile fbufs), and upgrading leads to a TLB modification
    fault on the next write through a stale read-only entry. *)

type t

type probe_result =
  | Hit  (** translation present with sufficient permission *)
  | Hit_readonly
      (** translation present but the access is a write and the cached entry
          is read-only: the hardware raises a TLB modification exception *)
  | Miss  (** no entry for this (asid, vpn) *)

val create : ?entries:int -> Rng.t -> t
(** [entries] defaults to 64 (R3000); raises [Invalid_argument] when not
    positive. *)

val entries : t -> int

val probe : t -> asid:int -> vpn:int -> write:bool -> probe_result
(** Look up a translation. Does not modify the TLB. *)

val insert : t -> asid:int -> vpn:int -> writable:bool -> unit
(** Refill after a miss (or after a modification fault, with the new
    permission). Replaces the existing entry for (asid, vpn) if any,
    otherwise evicts a random victim. *)

val invalidate : t -> asid:int -> vpn:int -> unit
(** Shoot down one entry if present. *)

val flush_asid : t -> asid:int -> unit
(** Invalidate every entry belonging to one address space. *)

val flush_all : t -> unit

val valid_entries : t -> int
(** Number of live entries (for tests and locality diagnostics). *)
