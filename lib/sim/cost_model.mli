(** Calibrated cost parameters for the simulated machine.

    Every operation the simulated operating system performs charges simulated
    time taken from one of these fields. The default instance
    {!decstation_5000_200} is calibrated against the measurement anchors the
    paper reports for a DecStation 5000/200 (25 MHz MIPS R3000): 4 KB pages,
    57 us to zero a page, software-refilled TLB, Mach 3.0 IPC latency, and
    the Osiris/TurboChannel bandwidth caps (516 / 367 / 285 Mb/s).

    All times are in microseconds unless stated otherwise. *)

type t = {
  cpu_mhz : float;  (** processor clock, informational *)
  page_size : int;  (** bytes per VM page *)
  word_size : int;  (** bytes per machine word *)
  (* -- memory access ------------------------------------------------- *)
  word_touch : float;  (** cache-hit load or store of one word *)
  cache_miss : float;  (** stall for one cache-line fill *)
  tlb_refill : float;  (** software TLB miss handler (R3000 style) *)
  tlb_mod_fault : float;
      (** TLB modification exception: first write through a clean/read-only
          cached translation that the OS upgrades in place *)
  copy_per_byte : float;  (** bcopy throughput, us per byte *)
  checksum_per_byte : float;  (** 16-bit ones-complement checksum, us/byte *)
  page_zero : float;  (** fill one page with zeros (security) *)
  (* -- virtual memory ------------------------------------------------ *)
  vm_page_op : float;
      (** machine-independent (top-level map) share of changing one page's
          mapping state; charged in addition to the pmap cost below *)
  pmap_enter : float;  (** install one physical page-table entry *)
  pmap_remove : float;  (** invalidate one physical page-table entry *)
  pmap_protect : float;
      (** change protection of one live entry; costlier than enter/remove
          because the page is in active use (locks, consistency) *)
  tlb_shootdown : float;  (** invalidate one TLB entry after a pmap change *)
  tlb_shootdown_batch_base : float;
      (** fixed cost of draining the deferred-shootdown queue at a barrier
          (one interprocessor-interrupt-equivalent synchronization), charged
          once per drain regardless of how many entries are pending *)
  tlb_shootdown_batch_entry : float;
      (** per-entry increment of a batched drain; far below the standalone
          {!tlb_shootdown} because the trap/synchronization cost is shared
          across the whole batch *)
  vm_range_op : float;
      (** per-call overhead of a map-level range operation (find/reserve or
          release a virtual address range, clip map entries, take locks) *)
  fault_trap : float;  (** page-fault trap entry + dispatch + return *)
  remap_page_overhead : float;
      (** extra per-page cost of each *generic* remap-facility map operation
          (entry clipping, validation, locking in arbitrary maps) that the
          fbuf region's specialized fixed-address path avoids; calibrated so
          the DASH-style facility reproduces 22 us/page ping-pong and
          42-99 us/page realistic (section 2.2.1) *)
  page_alloc : float;  (** take one frame from the free-page pool *)
  page_free : float;  (** return one frame to the free-page pool *)
  (* -- buffer-sharing policy ------------------------------------------ *)
  policy_check : float;
      (** one admission decision of a dynamic buffer-sharing policy
          (sample remaining free frames, compare the path's held pages
          against its threshold); a couple of loads and a multiply, so
          well under a microsecond. Static policies charge nothing. *)
  policy_victim_scan : float;
      (** one scan over the parked-buffer candidate list to pick (or
          order) reclaim victims under a dynamic policy; charged per
          targeted eviction and once per policy-ordered pageout sweep *)
  (* -- IPC ------------------------------------------------------------ *)
  ipc_call : float;  (** one-way cross-domain control transfer (Mach RPC) *)
  ipc_reply : float;  (** return control transfer *)
  ipc_per_fbuf : float;  (** marshal one buffer descriptor into a message *)
  ipc_tlb_footprint : int;
      (** number of TLB entries the kernel IPC path displaces per crossing;
          this is why the paper's cached/volatile transfers still pay one
          software refill per page per domain instead of hitting a warm TLB *)
  urpc_call : float;
      (** one-way control transfer of a user-level RPC facility (URPC-style
          shared-memory queues; the paper notes fbufs complement such
          facilities because the common-case transfer needs no kernel) *)
  urpc_reply : float;
  urpc_tlb_footprint : int;  (** far smaller: no kernel path executed *)
  (* -- protocol & driver processing ----------------------------------- *)
  proto_op : float;  (** fixed per-PDU cost of one protocol layer *)
  frag_op : float;  (** fragmenting or reassembling one fragment *)
  driver_op : float;  (** per-PDU device-driver processing *)
  interrupt : float;  (** interrupt dispatch overhead *)
  (* -- network (Osiris ATM on TurboChannel) ---------------------------- *)
  link_mbps : float;  (** raw link bandwidth, megabits/s (622 for Osiris) *)
  cell_payload : int;  (** ATM cell payload bytes (48) *)
  cell_total : int;  (** ATM cell total bytes on the wire (53) *)
  dma_startup : float;  (** DMA start-up latency per transfer (per cell) *)
  dma_mbps : float;  (** peak TurboChannel DMA bandwidth, megabits/s *)
  bus_contention : float;
      (** fractional slowdown of DMA caused by concurrent CPU/memory
          traffic; 0.0 means no contention *)
}

val decstation_5000_200 : t
(** The paper's hardware platform. *)

val page_words : t -> int
(** Words per page. *)

val cell_time : t -> float
(** Effective time to move one ATM cell end to end, including DMA start-up
    and bus contention; the min of wire rate and DMA rate. Multiplying out,
    the defaults yield the paper's three caps: 516 Mb/s net link rate,
    367 Mb/s DMA-bound rate, 285 Mb/s under bus contention. *)

val effective_net_mbps : t -> float
(** Goodput ceiling implied by {!cell_time}: payload bits per cell time. *)

val pp : Format.formatter -> t -> unit
