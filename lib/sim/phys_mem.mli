(** Simulated physical memory: a pool of page frames with real byte payloads.

    Frames carry actual [bytes] so that data written in one protection domain
    and read in another is checked for integrity by the tests — a transfer
    mechanism that maps the wrong frame produces wrong bytes, not just wrong
    timings. Frames are reference counted because copy-on-write and fbuf
    sharing both allow one frame to back mappings in several domains. *)

type frame_id = int

type t

val create : page_size:int -> nframes:int -> t
(** A pool of [nframes] frames of [page_size] bytes, all free. *)

val page_size : t -> int
val total_frames : t -> int
val free_frames : t -> int

exception Out_of_memory

val alloc : t -> frame_id
(** Take a frame from the free pool with refcount 1. The frame's contents
    are whatever the previous user left there (zeroing is an explicit,
    separately charged operation — that is the point of the paper's
    security discussion). Raises {!Out_of_memory} when exhausted. *)

val incref : t -> frame_id -> unit

val decref : t -> frame_id -> unit
(** Drop one reference; the frame returns to the free pool when the count
    reaches zero. *)

val refcount : t -> frame_id -> int
(** Raises [Invalid_argument] on a frame id outside the pool. *)

val zero : t -> frame_id -> unit
(** Fill the frame with zero bytes (mechanics only; charge separately). *)

val data : t -> frame_id -> bytes
(** The frame's backing store. Raises [Invalid_argument] for a free frame. *)

val poke : t -> frame_id -> int -> char -> unit
(** Set one payload byte directly — a test/debug backdoor below the
    simulated MMU (no domain, no protection check), so frame-recycling
    properties can be probed without a mapping. Raises [Invalid_argument]
    for a free frame or an offset outside the page. *)

val fill : t -> frame_id -> char -> unit
(** Fill the whole frame with one byte; same backdoor caveats as {!poke}.
    Raises [Invalid_argument] for a free frame. *)

val copy_frame : t -> src:frame_id -> dst:frame_id -> unit
(** Copy full page contents from [src] to [dst]. *)
