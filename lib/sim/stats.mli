(** Named event counters and accumulators for a simulated machine.

    Subsystems record what happened (TLB misses, pmap updates, pages zeroed,
    faults, IPC calls, ...) so experiments and tests can assert on mechanism
    behaviour rather than only on elapsed time. *)

type t

val create : unit -> t
val reset : t -> unit

val incr : t -> string -> unit
(** Add one to a counter, creating it at zero if needed. *)

val add : t -> string -> int -> unit
val add_float : t -> string -> float -> unit

val get : t -> string -> int
(** Current value of a counter; 0 when never touched. *)

val get_float : t -> string -> float

val to_list : t -> (string * float) list
(** All accumulators, sorted by name. Integer counters appear as floats. *)

val snapshot : t -> (string * float) list
(** Alias of {!to_list}: a point-in-time copy for later {!diff}/{!since},
    so experiments assert on what an operation did rather than on absolute
    totals that depend on setup history. *)

val value : (string * float) list -> string -> float
(** Counter value in a snapshot or delta; 0 when absent. *)

val diff :
  before:(string * float) list ->
  after:(string * float) list ->
  (string * float) list
(** Per-counter [after - before], sorted by name, zero deltas omitted. *)

val since : t -> (string * float) list -> (string * float) list
(** [since t before = diff ~before ~after:(snapshot t)]. *)

val pp : Format.formatter -> t -> unit
