(** Deterministic pseudo-random numbers (splitmix64).

    The simulator must be reproducible run to run, so all randomness (TLB
    replacement, workload generation) flows through explicitly seeded
    generators rather than [Random]. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); raises [Invalid_argument]
    unless [bound] is positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val split : t -> t
(** Derive an independent generator (for parallel subsystems). [split]
    draws from (and therefore advances) the parent stream. *)

val fork : t -> int -> t
(** [fork t key] derives an independent generator keyed by [key] {e without
    advancing [t]}: the parent's subsequent draws are byte-identical
    whether or not any forks were taken. Equal (parent state, key) pairs
    yield equal substreams; distinct keys yield statistically independent
    ones. This is the derivation the checker's shrinker relies on. *)
