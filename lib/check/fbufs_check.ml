(* Fbufs_check: the reference-model differential checker.

   A pure model of fbuf semantics (Model), a randomized operation driver
   that runs every sequence against both the model and the real stack
   (Driver), a structural invariant auditor (Audit), and ddmin shrinking
   of failing sequences to minimal replayable reproducers (Shrink). *)

module Op = Op
module Model = Model
module Audit = Audit
module Driver = Driver
module Shrink = Shrink

let audit = Audit.run
(* The invariant sweep, usable over any live system; the invariants it
   enforces are listed in DESIGN.md section 7. *)

type outcome = {
  seed : int;
  adversary : bool;
  report : Driver.report;
  shrunk : Op.t list option;  (* minimal reproducer, failures only *)
}

let run_seed ~seed ~ops ~adversary =
  let report, sequence = Driver.run ~seed ~ops ~adversary in
  let shrunk =
    if Driver.failed report then Some (fst (Shrink.minimize ~seed sequence))
    else None
  in
  { seed; adversary; report; shrunk }

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>seed %d %s: %a@]" o.seed
    (if o.adversary then "(adversary)" else "(normal)")
    Driver.pp_report o.report;
  match o.shrunk with
  | None -> ()
  | Some ops ->
      Fmt.pf ppf "@,@[<v>minimal reproducer (%d ops, replay with seed %d):@,%a@]"
        (List.length ops) o.seed Op.pp_list ops
