(** The differential driver: one world, one model, one op sequence.

    Each replay builds a deterministic world from the seed (a small
    machine under genuine memory pressure, three user domains, four
    allocators covering the variant cross product, Rebuild and Integrated
    IPC connections, a pageout daemon), then executes the operation
    sequence against both the real stack and the {!Model}, diffing
    observable state after every step and running the structural
    {!Audit} periodically. All candidate resolution is a deterministic
    function of the sequence prefix, which is what makes {!Shrink}
    sound. *)

exception Check_failed of string

type report = {
  total : int;
  executed : int;
  skipped : int;  (** ops whose candidate list was empty (deterministic) *)
  failure : (int * Op.t * string) option;
      (** failing step index, the op at that step, and the divergence *)
}

val failed : report -> bool
val pp_report : Format.formatter -> report -> unit

val replay : seed:int -> Op.t list -> report
(** Build a fresh world from [seed] and run the sequence. Never raises:
    divergences are reported in [failure]. *)

val gen_ops : seed:int -> n:int -> adversary:bool -> Op.t list
(** The operation sequence for a seed, via a non-perturbing
    {!Fbufs_sim.Rng.fork} of the machine seed. *)

val run : seed:int -> ops:int -> adversary:bool -> report * Op.t list
(** [gen_ops] + [replay]; returns the sequence for shrinking. *)

val refusal_hook : (string -> unit) option ref
(** Called with the op description whenever a documented refusal fires
    (an expected [Dead_fbuf]/[Invalid_argument] observed, or a
    divergence raised while expecting one). [None] by default; the
    flight recorder installs itself here so adversary-mode refusals can
    trigger a post-mortem dump. *)
